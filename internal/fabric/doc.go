// Package fabric models the interconnect of a reconfigurable computing
// system (the Bn parameter of Section 4.1): a non-blocking crossbar
// switching fabric, as in the Cray XD1 chassis of Section 3, with
// per-node links of fixed bandwidth. Contention arises only at the
// endpoints — a node's egress and ingress links — which the package
// serializes with FIFO resources in virtual time.
package fabric
