// Package codesign is the public API of a full reproduction of
// "Hardware/Software Co-Design for Matrix Computations on Reconfigurable
// Computing Systems" (Zhuo & Prasanna, IPDPS 2007).
//
// It bundles three layers:
//
//   - The design model (Section 4): system parameters, the workload
//     partition solvers of Equations (1)-(6) and the Section 4.5
//     performance predictor. See LUModel / FWModel.
//
//   - A simulated reconfigurable computing system: p nodes of
//     processor + FPGA + DRAM + SRAM on a crossbar fabric, driven by a
//     deterministic discrete-event engine. See MachineXD1 and friends.
//
//   - The co-designed applications with their baselines: the paper's
//     distributed block LU decomposition and blocked Floyd-Warshall
//     (Section 5), plus the extensions its conclusion calls for —
//     hybrid matrix multiplication, Cholesky, Householder QR,
//     conjugate gradient and sparse matrix-vector products (SpMV and
//     repeated-apply SpMM over CSR operators). All run timing-only at
//     paper scale or carry real matrices (Functional) with results
//     checked against sequential references. See RunLU / RunFW /
//     RunOpMM / RunMM / RunCholesky / RunQR / RunCG / RunSpMV /
//     RunSpMM.
//
// Quick start:
//
//	res, err := codesign.RunLU(codesign.LUConfig{
//		N: 30000, B: 3000, BF: -1, L: -1, Mode: codesign.Hybrid,
//	})
//	// res.GFLOPS ≈ 18-20 on the simulated XD1 chassis; res.BF == 1280.
//
// Every table and figure of the paper's evaluation regenerates through
// the Experiments facade (see also cmd/experiments).
package codesign

import (
	"context"
	"io"

	"codesign/internal/analysis"
	"codesign/internal/cache"
	"codesign/internal/core"
	"codesign/internal/exper"
	"codesign/internal/fault"
	"codesign/internal/machine"
	"codesign/internal/model"
	"codesign/internal/obs"
	"codesign/internal/serve"
	"codesign/internal/sim"
	"codesign/internal/sweep"
	"codesign/internal/trace"
)

// Design-variant modes (Figure 9).
const (
	Hybrid        = core.Hybrid
	ProcessorOnly = core.ProcessorOnly
	FPGAOnly      = core.FPGAOnly
)

// Re-exported configuration and result types.
type (
	// Mode selects hybrid or a baseline design.
	Mode = core.Mode
	// LUConfig configures a distributed block LU run.
	LUConfig = core.LUConfig
	// LUResult is the outcome of a block LU run.
	LUResult = core.LUResult
	// FWConfig configures a distributed Floyd-Warshall run.
	FWConfig = core.FWConfig
	// FWResult is the outcome of a Floyd-Warshall run.
	FWResult = core.FWResult
	// OpMMResult is the outcome of a stripe-granular single-block
	// multiplication run (Figure 5).
	OpMMResult = core.OpMMResult
	// MMConfig configures a hybrid matrix multiplication run (the
	// Equation (1) extension application).
	MMConfig = core.MMConfig
	// MMResult is the outcome of a hybrid multiplication run.
	MMResult = core.MMResult
	// CholConfig configures a hybrid Cholesky factorization run (the
	// ScaLAPACK-trio extension application).
	CholConfig = core.CholConfig
	// CholResult is the outcome of a hybrid Cholesky run.
	CholResult = core.CholResult
	// QRConfig configures a hybrid Householder QR factorization run.
	QRConfig = core.QRConfig
	// QRResult is the outcome of a hybrid QR run.
	QRResult = core.QRResult
	// CGConfig configures a hybrid conjugate-gradient solve.
	CGConfig = core.CGConfig
	// CGRunResult is the outcome of a hybrid CG solve.
	CGRunResult = core.CGRunResult
	// SpMVConfig configures a hybrid sparse (or dense) matrix-vector
	// product run; RHS > 1 turns it into repeated-apply SpMM.
	SpMVConfig = core.SpMVConfig
	// SpMVResult is the outcome of a hybrid SpMV/SpMM run.
	SpMVResult = core.SpMVResult
	// SpMVModel instantiates the design model for the Equation (1) row
	// split of a CSR (or dense) operator apply, with nnz-proportional
	// streaming or SRAM residency.
	SpMVModel = model.SpMVParams
	// MachineConfig describes a reconfigurable computing system.
	MachineConfig = machine.Config
	// LUModel instantiates the design model for block LU (Eqs. 4-5).
	LUModel = model.LUParams
	// FWModel instantiates the design model for Floyd-Warshall (Eq. 6).
	FWModel = model.FWParams
	// ModelParams are the raw Section 4.1 system parameters (Eqs. 1-2).
	ModelParams = model.Params
	// Prediction is the Section 4.5 performance prediction.
	Prediction = model.Prediction
	// ExperimentTable is one regenerated paper table or figure.
	ExperimentTable = exper.Table
)

// Telemetry. Every Run* config accepts an Observer (streaming span sink)
// and a Telemetry flag (attach a Telemetry digest to the result); the
// Recorder buffers a run's spans for Perfetto/CSV export and
// summarization. See the README's Observability section.
type (
	// Category classifies a simulation span: compute, DMA, network,
	// synchronization or idle.
	Category = sim.Category
	// SpanEvent is one typed interval of simulated activity.
	SpanEvent = sim.SpanEvent
	// Observer receives the structured telemetry stream from the
	// simulation engine.
	Observer = sim.Observer
	// Recorder buffers spans and events; it implements Observer and
	// exports Perfetto JSON (WritePerfetto), RFC-4180 CSV
	// (WriteSpansCSV) and summaries (Summarize).
	Recorder = trace.Recorder
	// Telemetry is the per-run span digest attached to results:
	// utilization, bytes moved and the overlap decomposition.
	Telemetry = trace.Summary
	// Overlap decomposes a run's makespan into exposed Tp/Tf/Tmem/Tcomm
	// components comparable to the Section 4.5 model terms.
	Overlap = trace.Overlap
	// Metrics is a per-run registry of named counters, gauges and
	// histograms over virtual time.
	Metrics = trace.Metrics
)

// Span categories.
const (
	CatCompute = sim.CatCompute
	CatDMA     = sim.CatDMA
	CatNetwork = sim.CatNetwork
	CatSync    = sim.CatSync
	CatIdle    = sim.CatIdle
)

// Device tags carried by spans (set where each resource is created).
const (
	DeviceUnknown = sim.DeviceUnknown
	DeviceCPU     = sim.DeviceCPU
	DeviceFPGA    = sim.DeviceFPGA
	DeviceDRAM    = sim.DeviceDRAM
	DeviceLink    = sim.DeviceLink
)

// Post-run analysis. The analysis layer consumes a Recorder's span
// stream after a run and produces a critical path, per-phase bottleneck
// attribution against the design model, resource utilization timelines,
// and benchmark-regression baselines. See the README's "Analyzing a
// run" section and cmd/hybridsim -analyze.
type (
	// Device tags which physical unit emitted a span.
	Device = sim.Device
	// AnalysisReport is the full post-run analysis of a span stream.
	AnalysisReport = analysis.Report
	// AnalysisOptions tunes Analyze (bin count, expected bindings).
	AnalysisOptions = analysis.Options
	// CriticalPathHop is one step of the critical path through a run.
	CriticalPathHop = analysis.Hop
	// PhaseStats is one phase's busy-time decomposition and its
	// measured vs model-predicted binding parameter.
	PhaseStats = analysis.PhaseStats
	// ResourceTimeline is one resource's binned busy-fraction timeline.
	ResourceTimeline = analysis.ResourceTimeline
	// Binding names the model parameter that binds a phase: Of*Ff,
	// Op*Fp, Bd or Bn.
	Binding = model.Binding
	// BenchBaseline is a named-metric map with stable JSON encoding,
	// used by the benchmark-regression harness.
	BenchBaseline = analysis.Baseline
	// BenchDelta is one metric difference between two baselines.
	BenchDelta = analysis.Delta
)

// Binding parameter values (Section 4.1).
const (
	BindNone = model.BindNone
	BindOfFf = model.BindOfFf
	BindOpFp = model.BindOpFp
	BindBd   = model.BindBd
	BindBn   = model.BindBn
)

// Analyze runs the full post-run analysis over a recorded span stream:
// critical path, per-phase bottleneck attribution and utilization
// timelines. Render it with (*AnalysisReport).WriteReport.
func Analyze(spans []SpanEvent, makespan float64, opts AnalysisOptions) *AnalysisReport {
	return analysis.Analyze(spans, makespan, opts)
}

// ExtractCriticalPath returns the dependency-weighted longest chain
// through a span stream; hop durations partition [0, makespan] exactly.
func ExtractCriticalPath(spans []SpanEvent, makespan float64) []CriticalPathHop {
	return analysis.ExtractCriticalPath(spans, makespan)
}

// NewBenchBaseline returns an empty benchmark baseline.
func NewBenchBaseline() *BenchBaseline { return analysis.NewBaseline() }

// DiffBaselines compares two baselines at a relative tolerance and
// returns the metrics that differ (plus missing/extra names).
func DiffBaselines(old, fresh *BenchBaseline, tol float64) []BenchDelta {
	return analysis.Diff(old, fresh, tol)
}

// HeadlineBaseline runs the headline benchmark suite (the metrics
// gated by BENCH_baseline.json) and returns the fresh values.
func HeadlineBaseline() (*BenchBaseline, error) { return exper.Headline() }

// NewRecorder returns an empty span recorder ready to pass as a config
// Observer.
func NewRecorder() *Recorder { return trace.NewRecorder() }

// NewMetrics returns an empty metrics registry; fill it from a
// Telemetry digest with (*Telemetry).Fill.
func NewMetrics() *Metrics { return trace.NewMetrics() }

// RunLU simulates the distributed block LU decomposition of Section 5.1
// on the configured machine and returns measured throughput, the
// derived partition (bf/bp/l) and the model prediction.
func RunLU(cfg LUConfig) (*LUResult, error) { return core.RunLU(cfg) }

// RunFW simulates the distributed blocked Floyd-Warshall algorithm of
// Section 5.2.
func RunFW(cfg FWConfig) (*FWResult, error) { return core.RunFW(cfg) }

// RunOpMM simulates one b×b block matrix multiplication at stripe
// granularity with the given FPGA row share (Figure 5's experiment).
func RunOpMM(mc MachineConfig, b, pes, bf int) (*OpMMResult, error) {
	return core.RunOpMM(mc, b, pes, bf)
}

// RunMM simulates hybrid matrix multiplication — the pure Equation (1)
// case: per-node compute/DMA balance, no network communication.
func RunMM(cfg MMConfig) (*MMResult, error) { return core.RunMM(cfg) }

// RunCholesky simulates the distributed hybrid Cholesky factorization
// extension (same co-design engine as LU, half the flops, square-root
// unit on the panel datapath).
func RunCholesky(cfg CholConfig) (*CholResult, error) { return core.RunCholesky(cfg) }

// RunQR simulates the distributed hybrid Householder QR factorization
// extension (panel reflectors broadcast, compact-WY trailing updates
// split per Equation (4)).
func RunQR(cfg QRConfig) (*QRResult, error) { return core.RunQR(cfg) }

// RunCG simulates the hybrid conjugate-gradient extension (after the
// FPGA-augmented CG the paper cites as related work [9]): the operator
// apply splits row-wise per Equation (1), the FPGA share resident in
// SRAM; iterates are verified bit-exact against the sequential solver.
func RunCG(cfg CGConfig) (*CGRunResult, error) { return core.RunCG(cfg) }

// RunSpMV simulates one hybrid sparse matrix-vector product y = Ax: the
// CSR operator's rows split between FPGA stream and processor per
// Equation (1) with nnz-proportional memory terms, and the result is
// verified against the sequential CSR apply. Density 0 runs the dense
// operator, where the solved split collapses to the processor side.
func RunSpMV(cfg SpMVConfig) (*SpMVResult, error) { return core.RunSpMV(cfg) }

// RunSpMM simulates a sparse matrix-multi-vector product as repeated
// applies (RHS chained power-iteration style); when the FPGA share fits
// SRAM the operator is loaded once and applied from residency.
func RunSpMM(cfg SpMVConfig) (*SpMVResult, error) { return core.RunSpMM(cfg) }

// Machine presets (Section 3).
var (
	// MachineXD1 is one Cray XD1 chassis: the paper's testbed.
	MachineXD1 = machine.XD1
	// MachineXT3DRC is a Cray XT3 partition with DRC Virtex-4 modules.
	MachineXT3DRC = machine.XT3DRC
	// MachineSRC6 is an SRC-6 MAPstation cluster.
	MachineSRC6 = machine.SRC6
	// MachineRASC is an SGI RASC RC100 system.
	MachineRASC = machine.RASC
)

// Experiments regenerates the paper's tables and figures.
var (
	// ExperimentTable1 regenerates Table 1 (panel routine latencies).
	ExperimentTable1 = exper.Table1
	// ExperimentFig5 regenerates Figure 5 (block-multiply latency vs bf).
	ExperimentFig5 = exper.Fig5
	// ExperimentFig6 regenerates Figure 6 (iteration latency vs l).
	ExperimentFig6 = exper.Fig6
	// ExperimentFig7 regenerates Figure 7 (FW iteration latency vs l1).
	ExperimentFig7 = exper.Fig7
	// ExperimentFig8 regenerates Figure 8 (LU GFLOPS vs n/b).
	ExperimentFig8 = exper.Fig8
	// ExperimentFig9 regenerates Figure 9 (hybrid vs baselines).
	ExperimentFig9 = exper.Fig9
	// ExperimentPrediction regenerates the Section 6.2 accuracy study.
	ExperimentPrediction = exper.Prediction
	// ExperimentAblations runs the DESIGN.md design-choice studies.
	ExperimentAblations = exper.Ablations
	// ExperimentExtensions runs the matmul/Cholesky extension study.
	ExperimentExtensions = exper.Extensions
	// ExperimentSparseRegimes contrasts the sparse and dense partition
	// regimes of the Equation (1) row split (spmv/spmm).
	ExperimentSparseRegimes = exper.SparseRegimes
	// ExperimentSensitivity sweeps system parameters through the model.
	ExperimentSensitivity = exper.Sensitivity
	// ExperimentDesignSpace regenerates the Section 4.5 design
	// selection by sweeping the LU PE-array width on the XD1.
	ExperimentDesignSpace = exper.DesignSpace
	// AllExperiments regenerates everything.
	AllExperiments = exper.All
)

// Design-space exploration (internal/sweep). A SweepGrid declares axes
// over applications, machines, sizes and partitions; RunSweep
// evaluates its cross product on a bounded worker pool and reduces the
// outcomes to a Pareto frontier plus sensitivity tables. See also
// cmd/sweep.
type (
	// SweepGrid is a declarative design-space description whose cross
	// product is the point set.
	SweepGrid = sweep.Grid
	// SweepPoint is one fully-specified design-space coordinate.
	SweepPoint = sweep.Point
	// SweepOutcome is the evaluation of one point.
	SweepOutcome = sweep.Outcome
	// SweepOptions tunes a sweep run (worker count, progress callback).
	SweepOptions = sweep.Options
	// SweepProgress is the live snapshot delivered to
	// SweepOptions.OnProgress after each completed point.
	SweepProgress = sweep.Progress
	// SweepResult is a completed sweep: outcomes in deterministic
	// order, the Pareto frontier and per-axis sensitivity tables.
	SweepResult = sweep.Result
	// SweepStats counts evaluations and memoization hits.
	SweepStats = sweep.Stats
	// SweepSensitivityTable aggregates throughput per value of one
	// grid axis.
	SweepSensitivityTable = sweep.SensitivityTable
	// SweepScreenOptions tunes a two-stage RunScreenedSweep (worker
	// count plus the screening dominance margin).
	SweepScreenOptions = sweep.ScreenOptions
	// SweepScreenSummary reports what a screening pass kept and why.
	SweepScreenSummary = sweep.ScreenSummary
)

// Sweep evaluation methods.
const (
	// SweepMethodModel evaluates points with the closed-form model.
	SweepMethodModel = sweep.MethodModel
	// SweepMethodSim evaluates points with the full simulation.
	SweepMethodSim = sweep.MethodSim
)

// RunSweep evaluates every point of the grid in parallel and returns
// the deterministic, Pareto-annotated result set. The context cancels
// the sweep between point evaluations.
func RunSweep(ctx context.Context, g SweepGrid, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(ctx, g, opts)
}

// RunScreenedSweep evaluates the grid in two stages: a closed-form
// model screen over the full grid, then refinement of only the
// Pareto-candidate subset (model frontier, dominance-margin band,
// axis neighbors) under the grid's own method. The result covers the
// refined subset and carries a SweepScreenSummary.
func RunScreenedSweep(ctx context.Context, g SweepGrid, opts SweepScreenOptions) (*SweepResult, error) {
	return sweep.RunScreened(ctx, g, opts)
}

// SweepDefaultRefineMargin is the screening dominance margin used when
// SweepScreenOptions.RefineMargin is zero.
const SweepDefaultRefineMargin = sweep.DefaultRefineMargin

// MachinePreset returns a fresh copy of a named machine preset
// ("xd1", "xt3", "src6", "rasc").
func MachinePreset(name string) (MachineConfig, error) { return machine.Preset(name) }

// Fault injection and degraded-mode resilience (internal/fault,
// DESIGN.md §9). A FaultSpec describes deterministic seed-driven
// faults; an injector built from it plugs into LUConfig.Faults or
// FWConfig.Faults, dilating the affected subsystem's charges while the
// design detects the divergence and re-solves its partition mid-run.
// See also cmd/hybridsim -faults.
type (
	// FaultSpec is the JSON fault specification: scheduled events,
	// seed-expanded random batches and detection tuning.
	FaultSpec = fault.Spec
	// FaultEvent is one scheduled fault.
	FaultEvent = fault.Event
	// FaultKind names one fault mechanism.
	FaultKind = fault.Kind
	// FaultInjector applies a spec's faults to a run as deterministic
	// time dilation and collects the observed-rate telemetry that
	// drives divergence detection.
	FaultInjector = fault.Injector
	// Resilience folds a nominal, a faulted and an oracle run into the
	// degraded-mode report (makespan inflation, recovery lag,
	// repartition history).
	Resilience = analysis.Resilience
)

// Fault kinds.
const (
	// FaultThrottleBd throttles a node's FPGA-DRAM bandwidth (Bd).
	FaultThrottleBd = fault.ThrottleBd
	// FaultThrottleBn throttles a node's network bandwidth (Bn).
	FaultThrottleBn = fault.ThrottleBn
	// FaultCPUSlow slows a node's processor (Op·Fp) — a straggler.
	FaultCPUSlow = fault.CPUSlow
	// FaultFPGAStall stalls a node's FPGA for the window (Of·Ff).
	FaultFPGAStall = fault.FPGAStall
	// FaultNodeKill removes a node permanently (fail-stop).
	FaultNodeKill = fault.NodeKill
)

// NewFaultInjector validates a spec against the node count, expands its
// random batches from the spec seed and returns the injector to place
// in a run config. The same spec and seed always produce the same
// faults.
func NewFaultInjector(spec *FaultSpec, nodes int) (*FaultInjector, error) {
	return fault.New(spec, nodes)
}

// LoadFaultSpec reads and parses a fault spec JSON file, rejecting
// unknown fields.
func LoadFaultSpec(path string) (*FaultSpec, error) { return fault.Load(path) }

// Differential run analysis (internal/trace persistence +
// internal/analysis.Compare, DESIGN.md §11). Persist a run's span
// stream with WriteSpans, reload it (or an old WriteSpansCSV dump)
// with ReadSpansFile, and explain the difference between two runs with
// CompareRuns: the makespan delta decomposes into per-phase and
// per-resource contributions that sum exactly to the attributed total,
// the critical paths are diffed, and bottleneck-binding transitions
// are reported against the Eq. 4-6 predictions. See also
// cmd/tracediff, hybridsim -spans-json/-diff-against and
// cmd/sweep -archive-spans.
type (
	// SpanMeta is the run metadata header of a persisted span stream.
	SpanMeta = trace.Meta
	// SpanRecord is the serialized form of one SpanEvent — the single
	// schema shared by the JSONL, CSV and Perfetto exporters.
	SpanRecord = trace.SpanRecord
	// ComparisonRun is one side of a differential comparison: a label,
	// a makespan, the span stream, and optional expected bindings.
	ComparisonRun = analysis.Run
	// Comparison is the full differential analysis of two runs.
	Comparison = analysis.Comparison
	// ComparisonPhaseDelta is one phase's contribution to the makespan
	// delta, split into busy/wait/idle movement.
	ComparisonPhaseDelta = analysis.PhaseDelta
	// ComparisonResourceDelta is one resource's contribution.
	ComparisonResourceDelta = analysis.ResourceDelta
	// ComparisonBindingShift reports one phase's bottleneck-binding
	// transition between the two runs.
	ComparisonBindingShift = analysis.BindingShift
	// ComparisonCritPath diffs the two runs' critical paths.
	ComparisonCritPath = analysis.CritPathDiff
	// FaultPhaseOverhead is one phase's share of a faulted run's
	// dilation (Resilience.Overheads).
	FaultPhaseOverhead = analysis.PhaseOverhead
)

// CompareRuns runs the differential analysis engine over two runs.
// Render the result with (*Comparison).WriteReport (human table) or
// (*Comparison).WriteJSON (byte-deterministic JSON).
func CompareRuns(base, cand ComparisonRun) *Comparison { return analysis.Compare(base, cand) }

// WriteSpans persists a span stream as versioned JSONL: one metadata
// header line followed by one SpanRecord per span.
func WriteSpans(w io.Writer, meta SpanMeta, spans []SpanEvent) error {
	return trace.WriteSpans(w, meta, spans)
}

// ReadSpans reads a JSONL span stream written by WriteSpans.
func ReadSpans(r io.Reader) (SpanMeta, []SpanEvent, error) { return trace.ReadSpans(r) }

// ReadSpansFile reads a persisted span file, sniffing the format: the
// JSONL of WriteSpans or the CSV of (*Recorder).WriteSpansCSV (old or
// new header).
func ReadSpansFile(path string) (SpanMeta, []SpanEvent, error) { return trace.ReadSpansFile(path) }

// ArchiveFrontierSpans re-simulates every Pareto-optimal point of a
// completed sweep and persists each span stream as JSONL under dir,
// returning the files written.
func ArchiveFrontierSpans(res *SweepResult, dir string) ([]string, error) {
	return sweep.ArchiveFrontierSpans(res, dir)
}

// Co-design as a service (internal/serve, cmd/codesignd, DESIGN.md
// §12). The serve layer puts an HTTP/JSON API in front of the
// Equation (1)-(6) partition solvers and the sweep engine: POST
// /v1/solve answers one design query through a bounded LRU cache with
// request coalescing, POST /v1/design ranks a small grid
// synchronously, POST /v1/sweep + GET /v1/sweep/{id} run large grids
// as asynchronous jobs, and the live observability surface (/metrics,
// /statusz, pprof) is mounted on the same port. OPERATIONS.md is the
// operator reference (API schemas, error codes, tuning flags, metrics
// dictionary); cmd/loadgen is the matching load-generation harness.
type (
	// ServeConfig tunes the serve layer: cache and memo bounds,
	// admission limits, deadlines, grid caps. The zero value takes the
	// documented defaults.
	ServeConfig = serve.Config
	// ServeService is the transport-independent core of codesignd:
	// shared memoized evaluator, canonical-key solve cache with
	// coalescing, and the asynchronous sweep job store.
	ServeService = serve.Service
	// ServeServer is the HTTP front end: routing, admission control,
	// per-request deadlines and the error envelope around a
	// ServeService.
	ServeServer = serve.Server
	// ServeError is the typed API failure: HTTP status, machine-
	// readable code and human-readable message.
	ServeError = serve.Error
	// SolveRequest is one design-space query (POST /v1/solve); the
	// zero request is the paper's headline LU configuration.
	SolveRequest = serve.SolveRequest
	// SolveResponse is a solve answer: the normalized point, its
	// outcome, and how the lookup was satisfied.
	SolveResponse = serve.SolveResponse
	// DesignRequest asks for the best designs on a small grid
	// (POST /v1/design).
	DesignRequest = serve.DesignRequest
	// DesignResponse ranks the feasible designs by GFLOPS descending.
	DesignResponse = serve.DesignResponse
	// SweepJobRequest submits an asynchronous sweep job
	// (POST /v1/sweep).
	SweepJobRequest = serve.SweepRequest
	// SweepJobResponse is a job snapshot: id, status, and the full
	// sweep result once done.
	SweepJobResponse = serve.JobResponse
	// ObsRegistry is the process-wide metrics registry the serve layer
	// exports on /metrics (counters, gauges, histograms; distinct from
	// the per-run virtual-time Metrics).
	ObsRegistry = obs.Registry
)

// Memoization substrate (internal/cache): the generic bounded LRU,
// single-flight group and read-through loading cache behind both the
// sweep evaluator's memos and the serve layer's solve cache. The
// generic containers themselves stay internal; the observable pieces
// are re-exported.
type (
	// CacheStats counts a cache's lookups, hits, misses and evictions;
	// its HitRate method folds them to a ratio.
	CacheStats = cache.Stats
	// CacheSource says how a read-through lookup was satisfied.
	CacheSource = cache.Source
)

// Cache lookup sources (CacheSource values).
const (
	// CacheSourceHit is an LRU hit: the value was already cached.
	CacheSourceHit = cache.SourceHit
	// CacheSourceShared joined a concurrent identical computation.
	CacheSourceShared = cache.SourceShared
	// CacheSourceComputed ran the computation itself.
	CacheSourceComputed = cache.SourceComputed
)

// NewObsRegistry returns a fresh live-metrics registry to pass to
// NewServeService or NewServeServer; export it over HTTP with
// internal/obs-style mounts or let ServeServer mount it for you.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewServeService builds the transport-independent serve core with
// its metric families registered on reg. Callers embed it directly
// (Solve/Design/SubmitSweep/Job); Close cancels background jobs.
func NewServeService(cfg ServeConfig, reg *ObsRegistry) *ServeService {
	return serve.NewService(cfg, reg)
}

// NewServeServer builds the full codesignd HTTP server; serve its
// Handler() with net/http. See cmd/codesignd for the CLI wrapper.
func NewServeServer(cfg ServeConfig, reg *ObsRegistry) *ServeServer {
	return serve.New(cfg, reg)
}
