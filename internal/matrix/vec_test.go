package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestDotAxpyNorm(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("Axpy = %v", y)
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Fatal("Norm2")
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestMatVecAgainstGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	a := Random(7, 5, rng)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.Float64()
	}
	y := make([]float64, 7)
	MatVec(a, x, y)
	xm := NewFromSlice(5, 1, append([]float64(nil), x...))
	want := Mul(a, xm)
	for i := range y {
		if math.Abs(y[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MatVec[%d] = %v want %v", i, y[i], want.At(i, 0))
		}
	}
}

func TestMatVecRangeCoversMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	a := Random(9, 9, rng)
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.Float64()
	}
	full := make([]float64, 9)
	MatVec(a, x, full)
	split := make([]float64, 9)
	MatVecRange(a, x, split, 0, 4)
	MatVecRange(a, x, split, 4, 9)
	for i := range full {
		if full[i] != split[i] {
			t.Fatalf("row-split MatVec differs at %d", i)
		}
	}
}

func TestCGSolvesDenseSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	a := RandomSPD(40, rng)
	xTrue := make([]float64, 40)
	for i := range xTrue {
		xTrue[i] = rng.Float64()
	}
	b := make([]float64, 40)
	MatVec(a, xTrue, b)
	res := CG(DenseOp{A: a}, b, 1e-12, 400)
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v want %v", i, res.X[i], xTrue[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	a := RandomSPD(5, rng)
	res := CG(DenseOp{A: a}, make([]float64, 5), 1e-10, 10)
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", res)
	}
}

func TestCGMaxIterStops(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	a := RandomSPD(30, rng)
	b := make([]float64, 30)
	for i := range b {
		b[i] = 1
	}
	res := CG(DenseOp{A: a}, b, 1e-300, 3) // unreachable tolerance
	if res.Converged || res.Iterations != 3 {
		t.Fatalf("maxIter: %+v", res)
	}
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	d := New(6, 8)
	for i := 0; i < 6; i++ {
		for j := 0; j < 8; j++ {
			if rng.Float64() < 0.3 {
				d.Set(i, j, rng.Float64())
			}
		}
	}
	s := FromDense(d)
	if !s.ToDense().Equal(d) {
		t.Fatal("CSR round trip")
	}
	r, c := s.Dims()
	if r != 6 || c != 8 {
		t.Fatal("CSR dims")
	}
}

func TestCSRApplyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(506))
	s := RandomSparseSPD(20, 0.2, rng)
	d := s.ToDense()
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.Float64()
	}
	ys := make([]float64, 20)
	yd := make([]float64, 20)
	s.Apply(x, ys)
	MatVec(d, x, yd)
	for i := range ys {
		if math.Abs(ys[i]-yd[i]) > 1e-12 {
			t.Fatalf("SpMV differs at %d", i)
		}
	}
}

func TestCSRApplyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(507))
	s := RandomSparseSPD(15, 0.3, rng)
	x := make([]float64, 15)
	for i := range x {
		x[i] = rng.Float64()
	}
	full := make([]float64, 15)
	s.Apply(x, full)
	split := make([]float64, 15)
	s.ApplyRange(x, split, 0, 7)
	s.ApplyRange(x, split, 7, 15)
	for i := range full {
		if full[i] != split[i] {
			t.Fatalf("row-split SpMV differs at %d", i)
		}
	}
}

func TestCSRCounts(t *testing.T) {
	d := New(3, 3)
	d.Set(0, 1, 5)
	d.Set(2, 0, 1)
	d.Set(2, 2, 2)
	s := FromDense(d)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	if s.RowNNZ(0) != 1 || s.RowNNZ(1) != 0 || s.RowNNZ(2) != 2 {
		t.Fatal("RowNNZ")
	}
	if s.RangeNNZ(0, 2) != 1 || s.RangeNNZ(0, 3) != 3 {
		t.Fatal("RangeNNZ")
	}
}

func TestSparseCGConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(508))
	s := RandomSparseSPD(60, 0.05, rng)
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.Float64()
	}
	res := CG(s, b, 1e-10, 600)
	if !res.Converged {
		t.Fatalf("sparse CG did not converge: %+v", res)
	}
	// Check the residual directly.
	ax := make([]float64, 60)
	s.Apply(res.X, ax)
	Axpy(-1, b, ax)
	if Norm2(ax) > 1e-8*Norm2(b)+1e-12 {
		t.Fatalf("residual %g", Norm2(ax))
	}
}

func TestRandomSparseSPDSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(509))
	s := RandomSparseSPD(25, 0.2, rng)
	d := s.ToDense()
	if !d.Equal(d.Transpose()) {
		t.Fatal("not symmetric")
	}
	if err := Cholesky(d.Clone()); err != nil {
		t.Fatalf("not positive definite: %v", err)
	}
}
