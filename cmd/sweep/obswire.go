package main

import (
	"fmt"
	"time"

	"codesign/internal/cli"
	"codesign/internal/obs"
	"codesign/internal/sweep"
)

// obsProgressSink registers the sweep_* metric family on reg and
// returns the OnProgress callback that keeps it current. total is the
// grid size (known before the run starts, so /metrics shows the
// denominator from the first scrape).
func obsProgressSink(reg *obs.Registry, total int) func(sweep.Progress) {
	totalG := reg.Gauge("sweep_points_total", "design points in the current pass")
	totalG.Set(float64(total))
	phaseG := reg.Gauge("sweep_phase", "active sweep pass: 0 single-stage, 1 screen, 2 refine")
	done := reg.Gauge("sweep_points_done", "design points evaluated so far")
	infeasible := reg.Gauge("sweep_points_infeasible", "completed points found infeasible")
	errored := reg.Gauge("sweep_points_errored", "completed points whose evaluation panicked")
	elapsed := reg.Gauge("sweep_elapsed_seconds", "wall-clock seconds since the sweep started")
	rate := reg.Gauge("sweep_rate_points_per_second", "completion rate over a moving window")
	eta := reg.Gauge("sweep_eta_seconds", "estimated seconds to completion (-1 = unknown)")
	placeHit := reg.Gauge("sweep_place_hit_rate", "fraction of place-and-route lookups served from memo")
	partHit := reg.Gauge("sweep_partition_hit_rate", "fraction of partition solves served from memo")
	pointSec := reg.Histogram("sweep_point_seconds", "per-point evaluation latency",
		obs.ExpBuckets(1e-4, 10, 7))
	return func(p sweep.Progress) {
		// Two-stage runs reset the denominator at the phase boundary:
		// each pass is its own run over its own point set.
		totalG.Set(float64(p.Total))
		switch p.Phase {
		case "screen":
			phaseG.Set(1)
		case "refine":
			phaseG.Set(2)
		default:
			phaseG.Set(0)
		}
		done.Set(float64(p.Done))
		infeasible.Set(float64(p.Infeasible))
		errored.Set(float64(p.Errored))
		elapsed.Set(p.Elapsed.Seconds())
		rate.Set(p.Rate)
		eta.Set(p.ETA.Seconds())
		placeHit.Set(p.Stats.PlaceHitRate())
		partHit.Set(p.Stats.PartitionHitRate())
		pointSec.Observe(p.PointSeconds)
		for w, busy := range p.WorkerBusy {
			reg.Gauge(fmt.Sprintf(`sweep_worker_busy_seconds{worker="%d"}`, w),
				"per-worker cumulative evaluation time").Set(busy.Seconds())
		}
	}
}

// progressTicker returns an OnProgress callback that logs a one-line
// status at most once per interval (and always on the final point of
// each pass). Two-stage runs prefix the pass name, and the counters
// restart at the screen/refine boundary:
//
//	sweep: 84/126 (66.7%) infeasible=9 rate=31.2/s eta=1s place-hit=99% part-hit=84%
//	sweep: refine 12/40 (30.0%) infeasible=0 rate=3.1/s eta=9s place-hit=99% part-hit=97%
func progressTicker(log *cli.Logger, interval time.Duration) func(sweep.Progress) {
	var last time.Time
	return func(p sweep.Progress) {
		now := time.Now()
		if p.Done < p.Total && now.Sub(last) < interval {
			return
		}
		last = now
		etaStr := "?"
		if p.ETA >= 0 {
			etaStr = p.ETA.Round(time.Second).String()
		}
		phase := ""
		if p.Phase != "" {
			phase = p.Phase + " "
		}
		log.Infof("%s%d/%d (%.1f%%) infeasible=%d errored=%d rate=%.1f/s eta=%s place-hit=%.0f%% part-hit=%.0f%%",
			phase, p.Done, p.Total, p.Percent(), p.Infeasible, p.Errored,
			p.Rate, etaStr, 100*p.Stats.PlaceHitRate(), 100*p.Stats.PartitionHitRate())
	}
}
