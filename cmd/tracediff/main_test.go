package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"codesign/internal/analysis"
	"codesign/internal/core"
	"codesign/internal/trace"
)

// writeFaultSpec drops a small fault spec whose window fits the ~1.7s
// virtual makespan of lu n=3000 b=600.
func writeFaultSpec(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "faults.json")
	spec := `{"window": 0.2, "events": [{"kind": "cpu-slow", "node": 2, "start": 0.3, "duration": 0.8, "factor": 0.4}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInlineDiffDeterministicAndAttributed(t *testing.T) {
	dir := t.TempDir()
	o := options{
		App: "lu", Machine: "xd1", N: 3000, B: 600, Mode: "hybrid",
		BF: -1, L: -1, L1: -1, CandPEs: -1,
		CandFaults: writeFaultSpec(t, dir),
	}

	var reports [2]bytes.Buffer
	var jsons [2][]byte
	for i := 0; i < 2; i++ {
		o.Out = filepath.Join(dir, "out.json")
		if err := run(o, &reports[i]); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(o.Out)
		if err != nil {
			t.Fatal(err)
		}
		jsons[i] = b
	}
	if !bytes.Equal(jsons[0], jsons[1]) {
		t.Fatal("comparison JSON is not byte-deterministic across invocations")
	}
	if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
		t.Fatal("human report is not deterministic across invocations")
	}

	var c analysis.Comparison
	if err := json.Unmarshal(jsons[0], &c); err != nil {
		t.Fatal(err)
	}
	if c.MakespanDelta <= 0 {
		t.Fatalf("fault did not dilate the run: delta %g", c.MakespanDelta)
	}
	// 100% of the makespan delta is attributed: contributions re-sum
	// bit-exactly and the residual is float noise.
	if got := c.AttributedSum(); got != c.AttributedDelta {
		t.Fatalf("contributions sum to %.17g, stored %.17g", got, c.AttributedDelta)
	}
	if r := c.Residual; r > 1e-9*c.CandMakespan || r < -1e-9*c.CandMakespan {
		t.Fatalf("residual %g too large", r)
	}

	out := reports[0].String()
	for _, want := range []string{"differential analysis", "phase contributions", "critical path", "bottleneck transitions", "span alignment"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFileDiffJSONLAndCSV(t *testing.T) {
	dir := t.TempDir()
	record := func(pes int) (*trace.Recorder, float64) {
		rec := trace.NewRecorder()
		r, err := core.RunLU(core.LUConfig{N: 3000, B: 600, PEs: pes, BF: -1, L: -1, Mode: core.Hybrid, Observer: rec})
		if err != nil {
			t.Fatal(err)
		}
		return rec, r.Seconds
	}
	recA, mkA := record(0)
	recB, mkB := record(4)

	basePath := filepath.Join(dir, "base.spans")
	f, err := os.Create(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := recA.WriteSpans(f, trace.Meta{App: "lu", Label: "nominal", Makespan: mkA}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Candidate side goes through the legacy CSV path to prove old
	// -spans-out dumps diff cleanly against new JSONL streams.
	candPath := filepath.Join(dir, "cand.csv")
	g, err := os.Create(candPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := recB.WriteSpansCSV(g); err != nil {
		t.Fatal(err)
	}
	g.Close()

	o := options{BaseFile: basePath, CandFile: candPath, Out: filepath.Join(dir, "d.json")}
	var report bytes.Buffer
	if err := run(o, &report); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(o.Out)
	if err != nil {
		t.Fatal(err)
	}
	var c analysis.Comparison
	if err := json.Unmarshal(raw, &c); err != nil {
		t.Fatal(err)
	}
	if c.BaseLabel != "nominal" {
		t.Fatalf("base label = %q, want meta label", c.BaseLabel)
	}
	if c.CandLabel != candPath {
		t.Fatalf("cand label = %q, want file path", c.CandLabel)
	}
	if c.BaseMakespan != mkA {
		t.Fatalf("base makespan = %g, want %g (from meta)", c.BaseMakespan, mkA)
	}
	// CSV carries no meta, so the makespan derives from the span ends;
	// the CSV's 9-decimal timestamps allow a rounding-sized deviation.
	if d := c.CandMakespan - mkB; d > 1e-8 || d < -1e-8 {
		t.Fatalf("cand makespan = %.12g, want about %.12g", c.CandMakespan, mkB)
	}
	if got := c.AttributedSum(); got != c.AttributedDelta {
		t.Fatalf("contributions sum to %.17g, stored %.17g", got, c.AttributedDelta)
	}
}

func TestCandOverridesAndErrors(t *testing.T) {
	c := candConfig(options{App: "lu", Machine: "xd1", N: 3000, B: 600, PEs: 4, Mode: "hybrid",
		CandMachine: "xt3", CandPEs: 8, CandN: 6000, CandB: 0, CandMode: ""})
	if c.Machine != "xt3" || c.PEs != 8 || c.N != 6000 || c.B != 600 || c.Mode != "hybrid" {
		t.Fatalf("candConfig = %+v", c)
	}

	// mm takes no faults.
	o := options{App: "mm", Machine: "xd1", N: 3000, B: 600, Mode: "hybrid",
		BF: -1, L: -1, L1: -1, CandPEs: -1, CandFaults: "nope.json"}
	if err := run(o, &bytes.Buffer{}); err == nil {
		t.Fatal("mm with faults should fail")
	}
	// Unknown app.
	o = options{App: "qr", Machine: "xd1", Mode: "hybrid", CandPEs: -1}
	if err := run(o, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown inline app should fail")
	}
}
