// Package sim is a deterministic process-based discrete-event simulation
// engine. Simulated entities (a node's processor, its FPGA, a DMA
// engine, a network link) are processes — goroutines that run one at a
// time under a scheduler and advance a shared virtual clock by waiting.
//
// The engine is the substrate on which the reconfigurable computing
// system is modeled: it charges virtual time for computation, DRAM
// transfers and network messages, and serializes contention on shared
// resources exactly as the co-design model of the paper requires (e.g.
// a processor that is communicating cannot compute, per Section 4.3,
// while an FPGA streaming from DRAM can — the overlap assumption of
// Section 4.5).
//
// Determinism: with the same program, every run produces the identical
// event order (ties in virtual time break by scheduling sequence
// number), so simulated latencies are reproducible to the last digit.
// Observers receive typed SpanEvents as activity completes; the
// internal/trace and internal/analysis layers consume that stream.
package sim
