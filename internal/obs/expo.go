package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// formatValue renders a float the way the Prometheus text format
// expects: shortest round-trip representation, with +Inf/-Inf/NaN
// spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName splices a label into a series name that may already carry
// a label block: seriesName(`x{a="1"}`, `le`, `0.5`) = `x{a="1",le="0.5"}`.
func seriesName(name, label, value string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + `,` + label + `="` + value + `"}`
	}
	return name + `{` + label + `="` + value + `"}`
}

// WritePrometheus writes every series in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family,
// then the series values, with histograms expanded into cumulative
// _bucket/_sum/_count series. Output is stable-sorted and
// byte-deterministic for identical registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range r.Snapshot() {
		fam := family(s.Name)
		if fam != lastFamily {
			if s.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", fam, s.Help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, s.Kind)
			lastFamily = fam
		}
		if s.Kind == "histogram" {
			// A histogram registered with a label block (e.g.
			// codesignd_request_seconds{endpoint="solve"}) keeps those
			// labels on every derived _bucket/_sum/_count series, so
			// per-label histograms of one family stay distinct.
			labels := ""
			if i := strings.IndexByte(s.Name, '{'); i >= 0 {
				labels = s.Name[i:]
			}
			for _, b := range s.Buckets {
				fmt.Fprintf(bw, "%s %d\n",
					seriesName(fam+"_bucket"+labels, "le", formatValue(float64(b.UpperBound))), b.Count)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", fam, labels, formatValue(float64(s.Sum)))
			fmt.Fprintf(bw, "%s_count%s %d\n", fam, labels, s.Count)
			continue
		}
		fmt.Fprintf(bw, "%s %s\n", s.Name, formatValue(float64(s.Value)))
	}
	return bw.Flush()
}

// Float is a float64 that marshals non-finite values as JSON strings
// ("+Inf", "-Inf", "NaN") instead of failing the whole document the
// way encoding/json does — a histogram's last bucket bound is always
// +Inf.
type Float float64

// MarshalJSON renders finite values as numbers and non-finite ones as
// their Prometheus spelling, quoted.
func (v Float) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return []byte(`"` + formatValue(f) + `"`), nil
	}
	return []byte(formatValue(f)), nil
}

// UnmarshalJSON parses both forms MarshalJSON produces: plain numbers
// and the quoted non-finite spellings.
func (v *Float) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		switch s[1 : len(s)-1] {
		case "+Inf":
			*v = Float(math.Inf(1))
			return nil
		case "-Inf":
			*v = Float(math.Inf(-1))
			return nil
		case "NaN":
			*v = Float(math.NaN())
			return nil
		}
		return fmt.Errorf("obs: invalid Float %s", s)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("obs: invalid Float %s", s)
	}
	*v = Float(f)
	return nil
}

// WriteJSON writes the snapshot as an indented JSON array of samples.
// Series order is the snapshot's stable (family, name) order — never
// map iteration order — so identical registry state yields
// byte-identical documents, the same discipline as the repository's
// baseline gates.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
