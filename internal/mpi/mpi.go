package mpi

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"codesign/internal/fabric"
	"codesign/internal/sim"
)

// ErrDeadRank reports that a message's destination rank was lost to an
// injected node-kill fault and stayed unreachable through every retry.
var ErrDeadRank = errors.New("mpi: destination rank is dead")

// Message is a delivered payload with its envelope.
type Message struct {
	Src     int
	Tag     int
	Bytes   int
	Payload any
}

type boxKey struct {
	dst, src, tag int
}

// World is a communicator spanning all fabric endpoints.
type World struct {
	eng   *sim.Engine
	fab   *fabric.Fabric
	boxes map[boxKey]*sim.Mailbox
	stats map[boxKey]*channelAgg
	// alive, when non-nil, reports whether a rank is still reachable at
	// a virtual time (installed by machine.System.InstallFaults).
	alive func(rank int, now float64) bool
}

// SetLiveness installs the rank-liveness oracle consulted by SendRetry.
// Nil (the default) treats every rank as alive.
func (w *World) SetLiveness(f func(rank int, now float64) bool) { w.alive = f }

// Alive reports whether rank is reachable at virtual time now.
func (w *World) Alive(rank int, now float64) bool {
	return w.alive == nil || w.alive(rank, now)
}

type channelAgg struct {
	messages int64
	bytes    int64
}

// ChannelStats aggregates traffic on one (src, dst, tag) channel.
type ChannelStats struct {
	Src, Dst, Tag int
	Messages      int64
	Bytes         int64
}

// NewWorld creates a communicator over fab.
func NewWorld(e *sim.Engine, fab *fabric.Fabric) *World {
	return &World{
		eng:   e,
		fab:   fab,
		boxes: make(map[boxKey]*sim.Mailbox),
		stats: make(map[boxKey]*channelAgg),
	}
}

// ChannelStats returns per-channel message counts and byte totals,
// sorted by (src, dst, tag) for deterministic reporting.
func (w *World) ChannelStats() []ChannelStats {
	out := make([]ChannelStats, 0, len(w.stats))
	for k, a := range w.stats {
		out = append(out, ChannelStats{
			Src: k.src, Dst: k.dst, Tag: k.tag,
			Messages: a.messages, Bytes: a.bytes,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		if out[i].Dst != out[j].Dst {
			return out[i].Dst < out[j].Dst
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

func (w *World) count(src, dst, tag, bytes int) {
	k := boxKey{dst: dst, src: src, tag: tag}
	a := w.stats[k]
	if a == nil {
		a = &channelAgg{}
		w.stats[k] = a
	}
	a.messages++
	a.bytes += int64(bytes)
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.fab.Nodes() }

func (w *World) box(dst, src, tag int) *sim.Mailbox {
	k := boxKey{dst, src, tag}
	mb, ok := w.boxes[k]
	if !ok {
		mb = sim.NewMailbox(w.eng, pairName("mpi", dst, "<-", src, tag))
		w.boxes[k] = mb
	}
	return mb
}

// Rank binds a process to an MPI rank.
type Rank struct {
	world *World
	id    int
	proc  *sim.Proc
}

// Attach binds process p to rank id. Each rank should be attached to
// exactly one long-lived process (the node's CPU program).
func (w *World) Attach(p *sim.Proc, id int) *Rank {
	if id < 0 || id >= w.Size() {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", id, w.Size()))
	}
	return &Rank{world: w, id: id, proc: p}
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.world.Size() }

// Send transmits payload to rank dst with the given tag, charging the
// caller bytes/Bn plus launch latency of wire time (the processor is
// busy for the duration — it cannot overlap computation).
func (r *Rank) Send(dst, tag, bytes int, payload any) {
	w := r.world
	w.count(r.id, dst, tag, bytes)
	w.fab.Transfer(r.proc, r.id, dst, bytes)
	w.box(dst, r.id, tag).Put(Message{Src: r.id, Tag: tag, Bytes: bytes, Payload: payload})
}

// RetryPolicy bounds SendRetry's attempts to reach a dead rank.
type RetryPolicy struct {
	// Attempts is the number of delivery attempts (minimum 1).
	Attempts int
	// Timeout is the virtual time charged per failed attempt — the
	// handshake timeout a real MPI layer would burn before retrying.
	Timeout float64
}

// SendRetry is Send with degraded-mode semantics: if the destination
// rank is dead (per the installed liveness oracle), each attempt
// charges the caller the policy's timeout before re-checking, and after
// the last attempt an error wrapping ErrDeadRank is returned instead of
// blocking forever. A live destination delivers exactly like Send.
func (r *Rank) SendRetry(dst, tag, bytes int, payload any, pol RetryPolicy) error {
	attempts := pol.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if r.world.Alive(dst, r.proc.Now()) {
			r.Send(dst, tag, bytes, payload)
			return nil
		}
		if pol.Timeout > 0 {
			r.proc.Wait(pol.Timeout)
		}
	}
	return fmt.Errorf("mpi: send %d->%d tag %d failed after %d attempts: %w",
		r.id, dst, tag, attempts, ErrDeadRank)
}

// Recv blocks until a message with the given source and tag arrives and
// returns it. Messages from one (src, tag) stream arrive in send order.
func (r *Rank) Recv(src, tag int) Message {
	mb := r.world.box(r.id, src, tag)
	return mb.Get(r.proc).(Message)
}

// Sendrecv sends to dst and then receives from src, both with tag.
// (A true MPI_Sendrecv would run both directions concurrently; the
// paper's program only exchanges with distinct partners, where the
// sequential form is equivalent.)
func (r *Rank) Sendrecv(dst, tag, bytes int, payload any, src int) Message {
	r.Send(dst, tag, bytes, payload)
	return r.Recv(src, tag)
}

// Bcast broadcasts payload of the given size from root: the root sends
// to every other rank one after another (linear broadcast — what a
// single-threaded MPI program on the node processor does), and the
// others receive. It returns the payload on every rank.
func (r *Rank) Bcast(root, tag, bytes int, payload any) any {
	if r.id == root {
		for dst := 0; dst < r.Size(); dst++ {
			if dst != root {
				r.Send(dst, tag, bytes, payload)
			}
		}
		return payload
	}
	return r.Recv(root, tag).Payload
}

// BcastTree is a binomial-tree broadcast: O(log p) rounds of
// point-to-point messages. Used by the ablation benchmarks to quantify
// what the linear broadcast costs the LU design.
func (r *Rank) BcastTree(root, tag, bytes int, payload any) any {
	p := r.Size()
	// Re-index so the root is virtual rank 0.
	vr := (r.id - root + p) % p
	if vr != 0 {
		// Parent: clear the highest set bit.
		hb := 1
		for hb<<1 <= vr {
			hb <<= 1
		}
		parent := ((vr ^ hb) + root) % p
		payload = r.Recv(parent, tag).Payload
	}
	// Children: set each bit above the current highest set bit.
	start := 1
	for start <= vr {
		start <<= 1
	}
	for bit := start; vr|bit < p; bit <<= 1 {
		r.Send(((vr|bit)+root)%p, tag, bytes, payload)
	}
	return payload
}

// Barrier blocks until every rank has entered it, using a gather to
// rank 0 followed by a broadcast of zero-byte control messages.
func (r *Rank) Barrier(tag int) {
	const ctrlBytes = 0
	if r.id == 0 {
		for src := 1; src < r.Size(); src++ {
			r.Recv(src, tag)
		}
		for dst := 1; dst < r.Size(); dst++ {
			r.Send(dst, tag, ctrlBytes, nil)
		}
		return
	}
	r.Send(0, tag, ctrlBytes, nil)
	r.Recv(0, tag)
}

// Gather collects each rank's payload at root; on root it returns a
// slice indexed by rank (root's own contribution included), elsewhere
// nil.
func (r *Rank) Gather(root, tag, bytes int, payload any) []any {
	if r.id != root {
		r.Send(root, tag, bytes, payload)
		return nil
	}
	out := make([]any, r.Size())
	out[root] = payload
	for src := 0; src < r.Size(); src++ {
		if src == root {
			continue
		}
		m := r.Recv(src, tag)
		out[src] = m.Payload
	}
	return out
}

// Reduce combines every rank's float64 contribution at root with op
// ("sum", "max", "min"); it returns the result on root and 0 elsewhere.
func (r *Rank) Reduce(root, tag int, value float64, op string) float64 {
	const scalarBytes = 8
	if r.id != root {
		r.Send(root, tag, scalarBytes, value)
		return 0
	}
	acc := value
	for src := 0; src < r.Size(); src++ {
		if src == root {
			continue
		}
		v := r.Recv(src, tag).Payload.(float64)
		switch op {
		case "sum":
			acc += v
		case "max":
			if v > acc {
				acc = v
			}
		case "min":
			if v < acc {
				acc = v
			}
		default:
			panic(fmt.Sprintf("mpi: unknown reduce op %q", op))
		}
	}
	return acc
}

// Allreduce is Reduce to rank 0 followed by a broadcast of the result.
func (r *Rank) Allreduce(tag int, value float64, op string) float64 {
	red := r.Reduce(0, tag, value, op)
	out := r.Bcast(0, tag, 8, red)
	return out.(float64)
}

// pairName composes the "op A<-B tagT" / "op A->B tagT" names of the
// point-to-point channels and helper signals, byte-identical to
// fmt.Sprintf(op+" %d"+sep+"%d tag%d", a, b, tag) without the fmt
// overhead — these names are built per message on the hot path.
func pairName(op string, a int, sep string, b, tag int) string {
	buf := make([]byte, 0, len(op)+len(sep)+28)
	buf = append(buf, op...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(a), 10)
	buf = append(buf, sep...)
	buf = strconv.AppendInt(buf, int64(b), 10)
	buf = append(buf, " tag"...)
	buf = strconv.AppendInt(buf, int64(tag), 10)
	return string(buf)
}
