package mpi

import (
	"testing"

	"codesign/internal/sim"
)

func TestChannelStatsCountsPerChannel(t *testing.T) {
	e, w := worldOf(t, 3, 1000)
	spawnRanks(e, w, func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(1, 7, 100, "a")
			r.Send(1, 7, 150, "b")
			r.Send(2, 9, 50, "c")
		case 1:
			r.Recv(0, 7)
			r.Recv(0, 7)
			r.Send(2, 9, 25, "d")
		case 2:
			r.Recv(0, 9)
			r.Recv(1, 9)
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	got := w.ChannelStats()
	want := []ChannelStats{
		{Src: 0, Dst: 1, Tag: 7, Messages: 2, Bytes: 250},
		{Src: 0, Dst: 2, Tag: 9, Messages: 1, Bytes: 50},
		{Src: 1, Dst: 2, Tag: 9, Messages: 1, Bytes: 25},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d channels, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("channel %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestChannelStatsEmptyWorld(t *testing.T) {
	e, w := worldOf(t, 2, 1000)
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := w.ChannelStats(); len(got) != 0 {
		t.Fatalf("expected no channels, got %+v", got)
	}
}
