package model

import (
	"fmt"
	"math"
)

// MMParams instantiates the design model for plain hybrid matrix
// multiplication — the application of the authors' earlier work [22]
// that Section 5.1.3 builds on. Each node multiplies its share of the
// result without network communication, so the partition is the pure
// Equation (1) case: Tp + Df/Bd = Tf per operand stripe.
type MMParams struct {
	// P is the node count; N the matrix size; K the PE count.
	P, N, K int
	// Ff is the FPGA matmul design clock.
	Ff float64
	// StripeRate is the processor's sustained FLOP/s on rank-K updates.
	StripeRate float64
	// Bd, Bw as in Params.
	Bd, Bw float64
	// SRAMBytes constrains the FPGA's result rows.
	SRAMBytes int64
}

// Validate checks the parameters.
func (mp MMParams) Validate() error {
	switch {
	case mp.P < 1:
		return fmt.Errorf("model: mm needs p >= 1, got %d", mp.P)
	case mp.N < 1 || mp.K < 1:
		return fmt.Errorf("model: bad geometry n=%d k=%d", mp.N, mp.K)
	case mp.N%mp.K != 0:
		return fmt.Errorf("model: n=%d must be a multiple of k=%d", mp.N, mp.K)
	case mp.N%mp.P != 0:
		return fmt.Errorf("model: n=%d must be a multiple of p=%d", mp.N, mp.P)
	case mp.Ff <= 0 || mp.StripeRate <= 0 || mp.Bd <= 0 || mp.Bw <= 0:
		return fmt.Errorf("model: non-positive rate")
	}
	return nil
}

// Width returns the result columns per node.
func (mp MMParams) Width() int { return mp.N / mp.P }

// StripeTimes returns the per-stripe costs for FPGA row share bf: the
// node multiplies an (n×k) stripe of A by a (k×w) stripe of B, the FPGA
// taking bf rows of the result and the processor n-bf.
func (mp MMParams) StripeTimes(bf int) (tf, tp, tmem float64) {
	w := float64(mp.Width())
	k := float64(mp.K)
	bp := float64(mp.N - bf)
	tf = float64(bf) * w / mp.Ff // bf·w cycles per stripe on the array
	tp = 2 * bp * k * w / mp.StripeRate
	tmem = (float64(bf)*k + k*w) * mp.Bw / mp.Bd
	return tf, tp, tmem
}

// SolvePartition solves Equation (1) per stripe: Tf = Tmem + Tp, giving
// the FPGA's result-row share bf (a multiple of K, clamped by SRAM).
func (mp MMParams) SolvePartition() (bf, bp int) {
	w := float64(mp.Width())
	k := float64(mp.K)
	n := float64(mp.N)
	// bf·w/Ff - bf·k·bw/Bd + 2·bf·k·w/R = k·w·bw/Bd + 2·n·k·w/R
	coef := w/mp.Ff - k*mp.Bw/mp.Bd + 2*k*w/mp.StripeRate
	rhs := k*w*mp.Bw/mp.Bd + 2*n*k*w/mp.StripeRate
	raw := rhs / coef
	bf = int(math.Round(raw/k)) * mp.K
	if bf < 0 {
		bf = 0
	}
	if bf > mp.N {
		bf = mp.N
	}
	if mp.SRAMBytes > 0 {
		maxBf := int(float64(mp.SRAMBytes) / mp.Bw / w)
		maxBf -= maxBf % mp.K
		if bf > maxBf {
			bf = maxBf
		}
	}
	return bf, mp.N - bf
}

// PredictMM runs the Section 4.5 predictor: n/k stripes per node, all
// transfers overlapped with FPGA compute.
func (mp MMParams) PredictMM(bf int) Prediction {
	tf, tp, _ := mp.StripeTimes(bf)
	stripes := float64(mp.N / mp.K)
	n := float64(mp.N)
	return predict(stripes*tp, stripes*tf, 2*n*n*n)
}
