package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// chainRecorder captures the full interleaved event+span stream so
// fused and unfused runs can be compared for byte-level equivalence.
type chainRecorder struct {
	lines []string
}

func (r *chainRecorder) Event(t float64, proc, action string) {
	r.lines = append(r.lines, fmt.Sprintf("event t=%.9g proc=%s action=%s", t, proc, action))
}

func (r *chainRecorder) Span(s SpanEvent) {
	r.lines = append(r.lines, fmt.Sprintf("span cat=%s dev=%s proc=%s res=%s phase=%s bytes=%d start=%.9g end=%.9g",
		s.Category, s.Device, s.Proc, s.Resource, s.Phase, s.Bytes, s.Start, s.End))
}

// runChainScenario runs body twice — once charging sequences with the
// unfused per-charge loop, once with the fused path — and asserts the
// event/span streams, final times, and reported errors are identical.
// body receives a "use" function that charges a sequence on a resource
// one way or the other.
func runChainScenario(t *testing.T, build func(e *Engine, use func(p *Proc, r *Resource, cs []Charge))) {
	t.Helper()
	run := func(fused bool) ([]string, float64, error) {
		e := New()
		rec := &chainRecorder{}
		e.Observe(rec)
		use := func(p *Proc, r *Resource, cs []Charge) {
			if fused {
				r.UseSeq(p, cs)
				return
			}
			for _, c := range cs {
				r.UseCat(p, c.Cat, c.Bytes, c.Dt)
			}
		}
		build(e, use)
		err := e.Run(0)
		return rec.lines, e.Now(), err
	}
	plain, tPlain, errPlain := run(false)
	fused, tFused, errFused := run(true)
	if tPlain != tFused {
		t.Fatalf("final time: unfused %.9g, fused %.9g", tPlain, tFused)
	}
	if (errPlain == nil) != (errFused == nil) {
		t.Fatalf("errors differ: unfused %v, fused %v", errPlain, errFused)
	}
	if !reflect.DeepEqual(plain, fused) {
		max := len(plain)
		if len(fused) > max {
			max = len(fused)
		}
		for i := 0; i < max; i++ {
			a, b := "<missing>", "<missing>"
			if i < len(plain) {
				a = plain[i]
			}
			if i < len(fused) {
				b = fused[i]
			}
			if a != b {
				t.Errorf("line %d:\n  unfused: %s\n  fused:   %s", i, a, b)
			}
		}
		t.Fatalf("streams diverge: %d unfused vs %d fused lines", len(plain), len(fused))
	}
}

func TestUseSeqUncontendedMatchesLoop(t *testing.T) {
	runChainScenario(t, func(e *Engine, use func(*Proc, *Resource, []Charge)) {
		r := NewResource(e, "cpu0", 1)
		r.SetDevice(DeviceCPU)
		e.Go("worker", func(p *Proc) {
			p.SetPhase("update")
			use(p, r, []Charge{
				{Cat: CatNetwork, Dt: 0.25},
				{Cat: CatDMA, Bytes: 4096, Dt: 0.5},
				{Cat: CatCompute, Dt: 1.5},
			})
		})
	})
}

func TestUseSeqContendedMatchesLoop(t *testing.T) {
	runChainScenario(t, func(e *Engine, use func(*Proc, *Resource, []Charge)) {
		r := NewResource(e, "cpu0", 1)
		r.SetDevice(DeviceCPU)
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("worker%d", i)
			e.Go(name, func(p *Proc) {
				for round := 0; round < 2; round++ {
					use(p, r, []Charge{
						{Cat: CatNetwork, Dt: 0.1},
						{Cat: CatDMA, Bytes: 1 << 10, Dt: 0.2},
						{Cat: CatCompute, Dt: 0.3},
					})
				}
			})
		}
	})
}

// A capacity-2 resource exercises the partial-contention regime where
// some intermediate re-acquires succeed and others queue.
func TestUseSeqCapacityTwoMatchesLoop(t *testing.T) {
	runChainScenario(t, func(e *Engine, use func(*Proc, *Resource, []Charge)) {
		r := NewResource(e, "pool", 2)
		for i := 0; i < 4; i++ {
			dt := 0.1 * float64(i+1)
			e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
				use(p, r, []Charge{
					{Cat: CatCompute, Dt: dt},
					{Cat: CatCompute, Dt: 0.15},
				})
			})
		}
	})
}

func TestUseSeqZeroAndNegativeDurations(t *testing.T) {
	runChainScenario(t, func(e *Engine, use func(*Proc, *Resource, []Charge)) {
		r := NewResource(e, "cpu0", 1)
		e.Go("worker", func(p *Proc) {
			use(p, r, []Charge{
				{Cat: CatNetwork, Dt: 0},
				{Cat: CatDMA, Dt: -1},
				{Cat: CatCompute, Dt: 0.5},
			})
		})
	})
}

// Sequences longer than the inline buffer fall back to the unfused
// loop; behavior must stay identical there too.
func TestUseSeqOverflowFallback(t *testing.T) {
	runChainScenario(t, func(e *Engine, use func(*Proc, *Resource, []Charge)) {
		r := NewResource(e, "cpu0", 1)
		cs := make([]Charge, chainCap+3)
		for i := range cs {
			cs[i] = Charge{Cat: CatCompute, Dt: 0.1 * float64(i+1)}
		}
		e.Go("worker", func(p *Proc) { use(p, r, cs) })
	})
}

func TestUseSeqEmptyAndSingle(t *testing.T) {
	e := New()
	r := NewResource(e, "cpu0", 1)
	e.Go("worker", func(p *Proc) {
		r.UseSeq(p, nil)
		r.UseSeq(p, []Charge{{Cat: CatCompute, Dt: 2}})
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 2 {
		t.Fatalf("final time %g, want 2", e.Now())
	}
	if r.Acquires() != 1 {
		t.Fatalf("acquires %d, want 1", r.Acquires())
	}
}

func TestWaitSeqMatchesLoop(t *testing.T) {
	run := func(fused bool) ([]string, float64) {
		e := New()
		rec := &chainRecorder{}
		e.Observe(rec)
		cs := []Charge{
			{Cat: CatNetwork, Dt: 0.25},
			{Cat: CatCompute, Dt: 0.75},
		}
		for i := 0; i < 2; i++ {
			e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
				if fused {
					p.WaitSeq(DeviceCPU, "cpu", cs)
					return
				}
				for _, c := range cs {
					p.WaitSpanOn(c.Cat, DeviceCPU, "cpu", c.Bytes, c.Dt)
				}
			})
		}
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return rec.lines, e.Now()
	}
	plain, tPlain := run(false)
	fused, tFused := run(true)
	if tPlain != tFused || !reflect.DeepEqual(plain, fused) {
		t.Fatalf("WaitSeq diverges from WaitSpanOn loop:\nunfused: %v\nfused: %v", plain, fused)
	}
}

// Resource accounting (utilization integral, acquire/wait counts) must
// be identical whichever path charged the sequence.
func TestUseSeqResourceAccounting(t *testing.T) {
	measure := func(fused bool) (busy, waitInt float64, acquires, waits int64) {
		e := New()
		r := NewResource(e, "cpu0", 1)
		cs := []Charge{
			{Cat: CatNetwork, Dt: 0.2},
			{Cat: CatCompute, Dt: 0.4},
		}
		for i := 0; i < 3; i++ {
			e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
				if fused {
					r.UseSeq(p, cs)
					return
				}
				for _, c := range cs {
					r.UseCat(p, c.Cat, c.Bytes, c.Dt)
				}
			})
		}
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return r.BusySeconds(), r.ContentionSeconds(), r.Acquires(), r.Waits()
	}
	b1, w1, a1, q1 := measure(false)
	b2, w2, a2, q2 := measure(true)
	if b1 != b2 || w1 != w2 || a1 != a2 || q1 != q2 {
		t.Fatalf("accounting diverges: unfused busy=%g wait=%g acq=%d waits=%d, fused busy=%g wait=%g acq=%d waits=%d",
			b1, w1, a1, q1, b2, w2, a2, q2)
	}
}

// A process parked mid-chain must appear in deadlock reports with the
// same reason the unfused path would record.
func TestChainDeadlockReason(t *testing.T) {
	e := New()
	r := NewResource(e, "cpu0", 1)
	gate := NewSignal(e, "gate")
	e.Go("holder", func(p *Proc) {
		r.Acquire(p)
		gate.Wait(p) // holds the unit forever
	})
	e.Go("chained", func(p *Proc) {
		p.Wait(0.1) // let holder win the unit
		r.UseSeq(p, []Charge{
			{Cat: CatNetwork, Dt: 0.1},
			{Cat: CatCompute, Dt: 0.2},
		})
	})
	err := e.Run(0)
	d, ok := err.(*Deadlock)
	if !ok {
		t.Fatalf("want deadlock, got %v", err)
	}
	if got := d.Stuck["chained"]; got != "acquire cpu0" {
		t.Fatalf("chained proc reason %q, want %q", got, "acquire cpu0")
	}
}

// The horizon abort path must unwind a process parked mid-chain
// without leaking its goroutine or panicking.
func TestChainHorizonAbort(t *testing.T) {
	e := New()
	r := NewResource(e, "cpu0", 1)
	done := false
	e.Go("worker", func(p *Proc) {
		r.UseSeq(p, []Charge{
			{Cat: CatNetwork, Dt: 10},
			{Cat: CatCompute, Dt: 10},
		})
		done = true
	})
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("worker should have been cut off at the horizon")
	}
	if e.Now() != 5 {
		t.Fatalf("final time %g, want horizon 5", e.Now())
	}
}

// FusedSteps counts exactly the intermediate boundaries that skipped a
// park; handoff and self-resume counts drop accordingly.
func TestChainFusedStepsCounter(t *testing.T) {
	e := New()
	var c Counters
	e.SetCounters(&c)
	r := NewResource(e, "cpu0", 1)
	e.Go("worker", func(p *Proc) {
		r.UseSeq(p, []Charge{
			{Cat: CatNetwork, Dt: 0.1},
			{Cat: CatDMA, Dt: 0.2},
			{Cat: CatCompute, Dt: 0.3},
		})
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := c.FusedSteps.Load(); got != 2 {
		t.Fatalf("FusedSteps = %d, want 2 (three charges, one park)", got)
	}
	s := c.Snapshot()
	if s.FusedSteps != 2 {
		t.Fatalf("snapshot FusedSteps = %d, want 2", s.FusedSteps)
	}
}
