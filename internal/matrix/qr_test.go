package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstructs(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {4, 4}, {8, 5}, {20, 20}, {30, 12}} {
		m, n := dims[0], dims[1]
		rng := rand.New(rand.NewSource(int64(400 + m + n)))
		a := Random(m, n, rng)
		orig := a.Clone()
		tau := QR(a)
		q, r := QRExplicit(a, tau)
		if got := Mul(q, r); !got.EqualApprox(orig, 1e-9) {
			t.Fatalf("%dx%d: QR != A, maxdiff %g", m, n, got.MaxDiff(orig))
		}
	}
}

func TestQROrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	a := Random(15, 9, rng)
	tau := QR(a)
	q, _ := QRExplicit(a, tau)
	qtq := Mul(q.Transpose(), q)
	if !qtq.EqualApprox(Identity(9), 1e-10) {
		t.Fatalf("Q^T Q != I, maxdiff %g", qtq.MaxDiff(Identity(9)))
	}
}

func TestQRUpperTriangularR(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	a := Random(10, 10, rng)
	tau := QR(a)
	_, r := QRExplicit(a, tau)
	for i := 0; i < 10; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %v below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestBlockQRMatchesUnblocked(t *testing.T) {
	for _, tc := range []struct{ m, n, bs int }{{12, 12, 3}, {16, 8, 4}, {20, 20, 20}, {18, 15, 4}} {
		rng := rand.New(rand.NewSource(int64(410 + tc.m)))
		a := Random(tc.m, tc.n, rng)
		u := a.Clone()
		tauU := QR(u)
		bl := a.Clone()
		tauB := BlockQR(bl, tc.bs)
		// The blocked algorithm computes the same reflectors in the
		// same order, so the factored forms agree bit for bit.
		if !u.Equal(bl) {
			t.Fatalf("%+v: blocked factored form differs, maxdiff %g", tc, u.MaxDiff(bl))
		}
		for k := range tauU {
			if tauU[k] != tauB[k] {
				t.Fatalf("%+v: tau[%d] differs", tc, k)
			}
		}
	}
}

func TestApplyQTInvertsApplyQ(t *testing.T) {
	rng := rand.New(rand.NewSource(420))
	a := Random(12, 7, rng)
	tau := QR(a)
	c := Random(12, 4, rng)
	orig := c.Clone()
	ApplyQ(a, tau, c)
	ApplyQT(a, tau, c)
	if !c.EqualApprox(orig, 1e-10) {
		t.Fatalf("Q^T Q C != C, maxdiff %g", c.MaxDiff(orig))
	}
}

func TestQRSolvesLeastSquares(t *testing.T) {
	// Solve an overdetermined consistent system: A x = b with known x.
	rng := rand.New(rand.NewSource(421))
	a := Random(15, 6, rng)
	x := Random(6, 1, rng)
	b := Mul(a, x)
	qr := a.Clone()
	tau := QR(qr)
	// x = R^{-1} (Q^T b)[:n]
	ApplyQT(qr, tau, b)
	top := b.View(0, 0, 6, 1).Clone()
	rMat := New(6, 6)
	for i := 0; i < 6; i++ {
		for j := i; j < 6; j++ {
			rMat.Set(i, j, qr.At(i, j))
		}
	}
	TrsmUpperLeft(rMat, top)
	if !top.EqualApprox(x, 1e-8) {
		t.Fatalf("least-squares solve off by %g", top.MaxDiff(x))
	}
}

func TestQRZeroColumnTau(t *testing.T) {
	// A column that is already zero below the diagonal gives tau = 0.
	a := Identity(4)
	tau := QR(a)
	for k, tv := range tau {
		if tv != 0 {
			t.Fatalf("tau[%d] = %v for identity input", k, tv)
		}
	}
}

func TestQRWideInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QR(New(3, 5))
}

func TestPropQRRoundTrip(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		n := 1 + rng.Intn(10)
		m := n + rng.Intn(10)
		a := Random(m, n, rng)
		orig := a.Clone()
		tau := QR(a)
		q, r := QRExplicit(a, tau)
		return Mul(q, r).EqualApprox(orig, 1e-8)
	}
	if err := quick.Check(f, quickCfg(430)); err != nil {
		t.Fatal(err)
	}
}

func TestPropBlockQRAgrees(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		n := 2 + rng.Intn(14)
		m := n + rng.Intn(8)
		bs := 1 + rng.Intn(n)
		a := Random(m, n, rng)
		u := a.Clone()
		QR(u)
		bl := a.Clone()
		BlockQR(bl, bs)
		return u.Equal(bl)
	}
	if err := quick.Check(f, quickCfg(431)); err != nil {
		t.Fatal(err)
	}
}

func TestQRFlopFormulas(t *testing.T) {
	if QRFlopsPanel(10, 2) != 80 {
		t.Fatalf("panel flops = %v", QRFlopsPanel(10, 2))
	}
	if QRFlopsUpdate(10, 2, 3) != 240 {
		t.Fatalf("update flops = %v", QRFlopsUpdate(10, 2, 3))
	}
}
