package dist

import "fmt"

// Cyclic is the LU design's distribution over an nb×nb block grid on p
// nodes: node i stores the blocks of block-row i and block-column i,
// then row/column i+p, i+2p, ... restricted to the trailing submatrix —
// equivalently, block (u,v) belongs to the node owning min(u,v) mod p
// (the cross of rows and columns it anchors).
type Cyclic struct {
	NB, P int
}

// NewCyclic builds the distribution for an nb×nb grid over p nodes.
// It panics on bad geometry — use CheckedCyclic when nb and p derive
// from user input.
func NewCyclic(nb, p int) Cyclic {
	c, err := CheckedCyclic(nb, p)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// CheckedCyclic is NewCyclic returning an error instead of panicking,
// for geometry derived from user-supplied configuration.
func CheckedCyclic(nb, p int) (Cyclic, error) {
	if nb < 1 || p < 1 {
		return Cyclic{}, fmt.Errorf("dist: bad cyclic geometry nb=%d p=%d", nb, p)
	}
	return Cyclic{NB: nb, P: p}, nil
}

// Owner returns the node storing block (u, v).
func (c Cyclic) Owner(u, v int) int {
	c.check(u, v)
	if v < u {
		u, v = v, u
	}
	return u % c.P
}

// check panics on out-of-range coordinates.
func (c Cyclic) check(u, v int) {
	if u < 0 || v < 0 || u >= c.NB || v >= c.NB {
		panic(fmt.Sprintf("dist: block (%d,%d) outside %dx%d grid", u, v, c.NB, c.NB))
	}
}

// PanelOwner returns the node that runs iteration t's panel operations
// (t' = t mod p, the owner of the diagonal block).
func (c Cyclic) PanelOwner(t int) int { return t % c.P }

// UpdateOwner returns the node the paper routes opMM results to for the
// trailing update of block (u, v): t” = max{u, v} (mapped onto the p
// nodes), per Section 5.1.3.
func (c Cyclic) UpdateOwner(u, v int) int {
	c.check(u, v)
	if v > u {
		u = v
	}
	return u % c.P
}

// LocalBlocks returns the blocks node i stores, in row-major order.
func (c Cyclic) LocalBlocks(i int) [][2]int {
	var out [][2]int
	for u := 0; u < c.NB; u++ {
		for v := 0; v < c.NB; v++ {
			if c.Owner(u, v) == i {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Counts returns the number of blocks stored per node.
func (c Cyclic) Counts() []int {
	counts := make([]int, c.P)
	for u := 0; u < c.NB; u++ {
		for v := 0; v < c.NB; v++ {
			counts[c.Owner(u, v)]++
		}
	}
	return counts
}

// Imbalance returns max/mean of the per-node block counts (1 = perfect).
func (c Cyclic) Imbalance() float64 {
	counts := c.Counts()
	maxC, sum := 0, 0
	for _, v := range counts {
		if v > maxC {
			maxC = v
		}
		sum += v
	}
	mean := float64(sum) / float64(len(counts))
	return float64(maxC) / mean
}

// ColumnBlocks is the Floyd-Warshall design's distribution: node i
// stores nb/p contiguous block columns (Section 5.2.3: "P_i stores
// columns in/(bp) ... ((i+1)n/(bp))-1").
type ColumnBlocks struct {
	NB, P int
}

// NewColumnBlocks builds the distribution; p must divide nb. It panics
// on bad geometry — use CheckedColumnBlocks when nb and p derive from
// user input.
func NewColumnBlocks(nb, p int) ColumnBlocks {
	d, err := CheckedColumnBlocks(nb, p)
	if err != nil {
		panic(err.Error())
	}
	return d
}

// CheckedColumnBlocks is NewColumnBlocks returning an error instead of
// panicking, for geometry derived from user-supplied configuration.
func CheckedColumnBlocks(nb, p int) (ColumnBlocks, error) {
	if nb < 1 || p < 1 || nb%p != 0 {
		return ColumnBlocks{}, fmt.Errorf("dist: bad column geometry nb=%d p=%d", nb, p)
	}
	return ColumnBlocks{NB: nb, P: p}, nil
}

// PerNode returns the block columns per node.
func (d ColumnBlocks) PerNode() int { return d.NB / d.P }

// Owner returns the node storing block column v (and with it every
// block (u, v)).
func (d ColumnBlocks) Owner(v int) int {
	if v < 0 || v >= d.NB {
		panic(fmt.Sprintf("dist: column %d outside grid of %d", v, d.NB))
	}
	return v / d.PerNode()
}

// Columns returns node i's contiguous column range [lo, hi).
func (d ColumnBlocks) Columns(i int) (lo, hi int) {
	if i < 0 || i >= d.P {
		panic(fmt.Sprintf("dist: node %d outside %d", i, d.P))
	}
	return i * d.PerNode(), (i + 1) * d.PerNode()
}

// PivotOwner returns the node running iteration t's op1/op22 chain.
func (d ColumnBlocks) PivotOwner(t int) int { return d.Owner(t) }
