// Package machine assembles the substrates into a reconfigurable
// computing system: p nodes — each a processor + FPGA + DRAM + SRAM —
// connected by a crossbar fabric, all living inside one discrete-event
// simulation engine. Presets model the systems of Section 3 (Cray XD1,
// Cray XT3 with DRC modules, SRC-6, SGI RASC); Preset resolves them by
// name for the CLIs and the sweep engine. EffectiveBd applies the
// Section 4.1 observation that the matrix designs read at most one
// word per FPGA cycle, capping the DRAM streaming bandwidth Bd at
// bw·Ff.
package machine
