// Command experiments regenerates the tables and figures of the paper's
// evaluation section from fresh simulations.
//
// Usage:
//
//	experiments all                 # every experiment (FW at n=18432)
//	experiments -full fig9          # Figure 9 with the paper's n=92160
//	experiments -csv fig5 fig7      # selected experiments as CSV
//	experiments list                # show what is available
package main

import (
	"flag"
	"fmt"
	"os"

	"codesign/internal/exper"
)

var experiments = []struct {
	name string
	desc string
	run  func(full bool) (*exper.Table, error)
}{
	{"table1", "LU panel routine latencies (b=3000)",
		func(bool) (*exper.Table, error) { return exper.Table1() }},
	{"fig5", "block-multiply latency vs bf",
		func(bool) (*exper.Table, error) { return exper.Fig5() }},
	{"fig6", "0th LU iteration latency vs l",
		func(bool) (*exper.Table, error) { return exper.Fig6() }},
	{"fig7", "FW iteration latency vs l1",
		func(bool) (*exper.Table, error) { return exper.Fig7() }},
	{"fig8", "LU GFLOPS vs n/b",
		func(bool) (*exper.Table, error) { return exper.Fig8() }},
	{"fig9", "hybrid vs baseline designs",
		func(full bool) (*exper.Table, error) { return exper.Fig9(full) }},
	{"predict", "measured vs model-predicted performance",
		func(full bool) (*exper.Table, error) { return exper.Prediction(full) }},
	{"ablations", "design-choice ablation studies",
		func(bool) (*exper.Table, error) { return exper.Ablations() }},
	{"extensions", "model applied to matmul and Cholesky",
		func(bool) (*exper.Table, error) { return exper.Extensions() }},
	{"sensitivity", "LU partition/throughput vs system parameters",
		func(bool) (*exper.Table, error) { return exper.Sensitivity() }},
}

func main() {
	full := flag.Bool("full", false, "use the paper's full FW problem size (n=92160; a long simulation)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, e := range experiments {
			fmt.Printf("  %-10s %s\n", e.name, e.desc)
		}
		return
	}
	var selected []string
	if args[0] == "all" {
		for _, e := range experiments {
			selected = append(selected, e.name)
		}
	} else {
		selected = args
	}
	for _, name := range selected {
		found := false
		for _, e := range experiments {
			if e.name != name {
				continue
			}
			found = true
			t, err := e.run(*full)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
				os.Exit(1)
			}
			var werr error
			if *csv {
				werr = t.WriteCSV(os.Stdout)
			} else {
				werr = t.Write(os.Stdout)
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "experiments:", werr)
				os.Exit(1)
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try 'list')\n", name)
			os.Exit(2)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-full] [-csv] {all|list|<name>...}")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.name, e.desc)
	}
}
