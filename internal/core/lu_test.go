package core

import (
	"math"
	"testing"

	"codesign/internal/machine"
	"codesign/internal/matrix"
)

// paperLU runs the full paper-scale LU configuration (n=30000, b=3000)
// in the given mode. The simulation is opMM-granular, so even the full
// problem runs in well under a second of host time.
func paperLU(t *testing.T, mode Mode) *LUResult {
	t.Helper()
	r, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLUHybridHeadline(t *testing.T) {
	// Paper Figure 9: the hybrid design achieves 20 GFLOPS. Our
	// simulated machine lands in the same regime.
	r := paperLU(t, Hybrid)
	if r.GFLOPS < 16 || r.GFLOPS > 22 {
		t.Fatalf("hybrid LU = %.2f GFLOPS, want ~18-20", r.GFLOPS)
	}
	if r.BF != 1280 || r.BP != 1720 || r.L != 3 {
		t.Fatalf("partition bf=%d bp=%d l=%d, paper says 1280/1720/3", r.BF, r.BP, r.L)
	}
}

func TestLUSpeedupOverProcessorOnly(t *testing.T) {
	// Paper: 1.3X over the processor-only baseline.
	hy := paperLU(t, Hybrid)
	po := paperLU(t, ProcessorOnly)
	speedup := po.Seconds / hy.Seconds
	if speedup < 1.15 || speedup > 1.5 {
		t.Fatalf("speedup over processor-only = %.2f, paper says 1.3", speedup)
	}
}

func TestLUSpeedupOverFPGAOnly(t *testing.T) {
	// Paper: 2X over the FPGA-only baseline.
	hy := paperLU(t, Hybrid)
	fo := paperLU(t, FPGAOnly)
	speedup := fo.Seconds / hy.Seconds
	if speedup < 1.5 || speedup > 2.4 {
		t.Fatalf("speedup over fpga-only = %.2f, paper says 2", speedup)
	}
}

func TestLUHybridNearSumOfBaselines(t *testing.T) {
	// Paper: the hybrid achieves about 80% of the sum of the two
	// baselines' throughputs.
	hy := paperLU(t, Hybrid)
	po := paperLU(t, ProcessorOnly)
	fo := paperLU(t, FPGAOnly)
	frac := hy.GFLOPS / (po.GFLOPS + fo.GFLOPS)
	if frac < 0.65 || frac > 0.95 {
		t.Fatalf("hybrid/sum = %.2f, paper says ~0.8", frac)
	}
}

func TestLUPredictionRatio(t *testing.T) {
	// Paper Section 6.2: the LU design achieves ~86% of the model's
	// prediction; our explicit ramp/drain simulation lands a bit lower
	// but must stay in the same regime (>70%) and below 100%.
	r := paperLU(t, Hybrid)
	ratio := r.GFLOPS / r.Prediction.GFLOPS
	if ratio < 0.70 || ratio > 1.0 {
		t.Fatalf("measured/predicted = %.2f, want in (0.70, 1.0)", ratio)
	}
}

func TestLUGFLOPSGrowsWithBlocks(t *testing.T) {
	// Figure 8: GFLOPS increases with n/b because opMM is the only
	// operation that uses both resources.
	var prev float64
	for _, nb := range []int{2, 4, 6, 8, 10} {
		r, err := RunLU(LUConfig{N: nb * 3000, B: 3000, BF: -1, L: -1, Mode: Hybrid})
		if err != nil {
			t.Fatal(err)
		}
		if r.GFLOPS <= prev {
			t.Fatalf("GFLOPS not increasing at n/b=%d: %.2f after %.2f", nb, r.GFLOPS, prev)
		}
		prev = r.GFLOPS
	}
}

func TestLUIterationLatencyVsL(t *testing.T) {
	// Figure 6: iteration-0 latency decreases from l=0 to l=3 and is
	// essentially flat afterwards (the paper's rise at l=5 is "not
	// noticeable").
	lat := make(map[int]float64)
	for _, l := range []int{0, 1, 2, 3, 4, 5} {
		r, err := RunLU(LUConfig{N: 30000, B: 3000, BF: 1280, L: l, Mode: Hybrid})
		if err != nil {
			t.Fatal(err)
		}
		lat[l] = r.IterationSeconds[0]
	}
	for l := 1; l <= 3; l++ {
		if lat[l] >= lat[l-1] {
			t.Fatalf("latency must decrease up to l=3: l=%d %.1f >= l=%d %.1f", l, lat[l], l-1, lat[l-1])
		}
	}
	if lat[3] > lat[0]*0.85 {
		t.Fatalf("l=3 (%.1f) should be well below l=0 (%.1f)", lat[3], lat[0])
	}
	// Flat-to-slightly-different beyond the optimum.
	if math.Abs(lat[5]-lat[4]) > 0.1*lat[4] {
		t.Fatalf("latency should flatten past the optimum: l=4 %.1f, l=5 %.1f", lat[4], lat[5])
	}
}

func TestLUOpMMLatencyUShape(t *testing.T) {
	// Figure 5: latency of one b×b block multiplication falls as bf
	// grows to 1280, then rises once the FPGA is overloaded.
	var lats []float64
	sweep := []int{0, 320, 640, 960, 1280, 1600, 1920, 2240, 2560, 3000}
	best, bestBF := math.Inf(1), -1
	for _, bf := range sweep {
		r, err := RunOpMM(machine.XD1(), 3000, 8, bf)
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, r.Seconds)
		if r.Seconds < best {
			best, bestBF = r.Seconds, bf
		}
	}
	if bestBF != 1280 {
		t.Fatalf("opMM latency minimum at bf=%d, paper says 1280 (lats %v)", bestBF, lats)
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] <= 1280 && lats[i] >= lats[i-1] {
			t.Fatalf("latency must decrease toward bf=1280: %v", lats)
		}
		if sweep[i-1] >= 1280 && lats[i] <= lats[i-1] {
			t.Fatalf("latency must increase past bf=1280: %v", lats)
		}
	}
}

func TestLUOpMMAgainstModel(t *testing.T) {
	// At the balanced split the stripe-granular makespan must be close
	// to b/k times the per-stripe FPGA time (pipelined).
	r, err := RunOpMM(machine.XD1(), 3000, 8, 1280)
	if err != nil {
		t.Fatal(err)
	}
	ideal := float64(3000/8) * r.StripeTf
	if r.Seconds < ideal || r.Seconds > ideal*1.1 {
		t.Fatalf("opMM makespan %.3f vs pipelined ideal %.3f", r.Seconds, ideal)
	}
}

func TestLUFunctionalMatchesReference(t *testing.T) {
	for _, mode := range []Mode{Hybrid, ProcessorOnly, FPGAOnly} {
		r, err := RunLU(LUConfig{N: 80, B: 20, PEs: 4, BF: -1, L: -1, Mode: mode, Functional: true, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !r.Checked {
			t.Fatalf("%v: functional result not checked", mode)
		}
		if r.MaxResidual > 1e-9 {
			t.Fatalf("%v: distributed LU deviates from reference by %g", mode, r.MaxResidual)
		}
	}
}

func TestLUFunctionalLargerProblem(t *testing.T) {
	r, err := RunLU(LUConfig{N: 300, B: 60, PEs: 4, BF: -1, L: 2, Mode: Hybrid, Functional: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxResidual > 1e-8 {
		t.Fatalf("residual %g", r.MaxResidual)
	}
}

func TestLUAblationStripeOverlap(t *testing.T) {
	// Disabling stripe pipelining exposes every stripe's transfer and
	// must slow the hybrid down.
	base, err := RunLU(LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	noOv, err := RunLU(LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: Hybrid, DisableStripeOverlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if noOv.Seconds <= base.Seconds {
		t.Fatalf("no-overlap %.1fs not slower than base %.1fs", noOv.Seconds, base.Seconds)
	}
}

func TestLUAblationInterruptibleRoutines(t *testing.T) {
	// Letting operand sends overlap the panel routines (non-atomic
	// libraries) must not hurt, and should help a little — the effect
	// the paper blames for its 86% prediction ratio.
	base, err := RunLU(LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	async, err := RunLU(LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: Hybrid, InterruptibleRoutines: true})
	if err != nil {
		t.Fatal(err)
	}
	if async.Seconds > base.Seconds*1.001 {
		t.Fatalf("interruptible routines slowed the run: %.1f vs %.1f", async.Seconds, base.Seconds)
	}
}

func TestLUCoordinationCount(t *testing.T) {
	// Each opMM job on each compute node is one start + one done
	// handshake; n/b = 10 gives sum over t of (9-t)² = 285 jobs on 5
	// nodes: 2850 handshakes.
	r := paperLU(t, Hybrid)
	if r.Coordinations != 2850 {
		t.Fatalf("coordinations = %d, want 2850", r.Coordinations)
	}
}

func TestLUNetworkBytes(t *testing.T) {
	// Operand multicasts dominate: 285 jobs × 2b² words × 8 bytes × 5
	// receivers, plus result slices (285 × b² words) and opMS traffic.
	r := paperLU(t, Hybrid)
	operand := int64(285) * 2 * 3000 * 3000 * 8 * 5
	if r.NetworkBytes < operand {
		t.Fatalf("network bytes %d below operand traffic %d", r.NetworkBytes, operand)
	}
	if r.NetworkBytes > operand*2 {
		t.Fatalf("network bytes %d implausibly high", r.NetworkBytes)
	}
}

func TestLUUtilizationBalanced(t *testing.T) {
	// In the hybrid design both resources should be meaningfully busy.
	r := paperLU(t, Hybrid)
	cpuU := r.Utilization(r.CPUBusy)
	fpgaU := r.Utilization(r.FPGABusy)
	if cpuU < 0.3 || fpgaU < 0.3 {
		t.Fatalf("utilizations cpu=%.2f fpga=%.2f, both should be substantial", cpuU, fpgaU)
	}
	// The baselines idle the unused resource.
	po := paperLU(t, ProcessorOnly)
	if po.Utilization(po.FPGABusy) != 0 {
		t.Fatal("processor-only must not use the FPGA")
	}
}

func TestLUConfigValidation(t *testing.T) {
	cases := []LUConfig{
		{N: 0, B: 100},                   // bad n
		{N: 100, B: 30},                  // b does not divide n
		{N: 3000, B: 375},                // not multiple of p-1=5
		{N: 3000, B: 300, PEs: 7},        // 300 % 7 != 0
		{N: 3000, B: 300, PEs: 9},        // 9 PEs don't fit XC2VP50
		{N: 3000, B: 300, BF: 400},       // bf > b
		{N: 3000, B: 300, BF: -2, L: -1}, // bf < -1 treated as solve? no: must reject
	}
	for i, cfg := range cases {
		if i == len(cases)-1 {
			// BF: -2 still means "solve" is only for -1; anything else
			// negative is invalid.
			cfg.BF = -2
		}
		if _, err := RunLU(cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestLUSingleBlock(t *testing.T) {
	// n == b: a single panel factorization, no opMM at all.
	r, err := RunLU(LUConfig{N: 40, B: 40, PEs: 4, BF: -1, L: -1, Mode: Hybrid, Functional: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxResidual > 1e-12 {
		t.Fatalf("single-block residual %g", r.MaxResidual)
	}
	if r.Coordinations != 0 {
		t.Fatalf("single block should need no FPGA jobs, got %d", r.Coordinations)
	}
}

func TestLUOnOtherMachines(t *testing.T) {
	// The design must run (and the hybrid must still beat the software
	// baseline) on the other presets.
	for _, mc := range []machine.Config{machine.XT3DRC(), machine.RASC()} {
		b := 3000
		if mc.Nodes == 4 {
			b = 2400 // multiple of p-1=3 and of k
		}
		hy, err := RunLU(LUConfig{Machine: mc, N: 4 * b, B: b, BF: -1, L: -1, Mode: Hybrid})
		if err != nil {
			t.Fatalf("%s: %v", mc.Name, err)
		}
		po, err := RunLU(LUConfig{Machine: mc, N: 4 * b, B: b, BF: -1, L: -1, Mode: ProcessorOnly})
		if err != nil {
			t.Fatalf("%s: %v", mc.Name, err)
		}
		if hy.Seconds >= po.Seconds {
			t.Fatalf("%s: hybrid %.1fs not faster than processor-only %.1fs", mc.Name, hy.Seconds, po.Seconds)
		}
	}
}

func TestModeString(t *testing.T) {
	if Hybrid.String() != "hybrid" || ProcessorOnly.String() != "processor-only" ||
		FPGAOnly.String() != "fpga-only" || Mode(9).String() == "" {
		t.Fatal("mode strings")
	}
}

func TestResultUtilizationEdges(t *testing.T) {
	r := &Result{Seconds: 0}
	if r.Utilization([]float64{1}) != 0 {
		t.Fatal("zero-time utilization must be 0")
	}
	r = &Result{Seconds: 10}
	if got := r.Utilization([]float64{5, 5}); got != 0.5 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestLUFunctionalDeterministic(t *testing.T) {
	run := func() *matrix.Dense {
		r, err := RunLU(LUConfig{N: 80, B: 20, PEs: 4, BF: -1, L: 2, Mode: Hybrid, Functional: true, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		_ = r
		return nil
	}
	// Determinism of the simulation itself: identical latency.
	r1, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seconds != r2.Seconds {
		t.Fatalf("nondeterministic simulation: %v vs %v", r1.Seconds, r2.Seconds)
	}
	run()
}

func TestLUAblationWholeTaskOpMM(t *testing.T) {
	// Applying whole-task assignment to opMM (instead of the row split
	// the model prescribes for partitionable tasks) must lose
	// throughput: alternating whole jobs leaves the slower resource as
	// the bottleneck.
	split, err := RunLU(LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := RunLU(LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: Hybrid, WholeTaskOpMM: true})
	if err != nil {
		t.Fatal(err)
	}
	if whole.Seconds <= split.Seconds {
		t.Fatalf("whole-task %.1fs not slower than split %.1fs", whole.Seconds, split.Seconds)
	}
}

func TestLUWholeTaskFunctionalStillCorrect(t *testing.T) {
	r, err := RunLU(LUConfig{N: 80, B: 20, PEs: 4, BF: -1, L: 2, Mode: Hybrid, Functional: true, Seed: 9, WholeTaskOpMM: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxResidual > 1e-9 {
		t.Fatalf("residual %g", r.MaxResidual)
	}
}
