package exper

import (
	"fmt"

	"codesign/internal/core"
)

// SparseRegimes contrasts the sparse and dense partition regimes of the
// Equation (1) row split. A dense operator keeps the processor's BLAS-2
// rate high and the per-word DRAM stream cost above the CPU's per-word
// cost, so the solved split sends every row to the processor (rf=0,
// Op*Fp-bound). A CSR operator flips both terms — the indirect gather
// drops the CPU to its spmv rate while the FPGA still streams at full
// DRAM bandwidth — so the solve sends every row to the FPGA and the
// design lands Bd-bound. SpMM (repeated applies) escapes the stream by
// holding the operator SRAM-resident, paying the DRAM load once.
func SparseRegimes() (*Table, error) {
	t := &Table{
		ID:     "sparse",
		Title:  "Sparse vs dense partition regimes (Eq. 1 row split, XD1, n=2048)",
		Header: []string{"op", "density", "design", "rf", "arrangement", "gflops", "binding", "margin"},
		Notes: []string{
			"dense (density 0): cm >= cp, so Eq. 1 solves to rf=0 — the processor's DGEMV wins and the design is Op*Fp-bound",
			"sparse: the CSR gather drops the CPU rate ~8x while the FPGA streams nnz-proportional words at Bd — rf=n, Bd-bound",
			"spmm (32 rhs): the operator fits SRAM, the stream cost amortizes to a one-time load, and the split moves back toward the interior",
		},
	}
	arrangement := func(r *core.SpMVResult) string {
		if r.Resident {
			return "resident"
		}
		return "streamed"
	}
	add := func(op string, r *core.SpMVResult, density float64) {
		bind, margin := r.Model.StripeBinding(r.RowsFPGA)
		t.Rows = append(t.Rows, []string{
			op, fmt.Sprintf("%.2g", density), r.Mode.String(),
			fmt.Sprintf("%d/%d", r.RowsFPGA, r.N), arrangement(r),
			f3(r.GFLOPS), fmt.Sprint(bind), f2(margin),
		})
	}
	const n = 2048
	for _, density := range []float64{0, 0.02, 0.1} {
		for _, m := range []core.Mode{core.Hybrid, core.ProcessorOnly, core.FPGAOnly} {
			r, err := core.RunSpMV(core.SpMVConfig{N: n, Density: density, RowsFPGA: -1, Mode: m, Seed: 1})
			if err != nil {
				return nil, fmt.Errorf("spmv density %g %s: %w", density, m, err)
			}
			add("spmv", r, density)
		}
	}
	for _, density := range []float64{0, 0.02, 0.1} {
		r, err := core.RunSpMM(core.SpMVConfig{N: n, Density: density, RHS: 32, RowsFPGA: -1, Mode: core.Hybrid, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("spmm density %g: %w", density, err)
		}
		add("spmm", r, density)
	}
	return t, nil
}
