// Functional distributed LU factorization: carry a real matrix through
// the simulated machine — every panel factorization, triangular solve,
// stripe transfer and block multiply actually computes — and verify the
// distributed result against the sequential blocked reference.
//
// This is the "execution-driven" mode of the simulator: the same
// schedule that produces the timing numbers also produces the numbers
// in the matrix, so correctness of the co-designed schedule (dependency
// ordering, read-after-write coordination of Section 4.4) is testable.
package main

import (
	"fmt"
	"log"

	"codesign"
)

func main() {
	// A 500x500 matrix in 100x100 blocks across 6 simulated nodes. The
	// block size must be a multiple of both the PE count and p-1.
	cfg := codesign.LUConfig{
		N: 500, B: 100, PEs: 4,
		BF: -1, L: -1,
		Mode:       codesign.Hybrid,
		Functional: true,
		Seed:       42,
	}
	fmt.Println("Functional distributed block LU (n=500, b=100, 6 nodes):")
	for _, mode := range []codesign.Mode{codesign.Hybrid, codesign.ProcessorOnly, codesign.FPGAOnly} {
		cfg.Mode = mode
		res, err := codesign.RunLU(cfg)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if res.MaxResidual > 1e-8 {
			status = "MISMATCH"
		}
		fmt.Printf("  %-15s simulated %8.3f s, residual vs reference %.3g  [%s]\n",
			mode, res.Seconds, res.MaxResidual, status)
	}

	// The partition adapts to the machine: with tiny SRAM banks the
	// FPGA cannot hold its intermediate C rows, so the model clamps bf
	// to what fits (the capacity constraint of Section 6.1).
	xd1 := codesign.MachineXD1()
	small := codesign.MachineXD1()
	small.Name = "XD1 with 4x1MB SRAM banks"
	small.SRAMBankBytes = 1 << 20
	for _, mc := range []codesign.MachineConfig{xd1, small} {
		res, err := codesign.RunLU(codesign.LUConfig{
			Machine: mc, N: 30000, B: 3000, BF: -1, L: -1, Mode: codesign.Hybrid,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-35s -> bf=%d, %.2f GFLOPS\n", mc.Name, res.BF, res.GFLOPS)
	}
}
