package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// get fetches a path from the test server and returns status and body.
func get(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_events_total", "events seen").Add(7)
	h := r.Histogram("demo_seconds", "latency", LinearBuckets(1, 1, 4))
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Observe(v)
	}
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, body := get(t, srv.Addr, "/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body := get(t, srv.Addr, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"# TYPE demo_events_total counter", "demo_events_total 7"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv.Addr, "/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json status %d", code)
	}
	var samples []Sample
	if err := json.Unmarshal([]byte(body), &samples); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v\n%s", err, body)
	}
	if len(samples) != 2 || samples[0].Name != "demo_events_total" || samples[0].Value != 7 {
		t.Errorf("unexpected /metrics.json samples: %+v", samples)
	}
	if samples[1].Name != "demo_seconds" || samples[1].Quantiles == nil || samples[1].Quantiles.P50 != 2 {
		t.Errorf("/metrics.json histogram missing quantiles: %+v", samples[1])
	}

	code, body = get(t, srv.Addr, "/statusz")
	if code != 200 {
		t.Fatalf("/statusz status %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not valid JSON: %v\n%s", err, body)
	}
	if st.PID <= 0 || st.Go == "" || len(st.Metrics) != 2 {
		t.Errorf("unexpected /statusz: %+v", st)
	}
	if len(st.Metrics) == 2 && (st.Metrics[1].Quantiles == nil || st.Metrics[1].Quantiles.P90 != 3.6) {
		t.Errorf("/statusz histogram missing quantiles: %+v", st.Metrics[1])
	}

	if code, _ := get(t, srv.Addr, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, body := get(t, srv.Addr, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", NewRegistry()); err == nil {
		t.Error("bad listen address accepted")
	}
}
