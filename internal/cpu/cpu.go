package cpu

import (
	"fmt"
	"math/rand"
	"time"

	"codesign/internal/matrix"
)

// Routine identifies a kernel class with its own sustained rate.
type Routine string

// Routine classes used by the two applications.
const (
	DGEMM Routine = "dgemm" // dense square matrix multiply (large k)
	// DGEMMStripe is dgemm on a rank-k panel update — the (bp×k)·(k×w)
	// multiplies of the hybrid opMM pipeline. Rank-k updates are
	// memory-bandwidth bound and sustain well below square-dgemm rate.
	DGEMMStripe Routine = "dgemm-stripe"
	DGETRF      Routine = "dgetrf"   // panel LU factorization (opLU)
	DTRSM       Routine = "dtrsm"    // triangular solve (opL, opU)
	FWKernel    Routine = "fw"       // scalar blocked Floyd-Warshall kernel
	Subtract    Routine = "subtract" // opMS matrix subtraction (memory bound)
	// DGEMV is dense matrix-vector multiplication (memory-bandwidth
	// bound; the software half of the CG extension's operator apply).
	DGEMV Routine = "dgemv"
	// SpMV is CSR sparse matrix-vector multiplication. The column-index
	// gather defeats hardware prefetch, so the sustained rate sits far
	// below dgemv — memory-latency bound rather than bandwidth bound.
	SpMV Routine = "spmv"
	// VectorOp covers the O(n) CG vector kernels (dot, axpy).
	VectorOp Routine = "vecop"
)

// Processor is a sustained-rate processor model.
type Processor struct {
	// Name identifies the part, e.g. "AMD Opteron 2.2 GHz".
	Name string
	// FreqHz is the core clock (Fp).
	FreqHz float64
	// Sustained maps each routine class to its sustained FLOP/s
	// (Op×Fp for that class).
	Sustained map[Routine]float64
}

// Opteron22 returns the 2.2 GHz AMD Opteron model with the paper's
// measured rates: 3.9 GFLOPS dgemm at matrix size 2048 (ACML), the
// dgetrf/dtrsm rates implied by Table 1 at b = 3000, and 190 MFLOPS for
// the scalar Floyd-Warshall kernel at b = 256.
func Opteron22() *Processor {
	return &Processor{
		Name:   "AMD Opteron 2.2 GHz",
		FreqHz: 2.2e9,
		Sustained: map[Routine]float64{
			DGEMM: 3.9e9,
			// Rank-8 panel updates stream the full C panel per 8
			// accumulated columns and sustain ~76% of square dgemm.
			DGEMMStripe: 2.95e9,
			// Table 1: dgetrf on a 3000x3000 block takes 4.9 s;
			// (2/3)b^3 flops / 4.9 s = 3.67 GFLOPS.
			DGETRF: 2.0 / 3.0 * 3000 * 3000 * 3000 / 4.9,
			// Table 1: dtrsm on a 3000-wide panel takes 7.1 s;
			// b^3 flops / 7.1 s = 3.80 GFLOPS.
			DTRSM: 3000 * 3000 * 3000 / 7.1,
			// Section 6.1: 190 MFLOPS sustained for the b = 256
			// scalar Floyd-Warshall kernel.
			FWKernel: 190e6,
			// opMS is memory bound; one subtract per ~two DRAM
			// accesses at 3.2 GB/s gives roughly 400 MFLOP/s.
			Subtract: 400e6,
			// dgemv streams the matrix once per call: ~1.2 GFLOPS on
			// DDR-era Opterons.
			DGEMV: 1.2e9,
			// CSR spmv pays an indirect gather per nonzero; unblocked
			// kernels of the OSKI era sustain ~3-7% of peak on this
			// part, ~150 MFLOPS.
			SpMV: 150e6,
			// dot/axpy touch two or three vectors per flop pair.
			VectorOp: 800e6,
		},
	}
}

// Rate returns the sustained FLOP/s for the routine class; it panics on
// an unknown class so misconfigured models fail loudly.
func (p *Processor) Rate(r Routine) float64 {
	v, ok := p.Sustained[r]
	if !ok || v <= 0 {
		panic(fmt.Sprintf("cpu: processor %q has no sustained rate for routine %q", p.Name, r))
	}
	return v
}

// Time returns the modeled execution time of flops floating-point
// operations of the given routine class.
func (p *Processor) Time(r Routine, flops float64) float64 {
	if flops < 0 {
		panic(fmt.Sprintf("cpu: negative flop count %g", flops))
	}
	return flops / p.Rate(r)
}

// Flops for the standard routines, as functions of the block size.

// DgetrfFlops returns the flop count of an LU panel factorization of a
// b×b block: (2/3)b³.
func DgetrfFlops(b int) float64 { n := float64(b); return 2.0 / 3.0 * n * n * n }

// DtrsmFlops returns the flop count of a triangular solve with a b×b
// factor and b right-hand sides: b³.
func DtrsmFlops(b int) float64 { n := float64(b); return n * n * n }

// GemmFlops returns the flop count of an m×k by k×n multiply-accumulate:
// 2mkn.
func GemmFlops(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) }

// FWBlockFlops returns the flop count of one b×b Floyd-Warshall block
// operation: b³ additions plus b³ comparisons (Section 5.2.3).
func FWBlockFlops(b int) float64 { n := float64(b); return 2 * n * n * n }

// SubtractFlops returns the flop count of an opMS on a b×b block: b².
func SubtractFlops(b int) float64 { n := float64(b); return n * n }

// Table1Row is one row of the paper's Table 1: the ACML routine used for
// an LU task and its modeled latency.
type Table1Row struct {
	Operation string
	Routine   string
	LatencyS  float64
}

// Table1 reproduces Table 1 for block size b on processor p.
func Table1(p *Processor, b int) []Table1Row {
	return []Table1Row{
		{Operation: "opLU", Routine: "dgetrf", LatencyS: p.Time(DGETRF, DgetrfFlops(b))},
		{Operation: "opL", Routine: "dtrsm", LatencyS: p.Time(DTRSM, DtrsmFlops(b))},
		{Operation: "opU", Routine: "dtrsm", LatencyS: p.Time(DTRSM, DtrsmFlops(b))},
	}
}

// CalibrationResult reports a measured host rate for a kernel class.
type CalibrationResult struct {
	Routine Routine
	Size    int
	Seconds float64
	Flops   float64
	Rate    float64 // FLOP/s
}

// CalibrateGEMM measures the host's sustained rate on the package's own
// parallel GEMM at size n and returns the result. Use it to build a
// Processor that models the machine the simulation runs on.
func CalibrateGEMM(n int) CalibrationResult {
	rng := rand.New(rand.NewSource(1))
	a := matrix.Random(n, n, rng)
	b := matrix.Random(n, n, rng)
	c := matrix.New(n, n)
	start := time.Now()
	matrix.GemmParallel(1, a, b, 0, c, 0)
	dt := time.Since(start).Seconds()
	fl := GemmFlops(n, n, n)
	return CalibrationResult{Routine: DGEMM, Size: n, Seconds: dt, Flops: fl, Rate: fl / dt}
}

// CalibrateFW measures the host's sustained rate on the scalar
// Floyd-Warshall kernel at block size b.
func CalibrateFW(b int) CalibrationResult {
	rng := rand.New(rand.NewSource(2))
	d := matrix.RandomGraph(b, 0.5, rng)
	start := time.Now()
	matrix.FWKernel(d)
	dt := time.Since(start).Seconds()
	fl := FWBlockFlops(b)
	return CalibrationResult{Routine: FWKernel, Size: b, Seconds: dt, Flops: fl, Rate: fl / dt}
}

// Calibrated returns a Processor whose dgemm and FW rates come from host
// measurements at the given sizes and whose factorization rates are
// scaled from the dgemm rate with the paper's measured efficiency ratios
// (dgetrf at ~94%, dtrsm at ~97% of dgemm).
func Calibrated(gemmN, fwB int) *Processor {
	g := CalibrateGEMM(gemmN)
	f := CalibrateFW(fwB)
	return &Processor{
		Name:   "host-calibrated",
		FreqHz: 0,
		Sustained: map[Routine]float64{
			DGEMM:       g.Rate,
			DGEMMStripe: g.Rate * 0.76,
			DGETRF:      g.Rate * 0.94,
			DTRSM:       g.Rate * 0.97,
			FWKernel:    f.Rate,
			Subtract:    g.Rate * 0.1,
		},
	}
}
