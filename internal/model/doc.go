// Package model implements the paper's primary contribution: the design
// model for hybrid designs on reconfigurable computing systems
// (Section 4). A system is characterized by its parameters — node count
// p, FPGA computing power Of·Ff, sustained processor power Op·Fp, DRAM
// streaming bandwidth Bd, network bandwidth Bn, word width bw — and the
// model derives:
//
//   - the hardware/software workload partition that equalizes processor
//     and FPGA finish times while charging DRAM transfer and network
//     communication to the processor (Equations 1, 2 and 4 —
//     Params.Split, Params.SplitComm, LUParams.SolvePartition,
//     MMParams.SolvePartition),
//   - the inter-node load balance (Equation 5 for LU's panel pipeline,
//     LUParams.SolveL; Equation 6 for Floyd-Warshall's whole-task
//     split, FWParams.SolveSplit), and
//   - a performance prediction assuming data transfer and communication
//     overlap FPGA computation perfectly (Section 4.5 — PredictLU,
//     PredictFW, PredictMM).
//
// BindingFromTimes and the per-app *Binding helpers name which
// parameter binds a phase, the vocabulary shared with
// internal/analysis's measured classifier and internal/sweep's
// frontier reports.
package model
