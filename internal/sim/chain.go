package sim

// Fused charge sequences.
//
// The baton scheduler pays ~2.2 µs for every cross-process handoff but
// only ~29 ns for a self-resume (BenchmarkEventLoopHandoff vs
// BenchmarkEventLoopSelf). A simulated process that charges several
// consecutive intervals to one resource — unpack, DMA, then compute on
// a node's CPU, say — parks once per interval, and every park is a
// potential handoff. UseSeq and WaitSeq fuse such a sequence into a
// single park: the process yields the baton once, and the engine
// advances the intermediate charge boundaries itself, in scheduler
// context, emitting exactly the events, spans, and resource accounting
// the equivalent loop of UseCat/WaitSpanOn calls would have produced.
// Simulated time, span streams, and utilization integrals are
// byte-identical; only the goroutine switch count drops (measured by
// Counters.FusedSteps).
//
// Determinism argument: at an unfused boundary the process resumes on
// its own event pop and immediately schedules its next wait, so the
// sequence number it draws equals the one a scheduler-context
// reschedule at the same pop would draw. The fused path performs that
// reschedule inline at the pop, therefore every queued event keeps the
// identical (t, seq) it had before — the total order of the run cannot
// change.

// Charge is one interval of a fused sequence: dt seconds of activity
// attributed to a span category, carrying bytes of payload for
// data-movement categories (0 for compute). Negative durations are
// treated as 0, matching WaitSpanOn.
type Charge struct {
	// Cat classifies the interval (compute, dma, network, ...).
	Cat Category
	// Bytes is the payload a data-movement charge carried (0 otherwise).
	Bytes int64
	// Dt is the interval's duration in virtual seconds.
	Dt float64
}

// chainCap bounds the per-process fused-sequence buffer. Sequences
// longer than this fall back to the unfused per-charge loop — correct,
// just with more handoffs. The buffer lives inline in Proc so fusing
// allocates nothing.
const chainCap = 4

// UseSeq behaves exactly like calling r.UseCat(p, c.Cat, c.Bytes, c.Dt)
// for each charge in order — including per-charge acquire/release
// bracketing, FIFO queueing under contention, and one typed span per
// charge — but parks the calling process only once for the whole
// sequence. The intermediate boundaries run in scheduler context, so a
// sequence of n charges costs one goroutine handoff instead of n.
func (r *Resource) UseSeq(p *Proc, charges []Charge) {
	switch {
	case len(charges) == 0:
		return
	case len(charges) == 1:
		r.UseCat(p, charges[0].Cat, charges[0].Bytes, charges[0].Dt)
		return
	case len(charges) > chainCap:
		for _, c := range charges {
			r.UseCat(p, c.Cat, c.Bytes, c.Dt)
		}
		return
	}
	r.Acquire(p)
	p.chainRes = r
	p.startChain(r.device, r.name, charges)
	r.Release()
}

// WaitSeq is the resource-free analogue of UseSeq: it behaves exactly
// like calling p.WaitSpanOn(c.Cat, dev, resource, c.Bytes, c.Dt) for
// each charge in order, but parks only once. Use it for consecutive
// charges that do not contend on a Resource.
func (p *Proc) WaitSeq(dev Device, resource string, charges []Charge) {
	switch {
	case len(charges) == 0:
		return
	case len(charges) == 1:
		p.WaitSpanOn(charges[0].Cat, dev, resource, charges[0].Bytes, charges[0].Dt)
		return
	case len(charges) > chainCap:
		for _, c := range charges {
			p.WaitSpanOn(c.Cat, dev, resource, c.Bytes, c.Dt)
		}
		return
	}
	p.chainRes = nil
	p.startChain(dev, resource, charges)
}

// startChain begins the fused sequence's first hold and parks until the
// engine has driven every boundary; on return it emits the final
// charge's span. The caller brackets with Acquire/Release when a
// resource is involved (chainRes non-nil lets the engine re-bracket the
// intermediate boundaries).
func (p *Proc) startChain(dev Device, resource string, charges []Charge) {
	e := p.eng
	p.chainLen = copy(p.chainBuf[:], charges)
	p.chainIdx = 0
	p.chainDev = dev
	p.chainResName = resource
	p.chainAcquiring = false
	p.chainLive = true
	dt := charges[0].Dt
	if dt < 0 {
		dt = 0
	}
	p.chainStart = e.now
	e.scheduleProc(e.now+dt, p)
	p.park(parkWait, nil, dt)
	// The final boundary resumed us; the engine already emitted the
	// spans of every earlier charge.
	last := p.chainBuf[p.chainLen-1]
	if e.observing() {
		e.EmitSpan(SpanEvent{
			Category: last.Cat, Device: dev, Proc: p.name, Resource: resource,
			Phase: p.phase, Bytes: last.Bytes, Start: p.chainStart, End: e.now,
		})
	}
	p.chainRes = nil
}

// chainStep advances a fused charge sequence at one of its boundary
// events, in scheduler context. It returns true when the chain
// continues (the event is consumed; dispatch keeps popping) and false
// at the final boundary, where dispatch resumes the process normally.
// Every emitted event, span, and piece of resource bookkeeping mirrors
// what the unfused per-charge loop does at the same virtual time.
func (e *Engine) chainStep(p *Proc) bool {
	r := p.chainRes
	if p.chainAcquiring {
		// This pop is the unit grant Release scheduled for us while we
		// queued: replicate Acquire's post-park bookkeeping, then start
		// the pending charge's hold.
		p.chainAcquiring = false
		e.emitEvent(e.now, p.name, "resume")
		waited := e.now - p.chainSince
		r.waitInt += waited
		r.waits++
		if waited > 0 && e.observing() {
			e.EmitSpan(SpanEvent{
				Category: CatSync, Device: r.device, Proc: p.name, Resource: r.name,
				Phase: p.phase, Start: p.chainSince, End: e.now,
			})
		}
		e.chainHold(p)
		return true
	}
	// A hold boundary: charge chainIdx just finished.
	if p.chainIdx == p.chainLen-1 {
		p.chainLive = false
		return false
	}
	e.emitEvent(e.now, p.name, "resume")
	c := p.chainBuf[p.chainIdx]
	if e.observing() {
		e.EmitSpan(SpanEvent{
			Category: c.Cat, Device: p.chainDev, Proc: p.name, Resource: p.chainResName,
			Phase: p.phase, Bytes: c.Bytes, Start: p.chainStart, End: e.now,
		})
	}
	p.chainIdx++
	if r == nil {
		e.chainHold(p)
		return true
	}
	r.Release()
	// Re-acquire for the next charge without leaving scheduler context.
	r.acquires++
	if r.inUse < r.capacity {
		r.accumulate()
		r.inUse++
		e.chainHold(p)
		return true
	}
	// Saturated: queue exactly as Acquire would, recording the park
	// reason so deadlock reports and traces read identically.
	r.enqueue(p)
	p.chainSince = e.now
	p.chainAcquiring = true
	p.parkKind, p.parkWhy, p.parkDur = parkOn, r.why, 0
	if e.Trace != nil || len(e.observers) > 0 {
		e.emitEvent(e.now, p.name, r.why.action)
	}
	return true
}

// chainHold starts the hold of charge chainIdx: schedule the boundary,
// record the park reason, and emit the block event the unfused Wait
// would have emitted.
func (e *Engine) chainHold(p *Proc) {
	dt := p.chainBuf[p.chainIdx].Dt
	if dt < 0 {
		dt = 0
	}
	p.chainStart = e.now
	e.scheduleProc(e.now+dt, p)
	p.parkKind, p.parkWhy, p.parkDur = parkWait, nil, dt
	if e.Trace != nil || len(e.observers) > 0 {
		e.emitEvent(e.now, p.name, e.waitReason(parkWait, dt).action)
	}
	if e.ctr != nil {
		e.ctr.FusedSteps.Add(1)
	}
}
