// Model a machine that does not exist: start from the Cray XT3 + DRC
// preset, scale it out, and let the co-design model re-derive the
// workload partitions before simulating both applications on it.
//
// This is the workflow the paper's Section 4 enables: given a new
// system's parameters (Of, Ff, Op·Fp, Bd, Bn, p), decide the
// hardware/software split before building anything.
package main

import (
	"fmt"
	"log"

	"codesign"
)

func main() {
	// A hypothetical 12-node XT3 partition with DRC Virtex-4 modules
	// and a doubled SeaStar link rate.
	mc := codesign.MachineXT3DRC()
	mc.Name = "hypothetical 12-node XT3 + DRC"
	mc.Nodes = 12
	mc.Fabric.Nodes = 12
	mc.Fabric.LinkBandwidth = 8e9

	fmt.Printf("%s:\n", mc.Name)

	// LU: b must be a multiple of p-1 = 11 and of the PE count (the
	// Virtex-4 LX200 fits 10 matmul PEs, DSP-bound).
	b := 2200 // 11 * 10 * 20
	lu, err := codesign.RunLU(codesign.LUConfig{
		Machine: mc, N: 10 * b, B: b, BF: -1, L: -1, Mode: codesign.Hybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  LU (n=%d, b=%d, k=%d PEs):\n", lu.N, lu.B, lu.K)
	fmt.Printf("    model partition bf=%d bp=%d, pipeline l=%d\n", lu.BF, lu.BP, lu.L)
	fmt.Printf("    simulated %.2f GFLOPS (predicted %.2f)\n", lu.GFLOPS, lu.Prediction.GFLOPS)

	luBase, err := codesign.RunLU(codesign.LUConfig{
		Machine: mc, N: 10 * b, B: b, BF: -1, L: -1, Mode: codesign.ProcessorOnly,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    speedup over processor-only: %.2fx\n", luBase.Seconds/lu.Seconds)

	// FW: the LX200 fits 24 FW PEs; with b=240 each node owns
	// n/(b·p) block columns.
	fw, err := codesign.RunFW(codesign.FWConfig{
		Machine: mc, N: 240 * 12 * 4, B: 240, PEs: 24, L1: -1, Mode: codesign.Hybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FW (n=%d, b=%d, k=%d PEs):\n", fw.N, fw.B, fw.K)
	fmt.Printf("    model split l1=%d l2=%d per phase\n", fw.L1, fw.L2)
	fmt.Printf("    simulated %.2f GFLOPS (predicted %.2f)\n", fw.GFLOPS, fw.Prediction.GFLOPS)

	fwBase, err := codesign.RunFW(codesign.FWConfig{
		Machine: mc, N: 240 * 12 * 4, B: 240, PEs: 24, L1: -1, Mode: codesign.ProcessorOnly,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    speedup over processor-only: %.2fx\n", fwBase.Seconds/fw.Seconds)
}
