// Command doccheck is the repository's missing-godoc lint: it parses
// the given Go files or directories and fails when an exported
// package-level identifier, struct field or interface method lacks a
// doc comment, or when a package has no package-level documentation.
// Test files are skipped.
//
// Usage:
//
//	doccheck codesign.go internal/sweep        # the CI invocation
//	doccheck ./internal/...                    # (no pattern expansion; list dirs explicitly)
//
// Exit status is 1 when any identifier is undocumented, with one line
// per finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <file.go|dir> ...")
		os.Exit(2)
	}
	var findings []string
	for _, arg := range os.Args[1:] {
		f, err := checkPath(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		findings = append(findings, f...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifiers\n", len(findings))
		os.Exit(1)
	}
}

// checkPath lints one file or every non-test .go file of a directory.
func checkPath(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	files := []string{path}
	if info.IsDir() {
		entries, err := os.ReadDir(path)
		if err != nil {
			return nil, err
		}
		files = files[:0]
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, filepath.Join(path, name))
		}
	}
	fset := token.NewFileSet()
	var findings []string
	pkgDoc := false
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(fset, f, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if file.Doc != nil {
			pkgDoc = true
		}
		findings = append(findings, checkFile(fset, file)...)
	}
	if info.IsDir() && len(files) > 0 && !pkgDoc {
		findings = append(findings, fmt.Sprintf("%s: package has no package-level doc comment", path))
	}
	return findings, nil
}

// checkFile reports every undocumented exported identifier in one
// parsed file.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what, name string) {
		out = append(out, fmt.Sprintf("%s: undocumented exported %s %s", fset.Position(pos), what, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			checkGenDecl(d, report)
		}
	}
	return out
}

// checkGenDecl lints one const/var/type declaration. A doc comment on
// the declaration group covers its specs (the "// Span categories."
// const-block idiom); an undocumented group requires per-spec docs.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			checkTypeBody(s.Name.Name, s.Type, report)
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if !n.IsExported() {
					continue
				}
				if !groupDoc && s.Doc == nil && s.Comment == nil {
					report(n.Pos(), kindOf(d.Tok), n.Name)
				}
			}
		}
	}
}

// checkTypeBody lints the exported fields of a struct type and the
// exported methods of an interface type.
func checkTypeBody(typeName string, expr ast.Expr, report func(token.Pos, string, string)) {
	switch t := expr.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					report(n.Pos(), "field", typeName+"."+n.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					report(n.Pos(), "interface method", typeName+"."+n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a declaration is a plain function
// or a method on an exported type; methods on unexported types are
// not part of the godoc surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
