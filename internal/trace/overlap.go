package trace

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
	"sync"

	"codesign/internal/sim"
)

// Overlap decomposes a run into the model's cost components. The Busy*
// fields sum span durations per class and can exceed the makespan when
// activities overlap (that is the point of the hybrid design). The
// exposed components attribute every instant of the run to exactly one
// class by priority — FPGA compute > CPU compute > DRAM > network >
// sync wait > idle — so
//
//	Tf + Tp + Tmem + Tcomm + Sync + Idle == Makespan
//
// holds exactly. An instant where the network is busy but a processor
// is also computing charges to Tp, not Tcomm: the communication was
// hidden, which is what Eqs. (4)-(6) of the paper balance for and what
// the Sec. 4.5 prediction max(Ttp, Ttf) assumes is perfect.
type Overlap struct {
	// Makespan is the accounting window: the run's final virtual time.
	Makespan float64

	// Total busy seconds per class, summed across all processes and
	// resources (overlapping spans double-count here by design).
	BusyTf, BusyTp, BusyTmem, BusyTcomm, BusySync float64

	// Exposed seconds per class: the priority attribution above.
	Tf, Tp, Tmem, Tcomm, Sync, Idle float64
}

// Sum returns the exposed model components Tf + Tp + Tmem + Tcomm.
// When the instrumented run leaves no uncategorized gaps this equals
// the makespan up to Sync + Idle.
func (o Overlap) Sum() float64 { return o.Tf + o.Tp + o.Tmem + o.Tcomm }

// Efficiency reports how well data movement was hidden behind compute:
// 1 - exposed(Tmem+Tcomm)/busy(Tmem+Tcomm). 1 means every byte moved
// while some processor or FPGA was computing; 0 means nothing
// overlapped. Returns 1 when the run moved no data.
func (o Overlap) Efficiency() float64 {
	busy := o.BusyTmem + o.BusyTcomm
	if busy <= 0 {
		return 1
	}
	return 1 - (o.Tmem+o.Tcomm)/busy
}

// SpanClass is a span's overlap class: which of the model's cost terms
// its duration counts toward. Values are ordered by attribution
// priority (lower wins when classes overlap in time).
type SpanClass int

// The overlap classes, in attribution priority order.
const (
	ClassTf SpanClass = iota
	ClassTp
	ClassTmem
	ClassTcomm
	ClassSync
	NumSpanClasses
)

// String names the class as the model writes it ("Tf", "Tp", ...).
func (c SpanClass) String() string {
	switch c {
	case ClassTf:
		return "Tf"
	case ClassTp:
		return "Tp"
	case ClassTmem:
		return "Tmem"
	case ClassTcomm:
		return "Tcomm"
	case ClassSync:
		return "sync"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classify maps a typed span to its overlap class. Compute spans are
// FPGA time (Tf) when the span's device tag says DeviceFPGA and
// processor time (Tp) otherwise; spans from emitters predating the
// device tag (DeviceUnknown) fall back to the resource-name convention
// of the built-in machines, where FPGA arrays are named "fpga...".
func Classify(s sim.SpanEvent) SpanClass {
	switch s.Category {
	case sim.CatCompute:
		switch s.Device {
		case sim.DeviceFPGA:
			return ClassTf
		case sim.DeviceUnknown:
			if strings.HasPrefix(s.Resource, "fpga") {
				return ClassTf
			}
		}
		return ClassTp
	case sim.CatDMA:
		return ClassTmem
	case sim.CatNetwork:
		return ClassTcomm
	default:
		return ClassSync
	}
}

// edge is one interval endpoint in the overlap sweep: a class opens at
// a span start and closes at its end.
type edge struct {
	t     float64
	class SpanClass
}

// edgePool recycles the sweep's endpoint scratch arrays: a design-space
// sweep calls ComputeOverlap once per grid point over thousands of
// spans, and the buffers are pointer-free so pooling them is safe.
var edgePool = sync.Pool{New: func() any { s := make([]edge, 0, 1024); return &s }}

// ComputeOverlap runs the sweep over the spans. makespan extends the
// accounting window past the last span end (the tail is idle); pass
// the engine's final virtual time.
//
// The sweep is a two-way merge of close and open endpoints rather than
// a sort of the combined edge list: recorders hand over spans in
// emission order, where end times are already nondecreasing, so only
// the start endpoints need sorting (verified, and sorted as a
// fallback, for callers that pass reordered spans). Closes merge ahead
// of opens at the same instant so zero-length overlaps do not linger;
// order among equal-time endpoints of the same kind is irrelevant to
// the attribution because only intervals between distinct times carry
// weight.
func ComputeOverlap(spans []sim.SpanEvent, makespan float64) Overlap {
	o := Overlap{Makespan: makespan}

	sp0, ep0 := edgePool.Get().(*[]edge), edgePool.Get().(*[]edge)
	starts, ends := (*sp0)[:0], (*ep0)[:0]
	defer func() {
		*sp0, *ep0 = starts[:0], ends[:0]
		edgePool.Put(sp0)
		edgePool.Put(ep0)
	}()
	startsSorted, endsSorted := true, true
	for _, s := range spans {
		if s.End <= s.Start {
			continue
		}
		cl := Classify(s)
		d := s.End - s.Start
		switch cl {
		case ClassTf:
			o.BusyTf += d
		case ClassTp:
			o.BusyTp += d
		case ClassTmem:
			o.BusyTmem += d
		case ClassTcomm:
			o.BusyTcomm += d
		case ClassSync:
			o.BusySync += d
		}
		if len(starts) > 0 && s.Start < starts[len(starts)-1].t {
			startsSorted = false
		}
		if len(ends) > 0 && s.End < ends[len(ends)-1].t {
			endsSorted = false
		}
		starts = append(starts, edge{t: s.Start, class: cl})
		ends = append(ends, edge{t: s.End, class: cl})
	}
	byTime := func(a, b edge) int {
		switch {
		case a.t < b.t:
			return -1
		case a.t > b.t:
			return 1
		default:
			return 0
		}
	}
	if !startsSorted {
		slices.SortFunc(starts, byTime)
	}
	if !endsSorted {
		slices.SortFunc(ends, byTime)
	}

	var active [NumSpanClasses]int
	attribute := func(from, to float64) {
		if to <= from {
			return
		}
		d := to - from
		switch {
		case active[ClassTf] > 0:
			o.Tf += d
		case active[ClassTp] > 0:
			o.Tp += d
		case active[ClassTmem] > 0:
			o.Tmem += d
		case active[ClassTcomm] > 0:
			o.Tcomm += d
		case active[ClassSync] > 0:
			o.Sync += d
		default:
			o.Idle += d
		}
	}

	prev := 0.0
	si := 0
	for _, ed := range ends {
		// Opens strictly before this close happen first; an open at
		// exactly ed.t merges after the close.
		for si < len(starts) && starts[si].t < ed.t {
			attribute(prev, starts[si].t)
			prev = starts[si].t
			active[starts[si].class]++
			si++
		}
		attribute(prev, ed.t)
		prev = ed.t
		active[ed.class]--
	}
	// Every interval closes, so no starts can remain once ends drain.
	attribute(prev, makespan)
	return o
}

// ProcStats summarizes one process's activity.
type ProcStats struct {
	// Name is the process name.
	Name string
	// Busy is seconds in compute/DMA/network spans.
	Busy float64
	// Waiting is seconds queued on contended resources.
	Waiting float64
	// Bytes is payload bytes its spans carried.
	Bytes int64
}

// Utilization returns Busy / makespan.
func (p ProcStats) Utilization(makespan float64) float64 {
	if makespan <= 0 {
		return 0
	}
	return p.Busy / makespan
}

// ResourceStats summarizes one resource's activity as seen by spans.
type ResourceStats struct {
	// Name is the resource name.
	Name string
	// Busy is seconds held by typed spans.
	Busy float64
	// Contention is seconds processes spent queued on it.
	Contention float64
	// Spans counts the spans that named the resource.
	Spans int64
	// Bytes is payload bytes those spans carried.
	Bytes int64
}

// Summary is the per-run telemetry digest attached to application
// results and printed by the CLIs. All fields derive from virtual time.
type Summary struct {
	// Makespan is the run's final virtual time.
	Makespan float64
	// Spans is the number of typed spans the run emitted.
	Spans int
	// Events is the number of raw engine events (resume/block).
	Events int

	// DRAMBytes counts payload on DMA spans; NetworkBytes counts
	// payload on network wire spans. Instrumentation attaches bytes
	// only to the span that moves them (wire or DMA stream), never to
	// processor-side pack/unpack, so these do not double count.
	DRAMBytes int64
	// NetworkBytes counts payload on network wire spans (see DRAMBytes).
	NetworkBytes int64

	// Procs holds per-process stats, sorted by name.
	Procs []ProcStats
	// Resources holds per-resource stats, sorted by name.
	Resources []ResourceStats
	// Overlap is the run's overlap decomposition.
	Overlap Overlap
}

// Fill populates a metrics registry from the summary so external
// consumers get the same numbers through the counter/gauge interface.
func (s *Summary) Fill(m *Metrics) {
	m.Gauge("run.makespan_s").Set(s.Makespan)
	m.Counter("run.spans").Add(float64(s.Spans))
	m.Counter("run.events").Add(float64(s.Events))
	m.Counter("bytes.dram").Add(float64(s.DRAMBytes))
	m.Counter("bytes.network").Add(float64(s.NetworkBytes))
	m.Gauge("overlap.exposed.tf_s").Set(s.Overlap.Tf)
	m.Gauge("overlap.exposed.tp_s").Set(s.Overlap.Tp)
	m.Gauge("overlap.exposed.tmem_s").Set(s.Overlap.Tmem)
	m.Gauge("overlap.exposed.tcomm_s").Set(s.Overlap.Tcomm)
	m.Gauge("overlap.exposed.sync_s").Set(s.Overlap.Sync)
	m.Gauge("overlap.exposed.idle_s").Set(s.Overlap.Idle)
	m.Gauge("overlap.busy.tf_s").Set(s.Overlap.BusyTf)
	m.Gauge("overlap.busy.tp_s").Set(s.Overlap.BusyTp)
	m.Gauge("overlap.busy.tmem_s").Set(s.Overlap.BusyTmem)
	m.Gauge("overlap.busy.tcomm_s").Set(s.Overlap.BusyTcomm)
	m.Gauge("overlap.efficiency").Set(s.Overlap.Efficiency())
	for _, p := range s.Procs {
		m.Gauge("proc." + p.Name + ".busy_s").Set(p.Busy)
		m.Gauge("proc." + p.Name + ".wait_s").Set(p.Waiting)
	}
	for _, r := range s.Resources {
		m.Gauge("resource." + r.Name + ".busy_s").Set(r.Busy)
		m.Gauge("resource." + r.Name + ".contention_s").Set(r.Contention)
	}
}

// WriteReport renders the human-readable overlap report the -metrics
// flag prints.
func (s *Summary) WriteReport(w io.Writer) error {
	o := s.Overlap
	pct := func(v float64) float64 {
		if s.Makespan <= 0 {
			return 0
		}
		return 100 * v / s.Makespan
	}
	lines := []string{
		fmt.Sprintf("overlap report (makespan %.6g s, %d spans)", s.Makespan, s.Spans),
		fmt.Sprintf("  exposed Tf    %12.6g s  (%5.1f%%)  busy %.6g s", o.Tf, pct(o.Tf), o.BusyTf),
		fmt.Sprintf("  exposed Tp    %12.6g s  (%5.1f%%)  busy %.6g s", o.Tp, pct(o.Tp), o.BusyTp),
		fmt.Sprintf("  exposed Tmem  %12.6g s  (%5.1f%%)  busy %.6g s", o.Tmem, pct(o.Tmem), o.BusyTmem),
		fmt.Sprintf("  exposed Tcomm %12.6g s  (%5.1f%%)  busy %.6g s", o.Tcomm, pct(o.Tcomm), o.BusyTcomm),
		fmt.Sprintf("  exposed sync  %12.6g s  (%5.1f%%)", o.Sync, pct(o.Sync)),
		fmt.Sprintf("  exposed idle  %12.6g s  (%5.1f%%)", o.Idle, pct(o.Idle)),
		fmt.Sprintf("  Tf+Tp+Tmem+Tcomm = %.6g s", o.Sum()),
		fmt.Sprintf("  overlap efficiency: %.4f (fraction of data movement hidden behind compute)", o.Efficiency()),
		fmt.Sprintf("  bytes: DRAM %d, network %d", s.DRAMBytes, s.NetworkBytes),
	}
	for _, ln := range lines {
		if _, err := fmt.Fprintln(w, ln); err != nil {
			return err
		}
	}
	if len(s.Resources) > 0 {
		if _, err := fmt.Fprintln(w, "  top contended resources:"); err != nil {
			return err
		}
		top := make([]ResourceStats, len(s.Resources))
		copy(top, s.Resources)
		sort.Slice(top, func(i, j int) bool {
			if top[i].Contention != top[j].Contention {
				return top[i].Contention > top[j].Contention
			}
			return top[i].Name < top[j].Name
		})
		if len(top) > 5 {
			top = top[:5]
		}
		for _, r := range top {
			if _, err := fmt.Fprintf(w, "    %-14s busy %.6g s, contention %.6g s, %d spans\n",
				r.Name, r.Busy, r.Contention, r.Spans); err != nil {
				return err
			}
		}
	}
	return nil
}
