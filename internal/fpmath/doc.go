// Package fpmath implements bit-exact IEEE-754 binary64 (double
// precision) addition and multiplication using only integer arithmetic,
// mirroring the custom floating-point cores the paper's FPGA designs use
// ("our own 64-bit floating-point adders and multipliers that comply
// with IEEE-754 standard", Govindu et al. [8]).
//
// The operations round to nearest, ties to even, and handle subnormals,
// signed zeros, infinities and NaN. Because Go's float64 arithmetic is
// also IEEE-754 with the same rounding, the property tests can prove the
// "hardware" datapath computes exactly what the host computes — which is
// what lets the simulated FPGA carry real data through real kernels.
//
// Pipeline metadata (stage counts, achievable frequency) for the cores
// lives in core.go and feeds the FPGA timing model: the adder's and
// multiplier's maximum frequencies bound the placed clock Ff of
// Section 4.1.
package fpmath
