package trace

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"strconv"
	"strings"

	"codesign/internal/sim"
)

// SpanSchemaVersion is the version number written into the header of
// persisted span streams. Readers refuse newer versions; the version
// bumps only when a field changes meaning (adding an optional field is
// backward compatible and does not bump it).
const SpanSchemaVersion = 1

// SpanRecord is the persisted form of one sim.SpanEvent. Its JSON tags
// are the single source of truth for span field naming: the JSONL
// format marshals records directly, the CSV exporter derives its header
// from SpanFieldNames, and the Perfetto exporter's args are tested
// against the same list — so the three formats cannot drift apart.
//
// Category and Device are stored as their String() names so the files
// are self-describing; Device is empty (omitted) for DeviceUnknown.
type SpanRecord struct {
	// Start and End bound the interval in virtual seconds.
	Start float64 `json:"start_s"`
	// End is the interval's end in virtual seconds.
	End float64 `json:"end_s"`
	// Category names the activity class ("compute", "dma", ...).
	Category string `json:"category"`
	// Device names the hardware kind ("cpu", "fpga", "dram", "link");
	// empty when the emitter declared none.
	Device string `json:"device,omitempty"`
	// Proc names the emitting process.
	Proc string `json:"process"`
	// Resource names the resource the span occupied ("" if none).
	Resource string `json:"resource,omitempty"`
	// Phase is the process's phase annotation at emission time.
	Phase string `json:"phase,omitempty"`
	// Bytes is the payload a data-movement span carried (0 otherwise).
	Bytes int64 `json:"bytes,omitempty"`
}

// SpanFieldNames returns the canonical ordered field names of the span
// schema — the JSON keys of SpanRecord. The CSV header is exactly this
// list; the JSONL format uses these keys; the Perfetto exporter's args
// keys are a subset. Tests pin all three to this one definition.
func SpanFieldNames() []string {
	t := reflect.TypeOf(SpanRecord{})
	names := make([]string, t.NumField())
	for i := range names {
		tag := t.Field(i).Tag.Get("json")
		names[i] = strings.SplitN(tag, ",", 2)[0]
	}
	return names
}

// RecordOf converts a live span to its persisted form.
func RecordOf(s sim.SpanEvent) SpanRecord {
	r := SpanRecord{
		Start:    s.Start,
		End:      s.End,
		Category: s.Category.String(),
		Proc:     s.Proc,
		Resource: s.Resource,
		Phase:    s.Phase,
		Bytes:    s.Bytes,
	}
	if s.Device != sim.DeviceUnknown {
		r.Device = s.Device.String()
	}
	return r
}

// Event converts a persisted record back to a live span. It fails on an
// unrecognized category or device name.
func (r SpanRecord) Event() (sim.SpanEvent, error) {
	cat, err := sim.ParseCategory(r.Category)
	if err != nil {
		return sim.SpanEvent{}, err
	}
	dev, err := sim.ParseDevice(r.Device)
	if err != nil {
		return sim.SpanEvent{}, err
	}
	return sim.SpanEvent{
		Category: cat,
		Device:   dev,
		Proc:     r.Proc,
		Resource: r.Resource,
		Phase:    r.Phase,
		Bytes:    r.Bytes,
		Start:    r.Start,
		End:      r.End,
	}, nil
}

// Meta is the header line of a persisted span stream: schema version,
// run identity (app, machine, free-form label), the run's makespan, and
// the span count (so truncated files are detected on read).
type Meta struct {
	// Schema is the span schema version (SpanSchemaVersion on write).
	Schema int `json:"schema"`
	// App names the application kernel ("lu", "fw", "mm"), if known.
	App string `json:"app,omitempty"`
	// Machine names the machine configuration, if known.
	Machine string `json:"machine,omitempty"`
	// Label is a free-form run label ("nominal", "faulted", a path...).
	Label string `json:"label,omitempty"`
	// Makespan is the run's total virtual seconds.
	Makespan float64 `json:"makespan_s"`
	// Spans is the number of span lines that follow the header.
	Spans int `json:"spans"`
}

// WriteSpans persists a span stream as JSONL: one Meta header line
// followed by one SpanRecord line per span, in the given order. The
// caller's meta.Schema and meta.Spans are overwritten with the current
// schema version and the actual count. Field order is fixed by the
// record structs, so identical runs persist identical bytes.
func WriteSpans(w io.Writer, meta Meta, spans []sim.SpanEvent) error {
	meta.Schema = SpanSchemaVersion
	meta.Spans = len(spans)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, sp := range spans {
		if err := enc.Encode(RecordOf(sp)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSpans persists the recorded spans (see the package-level
// WriteSpans) without copying them out of the recorder.
func (r *Recorder) WriteSpans(w io.Writer, meta Meta) error {
	return WriteSpans(w, meta, r.spans)
}

// ReadSpans reads a JSONL span stream written by WriteSpans. It rejects
// unknown fields, schema versions newer than this build, and files
// whose span count disagrees with the header (truncation). A header
// with no makespan gets one filled in from the latest span end.
func ReadSpans(r io.Reader) (Meta, []sim.SpanEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var meta Meta
	var spans []sim.SpanEvent
	line := 0
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		line++
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if line == 1 {
			if err := dec.Decode(&meta); err != nil {
				return Meta{}, nil, fmt.Errorf("span stream header: %w", err)
			}
			if meta.Schema < 1 || meta.Schema > SpanSchemaVersion {
				return Meta{}, nil, fmt.Errorf("span schema version %d unsupported (this build reads 1..%d)",
					meta.Schema, SpanSchemaVersion)
			}
			spans = make([]sim.SpanEvent, 0, meta.Spans)
			continue
		}
		var rec SpanRecord
		if err := dec.Decode(&rec); err != nil {
			return Meta{}, nil, fmt.Errorf("span line %d: %w", line, err)
		}
		sp, err := rec.Event()
		if err != nil {
			return Meta{}, nil, fmt.Errorf("span line %d: %w", line, err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return Meta{}, nil, err
	}
	if line == 0 {
		return Meta{}, nil, fmt.Errorf("span stream is empty")
	}
	if len(spans) != meta.Spans {
		return Meta{}, nil, fmt.Errorf("span stream truncated: header declares %d spans, found %d",
			meta.Spans, len(spans))
	}
	if meta.Makespan == 0 {
		meta.Makespan = latestEnd(spans)
	}
	return meta, spans, nil
}

// ReadSpansCSV reads a span CSV written by Recorder.WriteSpansCSV —
// either the current header (with a device column) or the pre-device
// seven-column header, so old -spans-out dumps round-trip. Columns are
// matched by name, so column order does not matter.
func ReadSpansCSV(r io.Reader) ([]sim.SpanEvent, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("span CSV header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[strings.TrimSpace(name)] = i
	}
	for _, required := range []string{"start_s", "end_s", "category", "process"} {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("span CSV header missing column %q", required)
		}
	}
	field := func(row []string, name string) string {
		i, ok := col[name]
		if !ok || i >= len(row) {
			return ""
		}
		return row[i]
	}
	var spans []sim.SpanEvent
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("span CSV line %d: %w", line, err)
		}
		rec := SpanRecord{
			Category: field(row, "category"),
			Device:   field(row, "device"),
			Proc:     field(row, "process"),
			Resource: field(row, "resource"),
			Phase:    field(row, "phase"),
		}
		if rec.Start, err = strconv.ParseFloat(field(row, "start_s"), 64); err != nil {
			return nil, fmt.Errorf("span CSV line %d: start_s: %w", line, err)
		}
		if rec.End, err = strconv.ParseFloat(field(row, "end_s"), 64); err != nil {
			return nil, fmt.Errorf("span CSV line %d: end_s: %w", line, err)
		}
		if b := field(row, "bytes"); b != "" {
			if rec.Bytes, err = strconv.ParseInt(b, 10, 64); err != nil {
				return nil, fmt.Errorf("span CSV line %d: bytes: %w", line, err)
			}
		}
		sp, err := rec.Event()
		if err != nil {
			return nil, fmt.Errorf("span CSV line %d: %w", line, err)
		}
		spans = append(spans, sp)
	}
	return spans, nil
}

// ReadSpansFile reads a persisted span stream from disk, sniffing the
// format: files whose first byte is '{' are JSONL (WriteSpans), anything
// else is CSV (Recorder.WriteSpansCSV, old or new header). CSV files
// carry no header metadata, so the returned Meta holds only the schema
// version and a makespan derived from the latest span end.
func ReadSpansFile(path string) (Meta, []sim.SpanEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	first, err := br.Peek(1)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	if first[0] == '{' {
		meta, spans, err := ReadSpans(br)
		if err != nil {
			return Meta{}, nil, fmt.Errorf("%s: %w", path, err)
		}
		return meta, spans, nil
	}
	spans, err := ReadSpansCSV(br)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	meta := Meta{Schema: SpanSchemaVersion, Spans: len(spans), Makespan: latestEnd(spans)}
	return meta, spans, nil
}

// latestEnd returns the maximum span end time (0 for no spans).
func latestEnd(spans []sim.SpanEvent) float64 {
	var max float64
	for _, sp := range spans {
		if sp.End > max {
			max = sp.End
		}
	}
	return max
}
