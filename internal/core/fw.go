package core

import (
	"fmt"
	"math/rand"

	"codesign/internal/cpu"
	"codesign/internal/dist"
	"codesign/internal/fault"
	"codesign/internal/fpga"
	"codesign/internal/machine"
	"codesign/internal/matrix"
	"codesign/internal/model"
	"codesign/internal/obs"
	"codesign/internal/sim"
)

// FWConfig configures a distributed blocked Floyd-Warshall run
// (Section 5.2.3).
type FWConfig struct {
	// Machine is the system; zero value means one Cray XD1 chassis.
	Machine machine.Config
	// N is the vertex count, B the block size. B·p must divide N and B
	// must be a multiple of the PE count.
	N, B int
	// PEs is the FW design size; 0 means the largest that fits.
	PEs int
	// L1 is the processor's whole-task share per phase; -1 solves
	// Equation (6). L2 is the remainder of n/(b·p). (Baselines force
	// L1: ProcessorOnly takes all, FPGAOnly none.)
	L1 int
	// Mode selects hybrid or a baseline.
	Mode Mode
	// Functional carries a real distance matrix through the run and
	// checks it against the sequential blocked reference.
	Functional bool
	// Trace, when non-nil, receives every engine event.
	Trace func(t float64, proc, action string)
	// Observer, when non-nil, receives the structured telemetry stream
	// (raw events and typed spans; see internal/trace.Recorder).
	Observer sim.Observer
	// Telemetry attaches a span digest — utilization, bytes moved, and
	// the Tp/Tf/Tmem/Tcomm overlap decomposition — to the result.
	Telemetry bool
	// Seed and Density drive functional graph generation.
	Seed    int64
	Density float64
	// Faults, when non-nil, enables fault injection and degraded mode:
	// the pivot-column owner re-solves Equation (6) at iteration
	// boundaries when sustained rate divergence is detected. Node-kill
	// faults are rejected — the contiguous block-column distribution
	// cannot shed an owner. Incompatible with Functional.
	Faults *fault.Injector
	// Metrics, when non-nil, receives live core_* observability samples
	// (repartition counts by reason, live-node gauge). Publishing never
	// changes simulated results.
	Metrics *obs.Registry
}

// FWResult extends Result with the FW-specific configuration.
type FWResult struct {
	Result
	L1, L2, K        int
	IterationSeconds []float64
	Model            model.FWParams
	Prediction       model.Prediction
}

// fwBcast is a broadcast token: the diagonal block (phase 0) or an op22
// result row block (later phases) of iteration t.
type fwBcast struct {
	t, ph int
}

type fwRun struct {
	cfg     FWConfig
	sys     *machine.System
	fp      model.FWParams
	nb      int
	cols    dist.ColumnBlocks
	colsPer int // owned block columns per node (= ops per phase)
	l1, l2  int

	tp, tf, tmem, tcomm float64
	blockCycles         float64

	bcast []*sim.Mailbox

	d *matrix.Dense // functional distance matrix

	// Degraded-mode state, used only under fault injection.
	tracker      *faultTracker
	repartitions []Repartition
}

func (fr *fwRun) blk(u, v int) *matrix.Dense {
	b := fr.cfg.B
	return fr.d.View(u*b, v*b, b, b)
}

// owner returns the node owning block column c per the contiguous
// block-column distribution of Section 5.2.3.
func (fr *fwRun) owner(c int) int { return fr.cols.Owner(c) }

// RunFW builds the machine, derives the whole-task split from the
// design model, simulates the distributed computation and returns the
// measured results.
func RunFW(cfg FWConfig) (*FWResult, error) {
	if cfg.Machine.Nodes == 0 {
		cfg.Machine = machine.XD1()
	}
	p := cfg.Machine.Nodes
	if cfg.N <= 0 || cfg.B <= 0 || cfg.N%(cfg.B*p) != 0 {
		return nil, fmt.Errorf("core: n=%d must be a multiple of b·p=%d", cfg.N, cfg.B*p)
	}
	sys, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	sys.Eng.Trace = cfg.Trace
	rec := setupTelemetry(sys.Eng, cfg.Telemetry, cfg.Observer)
	k := cfg.PEs
	if k == 0 {
		k = fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewFW(k) }, cfg.Machine.Device)
	}
	if cfg.B%k != 0 {
		return nil, fmt.Errorf("core: block size %d must be a multiple of k=%d", cfg.B, k)
	}
	design := fpga.NewFW(k)
	if err := sys.InstallDesign(design); err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		if cfg.Functional {
			return nil, fmt.Errorf("core: functional checking cannot run under fault injection")
		}
		if cfg.Faults.HasDeaths() {
			return nil, fmt.Errorf("core: fw cannot survive node kills: the contiguous block-column distribution has no surviving owner for a dead node's columns")
		}
		if err := sys.InstallFaults(cfg.Faults); err != nil {
			return nil, err
		}
	}
	accel := sys.Nodes[0].Accel
	proc := sys.Nodes[0].Proc

	fp := model.FWParams{
		P: p, B: cfg.B, K: k,
		Ff:        accel.Placed.FreqHz,
		FWRate:    proc.Rate(cpu.FWKernel),
		Bd:        accel.DRAM.BandwidthBytes,
		Bn:        cfg.Machine.Fabric.LinkBandwidth,
		Bw:        machine.WordBytes,
		SRAMBytes: sys.Nodes[0].SRAM.TotalBytes() / 2,
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}

	fr := &fwRun{cfg: cfg, sys: sys, fp: fp, nb: cfg.N / cfg.B}
	if cfg.Faults != nil {
		fr.tracker = newFaultTracker(cfg.Faults)
	}
	fr.cols, err = dist.CheckedColumnBlocks(fr.nb, p)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	fr.colsPer = fr.cols.PerNode()
	fr.tp, fr.tf, fr.tmem, fr.tcomm = fp.BlockTimes()
	fr.blockCycles = design.Cycles(cfg.B)

	total := fr.colsPer // ops per node per phase = n/(b·p)
	switch cfg.Mode {
	case ProcessorOnly:
		fr.l1, fr.l2 = total, 0
	case FPGAOnly:
		fr.l1, fr.l2 = 0, total
	default:
		if cfg.L1 >= 0 {
			if cfg.L1 > total {
				return nil, fmt.Errorf("core: l1=%d exceeds ops per phase %d", cfg.L1, total)
			}
			fr.l1, fr.l2 = cfg.L1, total-cfg.L1
		} else {
			fr.l1, fr.l2 = fp.SolveSplit(cfg.N)
		}
	}

	var ref *matrix.Dense
	if cfg.Functional {
		density := cfg.Density
		if density <= 0 {
			density = 0.3
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		fr.d = matrix.RandomGraph(cfg.N, density, rng)
		ref = fr.d.Clone()
		matrix.BlockedFloydWarshall(ref, cfg.B)
	}

	for i := 0; i < p; i++ {
		fr.bcast = append(fr.bcast, sim.NewMailbox(sys.Eng, fmt.Sprintf("fw.bcast%d", i)))
	}

	iterEnd := make([]float64, fr.nb)
	for i := 0; i < p; i++ {
		node := sys.Nodes[i]
		me := i
		sys.Eng.Go(fmt.Sprintf("node%d.cpu", me), func(pr *sim.Proc) {
			for t := 0; t < fr.nb; t++ {
				fr.runIteration(pr, node, me, t)
				if me == 0 {
					iterEnd[t] = pr.Now()
				}
			}
		})
	}

	end, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("core: fw simulation: %w", err)
	}

	n := float64(cfg.N)
	flops := 2 * n * n * n
	cpuBusy, fpgaBusy := collectBusy(sys)
	res := &FWResult{
		Result: Result{
			App: "fw", Mode: cfg.Mode, N: cfg.N, B: cfg.B,
			Seconds: end, Flops: flops, GFLOPS: flops / end / 1e9,
			NetworkBytes:  sys.Fab.Bytes(),
			Coordinations: collectCoordinations(sys),
			CPUBusy:       cpuBusy, FPGABusy: fpgaBusy,
		},
		L1: fr.l1, L2: fr.l2, K: k,
		Model:      fp,
		Prediction: fp.PredictFW(cfg.N, fr.l1, fr.l2),
	}
	prev := 0.0
	for _, tEnd := range iterEnd {
		res.IterationSeconds = append(res.IterationSeconds, tEnd-prev)
		prev = tEnd
	}
	if cfg.Faults != nil {
		res.Repartitions = fr.repartitions
	}
	summarizeTelemetry(rec, end, &res.Result)
	if cfg.Functional && ref != nil {
		res.Checked = true
		res.MaxResidual = fr.d.MaxDiff(ref)
	}
	return res, nil
}

// runIteration is iteration t on node me: nb phases, each preceded by a
// broadcast from the pivot-column owner, each performing this node's
// n/(b·p) block operations split between processor and FPGA.
func (fr *fwRun) runIteration(pr *sim.Proc, node *machine.Node, me, t int) {
	tq := fr.owner(t)
	nb := fr.nb

	// Degraded mode: node 0 samples the divergence tracker once per
	// iteration boundary and re-solves the Equation (6) split when the
	// observed rates have drifted from the ones it was solved against.
	if fr.tracker != nil && me == 0 {
		fr.maybeRepartition(pr.Now(), t)
	}

	// rowSeq is the broadcast order of op22 row blocks (all rows but t).
	rowAt := func(ph int) int { // for phases 1..nb-1
		u := ph - 1
		if u >= t {
			u++
		}
		return u
	}

	myCols := make([]int, 0, fr.colsPer)
	for c := me * fr.colsPer; c < (me+1)*fr.colsPer; c++ {
		myCols = append(myCols, c)
	}

	for ph := 0; ph < nb; ph++ {
		// --- Broadcast for this phase. ---
		if me == tq {
			if ph == 0 {
				// op1 on the diagonal block — on the owner's
				// processor, except in the FPGA-only baseline.
				nFPGA := 0
				if fr.cfg.Mode == FPGAOnly {
					nFPGA = 1
				}
				fr.runOps(pr, node, t, ph, []fwOp{{kind: op1, u: t, v: t}}, nFPGA)
			}
			fr.multicast(pr, me, t, ph)
		} else {
			m := fr.bcast[me].Get(pr).(fwBcast)
			if m.t != t || m.ph != ph {
				panic(fmt.Sprintf("core: node %d expected bcast (%d,%d), got (%d,%d)", me, t, ph, m.t, m.ph))
			}
			// Unpack the pivot block; the wire span carried the bytes.
			pr.SetPhase("broadcast")
			node.ChargeCPU(pr, sim.CatNetwork, 0, fr.tcomm)
			pr.SetPhase("")
		}

		// --- This phase's block operations. ---
		// The owner's op22 for the next phase's broadcast goes first
		// so the whole-task split keeps it in the processor segment.
		var ops []fwOp
		if me == tq && ph < nb-1 {
			ops = append(ops, fwOp{kind: op22, u: rowAt(ph + 1), v: t})
		}
		if ph == 0 {
			for _, q := range myCols {
				if q != t {
					ops = append(ops, fwOp{kind: op21, u: t, v: q})
				}
			}
		} else {
			u := rowAt(ph)
			for _, q := range myCols {
				if q != t {
					ops = append(ops, fwOp{kind: op3, u: u, v: q})
				}
			}
		}
		nFPGA := fr.l2
		if nFPGA > len(ops) {
			nFPGA = len(ops)
		}
		fr.runOps(pr, node, t, ph, ops, nFPGA)
	}
}

// maybeRepartition re-solves the whole-task split against the observed
// degradation when the tracker fires. A caller-pinned L1 (>= 0) and the
// baselines stay pinned, but the detection is still recorded so the
// resilience report shows recovery lag either way.
func (fr *fwRun) maybeRepartition(now float64, t int) {
	d, fire := fr.tracker.sample(now)
	if !fire {
		return
	}
	if fr.cfg.Mode == Hybrid && fr.cfg.L1 < 0 {
		l1, l2 := fr.fp.Repartition(fr.cfg.N, d)
		total := fr.colsPer
		if l1 > total {
			l1, l2 = total, 0
		}
		if l2 > total {
			l1, l2 = 0, total
		}
		fr.l1, fr.l2 = l1, l2
	}
	fr.repartitions = append(fr.repartitions, Repartition{
		Time: now, Iteration: t, Reason: "divergence",
		Live: fr.sys.Cfg.Nodes, L1: fr.l1, L2: fr.l2,
		Factors: d.Normalized(),
	})
	recordRepartition(fr.cfg.Metrics, "divergence", fr.sys.Cfg.Nodes)
}

type fwOpKind int

const (
	op1 fwOpKind = iota
	op21
	op22
	op3
)

type fwOp struct {
	kind fwOpKind
	u, v int
}

// runOps executes a batch of block operations with the whole-task split:
// the last nFPGA go to the FPGA (streamed by the processor per
// Equation 6), the rest run on the processor.
func (fr *fwRun) runOps(pr *sim.Proc, node *machine.Node, t, ph int, ops []fwOp, nFPGA int) {
	if len(ops) == 0 {
		return
	}
	pr.SetPhase("op")
	defer pr.SetPhase("")
	if nFPGA > len(ops) {
		nFPGA = len(ops)
	}
	cpuOps := ops[:len(ops)-nFPGA]
	fpgaOps := ops[len(ops)-nFPGA:]

	var done *sim.Signal
	var seq [2]sim.Charge
	cs := seq[:0]
	if len(fpgaOps) > 0 {
		a := node.Accel
		cycles := float64(len(fpgaOps)) * fr.blockCycles
		lag := fr.tmem // first block's stream exposed
		done = a.Launch(sim.Name("fw.fpga", t, ph, node.ID), func(fp *sim.Proc) {
			fp.SetPhase("op")
			a.WaitOperands(fp, lag)
			a.Compute(fp, cycles)
		})
		// The processor streams the FPGA's operand blocks (Eq. 6
		// charges l2·Tmem to the processor side): 2b² words per block.
		b := fr.cfg.B
		dmaBytes := int64(len(fpgaOps)) * int64(2*b*b) * machine.WordBytes
		cs = append(cs, sim.Charge{Cat: sim.CatDMA, Bytes: dmaBytes, Dt: float64(len(fpgaOps)) * fr.tmem})
	}
	if len(cpuOps) > 0 {
		cs = append(cs, sim.Charge{Cat: sim.CatCompute,
			Dt: node.Proc.Time(cpu.FWKernel, float64(len(cpuOps))*cpu.FWBlockFlops(fr.cfg.B))})
	}
	// DMA staging and the CPU kernel fuse into one engine park.
	node.ChargeCPUSeq(pr, cs)
	if fr.d != nil {
		for _, op := range ops {
			fr.apply(op, t)
		}
	}
	if done != nil {
		node.Accel.AwaitDone(pr, done)
	}
}

// apply runs one block operation functionally.
func (fr *fwRun) apply(op fwOp, t int) {
	switch op.kind {
	case op1:
		matrix.FWKernel(fr.blk(t, t))
	case op21:
		matrix.FWRowUpdate(fr.blk(t, op.v), fr.blk(t, t))
	case op22:
		matrix.FWColUpdate(fr.blk(op.u, t), fr.blk(t, t))
	case op3:
		matrix.MinPlusGemm(fr.blk(op.u, t), fr.blk(t, op.v), fr.blk(op.u, op.v))
	}
}

// multicast broadcasts a b×b block to all other nodes (the phase's
// pivot data) and delivers the token.
func (fr *fwRun) multicast(pr *sim.Proc, me, t, ph int) {
	p := fr.sys.Cfg.Nodes
	if p == 1 {
		return
	}
	dsts := make([]int, 0, p-1)
	for i := 0; i < p; i++ {
		if i != me {
			dsts = append(dsts, i)
		}
	}
	bytes := fr.cfg.B * fr.cfg.B * machine.WordBytes
	pr.SetPhase("broadcast")
	fr.sys.Fab.Multicast(pr, me, dsts, bytes)
	pr.SetPhase("")
	for _, d := range dsts {
		fr.bcast[d].Put(fwBcast{t: t, ph: ph})
	}
}
