package core

import (
	"reflect"
	"testing"

	"codesign/internal/fault"
	"codesign/internal/model"
	"codesign/internal/trace"
)

func TestRunSpMVSparseIsBdBound(t *testing.T) {
	r, err := RunSpMV(SpMVConfig{N: 1024, Density: 0.05, RowsFPGA: -1, Mode: Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked || r.MaxResidual != 0 {
		t.Fatalf("split apply must be bit-identical to the reference: checked=%v residual=%g",
			r.Checked, r.MaxResidual)
	}
	if r.RowsFPGA != r.N || r.RowsCPU != 0 {
		t.Fatalf("sparse solve should stream every row through the FPGA, got %d/%d", r.RowsFPGA, r.RowsCPU)
	}
	if bind, _ := r.Model.StripeBinding(r.RowsFPGA); bind != model.BindBd {
		t.Fatalf("sparse streamed apply binds %s, want %s", bind, model.BindBd)
	}
	if r.Resident || r.LoadSeconds != 0 {
		t.Fatalf("a single apply must stream, not load: resident=%v load=%g", r.Resident, r.LoadSeconds)
	}
	if ratio := r.Seconds / r.Prediction.Seconds; ratio < 0.9 || ratio > 1.2 {
		t.Fatalf("measured %g s vs predicted %g s (ratio %g)", r.Seconds, r.Prediction.Seconds, ratio)
	}
}

func TestRunSpMVDenseSolvesToProcessor(t *testing.T) {
	r, err := RunSpMV(SpMVConfig{N: 512, Density: 0, RowsFPGA: -1, Mode: Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsFPGA != 0 || r.RowsCPU != r.N {
		t.Fatalf("dense solve should keep every row on the processor, got %d/%d", r.RowsFPGA, r.RowsCPU)
	}
	if bind, _ := r.Model.StripeBinding(0); bind != model.BindOpFp {
		t.Fatalf("dense all-CPU split binds %s, want %s", bind, model.BindOpFp)
	}
	if r.MaxResidual != 0 {
		t.Fatalf("dense split apply differs from reference by %g", r.MaxResidual)
	}
	if r.NNZ != r.N*r.N || r.Words != r.N*r.N {
		t.Fatalf("dense operator footprint: nnz=%d words=%d", r.NNZ, r.Words)
	}
}

func TestRunSpMVDeterministic(t *testing.T) {
	recA, recB := trace.NewRecorder(), trace.NewRecorder()
	cfg := SpMVConfig{N: 512, Density: 0.05, RowsFPGA: -1, Mode: Hybrid, Seed: 3}
	cfg.Observer = recA
	a, err := RunSpMV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = recB
	b, err := RunSpMV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.GFLOPS != b.GFLOPS || a.MaxResidual != b.MaxResidual {
		t.Fatalf("identical configs diverge: %+v vs %+v", a.Result, b.Result)
	}
	if !reflect.DeepEqual(recA.Spans(), recB.Spans()) {
		t.Fatal("identical configs produce different span streams")
	}
}

func TestRunSpMMResidentSparseShare(t *testing.T) {
	r, err := RunSpMM(SpMVConfig{N: 2048, Density: 0.02, RHS: 32, RowsFPGA: -1, Mode: Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Resident {
		t.Fatalf("a %d-word sparse operator should fit SRAM and go resident", r.Words)
	}
	if r.Applies != 32 {
		t.Fatalf("applies = %d, want 32", r.Applies)
	}
	if r.LoadSeconds <= 0 {
		t.Fatal("resident share must pay a one-time SRAM load")
	}
	if r.RowsFPGA <= 0 || r.RowsFPGA >= r.N {
		t.Fatalf("resident solve should land interior, got %d/%d", r.RowsFPGA, r.N)
	}
	if r.MaxResidual != 0 {
		t.Fatalf("power chain diverged from reference by %g", r.MaxResidual)
	}
}

func TestRunSpMMDenseStaysStreamed(t *testing.T) {
	r, err := RunSpMM(SpMVConfig{N: 2048, Density: 0, RHS: 4, RowsFPGA: -1, Mode: Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Resident {
		t.Fatalf("a %d-word dense operator cannot fit SRAM", r.Words)
	}
	if r.LoadSeconds != 0 {
		t.Fatalf("streamed arrangement paid a load: %g", r.LoadSeconds)
	}
}

func TestRunSpMVRejectsBadConfigs(t *testing.T) {
	if _, err := RunSpMV(SpMVConfig{N: 0}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RunSpMV(SpMVConfig{N: 64, Density: 1.5}); err == nil {
		t.Error("density 1.5 accepted")
	}
	if _, err := RunSpMV(SpMVConfig{N: 64, RowsFPGA: 65, Mode: Hybrid}); err == nil {
		t.Error("rowsFPGA > n accepted")
	}
	kill := mustInjector(t, &fault.Spec{
		Events: []fault.Event{{Kind: fault.NodeKill, Node: 1, Start: 0}},
	}, 6)
	if _, err := RunSpMV(SpMVConfig{N: 64, Density: 0.1, RowsFPGA: -1, Faults: kill}); err == nil {
		t.Error("node-kill injector accepted on a single-node workload")
	}
}

// TestSpMVThrottleBdDominates pins the asymmetry the cost model
// predicts: a streamed sparse apply is DRAM-paced end to end, so a Bd
// throttle dilates it almost proportionally, while the dense MM stripe
// keeps most of its time in compute and barely moves under the same
// fault.
func TestSpMVThrottleBdDominates(t *testing.T) {
	throttle := func() *fault.Injector {
		return mustInjector(t, &fault.Spec{
			Events: []fault.Event{{Kind: fault.ThrottleBd, Node: 0, Start: 0, Factor: 0.25}},
		}, 6)
	}
	spmvCfg := SpMVConfig{N: 1024, Density: 0.05, RowsFPGA: -1, Mode: Hybrid, Seed: 1}
	spmvBase, err := RunSpMV(spmvCfg)
	if err != nil {
		t.Fatal(err)
	}
	spmvCfg.Faults = throttle()
	spmvFaulted, err := RunSpMV(spmvCfg)
	if err != nil {
		t.Fatal(err)
	}
	spmvDilation := spmvFaulted.Seconds / spmvBase.Seconds
	if spmvFaulted.MaxResidual != 0 {
		t.Fatalf("throttling must not change arithmetic: residual %g", spmvFaulted.MaxResidual)
	}

	mmBase, err := RunMM(MMConfig{N: 1536, BF: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	mmFaulted, err := RunMM(MMConfig{N: 1536, BF: -1, Mode: Hybrid, Faults: throttle()})
	if err != nil {
		t.Fatal(err)
	}
	mmDilation := mmFaulted.Seconds / mmBase.Seconds

	if spmvDilation < 2 {
		t.Fatalf("Bd throttle barely moved the streamed spmv: dilation %g", spmvDilation)
	}
	if spmvDilation < 2*mmDilation {
		t.Fatalf("Bd throttle should dominate spmv (%gx) far more than dense mm (%gx)",
			spmvDilation, mmDilation)
	}
}

// TestRunCGSparseLockstep exercises the shared SpMV partition solver
// inside RunCG: the run must stay in lockstep with matrix.CG (RunCG
// errors otherwise) and verify bit-exact iterates.
func TestRunCGSparseLockstep(t *testing.T) {
	r, err := RunCG(CGConfig{N: 512, Density: 0.05, RowsFPGA: -1, Mode: Hybrid, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("sparse CG did not converge: %+v", r)
	}
	if r.MaxResidual != 0 {
		t.Fatalf("sim iterates differ from reference by %g", r.MaxResidual)
	}
}
