// Package cli holds the small pieces every command in cmd/ shares,
// chiefly a leveled stderr logger with the conventional "tool:
// message" prefix. It exists so the tools agree on flag names (-v,
// -q), message shape and level semantics instead of each rolling its
// own fmt.Fprintf(os.Stderr, ...) calls.
//
// The logger is a thin skin over log/slog: levels and structured
// attributes come from slog, while the handler renders the terse
// single-line form terminal users expect from a Unix tool rather than
// slog's key=value text format.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// Logger is a leveled stderr logger for a command-line tool. Every
// line it emits is prefixed "tool: " (and, for non-info levels,
// "tool: level: ") so interleaved output from pipelines stays
// attributable. The zero value is unusable; construct with NewLogger.
type Logger struct {
	s     *slog.Logger
	level *slog.LevelVar
}

// NewLogger returns a Logger writing single-line messages for the
// named tool to w (conventionally os.Stderr) at Info level and above.
func NewLogger(tool string, w io.Writer) *Logger {
	lv := new(slog.LevelVar)
	h := &lineHandler{mu: new(sync.Mutex), w: w, tool: tool, level: lv}
	return &Logger{s: slog.New(h), level: lv}
}

// AddFlags registers the conventional verbosity flags on fs:
// -v lowers the threshold to Debug, -q raises it to Error (quiet
// tools still report failures). The flags take effect when fs is
// parsed; -q wins if both are given.
func (l *Logger) AddFlags(fs *flag.FlagSet) {
	fs.BoolFunc("v", "verbose: also log debug detail", func(string) error {
		if l.level.Level() > slog.LevelDebug {
			l.level.Set(slog.LevelDebug)
		}
		return nil
	})
	fs.BoolFunc("q", "quiet: log errors only", func(string) error {
		l.level.Set(slog.LevelError)
		return nil
	})
}

// SetLevel sets the minimum level a message needs to be emitted.
func (l *Logger) SetLevel(lv slog.Level) { l.level.Set(lv) }

// Verbose reports whether debug messages are currently emitted.
func (l *Logger) Verbose() bool { return l.level.Level() <= slog.LevelDebug }

// Quiet reports whether info messages are currently suppressed.
func (l *Logger) Quiet() bool { return l.level.Level() > slog.LevelInfo }

// Errorf logs a formatted message at Error level.
func (l *Logger) Errorf(format string, args ...any) {
	l.s.Error(fmt.Sprintf(format, args...))
}

// Warnf logs a formatted message at Warn level.
func (l *Logger) Warnf(format string, args ...any) {
	l.s.Warn(fmt.Sprintf(format, args...))
}

// Infof logs a formatted message at Info level.
func (l *Logger) Infof(format string, args ...any) {
	l.s.Info(fmt.Sprintf(format, args...))
}

// Debugf logs a formatted message at Debug level (emitted only
// under -v).
func (l *Logger) Debugf(format string, args ...any) {
	l.s.Debug(fmt.Sprintf(format, args...))
}

// lineHandler renders slog records as "tool: message" lines. Info is
// unprefixed beyond the tool name; other levels insert a lowercased
// level word, matching the long-standing Unix convention
// ("grep: warning: ..."). Attrs attached via slog's structured API are
// appended as " k=v" pairs.
type lineHandler struct {
	mu    *sync.Mutex
	w     io.Writer
	tool  string
	level slog.Leveler
	attrs string
}

// Enabled implements slog.Handler.
func (h *lineHandler) Enabled(_ context.Context, lv slog.Level) bool {
	return lv >= h.level.Level()
}

// Handle implements slog.Handler: it writes the record as one line
// under the handler mutex so concurrent workers never interleave.
func (h *lineHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(h.tool)
	b.WriteString(": ")
	if r.Level != slog.LevelInfo {
		b.WriteString(strings.ToLower(r.Level.String()))
		b.WriteString(": ")
	}
	b.WriteString(r.Message)
	b.WriteString(h.attrs)
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

// WithAttrs implements slog.Handler by pre-rendering the attrs into
// the line suffix.
func (h *lineHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	var b strings.Builder
	b.WriteString(h.attrs)
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	nh.attrs = b.String()
	return &nh
}

// WithGroup implements slog.Handler; groups are flattened (the tools
// here never nest them).
func (h *lineHandler) WithGroup(string) slog.Handler { return h }
