package matrix

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33} {
		rng := rand.New(rand.NewSource(int64(200 + n)))
		a := RandomSPD(n, rng)
		orig := a.Clone()
		if err := Cholesky(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := ExtractLower(a)
		got := Mul(l, l.Transpose())
		if !got.EqualApprox(orig, 1e-9) {
			t.Fatalf("n=%d: L*L^T != A, maxdiff %g", n, got.MaxDiff(orig))
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestBlockCholeskyMatchesUnblocked(t *testing.T) {
	for _, tc := range []struct{ n, b int }{{8, 2}, {12, 3}, {20, 5}, {16, 16}, {18, 4}} {
		rng := rand.New(rand.NewSource(int64(210 + tc.n)))
		a := RandomSPD(tc.n, rng)
		want := a.Clone()
		if err := Cholesky(want); err != nil {
			t.Fatal(err)
		}
		got := a.Clone()
		if err := BlockCholesky(got, tc.b); err != nil {
			t.Fatalf("n=%d b=%d: %v", tc.n, tc.b, err)
		}
		if !ExtractLower(got).EqualApprox(ExtractLower(want), 1e-9) {
			t.Fatalf("n=%d b=%d: blocked != unblocked", tc.n, tc.b)
		}
	}
}

func TestSyrkAgainstGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	a := Random(7, 4, rng)
	c := RandomSPD(7, rng)
	want := c.Clone()
	Gemm(-1, a, a.Transpose(), 1, want)
	Syrk(a, c)
	// Syrk only writes the lower triangle.
	for i := 0; i < 7; i++ {
		for j := 0; j <= i; j++ {
			if !approxEq(c.At(i, j), want.At(i, j), 1e-12) {
				t.Fatalf("lower (%d,%d): %v vs %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestSyrkLeavesUpperUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	a := Random(5, 3, rng)
	c := Random(5, 5, rng)
	before := c.Clone()
	Syrk(a, c)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if c.At(i, j) != before.At(i, j) {
				t.Fatalf("upper (%d,%d) modified", i, j)
			}
		}
	}
}

func TestTrsmRightLowerT(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	spd := RandomSPD(6, rng)
	if err := Cholesky(spd); err != nil {
		t.Fatal(err)
	}
	l := ExtractLower(spd)
	b := Random(4, 6, rng)
	x := b.Clone()
	TrsmRightLowerT(l, x)
	if got := Mul(x, l.Transpose()); !got.EqualApprox(b, 1e-9) {
		t.Fatalf("X*L^T != B, maxdiff %g", got.MaxDiff(b))
	}
}

func TestPropCholeskyRoundTrip(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		n := 1 + rng.Intn(16)
		a := RandomSPD(n, rng)
		orig := a.Clone()
		if err := Cholesky(a); err != nil {
			return false
		}
		l := ExtractLower(a)
		return Mul(l, l.Transpose()).EqualApprox(orig, 1e-8)
	}
	if err := quick.Check(f, quickCfg(230)); err != nil {
		t.Fatal(err)
	}
}

func TestPropBlockCholeskyAgrees(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		n := 2 + rng.Intn(20)
		bs := 1 + rng.Intn(n)
		a := RandomSPD(n, rng)
		u := a.Clone()
		if err := Cholesky(u); err != nil {
			return false
		}
		bl := a.Clone()
		if err := BlockCholesky(bl, bs); err != nil {
			return false
		}
		return ExtractLower(bl).EqualApprox(ExtractLower(u), 1e-8)
	}
	if err := quick.Check(f, quickCfg(231)); err != nil {
		t.Fatal(err)
	}
}

func TestExtractLowerShape(t *testing.T) {
	rng := rand.New(rand.NewSource(240))
	a := Random(4, 4, rng)
	l := ExtractLower(a)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if j <= i {
				want = a.At(i, j)
			}
			if l.At(i, j) != want {
				t.Fatalf("(%d,%d)", i, j)
			}
		}
	}
}
