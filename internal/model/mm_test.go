package model

import (
	"math"
	"testing"
)

func xd1MM() MMParams {
	return MMParams{
		P: 6, N: 3072, K: 8,
		Ff:         130e6,
		StripeRate: 2.95e9,
		Bd:         1.04e9, Bw: 8,
		SRAMBytes: 8 << 20,
	}
}

func TestMMValidate(t *testing.T) {
	if err := xd1MM().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := xd1MM()
	bad.N = 100 // not multiple of k=8 or p=6
	if err := bad.Validate(); err == nil {
		t.Fatal("bad n accepted")
	}
	bad = xd1MM()
	bad.P = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero p accepted")
	}
	bad = xd1MM()
	bad.Ff = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rate accepted")
	}
	bad = xd1MM()
	bad.K = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero k accepted")
	}
}

func TestMMWidth(t *testing.T) {
	if w := xd1MM().Width(); w != 512 {
		t.Fatalf("width = %d", w)
	}
}

func TestMMPartitionBalancesEquation1(t *testing.T) {
	mp := xd1MM()
	bf, bp := mp.SolvePartition()
	if bf%mp.K != 0 || bf+bp != mp.N {
		t.Fatalf("partition malformed: bf=%d bp=%d", bf, bp)
	}
	tf, tp, tmem := mp.StripeTimes(bf)
	if math.Abs(tf-(tp+tmem))/tf > 0.05 {
		t.Fatalf("Eq1 imbalance: tf=%g vs %g", tf, tp+tmem)
	}
}

func TestMMPartitionSRAMClamp(t *testing.T) {
	mp := xd1MM()
	mp.SRAMBytes = 1 << 20 // 1 MB: maxBf = (1<<20)/8/512 = 256
	bf, _ := mp.SolvePartition()
	if bf > 256 {
		t.Fatalf("bf=%d exceeds SRAM cap", bf)
	}
	if bf%mp.K != 0 {
		t.Fatalf("clamped bf=%d not multiple of k", bf)
	}
}

func TestMMPartitionExtremes(t *testing.T) {
	// FPGA vastly faster than the CPU: it takes nearly everything.
	mp := xd1MM()
	mp.SRAMBytes = 0 // no cap
	mp.StripeRate = 1e6
	bf, _ := mp.SolvePartition()
	if bf < mp.N*9/10 {
		t.Fatalf("slow CPU should push bf toward n: bf=%d", bf)
	}
	// CPU vastly faster: FPGA gets almost nothing.
	mp.StripeRate = 1e15
	bf, _ = mp.SolvePartition()
	if bf > mp.N/10 {
		t.Fatalf("fast CPU should pull bf toward 0: bf=%d", bf)
	}
}

func TestMMPredict(t *testing.T) {
	mp := xd1MM()
	bf, _ := mp.SolvePartition()
	pred := mp.PredictMM(bf)
	if pred.GFLOPS <= 0 || pred.Seconds <= 0 {
		t.Fatalf("prediction = %+v", pred)
	}
	// Balanced partition: Ttp ≈ Ttf.
	if math.Abs(pred.Ttp-pred.Ttf)/pred.Ttf > 0.15 {
		t.Fatalf("prediction sides unbalanced: %g vs %g", pred.Ttp, pred.Ttf)
	}
	// Hybrid prediction must exceed the single-resource extremes.
	cpuOnly := mp.PredictMM(0)
	fpgaOnly := mp.PredictMM(mp.N)
	if pred.GFLOPS <= cpuOnly.GFLOPS || pred.GFLOPS <= fpgaOnly.GFLOPS {
		t.Fatalf("hybrid prediction %.2f must beat cpu %.2f and fpga %.2f",
			pred.GFLOPS, cpuOnly.GFLOPS, fpgaOnly.GFLOPS)
	}
}

func TestLUPartitionExtremes(t *testing.T) {
	lp := xd1LU()
	lp.SRAMBytes = 0
	lp.StripeRate = 1e6 // hopeless CPU
	bf, _ := lp.SolvePartition()
	if bf < lp.B*9/10 {
		t.Fatalf("slow CPU should push bf toward b: %d", bf)
	}
	lp.StripeRate = 1e15 // hopeless FPGA by comparison
	bf, _ = lp.SolvePartition()
	if bf > lp.B/10 {
		t.Fatalf("fast CPU should pull bf toward 0: %d", bf)
	}
}

func TestFWSolveSplitExtremes(t *testing.T) {
	fw := xd1FW()
	// FPGA slower than its own DRAM streaming: everything to the CPU.
	slow := fw
	slow.Ff = 1 // tf enormous? No: tf = 2b³/(k·Ff) huge, eff = tf - tmem > 0: FPGA still gets share...
	// Instead make streaming dominate: Bd tiny so tmem > tf.
	slow = fw
	slow.Bd = 1e3
	l1, l2 := slow.SolveSplit(18432)
	if l2 != 0 || l1 != 12 {
		t.Fatalf("starved FPGA should get nothing: l1=%d l2=%d", l1, l2)
	}
	// CPU hopeless: FPGA takes everything.
	fast := fw
	fast.FWRate = 1
	l1, l2 = fast.SolveSplit(18432)
	if l1 != 0 || l2 != 12 {
		t.Fatalf("hopeless CPU should get nothing: l1=%d l2=%d", l1, l2)
	}
}

func TestFWPhaseTime(t *testing.T) {
	fw := xd1FW()
	l1, l2 := fw.SolveSplit(18432)
	ph := fw.PhaseTime(l1, l2)
	tp, tf, tmem, tcomm := fw.BlockTimes()
	cpuSide := float64(l1)*tp + tcomm
	fpgaSide := float64(l2)*tf + tmem
	want := math.Max(cpuSide, fpgaSide)
	if ph != want {
		t.Fatalf("PhaseTime = %g, want %g", ph, want)
	}
}

func TestLUOpMMTimeConsistent(t *testing.T) {
	lp := xd1LU()
	tf, _, _, _ := lp.StripeTimes(1280)
	want := float64(lp.B) / float64(lp.K) * tf
	if got := lp.OpMMTime(1280); math.Abs(got-want) > 1e-15 {
		t.Fatalf("OpMMTime = %g want %g", got, want)
	}
}

func TestLUSolveLDegenerate(t *testing.T) {
	lp := xd1LU()
	// Make communication so slow that sending l opMMs costs more than
	// the FPGA computes: solver must still return at least 1.
	lp.Bn = 1
	if l := lp.SolveL(1280); l != 1 {
		t.Fatalf("degenerate SolveL = %d, want 1", l)
	}
}
