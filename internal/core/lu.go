package core

import (
	"fmt"
	"math/rand"

	"codesign/internal/cpu"
	"codesign/internal/dist"
	"codesign/internal/fault"
	"codesign/internal/fpga"
	"codesign/internal/machine"
	"codesign/internal/matrix"
	"codesign/internal/model"
	"codesign/internal/obs"
	"codesign/internal/sim"
	"codesign/internal/trace"
)

// LUConfig configures a distributed block LU decomposition run
// (Section 5.1.3).
type LUConfig struct {
	// Machine is the system; zero value means one Cray XD1 chassis.
	Machine machine.Config
	// N is the matrix size, B the block size. B must divide N and be a
	// multiple of both the PE count and p-1 (Section 6.1).
	N, B int
	// PEs is the matmul design size; 0 means the largest that fits.
	PEs int
	// BF is the FPGA row share of each stripe; -1 solves Equation (4).
	// (Ignored for the baselines: ProcessorOnly forces 0, FPGAOnly B.)
	BF int
	// L is the panel pipeline depth of Equation (5); -1 solves it,
	// 0 disables panel/opMM overlap entirely (operands are sent only
	// after all panel operations finish).
	L int
	// Mode selects hybrid or a baseline.
	Mode Mode
	// Functional carries real matrices through the simulated machine
	// and checks the result against the sequential reference.
	Functional bool
	// Seed drives functional input generation.
	Seed int64
	// DisableStripeOverlap is the ablation of Section 5.1.3's
	// pipelining: the FPGA waits for the whole operand transfer of
	// every stripe instead of only the first.
	DisableStripeOverlap bool
	// InterruptibleRoutines is the ablation of the atomic-ACML-routine
	// effect (Section 6.2): operand sends overlap the panel node's
	// routines instead of serializing with them.
	InterruptibleRoutines bool
	// Trace, when non-nil, receives every engine event (see
	// internal/trace.Collector.Attach for a ready-made consumer).
	Trace func(t float64, proc, action string)
	// Observer, when non-nil, receives the structured telemetry stream
	// (raw events and typed spans; see internal/trace.Recorder).
	Observer sim.Observer
	// Telemetry attaches a span digest — utilization, bytes moved, and
	// the Tp/Tf/Tmem/Tcomm overlap decomposition — to the result.
	Telemetry bool
	// WholeTaskOpMM is the ablation of split-task partitioning: instead
	// of splitting each opMM's rows between processor and FPGA, whole
	// opMM jobs alternate between the two resources (the strategy the
	// paper reserves for dependency-heavy tasks, applied where it does
	// not belong).
	WholeTaskOpMM bool
	// Faults, when non-nil, is installed into every charging path of the
	// machine (see machine.System.InstallFaults) and enables degraded
	// mode: at iteration boundaries the run re-solves Equations (4) and
	// (5) when sustained rate divergence is detected and drops dead
	// nodes from the schedule. Injectors are stateful — build a fresh
	// one per run. Incompatible with Functional.
	Faults *fault.Injector
	// Metrics, when non-nil, receives live core_* observability samples
	// (repartition counts by reason, live-node gauge). Publishing never
	// changes simulated results.
	Metrics *obs.Registry
}

// LUResult extends Result with the LU-specific configuration and the
// per-iteration latencies (Figure 6 reads iteration 0).
type LUResult struct {
	Result
	BF, BP, L, K     int
	IterationSeconds []float64
	Model            model.LUParams
	Prediction       model.Prediction
}

// luJob is one b×b block multiplication A'_uv = L10_u × U01_v
// distributed over the p-1 compute nodes.
type luJob struct {
	t, u, v int
	e       *matrix.Dense // functional accumulator (nil when timing-only)
	arrived int           // result slices delivered to the opMS owner
}

// luSentinel ends iteration t's job stream for a compute node.
type luSentinel struct{ t int }

// luIter carries per-iteration coordination state.
type luIter struct {
	pending int // opMS operations outstanding
	done    *sim.Signal
	bar     *sim.Barrier
	// panel is the node running this iteration's panel operations.
	panel int
	// members are the nodes participating (sorted); nil means all of
	// them (the static, fault-free schedule).
	members []int
}

// isMember reports whether node me participates in the iteration.
func (it *luIter) isMember(me int) bool {
	if it.members == nil {
		return true
	}
	for _, m := range it.members {
		if m == me {
			return true
		}
	}
	return false
}

// count returns the participant count (p when members is nil).
func (it *luIter) count(p int) int {
	if it.members == nil {
		return p
	}
	return len(it.members)
}

// first returns the lowest participating node (the iteration-latency
// recorder).
func (it *luIter) first() int {
	if it.members == nil {
		return 0
	}
	return it.members[0]
}

// luRun bundles everything the node processes need.
type luRun struct {
	cfg     LUConfig
	sys     *machine.System
	lp      model.LUParams
	nb      int
	bf, bp  int
	l       int
	stripes int

	// per-job charge model (seconds / cycles)
	charge jobCharge
	// alt, when non-nil, charges odd jobs (whole-task ablation).
	alt      *jobCharge
	sendTime float64

	boxes []*sim.Mailbox
	iters []*luIter

	rec *trace.Recorder // telemetry recorder (nil when disabled)

	a *matrix.Dense // functional matrix (nil when timing-only)

	// cyc is the block distribution, cached off the forwardResult hot
	// path.
	cyc dist.Cyclic
	// gemmRate is the processor's full-rate dgemm throughput, kept so
	// charges can be rebuilt after a repartition.
	gemmRate float64

	// Degraded-mode state, used only when inj is non-nil.
	inj    *fault.Injector
	lpLive model.LUParams // lp with P tracking the live node count
	live   []int          // currently live nodes, sorted
	dyn    map[int]*luIter
	// tracker decides when observed rates have diverged enough to
	// re-solve the partition.
	tracker      *faultTracker
	repartitions []Repartition
	failure      error
}

func (lr *luRun) blk(u, v int) *matrix.Dense {
	b := lr.cfg.B
	return lr.a.View(u*b, v*b, b, b)
}

// computeNodes lists the nodes that perform opMM in iteration it
// (every participant but the panel node).
func (lr *luRun) computeNodes(it *luIter) []int {
	if it.members == nil {
		p := lr.sys.Cfg.Nodes
		out := make([]int, 0, p-1)
		for i := 0; i < p; i++ {
			if i != it.panel {
				out = append(out, i)
			}
		}
		return out
	}
	out := make([]int, 0, len(it.members)-1)
	for _, i := range it.members {
		if i != it.panel {
			out = append(out, i)
		}
	}
	return out
}

// RunLU builds the machine, derives the partition from the design
// model, simulates the full distributed factorization and returns the
// measured results.
func RunLU(cfg LUConfig) (*LUResult, error) {
	if cfg.Machine.Nodes == 0 {
		cfg.Machine = machine.XD1()
	}
	p := cfg.Machine.Nodes
	if p < 2 {
		return nil, fmt.Errorf("core: LU design needs p >= 2, got %d", p)
	}
	if cfg.N <= 0 || cfg.B <= 0 || cfg.N%cfg.B != 0 {
		return nil, fmt.Errorf("core: block size %d must divide n=%d", cfg.B, cfg.N)
	}
	if cfg.B%(p-1) != 0 {
		return nil, fmt.Errorf("core: block size %d must be a multiple of p-1=%d", cfg.B, p-1)
	}

	sys, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	sys.Eng.Trace = cfg.Trace
	rec := setupTelemetry(sys.Eng, cfg.Telemetry, cfg.Observer)
	k := cfg.PEs
	if k == 0 {
		k = fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewMatMul(k) }, cfg.Machine.Device)
	}
	if cfg.B%k != 0 {
		return nil, fmt.Errorf("core: block size %d must be a multiple of k=%d", cfg.B, k)
	}
	if err := sys.InstallDesign(fpga.NewMatMul(k)); err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		if cfg.Functional {
			return nil, fmt.Errorf("core: functional checking cannot run under fault injection")
		}
		if err := sys.InstallFaults(cfg.Faults); err != nil {
			return nil, err
		}
	}
	accel := sys.Nodes[0].Accel
	proc := sys.Nodes[0].Proc

	lp := model.LUParams{
		P: p, B: cfg.B, K: k,
		Ff:         accel.Placed.FreqHz,
		StripeRate: proc.Rate(cpu.DGEMMStripe),
		LURate:     proc.Rate(cpu.DGETRF),
		TrsmRate:   proc.Rate(cpu.DTRSM),
		Bd:         accel.DRAM.BandwidthBytes,
		Bn:         cfg.Machine.Fabric.LinkBandwidth,
		Bw:         machine.WordBytes,
		SRAMBytes:  sys.Nodes[0].SRAM.TotalBytes() / 2,
	}
	if err := lp.Validate(); err != nil {
		return nil, err
	}

	// Resolve the partition.
	bf := cfg.BF
	switch cfg.Mode {
	case ProcessorOnly:
		bf = 0
	case FPGAOnly:
		bf = cfg.B
	default:
		if bf < 0 {
			bf, _ = lp.SolvePartition()
		}
	}
	if bf < 0 || bf > cfg.B {
		return nil, fmt.Errorf("core: bf=%d out of [0,%d]", bf, cfg.B)
	}
	l := cfg.L
	if l < 0 {
		l = lp.SolveL(bf)
	}

	lr := &luRun{cfg: cfg, sys: sys, lp: lp, nb: cfg.N / cfg.B, bf: bf, bp: cfg.B - bf, l: l, stripes: cfg.B / k, rec: rec}
	lr.cyc, err = dist.CheckedCyclic(lr.nb, p)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	lr.gemmRate = proc.Rate(cpu.DGEMM)
	lr.lpLive = lp
	if cfg.Faults != nil {
		lr.inj = cfg.Faults
		lr.dyn = make(map[int]*luIter)
		lr.tracker = newFaultTracker(cfg.Faults)
		lr.live = make([]int, p)
		for i := range lr.live {
			lr.live[i] = i
		}
	}
	lr.chargeModel()

	// Functional state and reference.
	var ref *matrix.Dense
	if cfg.Functional {
		rng := rand.New(rand.NewSource(cfg.Seed))
		lr.a = matrix.RandomDiagDominant(cfg.N, rng)
		ref = lr.a.Clone()
		if err := matrix.BlockLU(ref, cfg.B); err != nil {
			return nil, fmt.Errorf("core: reference factorization: %w", err)
		}
	}

	// Coordination structures. Under fault injection the per-iteration
	// state is created lazily at each iteration boundary instead, so
	// membership can shrink as nodes die (the construction itself
	// schedules no engine events, so an injector with no faults stays
	// byte-identical to this eager path).
	for i := 0; i < p; i++ {
		lr.boxes = append(lr.boxes, sim.NewMailbox(sys.Eng, fmt.Sprintf("lu.jobs%d", i)))
	}
	if lr.inj == nil {
		for t := 0; t < lr.nb; t++ {
			rem := lr.nb - 1 - t
			it := &luIter{
				pending: rem * rem,
				done:    sim.NewSignal(sys.Eng, fmt.Sprintf("lu.iter%d.done", t)),
				bar:     sim.NewBarrier(sys.Eng, fmt.Sprintf("lu.iter%d.bar", t), p),
				panel:   t % p,
			}
			if it.pending == 0 {
				it.done.Fire()
			}
			lr.iters = append(lr.iters, it)
		}
	}

	return lr.execute(ref)
}

// jobCharge is the per-opMM cost model on one compute node.
type jobCharge struct {
	cpuRecv, cpuDMA, cpuGemm float64
	fpgaCycles               float64
	fpgaLag                  float64
	// dmaBytes is the operand volume the cpuDMA charge streams to the
	// FPGA, for telemetry byte accounting.
	dmaBytes int64
}

// chargeModel derives the per-job costs from the machine parameters.
// One job is a whole b×b block multiplication; stripe-level pipelining
// is aggregated (the stripe-granular view is simulated by RunOpMM for
// Figure 5) with the first stripe's transfer exposed as FPGA start lag.
// It reads lpLive (nominal rates, live node count) and bf, so a
// repartition rebuilds the charges by calling it again — always from
// the NOMINAL parameters: the physical slowdown is applied once, by the
// dilation hooks, at charge time.
func (lr *luRun) chargeModel() {
	switch lr.cfg.Mode {
	case ProcessorOnly:
		lr.charge = lr.chargeForBF(0)
	case FPGAOnly:
		lr.charge = lr.chargeForBF(lr.cfg.B)
	default:
		if lr.cfg.WholeTaskOpMM {
			// Ablation: alternate whole jobs between the resources.
			lr.charge = lr.chargeForBF(lr.cfg.B)
			alt := lr.chargeForBF(0)
			lr.alt = &alt
		} else {
			lr.charge = lr.chargeForBF(lr.bf)
		}
	}
	_, _, _, tcomm := lr.lpLive.StripeTimes(lr.bf)
	lr.sendTime = float64(lr.stripes) * tcomm // panel node, per job multicast
}

// chargeForBF builds the per-job charges for a given row split.
func (lr *luRun) chargeForBF(bf int) jobCharge {
	b := float64(lr.cfg.B)
	pm1 := float64(lr.lpLive.P - 1)
	st := float64(lr.stripes)
	_, tp, tmem, tcomm := lr.lpLive.StripeTimes(bf)

	var c jobCharge
	c.cpuRecv = st * tcomm // message unpack
	switch {
	case bf == 0:
		// All software: one square-ish dgemm at the full library rate;
		// no DMA, no FPGA.
		c.cpuGemm = 2 * b * b * b / (pm1 * lr.gemmRate)
	case bf == lr.cfg.B:
		c.cpuDMA = st * tmem
		c.fpgaCycles = b * b * b / (float64(lr.lpLive.K) * pm1)
	default:
		c.cpuDMA = st * tmem
		c.cpuGemm = st * tp
		c.fpgaCycles = st * float64(bf) * b / pm1 // bf·b/(p-1) cycles per stripe
	}
	if c.cpuDMA > 0 {
		// Per job the FPGA consumes bf·b stripe words plus its
		// b²/(p-1) result share (the words behind tmem per stripe).
		c.dmaBytes = int64(float64(bf)*b+b*b/pm1) * machine.WordBytes
	}
	if c.fpgaCycles > 0 {
		if lr.cfg.DisableStripeOverlap {
			c.fpgaLag = st*tcomm + c.cpuDMA
		} else {
			c.fpgaLag = tcomm + c.cpuDMA/st // first stripe only
		}
	}
	return c
}

// chargeFor selects the charge set for a job (whole-task ablation
// alternates by job parity).
func (lr *luRun) chargeFor(j *luJob) jobCharge {
	if lr.alt != nil && (j.u+j.v)%2 == 1 {
		return *lr.alt
	}
	return lr.charge
}

// iter returns iteration t's coordination state — pre-built on the
// fault-free path, created lazily at the iteration boundary in degraded
// mode (where membership may have shrunk). Returns nil once the run has
// failed (too few live nodes).
func (lr *luRun) iter(t int) *luIter {
	if lr.inj == nil {
		return lr.iters[t]
	}
	if it, ok := lr.dyn[t]; ok {
		return it
	}
	if lr.failure != nil {
		return nil
	}
	now := lr.sys.Eng.Now()
	lr.maybeRepartition(now, t)
	if lr.failure != nil {
		return nil
	}
	members := lr.live
	rem := lr.nb - 1 - t
	it := &luIter{
		pending: rem * rem,
		done:    sim.NewSignal(lr.sys.Eng, fmt.Sprintf("lu.iter%d.done", t)),
		bar:     sim.NewBarrier(lr.sys.Eng, fmt.Sprintf("lu.iter%d.bar", t), len(members)),
		panel:   members[t%len(members)],
		members: members,
	}
	if it.pending == 0 {
		it.done.Fire()
	}
	lr.dyn[t] = it
	return it
}

// maybeRepartition runs once per iteration boundary (first process to
// arrive): it refreshes the live set, samples the divergence tracker,
// and re-solves the partition when a node died or the observed rates
// diverged from the ones the current partition was solved against.
func (lr *luRun) maybeRepartition(now float64, t int) {
	live := make([]int, 0, len(lr.live))
	for _, i := range lr.live {
		if lr.inj.Alive(i, now) {
			live = append(live, i)
		}
	}
	died := len(live) < len(lr.live)
	if died {
		if len(live) < 2 {
			lr.failure = fmt.Errorf("core: lu iteration %d: %d node(s) alive at t=%gs, need >= 2 (panel + compute)",
				t, len(live), now)
			return
		}
		lr.live = live
		lr.lpLive.P = len(live)
	}
	d, fire := lr.tracker.sample(now)
	if !died && !fire {
		return
	}
	if !fire {
		// Death without a divergence trigger: re-solve against the
		// factors the current partition already assumes.
		d = lr.tracker.estimate()
	}
	lr.applyRepartition(now, t, d, died)
}

// applyRepartition re-solves Equations (4)/(5) against the degraded
// live parameters and rebuilds the per-job charges from the nominal
// ones. Partition knobs the caller pinned (BF/L >= 0) stay pinned.
func (lr *luRun) applyRepartition(now float64, t int, d model.Degradation, died bool) {
	if lr.cfg.Mode == Hybrid && !lr.cfg.WholeTaskOpMM && lr.cfg.BF < 0 {
		lr.bf, lr.bp = lr.lpLive.Degraded(d).SolvePartition()
	}
	if lr.cfg.L < 0 {
		lr.l = lr.lpLive.Degraded(d).SolveL(lr.bf)
	}
	lr.chargeModel()
	reason := "divergence"
	if died {
		reason = "node-death"
	}
	lr.repartitions = append(lr.repartitions, Repartition{
		Time: now, Iteration: t, Reason: reason, Live: len(lr.live),
		BF: lr.bf, BP: lr.bp, L: lr.l, Factors: d.Normalized(),
	})
	recordRepartition(lr.cfg.Metrics, reason, len(lr.live))
}

// execute spawns the node programs, runs the simulation, and assembles
// the results.
func (lr *luRun) execute(ref *matrix.Dense) (*LUResult, error) {
	sys := lr.sys
	p := sys.Cfg.Nodes
	iterEnd := make([]float64, lr.nb)

	for i := 0; i < p; i++ {
		node := sys.Nodes[i]
		me := i
		sys.Eng.Go(fmt.Sprintf("node%d.cpu", me), func(pr *sim.Proc) {
			for t := 0; t < lr.nb; t++ {
				it := lr.iter(t)
				if it == nil || !it.isMember(me) {
					// Run failed, or this node died at the iteration
					// boundary (fail-stop): leave the schedule.
					return
				}
				if me == it.panel {
					lr.runPanel(pr, node, t, it)
				} else {
					lr.runCompute(pr, node, me, t, it)
				}
				it.done.Wait(pr)
				it.bar.Arrive(pr)
				if me == it.first() {
					iterEnd[t] = pr.Now()
				}
			}
		})
	}

	end, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("core: lu simulation: %w", err)
	}
	if lr.failure != nil {
		return nil, lr.failure
	}

	n := float64(lr.cfg.N)
	flops := 2.0 / 3.0 * n * n * n
	cpuBusy, fpgaBusy := collectBusy(sys)
	res := &LUResult{
		Result: Result{
			App: "lu", Mode: lr.cfg.Mode, N: lr.cfg.N, B: lr.cfg.B,
			Seconds: end, Flops: flops, GFLOPS: flops / end / 1e9,
			NetworkBytes:  sys.Fab.Bytes(),
			Coordinations: collectCoordinations(sys),
			CPUBusy:       cpuBusy, FPGABusy: fpgaBusy,
		},
		BF: lr.bf, BP: lr.bp, L: lr.l, K: lr.lp.K,
		Model:      lr.lp,
		Prediction: lr.lp.PredictLU(lr.cfg.N, lr.bf),
	}
	prev := 0.0
	for _, t := range iterEnd {
		res.IterationSeconds = append(res.IterationSeconds, t-prev)
		prev = t
	}
	if lr.inj != nil {
		res.Repartitions = lr.repartitions
		res.DeadNodes = lr.inj.DeadBy(end)
	}
	summarizeTelemetry(lr.rec, end, &res.Result)
	if lr.cfg.Functional && ref != nil {
		res.Checked = true
		res.MaxResidual = lr.a.MaxDiff(ref)
	}
	return res, nil
}

// runPanel is iteration t on the panel node: opLU, then the opL/opU
// sequence, releasing opMM jobs to the compute nodes l at a time
// (Equation 5's pipeline).
func (lr *luRun) runPanel(pr *sim.Proc, node *machine.Node, t int, it *luIter) {
	cfg := lr.cfg
	b := cfg.B
	nb := lr.nb
	dsts := lr.computeNodes(it)
	pr.SetPhase("panel")
	defer pr.SetPhase("")

	// opLU.
	node.ComputeCPU(pr, cpu.DGETRF, cpu.DgetrfFlops(b))
	if lr.a != nil {
		if err := matrix.LU(lr.blk(t, t)); err != nil {
			panic(fmt.Sprintf("opLU iteration %d: %v", t, err))
		}
	}

	var ready []*luJob
	var inFlight []*sim.Signal
	send := func(limit int) {
		for limit != 0 && len(ready) > 0 {
			j := ready[0]
			ready = ready[1:]
			if s := lr.sendJob(pr, node, t, j, dsts); s != nil {
				inFlight = append(inFlight, s)
			}
			if limit > 0 {
				limit--
			}
		}
	}

	for c := t + 1; c < nb; c++ {
		// opL on block (c, t).
		node.ComputeCPU(pr, cpu.DTRSM, cpu.DtrsmFlops(b))
		if lr.a != nil {
			matrix.TrsmUpperRight(lr.blk(t, t), lr.blk(c, t))
		}
		send(lr.l)
		// opU on block (t, c).
		node.ComputeCPU(pr, cpu.DTRSM, cpu.DtrsmFlops(b))
		if lr.a != nil {
			matrix.TrsmLowerUnitLeft(lr.blk(t, t), lr.blk(t, c))
		}
		// Jobs whose operands are now both available: max(u,v) == c.
		for v := t + 1; v <= c; v++ {
			ready = append(ready, lr.newJob(t, c, v))
		}
		for u := t + 1; u < c; u++ {
			ready = append(ready, lr.newJob(t, u, c))
		}
		send(lr.l)
	}
	send(-1) // drain whatever the pipeline did not cover
	// With asynchronous sends, the sentinel must not overtake job
	// deliveries still on the wire.
	for _, s := range inFlight {
		s.Wait(pr)
	}
	for _, dst := range dsts {
		lr.boxes[dst].Put(luSentinel{t: t})
	}
}

func (lr *luRun) newJob(t, u, v int) *luJob {
	j := &luJob{t: t, u: u, v: v}
	if lr.a != nil {
		j.e = matrix.New(lr.cfg.B, lr.cfg.B)
	}
	return j
}

// sendJob multicasts one job's operand stripes (2b² words) to the
// compute nodes and enqueues the job. With InterruptibleRoutines the
// send proceeds asynchronously (the ablation of the atomic-routine
// serialization the paper blames for its 86% prediction ratio) and a
// completion signal is returned so the caller can drain before sending
// the iteration sentinel.
func (lr *luRun) sendJob(pr *sim.Proc, node *machine.Node, t int, j *luJob, dsts []int) *sim.Signal {
	bytes := 2 * lr.cfg.B * lr.cfg.B * machine.WordBytes
	deliver := func() {
		for _, dst := range dsts {
			lr.boxes[dst].Put(j)
		}
	}
	if lr.cfg.InterruptibleRoutines {
		src := node.ID
		done := sim.NewSignal(lr.sys.Eng, sim.Name("lu.sent", t, j.u, j.v))
		lr.sys.Eng.Go(sim.Name("lu.send", t, j.u, j.v), func(sp *sim.Proc) {
			sp.SetPhase("broadcast")
			lr.sys.Fab.Multicast(sp, src, dsts, bytes)
			deliver()
			done.Fire()
		})
		return done
	}
	prevPhase := pr.Phase()
	pr.SetPhase("broadcast")
	lr.sys.Fab.Multicast(pr, node.ID, dsts, bytes)
	pr.SetPhase(prevPhase)
	deliver()
	return nil
}

// runCompute is iteration t on a compute node: process the job stream —
// FPGA share launched first, CPU share meanwhile — then scatter the
// result slice to the opMS owner.
func (lr *luRun) runCompute(pr *sim.Proc, node *machine.Node, me, t int, it *luIter) {
	cn := lr.computeNodes(it)
	ci := 0
	for idx, n := range cn {
		if n == me {
			ci = idx
		}
	}
	w := lr.cfg.B / len(cn) // result columns per node
	pr.SetPhase("opmm")
	defer pr.SetPhase("")
	for {
		msg := lr.boxes[me].Get(pr)
		if s, ok := msg.(luSentinel); ok {
			if s.t != t {
				panic(fmt.Sprintf("core: node %d got sentinel for iteration %d during %d", me, s.t, t))
			}
			return
		}
		j := msg.(*luJob)
		ch := lr.chargeFor(j)

		var done *sim.Signal
		if ch.fpgaCycles > 0 {
			a := node.Accel
			done = a.Launch(sim.Name("lu.fpga", t, j.u, j.v, me), func(fp *sim.Proc) {
				fp.SetPhase("opmm")
				a.WaitOperands(fp, ch.fpgaLag)
				a.Compute(fp, ch.fpgaCycles)
			})
		}
		// CPU share: unpack the operand messages, stream the FPGA's
		// operands to it, then run the software half of the multiply.
		// Unpack carries no bytes (the wire span already counted the
		// payload); the DMA charge carries the FPGA's operand volume.
		// The three charges fuse into one engine park (ChargeCPUSeq).
		var seq [3]sim.Charge
		cs := seq[:0]
		if ch.cpuRecv > 0 {
			cs = append(cs, sim.Charge{Cat: sim.CatNetwork, Dt: ch.cpuRecv})
		}
		if ch.cpuDMA > 0 {
			cs = append(cs, sim.Charge{Cat: sim.CatDMA, Bytes: ch.dmaBytes, Dt: ch.cpuDMA})
		}
		if ch.cpuGemm > 0 {
			cs = append(cs, sim.Charge{Cat: sim.CatCompute, Dt: ch.cpuGemm})
		}
		node.ChargeCPUSeq(pr, cs)
		if j.e != nil {
			// Functional: this node produces its column slice of
			// E = L10_u × U01_v (both the CPU's bp rows and the
			// FPGA's bf rows — the arithmetic is identical).
			eSlice := j.e.View(0, ci*w, lr.cfg.B, w)
			dSlice := lr.blk(j.t, j.v).View(0, ci*w, lr.cfg.B, w)
			matrix.Gemm(1, lr.blk(j.u, j.t), dSlice, 0, eSlice)
		}
		if done != nil {
			node.Accel.AwaitDone(pr, done)
		}
		lr.forwardResult(pr, me, t, j, it)
	}
}

// forwardResult sends this node's slice of the job result to the opMS
// owner (t” = max{u,v} in the paper's data distribution) and, once all
// slices arrive, schedules the subtraction on the owner's processor. A
// dead owner's update is remapped onto a surviving node.
func (lr *luRun) forwardResult(pr *sim.Proc, me, t int, j *luJob, it *luIter) {
	p := lr.sys.Cfg.Nodes
	owner := lr.cyc.UpdateOwner(j.u, j.v)
	if it.members != nil && !it.isMember(owner) {
		owner = it.members[owner%len(it.members)]
	}
	nc := it.count(p) - 1 // compute nodes contributing a slice
	sliceBytes := lr.cfg.B * lr.cfg.B / nc * machine.WordBytes
	prevPhase := pr.Phase()
	pr.SetPhase("scatter")
	lr.sys.Fab.Transfer(pr, me, owner, sliceBytes)
	pr.SetPhase(prevPhase)
	j.arrived++
	if j.arrived < nc {
		return
	}
	// Last slice in: run opMS on the owner's processor.
	ownerNode := lr.sys.Nodes[owner]
	b := lr.cfg.B
	lr.sys.Eng.Go(sim.Name("lu.opms", t, j.u, j.v), func(mp *sim.Proc) {
		mp.SetPhase("opms")
		unpack := float64(lr.cfg.B*lr.cfg.B*machine.WordBytes) / lr.lp.Bn
		ownerNode.ChargeCPUSeq(mp, []sim.Charge{
			{Cat: sim.CatNetwork, Dt: unpack},
			{Cat: sim.CatCompute, Dt: ownerNode.Proc.Time(cpu.Subtract, cpu.SubtractFlops(b))},
		})
		if j.e != nil {
			lr.blk(j.u, j.v).Sub(j.e)
		}
		it.pending--
		if it.pending == 0 {
			it.done.Fire()
		}
	})
}
