package model

// Degradation scales the nominal machine parameters to their observed
// effective values — the bridge between the fault layer's telemetry and
// the partition equations. Each field is a rate multiplier in (0, 1]
// with 1 = nominal; a zero field means "no new observation" and is
// treated as nominal. Factors are floored at 1e-3 so a fully stalled
// subsystem still yields a finite, solvable parameter set.
type Degradation struct {
	// CPU scales the processor's sustained rates (Op·Fp).
	CPU float64
	// FPGA scales the design clock Ff (Of·Ff).
	FPGA float64
	// Bd scales the FPGA-DRAM streaming bandwidth.
	Bd float64
	// Bn scales the network bandwidth.
	Bn float64
}

// minFactor keeps degraded parameters positive so the closed-form
// solvers stay finite.
const minFactor = 1e-3

func clampFactor(f float64) float64 {
	if f == 0 {
		return 1
	}
	if f < minFactor {
		return minFactor
	}
	if f > 1 {
		return 1
	}
	return f
}

// Normalized returns the degradation with zero fields promoted to
// nominal and all factors clamped into [1e-3, 1].
func (d Degradation) Normalized() Degradation {
	return Degradation{
		CPU:  clampFactor(d.CPU),
		FPGA: clampFactor(d.FPGA),
		Bd:   clampFactor(d.Bd),
		Bn:   clampFactor(d.Bn),
	}
}

// Nominal reports whether the normalized degradation leaves every
// parameter at its nominal value.
func (d Degradation) Nominal() bool {
	return d.Normalized() == Degradation{CPU: 1, FPGA: 1, Bd: 1, Bn: 1}
}

// Degraded returns the LU parameters scaled by the degradation: the
// processor rates by CPU, the design clock by FPGA, and the bandwidths
// by Bd/Bn. This is how degraded rates re-enter Equation (4)/(5).
func (lp LUParams) Degraded(d Degradation) LUParams {
	d = d.Normalized()
	lp.StripeRate *= d.CPU
	lp.LURate *= d.CPU
	lp.TrsmRate *= d.CPU
	lp.Ff *= d.FPGA
	lp.Bd *= d.Bd
	lp.Bn *= d.Bn
	return lp
}

// Repartition re-solves Equations (4) and (5) against the degraded
// parameters: the row split (bf, bp) that balances the slowed
// resources, and the pipeline depth l that hides the panel under it.
func (lp LUParams) Repartition(d Degradation) (bf, bp, l int) {
	dlp := lp.Degraded(d)
	bf, bp = dlp.SolvePartition()
	return bf, bp, dlp.SolveL(bf)
}

// Degraded returns the FW parameters scaled by the degradation, the
// Equation (6) analogue of LUParams.Degraded.
func (fp FWParams) Degraded(d Degradation) FWParams {
	d = d.Normalized()
	fp.FWRate *= d.CPU
	fp.Ff *= d.FPGA
	fp.Bd *= d.Bd
	fp.Bn *= d.Bn
	return fp
}

// Repartition re-solves Equation (6) against the degraded parameters
// for an n×n problem, returning the new whole-task split per phase.
func (fp FWParams) Repartition(n int, d Degradation) (l1, l2 int) {
	return fp.Degraded(d).SolveSplit(n)
}
