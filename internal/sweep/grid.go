package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"codesign/internal/machine"
)

// Evaluation methods.
const (
	// MethodModel evaluates each point with the closed-form design
	// model only (Equations 1-6 plus the Section 4.5 predictor):
	// microseconds per point, suitable for grids of thousands.
	MethodModel = "model"
	// MethodSim evaluates each point with a full discrete-event
	// simulation (internal/core), reporting measured throughput and
	// the telemetry-derived bottleneck. Points should use reduced
	// problem sizes; paper-scale LU takes seconds per point.
	MethodSim = "sim"
)

// Applications a grid can sweep.
var knownApps = []string{"lu", "fw", "mm", "spmv"}

// Modes a grid can sweep.
var knownModes = []string{"hybrid", "processor-only", "fpga-only"}

// Grid is a declarative design-space description: the cross product of
// every axis is the point set. Empty axes take defaults (one XD1
// chassis, hybrid LU at the paper's sizes, solved partitions), so the
// zero Grid is the paper's headline configuration. A zero in N, B or
// PEs means "the app's paper default" (LU n=30000/b=3000, FW
// n=18432/b=256, MM n=6144; largest PE array that fits); -1 in BF or L
// means "solve the model equation" (Eq. 4 / Eq. 5 for LU, Eq. 6 for
// FW, Eq. 1 for MM).
type Grid struct {
	// Apps selects applications: "lu", "fw", "mm".
	Apps []string `json:"apps,omitempty"`
	// Machines selects machine presets by name: "xd1", "xt3", "src6",
	// "rasc".
	Machines []string `json:"machines,omitempty"`
	// Nodes overrides the preset node count p (0 = preset default).
	Nodes []int `json:"nodes,omitempty"`
	// N is the problem size axis (0 = the app's paper size).
	N []int `json:"n,omitempty"`
	// Density is the operator nonzero-density axis for spmv (0 = dense
	// operator, the DGEMV regime; ignored by the dense apps).
	Density []float64 `json:"density,omitempty"`
	// B is the block size axis (0 = the app's paper block size;
	// ignored by mm, which has no block structure).
	B []int `json:"b,omitempty"`
	// PEs is the FPGA PE-array size axis (0 = largest that fits the
	// device, the paper's choice).
	PEs []int `json:"pes,omitempty"`
	// BF is the FPGA row-share axis for LU/MM stripes (-1 = solve
	// Equation 4 / Equation 1; ignored by fw).
	BF []int `json:"bf,omitempty"`
	// L is the pipeline-depth axis: LU's Equation 5 panel pipeline
	// depth, or FW's per-phase processor share l1 (-1 = solve).
	L []int `json:"l,omitempty"`
	// Modes selects design variants: "hybrid", "processor-only",
	// "fpga-only".
	Modes []string `json:"modes,omitempty"`
	// Method selects the evaluator: MethodModel (default) or MethodSim.
	Method string `json:"method,omitempty"`
}

// Point is one fully-specified coordinate of the design space, as
// enumerated from a Grid. Zero/-1 sentinel values are preserved here
// and resolved during evaluation (the Outcome records the resolved
// partition).
type Point struct {
	// Index is the point's position in the deterministic enumeration
	// order; results are always reported in Index order.
	Index int `json:"index"`
	// App is the application ("lu", "fw", "mm").
	App string `json:"app"`
	// Machine is the machine preset name.
	Machine string `json:"machine"`
	// Mode is the design variant.
	Mode string `json:"mode"`
	// Nodes is the node-count override (0 = preset default).
	Nodes int `json:"nodes"`
	// N is the problem size (0 = app default).
	N int `json:"n"`
	// Density is the spmv operator density (0 = dense operator).
	Density float64 `json:"density"`
	// B is the block size (0 = app default).
	B int `json:"b"`
	// PEs is the PE-array size (0 = largest that fits).
	PEs int `json:"pes"`
	// BF is the LU/MM FPGA row share (-1 = solve).
	BF int `json:"bf"`
	// L is the LU pipeline depth or FW l1 (-1 = solve).
	L int `json:"l"`
}

// MaxPoints caps a grid's cross-product size; Validate rejects larger
// grids so a typo'd axis cannot enqueue unbounded work.
const MaxPoints = 250000

// normalized returns a copy with every empty axis replaced by its
// default, or an error for unknown names.
func (g Grid) normalized() (Grid, error) {
	def := func(xs []int, v int) []int {
		if len(xs) == 0 {
			return []int{v}
		}
		return xs
	}
	if len(g.Apps) == 0 {
		g.Apps = []string{"lu"}
	}
	if len(g.Machines) == 0 {
		g.Machines = []string{"xd1"}
	}
	if len(g.Modes) == 0 {
		g.Modes = []string{"hybrid"}
	}
	g.Nodes = def(g.Nodes, 0)
	g.N = def(g.N, 0)
	if len(g.Density) == 0 {
		g.Density = []float64{0}
	}
	for _, d := range g.Density {
		if d < 0 || d > 1 {
			return g, fmt.Errorf("sweep: density %g out of [0,1]", d)
		}
	}
	g.B = def(g.B, 0)
	g.PEs = def(g.PEs, 0)
	g.BF = def(g.BF, -1)
	g.L = def(g.L, -1)
	if g.Method == "" {
		g.Method = MethodModel
	}
	if g.Method != MethodModel && g.Method != MethodSim {
		return g, fmt.Errorf("sweep: unknown method %q (want %q or %q)", g.Method, MethodModel, MethodSim)
	}
	for _, a := range g.Apps {
		if !contains(knownApps, a) {
			return g, fmt.Errorf("sweep: unknown app %q (want one of %s)", a, strings.Join(knownApps, ", "))
		}
	}
	for _, m := range g.Machines {
		if _, err := machine.Preset(m); err != nil {
			return g, fmt.Errorf("sweep: %w", err)
		}
	}
	for _, m := range g.Modes {
		if !contains(knownModes, m) {
			return g, fmt.Errorf("sweep: unknown mode %q (want one of %s)", m, strings.Join(knownModes, ", "))
		}
	}
	if n := g.NumPoints(); n > MaxPoints {
		return g, fmt.Errorf("sweep: grid has %d points, limit is %d", n, MaxPoints)
	}
	return g, nil
}

// Validate checks axis values without enumerating the space.
func (g Grid) Validate() error {
	_, err := g.normalized()
	return err
}

// NumPoints returns the size of the cross product (after defaulting
// empty axes to one value each).
func (g Grid) NumPoints() int {
	n := 1
	for _, axis := range [][]int{g.Nodes, g.N, g.B, g.PEs, g.BF, g.L} {
		if len(axis) > 0 {
			n *= len(axis)
		}
	}
	if len(g.Density) > 0 {
		n *= len(g.Density)
	}
	for _, axis := range [][]string{g.Apps, g.Machines, g.Modes} {
		if len(axis) > 0 {
			n *= len(axis)
		}
	}
	return n
}

// Points enumerates the cross product in deterministic order (apps
// outermost, then machines, modes, nodes, n, density, b, pes, bf, l
// innermost). The grid must already be normalized; Run does this for
// callers.
func (g Grid) Points() []Point {
	norm, err := g.normalized()
	if err != nil {
		return nil
	}
	g = norm
	pts := make([]Point, 0, g.NumPoints())
	for _, app := range g.Apps {
		for _, mach := range g.Machines {
			for _, mode := range g.Modes {
				for _, nodes := range g.Nodes {
					for _, n := range g.N {
						for _, d := range g.Density {
							for _, b := range g.B {
								for _, pes := range g.PEs {
									for _, bf := range g.BF {
										for _, l := range g.L {
											pts = append(pts, Point{
												Index: len(pts),
												App:   app, Machine: mach, Mode: mode,
												Nodes: nodes, N: n, Density: d, B: b, PEs: pes, BF: bf, L: l,
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// ReadGrid parses a JSON grid description (the declarative input of
// cmd/sweep -grid). Unknown fields are rejected so axis typos fail
// loudly instead of silently sweeping defaults.
func ReadGrid(r io.Reader) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return g, fmt.Errorf("sweep: grid: %w", err)
	}
	return g, g.Validate()
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
