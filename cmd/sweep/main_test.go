package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunInlineAxesDeterministic(t *testing.T) {
	dir := t.TempDir()
	outJSON := func(workers int, name string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		var buf bytes.Buffer
		err := run(options{
			Apps: "lu", Machines: "xd1", Modes: "hybrid",
			Nodes: "0", N: "0", B: "0", PEs: "2,4,6,8", BF: "-1", L: "-1",
			Method: "model", Workers: workers, JSONOut: path, Quiet: true,
		}, &buf)
		if err != nil {
			t.Fatalf("run(workers=%d): %v", workers, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one := outJSON(1, "w1.json")
	eight := outJSON(8, "w8.json")
	if !bytes.Equal(one, eight) {
		t.Fatal("JSON differs between -workers=1 and -workers=8")
	}
	if !bytes.Contains(one, []byte(`"pareto"`)) {
		t.Error("JSON output missing pareto field")
	}
}

func TestRunGridFileAndCSV(t *testing.T) {
	dir := t.TempDir()
	grid := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(grid, []byte(`{"apps":["mm"],"pes":[4,8]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "out.csv")
	var buf bytes.Buffer
	if err := run(options{GridFile: grid, CSVOut: csv}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "index,app,machine") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	if !strings.Contains(buf.String(), "pareto frontier") {
		t.Errorf("summary report missing frontier section:\n%s", buf.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(options{Apps: "lu", PEs: "four"}, &bytes.Buffer{}); err == nil {
		t.Error("bad -pes accepted")
	}
	if err := run(options{Apps: "qr", PEs: "0", Method: "model"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown app accepted")
	}
}
