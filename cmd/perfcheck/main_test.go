package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: codesign
cpu: AMD EPYC
BenchmarkSimEngine-8   	     500	   2507540 ns/op	    3312 B/op	      32 allocs/op
BenchmarkHeadline-8    	       1	1594057152 ns/op	1835753 allocs/op
BenchmarkDesignSpaceSweep/sim-8         	      10	  15800000 ns/op	 2989881 B/op	   51610 allocs/op
PASS
ok  	codesign	12.3s
pkg: codesign/internal/sim
BenchmarkEventLoopSelf-8   	     200	     25961 ns/op	  38529573 events/s	    1520 B/op	       8 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key            string
		nsOp, allocsOp float64
	}{
		{"codesign.BenchmarkSimEngine", 2507540, 32},
		{"codesign.BenchmarkHeadline", 1594057152, 1835753},
		{"codesign.BenchmarkDesignSpaceSweep/sim", 15800000, 51610},
		{"codesign/internal/sim.BenchmarkEventLoopSelf", 25961, 8},
	}
	if len(got) != len(cases) {
		t.Errorf("parsed %d benchmarks, want %d: %v", len(got), len(cases), got)
	}
	for _, c := range cases {
		e, ok := got[c.key]
		if !ok {
			t.Errorf("missing %s", c.key)
			continue
		}
		if e.NsOp != c.nsOp || e.AllocsOp != c.allocsOp {
			t.Errorf("%s = %+v, want ns_op %v allocs_op %v", c.key, e, c.nsOp, c.allocsOp)
		}
	}
}

func TestParseBenchCustomMetricIgnored(t *testing.T) {
	got, err := parseBench(strings.NewReader(
		"BenchmarkX-16 100 50 ns/op 123 events/s 7 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	e := got["BenchmarkX"]
	if e.NsOp != 50 || e.AllocsOp != 7 {
		t.Errorf("got %+v, want ns_op 50 allocs_op 7", e)
	}
}

func TestCheck(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"a.BenchmarkFast": {NsOp: 100, AllocsOp: 10},
		"a.BenchmarkGone": {NsOp: 100, AllocsOp: 10},
	}}

	// Within tolerance: 2.9x time (< 3x), 1.4x allocs (< 1.5x).
	got := map[string]Entry{
		"a.BenchmarkFast": {NsOp: 290, AllocsOp: 14},
		"a.BenchmarkGone": {NsOp: 100, AllocsOp: 10},
	}
	if fails := check(base, got, 3.0, 1.5); len(fails) != 0 {
		t.Errorf("unexpected failures: %v", fails)
	}

	// Time regression, alloc regression, and a missing benchmark.
	got = map[string]Entry{
		"a.BenchmarkFast": {NsOp: 301, AllocsOp: 16},
	}
	fails := check(base, got, 3.0, 1.5)
	if len(fails) != 3 {
		t.Fatalf("got %d failures, want 3: %v", len(fails), fails)
	}
	for i, want := range []string{"ns/op", "allocs/op", "missing"} {
		if !strings.Contains(fails[i], want) {
			t.Errorf("failure %d = %q, want it to mention %q", i, fails[i], want)
		}
	}
}

func TestCheckImprovementPasses(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"a.BenchmarkX": {NsOp: 1000, AllocsOp: 100},
	}}
	got := map[string]Entry{"a.BenchmarkX": {NsOp: 10, AllocsOp: 0}}
	if fails := check(base, got, 3.0, 1.5); len(fails) != 0 {
		t.Errorf("improvement flagged as regression: %v", fails)
	}
}

func TestCheckZeroAllocBaseline(t *testing.T) {
	// A zero allocs/op baseline (the zero-allocation hot path) must gate
	// absolutely: the old ratio guard skipped it entirely, so any alloc
	// regression sailed through.
	base := Baseline{Benchmarks: map[string]Entry{
		"a.BenchmarkZeroAlloc": {NsOp: 1000, AllocsOp: 0},
	}}
	got := map[string]Entry{"a.BenchmarkZeroAlloc": {NsOp: 1000, AllocsOp: 3}}
	fails := check(base, got, 3.0, 1.5)
	if len(fails) != 1 || !strings.Contains(fails[0], "zero-alloc") {
		t.Fatalf("zero-alloc regression not caught: %v", fails)
	}
	// Staying at zero passes.
	got["a.BenchmarkZeroAlloc"] = Entry{NsOp: 1000, AllocsOp: 0}
	if fails := check(base, got, 3.0, 1.5); len(fails) != 0 {
		t.Errorf("clean zero-alloc run flagged: %v", fails)
	}
}

func TestCheckZeroTimeBaselineSkipped(t *testing.T) {
	// A zero ns/op baseline carries no information; it must neither
	// divide to +Inf nor fail every run.
	base := Baseline{Benchmarks: map[string]Entry{
		"a.BenchmarkOdd": {NsOp: 0, AllocsOp: 10},
	}}
	got := map[string]Entry{"a.BenchmarkOdd": {NsOp: 12345, AllocsOp: 10}}
	if fails := check(base, got, 3.0, 1.5); len(fails) != 0 {
		t.Errorf("zero time baseline produced failures: %v", fails)
	}
}
