package sim

import "sync/atomic"

// Counters aggregates engine-loop event counts. A single Counters may
// be shared by many engines at once (a sweep's worker pool runs one
// engine per in-flight grid point), so every field is atomic; reads
// are cheap snapshots at any moment.
//
// Counting is strictly opt-in and zero-cost when disabled: an engine
// whose counter sink is nil (the default) executes no atomic
// operations and constructs nothing on the hot path — only a nil check
// per site, which is what keeps BENCH_baseline.json byte-identical and
// the cmd/perfcheck gate green. Install a sink per engine with
// Engine.SetCounters or process-wide with InstallCounters.
//
// The handoff/self-resume split directly measures the scheduler cost
// the ROADMAP's engine-speed item targets: a baton handoff is a real
// goroutine switch (~µs), a self-resume is a function return (~ns), so
// Handoffs/(Handoffs+SelfResumes) is the fraction of events paying the
// expensive path.
type Counters struct {
	// EventsPopped counts events popped off engine queues.
	EventsPopped atomic.Int64
	// Callbacks counts scheduler-context callbacks run inline.
	Callbacks atomic.Int64
	// Handoffs counts baton handoffs that woke another process's
	// goroutine (the ~2.25 µs path).
	Handoffs atomic.Int64
	// SelfResumes counts self-resume fast-path hits: the parking
	// process was the next runnable one, so no goroutine switched.
	SelfResumes atomic.Int64
	// FusedSteps counts intermediate fused-sequence boundaries the
	// engine advanced in scheduler context (see Resource.UseSeq): each
	// one replaced a park that would otherwise have been a handoff or
	// self-resume.
	FusedSteps atomic.Int64
	// Spawns counts processes started.
	Spawns atomic.Int64
	// QueueRecycles counts event-queue backing arrays returned to the
	// engine pool for reuse by a later engine.
	QueueRecycles atomic.Int64
	// Compactions counts in-place ring-FIFO compactions (mailbox
	// message/waiter queues and resource waiter queues under
	// persistent backlog).
	Compactions atomic.Int64
	// SpansEmitted counts typed telemetry spans delivered to
	// observers.
	SpansEmitted atomic.Int64
}

// CounterSnapshot is a plain-value copy of a Counters at one instant.
type CounterSnapshot struct {
	// EventsPopped mirrors Counters.EventsPopped.
	EventsPopped int64
	// Callbacks mirrors Counters.Callbacks.
	Callbacks int64
	// Handoffs mirrors Counters.Handoffs.
	Handoffs int64
	// SelfResumes mirrors Counters.SelfResumes.
	SelfResumes int64
	// FusedSteps mirrors Counters.FusedSteps.
	FusedSteps int64
	// Spawns mirrors Counters.Spawns.
	Spawns int64
	// QueueRecycles mirrors Counters.QueueRecycles.
	QueueRecycles int64
	// Compactions mirrors Counters.Compactions.
	Compactions int64
	// SpansEmitted mirrors Counters.SpansEmitted.
	SpansEmitted int64
}

// Snapshot reads every field atomically (though not as one atomic
// unit: fields may be from slightly different instants while engines
// run, which live monitoring tolerates).
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		EventsPopped:  c.EventsPopped.Load(),
		Callbacks:     c.Callbacks.Load(),
		Handoffs:      c.Handoffs.Load(),
		SelfResumes:   c.SelfResumes.Load(),
		FusedSteps:    c.FusedSteps.Load(),
		Spawns:        c.Spawns.Load(),
		QueueRecycles: c.QueueRecycles.Load(),
		Compactions:   c.Compactions.Load(),
		SpansEmitted:  c.SpansEmitted.Load(),
	}
}

// defaultCounters is the process-wide sink New engines inherit.
var defaultCounters atomic.Pointer[Counters]

// InstallCounters sets the process-wide counter sink that every engine
// created by New from now on inherits — the hook cmd/sweep -obs uses
// to watch engines that are constructed deep inside core.Run* where no
// per-engine handle is reachable. Pass nil to restore the default
// (counting off). Engines already built keep their current sink.
func InstallCounters(c *Counters) {
	defaultCounters.Store(c)
}

// SetCounters installs (or, with nil, removes) this engine's counter
// sink, overriding any process-wide default. Call it before Run.
func (e *Engine) SetCounters(c *Counters) { e.ctr = c }
