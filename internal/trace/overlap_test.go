package trace

import (
	"bytes"
	"encoding/csv"
	"testing"

	"codesign/internal/sim"
)

func TestEfficiencyZeroData(t *testing.T) {
	// A run that moved no data hid all of it trivially.
	o := Overlap{Makespan: 10, BusyTf: 10, Tf: 10}
	if got := o.Efficiency(); got != 1 {
		t.Fatalf("zero-data efficiency %v, want 1", got)
	}
	if got := (Overlap{}).Efficiency(); got != 1 {
		t.Fatalf("empty overlap efficiency %v, want 1", got)
	}
}

func TestEfficiencyFullyExposed(t *testing.T) {
	// Every busy transfer second is exposed: nothing was hidden.
	o := Overlap{Makespan: 10, BusyTmem: 4, BusyTcomm: 2, Tmem: 4, Tcomm: 2}
	if got := o.Efficiency(); got != 0 {
		t.Fatalf("fully-exposed efficiency %v, want 0", got)
	}
	// Half hidden.
	o = Overlap{Makespan: 10, BusyTmem: 4, Tmem: 2}
	if got := o.Efficiency(); got != 0.5 {
		t.Fatalf("half-hidden efficiency %v, want 0.5", got)
	}
}

func TestClassifyUsesDeviceTag(t *testing.T) {
	cases := []struct {
		name string
		s    sim.SpanEvent
		want SpanClass
	}{
		// The device tag classifies compute regardless of the resource
		// name: an accelerator named "drc0" (no "fpga" prefix) is still
		// FPGA time.
		{"fpga tag, non-fpga name", sim.SpanEvent{Category: sim.CatCompute, Device: sim.DeviceFPGA, Resource: "drc0"}, ClassTf},
		{"fpga tag, fpga name", sim.SpanEvent{Category: sim.CatCompute, Device: sim.DeviceFPGA, Resource: "fpga0"}, ClassTf},
		{"cpu tag", sim.SpanEvent{Category: sim.CatCompute, Device: sim.DeviceCPU, Resource: "cpu0"}, ClassTp},
		// A CPU-tagged resource named "fpga-helper" must NOT classify
		// as FPGA time: the tag wins over the name convention.
		{"cpu tag, fpga-ish name", sim.SpanEvent{Category: sim.CatCompute, Device: sim.DeviceCPU, Resource: "fpga-helper"}, ClassTp},
		// Untagged spans fall back to the name convention.
		{"untagged fpga name", sim.SpanEvent{Category: sim.CatCompute, Resource: "fpga3"}, ClassTf},
		{"untagged cpu name", sim.SpanEvent{Category: sim.CatCompute, Resource: "cpu3"}, ClassTp},
		{"dma", sim.SpanEvent{Category: sim.CatDMA, Device: sim.DeviceDRAM, Resource: "dram-stream"}, ClassTmem},
		{"network", sim.SpanEvent{Category: sim.CatNetwork, Device: sim.DeviceLink, Resource: "egress0"}, ClassTcomm},
		{"sync", sim.SpanEvent{Category: sim.CatSync, Device: sim.DeviceFPGA, Resource: "fpga0"}, ClassSync},
	}
	for _, c := range cases {
		if got := Classify(c.s); got != c.want {
			t.Errorf("%s: classified %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMetricsWriteCSV(t *testing.T) {
	m := NewMetrics()
	m.Counter("run.spans").Add(42)
	m.Gauge("run.makespan_s").Set(1.5)
	h := m.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var a, b bytes.Buffer
	if err := m.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same registry differ")
	}

	rows, err := csv.NewReader(bytes.NewReader(a.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("export is not valid CSV: %v", err)
	}
	want := [][]string{
		{"kind", "name", "key", "value"},
		{"counter", "run.spans", "", "42"},
		{"gauge", "run.makespan_s", "", "1.5"},
		{"histogram", "lat", "count", "3"},
		{"histogram", "lat", "sum", "105.5"},
		{"histogram", "lat", "le=1", "1"},
		{"histogram", "lat", "le=10", "1"},
		{"histogram", "lat", "le=+inf", "1"},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d:\n%s", len(rows), len(want), a.String())
	}
	for i := range want {
		for j := range want[i] {
			if rows[i][j] != want[i][j] {
				t.Fatalf("row %d = %v, want %v", i, rows[i], want[i])
			}
		}
	}
}
