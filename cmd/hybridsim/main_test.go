package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"codesign/internal/core"
	"codesign/internal/trace"
)

func TestMachineByName(t *testing.T) {
	for _, name := range []string{"xd1", "xt3", "src6", "rasc"} {
		mc, err := machineByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mc.Nodes < 1 {
			t.Fatalf("%s: empty config", name)
		}
	}
	if _, err := machineByName("cray-3"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestModeByName(t *testing.T) {
	cases := map[string]core.Mode{
		"hybrid": core.Hybrid, "processor-only": core.ProcessorOnly,
		"cpu": core.ProcessorOnly, "fpga-only": core.FPGAOnly, "fpga": core.FPGAOnly,
	}
	for name, want := range cases {
		got, err := modeByName(name)
		if err != nil || got != want {
			t.Fatalf("%s -> %v, %v", name, got, err)
		}
	}
	if _, err := modeByName("turbo"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// small returns a fast end-to-end configuration for the given app.
func small(app string) options {
	o := options{App: app, Machine: "xd1", N: 120, B: 20, PEs: 4, Mode: "hybrid",
		BF: -1, L: -1, L1: -1, Functional: true, Seed: 1, Metrics: true}
	switch app {
	case "fw":
		o.N, o.B = 96, 8
	case "mm":
		o.N, o.B = 96, 0
	case "cg":
		o.N, o.B, o.PEs, o.Functional = 128, 0, 0, false
	}
	return o
}

func TestRunAllApps(t *testing.T) {
	// End-to-end through the CLI's run path at small sizes, with the
	// analysis report on to exercise every app's expected-binding path.
	for _, app := range []string{"lu", "fw", "mm", "chol", "qr", "cg"} {
		o := small(app)
		o.Analyze = true
		if err := run(o); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
	}
	if err := run(options{App: "fft", Machine: "xd1", N: 10, B: 2, Mode: "hybrid", BF: -1, L: -1, L1: -1, Seed: 1}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunExportFiles(t *testing.T) {
	dir := t.TempDir()
	o := small("lu")
	o.Metrics = false
	o.MetricsOut = filepath.Join(dir, "metrics.csv")
	o.SpansOut = filepath.Join(dir, "spans.csv")
	o.TraceOut = filepath.Join(dir, "trace.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.MetricsOut, o.SpansOut, o.TraceOut} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
	// The metrics CSV must parse as RFC 4180 with the registry header.
	f, err := os.Open(o.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("metrics CSV malformed: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("metrics CSV has %d rows, want header plus data", len(rows))
	}
	want := []string{"kind", "name", "key", "value"}
	for i, h := range want {
		if rows[0][i] != h {
			t.Fatalf("metrics CSV header %v, want %v", rows[0], want)
		}
	}
	found := false
	for _, r := range rows[1:] {
		if r[1] == "overlap.efficiency" {
			found = true
		}
	}
	if !found {
		t.Fatal("metrics CSV missing overlap.efficiency")
	}
}

func TestRunSpansJSONAndDiffAgainst(t *testing.T) {
	dir := t.TempDir()
	o := small("lu")
	o.Metrics, o.Functional = false, false
	o.SpansJSON = filepath.Join(dir, "base.spans")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	meta, spans, err := trace.ReadSpansFile(o.SpansJSON)
	if err != nil {
		t.Fatalf("persisted spans unreadable: %v", err)
	}
	if meta.App != "lu" || meta.Makespan <= 0 || len(spans) == 0 {
		t.Fatalf("bad persisted meta %+v with %d spans", meta, len(spans))
	}

	// A second run with a different design diffs against the archive.
	o2 := small("lu")
	o2.Metrics, o2.Functional = false, false
	o2.PEs = 2
	o2.DiffAgainst = o.SpansJSON
	if err := run(o2); err != nil {
		t.Fatalf("diff-against: %v", err)
	}

	// A bad base file is a clean error, not a panic.
	o2.DiffAgainst = filepath.Join(dir, "missing.spans")
	if err := run(o2); err == nil {
		t.Fatal("missing -diff-against file accepted")
	}
}

func TestRunWithFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "faults.json")
	spec := `{"seed": 3, "window": 0.001, "events": [
		{"kind": "throttle-bd", "node": 1, "start": 0, "factor": 0.5}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	o := small("lu")
	o.Functional = false // degraded mode reshapes the schedule under real data
	o.Metrics = false
	o.Faults = path
	if err := run(o); err != nil {
		t.Fatalf("faulted lu run: %v", err)
	}

	// Non-LU/FW apps cannot degrade; the flag must be rejected up front.
	bad := small("mm")
	bad.Faults = path
	if err := run(bad); err == nil {
		t.Fatal("mm accepted -faults")
	}
}
