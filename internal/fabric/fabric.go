package fabric

import (
	"fmt"

	"codesign/internal/sim"
)

// Config describes the interconnect.
type Config struct {
	// Nodes is the number of endpoints.
	Nodes int
	// LinkBandwidth is the bandwidth of one link in bytes per second
	// (the paper's Bn; 2 GB/s per XD1 RapidArray link).
	LinkBandwidth float64
	// LinksPerNode is the number of full-duplex links each node has to
	// the crossbar (2 on XD1). Concurrent transfers to/from one node
	// can use distinct links.
	LinksPerNode int
	// Latency is the per-message launch latency in seconds.
	Latency float64
}

// Validate checks the interconnect parameters are physical, returning
// an error naming the offending field.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("fabric: need at least one node, got %d", c.Nodes)
	}
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("fabric: non-positive link bandwidth %g", c.LinkBandwidth)
	}
	if c.LinksPerNode < 1 {
		return fmt.Errorf("fabric: need at least one link per node, got %d", c.LinksPerNode)
	}
	if c.Latency < 0 {
		return fmt.Errorf("fabric: negative latency %g", c.Latency)
	}
	return nil
}

// Fabric is a crossbar interconnect living inside a simulation engine.
type Fabric struct {
	cfg     Config
	eng     *sim.Engine
	egress  []*sim.Resource
	ingress []*sim.Resource
	// dilate, when non-nil for a source node, maps a nominal wire time
	// starting now to its fault-degraded duration (a Bn throttle).
	dilate []func(start, dt float64) float64

	// statistics
	messages int64
	bytes    int64
}

// New builds the interconnect in engine e.
func New(e *sim.Engine, cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{cfg: cfg, eng: e}
	for i := 0; i < cfg.Nodes; i++ {
		eg := sim.NewResource(e, fmt.Sprintf("egress%d", i), cfg.LinksPerNode)
		eg.SetDevice(sim.DeviceLink)
		in := sim.NewResource(e, fmt.Sprintf("ingress%d", i), cfg.LinksPerNode)
		in.SetDevice(sim.DeviceLink)
		f.egress = append(f.egress, eg)
		f.ingress = append(f.ingress, in)
	}
	return f, nil
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Nodes returns the endpoint count.
func (f *Fabric) Nodes() int { return f.cfg.Nodes }

// TransferTime returns the unloaded wire time for a message of the given
// size: latency + bytes/bandwidth.
func (f *Fabric) TransferTime(bytes int) float64 {
	return f.cfg.Latency + float64(bytes)/f.cfg.LinkBandwidth
}

// SetDilation installs a fault-injection hook on node's outbound wire
// time (a Bn throttle): every transfer or multicast sourced at node has
// its nominal wire time mapped through fn. Nil removes the hook; the
// hot path is untouched when no node has one installed.
func (f *Fabric) SetDilation(node int, fn func(start, dt float64) float64) {
	f.checkNode(node)
	if f.dilate == nil {
		f.dilate = make([]func(start, dt float64) float64, f.cfg.Nodes)
	}
	f.dilate[node] = fn
}

// wireTime returns the (possibly fault-dilated) wire time for a message
// sourced at src.
func (f *Fabric) wireTime(src, bytes int) float64 {
	dt := f.TransferTime(bytes)
	if f.dilate != nil {
		if fn := f.dilate[src]; fn != nil {
			return fn(f.eng.Now(), dt)
		}
	}
	return dt
}

// Transfer moves bytes from src to dst, blocking the calling process for
// the wire time plus any endpoint-link queueing. Transfers between the
// same pair serialize only when all of the node's links are busy
// (non-blocking crossbar). Local transfers (src == dst) are free.
func (f *Fabric) Transfer(p *sim.Proc, src, dst, bytes int) {
	f.checkNode(src)
	f.checkNode(dst)
	if bytes < 0 {
		panic(fmt.Sprintf("fabric: negative message size %d", bytes))
	}
	f.messages++
	f.bytes += int64(bytes)
	if src == dst {
		// Local transfers take no wire time but still carry payload; a
		// zero-width span keeps telemetry byte totals equal to Bytes().
		f.eng.EmitSpan(sim.SpanEvent{
			Category: sim.CatNetwork, Device: sim.DeviceLink,
			Proc: p.Name(), Resource: "local",
			Phase: p.Phase(), Bytes: int64(bytes),
			Start: f.eng.Now(), End: f.eng.Now(),
		})
		return
	}
	// Hold one egress link at the source and one ingress link at the
	// destination for the duration of the wire time. Egress is always
	// acquired first; ingress holders never wait on egress, so the
	// two-resource hold cannot deadlock. The wire time is emitted as a
	// network span on the egress link carrying the payload; this is the
	// only place a point-to-point message's bytes are attached to a
	// span, so network byte totals never double count.
	f.egress[src].Acquire(p)
	f.ingress[dst].Acquire(p)
	p.WaitSpanOn(sim.CatNetwork, sim.DeviceLink, f.egress[src].Name(), int64(bytes), f.wireTime(src, bytes))
	f.ingress[dst].Release()
	f.egress[src].Release()
}

// Multicast sends bytes from src toward every node in dsts, holding one
// egress link for a single wire time (the crossbar replicates the
// stream, as RapidArray-class fabrics do — this is the cost model
// behind Equation 5, which charges the panel node one Tcomm per stripe
// regardless of the receiver count). Receivers are not charged ingress;
// they are blocked waiting for the payload anyway.
func (f *Fabric) Multicast(p *sim.Proc, src int, dsts []int, bytes int) {
	f.checkNode(src)
	if bytes < 0 {
		panic(fmt.Sprintf("fabric: negative message size %d", bytes))
	}
	if len(dsts) == 0 {
		return
	}
	f.messages++
	f.bytes += int64(bytes) * int64(len(dsts))
	f.egress[src].Acquire(p)
	// The span carries the replicated payload (bytes per receiver) so
	// telemetry byte totals match Bytes().
	p.WaitSpanOn(sim.CatNetwork, sim.DeviceLink, f.egress[src].Name(), int64(bytes)*int64(len(dsts)), f.wireTime(src, bytes))
	f.egress[src].Release()
}

// Messages returns the number of transfers initiated.
func (f *Fabric) Messages() int64 { return f.messages }

// Bytes returns the total payload bytes transferred (including local).
func (f *Fabric) Bytes() int64 { return f.bytes }

// EgressBusySeconds returns cumulative egress-link busy time of node i.
func (f *Fabric) EgressBusySeconds(i int) float64 {
	f.checkNode(i)
	return f.egress[i].BusySeconds()
}

// IngressBusySeconds returns cumulative ingress-link busy time of node i.
func (f *Fabric) IngressBusySeconds(i int) float64 {
	f.checkNode(i)
	return f.ingress[i].BusySeconds()
}

func (f *Fabric) checkNode(i int) {
	if i < 0 || i >= f.cfg.Nodes {
		panic(fmt.Sprintf("fabric: node %d out of range [0,%d)", i, f.cfg.Nodes))
	}
}
