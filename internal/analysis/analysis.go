package analysis

import (
	"fmt"
	"io"
	"strings"

	"codesign/internal/model"
	"codesign/internal/sim"
)

// DefaultBins is the timeline bin count Analyze uses when Options.Bins
// is zero; it matches the width of the report's utilization strips.
const DefaultBins = 60

// maxReportHops caps how many critical-path hops WriteReport prints
// before eliding the middle of the path (the full path is always in
// Report.CriticalPath).
const maxReportHops = 40

// Options tunes Analyze.
type Options struct {
	// Bins is the number of timeline bins (DefaultBins when 0).
	Bins int
	// Expected maps phase label to the analytic model's predicted
	// binding parameter, for the classifier's agreement check.
	Expected map[string]model.Binding
}

// Report is the full attribution of one run.
type Report struct {
	// Makespan is the run's virtual finish time in seconds.
	Makespan float64

	// CriticalPath is the chain of hops whose durations partition
	// [0, makespan]; CriticalPathTotal is their sum (equal to Makespan
	// up to float summation order).
	CriticalPath []Hop
	// CriticalPathTotal is the summed duration of CriticalPath.
	CriticalPathTotal float64

	// Phases is the per-phase busy-time breakdown and bottleneck
	// classification, ordered by first span start.
	Phases []PhaseStats
	// Timelines is the per-resource binned activity, ordered by name.
	Timelines []ResourceTimeline
}

// Analyze runs the critical-path extractor, the bottleneck classifier
// and the timeline binner over one run's span stream.
func Analyze(spans []sim.SpanEvent, makespan float64, opts Options) *Report {
	bins := opts.Bins
	if bins <= 0 {
		bins = DefaultBins
	}
	r := &Report{Makespan: makespan}
	r.CriticalPath = ExtractCriticalPath(spans, makespan)
	r.CriticalPathTotal = PathTotal(r.CriticalPath)
	r.Phases = ClassifyPhases(spans, opts.Expected)
	r.Timelines = BuildTimelines(spans, makespan, bins)
	return r
}

// Disagreements returns the phases whose measured binding contradicts
// the model's prediction.
func (r *Report) Disagreements() []PhaseStats {
	var out []PhaseStats
	for _, ps := range r.Phases {
		if !ps.Agree {
			out = append(out, ps)
		}
	}
	return out
}

// WriteReport renders the human-readable analysis the -analyze flag
// prints: the critical path (middle elided past maxReportHops), the
// per-phase bottleneck table, and per-resource utilization strips.
func (r *Report) WriteReport(w io.Writer) error {
	pct := func(v float64) float64 {
		if r.Makespan <= 0 {
			return 0
		}
		return 100 * v / r.Makespan
	}
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}

	if err := p("critical path (%d hops, total %.6g s of %.6g s makespan)\n",
		len(r.CriticalPath), r.CriticalPathTotal, r.Makespan); err != nil {
		return err
	}
	hopLine := func(h Hop) error {
		if h.Category == sim.CatIdle {
			return p("  %12.6g..%-12.6g %9.6g s %5.1f%%  (idle)\n",
				h.Start, h.End, h.Duration(), pct(h.Duration()))
		}
		return p("  %12.6g..%-12.6g %9.6g s %5.1f%%  %-8s %-10s %-14s %s\n",
			h.Start, h.End, h.Duration(), pct(h.Duration()),
			h.Category, h.Proc, h.Resource, h.Phase)
	}
	hops := r.CriticalPath
	if len(hops) <= maxReportHops {
		for _, h := range hops {
			if err := hopLine(h); err != nil {
				return err
			}
		}
	} else {
		head := maxReportHops / 2
		tail := maxReportHops - head
		for _, h := range hops[:head] {
			if err := hopLine(h); err != nil {
				return err
			}
		}
		var elided float64
		for _, h := range hops[head : len(hops)-tail] {
			elided += h.Duration()
		}
		if err := p("  ... %d hops elided (%.6g s, %.1f%%) ...\n",
			len(hops)-maxReportHops, elided, pct(elided)); err != nil {
			return err
		}
		for _, h := range hops[len(hops)-tail:] {
			if err := hopLine(h); err != nil {
				return err
			}
		}
	}

	if len(r.Phases) > 0 {
		if err := p("\nbottleneck attribution per phase (busy seconds; binding per Eq. 4-6 comparison)\n"); err != nil {
			return err
		}
		if err := p("  %-12s %12s %12s %12s %12s  %-7s %-7s %-9s %s\n",
			"phase", "Tf", "Tp", "Tmem", "Tcomm", "margin", "binds", "expected", "agree"); err != nil {
			return err
		}
		for _, ps := range r.Phases {
			name := ps.Phase
			if name == "" {
				name = "(none)"
			}
			expect, agree := "-", "-"
			if ps.Expected != model.BindNone {
				expect = ps.Expected.String()
				if ps.Agree {
					agree = "yes"
				} else {
					agree = "NO"
				}
			}
			if err := p("  %-12s %12.6g %12.6g %12.6g %12.6g  %6.1f%% %-7s %-9s %s\n",
				name, ps.BusyTf, ps.BusyTp, ps.BusyTmem, ps.BusyTcomm,
				100*ps.Margin, ps.Binding, expect, agree); err != nil {
				return err
			}
		}
	}

	if len(r.Timelines) > 0 {
		if err := p("\nresource utilization (each column %.6g s; ' ' idle, '.' <25%%, ':' <50%%, '+' <75%%, '#' busy)\n",
			r.Makespan/float64(maxBins(r.Timelines))); err != nil {
			return err
		}
		for _, rt := range r.Timelines {
			if err := p("  %-14s %-5s %5.1f%% |%s|\n",
				rt.Name, rt.Device, 100*rt.Utilization(), strip(rt.Bins)); err != nil {
				return err
			}
		}
	}
	return nil
}

func maxBins(ts []ResourceTimeline) int {
	n := 1
	for _, t := range ts {
		if len(t.Bins) > n {
			n = len(t.Bins)
		}
	}
	return n
}

// strip renders bin fractions as a fixed-alphabet utilization strip.
func strip(bins []float64) string {
	var b strings.Builder
	for _, f := range bins {
		switch {
		case f <= 0:
			b.WriteByte(' ')
		case f < 0.25:
			b.WriteByte('.')
		case f < 0.5:
			b.WriteByte(':')
		case f < 0.75:
			b.WriteByte('+')
		default:
			b.WriteByte('#')
		}
	}
	return b.String()
}
