package fpmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sameBits compares results bit-for-bit, collapsing all NaN payloads.
func sameBits(got, want uint64) bool {
	gotNaN := math.IsNaN(math.Float64frombits(got))
	wantNaN := math.IsNaN(math.Float64frombits(want))
	if gotNaN || wantNaN {
		return gotNaN == wantNaN
	}
	return got == want
}

// interestingBits are operands that exercise every special path.
var interestingBits = []uint64{
	0x0000000000000000, // +0
	0x8000000000000000, // -0
	0x0000000000000001, // smallest subnormal
	0x8000000000000001,
	0x000FFFFFFFFFFFFF, // largest subnormal
	0x0010000000000000, // smallest normal
	0x3FF0000000000000, // 1.0
	0xBFF0000000000000, // -1.0
	0x3FF0000000000001, // 1.0 + ulp
	0x4000000000000000, // 2.0
	0x7FEFFFFFFFFFFFFF, // largest finite
	0xFFEFFFFFFFFFFFFF,
	0x7FF0000000000000, // +Inf
	0xFFF0000000000000, // -Inf
	0x7FF8000000000000, // qNaN
	0x7FF0000000000001, // sNaN
	0x3CA0000000000000, // tiny normal (2^-53)
	0x4340000000000000, // 2^53
	0x36A0000000000000, // 2^-149-ish region
	0x0008000000000000, // mid subnormal
	math.Float64bits(math.Pi),
	math.Float64bits(-math.E),
	math.Float64bits(1e308),
	math.Float64bits(1e-308),
	math.Float64bits(4.49e307), // near overflow when doubled
}

func TestAddDirectedCases(t *testing.T) {
	for _, a := range interestingBits {
		for _, b := range interestingBits {
			fa, fb := math.Float64frombits(a), math.Float64frombits(b)
			want := math.Float64bits(fa + fb)
			got := Add(a, b)
			if !sameBits(got, want) {
				t.Fatalf("Add(%x, %x) = %x, want %x (%g + %g)", a, b, got, want, fa, fb)
			}
		}
	}
}

func TestMulDirectedCases(t *testing.T) {
	for _, a := range interestingBits {
		for _, b := range interestingBits {
			fa, fb := math.Float64frombits(a), math.Float64frombits(b)
			want := math.Float64bits(fa * fb)
			got := Mul(a, b)
			if !sameBits(got, want) {
				t.Fatalf("Mul(%x, %x) = %x, want %x (%g * %g)", a, b, got, want, fa, fb)
			}
		}
	}
}

func TestSubMatchesHost(t *testing.T) {
	for _, a := range interestingBits {
		for _, b := range interestingBits {
			fa, fb := math.Float64frombits(a), math.Float64frombits(b)
			want := math.Float64bits(fa - fb)
			if got := Sub(a, b); !sameBits(got, want) {
				t.Fatalf("Sub(%x, %x) = %x, want %x", a, b, got, want)
			}
		}
	}
}

// randBits produces a mix of fully random patterns and patterns biased
// toward close exponents (the hard cancellation cases).
func randBits(rng *rand.Rand) (uint64, uint64) {
	a := rng.Uint64()
	b := rng.Uint64()
	switch rng.Intn(4) {
	case 0:
		// Close exponents to stress cancellation and alignment.
		expA := (a >> 52) & 0x7FF
		delta := uint64(rng.Intn(5))
		expB := expA + delta - 2
		if expA < 2 || expB >= 0x7FF {
			expB = expA
		}
		b = b&^(uint64(0x7FF)<<52) | expB<<52
	case 1:
		// Force subnormal operand.
		b &= ^(uint64(0x7FF) << 52)
	}
	return a, b
}

func TestAddRandomMatchesHost(t *testing.T) {
	rng := rand.New(rand.NewSource(7001))
	for i := 0; i < 500000; i++ {
		a, b := randBits(rng)
		fa, fb := math.Float64frombits(a), math.Float64frombits(b)
		want := math.Float64bits(fa + fb)
		if got := Add(a, b); !sameBits(got, want) {
			t.Fatalf("iter %d: Add(%#x, %#x) = %#x, want %#x (%g + %g)", i, a, b, Add(a, b), want, fa, fb)
		}
	}
}

func TestMulRandomMatchesHost(t *testing.T) {
	rng := rand.New(rand.NewSource(7002))
	for i := 0; i < 500000; i++ {
		a, b := randBits(rng)
		fa, fb := math.Float64frombits(a), math.Float64frombits(b)
		want := math.Float64bits(fa * fb)
		if got := Mul(a, b); !sameBits(got, want) {
			t.Fatalf("iter %d: Mul(%#x, %#x) = %#x, want %#x (%g * %g)", i, a, b, Mul(a, b), want, fa, fb)
		}
	}
}

func TestQuickAddCommutes(t *testing.T) {
	f := func(a, b uint64) bool { return sameBits(Add(a, b), Add(b, a)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulCommutes(t *testing.T) {
	f := func(a, b uint64) bool { return sameBits(Mul(a, b), Mul(b, a)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddVsHost(t *testing.T) {
	f := func(a, b uint64) bool {
		want := math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		return sameBits(Add(a, b), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulVsHost(t *testing.T) {
	f := func(a, b uint64) bool {
		want := math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
		return sameBits(Mul(a, b), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatWrappers(t *testing.T) {
	if got := AddFloat(1.5, 2.25); got != 3.75 {
		t.Fatalf("AddFloat = %v", got)
	}
	if got := SubFloat(1.5, 2.25); got != -0.75 {
		t.Fatalf("SubFloat = %v", got)
	}
	if got := MulFloat(1.5, -2); got != -3 {
		t.Fatalf("MulFloat = %v", got)
	}
}

func TestMinFloat(t *testing.T) {
	if MinFloat(2, 3) != 2 || MinFloat(3, 2) != 2 {
		t.Fatal("MinFloat basic")
	}
	if MinFloat(-0.0, 0.0) != 0.0 { // either zero acceptable numerically
		t.Fatal("MinFloat zero")
	}
	if !math.IsNaN(MinFloat(math.NaN(), 1)) || !math.IsNaN(MinFloat(1, math.NaN())) {
		t.Fatal("MinFloat must propagate NaN")
	}
}

func TestSignedZeroResults(t *testing.T) {
	// x + (-x) = +0 in round-to-nearest.
	x := math.Float64bits(3.5)
	got := Add(x, x^signBit)
	if got != 0 {
		t.Fatalf("x + -x = %#x, want +0", got)
	}
	// -0 + -0 = -0.
	nz := uint64(0x8000000000000000)
	if got := Add(nz, nz); got != nz {
		t.Fatalf("-0 + -0 = %#x, want -0", got)
	}
	// -0 * +5 = -0.
	if got := Mul(nz, math.Float64bits(5)); got != nz {
		t.Fatalf("-0 * 5 = %#x, want -0", got)
	}
}

func TestOverflowToInf(t *testing.T) {
	big := math.Float64bits(math.MaxFloat64)
	if got := Add(big, big); got != InfBits {
		t.Fatalf("max + max = %#x, want +Inf", got)
	}
	if got := Mul(big, math.Float64bits(2)); got != InfBits {
		t.Fatalf("max * 2 = %#x, want +Inf", got)
	}
}

func TestUnderflowToSubnormal(t *testing.T) {
	tiny := math.Float64bits(math.SmallestNonzeroFloat64)
	half := math.Float64bits(0.5)
	// smallest * 0.5 rounds to zero (ties to even).
	ft := math.Float64frombits(tiny)
	want := math.Float64bits(ft * 0.5)
	if got := Mul(tiny, half); !sameBits(got, want) {
		t.Fatalf("tiny*0.5 = %#x, want %#x", got, want)
	}
}

func TestCoreMetadata(t *testing.T) {
	for _, c := range []Core{Adder64, Multiplier64, Comparator64} {
		if c.PipelineStages <= 0 || c.MaxFreqHz <= 0 || c.Slices <= 0 {
			t.Fatalf("core %s has non-positive metadata: %+v", c.Name, c)
		}
		if c.ThroughputFLOPs(0) != c.MaxFreqHz {
			t.Fatalf("core %s default throughput", c.Name)
		}
		if c.ThroughputFLOPs(100e6) != 100e6 {
			t.Fatalf("core %s throttled throughput", c.Name)
		}
		wantLat := float64(c.PipelineStages) / 100e6
		if got := c.LatencySeconds(100e6); math.Abs(got-wantLat) > 1e-18 {
			t.Fatalf("core %s latency = %v want %v", c.Name, got, wantLat)
		}
	}
	if Multiplier64.Embedded18x18 == 0 {
		t.Fatal("multiplier must consume embedded multipliers")
	}
}
