package codesign

// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus the DESIGN.md ablations and microbenchmarks
// of the substrates. Custom metrics report what the paper reports:
// simulated GFLOPS and simulated seconds (host ns/op measures only how
// fast the simulator itself runs).

import (
	"context"
	"math/rand"
	"testing"

	"codesign/internal/analysis"
	"codesign/internal/core"
	"codesign/internal/cpu"
	"codesign/internal/exper"
	"codesign/internal/fpmath"
	"codesign/internal/machine"
	"codesign/internal/matrix"
	"codesign/internal/sim"
)

// BenchmarkBaselineDrift re-runs the headline suite and reports its
// drift against the committed BENCH_baseline.json: the number of
// diverging metrics and the worst relative delta. On an unchanged tree
// both are zero; after a behavior change the numbers quantify it before
// the baseline is regenerated (see EXPERIMENTS.md "Benchmark
// baseline").
func BenchmarkBaselineDrift(b *testing.B) {
	old, err := analysis.ReadBaselineFile(baselineFile)
	if err != nil {
		b.Fatal(err)
	}
	var deltas []analysis.Delta
	for i := 0; i < b.N; i++ {
		fresh, err := exper.Headline()
		if err != nil {
			b.Fatal(err)
		}
		deltas = analysis.Diff(old, fresh, 0)
	}
	worst := 0.0
	for _, d := range deltas {
		if d.Rel > worst {
			worst = d.Rel
		}
	}
	b.ReportMetric(float64(len(deltas)), "diverging_metrics")
	b.ReportMetric(worst, "worst_rel_delta")
}

// BenchmarkTable1 regenerates Table 1: opLU/opL/opU latencies at b=3000.
func BenchmarkTable1(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows := cpu.Table1(cpu.Opteron22(), 3000)
		last = rows[0].LatencyS
	}
	b.ReportMetric(last, "opLU_s")
}

// BenchmarkFig5 regenerates Figure 5's optimum point: one 3000×3000
// block multiplication at bf=1280 on 6 nodes.
func BenchmarkFig5(b *testing.B) {
	var lat float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunOpMM(machine.XD1(), 3000, 8, 1280)
		if err != nil {
			b.Fatal(err)
		}
		lat = r.Seconds
	}
	b.ReportMetric(lat, "sim_s")
}

// BenchmarkFig5Sweep runs the full bf sweep of Figure 5.
func BenchmarkFig5Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for bf := 0; bf <= 3000; bf += 600 {
			if _, err := core.RunOpMM(machine.XD1(), 3000, 8, bf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig6 regenerates Figure 6's optimum point: iteration 0 of
// the n=30000 factorization at l=3.
func BenchmarkFig6(b *testing.B) {
	var lat float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		lat = r.IterationSeconds[0]
	}
	b.ReportMetric(lat, "iter0_s")
}

// BenchmarkFig7 regenerates Figure 7's optimum point: one FW iteration
// at l1=2 (b=256, n=18432).
func BenchmarkFig7(b *testing.B) {
	var lat float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunFW(core.FWConfig{N: 18432, B: 256, L1: 2, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		lat = r.Seconds / float64(len(r.IterationSeconds))
	}
	b.ReportMetric(lat, "iter_s")
}

// BenchmarkFig8 regenerates Figure 8's end point: LU GFLOPS at n/b=10.
func BenchmarkFig8(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		g = r.GFLOPS
	}
	b.ReportMetric(g, "sim_GFLOPS")
}

// BenchmarkFig9LU regenerates Figure 9's LU bars: hybrid and both
// baselines.
func BenchmarkFig9LU(b *testing.B) {
	metrics := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range []core.Mode{core.Hybrid, core.ProcessorOnly, core.FPGAOnly} {
			r, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: m})
			if err != nil {
				b.Fatal(err)
			}
			metrics[m.String()] = r.GFLOPS
		}
	}
	b.ReportMetric(metrics["hybrid"], "hybrid_GFLOPS")
	b.ReportMetric(metrics["processor-only"], "cpu_GFLOPS")
	b.ReportMetric(metrics["fpga-only"], "fpga_GFLOPS")
}

// BenchmarkFig9FW regenerates Figure 9's Floyd-Warshall bars.
func BenchmarkFig9FW(b *testing.B) {
	metrics := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range []core.Mode{core.Hybrid, core.ProcessorOnly, core.FPGAOnly} {
			r, err := core.RunFW(core.FWConfig{N: 18432, B: 256, L1: -1, Mode: m})
			if err != nil {
				b.Fatal(err)
			}
			metrics[m.String()] = r.GFLOPS
		}
	}
	b.ReportMetric(metrics["hybrid"], "hybrid_GFLOPS")
	b.ReportMetric(metrics["processor-only"], "cpu_GFLOPS")
	b.ReportMetric(metrics["fpga-only"], "fpga_GFLOPS")
}

// BenchmarkPrediction regenerates the Section 6.2 accuracy study.
func BenchmarkPrediction(b *testing.B) {
	var luRatio, fwRatio float64
	for i := 0; i < b.N; i++ {
		lu, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		luRatio = lu.GFLOPS / lu.Prediction.GFLOPS
		fw, err := core.RunFW(core.FWConfig{N: 18432, B: 256, L1: -1, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		fwRatio = fw.GFLOPS / fw.Prediction.GFLOPS
	}
	b.ReportMetric(luRatio, "lu_ratio")
	b.ReportMetric(fwRatio, "fw_ratio")
}

// --- Ablation benches (DESIGN.md Section 5) ---

// BenchmarkOverlapAblation measures the cost of disabling stripe
// pipelining in the LU hybrid.
func BenchmarkOverlapAblation(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		r1, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: core.Hybrid, DisableStripeOverlap: true})
		if err != nil {
			b.Fatal(err)
		}
		on, off = r1.Seconds, r2.Seconds
	}
	b.ReportMetric(on, "overlap_s")
	b.ReportMetric(off, "no_overlap_s")
}

// BenchmarkSplitAblation measures whole-task vs split-task opMM.
func BenchmarkSplitAblation(b *testing.B) {
	var split, whole float64
	for i := 0; i < b.N; i++ {
		r1, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: core.Hybrid, WholeTaskOpMM: true})
		if err != nil {
			b.Fatal(err)
		}
		split, whole = r1.GFLOPS, r2.GFLOPS
	}
	b.ReportMetric(split, "split_GFLOPS")
	b.ReportMetric(whole, "whole_GFLOPS")
}

// BenchmarkAtomicRoutineAblation measures interruptible vs atomic panel
// routines.
func BenchmarkAtomicRoutineAblation(b *testing.B) {
	var atomic, async float64
	for i := 0; i < b.N; i++ {
		r1, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: core.Hybrid, InterruptibleRoutines: true})
		if err != nil {
			b.Fatal(err)
		}
		atomic, async = r1.Seconds, r2.Seconds
	}
	b.ReportMetric(atomic, "atomic_s")
	b.ReportMetric(async, "interruptible_s")
}

// BenchmarkSolverVsSweep compares the Equation (4) solver against a
// brute-force bf sweep of the stripe-granular simulation.
func BenchmarkSolverVsSweep(b *testing.B) {
	var solver, sweepBest float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunOpMM(machine.XD1(), 3000, 8, 1280) // solver's answer
		if err != nil {
			b.Fatal(err)
		}
		solver = r.Seconds
		best := 1e18
		for bf := 0; bf <= 3000; bf += 200 {
			rr, err := core.RunOpMM(machine.XD1(), 3000, 8, bf)
			if err != nil {
				b.Fatal(err)
			}
			if rr.Seconds < best {
				best = rr.Seconds
			}
		}
		sweepBest = best
	}
	b.ReportMetric(solver, "solver_s")
	b.ReportMetric(sweepBest, "sweep_best_s")
}

// BenchmarkFunctionalOverhead measures the cost of carrying real data
// through the simulated machine.
func BenchmarkFunctionalOverhead(b *testing.B) {
	b.Run("timing-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunLU(core.LUConfig{N: 300, B: 60, PEs: 4, BF: -1, L: 2, Mode: core.Hybrid}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("functional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunLU(core.LUConfig{N: 300, B: 60, PEs: 4, BF: -1, L: 2, Mode: core.Hybrid, Functional: true, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Substrate microbenchmarks ---

// BenchmarkGemmTiled measures the tiled host GEMM kernel.
func BenchmarkGemmTiled(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := matrix.Random(256, 256, rng)
	bb := matrix.Random(256, 256, rng)
	c := matrix.New(256, 256)
	flops := 2.0 * 256 * 256 * 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.Gemm(1, a, bb, 0, c)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "host_GFLOPS")
}

// BenchmarkGemmParallel measures the parallel host GEMM kernel.
func BenchmarkGemmParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := matrix.Random(256, 256, rng)
	bb := matrix.Random(256, 256, rng)
	c := matrix.New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.GemmParallel(1, a, bb, 0, c, 0)
	}
}

// BenchmarkFWKernelHost measures the scalar FW kernel (the paper's 190
// MFLOPS routine) on the host.
func BenchmarkFWKernelHost(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d := matrix.RandomGraph(256, 0.5, rng)
	flops := 2.0 * 256 * 256 * 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := d.Clone()
		matrix.FWKernel(work)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "host_MFLOPS")
}

// BenchmarkFPMathAdd measures the bit-exact adder core.
func BenchmarkFPMathAdd(b *testing.B) {
	x := fpmath.Add(0x3FF0000000000001, 0x3CA0000000000000)
	for i := 0; i < b.N; i++ {
		x = fpmath.Add(x, 0x3CA0000000000000)
	}
	_ = x
}

// BenchmarkFPMathMul measures the bit-exact multiplier core.
func BenchmarkFPMathMul(b *testing.B) {
	x := uint64(0x3FF0000000000001)
	for i := 0; i < b.N; i++ {
		x = fpmath.Mul(x, 0x3FF0000000000001)
	}
	_ = x
}

// BenchmarkSimEngine measures raw event throughput of the DES engine.
func BenchmarkSimEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.New()
		for j := 0; j < 8; j++ {
			e.Go("p", func(p *sim.Proc) {
				for k := 0; k < 1000; k++ {
					p.Wait(1)
				}
			})
		}
		if err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(8000*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkLUFullSimulation measures host time to simulate the full
// paper-scale factorization.
func BenchmarkLUFullSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: core.Hybrid}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFWFullSimulation measures host time to simulate the n=18432
// Floyd-Warshall run.
func BenchmarkFWFullSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunFW(core.FWConfig{N: 18432, B: 256, L1: -1, Mode: core.Hybrid}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension-application benches ---

// BenchmarkExtensionMM runs the hybrid matrix multiplication extension.
func BenchmarkExtensionMM(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunMM(core.MMConfig{N: 6144, BF: -1, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		g = r.GFLOPS
	}
	b.ReportMetric(g, "sim_GFLOPS")
}

// BenchmarkExtensionCholesky runs the hybrid Cholesky extension.
func BenchmarkExtensionCholesky(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunCholesky(core.CholConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		g = r.GFLOPS
	}
	b.ReportMetric(g, "sim_GFLOPS")
}

// BenchmarkSensitivitySweep runs the system-parameter sensitivity study.
func BenchmarkSensitivitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Sensitivity(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPMathSqrt measures the bit-exact square-root core.
func BenchmarkFPMathSqrt(b *testing.B) {
	x := uint64(0x4000000000000000)
	for i := 0; i < b.N; i++ {
		_ = fpmath.Sqrt(x + uint64(i&1023))
	}
}

// BenchmarkExtensionQR runs the hybrid Householder QR extension.
func BenchmarkExtensionQR(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunQR(core.QRConfig{N: 30000, B: 3000, BF: -1, Mode: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		g = r.GFLOPS
	}
	b.ReportMetric(g, "sim_GFLOPS")
}

// BenchmarkExtensionCG runs the hybrid conjugate-gradient extension.
func BenchmarkExtensionCG(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunCG(core.CGConfig{N: 512, RowsFPGA: -1, Mode: core.Hybrid, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		g = r.GFLOPS
	}
	b.ReportMetric(g, "sim_GFLOPS")
}

// BenchmarkSolveCached measures the serve layer's solve path on both
// sides of the cache (DESIGN.md §12): "hit" re-asks one canonical
// query every iteration, so each solve is an LRU hit in the
// read-through cache; "miss" asks a never-before-seen partition every
// iteration, so each solve runs a full model evaluation and inserts
// the outcome. The gap between the two is what the cache buys a
// duplicate-heavy serving workload.
func BenchmarkSolveCached(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		svc := NewServeService(ServeConfig{}, NewObsRegistry())
		defer svc.Close()
		req := SolveRequest{App: "lu"}
		if _, err := svc.Solve(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := svc.Solve(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Source != "cache" {
				b.Fatalf("source = %q, want cache", resp.Source)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		svc := NewServeService(ServeConfig{CacheBound: -1}, NewObsRegistry())
		defer svc.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bf, l := 1+i%3000, 1+i/3000
			resp, err := svc.Solve(context.Background(), SolveRequest{App: "lu", BF: &bf, L: &l})
			if err != nil {
				b.Fatal(err)
			}
			if resp.Source != "computed" {
				b.Fatalf("source = %q, want computed", resp.Source)
			}
		}
	})
}

// BenchmarkDesignSpaceSweep exercises the parallel sweep engine under
// both evaluation methods and reports the headline of the best design
// each grid finds.
//
// The "model" variant evaluates a 126-point LU grid (21 bf values x 6
// pipeline depths) with the closed-form model only — microseconds per
// point, dominated by the sweep machinery itself. The "sim" variant
// runs a 24-point reduced-size LU grid through full discrete-event
// simulations, so its wall-clock time is dominated by the sim engine's
// event loop; it is the headline number tracked in BENCH_speed.json.
func BenchmarkDesignSpaceSweep(b *testing.B) {
	run := func(b *testing.B, g SweepGrid) {
		var best float64
		points := 0
		for i := 0; i < b.N; i++ {
			res, err := RunSweep(context.Background(), g, SweepOptions{})
			if err != nil {
				b.Fatal(err)
			}
			best = res.Outcomes[res.Best()].GFLOPS
			points = res.Stats.Points
		}
		b.ReportMetric(float64(points), "points")
		b.ReportMetric(best, "best_sim_GFLOPS")
	}
	b.Run("model", func(b *testing.B) {
		bf := make([]int, 0, 21)
		for v := 0; v <= 3000; v += 150 {
			bf = append(bf, v)
		}
		run(b, SweepGrid{Apps: []string{"lu"}, BF: bf, L: []int{-1, 1, 2, 3, 4, 6}})
	})
	b.Run("sim", func(b *testing.B) {
		run(b, SweepGrid{
			Apps: []string{"lu"},
			N:    []int{600}, B: []int{120},
			BF:     []int{-1, 0, 30, 60, 90, 120},
			L:      []int{-1, 1, 2, 4},
			Method: "sim",
		})
	})
}

// BenchmarkSpMVSweep runs the sparse extension's density axis through
// full simulations: a spmv grid spanning the dense regime (all rows on
// the processor, Op*Fp-bound) and the CSR regime (all rows streamed
// through the FPGA, Bd-bound) across the three design variants. Each
// point builds the operator, solves the Equation (1) row split, and
// verifies the split apply bit for bit against matrix.CSR.Apply, so
// the number tracks the sparse pipeline end to end. Tracked in
// BENCH_speed.json next to the DesignSpaceSweep sim headline.
func BenchmarkSpMVSweep(b *testing.B) {
	g := SweepGrid{
		Apps:    []string{"spmv"},
		N:       []int{512},
		Density: []float64{0, 0.02, 0.05, 0.1},
		Modes:   []string{"hybrid", "processor-only", "fpga-only"},
		Method:  "sim",
	}
	var dense, sparse float64
	for i := 0; i < b.N; i++ {
		res, err := RunSweep(context.Background(), g, SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for j, o := range res.Outcomes {
			if !o.OK || res.Points[j].Mode != "hybrid" {
				continue
			}
			if res.Points[j].Density == 0 {
				dense = o.GFLOPS
			} else if res.Points[j].Density == 0.1 {
				sparse = o.GFLOPS
			}
		}
	}
	b.ReportMetric(dense, "dense_GFLOPS")
	b.ReportMetric(sparse, "sparse_GFLOPS")
}

// screenedSweepGrid builds the reference grid for BenchmarkScreenedSweep:
// a dense 12040-point matrix-multiplication design space (5 problem
// sizes x 4 PE counts x 602 row splits) evaluated with the sim method.
// The mm task split has no fixed panel term, so the closed-form model
// varies strictly with every bf step — the model can rank the whole
// axis, which is the regime two-stage screening is built for: thousands
// of interior points ranked by a microsecond model pass instead of a
// millisecond discrete-event simulation each. (LU grids plateau across
// bf at panel-dominated sizes and screening degrades to refining the
// plateau; see DESIGN.md §13.)
func screenedSweepGrid() SweepGrid {
	bf := make([]int, 0, 602)
	bf = append(bf, -1)
	for v := 0; v <= 600; v++ {
		bf = append(bf, v)
	}
	return SweepGrid{
		Apps:   []string{"mm"},
		N:      []int{480, 600, 720, 840, 960},
		PEs:    []int{2, 4, 6, 8},
		BF:     bf,
		L:      []int{-1},
		Method: "sim",
	}
}

// BenchmarkScreenedSweep prices two-stage screening against a full
// simulation sweep of the same >=10k-point grid (DESIGN.md §13). The
// "full" variant simulates every feasible point; the "screened" variant
// model-screens the grid and simulates only the surviving candidates
// (frontier + margin band + axis neighbors). Both ns/op figures are
// recorded in BENCH_speed.json: their ratio is the wall-clock reduction
// the pipeline buys, and CI's sweep-scale job separately proves the
// screened frontier matches the full-sim frontier on this grid's
// reference subgrid.
func BenchmarkScreenedSweep(b *testing.B) {
	g := screenedSweepGrid()
	if n := g.NumPoints(); n < 10000 {
		b.Fatalf("reference grid has %d points, want >= 10000", n)
	}
	frontier := func(res *SweepResult) map[int]bool {
		set := make(map[int]bool, len(res.ParetoIndices))
		for _, i := range res.ParetoIndices {
			set[res.Points[i].Index] = true
		}
		return set
	}
	var fullFrontier map[int]bool
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := RunSweep(context.Background(), g, SweepOptions{})
			if err != nil {
				b.Fatal(err)
			}
			fullFrontier = frontier(res)
		}
		b.ReportMetric(float64(g.NumPoints()), "points")
		b.ReportMetric(float64(len(fullFrontier)), "frontier")
	})
	b.Run("screened", func(b *testing.B) {
		var sc SweepScreenSummary
		var got map[int]bool
		for i := 0; i < b.N; i++ {
			res, err := RunScreenedSweep(context.Background(), g, SweepScreenOptions{})
			if err != nil {
				b.Fatal(err)
			}
			sc = *res.Screen
			got = frontier(res)
		}
		if sc.Candidates*5 > sc.Points {
			b.Fatalf("screening refined %d of %d points — pruning too weak for a 5x win", sc.Candidates, sc.Points)
		}
		// When the full variant ran first (the default), the speedup must
		// not have cost frontier fidelity.
		if fullFrontier != nil {
			if len(got) != len(fullFrontier) {
				b.Fatalf("screened frontier has %d points, full has %d", len(got), len(fullFrontier))
			}
			for idx := range fullFrontier {
				if !got[idx] {
					b.Fatalf("full-sim frontier point index=%d missing from screened frontier", idx)
				}
			}
		}
		b.ReportMetric(float64(sc.Points), "points")
		b.ReportMetric(float64(sc.Candidates), "sim_candidates")
	})
}
