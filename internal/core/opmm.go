package core

import (
	"fmt"

	"codesign/internal/cpu"
	"codesign/internal/fpga"
	"codesign/internal/machine"
	"codesign/internal/model"
	"codesign/internal/sim"
)

// OpMMResult reports the stripe-granular simulation of one b×b block
// matrix multiplication on the p-1 compute nodes while node 0 streams
// the operand stripes — the experiment of Figure 5.
type OpMMResult struct {
	BF, BP, B, K int
	// Seconds is the makespan of the whole block multiplication.
	Seconds float64
	// StripeTf/Tp/Tmem/Tcomm echo the model's per-stripe times.
	StripeTf, StripeTp, StripeTmem, StripeTcomm float64
}

// RunOpMM simulates one b×b block matrix multiplication at stripe
// granularity: node 0 multicasts each of the b/k column/row stripe
// pairs in turn; every compute node unpacks the stripe, streams the
// FPGA's operands to it, runs its software share, and the FPGA array
// consumes stripes from a double-buffered queue. Pipelining across
// stripes arises naturally from the resource model.
func RunOpMM(mc machine.Config, b, pes, bf int) (*OpMMResult, error) {
	if mc.Nodes == 0 {
		mc = machine.XD1()
	}
	p := mc.Nodes
	if p < 2 {
		return nil, fmt.Errorf("core: opMM needs p >= 2")
	}
	sys, err := machine.New(mc)
	if err != nil {
		return nil, err
	}
	k := pes
	if k == 0 {
		k = fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewMatMul(k) }, mc.Device)
	}
	if b%k != 0 || b%(p-1) != 0 {
		return nil, fmt.Errorf("core: b=%d must be a multiple of k=%d and p-1=%d", b, k, p-1)
	}
	if bf < 0 || bf > b {
		return nil, fmt.Errorf("core: bf=%d out of [0,%d]", bf, b)
	}
	if err := sys.InstallDesign(fpga.NewMatMul(k)); err != nil {
		return nil, err
	}
	accel := sys.Nodes[0].Accel
	proc := sys.Nodes[0].Proc
	lp := model.LUParams{
		P: p, B: b, K: k,
		Ff:         accel.Placed.FreqHz,
		StripeRate: proc.Rate(cpu.DGEMMStripe),
		LURate:     proc.Rate(cpu.DGETRF),
		TrsmRate:   proc.Rate(cpu.DTRSM),
		Bd:         accel.DRAM.BandwidthBytes,
		Bn:         mc.Fabric.LinkBandwidth,
		Bw:         machine.WordBytes,
	}
	tf, tp, tmem, tcomm := lp.StripeTimes(bf)
	stripes := b / k
	fpgaStripeCycles := float64(bf) * float64(b) / float64(p-1)

	// Per-node stripe queues: sender -> CPU, CPU -> FPGA.
	inbox := make([]*sim.Mailbox, p)
	fpgaQ := make([]*sim.Mailbox, p)
	for i := 1; i < p; i++ {
		inbox[i] = sim.NewMailbox(sys.Eng, fmt.Sprintf("opmm.in%d", i))
		fpgaQ[i] = sim.NewMailbox(sys.Eng, fmt.Sprintf("opmm.fq%d", i))
	}
	dsts := make([]int, 0, p-1)
	for i := 1; i < p; i++ {
		dsts = append(dsts, i)
	}

	// Node 0: stream the stripe pairs.
	stripeBytes := 2 * b * k * machine.WordBytes
	sys.Eng.Go("opmm.sender", func(pr *sim.Proc) {
		pr.SetPhase("broadcast")
		for s := 0; s < stripes; s++ {
			sys.Fab.Multicast(pr, 0, dsts, stripeBytes)
			for _, d := range dsts {
				inbox[d].Put(s)
			}
		}
	})

	// Compute nodes: CPU pipeline + FPGA array worker.
	for i := 1; i < p; i++ {
		node := sys.Nodes[i]
		me := i
		var fpgaDone *sim.Signal
		if bf > 0 {
			fpgaDone = sim.NewSignal(sys.Eng, fmt.Sprintf("opmm.fdone%d", me))
			a := node.Accel
			sys.Eng.Go(fmt.Sprintf("opmm.fpga%d", me), func(fp *sim.Proc) {
				fp.SetPhase("stripe")
				for s := 0; s < stripes; s++ {
					fpgaQ[me].Get(fp)
					a.Compute(fp, fpgaStripeCycles)
				}
				fpgaDone.Fire()
			})
		}
		// Per-stripe DMA volume: the FPGA's bf·k operand words plus the
		// k·b/(p-1) result words behind the model's Tmem term.
		stripeDMABytes := int64(bf*k+k*b/(p-1)) * machine.WordBytes
		sys.Eng.Go(fmt.Sprintf("opmm.cpu%d", me), func(pr *sim.Proc) {
			pr.SetPhase("stripe")
			for s := 0; s < stripes; s++ {
				inbox[me].Get(pr)
				// Unpack (the multicast wire span carried the bytes),
				// then the FPGA operand stream or the software share.
				// Consecutive charges fuse into one engine park; the
				// FPGA queue Put is a side effect at the DMA charge's
				// end, so the software share joins the fused sequence
				// only when there is no FPGA share ahead of it.
				if bf > 0 {
					node.ChargeCPUSeq(pr, []sim.Charge{
						{Cat: sim.CatNetwork, Dt: tcomm},
						{Cat: sim.CatDMA, Bytes: stripeDMABytes, Dt: tmem},
					})
					fpgaQ[me].Put(s)
					if bf < b {
						// Software share of the stripe.
						node.ChargeCPU(pr, sim.CatCompute, 0, tp)
					}
				} else {
					node.ChargeCPUSeq(pr, []sim.Charge{
						{Cat: sim.CatNetwork, Dt: tcomm},
						{Cat: sim.CatCompute, Dt: tp},
					})
				}
			}
			if fpgaDone != nil {
				node.Accel.AwaitDone(pr, fpgaDone)
			}
		})
	}

	end, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("core: opMM simulation: %w", err)
	}
	return &OpMMResult{
		BF: bf, BP: b - bf, B: b, K: k,
		Seconds:  end,
		StripeTf: tf, StripeTp: tp, StripeTmem: tmem, StripeTcomm: tcomm,
	}, nil
}
