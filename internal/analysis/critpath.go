package analysis

import (
	"sort"

	"codesign/internal/sim"
)

// Hop is one link of the critical path: an interval of the run during
// which the named activity was the last thing standing between the
// simulation and an earlier finish. Idle hops (Category CatIdle) mark
// gaps where no recorded span was running — scheduling slack the
// instrumentation did not cover.
type Hop struct {
	// Proc is the span's process (logical actor) name.
	Proc string
	// Resource is the contended resource the span held.
	Resource string
	// Phase is the algorithm phase the span belongs to.
	Phase string
	// Category is the span's activity class (compute, memory, ...).
	Category sim.Category
	// Device is the hardware side that executed the span.
	Device sim.Device
	// Start and End bound the hop's interval in virtual seconds.
	Start float64
	// End is the hop's exclusive upper bound in virtual seconds.
	End float64
}

// Duration returns End - Start.
func (h Hop) Duration() float64 { return h.End - h.Start }

// ExtractCriticalPath walks the span stream backward from the makespan
// and returns the dependency-weighted chain of activities that set it,
// ordered by time. At every instant t it asks "what was the last span
// to finish at or before t?" — that span's completion gated everything
// after it, so it joins the path and the walk continues from its start.
// Gaps between a hop and the next finisher become idle hops, so the hop
// durations partition [0, makespan] exactly and sum to the makespan.
//
// Ties between spans finishing at the same instant break toward (in
// order): the process of the previous hop (chains stay on one process
// when possible), the more fundamental category (compute before data
// movement before waiting), the earlier start (longer spans explain
// more of the timeline), then process and resource name — so the path
// is deterministic for a deterministic simulation.
//
// Adjacent hops that continue the same activity (same process,
// resource, phase and category, touching in time) are coalesced.
func ExtractCriticalPath(spans []sim.SpanEvent, makespan float64) []Hop {
	if makespan <= 0 {
		return nil
	}
	// Positive-width spans only, sorted by End ascending: the walk
	// binary-searches for the latest finisher at or before t.
	ss := make([]sim.SpanEvent, 0, len(spans))
	for _, s := range spans {
		if s.End > s.Start && s.Start < makespan {
			ss = append(ss, s)
		}
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].End < ss[j].End })

	var rev []Hop // built back-to-front
	idle := func(start, end float64) {
		if end > start {
			rev = append(rev, Hop{Category: sim.CatIdle, Start: start, End: end})
		}
	}

	t := makespan
	prevProc := ""
	for t > 0 {
		// Latest finisher at or before t.
		i := sort.Search(len(ss), func(k int) bool { return ss[k].End > t })
		if i == 0 {
			idle(0, t)
			break
		}
		maxEnd := ss[i-1].End
		best := ss[i-1]
		for j := i - 2; j >= 0 && ss[j].End == maxEnd; j-- {
			if better(ss[j], best, prevProc) {
				best = ss[j]
			}
		}
		idle(maxEnd, t)
		start := best.Start
		if start < 0 {
			start = 0
		}
		rev = append(rev, Hop{
			Proc: best.Proc, Resource: best.Resource, Phase: best.Phase,
			Category: best.Category, Device: best.Device,
			Start: start, End: maxEnd,
		})
		t = start
		prevProc = best.Proc
	}

	// Reverse into chronological order and coalesce continuations.
	out := make([]Hop, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		h := rev[i]
		if n := len(out); n > 0 {
			p := &out[n-1]
			if p.End == h.Start && p.Proc == h.Proc && p.Resource == h.Resource &&
				p.Phase == h.Phase && p.Category == h.Category {
				p.End = h.End
				continue
			}
		}
		out = append(out, h)
	}
	return out
}

// better reports whether candidate a beats b under the tie-break rules
// (both end at the same instant).
func better(a, b sim.SpanEvent, prevProc string) bool {
	if prevProc != "" && (a.Proc == prevProc) != (b.Proc == prevProc) {
		return a.Proc == prevProc
	}
	if a.Category != b.Category {
		return a.Category < b.Category
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	if a.Resource != b.Resource {
		return a.Resource < b.Resource
	}
	return a.Phase < b.Phase
}

// PathTotal sums hop durations. For a path from ExtractCriticalPath the
// hops partition [0, makespan], so this equals the makespan up to
// floating-point summation order.
func PathTotal(path []Hop) float64 {
	var t float64
	for _, h := range path {
		t += h.Duration()
	}
	return t
}
