package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"codesign/internal/obs"
)

// maxBodyBytes bounds request bodies; grids are small JSON documents.
const maxBodyBytes = 1 << 20

// Server is the HTTP front of a Service: the /v1 API plus the
// standard observability surface (/metrics, /metrics.json, /healthz,
// /statusz, /debug/pprof/) on one mux. Construct with New; serve
// Handler() on any net/http server.
type Server struct {
	cfg Config
	svc *Service
	mux *http.ServeMux

	// tokens holds one slot per allowed in-flight compute request;
	// queued counts requests waiting for a slot.
	tokens chan struct{}
	queued atomic.Int64
}

// New builds a server (and its Service) with metric families
// registered on reg, which must be non-nil.
func New(cfg Config, reg *obs.Registry) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		svc:    NewService(cfg, reg),
		tokens: make(chan struct{}, cfg.MaxInFlight),
	}
	reg.Func("codesignd_inflight", "compute requests currently evaluating",
		func() float64 { return float64(len(s.tokens)) })
	reg.Func("codesignd_queued", "compute requests waiting for an in-flight slot",
		func() float64 { return float64(s.queued.Load()) })

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.route("solve", http.MethodPost, true, s.handleSolve))
	mux.HandleFunc("/v1/design", s.route("design", http.MethodPost, true, s.handleDesign))
	mux.HandleFunc("/v1/sweep", s.route("sweep", http.MethodPost, false, s.handleSweepSubmit))
	mux.HandleFunc("/v1/sweep/{id}", s.route("sweep_status", http.MethodGet, false, s.handleSweepStatus))
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &Error{Status: http.StatusNotFound, Code: CodeNotFound, Message: "unknown API path " + r.URL.Path})
	})
	mux.Handle("/", obs.NewMux(reg))
	s.mux = mux
	return s
}

// Handler returns the server's mux, ready for http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Service returns the underlying service (for embedders that mix
// direct calls with HTTP traffic).
func (s *Server) Service() *Service { return s.svc }

// Close cancels background sweep jobs; in-flight requests complete.
func (s *Server) Close() { s.svc.Close() }

// route wraps an endpoint handler with the shared per-request
// machinery: method check, deadline context, admission control for
// gated (compute) endpoints, and request metrics. Handlers return the
// status code they wrote.
func (s *Server) route(name, method string, gated bool, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := http.StatusOK
		defer func() { s.svc.m.request(name, code, time.Since(start)) }()
		if r.Method != method {
			w.Header().Set("Allow", method)
			code = writeError(w, &Error{
				Status: http.StatusMethodNotAllowed, Code: CodeMethodNotAllowed,
				Message: fmt.Sprintf("%s requires %s", r.URL.Path, method),
			})
			return
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		r = r.WithContext(ctx)
		if gated {
			release, errCode := s.admit(w, r)
			if release == nil {
				code = errCode
				return
			}
			defer release()
		}
		code = h(w, r)
	}
}

// requestContext derives the request's deadline: Config.RequestTimeout
// by default, tightened (never extended) by a positive ?timeout_ms=
// query parameter.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			if t := time.Duration(ms) * time.Millisecond; t < d {
				d = t
			}
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// admit acquires an in-flight slot, queueing up to Config.MaxQueue
// waiters. It returns the release func, or (nil, code) after writing
// a 429 (queue full: shed, with Retry-After) or 504 (deadline expired
// while queued) response.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (func(), int) {
	select {
	case s.tokens <- struct{}{}:
		return func() { <-s.tokens }, 0
	default:
	}
	if int(s.queued.Add(1)) > s.cfg.MaxQueue {
		s.queued.Add(-1)
		s.svc.m.shed.Inc()
		return nil, writeError(w, &Error{
			Status: http.StatusTooManyRequests, Code: CodeOverloaded,
			Message: fmt.Sprintf("server at capacity (%d in flight, %d queued); retry later",
				s.cfg.MaxInFlight, s.cfg.MaxQueue),
		})
	}
	defer s.queued.Add(-1)
	select {
	case s.tokens <- struct{}{}:
		return func() { <-s.tokens }, 0
	case <-r.Context().Done():
		s.svc.m.deadline.Inc()
		return nil, writeError(w, &Error{
			Status: http.StatusGatewayTimeout, Code: CodeDeadlineExceeded,
			Message: "deadline expired while queued for an in-flight slot",
		})
	}
}

// handleSolve serves POST /v1/solve.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) int {
	var req SolveRequest
	if code := decode(w, r, &req); code != 0 {
		return code
	}
	resp, err := s.svc.Solve(r.Context(), req)
	if err != nil {
		return s.fail(w, err)
	}
	return writeJSON(w, http.StatusOK, resp)
}

// handleDesign serves POST /v1/design.
func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) int {
	var req DesignRequest
	if code := decode(w, r, &req); code != 0 {
		return code
	}
	resp, err := s.svc.Design(r.Context(), req)
	if err != nil {
		return s.fail(w, err)
	}
	return writeJSON(w, http.StatusOK, resp)
}

// handleSweepSubmit serves POST /v1/sweep with a 202 on acceptance.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) int {
	var req SweepRequest
	if code := decode(w, r, &req); code != 0 {
		return code
	}
	job, err := s.svc.SubmitSweep(req)
	if err != nil {
		return s.fail(w, err)
	}
	return writeJSON(w, http.StatusAccepted, job)
}

// handleSweepStatus serves GET /v1/sweep/{id}.
func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) int {
	job, err := s.svc.Job(r.PathValue("id"))
	if err != nil {
		return s.fail(w, err)
	}
	return writeJSON(w, http.StatusOK, job)
}

// fail maps a Service error onto the wire: typed *Error as-is,
// context expiry as 504, anything else as 500.
func (s *Server) fail(w http.ResponseWriter, err error) int {
	var ae *Error
	if errors.As(err, &ae) {
		return writeError(w, ae)
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.svc.m.deadline.Inc()
		return writeError(w, &Error{
			Status: http.StatusGatewayTimeout, Code: CodeDeadlineExceeded,
			Message: "request deadline exceeded; the evaluation continues and will populate the cache",
		})
	}
	return writeError(w, &Error{Status: http.StatusInternalServerError, Code: CodeInternal, Message: err.Error()})
}

// decode strictly parses a JSON request body (unknown fields are
// rejected, size capped at maxBodyBytes), writing a 400 envelope and
// returning its code on failure; 0 means the body parsed.
func decode(w http.ResponseWriter, r *http.Request, v any) int {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return writeError(w, badRequest("invalid request body: %v", err))
	}
	return 0
}

// writeJSON writes v with the given status and returns the status.
func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
	return status
}

// writeError writes the error envelope (with Retry-After on 429) and
// returns its status.
func writeError(w http.ResponseWriter, e *Error) int {
	if e.Status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	return writeJSON(w, e.Status, ErrorResponse{Error: e})
}
