package sweep

import (
	"fmt"
	"sync"

	"codesign/internal/analysis"
	"codesign/internal/cache"
	"codesign/internal/core"
	"codesign/internal/cpu"
	"codesign/internal/fpga"
	"codesign/internal/machine"
	"codesign/internal/model"
	"codesign/internal/trace"
)

// Outcome is the evaluation of one design point. OK distinguishes
// evaluated points from infeasible ones (a design that does not fit
// the device, a block size violating a divisibility constraint):
// infeasible points stay in the result set with Err describing why, so
// a sweep documents the feasible region as well as the frontier.
type Outcome struct {
	// OK reports whether the point evaluated; when false only Err is
	// meaningful.
	OK bool `json:"ok"`
	// Err describes why an infeasible point could not be evaluated.
	Err string `json:"err,omitempty"`

	// K is the resolved PE count; Of the design's flops per cycle
	// (2K for both PE arrays); FfMHz the post-place-and-route clock.
	K int `json:"k,omitempty"`
	// Of is the design's floating-point operations per FPGA cycle.
	Of int `json:"of,omitempty"`
	// FfMHz is the placed design clock in MHz (the model's Ff).
	FfMHz float64 `json:"ff_mhz,omitempty"`

	// Slices, BlockRAMs and Multipliers are the placed design's FPGA
	// resource consumption — the budget axis of the Pareto frontier.
	Slices int `json:"slices,omitempty"`
	// BlockRAMs is the 18 kb block RAM usage.
	BlockRAMs int `json:"brams,omitempty"`
	// Multipliers is the embedded 18x18 multiplier usage.
	Multipliers int `json:"mults,omitempty"`
	// BdGBps is the effective FPGA-DRAM streaming demand in GB/s —
	// min(raw path, one word per design cycle), the bandwidth axis of
	// the Pareto frontier.
	BdGBps float64 `json:"bd_gbps,omitempty"`

	// BF and BP are the resolved stripe row split (LU/MM).
	BF int `json:"bf,omitempty"`
	// BP is the processor's rows of the split.
	BP int `json:"bp,omitempty"`
	// L is the resolved LU panel pipeline depth (Eq. 5).
	L int `json:"l,omitempty"`
	// L1 and L2 are the resolved FW whole-task split (Eq. 6).
	L1 int `json:"l1,omitempty"`
	// L2 is the FPGA's share of the FW split.
	L2 int `json:"l2,omitempty"`

	// GFLOPS is the point's headline throughput: measured under
	// MethodSim, model-predicted under MethodModel. The Pareto
	// frontier maximizes it.
	GFLOPS float64 `json:"gflops,omitempty"`
	// Seconds is the corresponding latency.
	Seconds float64 `json:"seconds,omitempty"`
	// PredictedGFLOPS is the Section 4.5 prediction (always present,
	// also under MethodSim, where GFLOPS/PredictedGFLOPS is the
	// prediction-accuracy ratio of Section 6.2).
	PredictedGFLOPS float64 `json:"pred_gflops,omitempty"`
	// OverlapEfficiency is the telemetry overlap efficiency (MethodSim
	// only): the fraction of data-movement time hidden behind compute.
	OverlapEfficiency float64 `json:"overlap_eff,omitempty"`

	// Binding names the model parameter that binds the design's
	// dominant phase (Of*Ff, Op*Fp, Bd or Bn): analytic under
	// MethodModel, measured via the internal/analysis classifier under
	// MethodSim. Margin is the normalized imbalance (0 = balanced).
	Binding string `json:"binding,omitempty"`
	// Margin is the binding's normalized imbalance.
	Margin float64 `json:"margin,omitempty"`

	// Pareto marks the point as non-dominated on
	// (GFLOPS up, Slices down, BdGBps down) among the sweep's OK
	// points.
	Pareto bool `json:"pareto,omitempty"`
}

// Stats counts the work a sweep did, including how often the memoized
// place-and-route and partition solvers were shared between points.
type Stats struct {
	// Points is the grid size; Errors the infeasible subset.
	Points int `json:"points"`
	// Errors counts infeasible points.
	Errors int `json:"errors"`
	// PlaceLookups / PlaceSolves count pseudo place-and-route cache
	// traffic: lookups - solves placements were reused.
	PlaceLookups int `json:"place_lookups"`
	// PlaceSolves counts distinct placements actually solved.
	PlaceSolves int `json:"place_solves"`
	// PartitionLookups / PartitionSolves count Eq. 1/4/5/6 solver cache
	// traffic.
	PartitionLookups int `json:"partition_lookups"`
	// PartitionSolves counts distinct partition solves.
	PartitionSolves int `json:"partition_solves"`
	// ResolveLookups / ResolveSolves count largest-fitting-PE-array
	// resolutions (the place-and-route search behind PEs=0 points):
	// lookups - solves were reused across neighboring grid points.
	ResolveLookups int `json:"resolve_lookups"`
	// ResolveSolves counts distinct PE-array resolutions actually
	// searched.
	ResolveSolves int `json:"resolve_solves"`
}

// placeKey identifies one pseudo place-and-route problem.
type placeKey struct {
	design string
	k      int
	device string
}

// placeVal is a memoized placement (or its failure).
type placeVal struct {
	usage  fpga.Usage
	freqHz float64
	err    string
}

// partKey identifies one closed-form partition solve. params holds the
// comparable model parameter struct (LUParams/FWParams/MMParams); kind
// distinguishes the equation; arg carries the extra scalar some solves
// need (bf for Eq. 5, n for Eq. 6).
type partKey struct {
	kind   string
	params interface{}
	arg    int
}

// partVal is a memoized partition solution (two ints cover every
// solver: bf/bp, l/-, l1/l2).
type partVal struct {
	a, b int
}

// resolveKey identifies one largest-fitting-PE-array search (the
// PEs=0 sentinel resolution). Together with placeKey and partKey it
// forms the structured per-stage key family behind incremental
// evaluation: two grid points that differ in one axis share every
// stage whose key does not mention that axis, so a neighbor is
// delta-evaluated instead of re-derived. The key deliberately omits
// every axis the search does not depend on — app family (not app:
// lu and mm share the matmul array), device, and the block size only
// for FW, whose array must divide the block.
type resolveKey struct {
	family string
	device string
	b      int
}

// evaluator carries the memo caches behind one or more sweeps. Run
// builds a fresh unbounded one per call unless Options.Evaluator
// shares a long-lived instance (the codesignd serving path); either
// way each distinct placement or partition is solved exactly once per
// evaluator, so results stay deterministic.
type evaluator struct {
	place *cache.LRU[placeKey, placeVal]
	part  *cache.LRU[partKey, partVal]
	maxk  *cache.LRU[resolveKey, int]

	mu    sync.Mutex
	stats Stats

	// recs recycles span recorders across MethodSim grid points so
	// workers reuse warmed buffers instead of regrowing a span slice
	// per simulation. Recorders are returned by measured.
	recs sync.Pool
}

// newEvaluator builds an evaluator whose memo caches hold at most
// bound entries each (0 = unbounded, the per-sweep mode).
func newEvaluator(bound int) *evaluator {
	ev := &evaluator{
		place: cache.NewLRU[placeKey, placeVal](bound),
		part:  cache.NewLRU[partKey, partVal](bound),
		maxk:  cache.NewLRU[resolveKey, int](bound),
	}
	ev.recs.New = func() any { return trace.NewRecorder() }
	return ev
}

// statsDelta returns the evaluator's cumulative stats minus a prior
// snapshot — the traffic attributable to one run when the evaluator
// is shared.
func (ev *evaluator) statsDelta(before Stats) Stats {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	s := ev.stats
	s.PlaceLookups -= before.PlaceLookups
	s.PlaceSolves -= before.PlaceSolves
	s.PartitionLookups -= before.PartitionLookups
	s.PartitionSolves -= before.PartitionSolves
	s.ResolveLookups -= before.ResolveLookups
	s.ResolveSolves -= before.ResolveSolves
	return s
}

// recorder checks out a reset span recorder from the pool.
func (ev *evaluator) recorder() *trace.Recorder {
	rec := ev.recs.Get().(*trace.Recorder)
	rec.Reset()
	return rec
}

// placed returns the memoized pseudo place-and-route solution for the
// design on the device. The compute happens under the cache lock
// (cache.LRU.GetOrCompute), so each distinct placement is solved
// exactly once per evaluator no matter how many workers race for it.
func (ev *evaluator) placed(d fpga.Design, dev fpga.Device) (placeVal, error) {
	key := placeKey{design: d.Name(), k: d.PEs(), device: dev.Name}
	v, computed := ev.place.GetOrCompute(key, func() placeVal {
		p, err := fpga.Place(d, dev)
		if err != nil {
			return placeVal{err: err.Error()}
		}
		return placeVal{usage: d.Resources(), freqHz: p.FreqHz}
	})
	ev.mu.Lock()
	ev.stats.PlaceLookups++
	if computed {
		ev.stats.PlaceSolves++
	}
	ev.mu.Unlock()
	if v.err != "" {
		return v, fmt.Errorf("%s", v.err)
	}
	return v, nil
}

// partition returns the memoized solution of one closed-form solve,
// computing it via solve under the cache lock on first use.
func (ev *evaluator) partition(key partKey, solve func() (int, int)) (int, int) {
	v, computed := ev.part.GetOrCompute(key, func() partVal {
		a, b := solve()
		return partVal{a: a, b: b}
	})
	ev.mu.Lock()
	ev.stats.PartitionLookups++
	if computed {
		ev.stats.PartitionSolves++
	}
	ev.mu.Unlock()
	return v.a, v.b
}

// paper-default problem sizes per app (Section 6.1; spmv has no paper
// size — its default keeps a dense-operator point affordable under
// MethodSim).
func appDefaults(app string) (n, b int) {
	switch app {
	case "lu":
		return 30000, 3000
	case "fw":
		return 18432, 256
	case "spmv":
		return 2048, 0
	default: // mm
		return 6144, 0
	}
}

func modeByName(name string) core.Mode {
	switch name {
	case "processor-only":
		return core.ProcessorOnly
	case "fpga-only":
		return core.FPGAOnly
	default:
		return core.Hybrid
	}
}

// resolved is a Point with sentinels replaced: concrete machine
// config, problem/block sizes and PE count.
type resolved struct {
	pt   Point
	cfg  machine.Config
	mode core.Mode
	n, b int
	k    int
	of   int
}

// fail builds an infeasible outcome.
func fail(err error) Outcome { return Outcome{Err: err.Error()} }

// resolve fills a point's sentinel values: the machine config (preset
// + node override), app-default sizes, and the PE count (largest
// fitting array when 0, shrunk to divide the FW block size as the
// paper does).
func (ev *evaluator) resolve(pt Point) (resolved, error) {
	cfg, err := machine.Preset(pt.Machine)
	if err != nil {
		return resolved{}, err
	}
	cfg = cfg.WithNodes(pt.Nodes)
	r := resolved{pt: pt, cfg: cfg, mode: modeByName(pt.Mode), n: pt.N, b: pt.B}
	dn, db := appDefaults(pt.App)
	if r.n == 0 {
		r.n = dn
	}
	if r.b == 0 {
		r.b = db
	}
	mk := func(k int) fpga.Design { return fpga.NewMatMul(k) }
	switch pt.App {
	case "fw":
		mk = func(k int) fpga.Design { return fpga.NewFW(k) }
	case "spmv":
		mk = func(k int) fpga.Design { return fpga.NewMV(k) }
	}
	r.k = pt.PEs
	if r.k == 0 {
		// Memoized by (family, device, b-for-FW): every grid point that
		// leaves PEs unset shares the same search unless it changes one
		// of those axes, so a million-point sweep pays for a handful of
		// MaxPEs searches instead of one per point.
		key := resolveKey{family: "matmul", device: cfg.Device.Name}
		switch pt.App {
		case "fw":
			key.family, key.b = "fw", r.b
		case "spmv":
			key.family = "mv"
		}
		k, computed := ev.maxk.GetOrCompute(key, func() int {
			k := fpga.MaxPEs(mk, cfg.Device)
			if pt.App == "fw" {
				// Largest PE count dividing the block size (mkmachine's
				// convention for non-power-of-two blocks).
				for k > 1 && r.b%k != 0 {
					k--
				}
			}
			return k
		})
		ev.mu.Lock()
		ev.stats.ResolveLookups++
		if computed {
			ev.stats.ResolveSolves++
		}
		ev.mu.Unlock()
		r.k = k
	}
	if r.k < 1 {
		return r, fmt.Errorf("no %s PE array fits %s", pt.App, cfg.Device.Name)
	}
	r.of = 2 * r.k // both PE arrays do two flops per PE per cycle
	return r, nil
}

// evaluate runs one grid point under the given method.
func (ev *evaluator) evaluate(pt Point, method string) Outcome {
	r, err := ev.resolve(pt)
	if err != nil {
		return fail(err)
	}
	switch pt.App {
	case "lu":
		return ev.evalLU(r, method)
	case "fw":
		return ev.evalFW(r, method)
	case "spmv":
		return ev.evalSpMV(r, method)
	default:
		return ev.evalMM(r, method)
	}
}

// design returns the placed design's outcome skeleton: PE geometry,
// clock, resource usage and effective DRAM bandwidth.
func (ev *evaluator) design(r resolved, d fpga.Design) (Outcome, float64, error) {
	pv, err := ev.placed(d, r.cfg.Device)
	if err != nil {
		return Outcome{}, 0, err
	}
	bd := machine.EffectiveBd(r.cfg.RawFPGADRAMBandwidth, pv.freqHz)
	return Outcome{
		OK: true, K: r.k, Of: r.of, FfMHz: pv.freqHz / 1e6,
		Slices: pv.usage.Slices, BlockRAMs: pv.usage.BlockRAMs, Multipliers: pv.usage.Multipliers,
		BdGBps: bd / 1e9,
	}, bd, nil
}

// sramBytes is the on-board memory budget the designs allocate: half
// of the node's QDR-II capacity, matching internal/core's runs.
func sramBytes(cfg machine.Config) int64 {
	return int64(cfg.SRAMBanks) * cfg.SRAMBankBytes / 2
}

func (ev *evaluator) evalLU(r resolved, method string) Outcome {
	cfg, n, b := r.cfg, r.n, r.b
	p := cfg.Nodes
	switch {
	case p < 2:
		return fail(fmt.Errorf("lu needs p >= 2, got %d", p))
	case n%b != 0:
		return fail(fmt.Errorf("block size %d must divide n=%d", b, n))
	case b%(p-1) != 0:
		return fail(fmt.Errorf("block size %d must be a multiple of p-1=%d", b, p-1))
	case b%r.k != 0:
		return fail(fmt.Errorf("block size %d must be a multiple of k=%d", b, r.k))
	}
	out, bd, err := ev.design(r, fpga.NewMatMul(r.k))
	if err != nil {
		return fail(err)
	}
	proc := cfg.Processor()
	lp := model.LUParams{
		P: p, B: b, K: r.k,
		Ff:         out.FfMHz * 1e6,
		StripeRate: proc.Rate(cpu.DGEMMStripe),
		LURate:     proc.Rate(cpu.DGETRF),
		TrsmRate:   proc.Rate(cpu.DTRSM),
		Bd:         bd,
		Bn:         cfg.Fabric.LinkBandwidth,
		Bw:         machine.WordBytes,
		SRAMBytes:  sramBytes(cfg),
	}
	if err := lp.Validate(); err != nil {
		return fail(err)
	}
	// Resolve the partition exactly as core.RunLU does.
	bf := r.pt.BF
	switch r.mode {
	case core.ProcessorOnly:
		bf = 0
	case core.FPGAOnly:
		bf = b
	default:
		if bf < 0 {
			bf, _ = ev.partition(partKey{kind: "lu.bf", params: lp}, lp.SolvePartition)
		}
	}
	if bf < 0 || bf > b {
		return fail(fmt.Errorf("bf=%d out of [0,%d]", bf, b))
	}
	l := r.pt.L
	if l < 0 {
		l, _ = ev.partition(partKey{kind: "lu.l", params: lp, arg: bf},
			func() (int, int) { return lp.SolveL(bf), 0 })
	}
	out.BF, out.BP, out.L = bf, b-bf, l

	if method == MethodModel {
		pred := lp.PredictLU(n, bf)
		out.GFLOPS, out.Seconds, out.PredictedGFLOPS = pred.GFLOPS, pred.Seconds, pred.GFLOPS
		bind, margin := lp.StripeBinding(bf)
		out.Binding, out.Margin = bind.String(), margin
		return out
	}

	rec := ev.recorder()
	res, err := core.RunLU(core.LUConfig{
		Machine: cfg, N: n, B: b, PEs: r.k, BF: r.pt.BF, L: r.pt.L,
		Mode: r.mode, Observer: rec,
	})
	if err != nil {
		ev.recs.Put(rec)
		return fail(err)
	}
	expect, _ := res.Model.StripeBinding(res.BF)
	return ev.measured(out, &res.Result, res.Prediction, rec,
		map[string]model.Binding{"opmm": expect},
		func(o *Outcome) { o.BF, o.BP, o.L = res.BF, res.BP, res.L })
}

func (ev *evaluator) evalFW(r resolved, method string) Outcome {
	cfg, n, b := r.cfg, r.n, r.b
	p := cfg.Nodes
	switch {
	case b*p == 0 || n%(b*p) != 0:
		return fail(fmt.Errorf("b*p=%d must divide n=%d", b*p, n))
	case b%r.k != 0:
		return fail(fmt.Errorf("block size %d must be a multiple of k=%d", b, r.k))
	}
	out, bd, err := ev.design(r, fpga.NewFW(r.k))
	if err != nil {
		return fail(err)
	}
	proc := cfg.Processor()
	fp := model.FWParams{
		P: p, B: b, K: r.k,
		Ff:        out.FfMHz * 1e6,
		FWRate:    proc.Rate(cpu.FWKernel),
		Bd:        bd,
		Bn:        cfg.Fabric.LinkBandwidth,
		Bw:        machine.WordBytes,
		SRAMBytes: sramBytes(cfg),
	}
	if err := fp.Validate(); err != nil {
		return fail(err)
	}
	total := fp.OpsPerPhase(n)
	l1 := r.pt.L
	switch r.mode {
	case core.ProcessorOnly:
		l1 = total
	case core.FPGAOnly:
		l1 = 0
	default:
		if l1 < 0 {
			l1, _ = ev.partition(partKey{kind: "fw.l1", params: fp, arg: n},
				func() (int, int) { return fp.SolveSplit(n) })
		}
	}
	if l1 < 0 || l1 > total {
		return fail(fmt.Errorf("l1=%d out of [0,%d]", l1, total))
	}
	out.L1, out.L2 = l1, total-l1

	if method == MethodModel {
		pred := fp.PredictFW(n, l1, total-l1)
		out.GFLOPS, out.Seconds, out.PredictedGFLOPS = pred.GFLOPS, pred.Seconds, pred.GFLOPS
		bind, margin := fp.PhaseBinding(l1, total-l1)
		out.Binding, out.Margin = bind.String(), margin
		return out
	}

	gridL1 := r.pt.L
	if r.mode != core.Hybrid {
		gridL1 = -1 // RunFW derives baseline splits itself
	}
	rec := ev.recorder()
	res, err := core.RunFW(core.FWConfig{
		Machine: cfg, N: n, B: b, PEs: r.k, L1: gridL1,
		Mode: r.mode, Observer: rec,
	})
	if err != nil {
		ev.recs.Put(rec)
		return fail(err)
	}
	expect, _ := res.Model.PhaseBinding(res.L1, res.L2)
	return ev.measured(out, &res.Result, res.Prediction, rec,
		map[string]model.Binding{"op": expect},
		func(o *Outcome) { o.L1, o.L2 = res.L1, res.L2 })
}

func (ev *evaluator) evalMM(r resolved, method string) Outcome {
	cfg, n := r.cfg, r.n
	p := cfg.Nodes
	switch {
	case n%r.k != 0:
		return fail(fmt.Errorf("n=%d must be a multiple of k=%d", n, r.k))
	case n%p != 0:
		return fail(fmt.Errorf("n=%d must be a multiple of p=%d", n, p))
	}
	out, bd, err := ev.design(r, fpga.NewMatMul(r.k))
	if err != nil {
		return fail(err)
	}
	proc := cfg.Processor()
	mp := model.MMParams{
		P: p, N: n, K: r.k,
		Ff:         out.FfMHz * 1e6,
		StripeRate: proc.Rate(cpu.DGEMMStripe),
		Bd:         bd,
		Bw:         machine.WordBytes,
		SRAMBytes:  sramBytes(cfg),
	}
	if err := mp.Validate(); err != nil {
		return fail(err)
	}
	bf := r.pt.BF
	switch r.mode {
	case core.ProcessorOnly:
		bf = 0
	case core.FPGAOnly:
		bf = n
	default:
		if bf < 0 {
			bf, _ = ev.partition(partKey{kind: "mm.bf", params: mp}, mp.SolvePartition)
		}
	}
	if bf < 0 || bf > n {
		return fail(fmt.Errorf("bf=%d out of [0,%d]", bf, n))
	}
	out.BF, out.BP = bf, n-bf

	if method == MethodModel {
		pred := mp.PredictMM(bf)
		out.GFLOPS, out.Seconds, out.PredictedGFLOPS = pred.GFLOPS, pred.Seconds, pred.GFLOPS
		bind, margin := mp.StripeBinding(bf)
		out.Binding, out.Margin = bind.String(), margin
		return out
	}

	rec := ev.recorder()
	res, err := core.RunMM(core.MMConfig{
		Machine: cfg, N: n, PEs: r.k, BF: r.pt.BF,
		Mode: r.mode, Observer: rec,
	})
	if err != nil {
		ev.recs.Put(rec)
		return fail(err)
	}
	expect, _ := res.Model.StripeBinding(res.BF)
	return ev.measured(out, &res.Result, res.Prediction, rec,
		map[string]model.Binding{"stripe": expect},
		func(o *Outcome) { o.BF, o.BP = res.BF, res.BP })
}

func (ev *evaluator) evalSpMV(r resolved, method string) Outcome {
	cfg, n := r.cfg, r.n
	out, bd, err := ev.design(r, fpga.NewMV(r.k))
	if err != nil {
		return fail(err)
	}
	proc := cfg.Processor()
	// The operator's stream footprint mirrors matrix.RandomSparse
	// exactly — round(density·(n-1)) off-diagonals plus the diagonal per
	// row — so the model method prices the same operator the sim method
	// materializes.
	var words, nnz int
	mvRate := proc.Rate(cpu.DGEMV)
	if r.pt.Density > 0 {
		perRow := int(r.pt.Density*float64(n-1) + 0.5)
		nnz = n * (perRow + 1)
		words = model.CSRStreamWords(nnz)
		mvRate = proc.Rate(cpu.SpMV)
	} else {
		nnz = n * n
		words = n * n
	}
	sp := model.SpMVParams{
		N: n, K: r.k, Words: words,
		Ff:        out.FfMHz * 1e6,
		MVRate:    mvRate,
		Bd:        bd,
		Bs:        cfg.SRAMBandwidth,
		Bw:        machine.WordBytes,
		SRAMBytes: sramBytes(cfg),
		Applies:   1,
		Flops:     2 * float64(nnz),
	}
	if err := sp.Validate(); err != nil {
		return fail(err)
	}
	rf := r.pt.BF
	switch r.mode {
	case core.ProcessorOnly:
		rf = 0
	case core.FPGAOnly:
		rf = n
	default:
		if rf < 0 {
			rf, _ = ev.partition(partKey{kind: "spmv.rf", params: sp}, sp.SolvePartition)
		}
	}
	if rf < 0 || rf > n {
		return fail(fmt.Errorf("rowsFPGA=%d out of [0,%d]", rf, n))
	}
	out.BF, out.BP = rf, n-rf

	if method == MethodModel {
		pred := sp.PredictSpMV(rf)
		out.GFLOPS, out.Seconds, out.PredictedGFLOPS = pred.GFLOPS, pred.Seconds, pred.GFLOPS
		bind, margin := sp.StripeBinding(rf)
		out.Binding, out.Margin = bind.String(), margin
		return out
	}

	rec := ev.recorder()
	res, err := core.RunSpMV(core.SpMVConfig{
		Machine: cfg, N: n, Density: r.pt.Density, PEs: r.k, RowsFPGA: r.pt.BF,
		Mode: r.mode, Observer: rec,
	})
	if err != nil {
		ev.recs.Put(rec)
		return fail(err)
	}
	expect, _ := res.Model.StripeBinding(res.RowsFPGA)
	return ev.measured(out, &res.Result, res.Prediction, rec,
		map[string]model.Binding{"stream": expect},
		func(o *Outcome) { o.BF, o.BP = res.RowsFPGA, res.RowsCPU })
}

// measured finishes a MethodSim outcome: measured throughput, the
// Section 4.5 prediction, the telemetry overlap efficiency, and the
// dominant phase's measured binding from the internal/analysis
// bottleneck classifier. It consumes rec — the span digest runs on the
// recorder's buffer in place and the recorder returns to the pool — so
// callers must not touch rec afterwards.
func (ev *evaluator) measured(out Outcome, res *core.Result, pred model.Prediction,
	rec *trace.Recorder, expected map[string]model.Binding, fill func(*Outcome)) Outcome {
	defer ev.recs.Put(rec)
	out.GFLOPS, out.Seconds, out.PredictedGFLOPS = res.GFLOPS, res.Seconds, pred.GFLOPS
	// Digest the sweep's own recorder instead of asking the run for a
	// full telemetry summary: ComputeOverlap over the same span stream
	// and makespan yields the identical efficiency at a fraction of the
	// cost (no per-process/per-resource digest per grid point).
	out.OverlapEfficiency = trace.ComputeOverlap(rec.SpansView(), res.Seconds).Efficiency()
	fill(&out)
	phases := analysis.ClassifyPhases(rec.SpansView(), expected)
	var busiest *analysis.PhaseStats
	for i := range phases {
		if phases[i].Phase == "" {
			continue
		}
		if busiest == nil || phases[i].TotalBusy() > busiest.TotalBusy() {
			busiest = &phases[i]
		}
	}
	if busiest != nil {
		out.Binding, out.Margin = busiest.Binding.String(), busiest.Margin
	}
	return out
}
