package sweep

import (
	"bytes"
	"context"
	"testing"
)

func TestMarkParetoTiesAndDuplicates(t *testing.T) {
	ok := func(g, s, bd float64) Outcome {
		return Outcome{OK: true, GFLOPS: g, Slices: int(s), BdGBps: bd}
	}
	cases := []struct {
		name     string
		outcomes []Outcome
		want     []int
	}{
		{
			// Exact duplicates never eliminate each other: neither is
			// strictly better on any objective.
			name:     "duplicates both on frontier",
			outcomes: []Outcome{ok(10, 100, 1), ok(10, 100, 1)},
			want:     []int{0, 1},
		},
		{
			// A tie on two objectives with a strict win on the third is
			// domination.
			name:     "two-axis tie one-axis win dominates",
			outcomes: []Outcome{ok(10, 100, 1), ok(11, 100, 1)},
			want:     []int{1},
		},
		{
			// Mutually non-dominated: each wins one objective.
			name:     "trade-off keeps both",
			outcomes: []Outcome{ok(10, 100, 1), ok(12, 200, 1)},
			want:     []int{0, 1},
		},
		{
			// A duplicate pair plus a strict dominator: the dominator
			// eliminates both copies.
			name:     "dominator beats duplicate pair",
			outcomes: []Outcome{ok(10, 100, 1), ok(10, 100, 1), ok(11, 90, 1)},
			want:     []int{2},
		},
		{
			// Infeasible points neither join nor defend the frontier,
			// even with unbeatable numbers.
			name:     "infeasible ignored",
			outcomes: []Outcome{{OK: false, GFLOPS: 99}, ok(10, 100, 1)},
			want:     []int{1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outcomes := append([]Outcome(nil), tc.outcomes...)
			got := markPareto(outcomes)
			if len(got) != len(tc.want) {
				t.Fatalf("frontier = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("frontier = %v, want %v", got, tc.want)
				}
			}
			for i := range outcomes {
				onFrontier := false
				for _, j := range got {
					onFrontier = onFrontier || i == j
				}
				if outcomes[i].Pareto != onFrontier {
					t.Errorf("outcome %d: Pareto=%v, frontier membership=%v", i, outcomes[i].Pareto, onFrontier)
				}
			}
		})
	}
}

func TestSensitivitySingleAxisGrid(t *testing.T) {
	// Only the PE axis varies: exactly one table, covering it.
	g := Grid{Apps: []string{"lu"}, PEs: []int{2, 4, 8}}
	res, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sensitivity) != 1 {
		t.Fatalf("got %d sensitivity tables, want 1 (only pes varies)", len(res.Sensitivity))
	}
	tab := res.Sensitivity[0]
	if tab.Param != "pes" {
		t.Fatalf("table param = %q, want pes", tab.Param)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(tab.Rows))
	}
	for i, want := range []string{"2", "4", "8"} {
		if tab.Rows[i].Value != want {
			t.Errorf("row %d value = %q, want %q (enumeration order)", i, tab.Rows[i].Value, want)
		}
		if tab.Rows[i].Count != 1 {
			t.Errorf("row %d count = %d, want 1", i, tab.Rows[i].Count)
		}
	}

	// A single-point grid varies no axis at all: no tables.
	g = Grid{Apps: []string{"lu"}}
	if res, err = Run(context.Background(), g, Options{}); err != nil {
		t.Fatal(err)
	}
	if len(res.Sensitivity) != 0 {
		t.Fatalf("single-point grid produced %d sensitivity tables, want 0", len(res.Sensitivity))
	}
}

// frontierIndexSet collects the original grid Index of every frontier
// point, so full-grid and screened results compare on common ground.
func frontierIndexSet(res *Result) map[int]bool {
	set := make(map[int]bool, len(res.ParetoIndices))
	for _, i := range res.ParetoIndices {
		set[res.Points[i].Index] = true
	}
	return set
}

func TestScreenedFrontierMatchesFullSim(t *testing.T) {
	// Property: on a grid where the model's ranking error stays inside
	// the default margin, screened+refined sim must reproduce the full
	// sim sweep's Pareto frontier exactly.
	g := Grid{
		Apps: []string{"lu"},
		N:    []int{120}, B: []int{40},
		Modes:  []string{"hybrid", "processor-only"},
		PEs:    []int{2, 4, 6, 8},
		L:      []int{-1, 2, 4},
		Method: MethodSim,
	}
	full, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scr, err := RunScreened(context.Background(), g, ScreenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if scr.Screen == nil {
		t.Fatal("screened result has no ScreenSummary")
	}
	if scr.Screen.Points != len(full.Points) {
		t.Errorf("Screen.Points = %d, want %d", scr.Screen.Points, len(full.Points))
	}
	if scr.Screen.Candidates >= scr.Screen.Points {
		t.Errorf("screening kept all %d points — no pruning at all", scr.Screen.Points)
	}
	wantSet, gotSet := frontierIndexSet(full), frontierIndexSet(scr)
	if len(wantSet) == 0 {
		t.Fatal("full sweep has empty frontier; grid too degenerate for the property")
	}
	for idx := range wantSet {
		if !gotSet[idx] {
			t.Errorf("full-sim frontier point index=%d missing from screened frontier", idx)
		}
	}
	for idx := range gotSet {
		if !wantSet[idx] {
			t.Errorf("screened frontier has extra point index=%d not on full-sim frontier", idx)
		}
	}
	// Refined outcomes must match the full sweep's bit-for-bit: same
	// evaluator, same method, same point.
	for i, pt := range scr.Points {
		fo := full.Outcomes[pt.Index]
		so := scr.Outcomes[i]
		if fo.GFLOPS != so.GFLOPS || fo.OK != so.OK {
			t.Errorf("point index=%d: refined GFLOPS=%v OK=%v, full GFLOPS=%v OK=%v",
				pt.Index, so.GFLOPS, so.OK, fo.GFLOPS, fo.OK)
		}
	}
}

func TestRunScreenedSummaryArithmetic(t *testing.T) {
	res, err := RunScreened(context.Background(), bigGrid(), ScreenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc := res.Screen
	if sc == nil {
		t.Fatal("no ScreenSummary")
	}
	if sc.Margin != DefaultRefineMargin {
		t.Errorf("Margin = %v, want default %v", sc.Margin, DefaultRefineMargin)
	}
	if sc.Points != 126 {
		t.Errorf("Screen.Points = %d, want 126", sc.Points)
	}
	if got := sc.Frontier + sc.Band + sc.Neighbors; got != sc.Candidates {
		t.Errorf("Frontier+Band+Neighbors = %d, want Candidates = %d", got, sc.Candidates)
	}
	if sc.Candidates != len(res.Points) {
		t.Errorf("Candidates = %d, but result has %d points", sc.Candidates, len(res.Points))
	}
	if res.Stats.Points != sc.Candidates {
		t.Errorf("Stats.Points = %d, want refined subset size %d", res.Stats.Points, sc.Candidates)
	}
	// Candidates stay in ascending enumeration order with their
	// original grid Index.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Index <= res.Points[i-1].Index {
			t.Fatalf("candidate order not ascending: Index %d after %d", res.Points[i].Index, res.Points[i-1].Index)
		}
	}
}

func TestRunScreenedRejectsNegativeMargin(t *testing.T) {
	_, err := RunScreened(context.Background(), bigGrid(), ScreenOptions{RefineMargin: -0.5})
	if err == nil {
		t.Fatal("negative RefineMargin accepted")
	}
}

func TestRunScreenedDeterministicAcrossWorkers(t *testing.T) {
	runScreenedJSON := func(workers int) []byte {
		res, err := RunScreened(context.Background(), bigGrid(), ScreenOptions{Options: Options{Workers: workers}})
		if err != nil {
			t.Fatalf("RunScreened(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(runScreenedJSON(1), runScreenedJSON(8)) {
		t.Fatal("screened JSON output differs between worker counts")
	}
}

func TestRunScreenedProgressPhases(t *testing.T) {
	var phases []string
	var totals []int
	_, err := RunScreened(context.Background(), bigGrid(), ScreenOptions{Options: Options{
		Workers: 2,
		OnProgress: func(p Progress) {
			if n := len(phases); n == 0 || phases[n-1] != p.Phase {
				phases = append(phases, p.Phase)
				totals = append(totals, p.Total)
			}
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 || phases[0] != "screen" || phases[1] != "refine" {
		t.Fatalf("observed phases %v, want [screen refine]", phases)
	}
	if totals[0] != 126 {
		t.Errorf("screen phase Total = %d, want 126", totals[0])
	}
	if totals[1] >= totals[0] {
		t.Errorf("refine phase Total = %d, want < screen total %d", totals[1], totals[0])
	}
}

func TestResolveMemoization(t *testing.T) {
	// Every bigGrid point has PEs=0, so each evaluation resolves the
	// device's largest matmul array; the memo must solve it once.
	res, err := Run(context.Background(), bigGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.ResolveSolves != 1 {
		t.Errorf("ResolveSolves = %d, want 1", s.ResolveSolves)
	}
	if s.ResolveLookups < s.Points {
		t.Errorf("ResolveLookups = %d, want >= %d (one per point)", s.ResolveLookups, s.Points)
	}
}
