package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomProgram spawns a pseudo-random mix of processes that wait,
// contend for resources, exchange mailbox messages and meet at
// barriers, then returns a digest of the resulting schedule.
func randomProgram(seed int64) (finalTime float64, digest string) {
	rng := rand.New(rand.NewSource(seed))
	e := New()
	nProcs := 2 + rng.Intn(5)
	res := NewResource(e, "shared", 1+rng.Intn(2))
	mb := NewMailbox(e, "box")
	bar := NewBarrier(e, "bar", nProcs)
	var log []string

	// Pre-generate per-process op scripts so goroutine scheduling
	// cannot influence the virtual program.
	type op struct {
		kind int
		dt   float64
	}
	scripts := make([][]op, nProcs)
	for i := range scripts {
		n := 1 + rng.Intn(6)
		for j := 0; j < n; j++ {
			scripts[i] = append(scripts[i], op{kind: rng.Intn(3), dt: rng.Float64()})
		}
	}

	for i := 0; i < nProcs; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for _, o := range scripts[i] {
				switch o.kind {
				case 0:
					p.Wait(o.dt)
				case 1:
					res.Use(p, o.dt)
				case 2:
					mb.Put(i)
					p.Wait(o.dt / 2)
				}
				log = append(log, fmt.Sprintf("%s@%.9f", p.Name(), p.Now()))
			}
			bar.Arrive(p)
		})
	}
	if err := e.Run(0); err != nil {
		return -1, err.Error()
	}
	return e.Now(), fmt.Sprint(log)
}

func TestPropRandomProgramsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		t1, d1 := randomProgram(seed)
		t2, d2 := randomProgram(seed)
		return t1 == t2 && d1 == d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropResourceNeverOversubscribed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		capN := 1 + rng.Intn(3)
		r := NewResource(e, "r", capN)
		ok := true
		for i := 0; i < 6; i++ {
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					r.Acquire(p)
					if r.InUse() > capN {
						ok = false
					}
					p.Wait(rng.Float64())
					r.Release()
				}
			})
		}
		if err := e.Run(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropClockMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		last := -1.0
		mono := true
		for i := 0; i < 4; i++ {
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Wait(rng.Float64())
					if p.Now() < last {
						mono = false
					}
					last = p.Now()
				}
			})
		}
		if err := e.Run(0); err != nil {
			return false
		}
		return mono
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
