package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startDaemon runs the daemon on an ephemeral port and returns its
// base URL and a stop func that waits for a clean exit.
func startDaemon(t *testing.T, o options) (string, func()) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	o.Addr = "127.0.0.1:0"
	o.Quiet = true
	o.Drain = 5 * time.Second
	o.ready = func(addr string) { ready <- addr }
	o.stop = stop
	go func() { done <- run(o, io.Discard) }()
	select {
	case addr := <-ready:
		return "http://" + addr, func() {
			close(stop)
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("run returned %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Error("daemon did not shut down")
			}
		}
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil
}

// TestServeSolveAndShutdown boots the daemon, solves a point, scrapes
// metrics, and shuts down gracefully.
func TestServeSolveAndShutdown(t *testing.T) {
	url, stop := startDaemon(t, options{})
	defer stop()

	resp, err := http.Post(url+"/v1/solve", "application/json",
		strings.NewReader(`{"app":"lu","pes":4}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d\n%s", resp.StatusCode, body)
	}
	var sr struct {
		Outcome struct {
			OK     bool    `json:"ok"`
			GFLOPS float64 `json:"gflops"`
		} `json:"outcome"`
		Source string `json:"source"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Outcome.OK || sr.Outcome.GFLOPS <= 0 || sr.Source != "computed" {
		t.Fatalf("solve response = %+v", sr)
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(metrics, []byte("codesignd_solve_cache_misses_total 1")) {
		t.Fatalf("/metrics missing solve traffic:\n%s", metrics)
	}
}

// TestConfigPlumbing asserts the flag values reach serve.Config.
func TestConfigPlumbing(t *testing.T) {
	o := options{CacheBound: 7, MaxInFlight: 3, MaxQueue: 9, RequestTimeout: time.Minute}
	cfg := o.config()
	if cfg.CacheBound != 7 || cfg.MaxInFlight != 3 || cfg.MaxQueue != 9 || cfg.RequestTimeout != time.Minute {
		t.Fatalf("config = %+v", cfg)
	}
}

// TestCacheFilePersistence boots with -cache-file, solves a point,
// drains (snapshotting the cache), then boots a second daemon from the
// snapshot and asserts the same solve is served from cache.
func TestCacheFilePersistence(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "solve.cache")
	solve := func(url string) string {
		t.Helper()
		resp, err := http.Post(url+"/v1/solve", "application/json",
			strings.NewReader(`{"app":"lu","pes":4}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve: %d\n%s", resp.StatusCode, body)
		}
		var sr struct {
			Source string `json:"source"`
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		return sr.Source
	}

	url, stop := startDaemon(t, options{CacheFile: cacheFile})
	if got := solve(url); got != "computed" {
		t.Fatalf("first-boot solve source = %q, want computed", got)
	}
	stop()
	if _, err := os.Stat(cacheFile); err != nil {
		t.Fatalf("no snapshot written on drain: %v", err)
	}

	url, stop = startDaemon(t, options{CacheFile: cacheFile})
	defer stop()
	if got := solve(url); got != "cache" {
		t.Fatalf("warm-boot solve source = %q, want cache", got)
	}
}

// TestCacheFileBadSnapshotStartsCold asserts a corrupt snapshot is
// logged and skipped, never fatal.
func TestCacheFileBadSnapshotStartsCold(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "solve.cache")
	if err := os.WriteFile(cacheFile, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	url, stop := startDaemon(t, options{CacheFile: cacheFile})
	defer stop()
	resp, err := http.Post(url+"/v1/solve", "application/json", strings.NewReader(`{"app":"lu"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after bad snapshot: %d", resp.StatusCode)
	}
}
