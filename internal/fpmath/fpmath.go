package fpmath

import (
	"math"
	"math/bits"
)

const (
	expBits  = 11
	fracBits = 52
	expMask  = 1<<expBits - 1
	fracMask = uint64(1)<<fracBits - 1
	signBit  = uint64(1) << 63
	bias     = 1023

	// QNaNBits is the canonical quiet NaN produced by the cores.
	QNaNBits = uint64(0x7FF8000000000000)
	// InfBits is +Inf without a sign.
	InfBits = uint64(0x7FF0000000000000)
)

func unpack(x uint64) (sign uint64, exp int, frac uint64) {
	return x & signBit, int(x>>fracBits) & expMask, x & fracMask
}

func isNaN(exp int, frac uint64) bool  { return exp == expMask && frac != 0 }
func isInf(exp int, frac uint64) bool  { return exp == expMask && frac == 0 }
func isZero(exp int, frac uint64) bool { return exp == 0 && frac == 0 }

// normSig returns the significand with the implicit bit at position 52
// and the adjusted exponent, normalizing subnormal inputs (for which the
// returned exponent may be <= 0). The represented value is
// m * 2^(e - bias - 52).
func normSig(exp int, frac uint64) (m uint64, e int) {
	if exp != 0 {
		return frac | 1<<fracBits, exp
	}
	// Subnormal: shift the fraction up until bit 52 is set.
	shift := bits.LeadingZeros64(frac) - (63 - fracBits)
	return frac << shift, 1 - shift
}

// rshiftSticky shifts the 128-bit value hi:lo right by s >= 1 and
// returns the shifted value (which must fit in 64 bits), the guard bit
// (the highest bit shifted out) and the sticky bit (OR of all lower
// shifted-out bits).
func rshiftSticky(hi, lo uint64, s uint) (out uint64, guard, sticky bool) {
	switch {
	case s == 0:
		return lo, false, false
	case s < 64:
		out = hi<<(64-s) | lo>>s
		guard = lo>>(s-1)&1 == 1
		sticky = lo<<(65-s) != 0 // bits 0..s-2
		return out, guard, sticky
	case s == 64:
		return hi, lo>>63 == 1, lo<<1 != 0
	case s < 128:
		t := s - 64
		out = hi >> t
		guard = hi>>(t-1)&1 == 1
		sticky = hi<<(65-t) != 0 || lo != 0
		return out, guard, sticky
	case s == 128:
		return 0, hi>>63 == 1, hi<<1 != 0 || lo != 0
	default:
		return 0, false, hi != 0 || lo != 0
	}
}

// roundPack rounds the significand m (with guard/sticky) to nearest-even
// and packs sign, biased exponent er (0 for subnormal) and m into IEEE
// bits. Rounding carries that push m across a binade or from subnormal
// to normal are handled by integer carry into the exponent field.
func roundPack(sign uint64, er int, m uint64, guard, sticky bool) uint64 {
	if guard && (sticky || m&1 == 1) {
		m++
	}
	if er >= expMask {
		return sign | InfBits
	}
	// For normals m holds the implicit bit; subtracting it and adding
	// er<<52 lets a carry from rounding bump the exponent naturally.
	if er > 0 {
		return sign + uint64(er)<<fracBits + (m - 1<<fracBits)
	}
	// Subnormal (or rounds up into the smallest normal).
	return sign + m
}

// Mul returns the IEEE-754 binary64 product of the operands given and
// returned as raw bit patterns.
func Mul(a, b uint64) uint64 {
	sa, ea, fa := unpack(a)
	sb, eb, fb := unpack(b)
	sign := (sa ^ sb) & signBit

	switch {
	case isNaN(ea, fa) || isNaN(eb, fb):
		return QNaNBits
	case isInf(ea, fa):
		if isZero(eb, fb) {
			return QNaNBits // Inf * 0
		}
		return sign | InfBits
	case isInf(eb, fb):
		if isZero(ea, fa) {
			return QNaNBits
		}
		return sign | InfBits
	case isZero(ea, fa) || isZero(eb, fb):
		return sign
	}

	ma, ea2 := normSig(ea, fa)
	mb, eb2 := normSig(eb, fb)
	hi, lo := bits.Mul64(ma, mb) // product in [2^104, 2^106)

	// Most significant bit position of the 128-bit product.
	t := 127 - bits.LeadingZeros64(hi)
	er := ea2 + eb2 - bias + t - 104
	shift := t - 52
	if er <= 0 {
		// Gradual underflow: shift further so the exponent field is 0.
		shift += 1 - er
		er = 0
	}
	m, guard, sticky := rshiftSticky(hi, lo, uint(shift))
	return roundPack(sign, er, m, guard, sticky)
}

// Add returns the IEEE-754 binary64 sum of the operands given and
// returned as raw bit patterns.
func Add(a, b uint64) uint64 {
	sa, ea, fa := unpack(a)
	sb, eb, fb := unpack(b)

	switch {
	case isNaN(ea, fa) || isNaN(eb, fb):
		return QNaNBits
	case isInf(ea, fa):
		if isInf(eb, fb) && sa != sb {
			return QNaNBits // Inf - Inf
		}
		return sa | InfBits
	case isInf(eb, fb):
		return sb | InfBits
	case isZero(ea, fa) && isZero(eb, fb):
		// +0 + +0 = +0, -0 + -0 = -0, mixed = +0 (round to nearest).
		return sa & sb
	case isZero(ea, fa):
		return b
	case isZero(eb, fb):
		return a
	}

	ma, ea2 := normSig(ea, fa)
	mb, eb2 := normSig(eb, fb)

	// Order so that (mh, eh) has the larger magnitude.
	sh, mh, eh := sa, ma, ea2
	sl, ml, el := sb, mb, eb2
	if eh < el || (eh == el && mh < ml) {
		sh, mh, eh, sl, ml, el = sl, ml, el, sh, mh, eh
	}

	// Work with 3 guard bits so a 1-bit alignment shift is lossless.
	gh := mh << 3
	gl := ml << 3
	d := uint(eh - el)
	var glShifted uint64
	var alignSticky bool
	if d == 0 {
		glShifted = gl
	} else {
		glShifted, _, _ = rshiftSticky(0, gl, d)
		// Fold everything lost in alignment (guard of that shift
		// included) into the sticky bit 0 of the aligned operand.
		if d >= 64 {
			alignSticky = gl != 0
			glShifted = 0
		} else {
			alignSticky = gl<<(64-d) != 0
		}
		if alignSticky {
			glShifted |= 1
		}
	}

	var s uint64
	if sh == sl {
		s = gh + glShifted
	} else {
		s = gh - glShifted
		if s == 0 {
			return 0 // exact cancellation yields +0 in round-to-nearest
		}
	}

	// s represents value = s * 2^(eh - 3 - bias - 52).
	es := eh - 3
	t := 63 - bits.LeadingZeros64(s)
	shift := t - 52
	er := es + shift
	if er <= 0 {
		shift += 1 - er
		er = 0
	}
	var m uint64
	var guard, sticky bool
	if shift > 0 {
		m, guard, sticky = rshiftSticky(0, s, uint(shift))
	} else {
		// Catastrophic cancellation: the alignment shift was at most
		// one bit, so the guard bits hold the exact value and the left
		// shift is exact.
		m = s << uint(-shift)
	}
	return roundPack(sh, er, m, guard, sticky)
}

// Sub returns a - b on raw bit patterns.
func Sub(a, b uint64) uint64 { return Add(a, b^signBit) }

// AddFloat is Add on float64 values.
func AddFloat(a, b float64) float64 {
	return math.Float64frombits(Add(math.Float64bits(a), math.Float64bits(b)))
}

// SubFloat is Sub on float64 values.
func SubFloat(a, b float64) float64 {
	return math.Float64frombits(Sub(math.Float64bits(a), math.Float64bits(b)))
}

// MulFloat is Mul on float64 values.
func MulFloat(a, b float64) float64 {
	return math.Float64frombits(Mul(math.Float64bits(a), math.Float64bits(b)))
}

// Less reports a < b in IEEE total-ish ordering used by the FW
// comparator core: NaN compares false against everything, -0 == +0.
func Less(a, b float64) bool { return a < b }

// MinFloat is the FW comparator core: it returns the smaller operand,
// propagating NaN if either input is NaN (matching a hardware
// min-reduce that flags invalid inputs).
func MinFloat(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if b < a {
		return b
	}
	return a
}
