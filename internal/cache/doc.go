// Package cache is the shared memoization substrate for expensive,
// deterministic solves: the pseudo place-and-route and Eq. 1/4/5/6
// partition solutions that internal/sweep reuses across grid points,
// and the full query-level solve cache behind the codesignd service
// (internal/serve).
//
// It offers three layers, each building on the previous:
//
//   - LRU: a size-bounded, hit/miss/eviction-instrumented
//     least-recently-used map. GetOrCompute runs the loader under the
//     cache lock, so a distinct key is computed exactly once no matter
//     how many goroutines race for it — the discipline the sweep
//     memoizer has always promised.
//   - Flight: single-flight request coalescing. Concurrent calls for
//     one key share a single loader execution; followers wait with
//     their own context, so a caller's deadline bounds its wait even
//     while the leader keeps computing.
//   - Loading: LRU + Flight composed into the serve layer's solve
//     cache — a lookup that reports whether the value came from cache,
//     from a coalesced in-flight computation, or from a fresh solve.
//
// Everything here is value-deterministic: for the solvers this caches,
// the same key always computes the same value, so caching (and
// eviction followed by recomputation) never changes results — only
// latency. Failed loads are never cached.
package cache
