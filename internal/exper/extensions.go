package exper

import (
	"fmt"

	"codesign/internal/core"
	"codesign/internal/cpu"
	"codesign/internal/machine"
)

// Extensions runs the broader-application study the paper's conclusion
// calls for: the same design model driving hybrid matrix multiplication
// (the Equation (1) case, from the authors' earlier work [22]) and
// hybrid Cholesky factorization (the third ScaLAPACK routine [10]).
func Extensions() (*Table, error) {
	t := &Table{
		ID:     "extensions",
		Title:  "Design model applied beyond the paper: matmul, Cholesky, QR (XD1, GFLOPS)",
		Header: []string{"app", "design", "gflops", "partition"},
		Notes: []string{
			"mm: n=6144 per-node multiply, no communication (pure Eq. 1)",
			"chol: n=30000, b=3000 — same trailing-update engine as LU at half the flops",
			"qr: n=30000, b=3000 — Householder panels broadcast, compact-WY updates split by Eq. 4",
			"cg: n=1024 dense SPD, single node — operator apply split by Eq. 1, FPGA share SRAM-resident",
		},
	}
	for _, m := range []core.Mode{core.Hybrid, core.ProcessorOnly, core.FPGAOnly} {
		r, err := core.RunMM(core.MMConfig{N: 6144, BF: -1, Mode: m})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"mm", m.String(), f2(r.GFLOPS),
			fmt.Sprintf("bf=%d/bp=%d", r.BF, r.BP)})
	}
	for _, m := range []core.Mode{core.Hybrid, core.ProcessorOnly, core.FPGAOnly} {
		r, err := core.RunCholesky(core.CholConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: m})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"chol", m.String(), f2(r.GFLOPS),
			fmt.Sprintf("bf=%d/l=%d", r.BF, r.L)})
	}
	for _, m := range []core.Mode{core.Hybrid, core.ProcessorOnly, core.FPGAOnly} {
		r, err := core.RunQR(core.QRConfig{N: 30000, B: 3000, BF: -1, Mode: m})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"qr", m.String(), f2(r.GFLOPS),
			fmt.Sprintf("bf=%d", r.BF)})
	}
	for _, m := range []core.Mode{core.Hybrid, core.ProcessorOnly, core.FPGAOnly} {
		r, err := core.RunCG(core.CGConfig{N: 1024, RowsFPGA: -1, Mode: m, Seed: 1})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"cg", m.String(), f2(r.GFLOPS),
			fmt.Sprintf("rf=%d/%d iters=%d", r.RowsFPGA, r.N, r.Iterations)})
	}
	return t, nil
}

// scaledProcessor returns an Opteron model with every sustained rate
// multiplied by f.
func scaledProcessor(f float64) func() *cpu.Processor {
	return func() *cpu.Processor {
		p := cpu.Opteron22()
		for k, v := range p.Sustained {
			p.Sustained[k] = v * f
		}
		p.Name = fmt.Sprintf("%s x%.2g", p.Name, f)
		return p
	}
}

// Sensitivity sweeps the system parameters the model exposes — network
// bandwidth Bn and processor power Op·Fp — and reports how the solved
// LU partition and the hybrid throughput respond. This is the
// "performance prediction for a given application" use of the model
// (Section 4.5) turned into an experiment.
func Sensitivity() (*Table, error) {
	t := &Table{
		ID:     "sensitivity",
		Title:  "LU hybrid sensitivity to system parameters (n=30000, b=3000)",
		Header: []string{"variant", "bf", "l", "gflops", "pred_gflops"},
		Notes: []string{
			"faster network: more of each stripe's time budget goes to compute",
			"faster processor: Eq. 4 shifts rows from the FPGA to the CPU",
		},
	}
	type variant struct {
		name string
		mut  func(*machine.Config)
	}
	for _, v := range []variant{
		{"baseline XD1", func(*machine.Config) {}},
		{"Bn x0.25", func(c *machine.Config) { c.Fabric.LinkBandwidth /= 4 }},
		{"Bn x4", func(c *machine.Config) { c.Fabric.LinkBandwidth *= 4 }},
		{"CPU x0.5", func(c *machine.Config) { c.Processor = scaledProcessor(0.5) }},
		{"CPU x2", func(c *machine.Config) { c.Processor = scaledProcessor(2) }},
		{"SRAM 4MB", func(c *machine.Config) { c.SRAMBankBytes = 1 << 20 }},
	} {
		mc := machine.XD1()
		v.mut(&mc)
		r, err := core.RunLU(core.LUConfig{Machine: mc, N: 30000, B: 3000, BF: -1, L: -1, Mode: core.Hybrid})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprint(r.BF), fmt.Sprint(r.L),
			f2(r.GFLOPS), f2(r.Prediction.GFLOPS)})
	}
	return t, nil
}
