package core

import (
	"fmt"
	"math"
	"math/rand"

	"codesign/internal/cpu"
	"codesign/internal/fault"
	"codesign/internal/fpga"
	"codesign/internal/machine"
	"codesign/internal/matrix"
	"codesign/internal/model"
	"codesign/internal/sim"
)

// SpMVConfig configures a hybrid sparse matrix-vector multiply — the
// sparse workload family the ROADMAP names after Soltaniyeh & Martin's
// CPU/FPGA split for sparse linear algebra. The operator's rows are
// partitioned between processor and FPGA per Equation (1); the FPGA
// share streams through the accelerator in CSR form (value + column
// index, ~1.5 words per nonzero), so the DRAM path Bd — not compute —
// is the term that usually binds. Single node, like the CG extension.
type SpMVConfig struct {
	// Machine is the system; zero value means one Cray XD1 chassis
	// (only node 0 is used).
	Machine machine.Config
	// N is the operator dimension.
	N int
	// Density selects the operator: 0 means a dense matrix (the DGEMV
	// regime); otherwise a CSR matrix with the given off-diagonal
	// density.
	Density float64
	// RHS is the number of repeated applies for RunSpMM; RunSpMV
	// ignores it. 0 means 32.
	RHS int
	// PEs is the MV design size; 0 means the largest that fits.
	PEs int
	// RowsFPGA is the FPGA's row share; -1 solves the Equation (1)
	// balance.
	RowsFPGA int
	// Mode selects hybrid or a baseline.
	Mode Mode
	// Seed drives input generation. SpMV is always functional: every
	// apply is verified against matrix.CSR.Apply (or the dense MatVec).
	Seed int64
	// Observer, when non-nil, receives the structured telemetry stream
	// (raw events and typed spans; see internal/trace.Recorder).
	Observer sim.Observer
	// Telemetry attaches a span digest — utilization, bytes moved, and
	// the Tp/Tf/Tmem/Tcomm overlap decomposition — to the result.
	Telemetry bool
	// Faults, when non-nil, is installed into every charging path of
	// the machine (see machine.System.InstallFaults). SpMV has no
	// mid-run repartitioning and its arithmetic is timing-independent,
	// so functional verification stays on; node kills are rejected
	// because the workload runs on a single node.
	Faults *fault.Injector
}

// SpMVResult reports a hybrid SpMV/SpMM run.
type SpMVResult struct {
	Result
	// RowsFPGA and RowsCPU are the solved (or forced) row split; K is
	// the MV design's MAC lane count.
	RowsFPGA, RowsCPU, K int
	// NNZ is the operator's stored entry count (n² for dense).
	NNZ int
	// Words is the operator's total stream footprint in 64-bit words.
	Words int
	// Applies is the number of operator applications performed.
	Applies int
	// Resident reports the arrangement: true when the FPGA share was
	// loaded into SRAM once (repeated applies that fit), false when it
	// re-streamed from DRAM on every apply.
	Resident bool
	// Model is the cost-model instance behind the partition.
	Model model.SpMVParams
	// Prediction is the Section 4.5 closed-form forecast at the split.
	Prediction model.Prediction
	// LoadSeconds is the one-time SRAM staging cost (resident only).
	LoadSeconds float64
}

// RunSpMV builds the machine, solves the row split, and simulates one
// streamed operator apply, verifying the result against the sequential
// reference apply.
func RunSpMV(cfg SpMVConfig) (*SpMVResult, error) {
	return runMV(cfg, 1)
}

// RunSpMM repeatedly applies the operator (cfg.RHS right-hand sides,
// default 32) as iterative solvers and block methods do. When the FPGA
// share fits in on-board SRAM it is loaded once and re-used across
// applies (the CG arrangement); otherwise every apply re-streams the
// share from DRAM.
func RunSpMM(cfg SpMVConfig) (*SpMVResult, error) {
	applies := cfg.RHS
	if applies <= 0 {
		applies = 32
	}
	return runMV(cfg, applies)
}

func runMV(cfg SpMVConfig, applies int) (*SpMVResult, error) {
	if cfg.Machine.Nodes == 0 {
		cfg.Machine = machine.XD1()
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("core: spmv needs n > 0")
	}
	if cfg.Density < 0 || cfg.Density > 1 {
		return nil, fmt.Errorf("core: density %g out of [0,1]", cfg.Density)
	}
	sys, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	rec := setupTelemetry(sys.Eng, cfg.Telemetry, cfg.Observer)
	k := cfg.PEs
	if k == 0 {
		k = fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewMV(k) }, cfg.Machine.Device)
	}
	if err := sys.InstallDesign(fpga.NewMV(k)); err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		if cfg.Faults.HasDeaths() {
			return nil, fmt.Errorf("core: spmv runs on a single node and cannot survive node kills")
		}
		if err := sys.InstallFaults(cfg.Faults); err != nil {
			return nil, err
		}
	}
	node := sys.Nodes[0]
	accel := node.Accel
	proc := node.Proc

	// Build the operator.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var op matrix.MulVec
	var rowWords func(lo, hi int) int
	var nnz int
	if cfg.Density > 0 {
		sp := matrix.RandomSparse(cfg.N, cfg.Density, rng)
		op = sp
		nnz = sp.NNZ()
		rowWords = func(lo, hi int) int { return model.CSRStreamWords(sp.RangeNNZ(lo, hi)) }
	} else {
		a := matrix.Random(cfg.N, cfg.N, rng)
		op = matrix.DenseOp{A: a}
		nnz = cfg.N * cfg.N
		rowWords = func(lo, hi int) int { return (hi - lo) * cfg.N }
	}
	totalWords := rowWords(0, cfg.N)
	capWords := int(float64(node.SRAM.TotalBytes()) / machine.WordBytes)
	resident := applies > 1 && totalWords <= capWords

	sramBW := cfg.Machine.SRAMBandwidth
	if sramBW <= 0 {
		sramBW = 9.6e9
	}
	mvRate := proc.Rate(cpu.DGEMV)
	if cfg.Density > 0 {
		mvRate = proc.Rate(cpu.SpMV)
	}
	flops := float64(applies) * 2 * float64(nnz)
	mvp := model.SpMVParams{
		N: cfg.N, K: k, Words: totalWords,
		Ff:        accel.Placed.FreqHz,
		MVRate:    mvRate,
		Bd:        accel.DRAM.BandwidthBytes,
		Bs:        sramBW,
		Bw:        machine.WordBytes,
		SRAMBytes: node.SRAM.TotalBytes(),
		Resident:  resident,
		Applies:   applies,
		Flops:     flops,
	}
	if err := mvp.Validate(); err != nil {
		return nil, err
	}

	rf := cfg.RowsFPGA
	switch cfg.Mode {
	case ProcessorOnly:
		rf = 0
	case FPGAOnly:
		rf = cfg.N
	default:
		if rf < 0 {
			rf, _ = mvp.SolvePartition()
		}
	}
	if rf < 0 || rf > cfg.N {
		return nil, fmt.Errorf("core: rowsFPGA=%d out of [0,%d]", rf, cfg.N)
	}
	if resident {
		// SRAM capacity clamp on the resident share, exact per row.
		for rf > 0 && rowWords(0, rf) > capWords {
			rf--
		}
	}

	fpgaWords := rowWords(0, rf)
	fpgaPerWord := mvp.FPGAPerWord()
	cpuPerWord := mvp.CPUPerWord()
	streamPerWord := mvp.StreamPerWord()

	// Pipeline granularity for the streamed arrangement: the share
	// moves in row chunks so DMA and MAC-array compute overlap.
	chunkRows := 64 * k
	phase := "stream"
	if resident {
		phase = "apply"
	}

	// Functional state: a repeated-apply (power) chain, normalized each
	// step, run identically through the split kernels and the reference.
	x := make([]float64, cfg.N)
	for i := range x {
		x[i] = 2*rng.Float64() - 1
	}
	y := make([]float64, cfg.N)
	yRef := make([]float64, cfg.N)

	res := &SpMVResult{RowsFPGA: rf, RowsCPU: cfg.N - rf, K: k,
		NNZ: nnz, Words: totalWords, Applies: applies, Resident: resident}
	var maxDiff, loadDone float64
	sys.Eng.Go("spmv.cpu", func(pr *sim.Proc) {
		if resident && rf > 0 {
			pr.SetPhase("load")
			accel.Run(pr, "spmv.load", func(fp *sim.Proc) {
				fp.SetPhase("load")
				accel.Stream(fp, fpgaWords*machine.WordBytes)
			})
			pr.SetPhase("")
			loadDone = pr.Now()
		}
		for a := 0; a < applies; a++ {
			var done *sim.Signal
			if rf > 0 {
				if resident {
					done = accel.Launch(fmt.Sprintf("spmv.mv.%d", a), func(fp *sim.Proc) {
						fp.SetPhase(phase)
						accel.Compute(fp, float64(fpgaWords)*fpgaPerWord*accel.Placed.FreqHz)
					})
				} else {
					fq := sim.NewMailbox(sys.Eng, fmt.Sprintf("spmv.fq.%d", a))
					done = accel.Launch(fmt.Sprintf("spmv.mv.%d", a), func(fp *sim.Proc) {
						fp.SetPhase(phase)
						for lo := 0; lo < rf; lo += chunkRows {
							hi := lo + chunkRows
							if hi > rf {
								hi = rf
							}
							fq.Get(fp)
							accel.Compute(fp, float64(rowWords(lo, hi))/float64(k))
						}
					})
					pr.SetPhase(phase)
					for lo := 0; lo < rf; lo += chunkRows {
						hi := lo + chunkRows
						if hi > rf {
							hi = rf
						}
						words := rowWords(lo, hi)
						node.ChargeCPU(pr, sim.CatDMA, int64(words)*machine.WordBytes,
							float64(words)*streamPerWord)
						fq.Put(lo)
					}
					pr.SetPhase("")
				}
			}
			if rf < cfg.N {
				pr.SetPhase(phase)
				node.ChargeCPU(pr, sim.CatCompute, 0, float64(rowWords(rf, cfg.N))*cpuPerWord)
				pr.SetPhase("")
			}
			applyOpSplit(op, x, y, rf)
			op.Apply(x, yRef)
			for i := range y {
				if d := math.Abs(y[i] - yRef[i]); d > maxDiff {
					maxDiff = d
				}
			}
			if done != nil {
				accel.AwaitDone(pr, done)
			}
			if a+1 < applies {
				// Next right-hand side: the normalized image, so the
				// chain stays bounded and every apply sees fresh data.
				if n2 := matrix.Norm2(y); n2 > 0 {
					for i := range x {
						x[i] = y[i] / n2
					}
				} else {
					copy(x, y)
				}
			}
		}
	})

	end, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("core: spmv simulation: %w", err)
	}

	app := "spmv"
	if applies > 1 {
		app = "spmm"
	}
	res.Result = Result{
		App: app, Mode: cfg.Mode, N: cfg.N, B: k,
		Seconds: end, Flops: flops, GFLOPS: flops / end / 1e9,
		NetworkBytes:  sys.Fab.Bytes(),
		Coordinations: collectCoordinations(sys),
		MaxResidual:   maxDiff,
		Checked:       true,
	}
	res.CPUBusy, res.FPGABusy = collectBusy(sys)
	res.Model = mvp
	res.Prediction = mvp.PredictSpMV(rf)
	res.LoadSeconds = loadDone
	summarizeTelemetry(rec, end, &res.Result)
	return res, nil
}
