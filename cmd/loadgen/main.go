// Command loadgen is a deterministic load generator for codesignd: it
// synthesizes a seeded, duplicate-heavy stream of /v1/solve queries,
// drives them closed-loop (fixed concurrency) or open-loop (fixed
// arrival rate), and reports latency percentiles, throughput, error
// and shed rates, and the observed cache hit rate as stable JSON.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -requests 10000 -dup 0.8
//	loadgen -mode open -rate 500 -requests 5000
//	loadgen -seed 7 -dry-run                  # print the workload plan only
//
// The workload is a pure function of -seed and the workload flags:
// the same seed always produces the same query sequence (the report's
// plan_digest proves it), so measurements are comparable across runs
// and machines. With -dry-run the report contains only the
// deterministic sections and is byte-identical for identical flags —
// the property the repo's tests pin. Measured sections (latency,
// throughput) naturally vary run to run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"codesign/internal/cli"
	"codesign/internal/serve"
	"codesign/internal/sweep"
)

func main() {
	var o options
	flag.StringVar(&o.URL, "url", "http://127.0.0.1:8080", "codesignd base `url`")
	flag.IntVar(&o.Requests, "requests", 1000, "total solve queries to issue")
	flag.IntVar(&o.Concurrency, "concurrency", 8, "closed-loop worker count")
	flag.StringVar(&o.Mode, "mode", "closed", "load model: closed (fixed concurrency) or open (fixed arrival rate)")
	flag.Float64Var(&o.Rate, "rate", 200, "open-loop arrival rate in requests/second")
	flag.Float64Var(&o.Dup, "dup", 0.8, "fraction of queries drawn from already-issued ones (0..1)")
	flag.Int64Var(&o.Seed, "seed", 1, "workload RNG seed; same seed = same query sequence")
	flag.StringVar(&o.Apps, "apps", "lu,fw,mm", "comma list of applications to query")
	flag.StringVar(&o.Method, "method", sweep.MethodModel, "evaluation method for every query: model or sim")
	flag.IntVar(&o.TimeoutMS, "timeout-ms", 0, "per-request server deadline in ms (0 = server default)")
	flag.StringVar(&o.Out, "out", "-", "write the JSON report to `file` (\"-\" = stdout)")
	flag.BoolVar(&o.DryRun, "dry-run", false, "emit the deterministic workload plan without sending anything")
	flag.BoolVar(&o.Quiet, "q", false, "quiet: log errors only")
	flag.BoolVar(&o.Verbose, "v", false, "verbose: also log debug detail")
	flag.Parse()

	o.Log = cli.NewLogger("loadgen", os.Stderr)
	if err := run(o, os.Stdout); err != nil {
		o.Log.Errorf("%v", err)
		os.Exit(1)
	}
}

// options bundles every CLI knob run needs; tests construct it
// directly.
type options struct {
	URL         string
	Requests    int
	Concurrency int
	Mode        string
	Rate        float64
	Dup         float64
	Seed        int64
	Apps        string
	Method      string
	TimeoutMS   int
	Out         string
	DryRun      bool
	Quiet       bool
	Verbose     bool
	Log         *cli.Logger
}

// Report is loadgen's JSON output. Config and Workload are pure
// functions of the flags (byte-identical across runs for the same
// flags; -dry-run stops there); Results carries the measurements.
type Report struct {
	// Config echoes the workload-defining flags.
	Config ReportConfig `json:"config"`
	// Workload describes the deterministic query plan.
	Workload ReportWorkload `json:"workload"`
	// Results carries the measurements (absent under -dry-run).
	Results *ReportResults `json:"results,omitempty"`
}

// ReportConfig echoes the flags that define the workload.
type ReportConfig struct {
	// Mode is "closed" or "open".
	Mode string `json:"mode"`
	// Requests is the total query count.
	Requests int `json:"requests"`
	// Concurrency is the closed-loop worker count.
	Concurrency int `json:"concurrency"`
	// RateRPS is the open-loop arrival rate (0 under closed).
	RateRPS float64 `json:"rate_rps,omitempty"`
	// DupFraction is the target duplicate fraction.
	DupFraction float64 `json:"dup_fraction"`
	// Seed is the workload RNG seed.
	Seed int64 `json:"seed"`
	// Apps are the applications queried.
	Apps []string `json:"apps"`
	// Method is the evaluation method of every query.
	Method string `json:"method"`
	// TimeoutMS is the per-request server deadline (0 = server
	// default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ReportWorkload summarizes the deterministic query plan.
type ReportWorkload struct {
	// Requests is the planned query count.
	Requests int `json:"requests"`
	// DistinctKeys counts unique canonical queries in the plan — the
	// ceiling on cache misses a warm server can see.
	DistinctKeys int `json:"distinct_keys"`
	// DupFractionActual is 1 - distinct/requests: the duplicate
	// fraction the plan actually realizes (target draws plus
	// accidental fresh-draw collisions).
	DupFractionActual float64 `json:"dup_fraction_actual"`
	// PerApp counts queries per application, keyed by app name.
	PerApp map[string]int `json:"per_app"`
	// PlanDigest is the FNV-1a/64 digest of the canonical query
	// sequence: equal digests = identical workloads.
	PlanDigest string `json:"plan_digest"`
}

// ReportResults carries the measured outcome of a run.
type ReportResults struct {
	// Sent is the number of requests issued.
	Sent int `json:"sent"`
	// OK counts HTTP 200 responses.
	OK int `json:"ok"`
	// StatusCounts counts responses by HTTP status code.
	StatusCounts map[string]int `json:"status_counts"`
	// TransportErrors counts requests that failed before a status
	// (connection refused, client timeout).
	TransportErrors int `json:"transport_errors,omitempty"`
	// Sources counts 200 responses by solve source ("cache",
	// "coalesced", "computed").
	Sources map[string]int `json:"sources"`
	// CacheHitRate is (cache + coalesced) / OK: the fraction of
	// successful queries that reused an evaluation.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// ShedRate is 429s / sent.
	ShedRate float64 `json:"shed_rate"`
	// ErrorRate is (non-200 + transport errors) / sent.
	ErrorRate float64 `json:"error_rate"`
	// ElapsedSeconds is the wall-clock duration of the run.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ThroughputRPS is sent / elapsed.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency summarizes per-request latency in seconds (exact
	// percentiles over all issued requests).
	Latency LatencySummary `json:"latency_seconds"`
}

// LatencySummary holds exact nearest-rank percentiles over the
// recorded per-request latencies.
type LatencySummary struct {
	// P50 is the median latency in seconds.
	P50 float64 `json:"p50"`
	// P90 is the 90th percentile.
	P90 float64 `json:"p90"`
	// P99 is the 99th percentile.
	P99 float64 `json:"p99"`
	// Mean is the arithmetic mean.
	Mean float64 `json:"mean"`
	// Max is the slowest request.
	Max float64 `json:"max"`
}

// plannedQuery is one entry of the deterministic workload.
type plannedQuery struct {
	req serve.SolveRequest
	key string
}

func run(o options, stdout io.Writer) error {
	log := o.Log
	if log == nil {
		log = cli.NewLogger("loadgen", os.Stderr)
	}
	switch {
	case o.Quiet:
		log.SetLevel(slog.LevelError)
	case o.Verbose:
		log.SetLevel(slog.LevelDebug)
	}
	if o.Requests < 1 {
		return fmt.Errorf("-requests must be >= 1, got %d", o.Requests)
	}
	if o.Concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1, got %d", o.Concurrency)
	}
	if o.Dup < 0 || o.Dup > 1 {
		return fmt.Errorf("-dup must be in [0,1], got %v", o.Dup)
	}
	if o.Mode != "closed" && o.Mode != "open" {
		return fmt.Errorf("-mode must be closed or open, got %q", o.Mode)
	}
	if o.Mode == "open" && o.Rate <= 0 {
		return fmt.Errorf("-rate must be > 0 under -mode open, got %v", o.Rate)
	}
	apps := splitList(o.Apps)
	if len(apps) == 0 {
		return fmt.Errorf("-apps selects nothing")
	}
	uni, err := universe(apps, o.Method)
	if err != nil {
		return err
	}

	plan := buildPlan(o, uni)
	report := Report{Config: reportConfig(o, apps), Workload: summarize(plan, apps)}
	log.Infof("plan: %d queries, %d distinct keys, digest %s",
		report.Workload.Requests, report.Workload.DistinctKeys, report.Workload.PlanDigest)

	if !o.DryRun {
		results, err := execute(o, log, plan)
		if err != nil {
			return err
		}
		report.Results = results
		log.Infof("done: %d sent, %.1f%% hit rate, p50 %.3gs p99 %.3gs, %.0f req/s",
			results.Sent, 100*results.CacheHitRate,
			results.Latency.P50, results.Latency.P99, results.ThroughputRPS)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if o.Out == "-" || o.Out == "" {
		_, err := stdout.Write(buf.Bytes())
		return err
	}
	return os.WriteFile(o.Out, buf.Bytes(), 0o644)
}

// universe enumerates the feasible query pool per app: every
// combination resolves to a valid point at the app's paper-default
// sizes, so a well-formed run never manufactures 400s.
func universe(apps []string, method string) ([]serve.SolveRequest, error) {
	iptr := func(v int) *int { return &v }
	var out []serve.SolveRequest
	for _, app := range apps {
		switch app {
		case "lu":
			// n=30000, b=3000: pes | 3000, bf <= 3000.
			for _, pes := range []int{2, 4, 8} {
				for _, bf := range []int{-1, 0, 600, 1280} {
					for _, l := range []int{-1, 1, 2, 3} {
						out = append(out, serve.SolveRequest{
							App: "lu", PEs: pes, BF: iptr(bf), L: iptr(l), Method: method,
						})
					}
				}
			}
		case "fw":
			// n=18432, b=256: pes | 256; l1 is a per-phase op share.
			for _, pes := range []int{2, 4, 8} {
				for _, l := range []int{-1, 1, 2, 4} {
					out = append(out, serve.SolveRequest{
						App: "fw", PEs: pes, L: iptr(l), Method: method,
					})
				}
			}
		case "mm":
			// n=6144: pes | 6144, bf <= 6144.
			for _, pes := range []int{2, 4, 8} {
				for _, bf := range []int{-1, 0, 1024, 3072} {
					out = append(out, serve.SolveRequest{
						App: "mm", PEs: pes, BF: iptr(bf), Method: method,
					})
				}
			}
		default:
			return nil, fmt.Errorf("unknown app %q (want lu, fw, mm)", app)
		}
	}
	return out, nil
}

// canonicalKey renders a query in the solve cache's canonical field
// order, for duplicate accounting and the plan digest.
func canonicalKey(q serve.SolveRequest) string {
	deref := func(p *int) int {
		if p == nil {
			return -1
		}
		return *p
	}
	return fmt.Sprintf("%s|%s|%d|%d|%d", q.App, q.Method, q.PEs, deref(q.BF), deref(q.L))
}

// buildPlan synthesizes the deterministic query sequence: with
// probability -dup a query repeats an already-issued one (uniformly
// over history), otherwise it draws fresh from the universe. Both
// draws come from one seeded source, so the plan is a pure function
// of the flags.
func buildPlan(o options, uni []serve.SolveRequest) []plannedQuery {
	rng := rand.New(rand.NewSource(o.Seed))
	plan := make([]plannedQuery, 0, o.Requests)
	for i := 0; i < o.Requests; i++ {
		var q serve.SolveRequest
		if i > 0 && rng.Float64() < o.Dup {
			q = plan[rng.Intn(len(plan))].req
		} else {
			q = uni[rng.Intn(len(uni))]
		}
		plan = append(plan, plannedQuery{req: q, key: canonicalKey(q)})
	}
	return plan
}

// summarize reduces a plan to its deterministic report section.
func summarize(plan []plannedQuery, apps []string) ReportWorkload {
	distinct := make(map[string]struct{})
	perApp := make(map[string]int, len(apps))
	for _, app := range apps {
		perApp[app] = 0
	}
	h := fnv.New64a()
	for _, pq := range plan {
		distinct[pq.key] = struct{}{}
		perApp[pq.req.App]++
		io.WriteString(h, pq.key)
		h.Write([]byte{'\n'})
	}
	return ReportWorkload{
		Requests:          len(plan),
		DistinctKeys:      len(distinct),
		DupFractionActual: 1 - float64(len(distinct))/float64(len(plan)),
		PerApp:            perApp,
		PlanDigest:        fmt.Sprintf("fnv1a:%016x", h.Sum64()),
	}
}

// reportConfig echoes the workload flags.
func reportConfig(o options, apps []string) ReportConfig {
	c := ReportConfig{
		Mode: o.Mode, Requests: o.Requests, Concurrency: o.Concurrency,
		DupFraction: o.Dup, Seed: o.Seed, Apps: apps, Method: o.Method,
		TimeoutMS: o.TimeoutMS,
	}
	if o.Mode == "open" {
		c.RateRPS = o.Rate
	}
	return c
}

// sample is one request's measurement.
type sample struct {
	status  int // 0 = transport error
	source  string
	latency time.Duration
}

// execute drives the plan against the server and reduces the samples.
func execute(o options, log *cli.Logger, plan []plannedQuery) (*ReportResults, error) {
	base := strings.TrimSuffix(o.URL, "/")
	path := base + "/v1/solve"
	if o.TimeoutMS > 0 {
		path = fmt.Sprintf("%s?timeout_ms=%d", path, o.TimeoutMS)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.Concurrency * 2,
		MaxIdleConnsPerHost: o.Concurrency * 2,
	}}
	// Client-side safety timeout well above any server deadline, so a
	// wedged server cannot hang the harness.
	if o.TimeoutMS > 0 {
		client.Timeout = time.Duration(o.TimeoutMS)*time.Millisecond + 10*time.Second
	}

	// Pre-marshal the bodies; the measured window should time the
	// server, not encoding/json.
	bodies := make([][]byte, len(plan))
	for i, pq := range plan {
		b, err := json.Marshal(pq.req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	samples := make([]sample, len(plan))
	issue := func(i int) {
		start := time.Now()
		resp, err := client.Post(path, "application/json", bytes.NewReader(bodies[i]))
		if err != nil {
			samples[i] = sample{status: 0, latency: time.Since(start)}
			return
		}
		var sr serve.SolveResponse
		dec := json.NewDecoder(resp.Body)
		decErr := dec.Decode(&sr)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		s := sample{status: resp.StatusCode, latency: time.Since(start)}
		if resp.StatusCode == http.StatusOK && decErr == nil {
			s.source = sr.Source
		}
		samples[i] = s
	}

	log.Infof("issuing %d queries (%s loop) against %s", len(plan), o.Mode, base)
	start := time.Now()
	var wg sync.WaitGroup
	if o.Mode == "closed" {
		next := make(chan int)
		for w := 0; w < o.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					issue(i)
				}
			}()
		}
		for i := range plan {
			next <- i
		}
		close(next)
	} else {
		interval := time.Duration(float64(time.Second) / o.Rate)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for i := range plan {
			if i > 0 {
				<-ticker.C
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				issue(i)
			}(i)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	return reduce(samples, elapsed), nil
}

// reduce aggregates samples into the measured report section.
func reduce(samples []sample, elapsed time.Duration) *ReportResults {
	res := &ReportResults{
		Sent:         len(samples),
		StatusCounts: make(map[string]int),
		Sources:      map[string]int{"cache": 0, "coalesced": 0, "computed": 0},
	}
	lat := make([]float64, 0, len(samples))
	var sum float64
	for _, s := range samples {
		v := s.latency.Seconds()
		lat = append(lat, v)
		sum += v
		if s.status == 0 {
			res.TransportErrors++
			continue
		}
		res.StatusCounts[fmt.Sprintf("%d", s.status)]++
		if s.status == http.StatusOK {
			res.OK++
			if s.source != "" {
				res.Sources[s.source]++
			}
		}
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p*float64(len(lat))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	res.Latency = LatencySummary{
		P50: pct(0.50), P90: pct(0.90), P99: pct(0.99),
		Mean: sum / float64(len(lat)), Max: lat[len(lat)-1],
	}
	if res.OK > 0 {
		res.CacheHitRate = float64(res.Sources["cache"]+res.Sources["coalesced"]) / float64(res.OK)
	}
	res.ShedRate = float64(res.StatusCounts["429"]) / float64(res.Sent)
	res.ErrorRate = float64(res.Sent-res.OK) / float64(res.Sent)
	res.ElapsedSeconds = elapsed.Seconds()
	res.ThroughputRPS = float64(res.Sent) / elapsed.Seconds()
	return res
}

// splitList splits a comma list, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
