// Package fault is a deterministic, seed-driven fault-injection layer
// for the simulator: scheduled or probabilistic events that throttle a
// node's FPGA-DRAM bandwidth (Bd) or network bandwidth (Bn), stall an
// FPGA for a reconfiguration window, slow a CPU (straggler), or kill a
// node outright.
//
// The injector does not schedule engine events of its own. Instead it
// is installed as time-dilation hooks on the charging paths of
// internal/machine, internal/mem and internal/fabric (see
// machine.System.InstallFaults): every charge the simulation would make
// at its nominal duration is passed through Injector.Dilate, which
// integrates the configured piecewise-constant rate factors over the
// charge interval. A charge that overlaps no fault window is returned
// bit-identically, so a run with an empty (or nil) spec produces
// byte-identical simulation output and spans to a run without the
// fault layer — the property the BENCH_baseline.json gate relies on.
// Faults therefore surface as ordinary simulation events: the same
// Device-tagged spans the healthy run emits, stretched by the fault.
//
// The injector also keeps per-node, per-class accumulators of nominal
// versus dilated seconds. TakeObserved condenses them into effective
// rate factors — the telemetry signal internal/core's repartitioning
// trigger compares against the factors behind its current Eq. 4/5/6
// solution. ActiveFactors exposes the configured (ground-truth) factors
// instead, for the oracle runs that know the fault in advance.
//
// Probabilistic events are expanded from the spec's seed at
// construction time with math/rand's deterministic generator, so the
// same seed and spec always produce the same event list: same seed +
// same spec => byte-identical simulation across runs and sweep worker
// counts.
package fault
