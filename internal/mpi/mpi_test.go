package mpi

import (
	"fmt"
	"math"
	"testing"

	"codesign/internal/fabric"
	"codesign/internal/sim"
)

// worldOf builds an engine + fabric + world with p nodes at bandwidth bw.
func worldOf(t *testing.T, p int, bw float64) (*sim.Engine, *World) {
	t.Helper()
	e := sim.New()
	f, err := fabric.New(e, fabric.Config{Nodes: p, LinkBandwidth: bw, LinksPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	return e, NewWorld(e, f)
}

// spawnRanks runs body on every rank as its node process.
func spawnRanks(e *sim.Engine, w *World, body func(r *Rank, p *sim.Proc)) {
	for i := 0; i < w.Size(); i++ {
		i := i
		e.Go(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			body(w.Attach(p, i), p)
		})
	}
}

func TestSendRecvDeliversPayload(t *testing.T) {
	e, w := worldOf(t, 2, 100)
	var got Message
	spawnRanks(e, w, func(r *Rank, p *sim.Proc) {
		if r.ID() == 0 {
			r.Send(1, 7, 200, "hello")
		} else {
			got = r.Recv(0, 7)
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if got.Payload != "hello" || got.Src != 0 || got.Tag != 7 || got.Bytes != 200 {
		t.Fatalf("got %+v", got)
	}
	if e.Now() != 2 { // 200 bytes / 100 B/s
		t.Fatalf("clock %v, want 2", e.Now())
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	e, w := worldOf(t, 2, 1000)
	var got []any
	spawnRanks(e, w, func(r *Rank, p *sim.Proc) {
		if r.ID() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(1, 0, 10, i)
			}
		} else {
			for i := 0; i < 5; i++ {
				got = append(got, r.Recv(0, 0).Payload)
			}
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order %v", got)
		}
	}
}

func TestTagsSeparateStreams(t *testing.T) {
	e, w := worldOf(t, 2, 1000)
	var a, b any
	spawnRanks(e, w, func(r *Rank, p *sim.Proc) {
		if r.ID() == 0 {
			r.Send(1, 1, 8, "tag1")
			r.Send(1, 2, 8, "tag2")
		} else {
			// Receive out of send order by tag.
			b = r.Recv(0, 2).Payload
			a = r.Recv(0, 1).Payload
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if a != "tag1" || b != "tag2" {
		t.Fatalf("a=%v b=%v", a, b)
	}
}

func TestBcastLinearCost(t *testing.T) {
	const p = 4
	e, w := worldOf(t, p, 100)
	finish := make([]float64, p)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		v := r.Bcast(0, 0, 100, "blob")
		if v != "blob" {
			t.Errorf("rank %d got %v", r.ID(), v)
		}
		finish[r.ID()] = pr.Now()
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	// Linear broadcast: root sends 3 sequential 1s messages.
	if math.Abs(finish[0]-3) > 1e-12 {
		t.Fatalf("root finished at %v, want 3", finish[0])
	}
	if finish[1] != 1 || finish[2] != 2 || finish[3] != 3 {
		t.Fatalf("receivers finished at %v", finish[1:])
	}
}

func TestBcastTreeFasterThanLinear(t *testing.T) {
	const p = 8
	for _, root := range []int{0, 3} {
		e, w := worldOf(t, p, 100)
		var maxFinish float64
		spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
			v := r.BcastTree(root, 0, 100, "blob")
			if v != "blob" {
				t.Errorf("rank %d got %v", r.ID(), v)
			}
			if pr.Now() > maxFinish {
				maxFinish = pr.Now()
			}
		})
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		// Binomial tree over 8 ranks completes in 3 rounds of 1 s each
		// (plus pipelining effects); it must beat the 7 s linear cost.
		if maxFinish > 5 {
			t.Fatalf("root=%d tree bcast finished at %v, want < 5", root, maxFinish)
		}
	}
}

func TestBcastTreeNonPowerOfTwo(t *testing.T) {
	const p = 6
	e, w := worldOf(t, p, 1e6)
	got := make([]any, p)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		got[r.ID()] = r.BcastTree(2, 0, 64, "payload")
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != "payload" {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 4
	e, w := worldOf(t, p, 1e9)
	after := make([]float64, p)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		pr.Wait(float64(r.ID())) // stagger arrivals 0..3
		r.Barrier(99)
		after[r.ID()] = pr.Now()
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range after {
		if v < 3 {
			t.Fatalf("rank %d left barrier at %v before last arrival", i, v)
		}
	}
}

func TestGather(t *testing.T) {
	const p = 4
	e, w := worldOf(t, p, 1e9)
	var collected []any
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		res := r.Gather(0, 5, 8, r.ID()*10)
		if r.ID() == 0 {
			collected = res
		} else if res != nil {
			t.Errorf("non-root rank %d got %v", r.ID(), res)
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range collected {
		if v != i*10 {
			t.Fatalf("gathered %v", collected)
		}
	}
}

func TestReduceOps(t *testing.T) {
	for _, tc := range []struct {
		op   string
		want float64
	}{{"sum", 0 + 1 + 2 + 3}, {"max", 3}, {"min", 0}} {
		e, w := worldOf(t, 4, 1e9)
		var got float64
		spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
			v := r.Reduce(0, 1, float64(r.ID()), tc.op)
			if r.ID() == 0 {
				got = v
			}
		})
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("reduce %s = %v, want %v", tc.op, got, tc.want)
		}
	}
}

func TestAllreduce(t *testing.T) {
	const p = 5
	e, w := worldOf(t, p, 1e9)
	got := make([]float64, p)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		got[r.ID()] = r.Allreduce(1, float64(r.ID()+1), "sum")
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 15 {
			t.Fatalf("rank %d allreduce = %v, want 15", i, v)
		}
	}
}

func TestMissingRecvDeadlocks(t *testing.T) {
	e, w := worldOf(t, 2, 1e9)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		if r.ID() == 1 {
			r.Recv(0, 0) // never sent
		}
	})
	if err := e.Run(0); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestSendrecvExchange(t *testing.T) {
	e, w := worldOf(t, 2, 1e9)
	var got [2]any
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		other := 1 - r.ID()
		// Rank 0 sends first and then receives; rank 1 receives first.
		if r.ID() == 0 {
			m := r.Sendrecv(other, 3, 8, "from0", other)
			got[0] = m.Payload
		} else {
			m := r.Recv(other, 3)
			r.Send(other, 3, 8, "from1")
			got[1] = m.Payload
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if got[0] != "from1" || got[1] != "from0" {
		t.Fatalf("exchange got %v", got)
	}
}

func TestAttachBadRankPanics(t *testing.T) {
	e, w := worldOf(t, 2, 1e9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = e
	w.Attach(nil, 9)
}
