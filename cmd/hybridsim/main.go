// Command hybridsim runs one co-designed application on a simulated
// reconfigurable computing system and reports its throughput, workload
// partition and resource utilization.
//
// Usage:
//
//	hybridsim -app lu -n 30000 -b 3000                  # paper headline
//	hybridsim -app fw -n 18432 -b 256 -mode fpga-only   # a baseline
//	hybridsim -app lu -n 300 -b 60 -pes 4 -functional   # with real data
//	hybridsim -app lu -analyze                          # critical path + bottlenecks
//	hybridsim -app fw -machine xt3 -n 6144 -b 256 -pes 8
//	hybridsim -app spmv -n 2048 -density 0.02           # sparse y = Ax, CSR streamed
//	hybridsim -app spmv -n 2048 -density 0.02 -rhs 32   # SpMM: repeated applies, SRAM-resident
//	hybridsim -app lu -faults faults.json -seed 7       # degraded-mode run + resilience report
//	hybridsim -app lu -faults faults.json -obs :9469    # live /metrics + pprof during the run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"codesign/internal/analysis"
	"codesign/internal/cli"
	"codesign/internal/core"
	"codesign/internal/fault"
	"codesign/internal/machine"
	"codesign/internal/model"
	"codesign/internal/obs"
	"codesign/internal/sim"
	"codesign/internal/trace"
)

// log is the tool's shared leveled stderr logger (-v/-q adjust it).
var log = cli.NewLogger("hybridsim", os.Stderr)

func main() {
	var o options
	flag.StringVar(&o.App, "app", "lu", "application: lu, fw, mm, spmv, chol, qr or cg")
	flag.StringVar(&o.Machine, "machine", "xd1", "machine preset (xd1, xt3, src6, rasc) or a machine JSON `file`")
	flag.IntVar(&o.N, "n", 30000, "problem size")
	flag.IntVar(&o.B, "b", 3000, "block size")
	flag.IntVar(&o.PEs, "pes", 0, "FPGA PE count (0 = largest that fits)")
	flag.StringVar(&o.Mode, "mode", "hybrid", "design: hybrid, processor-only, fpga-only")
	flag.IntVar(&o.BF, "bf", -1, "LU: FPGA row share per stripe (-1 = solve Eq. 4)")
	flag.IntVar(&o.L, "l", -1, "LU: panel pipeline depth (-1 = solve Eq. 5)")
	flag.IntVar(&o.L1, "l1", -1, "FW: processor ops per phase (-1 = solve Eq. 6)")
	flag.Float64Var(&o.Density, "density", 0, "spmv: operator nonzero density in [0,1] (0 = dense operator)")
	flag.IntVar(&o.RHS, "rhs", 0, "spmv: right-hand sides; >1 runs SpMM as repeated applies (0 = single apply)")
	flag.BoolVar(&o.Functional, "functional", false, "carry real matrices and verify the result")
	flag.Int64Var(&o.Seed, "seed", 1, "functional input seed, or the fault spec seed with -faults")
	flag.StringVar(&o.Faults, "faults", "", "inject faults from spec JSON `file` (lu, fw and spmv) and print the resilience report")
	flag.BoolVar(&o.Timeline, "timeline", false, "print a per-process activity timeline (small runs only)")
	flag.BoolVar(&o.Metrics, "metrics", false, "print per-run utilization and the Tp/Tf/Tmem/Tcomm overlap report")
	flag.BoolVar(&o.Analyze, "analyze", false, "print the critical path, per-phase bottleneck attribution and resource timelines")
	flag.StringVar(&o.TraceOut, "trace-out", "", "write a Chrome/Perfetto trace_event JSON trace of the run to `file`")
	flag.StringVar(&o.MetricsOut, "metrics-out", "", "write the run's metrics registry as CSV to `file`")
	flag.StringVar(&o.SpansOut, "spans-out", "", "write the raw typed spans as CSV to `file`")
	flag.StringVar(&o.SpansJSON, "spans-json", "", "write the typed spans with run metadata as JSONL to `file` (tracediff input)")
	flag.StringVar(&o.DiffAgainst, "diff-against", "", "diff this run against a persisted span `file` (JSONL or CSV) and print the differential analysis")
	flag.StringVar(&o.Obs, "obs", "", "serve /metrics, /statusz and pprof on `addr` during the run")
	flag.DurationVar(&o.ObsHold, "obs-hold", 0, "keep the -obs server up this long after the run completes")
	log.AddFlags(flag.CommandLine)
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			o.SeedSet = true
		}
	})

	if err := run(o); err != nil {
		log.Errorf("%v", err)
		os.Exit(1)
	}
}

// options bundles every CLI knob run needs; tests construct it
// directly.
type options struct {
	App       string
	Machine   string
	N, B, PEs int
	Mode      string
	BF, L, L1 int
	// Density and RHS parameterize -app spmv: the operator's nonzero
	// density and the number of repeated applies (SpMM).
	Density    float64
	RHS        int
	Functional bool
	Seed       int64
	// SeedSet records whether -seed was passed explicitly; only then
	// does it override the fault spec's own seed.
	SeedSet    bool
	Faults     string
	Timeline   bool
	Metrics    bool
	Analyze    bool
	TraceOut   string
	MetricsOut string
	SpansOut   string
	// SpansJSON persists the span stream with run metadata (JSONL).
	SpansJSON string
	// DiffAgainst diffs this run against a persisted span file.
	DiffAgainst string
	Obs         string
	ObsHold     time.Duration
}

func machineByName(name string) (machine.Config, error) {
	return machine.Resolve(name)
}

func modeByName(name string) (core.Mode, error) {
	switch name {
	case "hybrid":
		return core.Hybrid, nil
	case "processor-only", "cpu":
		return core.ProcessorOnly, nil
	case "fpga-only", "fpga":
		return core.FPGAOnly, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func run(o options) error {
	mc, err := machineByName(o.Machine)
	if err != nil {
		return err
	}
	md, err := modeByName(o.Mode)
	if err != nil {
		return err
	}
	fmt.Printf("machine: %s (%d nodes)\n", mc.Name, mc.Nodes)

	// -faults runs the app three ways: nominal (the baseline), with the
	// spec's faults under observed-telemetry detection (the run that is
	// printed), and with an oracle detector that knows the spec in
	// advance. Injectors are stateful, so each run gets a fresh one.
	var spec *fault.Spec
	var inj *fault.Injector
	if o.Faults != "" {
		if o.App != "lu" && o.App != "fw" && o.App != "spmv" {
			return fmt.Errorf("-faults supports lu, fw and spmv, not %q", o.App)
		}
		spec, err = fault.Load(o.Faults)
		if err != nil {
			return err
		}
		if o.SeedSet {
			spec.Seed = o.Seed
		}
		inj, err = fault.New(spec, mc.Nodes)
		if err != nil {
			return err
		}
		fmt.Printf("faults:  %d events from %s (seed %d, detector threshold %.2g, window %gs)\n",
			len(inj.Events()), o.Faults, spec.Seed, inj.Threshold(), inj.Window())
	}

	// -obs publishes live engine counters, fault gauges and core
	// repartition metrics for the duration of the run. reg stays nil
	// otherwise, which keeps every metric site on its no-op path.
	var reg *obs.Registry
	if o.Obs != "" {
		reg = obs.NewRegistry()
		ctr := &sim.Counters{}
		ctr.Publish(reg)
		sim.InstallCounters(ctr)
		defer sim.InstallCounters(nil)
		if inj != nil {
			inj.Publish(reg)
		}
		srv, err := obs.Serve(o.Obs, reg)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		defer srv.Close()
		log.Infof("serving metrics on http://%s/metrics", srv.Addr)
		if o.ObsHold > 0 {
			defer func() {
				log.Infof("run done; holding metrics server for %v", o.ObsHold)
				time.Sleep(o.ObsHold)
			}()
		}
	}

	var col *trace.Collector
	var hook func(float64, string, string)
	if o.Timeline {
		col = &trace.Collector{Limit: 2_000_000}
		hook = func(t float64, proc, action string) {
			col.Record(t, proc, action)
		}
		defer func() {
			fmt.Println("\nactivity timeline (# = busy):")
			if err := col.WriteTimeline(os.Stdout, 100, 0); err != nil {
				log.Errorf("timeline: %v", err)
			}
		}()
	}

	// The recorder doubles as the span sink for -trace-out, -analyze,
	// -spans-out, -spans-json and -diff-against; -faults records too,
	// so the resilience report can attribute the dilation to phases.
	// Keep the Observer interface value nil unless a recorder exists: a
	// typed nil *trace.Recorder inside a non-nil interface would still
	// be invoked by the engine.
	var rec *trace.Recorder
	var spanObs sim.Observer
	if o.TraceOut != "" || o.SpansOut != "" || o.Analyze ||
		o.SpansJSON != "" || o.DiffAgainst != "" || o.Faults != "" {
		rec = trace.NewRecorder()
		spanObs = rec
	}
	// -metrics-out exports the telemetry summary, so it implies
	// summarization even without the printed -metrics report.
	telemetry := o.Metrics || o.MetricsOut != ""

	// res and expected feed the post-run exports: the generic result
	// for telemetry, and the analytic model's predicted binding per
	// phase for -analyze's agreement column.
	var res *core.Result
	var expected map[string]model.Binding

	switch o.App {
	case "lu":
		r, err := core.RunLU(core.LUConfig{
			Machine: mc, N: o.N, B: o.B, PEs: o.PEs, BF: o.BF, L: o.L,
			Mode: md, Functional: o.Functional, Seed: o.Seed, Trace: hook,
			Observer: spanObs, Telemetry: telemetry, Faults: inj, Metrics: reg,
		})
		if err != nil {
			return err
		}
		printLU(r)
		res = &r.Result
		bind, _ := r.Model.StripeBinding(r.BF)
		expected = map[string]model.Binding{"opmm": bind}
	case "fw":
		r, err := core.RunFW(core.FWConfig{
			Machine: mc, N: o.N, B: o.B, PEs: o.PEs, L1: o.L1,
			Mode: md, Functional: o.Functional, Seed: o.Seed, Trace: hook,
			Observer: spanObs, Telemetry: telemetry, Faults: inj, Metrics: reg,
		})
		if err != nil {
			return err
		}
		printFW(r)
		res = &r.Result
		bind, _ := r.Model.PhaseBinding(r.L1, r.L2)
		expected = map[string]model.Binding{"op": bind}
	case "mm":
		r, err := core.RunMM(core.MMConfig{
			Machine: mc, N: o.N, PEs: o.PEs, BF: o.BF,
			Mode: md, Functional: o.Functional, Seed: o.Seed,
			Observer: spanObs, Telemetry: telemetry,
		})
		if err != nil {
			return err
		}
		printMM(r)
		res = &r.Result
		bind, _ := r.Model.StripeBinding(r.BF)
		expected = map[string]model.Binding{"stripe": bind}
	case "spmv":
		runner := core.RunSpMV
		if o.RHS > 1 {
			runner = core.RunSpMM
		}
		r, err := runner(core.SpMVConfig{
			Machine: mc, N: o.N, Density: o.Density, RHS: o.RHS,
			PEs: o.PEs, RowsFPGA: o.BF, Mode: md, Seed: o.Seed,
			Observer: spanObs, Telemetry: telemetry, Faults: inj,
		})
		if err != nil {
			return err
		}
		printSpMV(r)
		res = &r.Result
		bind, _ := r.Model.StripeBinding(r.RowsFPGA)
		phase := "stream"
		if r.Resident {
			phase = "apply"
		}
		expected = map[string]model.Binding{phase: bind}
	case "qr":
		r, err := core.RunQR(core.QRConfig{
			Machine: mc, N: o.N, B: o.B, PEs: o.PEs, BF: o.BF,
			Mode: md, Functional: o.Functional, Seed: o.Seed,
			Observer: spanObs, Telemetry: telemetry,
		})
		if err != nil {
			return err
		}
		printQR(r)
		res = &r.Result
		bind, _ := r.Model.StripeBinding(r.BF)
		expected = map[string]model.Binding{"update": bind}
	case "cg":
		r, err := core.RunCG(core.CGConfig{
			Machine: mc, N: o.N, PEs: o.PEs, RowsFPGA: o.BF,
			Mode: md, Seed: o.Seed,
			Observer: spanObs, Telemetry: telemetry,
		})
		if err != nil {
			return err
		}
		printCG(r)
		res = &r.Result
	case "chol":
		r, err := core.RunCholesky(core.CholConfig{
			Machine: mc, N: o.N, B: o.B, PEs: o.PEs, BF: o.BF, L: o.L,
			Mode: md, Functional: o.Functional, Seed: o.Seed,
			Observer: spanObs, Telemetry: telemetry,
		})
		if err != nil {
			return err
		}
		printChol(r)
		res = &r.Result
		bind, _ := r.Model.StripeBinding(r.BF)
		expected = map[string]model.Binding{"opmm": bind}
	default:
		return fmt.Errorf("unknown app %q (want lu, fw, mm, spmv, chol, qr or cg)", o.App)
	}

	if inj != nil {
		if err := printResilience(o, mc, md, spec, res, rec, len(inj.Events())); err != nil {
			return fmt.Errorf("resilience: %w", err)
		}
	}
	if o.DiffAgainst != "" {
		meta, baseSpans, err := trace.ReadSpansFile(o.DiffAgainst)
		if err != nil {
			return fmt.Errorf("diff-against: %w", err)
		}
		baseLabel := meta.Label
		if baseLabel == "" {
			baseLabel = o.DiffAgainst
		}
		cmp := analysis.Compare(
			analysis.Run{Label: baseLabel, Makespan: meta.Makespan, Spans: baseSpans},
			analysis.Run{Label: "this run", Makespan: res.Seconds, Spans: rec.SpansView(), Expected: expected},
		)
		fmt.Println()
		if err := cmp.WriteReport(os.Stdout); err != nil {
			return fmt.Errorf("diff-against: %w", err)
		}
	}
	if o.Analyze {
		rep := analysis.Analyze(rec.Spans(), res.Seconds, analysis.Options{Expected: expected})
		fmt.Println()
		if err := rep.WriteReport(os.Stdout); err != nil {
			return fmt.Errorf("analyze: %w", err)
		}
	}
	if o.MetricsOut != "" {
		m := trace.NewMetrics()
		res.Telemetry.Fill(m)
		if err := writeTo(o.MetricsOut, m.WriteCSV); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		fmt.Printf("metrics:           -> %s\n", o.MetricsOut)
	}
	if o.SpansOut != "" {
		if err := writeTo(o.SpansOut, rec.WriteSpansCSV); err != nil {
			return fmt.Errorf("spans-out: %w", err)
		}
		fmt.Printf("spans:             %d spans -> %s\n", len(rec.Spans()), o.SpansOut)
	}
	if o.SpansJSON != "" {
		meta := trace.Meta{App: o.App, Machine: mc.Name, Label: o.App, Makespan: res.Seconds}
		if err := writeTo(o.SpansJSON, func(w io.Writer) error {
			return rec.WriteSpans(w, meta)
		}); err != nil {
			return fmt.Errorf("spans-json: %w", err)
		}
		fmt.Printf("spans:             %d spans -> %s (JSONL, tracediff input)\n", len(rec.SpansView()), o.SpansJSON)
	}
	if o.TraceOut != "" {
		if err := writeTo(o.TraceOut, rec.WritePerfetto); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Printf("trace:             %d spans -> %s (chrome://tracing, ui.perfetto.dev)\n",
			len(rec.Spans()), o.TraceOut)
	}
	return nil
}

// printResilience re-runs the app fault-free and with an oracle
// detector, then prints the resilience summary for the faulted run
// already in res. The nominal reference records its spans so the
// report can attribute the dilation to phases (rec holds the faulted
// run's spans).
func printResilience(o options, mc machine.Config, md core.Mode, spec *fault.Spec, res *core.Result, rec *trace.Recorder, events int) error {
	ref := func(in *fault.Injector, obs sim.Observer) (float64, error) {
		if o.App == "spmv" {
			runner := core.RunSpMV
			if o.RHS > 1 {
				runner = core.RunSpMM
			}
			r, err := runner(core.SpMVConfig{Machine: mc, N: o.N, Density: o.Density,
				RHS: o.RHS, PEs: o.PEs, RowsFPGA: o.BF, Mode: md, Seed: o.Seed,
				Faults: in, Observer: obs})
			if err != nil {
				return 0, err
			}
			return r.Seconds, nil
		}
		if o.App == "lu" {
			r, err := core.RunLU(core.LUConfig{Machine: mc, N: o.N, B: o.B,
				PEs: o.PEs, BF: o.BF, L: o.L, Mode: md, Faults: in, Observer: obs})
			if err != nil {
				return 0, err
			}
			return r.Seconds, nil
		}
		r, err := core.RunFW(core.FWConfig{Machine: mc, N: o.N, B: o.B,
			PEs: o.PEs, L1: o.L1, Mode: md, Faults: in, Observer: obs})
		if err != nil {
			return 0, err
		}
		return r.Seconds, nil
	}
	nomRec := trace.NewRecorder()
	nominal, err := ref(nil, nomRec)
	if err != nil {
		return fmt.Errorf("nominal reference: %w", err)
	}
	oinj, err := fault.New(spec.WithOracle(), mc.Nodes)
	if err != nil {
		return err
	}
	oracle, err := ref(oinj, nil)
	if err != nil {
		return fmt.Errorf("oracle reference: %w", err)
	}
	r := &analysis.Resilience{
		BaselineSeconds: nominal,
		FaultedSeconds:  res.Seconds,
		OracleSeconds:   oracle,
		DeadNodes:       res.DeadNodes,
		FaultEvents:     events,
	}
	for _, rp := range res.Repartitions {
		r.RepartitionTimes = append(r.RepartitionTimes, rp.Time)
	}
	if rec != nil {
		r.AttributeOverhead(
			analysis.Run{Makespan: nominal, Spans: nomRec.SpansView()},
			analysis.Run{Makespan: res.Seconds, Spans: rec.SpansView()},
		)
	}
	fmt.Println()
	return r.WriteReport(os.Stdout)
}

// writeTo creates path and streams write into it, closing cleanly.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printMM(r *core.MMResult) {
	fmt.Println("application:       hybrid matrix multiplication (Eq. 1)")
	printCommon(&r.Result)
	fmt.Printf("partition:         bf=%d bp=%d result rows per stripe (k=%d PEs)\n", r.BF, r.BP, r.K)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}

func printSpMV(r *core.SpMVResult) {
	if r.Applies > 1 {
		fmt.Println("application:       sparse matrix-multi-vector product (SpMM, Eq. 1 per apply)")
	} else {
		fmt.Println("application:       sparse matrix-vector product (Eq. 1 row split)")
	}
	printCommon(&r.Result)
	arrangement := "streamed per apply"
	if r.Resident {
		arrangement = fmt.Sprintf("SRAM-resident, load %.3gs", r.LoadSeconds)
	}
	fmt.Printf("operator:          n=%d nnz=%d (%.4g words/row CSR), %s\n",
		r.N, r.NNZ, float64(r.Words)/float64(r.N), arrangement)
	fmt.Printf("row split:         %d rows to FPGA, %d to processor (k=%d MACs), %d applies\n",
		r.RowsFPGA, r.RowsCPU, r.K, r.Applies)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}

func printQR(r *core.QRResult) {
	fmt.Println("application:       block Householder QR factorization (extension)")
	printCommon(&r.Result)
	fmt.Printf("partition:         bf=%d bp=%d (k=%d PEs)\n", r.BF, r.BP, r.K)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}

func printCG(r *core.CGRunResult) {
	fmt.Println("application:       conjugate gradient (extension, after [9])")
	printCommon(&r.Result)
	fmt.Printf("row split:         %d rows to FPGA (SRAM-resident), %d to processor (k=%d MACs)\n",
		r.RowsFPGA, r.RowsCPU, r.K)
	fmt.Printf("solve:             %d iterations, converged=%v, SRAM load %.4fs\n",
		r.Iterations, r.Converged, r.LoadSeconds)
}

func printChol(r *core.CholResult) {
	fmt.Println("application:       block Cholesky factorization (extension)")
	printCommon(&r.Result)
	fmt.Printf("partition:         bf=%d bp=%d (k=%d PEs), pipeline l=%d\n", r.BF, r.BP, r.K, r.L)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}

func printCommon(r *core.Result) {
	fmt.Printf("design:            %s\n", r.Mode)
	fmt.Printf("problem:           n=%d b=%d\n", r.N, r.B)
	fmt.Printf("simulated latency: %.3f s\n", r.Seconds)
	fmt.Printf("throughput:        %.3f GFLOPS (%.3g flops)\n", r.GFLOPS, r.Flops)
	fmt.Printf("network traffic:   %.2f GB\n", float64(r.NetworkBytes)/1e9)
	fmt.Printf("coordinations:     %d register handshakes\n", r.Coordinations)
	fmt.Printf("utilization:       cpu %.1f%%  fpga %.1f%%\n",
		100*r.Utilization(r.CPUBusy), 100*r.Utilization(r.FPGABusy))
	for _, rp := range r.Repartitions {
		cells := fmt.Sprintf("repartition:       t=%.2fs iter %d (%s, %d live)", rp.Time, rp.Iteration, rp.Reason, rp.Live)
		if rp.L1 > 0 || rp.L2 > 0 {
			fmt.Printf("%s l1=%d l2=%d\n", cells, rp.L1, rp.L2)
		} else {
			fmt.Printf("%s bf=%d bp=%d l=%d\n", cells, rp.BF, rp.BP, rp.L)
		}
	}
	if len(r.DeadNodes) > 0 {
		fmt.Printf("dead nodes:        %v\n", r.DeadNodes)
	}
	if r.Checked {
		fmt.Printf("functional check:  max residual %.3g vs sequential reference\n", r.MaxResidual)
	}
	if r.Telemetry != nil {
		fmt.Println()
		if err := r.Telemetry.WriteReport(os.Stdout); err != nil {
			log.Errorf("metrics: %v", err)
		}
	}
}

func printLU(r *core.LUResult) {
	fmt.Println("application:       block LU decomposition")
	printCommon(&r.Result)
	fmt.Printf("partition:         bf=%d bp=%d (k=%d PEs), pipeline l=%d\n", r.BF, r.BP, r.K, r.L)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}

func printFW(r *core.FWResult) {
	fmt.Println("application:       blocked Floyd-Warshall (all-pairs shortest paths)")
	printCommon(&r.Result)
	fmt.Printf("partition:         l1=%d processor ops, l2=%d FPGA ops per phase (k=%d PEs)\n", r.L1, r.L2, r.K)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}
