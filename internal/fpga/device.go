package fpga

import "fmt"

// Device is an FPGA part's resource budget.
type Device struct {
	// Name is the part number, e.g. "XC2VP50".
	Name string
	// Slices is the logic slice count.
	Slices int
	// BlockRAMs is the number of 18 kb block RAMs.
	BlockRAMs int
	// Multipliers is the number of embedded 18×18 multiplier blocks
	// (or DSP-slice equivalents on Virtex-4).
	Multipliers int
	// ConfigSeconds is the full-bitstream configuration time.
	ConfigSeconds float64
}

// XC2VP50 is the Xilinx Virtex-II Pro device on each Cray XD1 blade.
func XC2VP50() Device {
	return Device{Name: "XC2VP50", Slices: 23616, BlockRAMs: 232, Multipliers: 232, ConfigSeconds: 0.05}
}

// XC4VLX160 is a mid-size Virtex-4 (SGI RASC RC100 class).
func XC4VLX160() Device {
	return Device{Name: "XC4VLX160", Slices: 67584, BlockRAMs: 288, Multipliers: 96, ConfigSeconds: 0.08}
}

// XC4VLX200 is the large Virtex-4 on the DRC modules for Cray XT3.
func XC4VLX200() Device {
	return Device{Name: "XC4VLX200", Slices: 89088, BlockRAMs: 336, Multipliers: 96, ConfigSeconds: 0.1}
}

// Usage is the resource consumption of a design instance.
type Usage struct {
	Slices      int
	BlockRAMs   int
	Multipliers int
}

// FitsIn reports whether the usage fits the device budget.
func (u Usage) FitsIn(d Device) bool {
	return u.Slices <= d.Slices && u.BlockRAMs <= d.BlockRAMs && u.Multipliers <= d.Multipliers
}

// Add returns the element-wise sum of two usages.
func (u Usage) Add(v Usage) Usage {
	return Usage{
		Slices:      u.Slices + v.Slices,
		BlockRAMs:   u.BlockRAMs + v.BlockRAMs,
		Multipliers: u.Multipliers + v.Multipliers,
	}
}

// Design is a synthesizable FPGA design parameterized by its PE count.
type Design interface {
	// Name identifies the design.
	Name() string
	// PEs returns the processing-element count k.
	PEs() int
	// Resources returns the post-synthesis resource usage.
	Resources() Usage
	// MinCoreFmaxHz is the slowest constituent core's maximum clock.
	MinCoreFmaxHz() float64
	// RoutingDerate scales achievable frequency for design-specific
	// routing pressure (1.0 = none).
	RoutingDerate() float64
}

// routingModel estimates post-place-and-route frequency: the slowest
// core's Fmax, derated linearly with slice utilization (congestion) and
// by the design's own routing factor. Calibrated so the paper's two
// designs close timing at 130 MHz and 120 MHz on the XC2VP50.
func routingModel(d Design, dev Device) float64 {
	util := float64(d.Resources().Slices) / float64(dev.Slices)
	if util > 1 {
		util = 1
	}
	return d.MinCoreFmaxHz() * (1 - 0.28*util) * d.RoutingDerate()
}

// Placed is a design mapped onto a device with a closed clock.
type Placed struct {
	Design Design
	Device Device
	// FreqHz is the achieved clock frequency (the model's Ff).
	FreqHz float64
}

// Place runs the pseudo place-and-route step: it verifies the design
// fits the device and computes the achievable clock.
func Place(d Design, dev Device) (*Placed, error) {
	u := d.Resources()
	if !u.FitsIn(dev) {
		return nil, fmt.Errorf("fpga: %s with k=%d needs %+v, exceeds %s budget {Slices:%d BlockRAMs:%d Multipliers:%d}",
			d.Name(), d.PEs(), u, dev.Name, dev.Slices, dev.BlockRAMs, dev.Multipliers)
	}
	return &Placed{Design: d, Device: dev, FreqHz: routingModel(d, dev)}, nil
}

// CyclesToSeconds converts a cycle count at the placed clock.
func (p *Placed) CyclesToSeconds(cycles float64) float64 { return cycles / p.FreqHz }

// MaxPEs returns the largest k for which mk(k) fits dev; 0 if even k=1
// does not fit.
func MaxPEs(mk func(k int) Design, dev Device) int {
	best := 0
	for k := 1; ; k++ {
		if !mk(k).Resources().FitsIn(dev) {
			return best
		}
		best = k
	}
}
