// Command hybridsim runs one co-designed application on a simulated
// reconfigurable computing system and reports its throughput, workload
// partition and resource utilization.
//
// Usage:
//
//	hybridsim -app lu -n 30000 -b 3000                  # paper headline
//	hybridsim -app fw -n 18432 -b 256 -mode fpga-only   # a baseline
//	hybridsim -app lu -n 300 -b 60 -pes 4 -functional   # with real data
//	hybridsim -app fw -machine xt3 -n 6144 -b 256 -pes 8
package main

import (
	"flag"
	"fmt"
	"os"

	"codesign/internal/core"
	"codesign/internal/machine"
	"codesign/internal/sim"
	"codesign/internal/trace"
)

func main() {
	var (
		app        = flag.String("app", "lu", "application: lu, fw, mm, chol, qr or cg")
		mc         = flag.String("machine", "xd1", "machine preset: xd1, xt3, src6, rasc")
		n          = flag.Int("n", 30000, "problem size")
		b          = flag.Int("b", 3000, "block size")
		pes        = flag.Int("pes", 0, "FPGA PE count (0 = largest that fits)")
		mode       = flag.String("mode", "hybrid", "design: hybrid, processor-only, fpga-only")
		bf         = flag.Int("bf", -1, "LU: FPGA row share per stripe (-1 = solve Eq. 4)")
		l          = flag.Int("l", -1, "LU: panel pipeline depth (-1 = solve Eq. 5)")
		l1         = flag.Int("l1", -1, "FW: processor ops per phase (-1 = solve Eq. 6)")
		functional = flag.Bool("functional", false, "carry real matrices and verify the result")
		seed       = flag.Int64("seed", 1, "functional input seed")
		timeline   = flag.Bool("timeline", false, "print a per-process activity timeline (small runs only)")
		metrics    = flag.Bool("metrics", false, "print per-run utilization and the Tp/Tf/Tmem/Tcomm overlap report")
		traceOut   = flag.String("trace-out", "", "write a Chrome/Perfetto trace_event JSON file of the run")
	)
	flag.Parse()

	if err := run(*app, *mc, *n, *b, *pes, *mode, *bf, *l, *l1, *functional, *seed, *timeline, *metrics, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "hybridsim:", err)
		os.Exit(1)
	}
}

func machineByName(name string) (machine.Config, error) {
	switch name {
	case "xd1":
		return machine.XD1(), nil
	case "xt3":
		return machine.XT3DRC(), nil
	case "src6":
		return machine.SRC6(), nil
	case "rasc":
		return machine.RASC(), nil
	default:
		return machine.Config{}, fmt.Errorf("unknown machine %q", name)
	}
}

func modeByName(name string) (core.Mode, error) {
	switch name {
	case "hybrid":
		return core.Hybrid, nil
	case "processor-only", "cpu":
		return core.ProcessorOnly, nil
	case "fpga-only", "fpga":
		return core.FPGAOnly, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func run(app, mcName string, n, b, pes int, modeName string, bf, l, l1 int, functional bool, seed int64, timeline, metrics bool, traceOut string) error {
	mc, err := machineByName(mcName)
	if err != nil {
		return err
	}
	md, err := modeByName(modeName)
	if err != nil {
		return err
	}
	fmt.Printf("machine: %s (%d nodes)\n", mc.Name, mc.Nodes)

	var col *trace.Collector
	var hook func(float64, string, string)
	if timeline {
		col = &trace.Collector{Limit: 2_000_000}
		hook = func(t float64, proc, action string) {
			col.Record(t, proc, action)
		}
		defer func() {
			fmt.Println("\nactivity timeline (# = busy):")
			if err := col.WriteTimeline(os.Stdout, 100, 0); err != nil {
				fmt.Fprintln(os.Stderr, "hybridsim: timeline:", err)
			}
		}()
	}

	// The recorder doubles as the span sink for -trace-out. Keep the
	// Observer interface value nil unless a recorder exists: a typed
	// nil *trace.Recorder inside a non-nil interface would still be
	// invoked by the engine.
	var rec *trace.Recorder
	var obs sim.Observer
	if traceOut != "" {
		rec = trace.NewRecorder()
		obs = rec
	}

	switch app {
	case "lu":
		r, err := core.RunLU(core.LUConfig{
			Machine: mc, N: n, B: b, PEs: pes, BF: bf, L: l,
			Mode: md, Functional: functional, Seed: seed, Trace: hook,
			Observer: obs, Telemetry: metrics,
		})
		if err != nil {
			return err
		}
		printLU(r)
	case "fw":
		r, err := core.RunFW(core.FWConfig{
			Machine: mc, N: n, B: b, PEs: pes, L1: l1,
			Mode: md, Functional: functional, Seed: seed, Trace: hook,
			Observer: obs, Telemetry: metrics,
		})
		if err != nil {
			return err
		}
		printFW(r)
	case "mm":
		r, err := core.RunMM(core.MMConfig{
			Machine: mc, N: n, PEs: pes, BF: bf,
			Mode: md, Functional: functional, Seed: seed,
			Observer: obs, Telemetry: metrics,
		})
		if err != nil {
			return err
		}
		printMM(r)
	case "qr":
		r, err := core.RunQR(core.QRConfig{
			Machine: mc, N: n, B: b, PEs: pes, BF: bf,
			Mode: md, Functional: functional, Seed: seed,
			Observer: obs, Telemetry: metrics,
		})
		if err != nil {
			return err
		}
		printQR(r)
	case "cg":
		r, err := core.RunCG(core.CGConfig{
			Machine: mc, N: n, PEs: pes, RowsFPGA: bf,
			Mode: md, Seed: seed,
			Observer: obs, Telemetry: metrics,
		})
		if err != nil {
			return err
		}
		printCG(r)
	case "chol":
		r, err := core.RunCholesky(core.CholConfig{
			Machine: mc, N: n, B: b, PEs: pes, BF: bf, L: l,
			Mode: md, Functional: functional, Seed: seed,
			Observer: obs, Telemetry: metrics,
		})
		if err != nil {
			return err
		}
		printChol(r)
	default:
		return fmt.Errorf("unknown app %q (want lu, fw, mm, chol, qr or cg)", app)
	}
	if rec != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := rec.WritePerfetto(f); err != nil {
			f.Close()
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Printf("trace:             %d spans -> %s (chrome://tracing, ui.perfetto.dev)\n",
			len(rec.Spans()), traceOut)
	}
	return nil
}

func printMM(r *core.MMResult) {
	fmt.Println("application:       hybrid matrix multiplication (Eq. 1)")
	printCommon(&r.Result)
	fmt.Printf("partition:         bf=%d bp=%d result rows per stripe (k=%d PEs)\n", r.BF, r.BP, r.K)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}

func printQR(r *core.QRResult) {
	fmt.Println("application:       block Householder QR factorization (extension)")
	printCommon(&r.Result)
	fmt.Printf("partition:         bf=%d bp=%d (k=%d PEs)\n", r.BF, r.BP, r.K)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}

func printCG(r *core.CGRunResult) {
	fmt.Println("application:       conjugate gradient (extension, after [9])")
	printCommon(&r.Result)
	fmt.Printf("row split:         %d rows to FPGA (SRAM-resident), %d to processor (k=%d MACs)\n",
		r.RowsFPGA, r.RowsCPU, r.K)
	fmt.Printf("solve:             %d iterations, converged=%v, SRAM load %.4fs\n",
		r.Iterations, r.Converged, r.LoadSeconds)
}

func printChol(r *core.CholResult) {
	fmt.Println("application:       block Cholesky factorization (extension)")
	printCommon(&r.Result)
	fmt.Printf("partition:         bf=%d bp=%d (k=%d PEs), pipeline l=%d\n", r.BF, r.BP, r.K, r.L)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}

func printCommon(r *core.Result) {
	fmt.Printf("design:            %s\n", r.Mode)
	fmt.Printf("problem:           n=%d b=%d\n", r.N, r.B)
	fmt.Printf("simulated latency: %.3f s\n", r.Seconds)
	fmt.Printf("throughput:        %.3f GFLOPS (%.3g flops)\n", r.GFLOPS, r.Flops)
	fmt.Printf("network traffic:   %.2f GB\n", float64(r.NetworkBytes)/1e9)
	fmt.Printf("coordinations:     %d register handshakes\n", r.Coordinations)
	fmt.Printf("utilization:       cpu %.1f%%  fpga %.1f%%\n",
		100*r.Utilization(r.CPUBusy), 100*r.Utilization(r.FPGABusy))
	if r.Checked {
		fmt.Printf("functional check:  max residual %.3g vs sequential reference\n", r.MaxResidual)
	}
	if r.Telemetry != nil {
		fmt.Println()
		if err := r.Telemetry.WriteReport(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hybridsim: metrics:", err)
		}
	}
}

func printLU(r *core.LUResult) {
	fmt.Println("application:       block LU decomposition")
	printCommon(&r.Result)
	fmt.Printf("partition:         bf=%d bp=%d (k=%d PEs), pipeline l=%d\n", r.BF, r.BP, r.K, r.L)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}

func printFW(r *core.FWResult) {
	fmt.Println("application:       blocked Floyd-Warshall (all-pairs shortest paths)")
	printCommon(&r.Result)
	fmt.Printf("partition:         l1=%d processor ops, l2=%d FPGA ops per phase (k=%d PEs)\n", r.L1, r.L2, r.K)
	fmt.Printf("model prediction:  %.3f GFLOPS (measured/predicted = %.1f%%)\n",
		r.Prediction.GFLOPS, 100*r.GFLOPS/r.Prediction.GFLOPS)
}
