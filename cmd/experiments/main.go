// Command experiments regenerates the tables and figures of the paper's
// evaluation section from fresh simulations, and doubles as the
// benchmark-regression gate over the repository's headline numbers.
//
// Usage:
//
//	experiments all                 # every experiment (FW at n=18432)
//	experiments -full fig9          # Figure 9 with the paper's n=92160
//	experiments -csv fig5 fig7      # selected experiments as CSV
//	experiments list                # show what is available
//	experiments -bench-json BENCH_baseline.json   # write the baseline
//	experiments -check BENCH_baseline.json        # re-run and diff
//
// The simulator is deterministic, so -check against a baseline from the
// same build must pass with zero diff; -tol admits small relative drift
// when comparing across builds that intentionally changed behavior.
package main

import (
	"flag"
	"fmt"
	"os"

	"codesign/internal/analysis"
	"codesign/internal/cli"
	"codesign/internal/exper"
)

// log is the tool's shared leveled stderr logger (-v/-q adjust it).
var log = cli.NewLogger("experiments", os.Stderr)

var experiments = []struct {
	name string
	desc string
	run  func(full bool) (*exper.Table, error)
}{
	{"table1", "LU panel routine latencies (b=3000)",
		func(bool) (*exper.Table, error) { return exper.Table1() }},
	{"fig5", "block-multiply latency vs bf",
		func(bool) (*exper.Table, error) { return exper.Fig5() }},
	{"fig6", "0th LU iteration latency vs l",
		func(bool) (*exper.Table, error) { return exper.Fig6() }},
	{"fig7", "FW iteration latency vs l1",
		func(bool) (*exper.Table, error) { return exper.Fig7() }},
	{"fig8", "LU GFLOPS vs n/b",
		func(bool) (*exper.Table, error) { return exper.Fig8() }},
	{"fig9", "hybrid vs baseline designs",
		func(full bool) (*exper.Table, error) { return exper.Fig9(full) }},
	{"predict", "measured vs model-predicted performance",
		func(full bool) (*exper.Table, error) { return exper.Prediction(full) }},
	{"ablations", "design-choice ablation studies",
		func(bool) (*exper.Table, error) { return exper.Ablations() }},
	{"extensions", "model applied to matmul and Cholesky",
		func(bool) (*exper.Table, error) { return exper.Extensions() }},
	{"sparse", "sparse vs dense partition regimes (spmv/spmm)",
		func(bool) (*exper.Table, error) { return exper.SparseRegimes() }},
	{"sensitivity", "LU partition/throughput vs system parameters",
		func(bool) (*exper.Table, error) { return exper.Sensitivity() }},
	{"designspace", "PE-array design-space sweep reproducing the paper's XD1 choice",
		func(bool) (*exper.Table, error) { return exper.DesignSpace() }},
	{"degraded", "degraded-mode repartitioning under injected faults",
		func(bool) (*exper.Table, error) { return exper.Degraded() }},
}

func main() {
	full := flag.Bool("full", false, "use the paper's full FW problem size (n=92160; a long simulation)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	benchJSON := flag.String("bench-json", "", "run the headline benchmark suite and write its baseline JSON to `file`")
	check := flag.String("check", "", "re-run the headline suite and fail on any metric diff against baseline `file`")
	tol := flag.Float64("tol", 0, "relative tolerance for -check (0 = demand bit-exact equality)")
	log.AddFlags(flag.CommandLine)
	flag.Parse()

	if *benchJSON != "" && *check != "" {
		log.Errorf("-bench-json and -check are mutually exclusive")
		os.Exit(2)
	}
	if *benchJSON != "" {
		if err := writeBaseline(*benchJSON); err != nil {
			log.Errorf("%v", err)
			os.Exit(1)
		}
		return
	}
	if *check != "" {
		if err := checkBaseline(*check, *tol); err != nil {
			log.Errorf("%v", err)
			os.Exit(1)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, e := range experiments {
			fmt.Printf("  %-10s %s\n", e.name, e.desc)
		}
		return
	}
	var selected []string
	if args[0] == "all" {
		for _, e := range experiments {
			selected = append(selected, e.name)
		}
	} else {
		selected = args
	}
	for _, name := range selected {
		found := false
		for _, e := range experiments {
			if e.name != name {
				continue
			}
			found = true
			t, err := e.run(*full)
			if err != nil {
				log.Errorf("%s: %v", name, err)
				os.Exit(1)
			}
			var werr error
			if *csv {
				werr = t.WriteCSV(os.Stdout)
			} else {
				werr = t.Write(os.Stdout)
			}
			if werr != nil {
				log.Errorf("%v", werr)
				os.Exit(1)
			}
		}
		if !found {
			log.Errorf("unknown experiment %q (try 'list')", name)
			os.Exit(2)
		}
	}
}

// writeBaseline runs the headline suite and serializes it.
func writeBaseline(path string) error {
	b, err := exper.Headline()
	if err != nil {
		return err
	}
	if err := b.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %d headline metrics to %s\n", len(b.Metrics), path)
	return nil
}

// checkBaseline re-runs the headline suite and diffs it against a
// stored baseline, reporting every divergent metric before failing.
func checkBaseline(path string, tol float64) error {
	old, err := analysis.ReadBaselineFile(path)
	if err != nil {
		return err
	}
	fresh, err := exper.Headline()
	if err != nil {
		return err
	}
	deltas := analysis.Diff(old, fresh, tol)
	if len(deltas) == 0 {
		fmt.Printf("check passed: %d metrics match %s (tol %g)\n", len(old.Metrics), path, tol)
		return nil
	}
	for _, d := range deltas {
		log.Warnf("diverges: %v", d)
	}
	return fmt.Errorf("%d of %d metrics diverge from %s (tol %g); if the change is intended, regenerate with: go run ./cmd/experiments -bench-json %s",
		len(deltas), len(old.Metrics), path, tol, path)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-full] [-csv] {all|list|<name>...}")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.name, e.desc)
	}
}
