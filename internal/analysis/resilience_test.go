package analysis_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"codesign/internal/analysis"
)

func TestResilienceRatios(t *testing.T) {
	r := &analysis.Resilience{
		BaselineSeconds:  1000,
		FaultedSeconds:   1300,
		OracleSeconds:    1200,
		RepartitionTimes: []float64{150, 410},
		DeadNodes:        []int{3},
		FaultEvents:      2,
	}
	if got := r.MakespanInflation(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MakespanInflation = %g, want 0.3", got)
	}
	if got := r.OracleInflation(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("OracleInflation = %g, want 0.2", got)
	}
	if got := r.RecoveryLag(); math.Abs(got-100) > 1e-12 {
		t.Errorf("RecoveryLag = %g, want 100", got)
	}
	if got := r.Repartitions(); got != 2 {
		t.Errorf("Repartitions = %d, want 2", got)
	}
}

func TestResilienceMissingReferences(t *testing.T) {
	// No oracle run: lag and oracle inflation must read 0, not -1300.
	r := &analysis.Resilience{BaselineSeconds: 1000, FaultedSeconds: 1300}
	if got := r.RecoveryLag(); got != 0 {
		t.Errorf("RecoveryLag without oracle = %g, want 0", got)
	}
	if got := r.OracleInflation(); got != 0 {
		t.Errorf("OracleInflation without oracle = %g, want 0", got)
	}
	// Degenerate baseline must not divide by zero.
	r = &analysis.Resilience{FaultedSeconds: 1300}
	if got := r.MakespanInflation(); got != 0 {
		t.Errorf("MakespanInflation without baseline = %g, want 0", got)
	}
}

func TestResilienceReport(t *testing.T) {
	r := &analysis.Resilience{
		BaselineSeconds:  1000,
		FaultedSeconds:   1300,
		OracleSeconds:    1200,
		RepartitionTimes: []float64{150},
		DeadNodes:        []int{3},
		FaultEvents:      2,
	}
	var buf bytes.Buffer
	if err := r.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"2 fault events", "nominal makespan", "+30.0%",
		"oracle makespan", "+20.0%", "recovery lag",
		"repartitions", "dead nodes", "[3]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Without an oracle run the oracle lines disappear.
	buf.Reset()
	r.OracleSeconds = 0
	if err := r.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "oracle") || strings.Contains(buf.String(), "recovery lag") {
		t.Errorf("oracle lines printed without an oracle run:\n%s", buf.String())
	}
}
