// Package mpi provides a rank-based message-passing layer over the
// simulated interconnect, mirroring the subset of MPI the paper's C
// program uses: blocking point-to-point sends and receives plus the
// collectives built from them (broadcast, barrier, gather, reduce).
//
// Semantics follow Section 4.3 of the paper: communication is performed
// by the node's processor, so a process that sends or receives is busy
// for the whole transfer and cannot compute — while the FPGA, which is
// not attached to the network, keeps running. This is why Equations
// (2), (4) and (6) charge Tcomm to the processor's side of the
// partition.
package mpi
