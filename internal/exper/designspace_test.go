package exper

import (
	"fmt"
	"strings"
	"testing"
)

// TestDesignSpaceReproducesPaperChoice checks the sweep regenerates
// the paper's published XD1 design point for LU: the k=8 PE array
// (Of=16) at the ~130 MHz placed clock is Pareto-optimal and the
// throughput maximum, and the next-larger array fails placement.
func TestDesignSpaceReproducesPaperChoice(t *testing.T) {
	tb, err := DesignSpace()
	if err != nil {
		t.Fatal(err)
	}
	var (
		k8       []string
		bestG    float64
		bestRow  []string
		sawInfea bool
	)
	for _, row := range tb.Rows {
		if row[0] == "8" {
			k8 = row
		}
		if strings.HasPrefix(row[7], "infeasible") {
			sawInfea = true
			continue
		}
		var g float64
		if _, err := fmt.Sscan(row[6], &g); err != nil {
			t.Fatalf("bad GFLOPS cell %q: %v", row[6], err)
		}
		if g > bestG {
			bestG, bestRow = g, row
		}
	}
	if k8 == nil {
		t.Fatal("no k=8 row in design-space table")
	}
	if k8[1] != "16" {
		t.Errorf("k=8 row has Of=%s, want 16", k8[1])
	}
	if !strings.HasPrefix(k8[2], "129.9") && !strings.HasPrefix(k8[2], "130.0") {
		t.Errorf("k=8 row has Ff=%s MHz, want ~130", k8[2])
	}
	if k8[8] != "yes" {
		t.Errorf("paper design point k=8 not Pareto-optimal: %v", k8)
	}
	if bestRow == nil || bestRow[0] != "8" {
		t.Errorf("throughput maximum at k=%v, paper picks k=8", bestRow)
	}
	if !sawInfea {
		t.Error("no infeasible rows: sweep should show the XC2VP50 capacity edge")
	}
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "k=8 (Of=16)") {
			found = true
		}
	}
	if !found {
		t.Errorf("selected-design note missing or wrong: %v", tb.Notes)
	}
}
