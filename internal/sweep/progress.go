package sweep

import (
	"strings"
	"time"
)

// Progress is a live snapshot of a running sweep, delivered to
// Options.OnProgress after each completed point. It carries everything
// a progress line, an ETA display or a metrics exporter needs without
// touching the sweep's internals.
type Progress struct {
	// Phase labels which pass of a two-stage RunScreened sweep this
	// snapshot belongs to: "screen" while the full grid runs under the
	// closed-form model, "refine" while the candidate subset runs under
	// the grid's method. Empty for a plain Run. Total/Done/ETA reset at
	// the phase boundary (each phase is its own run over its own point
	// set).
	Phase string
	// Total is the grid size; Done the points completed so far
	// (Done == Total on the final call).
	Total, Done int
	// Infeasible counts completed points whose evaluation was
	// infeasible (a design that does not fit, a divisibility
	// violation); Errored counts points whose evaluation panicked and
	// was converted to an infeasible outcome.
	Infeasible, Errored int
	// Stats is the memoizer traffic so far (Points is left 0 until the
	// run completes); use its hit-rate helpers for live cache
	// visibility.
	Stats Stats
	// Elapsed is wall-clock time since Run started evaluating.
	Elapsed time.Duration
	// PointSeconds is the evaluation wall time of the point that
	// triggered this callback.
	PointSeconds float64
	// Rate is the completion rate in points/second over a moving
	// window of recent completions (0 until two points complete).
	Rate float64
	// ETA estimates the remaining wall-clock time from Rate; it is
	// negative while no estimate exists and 0 on the final call.
	ETA time.Duration
	// WorkerBusy is each worker's cumulative evaluation time, indexed
	// by worker; the slice is freshly allocated per callback and may
	// be retained.
	WorkerBusy []time.Duration
}

// Percent returns completion in [0, 100].
func (p Progress) Percent() float64 {
	if p.Total == 0 {
		return 0
	}
	return 100 * float64(p.Done) / float64(p.Total)
}

// PlaceHitRate returns the fraction of place-and-route lookups served
// from the memo cache (0 before any lookup).
func (s Stats) PlaceHitRate() float64 {
	if s.PlaceLookups == 0 {
		return 0
	}
	return float64(s.PlaceLookups-s.PlaceSolves) / float64(s.PlaceLookups)
}

// PartitionHitRate returns the fraction of partition-solve lookups
// served from the memo cache (0 before any lookup).
func (s Stats) PartitionHitRate() float64 {
	if s.PartitionLookups == 0 {
		return 0
	}
	return float64(s.PartitionLookups-s.PartitionSolves) / float64(s.PartitionLookups)
}

// rateWindowSize bounds the moving completion window the ETA derives
// from: big enough to smooth worker-count jitter, small enough to
// track rate shifts (model-mode points after a sim-mode stretch).
const rateWindowSize = 32

// progressTracker accumulates per-completion state for OnProgress.
// All mutation happens under Run's notify mutex, so it needs no
// locking of its own.
type progressTracker struct {
	total int
	start time.Time
	done  int
	infes int
	errs  int
	busy  []time.Duration
	// times is a ring of the most recent completion timestamps.
	times [rateWindowSize]time.Time
	n     int
	// now is the tracker's clock; tests inject a fake to pin the
	// rate/ETA arithmetic at the ring boundary.
	now func() time.Time
	// phase is copied into every snapshot (see Progress.Phase).
	phase string
}

func newProgressTracker(total, workers int) *progressTracker {
	pt := &progressTracker{total: total, busy: make([]time.Duration, workers), now: time.Now}
	pt.start = pt.now()
	return pt
}

// completed folds one finished point into the tracker and returns the
// snapshot to publish. worker is the index of the evaluating worker,
// d its wall-clock evaluation time.
func (pt *progressTracker) completed(out *Outcome, stats Stats, worker int, d time.Duration) Progress {
	now := pt.now()
	pt.done++
	if !out.OK {
		if strings.HasPrefix(out.Err, "panic:") {
			pt.errs++
		} else {
			pt.infes++
		}
	}
	pt.busy[worker] += d
	pt.times[pt.n%rateWindowSize] = now
	pt.n++

	p := Progress{
		Phase: pt.phase,
		Total: pt.total, Done: pt.done,
		Infeasible: pt.infes, Errored: pt.errs,
		Stats:        stats,
		Elapsed:      now.Sub(pt.start),
		PointSeconds: d.Seconds(),
		ETA:          -1,
		WorkerBusy:   append([]time.Duration(nil), pt.busy...),
	}
	// Rate over the window: count completions between the oldest
	// retained timestamp and now.
	if pt.n >= 2 {
		span := pt.n
		if span > rateWindowSize {
			span = rateWindowSize
		}
		oldest := pt.times[(pt.n-span)%rateWindowSize]
		if dt := now.Sub(oldest).Seconds(); dt > 0 {
			p.Rate = float64(span-1) / dt
		}
	}
	switch {
	case pt.done == pt.total:
		p.ETA = 0
	case p.Rate > 0:
		p.ETA = time.Duration(float64(pt.total-pt.done) / p.Rate * float64(time.Second))
	}
	return p
}
