package core

import (
	"fmt"
	"math/rand"

	"codesign/internal/cpu"
	"codesign/internal/fault"
	"codesign/internal/fpga"
	"codesign/internal/machine"
	"codesign/internal/matrix"
	"codesign/internal/model"
	"codesign/internal/sim"
)

// MMConfig configures a distributed hybrid matrix multiplication run —
// the extension application from the authors' earlier hybrid work [22]
// and the pure Equation (1) case of the design model: C = A·B with the
// result columns split across nodes and, within each node, the result
// rows of every k-column stripe split between processor and FPGA. No
// network communication: operands are resident per node, so the
// partition balances only compute and DRAM streaming.
type MMConfig struct {
	// Machine is the system; zero value means one Cray XD1 chassis.
	Machine machine.Config
	// N is the matrix size (multiple of both the PE count and p).
	N int
	// PEs is the matmul design size; 0 means the largest that fits.
	PEs int
	// BF is the FPGA result-row share per stripe; -1 solves Eq. (1).
	BF int
	// Mode selects hybrid or a baseline.
	Mode Mode
	// Functional multiplies real matrices and verifies the result.
	Functional bool
	// Seed drives functional input generation.
	Seed int64
	// Observer, when non-nil, receives the structured telemetry stream
	// (raw events and typed spans; see internal/trace.Recorder).
	Observer sim.Observer
	// Telemetry attaches a span digest — utilization, bytes moved, and
	// the Tp/Tf/Tmem/Tcomm overlap decomposition — to the result.
	Telemetry bool
	// Faults, when non-nil, is installed into every charging path of
	// the machine (see machine.System.InstallFaults); incompatible with
	// Functional. MM has no degraded mode: faults dilate the charges
	// but the partition stays fixed.
	Faults *fault.Injector
}

// MMResult extends Result with the multiply-specific configuration.
type MMResult struct {
	Result
	BF, BP, K  int
	Model      model.MMParams
	Prediction model.Prediction
}

// RunMM builds the machine and simulates the stripe-pipelined multiply.
func RunMM(cfg MMConfig) (*MMResult, error) {
	if cfg.Machine.Nodes == 0 {
		cfg.Machine = machine.XD1()
	}
	p := cfg.Machine.Nodes
	sys, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	rec := setupTelemetry(sys.Eng, cfg.Telemetry, cfg.Observer)
	k := cfg.PEs
	if k == 0 {
		k = fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewMatMul(k) }, cfg.Machine.Device)
	}
	if cfg.N <= 0 || cfg.N%k != 0 || cfg.N%p != 0 {
		return nil, fmt.Errorf("core: n=%d must be a positive multiple of k=%d and p=%d", cfg.N, k, p)
	}
	if err := sys.InstallDesign(fpga.NewMatMul(k)); err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		if cfg.Functional {
			return nil, fmt.Errorf("core: functional checking cannot run under fault injection")
		}
		if cfg.Faults.HasDeaths() {
			return nil, fmt.Errorf("core: mm has no surviving owner for a dead node's result columns")
		}
		if err := sys.InstallFaults(cfg.Faults); err != nil {
			return nil, err
		}
	}
	accel := sys.Nodes[0].Accel
	proc := sys.Nodes[0].Proc

	mp := model.MMParams{
		P: p, N: cfg.N, K: k,
		Ff:         accel.Placed.FreqHz,
		StripeRate: proc.Rate(cpu.DGEMMStripe),
		Bd:         accel.DRAM.BandwidthBytes,
		Bw:         machine.WordBytes,
		SRAMBytes:  sys.Nodes[0].SRAM.TotalBytes() / 2,
	}
	if err := mp.Validate(); err != nil {
		return nil, err
	}
	bf := cfg.BF
	switch cfg.Mode {
	case ProcessorOnly:
		bf = 0
	case FPGAOnly:
		bf = cfg.N
	default:
		if bf < 0 {
			bf, _ = mp.SolvePartition()
		}
	}
	if bf < 0 || bf > cfg.N {
		return nil, fmt.Errorf("core: bf=%d out of [0,%d]", bf, cfg.N)
	}

	tf, tp, tmem := mp.StripeTimes(bf)
	stripes := cfg.N / k
	w := mp.Width()
	fpgaStripeCycles := float64(bf) * float64(w)

	// Functional state.
	var a, b, c, ref *matrix.Dense
	if cfg.Functional {
		rng := rand.New(rand.NewSource(cfg.Seed))
		a = matrix.Random(cfg.N, cfg.N, rng)
		b = matrix.Random(cfg.N, cfg.N, rng)
		c = matrix.New(cfg.N, cfg.N)
		ref = matrix.Mul(a, b)
	}

	for i := 0; i < p; i++ {
		node := sys.Nodes[i]
		me := i
		var fpgaDone *sim.Signal
		fq := sim.NewMailbox(sys.Eng, fmt.Sprintf("mm.fq%d", me))
		if bf > 0 {
			acc := node.Accel
			fpgaDone = acc.Launch(fmt.Sprintf("mm.fpga%d", me), func(fp *sim.Proc) {
				fp.SetPhase("stripe")
				for s := 0; s < stripes; s++ {
					fq.Get(fp)
					acc.Compute(fp, fpgaStripeCycles)
				}
			})
		}
		// Per-stripe DMA volume: the FPGA's bf·k operand words plus the
		// k·w result words behind the model's Tmem term.
		stripeDMABytes := int64(bf*k+k*w) * machine.WordBytes
		sys.Eng.Go(fmt.Sprintf("mm.cpu%d", me), func(pr *sim.Proc) {
			pr.SetPhase("stripe")
			for s := 0; s < stripes; s++ {
				if bf > 0 {
					// Stream the stripe to the FPGA.
					node.ChargeCPU(pr, sim.CatDMA, stripeDMABytes, tmem)
					fq.Put(s)
				}
				if bf < cfg.N {
					// Software rows of the stripe.
					node.ChargeCPU(pr, sim.CatCompute, 0, tp)
				}
			}
			pr.SetPhase("")
			if c != nil {
				// Functional: this node's w result columns, all rows
				// (the bf/bp split is the same arithmetic).
				cols := c.View(0, me*w, cfg.N, w)
				bCols := b.View(0, me*w, cfg.N, w)
				matrix.Gemm(1, a, bCols, 0, cols)
			}
			if fpgaDone != nil {
				node.Accel.AwaitDone(pr, fpgaDone)
			}
		})
	}

	end, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("core: mm simulation: %w", err)
	}
	n := float64(cfg.N)
	flops := 2 * n * n * n
	cpuBusy, fpgaBusy := collectBusy(sys)
	res := &MMResult{
		Result: Result{
			App: "mm", Mode: cfg.Mode, N: cfg.N, B: k,
			Seconds: end, Flops: flops, GFLOPS: flops / end / 1e9,
			NetworkBytes:  sys.Fab.Bytes(),
			Coordinations: collectCoordinations(sys),
			CPUBusy:       cpuBusy, FPGABusy: fpgaBusy,
		},
		BF: bf, BP: cfg.N - bf, K: k,
		Model:      mp,
		Prediction: mp.PredictMM(bf),
	}
	_ = tf
	summarizeTelemetry(rec, end, &res.Result)
	if cfg.Functional {
		res.Checked = true
		res.MaxResidual = c.MaxDiff(ref)
	}
	return res, nil
}
