package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"codesign/internal/sweep"
)

// TestSolveSpMVDensity covers the sparse workload through the API: the
// density field reaches the evaluator (the regime flip shows in the
// outcome) and distinguishes cache keys.
func TestSolveSpMVDensity(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := s.post(t, "/v1/solve", SolveRequest{App: "spmv", N: 1024, Density: 0.05})
	if code != http.StatusOK {
		t.Fatalf("sparse solve: %d\n%s", code, body)
	}
	sparse := decodeSolve(t, body)
	if !sparse.Outcome.OK {
		t.Fatalf("sparse outcome infeasible: %s", sparse.Outcome.Err)
	}
	if sparse.Point.Density != 0.05 {
		t.Fatalf("echoed density = %g, want 0.05", sparse.Point.Density)
	}
	if sparse.Outcome.BF != 1024 || sparse.Outcome.Binding != "Bd" {
		t.Fatalf("sparse outcome bf=%d binding=%s, want 1024/Bd",
			sparse.Outcome.BF, sparse.Outcome.Binding)
	}

	// Same coordinate at density 0 is a different cache key and the
	// opposite regime.
	code, body = s.post(t, "/v1/solve", SolveRequest{App: "spmv", N: 1024})
	if code != http.StatusOK {
		t.Fatalf("dense solve: %d\n%s", code, body)
	}
	dense := decodeSolve(t, body)
	if dense.Source != "computed" {
		t.Fatalf("dense solve source = %q, want computed (distinct key)", dense.Source)
	}
	if dense.Outcome.BF != 0 || dense.Outcome.Binding != "Op*Fp" {
		t.Fatalf("dense outcome bf=%d binding=%s, want 0/Op*Fp",
			dense.Outcome.BF, dense.Outcome.Binding)
	}
}

func TestSolveDensityValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := s.post(t, "/v1/solve", SolveRequest{App: "spmv", Density: 1.5})
	if code != http.StatusBadRequest {
		t.Fatalf("density 1.5: %d\n%s", code, body)
	}
}

// TestDesignDensityGrid runs a density axis through /v1/design and
// checks the ranking sees both regimes.
func TestDesignDensityGrid(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := s.post(t, "/v1/design", DesignRequest{
		Grid: sweep.Grid{
			Apps:    []string{"spmv"},
			N:       []int{1024},
			Density: []float64{0, 0.05},
		},
		Top: 2,
	})
	if code != http.StatusOK {
		t.Fatalf("design: %d\n%s", code, body)
	}
	var r DesignResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Points != 2 || r.Feasible != 2 || len(r.Best) != 2 {
		t.Fatalf("design response: points=%d feasible=%d best=%d", r.Points, r.Feasible, len(r.Best))
	}
	// Dense DGEMV outruns the Bd-bound sparse stream, so it ranks first.
	if r.Best[0].Point.Density != 0 || r.Best[1].Point.Density != 0.05 {
		t.Fatalf("ranking order: %g then %g, want 0 then 0.05",
			r.Best[0].Point.Density, r.Best[1].Point.Density)
	}
}
