package fpmath

// Core describes a pipelined floating-point unit as instantiated on the
// FPGA: its function, pipeline depth and the maximum clock frequency the
// placed-and-routed core achieves. Values follow the double-precision
// cores of Govindu et al. [8] on Virtex-II Pro, which the paper's
// designs instantiate (the full designs close timing at 130 MHz for the
// matrix multiplier and 120 MHz for the Floyd-Warshall array).
type Core struct {
	// Name identifies the core, e.g. "add64", "mul64", "cmp64".
	Name string
	// PipelineStages is the latency in clock cycles from operand issue
	// to result.
	PipelineStages int
	// MaxFreqHz is the post-place-and-route maximum clock frequency of
	// the core in isolation.
	MaxFreqHz float64
	// Slices is the approximate Virtex-II Pro slice cost of one core.
	Slices int
	// Embedded18x18 is the number of embedded 18×18 multiplier blocks
	// consumed (only the multiplier uses them).
	Embedded18x18 int
}

// Standard double-precision cores. Slice and stage counts follow the
// published parameterizable library [8]; frequencies are the deeply
// pipelined configurations.
var (
	// Adder64 is the double-precision floating-point adder core.
	Adder64 = Core{Name: "add64", PipelineStages: 14, MaxFreqHz: 200e6, Slices: 1050}
	// Multiplier64 is the double-precision floating-point multiplier.
	Multiplier64 = Core{Name: "mul64", PipelineStages: 12, MaxFreqHz: 180e6, Slices: 1550, Embedded18x18: 9}
	// Comparator64 is the double-precision comparator used by the
	// Floyd-Warshall PEs (an adder datapath with the rounding stages
	// replaced by a magnitude compare).
	Comparator64 = Core{Name: "cmp64", PipelineStages: 3, MaxFreqHz: 250e6, Slices: 320}
)

// ThroughputFLOPs returns the number of results the core produces per
// second at clock frequency f (one per cycle when fully pipelined).
func (c Core) ThroughputFLOPs(f float64) float64 {
	if f <= 0 || f > c.MaxFreqHz {
		f = c.MaxFreqHz
	}
	return f
}

// LatencySeconds returns the pipeline fill latency at clock frequency f.
func (c Core) LatencySeconds(f float64) float64 {
	if f <= 0 {
		f = c.MaxFreqHz
	}
	return float64(c.PipelineStages) / f
}
