// Package dist implements the data distributions the paper's designs
// use: the cyclic block-row/column layout of the LU design (Section
// 5.1.3, "Initially, P_i stores A_iv and A_ui ...") and the contiguous
// block-column layout of the Floyd-Warshall design (Section 5.2.3).
// The distributions answer ownership queries (who stores block (u,v)?),
// enumerate each node's local blocks, and account storage balance.
package dist
