package analysis_test

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"codesign/internal/analysis"
	"codesign/internal/core"
	"codesign/internal/fault"
	"codesign/internal/model"
	"codesign/internal/sim"
	"codesign/internal/trace"
)

// checkInvariants asserts the delta-attribution invariant on a
// comparison: stored per-phase deltas are bit-identical to recomputing
// them from the stored class seconds, the in-order sums reproduce
// AttributedDelta / ResourceAttributedDelta bit-exactly, and the
// residual against the raw makespan delta is ulp-scale.
func checkInvariants(t *testing.T, c *analysis.Comparison) {
	t.Helper()
	for _, pd := range c.Phases {
		busy, wait, idle, contrib := pd.Recompute()
		if busy != pd.BusyDelta || wait != pd.WaitDelta || idle != pd.IdleDelta || contrib != pd.Contribution {
			t.Fatalf("phase %q: stored deltas diverge from recomputation: %+v", pd.Phase, pd)
		}
	}
	if got := c.AttributedSum(); got != c.AttributedDelta {
		t.Fatalf("phase contributions sum to %.17g, stored AttributedDelta %.17g", got, c.AttributedDelta)
	}
	if got := c.ResourceAttributedSum(); got != c.ResourceAttributedDelta {
		t.Fatalf("resource contributions sum to %.17g, stored %.17g", got, c.ResourceAttributedDelta)
	}
	scale := math.Max(1, math.Max(math.Abs(c.BaseMakespan), math.Abs(c.CandMakespan)))
	if math.Abs(c.Residual) > 1e-9*scale {
		t.Fatalf("residual %.17g too large for makespans %g/%g", c.Residual, c.BaseMakespan, c.CandMakespan)
	}
	if c.MakespanDelta-c.AttributedDelta != c.Residual {
		t.Fatalf("residual inconsistent: %.17g vs %.17g", c.MakespanDelta-c.AttributedDelta, c.Residual)
	}
}

// checkPartition asserts one side's attributed phase totals partition
// the makespan (no double counting, no gaps) to float tolerance.
func checkPartition(t *testing.T, c *analysis.Comparison) {
	t.Helper()
	var base, cand float64
	for _, pd := range c.Phases {
		base += pd.Base.Total()
		cand += pd.Cand.Total()
	}
	scale := math.Max(1, math.Max(c.BaseMakespan, c.CandMakespan))
	if math.Abs(base-c.BaseMakespan) > 1e-9*scale {
		t.Fatalf("base phase totals %.17g do not partition makespan %.17g", base, c.BaseMakespan)
	}
	if math.Abs(cand-c.CandMakespan) > 1e-9*scale {
		t.Fatalf("cand phase totals %.17g do not partition makespan %.17g", cand, c.CandMakespan)
	}
}

func TestCompareSimpleAttribution(t *testing.T) {
	base := analysis.Run{
		Label:    "base",
		Makespan: 2,
		Spans: []sim.SpanEvent{
			{Category: sim.CatCompute, Device: sim.DeviceFPGA, Proc: "fpga0", Resource: "fpga0", Phase: "panel", Start: 0, End: 1},
		},
	}
	cand := analysis.Run{
		Label:    "cand",
		Makespan: 3,
		Spans: []sim.SpanEvent{
			{Category: sim.CatCompute, Device: sim.DeviceFPGA, Proc: "fpga0", Resource: "fpga0", Phase: "panel", Start: 0, End: 2.5},
		},
	}
	c := analysis.Compare(base, cand)
	checkInvariants(t, c)
	checkPartition(t, c)
	if c.MakespanDelta != 1 {
		t.Fatalf("MakespanDelta = %g, want 1", c.MakespanDelta)
	}
	// panel grew 1.5s of Tf; idle (phase "") shrank 0.5s.
	var panel, unlabeled *analysis.PhaseDelta
	for i := range c.Phases {
		switch c.Phases[i].Phase {
		case "panel":
			panel = &c.Phases[i]
		case "":
			unlabeled = &c.Phases[i]
		}
	}
	if panel == nil || unlabeled == nil {
		t.Fatalf("phases = %+v", c.Phases)
	}
	if panel.Contribution != 1.5 || panel.BusyDelta != 1.5 || panel.Cand.Tf != 2.5 {
		t.Fatalf("panel delta = %+v", panel)
	}
	if unlabeled.Contribution != -0.5 || unlabeled.IdleDelta != -0.5 {
		t.Fatalf("unlabeled delta = %+v", unlabeled)
	}
}

// Overlapping spans must resolve to one owner by class priority: FPGA
// compute (Tf) outranks processor compute (Tp), so the overlap interval
// is attributed to the Tf span's phase, never both.
func TestComparePriorityAttribution(t *testing.T) {
	spans := []sim.SpanEvent{
		{Category: sim.CatCompute, Device: sim.DeviceFPGA, Proc: "fpga0", Resource: "fpga0", Phase: "x", Start: 0, End: 2},
		{Category: sim.CatCompute, Device: sim.DeviceCPU, Proc: "cpu0", Resource: "cpu0", Phase: "y", Start: 1, End: 3},
	}
	c := analysis.Compare(
		analysis.Run{Makespan: 3, Spans: nil},
		analysis.Run{Makespan: 3, Spans: spans},
	)
	checkInvariants(t, c)
	var x, y analysis.PhaseDelta
	for _, pd := range c.Phases {
		switch pd.Phase {
		case "x":
			x = pd
		case "y":
			y = pd
		}
	}
	if x.Cand.Tf != 2 || x.Cand.Tp != 0 {
		t.Fatalf("phase x attribution = %+v", x.Cand)
	}
	if y.Cand.Tp != 1 || y.Cand.Tf != 0 {
		t.Fatalf("phase y attribution = %+v (want only the non-overlapped 1s)", y.Cand)
	}
}

// The exact-sum invariant must hold for arbitrary span soups, and the
// JSON output must be byte-deterministic and survive a round-trip with
// the invariant intact.
func TestCompareExactSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	phases := []string{"", "panel", "opmm", "broadcast", "update", "pivot"}
	resources := []string{"", "cpu0", "cpu1", "fpga0", "dram0", "link0"}
	cats := []sim.Category{sim.CatCompute, sim.CatDMA, sim.CatNetwork, sim.CatSync}
	devs := []sim.Device{sim.DeviceUnknown, sim.DeviceCPU, sim.DeviceFPGA, sim.DeviceDRAM, sim.DeviceLink}
	randomRun := func(n int) analysis.Run {
		spans := make([]sim.SpanEvent, n)
		var max float64
		for i := range spans {
			start := rng.Float64() * 900
			dur := rng.Float64() * 90
			spans[i] = sim.SpanEvent{
				Category: cats[rng.Intn(len(cats))],
				Device:   devs[rng.Intn(len(devs))],
				Proc:     resources[rng.Intn(len(resources))],
				Resource: resources[rng.Intn(len(resources))],
				Phase:    phases[rng.Intn(len(phases))],
				Bytes:    int64(rng.Intn(1 << 20)),
				Start:    start,
				End:      start + dur,
			}
			if spans[i].End > max {
				max = spans[i].End
			}
		}
		return analysis.Run{Makespan: max + rng.Float64()*10, Spans: spans}
	}
	for trial := 0; trial < 40; trial++ {
		base := randomRun(1 + rng.Intn(120))
		cand := randomRun(1 + rng.Intn(120))
		c := analysis.Compare(base, cand)
		checkInvariants(t, c)
		checkPartition(t, c)

		var a, b bytes.Buffer
		if err := c.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := analysis.Compare(base, cand).WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("Comparison JSON is not byte-deterministic")
		}

		var rt analysis.Comparison
		if err := json.Unmarshal(a.Bytes(), &rt); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, &rt)
	}
}

// A real nominal-vs-faulted LU pair: the attribution must explain the
// whole dilation, the fault window must show up as positive phase
// contributions, and Resilience.AttributeOverhead must agree.
func TestCompareRealFaultedLU(t *testing.T) {
	runLU := func(inj *fault.Injector) (analysis.Run, *core.LUResult) {
		rec := trace.NewRecorder()
		res, err := core.RunLU(core.LUConfig{
			N: 30000, B: 3000, BF: -1, L: -1, Mode: core.Hybrid,
			Observer: rec, Faults: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return analysis.Run{Makespan: res.Seconds, Spans: rec.Spans()}, res
	}
	nominal, nomRes := runLU(nil)
	nominal.Label = "nominal"

	spec := &fault.Spec{
		Window: 50,
		Events: []fault.Event{
			{Kind: fault.CPUSlow, Node: 2, Start: 100, Duration: 400, Factor: 0.5},
		},
	}
	inj, err := fault.New(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	faulted, faultRes := runLU(inj)
	faulted.Label = "faulted"

	if faultRes.Seconds <= nomRes.Seconds {
		t.Fatalf("fault did not dilate the run: %g <= %g", faultRes.Seconds, nomRes.Seconds)
	}
	c := analysis.Compare(nominal, faulted)
	checkInvariants(t, c)
	checkPartition(t, c)
	if c.MakespanDelta <= 0 {
		t.Fatalf("MakespanDelta = %g, want > 0", c.MakespanDelta)
	}
	// 100% of the delta is attributed: the residual is float noise only.
	if math.Abs(c.Residual) > 1e-9*c.CandMakespan {
		t.Fatalf("attribution left %g s unexplained", c.Residual)
	}
	var maxContribution float64
	for _, pd := range c.Phases {
		if pd.Contribution > maxContribution {
			maxContribution = pd.Contribution
		}
	}
	if maxContribution <= 0 {
		t.Fatal("no phase absorbed the dilation")
	}

	r := &analysis.Resilience{BaselineSeconds: nomRes.Seconds, FaultedSeconds: faultRes.Seconds, FaultEvents: 1}
	r.AttributeOverhead(nominal, faulted)
	if len(r.Overheads) == 0 {
		t.Fatal("AttributeOverhead produced no phases")
	}
	var sum float64
	for _, o := range r.Overheads {
		sum += o.Overhead
	}
	if sum != c.AttributedDelta {
		t.Fatalf("overheads sum %.17g != AttributedDelta %.17g", sum, c.AttributedDelta)
	}
	var buf bytes.Buffer
	if err := r.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fault overhead by phase") {
		t.Fatalf("resilience report missing overhead table:\n%s", buf.String())
	}

	// The human report renders and mentions the moving parts.
	buf.Reset()
	if err := c.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"differential analysis: nominal -> faulted", "phase contributions", "critical path", "bottleneck transitions"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, buf.String())
		}
	}
}

// Critical-path diffing: activities only on one side land in Entered /
// Left; shared activities with moved seconds land in Changed.
func TestCompareCritPathAndBindings(t *testing.T) {
	base := analysis.Run{
		Makespan: 4,
		Spans: []sim.SpanEvent{
			{Category: sim.CatCompute, Device: sim.DeviceCPU, Proc: "cpu0", Resource: "cpu0", Phase: "a", Start: 0, End: 2},
			{Category: sim.CatNetwork, Device: sim.DeviceLink, Proc: "cpu0", Resource: "link0", Phase: "b", Start: 2, End: 4},
		},
		Expected: map[string]model.Binding{"a": model.BindOpFp},
	}
	cand := analysis.Run{
		Makespan: 5,
		Spans: []sim.SpanEvent{
			{Category: sim.CatCompute, Device: sim.DeviceCPU, Proc: "cpu0", Resource: "cpu0", Phase: "a", Start: 0, End: 2},
			{Category: sim.CatDMA, Device: sim.DeviceDRAM, Proc: "cpu0", Resource: "dram0", Phase: "c", Start: 2, End: 5},
		},
		Expected: map[string]model.Binding{"a": model.BindOpFp},
	}
	c := analysis.Compare(base, cand)
	checkInvariants(t, c)
	find := func(entries []analysis.PathEntry, phase string) bool {
		for _, e := range entries {
			if e.Phase == phase {
				return true
			}
		}
		return false
	}
	if !find(c.CritPath.Entered, "c") {
		t.Fatalf("phase c should have entered the critical path: %+v", c.CritPath)
	}
	if !find(c.CritPath.Left, "b") {
		t.Fatalf("phase b should have left the critical path: %+v", c.CritPath)
	}
	var shifts []string
	for _, b := range c.Bindings {
		if b.Shifted {
			shifts = append(shifts, b.Phase)
		}
	}
	// b left, c entered; a stayed put.
	for _, want := range []string{"b", "c"} {
		found := false
		for _, s := range shifts {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("phase %q should be a shifted binding: %+v", want, c.Bindings)
		}
	}
	for _, b := range c.Bindings {
		if b.Phase == "a" && b.Shifted {
			t.Fatalf("phase a should not have shifted: %+v", b)
		}
		if b.Phase == "a" && (b.BaseExpected != "Op*Fp" && b.BaseExpected == "") {
			t.Fatalf("phase a expected binding missing: %+v", b)
		}
	}
}
