package sim

import "fmt"

// Resource is a counted resource with a FIFO wait queue — a processor
// core, an FPGA compute array, a DMA channel, a network link. Acquire
// blocks the calling process while the resource is saturated; waiters
// are served in request order, which keeps simulations deterministic.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*Proc

	// utilization accounting
	lastChange float64
	busyInt    float64 // integral of inUse over time
	acquires   int64
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) accumulate() {
	r.busyInt += float64(r.inUse) * (r.eng.now - r.lastChange)
	r.lastChange = r.eng.now
}

// Acquire obtains one unit, blocking p in FIFO order if none is free.
func (r *Resource) Acquire(p *Proc) {
	r.acquires++
	if r.inUse < r.capacity {
		r.accumulate()
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park("acquire " + r.name)
}

// TryAcquire obtains a unit without blocking; it reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity {
		r.accumulate()
		r.inUse++
		r.acquires++
		return true
	}
	return false
}

// Release returns one unit and wakes the longest-waiting process, if
// any. It may be called from process or scheduler context.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if len(r.waiters) > 0 {
		// Hand the unit directly to the next waiter: utilization is
		// unchanged, the waiter resumes at the current time.
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		e := r.eng
		e.schedule(e.now, func() { e.runProc(next) })
		return
	}
	r.accumulate()
	r.inUse--
}

// Use acquires the resource, holds it for dt seconds of virtual time,
// and releases it. This is the common "exclusive busy" pattern for
// modeling computation on a device.
func (r *Resource) Use(p *Proc, dt float64) {
	r.Acquire(p)
	p.Wait(dt)
	r.Release()
}

// BusySeconds returns the integral of units-in-use over time up to now.
func (r *Resource) BusySeconds() float64 {
	return r.busyInt + float64(r.inUse)*(r.eng.now-r.lastChange)
}

// Utilization returns BusySeconds normalized by capacity and elapsed
// time (0 if no time has passed).
func (r *Resource) Utilization() float64 {
	if r.eng.now <= 0 {
		return 0
	}
	return r.BusySeconds() / (float64(r.capacity) * r.eng.now)
}

// Acquires returns the total number of successful or queued acquire
// requests, a proxy for coordination frequency.
func (r *Resource) Acquires() int64 { return r.acquires }
