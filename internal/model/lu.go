package model

import (
	"fmt"
	"math"
)

// LUParams instantiates the design model for the block LU decomposition
// of Section 5.1.
type LUParams struct {
	// P is the node count; B the block size; K the FPGA PE count.
	P, B, K int
	// Ff is the FPGA matmul design clock (Hz).
	Ff float64
	// StripeRate is the processor's sustained FLOP/s on the hybrid
	// opMM's rank-K panel updates (Op×Fp for this kernel).
	StripeRate float64
	// LURate, TrsmRate are the sustained FLOP/s of the opLU (dgetrf)
	// and opL/opU (dtrsm) library routines.
	LURate, TrsmRate float64
	// Bd, Bn, Bw as in Params.
	Bd, Bn, Bw float64
	// SRAMBytes is the on-board memory available for the FPGA's
	// intermediate results (8 MB allocated in the paper).
	SRAMBytes int64
}

// Validate checks the parameters.
func (lp LUParams) Validate() error {
	switch {
	case lp.P < 2:
		return fmt.Errorf("model: LU design needs p >= 2 (panel node + compute nodes), got %d", lp.P)
	case lp.B < 1 || lp.K < 1:
		return fmt.Errorf("model: bad geometry b=%d k=%d", lp.B, lp.K)
	case lp.B%lp.K != 0:
		return fmt.Errorf("model: block size %d must be a multiple of k=%d", lp.B, lp.K)
	case lp.Ff <= 0 || lp.StripeRate <= 0 || lp.LURate <= 0 || lp.TrsmRate <= 0:
		return fmt.Errorf("model: non-positive rate")
	case lp.Bd <= 0 || lp.Bn <= 0 || lp.Bw <= 0:
		return fmt.Errorf("model: non-positive bandwidth")
	}
	return nil
}

// StripeTimes returns the per-stripe times of Section 5.1.3 for a given
// row split bf: the FPGA compute time Tf, the processor compute time
// Tp, the DRAM transfer Tmem and the network transfer Tcomm for one
// column stripe of C and one row stripe of D.
func (lp LUParams) StripeTimes(bf int) (tf, tp, tmem, tcomm float64) {
	b := float64(lp.B)
	k := float64(lp.K)
	pm1 := float64(lp.P - 1)
	bp := b - float64(bf)
	tf = float64(bf) * b / (pm1 * lp.Ff)
	tp = 2 * bp * b * k / (pm1 * lp.StripeRate)
	tmem = (float64(bf)*k + b*k/pm1) * lp.Bw / lp.Bd
	tcomm = 2 * b * k * lp.Bw / lp.Bn
	return tf, tp, tmem, tcomm
}

// SolvePartition solves Equation (4), Tf = Tcomm + Tmem + Tp, for the
// row split: bf rows of each stripe to the FPGA, bp = b - bf to the
// processor. bf is rounded to the nearest multiple of K and clamped to
// the SRAM capacity constraint bf·b/(p-1) words <= SRAMBytes/bw.
func (lp LUParams) SolvePartition() (bf, bp int) {
	b := float64(lp.B)
	k := float64(lp.K)
	pm1 := float64(lp.P - 1)
	// Collect Equation (4) as coef·bf = rhs:
	//   bf·b/(pm1·Ff) - bf·k·bw/Bd + 2·bf·b·k/(pm1·R)
	//     = 2·b·k·bw/Bn + b·k·bw/(pm1·Bd) + 2·b²·k/(pm1·R)
	coef := b/(pm1*lp.Ff) - k*lp.Bw/lp.Bd + 2*b*k/(pm1*lp.StripeRate)
	rhs := 2*b*k*lp.Bw/lp.Bn + b*k*lp.Bw/(pm1*lp.Bd) + 2*b*b*k/(pm1*lp.StripeRate)
	raw := rhs / coef
	// Round to a PE-array-friendly multiple of K.
	bf = int(math.Round(raw/k)) * lp.K
	if bf < 0 {
		bf = 0
	}
	if bf > lp.B {
		bf = lp.B
	}
	// SRAM constraint: the FPGA's C rows (bf × b/(p-1) words) must fit.
	if lp.SRAMBytes > 0 {
		maxBf := int(float64(lp.SRAMBytes) / lp.Bw * pm1 / b)
		maxBf -= maxBf % lp.K
		if bf > maxBf {
			bf = maxBf
		}
	}
	return bf, lp.B - bf
}

// OpMMTime returns the latency of one full b×b block multiplication on
// the p-1 compute nodes with row split bf: b/k stripes, each taking the
// FPGA stripe time (transfers and the processor share overlap all
// stripes but the first, Section 5.1.3).
func (lp LUParams) OpMMTime(bf int) float64 {
	tf, _, _, _ := lp.StripeTimes(bf)
	return float64(lp.B) / float64(lp.K) * tf
}

// PanelTimes returns the processor latencies of one opLU and one
// opL/opU at block size B (Table 1's rows).
func (lp LUParams) PanelTimes() (tlu, ttrsm float64) {
	b := float64(lp.B)
	return (2.0 / 3.0) * b * b * b / lp.LURate, b * b * b / lp.TrsmRate
}

// SolveL solves Equation (5) for the panel pipeline depth l: while the
// panel node runs one opLU/opL/opU, the other nodes run l opMM
// operations; communication of the l opMMs' operands is charged to the
// panel node:
//
//	max{Tlu, Topl, Topu} + l·(b/k)·Tcomm = l·bf·b²/((p-1)·k·Ff)
func (lp LUParams) SolveL(bf int) int {
	tlu, ttrsm := lp.PanelTimes()
	longest := math.Max(tlu, ttrsm)
	_, _, _, tcomm := lp.StripeTimes(bf)
	stripes := float64(lp.B) / float64(lp.K)
	mm := lp.OpMMTime(bf)
	denom := mm - stripes*tcomm
	if denom <= 0 {
		return 1
	}
	l := int(math.Round(longest / denom))
	if l < 1 {
		l = 1
	}
	return l
}

// PredictLU runs the Section 4.5 predictor for an n×n factorization:
// every transfer and communication overlaps FPGA compute; the predicted
// latency is the sum over iterations of the dominant resource.
func (lp LUParams) PredictLU(n, bf int) Prediction {
	nb := n / lp.B
	tlu, ttrsm := lp.PanelTimes()
	tfStripe, tpStripe, _, _ := lp.StripeTimes(bf)
	stripes := float64(lp.B) / float64(lp.K)
	var ttp, ttf float64
	for t := 0; t < nb; t++ {
		rem := float64(nb - 1 - t) // trailing block-row/col count
		mms := rem * rem           // opMM count this iteration
		// Panel node CPU: one opLU + rem opL + rem opU.
		panel := tlu + 2*rem*ttrsm
		// Compute nodes: each opMM is b/k stripes on FPGA and CPU.
		fpga := mms * stripes * tfStripe
		cpuMM := mms * stripes * tpStripe
		// Processor-side critical path: panel work and opMM CPU halves
		// proceed on different nodes concurrently.
		ttp += math.Max(panel, cpuMM)
		ttf += fpga
	}
	flops := 2.0 / 3.0 * float64(n) * float64(n) * float64(n)
	return predict(ttp, ttf, flops)
}

// CoordinationHz returns the processor<->FPGA coordination frequency of
// Section 5.1.3: 2(p-1)·Ff/(bf·b) handshakes per second.
func (lp LUParams) CoordinationHz(bf int) float64 {
	return 2 * float64(lp.P-1) * lp.Ff / (float64(bf) * float64(lp.B))
}

// StripeMakespan returns the per-stripe makespan at split bf under the
// model: the slower of the FPGA side and the processor side (compute +
// transfers, which the processor cannot overlap).
func (lp LUParams) StripeMakespan(bf int) float64 {
	tf, tp, tmem, tcomm := lp.StripeTimes(bf)
	cpuSide := tcomm + tmem + tp
	if tf > cpuSide {
		return tf
	}
	return cpuSide
}

// BruteForcePartition scans every multiple of K for the split that
// minimizes the per-stripe makespan — an independent check on the
// closed-form Equation (4) solver (and on what Figure 5 measures).
func (lp LUParams) BruteForcePartition() (bf int) {
	best := math.Inf(1)
	for cand := 0; cand <= lp.B; cand += lp.K {
		if m := lp.StripeMakespan(cand); m < best {
			best, bf = m, cand
		}
	}
	return bf
}
