package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewDims(t *testing.T) {
	m := New(3, 5)
	if r, c := m.Dims(); r != 3 || c != 5 {
		t.Fatalf("Dims() = %d,%d want 3,5", r, c)
	}
	if m.Rows() != 3 || m.Cols() != 5 {
		t.Fatalf("Rows/Cols = %d,%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 3.5)
	m.Set(1, 0, -2)
	if m.At(0, 1) != 3.5 || m.At(1, 0) != -2 {
		t.Fatalf("Set/At roundtrip failed: %v", m)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range At")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestNewFromSliceAliases(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromSlice(2, 3, d)
	m.Set(1, 2, 99)
	if d[5] != 99 {
		t.Fatal("NewFromSlice must alias the provided slice")
	}
}

func TestNewFromSliceBadLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad slice length")
		}
	}()
	NewFromSlice(2, 3, make([]float64, 5))
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 7)
	if m.At(1, 1) != 7 {
		t.Fatal("view write not visible in parent")
	}
	m.Set(2, 2, 8)
	if v.At(1, 1) != 8 {
		t.Fatal("parent write not visible in view")
	}
}

func TestViewOfView(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Random(8, 8, rng)
	v := m.View(2, 2, 6, 6).View(1, 1, 3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if v.At(i, j) != m.At(3+i, 3+j) {
				t.Fatalf("nested view (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestViewOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range view")
		}
	}()
	New(4, 4).View(2, 2, 3, 3)
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Random(5, 7, rng)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Set(0, 0, 1234)
	if m.At(0, 0) == 1234 {
		t.Fatal("clone shares storage with original")
	}
}

func TestCloneOfViewIsCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Random(6, 6, rng)
	v := m.View(1, 2, 3, 3)
	c := v.Clone()
	if c.Stride() != 3 {
		t.Fatalf("clone stride = %d want 3", c.Stride())
	}
	if !c.Equal(v) {
		t.Fatal("clone of view differs from view")
	}
}

func TestCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := Random(3, 3, rng)
	dst := New(3, 3)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("transpose dims %dx%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose (%d,%d)", i, j)
			}
		}
	}
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("double transpose is not identity")
	}
}

func TestSubAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Random(4, 4, rng)
	b := Random(4, 4, rng)
	orig := a.Clone()
	a.Sub(b)
	a.Add(b)
	if !a.EqualApprox(orig, 1e-15) {
		t.Fatal("Sub then Add did not restore the matrix")
	}
}

func TestScale(t *testing.T) {
	a := NewFromSlice(1, 3, []float64{1, -2, 4})
	a.Scale(-0.5)
	want := NewFromSlice(1, 3, []float64{-0.5, 1, -2})
	if !a.Equal(want) {
		t.Fatalf("Scale = %v", a)
	}
}

func TestEqualNaN(t *testing.T) {
	a := NewFromSlice(1, 1, []float64{math.NaN()})
	b := NewFromSlice(1, 1, []float64{math.NaN()})
	if !a.Equal(b) {
		t.Fatal("NaN should compare equal to NaN in Equal")
	}
}

func TestEqualDimsMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("different shapes must not be Equal")
	}
	if New(2, 3).EqualApprox(New(3, 2), 1) {
		t.Fatal("different shapes must not be EqualApprox")
	}
}

func TestMaxDiff(t *testing.T) {
	a := NewFromSlice(1, 3, []float64{1, 2, 3})
	b := NewFromSlice(1, 3, []float64{1, 2.5, 2})
	if d := a.MaxDiff(b); d != 1 {
		t.Fatalf("MaxDiff = %v want 1", d)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{3, 0, 0, 4})
	if n := a.FrobeniusNorm(); math.Abs(n-5) > 1e-14 {
		t.Fatalf("FrobeniusNorm = %v want 5", n)
	}
}

func TestRandomDiagDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := RandomDiagDominant(20, rng)
	for i := 0; i < 20; i++ {
		var off float64
		for j, v := range m.Row(i) {
			if j != i {
				off += math.Abs(v)
			}
		}
		if m.At(i, i) <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestFillZero(t *testing.T) {
	m := New(3, 3)
	m.Fill(2)
	if m.At(1, 1) != 2 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.FrobeniusNorm() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestRowAliases(t *testing.T) {
	m := New(2, 3)
	m.Row(1)[2] = 5
	if m.At(1, 2) != 5 {
		t.Fatal("Row must alias storage")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := New(2, 2)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	large := New(100, 100)
	if s := large.String(); s != "Dense{100x100}" {
		t.Fatalf("large String = %q", s)
	}
}
