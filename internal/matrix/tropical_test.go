package matrix

import (
	"math/rand"
	"testing"
)

func TestFloydWarshallSmallKnown(t *testing.T) {
	// 0 ->1 (3), 1->2 (4), 0->2 (10): FW must shorten 0->2 to 7.
	d := New(3, 3)
	d.Fill(Inf)
	for i := 0; i < 3; i++ {
		d.Set(i, i, 0)
	}
	d.Set(0, 1, 3)
	d.Set(1, 2, 4)
	d.Set(0, 2, 10)
	FloydWarshall(d)
	if got := d.At(0, 2); got != 7 {
		t.Fatalf("d[0][2] = %v, want 7", got)
	}
}

func TestBlockedFWMatchesUnblocked(t *testing.T) {
	for _, tc := range []struct {
		n, b    int
		density float64
	}{{8, 2, 0.5}, {16, 4, 0.3}, {24, 8, 0.2}, {32, 8, 0.5}, {20, 4, 0.9}, {12, 12, 0.4}, {16, 4, 0.05}} {
		rng := rand.New(rand.NewSource(int64(60 + tc.n + tc.b)))
		d := RandomGraph(tc.n, tc.density, rng)
		want := d.Clone()
		FloydWarshall(want)
		got := d.Clone()
		BlockedFloydWarshall(got, tc.b)
		if !got.EqualApprox(want, 1e-12) {
			t.Fatalf("n=%d b=%d density=%g: blocked != unblocked, maxdiff %g",
				tc.n, tc.b, tc.density, got.MaxDiff(want))
		}
	}
}

func TestFWIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d := RandomGraph(20, 0.3, rng)
	FloydWarshall(d)
	again := d.Clone()
	FloydWarshall(again)
	// Exact idempotence does not hold in floating point: a second pass
	// may re-associate a path sum and improve an entry by an ulp. It
	// must be a fixed point up to rounding.
	if !again.EqualApprox(d, 1e-12) {
		t.Fatal("FW of a shortest-path closure must be a fixed point (mod rounding)")
	}
}

func TestFWTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	d := RandomGraph(15, 0.4, rng)
	FloydWarshall(d)
	for i := 0; i < 15; i++ {
		for j := 0; j < 15; j++ {
			for k := 0; k < 15; k++ {
				if d.At(i, k) < Inf && d.At(k, j) < Inf && d.At(i, j) > d.At(i, k)+d.At(k, j)+1e-9 {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestFWZeroDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	d := RandomGraph(10, 0.5, rng)
	FloydWarshall(d)
	for i := 0; i < 10; i++ {
		if d.At(i, i) != 0 {
			t.Fatalf("d[%d][%d] = %v, want 0 (non-negative weights)", i, i, d.At(i, i))
		}
	}
}

func TestMinPlusGemmAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	a := RandomGraph(6, 0.7, rng)
	b := RandomGraph(6, 0.7, rng)
	c := RandomGraph(6, 0.7, rng)
	want := c.Clone()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			best := want.At(i, j)
			for k := 0; k < 6; k++ {
				if v := a.At(i, k) + b.At(k, j); v < best {
					best = v
				}
			}
			want.Set(i, j, best)
		}
	}
	MinPlusGemm(a, b, c)
	if !c.EqualApprox(want, 1e-12) {
		t.Fatal("MinPlusGemm mismatch vs scalar oracle")
	}
}

func TestMinPlusGemmParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	a := RandomGraph(31, 0.3, rng)
	b := RandomGraph(31, 0.3, rng)
	c1 := RandomGraph(31, 0.3, rng)
	c2 := c1.Clone()
	MinPlusGemm(a, b, c1)
	for _, workers := range []int{0, 1, 2, 5, 64} {
		c := c2.Clone()
		MinPlusGemmParallel(a, b, c, workers)
		if !c.Equal(c1) {
			t.Fatalf("MinPlusGemmParallel(workers=%d) mismatch", workers)
		}
	}
}

func TestFWRowColUpdateComposition(t *testing.T) {
	// Running op1 on the diagonal and op21/op22/op3 by hand on a 2x2
	// block grid must equal the unblocked algorithm restricted to one
	// pivot block sweep followed by remaining sweeps. Easiest check:
	// full BlockedFloydWarshall equals FloydWarshall (covered above),
	// so here just verify op21/op22 respect in-place pivot ordering on
	// a crafted case where ordering matters.
	b := 2
	diag := New(b, b)
	diag.Fill(Inf)
	diag.Set(0, 0, 0)
	diag.Set(1, 1, 0)
	diag.Set(0, 1, 1)
	diag.Set(1, 0, 1)
	block := New(b, b)
	block.Fill(Inf)
	block.Set(1, 0, 5) // row 1 has a path out
	FWRowUpdate(block, diag)
	// Path: row 0 -> diag(0,1)=1 -> row 1 -> 5 gives block[0][0] = 6.
	if got := block.At(0, 0); got != 6 {
		t.Fatalf("op21 pivot propagation: block[0][0] = %v, want 6", got)
	}
	colBlock := New(b, b)
	colBlock.Fill(Inf)
	colBlock.Set(0, 1, 5)
	FWColUpdate(colBlock, diag)
	if got := colBlock.At(0, 0); got != 6 {
		t.Fatalf("op22 pivot propagation: colBlock[0][0] = %v, want 6", got)
	}
}

func TestBlockedFWBadBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-dividing block size")
		}
	}()
	BlockedFloydWarshall(New(10, 10), 3)
}

func TestRandomGraphProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	d := RandomGraph(30, 0.5, rng)
	edges := 0
	for i := 0; i < 30; i++ {
		if d.At(i, i) != 0 {
			t.Fatal("diagonal must be zero")
		}
		for j := 0; j < 30; j++ {
			if i == j {
				continue
			}
			v := d.At(i, j)
			if v < Inf {
				edges++
				if v < 1 || v >= 10 {
					t.Fatalf("edge weight %v out of [1,10)", v)
				}
			}
		}
	}
	if edges == 0 || edges == 30*29 {
		t.Fatalf("edge count %d suggests density is not applied", edges)
	}
}
