package sim

import "codesign/internal/obs"

// Publish registers one live-reading gauge per counter field on r,
// under the sim_* namespace. The gauges are obs.Func bridges over the
// atomics, so scraping /metrics always sees current values with no
// copying or extra hot-path work; the _total suffix marks them as
// monotonically non-decreasing even though they expose as gauges.
// Publish is cheap and idempotent per registry, but registering two
// different Counters on one registry panics (duplicate names).
func (c *Counters) Publish(r *obs.Registry) {
	r.Func("sim_events_popped_total", "events popped off engine queues",
		func() float64 { return float64(c.EventsPopped.Load()) })
	r.Func("sim_callbacks_total", "scheduler-context callbacks run inline",
		func() float64 { return float64(c.Callbacks.Load()) })
	r.Func("sim_handoffs_total", "baton handoffs that woke another goroutine",
		func() float64 { return float64(c.Handoffs.Load()) })
	r.Func("sim_self_resumes_total", "self-resume fast-path hits (no goroutine switch)",
		func() float64 { return float64(c.SelfResumes.Load()) })
	r.Func("sim_fused_steps_total", "fused charge-sequence boundaries advanced without a park",
		func() float64 { return float64(c.FusedSteps.Load()) })
	r.Func("sim_spawns_total", "simulation processes started",
		func() float64 { return float64(c.Spawns.Load()) })
	r.Func("sim_queue_recycles_total", "event-queue arrays recycled through the pool",
		func() float64 { return float64(c.QueueRecycles.Load()) })
	r.Func("sim_compactions_total", "in-place ring-FIFO compactions",
		func() float64 { return float64(c.Compactions.Load()) })
	r.Func("sim_spans_total", "telemetry spans delivered to observers",
		func() float64 { return float64(c.SpansEmitted.Load()) })
}
