package model

import (
	"fmt"
	"math"
)

// FWParams instantiates the design model for the blocked Floyd-Warshall
// algorithm of Section 5.2.
type FWParams struct {
	// P is the node count; B the block size; K the FPGA PE count.
	P, B, K int
	// Ff is the FPGA FW design clock (Hz).
	Ff float64
	// FWRate is the processor's sustained FLOP/s on the scalar
	// Floyd-Warshall kernel.
	FWRate float64
	// Bd, Bn, Bw as in Params.
	Bd, Bn, Bw float64
	// SRAMBytes is the available on-board memory (constrains 2b² words).
	SRAMBytes int64
}

// Validate checks the parameters.
func (fp FWParams) Validate() error {
	switch {
	case fp.P < 1:
		return fmt.Errorf("model: fw design needs p >= 1, got %d", fp.P)
	case fp.B < 1 || fp.K < 1:
		return fmt.Errorf("model: bad geometry b=%d k=%d", fp.B, fp.K)
	case fp.B%fp.K != 0:
		return fmt.Errorf("model: block size %d must be a multiple of k=%d", fp.B, fp.K)
	case fp.Ff <= 0 || fp.FWRate <= 0:
		return fmt.Errorf("model: non-positive rate")
	case fp.Bd <= 0 || fp.Bn <= 0 || fp.Bw <= 0:
		return fmt.Errorf("model: non-positive bandwidth")
	}
	if fp.SRAMBytes > 0 {
		if need := 2 * int64(fp.B) * int64(fp.B) * int64(fp.Bw); need > fp.SRAMBytes {
			return fmt.Errorf("model: fw design needs %d bytes of SRAM (2b² words), only %d available", need, fp.SRAMBytes)
		}
	}
	return nil
}

// BlockTimes returns the per-block-operation times of Section 5.2.3:
// the processor time Tp = 2b³/(Op·Fp), the FPGA time Tf = 2b³/(k·Ff),
// the DRAM transfer Tmem = 2b²·bw/Bd (two blocks in), and the network
// transfer Tcomm = b²·bw/Bn (one block per phase).
func (fp FWParams) BlockTimes() (tp, tf, tmem, tcomm float64) {
	b := float64(fp.B)
	tp = 2 * b * b * b / fp.FWRate
	tf = 2 * b * b * b / (float64(fp.K) * fp.Ff)
	tmem = 2 * b * b * fp.Bw / fp.Bd
	tcomm = b * b * fp.Bw / fp.Bn
	return tp, tf, tmem, tcomm
}

// OpsPerPhase returns the block operations each node performs per phase:
// n/(b·p).
func (fp FWParams) OpsPerPhase(n int) int { return n / (fp.B * fp.P) }

// SolveSplit solves Equation (6) for the whole-task split per phase:
// the processor runs l1 block operations and the FPGA l2, with
//
//	l1·Tp + Tcomm + l2·Tmem = l2·Tf,  l1 + l2 = n/(b·p).
func (fp FWParams) SolveSplit(n int) (l1, l2 int) {
	total := fp.OpsPerPhase(n)
	tp, tf, tmem, tcomm := fp.BlockTimes()
	// Continuous split: l1·tp + tcomm = l2·(tf - tmem).
	eff := tf - tmem
	if eff <= 0 {
		return total, 0
	}
	// l1 = (l2·eff - tcomm)/tp with l1 + l2 = total.
	l2f := (float64(total)*tp + tcomm) / (tp + eff)
	l2 = int(math.Round(l2f))
	if l2 > total {
		l2 = total
	}
	if l2 < 0 {
		l2 = 0
	}
	return total - l2, l2
}

// PhaseTime returns the latency of one phase with split (l1, l2): the
// maximum of the processor side (its l1 ops plus the phase's block
// send, which it cannot overlap) and the FPGA side (l2 ops plus DRAM
// streams for all but the first block, overlapped).
func (fp FWParams) PhaseTime(l1, l2 int) float64 {
	tp, tf, tmem, tcomm := fp.BlockTimes()
	cpuSide := float64(l1)*tp + tcomm
	fpgaSide := float64(l2)*tf + tmem // first block's stream exposed
	return math.Max(cpuSide, fpgaSide)
}

// PredictFW runs the Section 4.5 predictor for an n×n distance matrix:
// n/b iterations of n/b phases, each phase costing max(l1·Tp, l2·Tf)
// with all transfers assumed overlapped.
func (fp FWParams) PredictFW(n, l1, l2 int) Prediction {
	nb := float64(n / fp.B)
	tp, tf, _, _ := fp.BlockTimes()
	cpu := float64(l1) * tp
	fpga := float64(l2) * tf
	phases := nb * nb // nb iterations × nb phases
	ttp := phases * cpu
	ttf := phases * fpga
	nn := float64(n)
	flops := 2 * nn * nn * nn
	return predict(ttp, ttf, flops)
}

// CoordinationHz returns the coordination frequency of Section 5.2.3:
// one start and one done handshake per batch of l2 FPGA operations.
func (fp FWParams) CoordinationHz(l2 int) float64 {
	_, tf, _, _ := fp.BlockTimes()
	return 2 / (float64(l2) * tf)
}
