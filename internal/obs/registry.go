package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a registered series for exposition.
type Kind int

// The metric kinds. KindFunc series expose as gauges whose value is
// read at snapshot time.
const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a settable instantaneous value.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
	// KindFunc is a gauge whose value is computed at snapshot time.
	KindFunc
)

// String names the kind in Prometheus TYPE vocabulary ("counter",
// "gauge", "histogram"; func series report as "gauge").
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// entry is one registered series.
type entry struct {
	name   string // full series name, possibly with a {label="v"} suffix
	family string // name up to the label block
	help   string
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// Registry is a named collection of metrics. Registration is
// get-or-create: asking twice for the same name and kind returns the
// same metric, so independent subsystems share series without
// coordinating. All methods are safe for concurrent use; metric
// updates themselves never touch the registry lock.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// family splits the HELP/TYPE grouping name off a series name:
// everything before the first '{'.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// validName enforces the Prometheus name charset on the family part
// ([a-zA-Z_:][a-zA-Z0-9_:]*); the label block, if any, is taken as-is.
func validName(name string) bool {
	fam := family(name)
	if fam == "" {
		return false
	}
	for i, r := range fam {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// get returns the series, creating it with mk on first use. It panics
// on an invalid name or a kind clash — both programmer errors: two
// subsystems claiming one name as different kinds cannot both be
// served.
func (r *Registry) get(name, help string, kind Kind, mk func(*entry)) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e
	}
	e := &entry{name: name, family: family(name), help: help, kind: kind}
	mk(e)
	r.entries[name] = e
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.get(name, help, KindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.get(name, help, KindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (see ExpBuckets, LinearBuckets). The
// bounds of an already-registered histogram win; callers are expected
// to agree on them.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.get(name, help, KindHistogram, func(e *entry) { e.h = newHistogram(bounds) }).h
}

// Func registers a gauge whose value is computed by fn at snapshot
// time — the bridge for subsystems that already keep their own atomic
// state (e.g. the sim engine's counters). fn must be safe to call from
// any goroutine. Re-registering the same name replaces the function.
func (r *Registry) Func(name, help string, fn func() float64) {
	e := r.get(name, help, KindFunc, func(e *entry) {})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// Bucket is one cumulative histogram bucket of a snapshot: the count
// of observations with value <= UpperBound.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound (+Inf for the
	// final bucket, serialized as the string "+Inf").
	UpperBound Float `json:"le"`
	// Count is the cumulative observation count at this bound.
	Count int64 `json:"count"`
}

// Sample is one series of a snapshot. Counter, gauge and func series
// carry Value; histograms carry Count, Sum and cumulative Buckets
// (ending with the +Inf bucket).
type Sample struct {
	// Name is the full series name including any label block.
	Name string `json:"name"`
	// Kind is the Prometheus TYPE ("counter", "gauge", "histogram").
	Kind string `json:"kind"`
	// Help is the series' registered help text.
	Help string `json:"help,omitempty"`
	// Value is the scalar value of a counter, gauge or func series.
	Value Float `json:"value"`
	// Count is a histogram's observation count.
	Count int64 `json:"observations,omitempty"`
	// Sum is a histogram's observation sum.
	Sum Float `json:"sum,omitempty"`
	// Buckets are a histogram's cumulative buckets (the final entry is
	// the +Inf bucket and equals Count).
	Buckets []Bucket `json:"buckets,omitempty"`
	// Quantiles are a histogram's estimated percentiles, present when
	// it has observations. The Prometheus text format is unchanged by
	// them — they appear only in the JSON exposition and /statusz.
	Quantiles *SampleQuantiles `json:"quantiles,omitempty"`
}

// SampleQuantiles carries a histogram's estimated percentiles in a
// snapshot, interpolated from the fixed bucket bounds (see
// Histogram.Quantile).
type SampleQuantiles struct {
	// P50 is the estimated median.
	P50 Float `json:"p50"`
	// P90 is the estimated 90th percentile.
	P90 Float `json:"p90"`
	// P99 is the estimated 99th percentile.
	P99 Float `json:"p99"`
}

// Snapshot captures every series, stable-sorted by (family, name) so
// identical registry state yields identical output regardless of
// registration or map iteration order.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].family != entries[j].family {
			return entries[i].family < entries[j].family
		}
		return entries[i].name < entries[j].name
	})
	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Kind: e.kind.String(), Help: e.help}
		switch e.kind {
		case KindCounter:
			s.Value = Float(e.c.Value())
		case KindGauge:
			s.Value = Float(e.g.Value())
		case KindFunc:
			if e.fn != nil {
				s.Value = Float(e.fn())
			}
		case KindHistogram:
			// Read per-bucket counts first, then derive the cumulative
			// view; Count/Sum may drift a hair ahead of the buckets
			// under concurrent observation, which exposition tolerates.
			h := e.h
			s.Count = h.Count()
			s.Sum = Float(h.Sum())
			var cum int64
			s.Buckets = make([]Bucket, len(h.counts))
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := math.Inf(1)
				if i < len(h.bounds) {
					le = h.bounds[i]
				}
				s.Buckets[i] = Bucket{UpperBound: Float(le), Count: cum}
			}
			if cum > 0 {
				s.Quantiles = &SampleQuantiles{
					P50: Float(h.Quantile(0.50)),
					P90: Float(h.Quantile(0.90)),
					P99: Float(h.Quantile(0.99)),
				}
			}
		}
		out = append(out, s)
	}
	return out
}
