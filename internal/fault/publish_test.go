package fault

import (
	"bytes"
	"strings"
	"testing"

	"codesign/internal/obs"
)

func TestPublishDegradationGauges(t *testing.T) {
	spec := &Spec{Events: []Event{
		{Kind: ThrottleBd, Node: 1, Start: 100, Duration: 500, Factor: 0.25},
		{Kind: NodeKill, Node: 3, Start: 900},
	}}
	in, err := New(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	in.Publish(reg)

	if got := reg.Gauge("fault_events_total", "").Value(); got != 2 {
		t.Errorf("fault_events_total = %g, want 2", got)
	}
	if got := reg.Gauge("fault_node_kills", "").Value(); got != 1 {
		t.Errorf("fault_node_kills = %g, want 1", got)
	}

	g := reg.Gauge(`fault_degradation_ratio{node="1",class="bd"}`, "")
	if got := g.Value(); got != 1 {
		t.Errorf("initial degradation ratio = %g, want 1", got)
	}
	// A charge entirely inside the quarter-speed window dilates 4x, so
	// the live ratio gauge drops to 0.25.
	if out := in.Dilate(ClassDRAM, 1, 200, 10); out != 40 {
		t.Fatalf("Dilate = %g, want 40", out)
	}
	if got := g.Value(); got != 0.25 {
		t.Errorf("in-window degradation ratio = %g, want 0.25", got)
	}
	// A charge after the window is nominal and the gauge recovers.
	if out := in.Dilate(ClassDRAM, 1, 1000, 10); out != 10 {
		t.Fatalf("post-window Dilate = %g, want 10", out)
	}
	if got := g.Value(); got != 1 {
		t.Errorf("post-window degradation ratio = %g, want 1", got)
	}
	if got := reg.Counter("fault_dilations_total", "").Value(); got != 2 {
		t.Errorf("fault_dilations_total = %d, want 2", got)
	}

	// Only the scheduled (node, class) pair grew a ratio gauge.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "fault_degradation_ratio{"); n != 1 {
		t.Errorf("%d degradation gauges exported, want 1 (scheduled pairs only)", n)
	}
}

func TestPublishNotInstalledNoDilateEffect(t *testing.T) {
	in, err := New(&Spec{Events: []Event{
		{Kind: ThrottleBd, Node: 0, Start: 0, Duration: 10, Factor: 0.5},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Without Publish the metrics sink stays nil and Dilate still works.
	if out := in.Dilate(ClassDRAM, 0, 0, 5); out != 10 {
		t.Errorf("Dilate without metrics = %g, want 10", out)
	}
}
