package model

import "fmt"

// Binding names the system parameter that binds (limits) a phase of a
// hybrid design: the left- and right-hand resources of Equations
// (4)-(6). When the partition solver balances a phase perfectly the two
// sides tie and neither parameter truly binds; BindingFromTimes reports
// how close the tie is via its margin.
type Binding int

// The model parameters a phase can bind on.
const (
	// BindNone means the phase did no classified work.
	BindNone Binding = iota
	// BindOfFf: FPGA computing power binds (Tf side of Eq. 4/6).
	BindOfFf
	// BindOpFp: processor computing power binds.
	BindOpFp
	// BindBd: FPGA<->DRAM streaming bandwidth binds.
	BindBd
	// BindBn: network bandwidth binds.
	BindBn
)

// String names the binding the way the paper's tables do ("Op*Fp",
// "Bd", ...).
func (b Binding) String() string {
	switch b {
	case BindNone:
		return "-"
	case BindOfFf:
		return "Of*Ff"
	case BindOpFp:
		return "Op*Fp"
	case BindBd:
		return "Bd"
	case BindBn:
		return "Bn"
	default:
		return fmt.Sprintf("binding(%d)", int(b))
	}
}

// BindingFromTimes applies the Section 4 comparison to a phase's four
// cost terms: the FPGA binds when its compute time exceeds the
// processor side — compute plus the transfers the processor cannot
// overlap, the right-hand side of Tf = Tp + Tmem + Tcomm (Eq. 4) —
// otherwise the largest processor-side term binds. The returned margin
// is |Tf - (Tp+Tmem+Tcomm)| normalized by the larger side: 0 means the
// partition balanced the phase exactly (the solver's goal), 1 means one
// side did all the work. Callers should treat small margins as "either
// parameter" rather than a hard verdict.
func BindingFromTimes(tf, tp, tmem, tcomm float64) (Binding, float64) {
	cpuSide := tp + tmem + tcomm
	if tf <= 0 && cpuSide <= 0 {
		return BindNone, 0
	}
	larger := tf
	if cpuSide > larger {
		larger = cpuSide
	}
	margin := (tf - cpuSide) / larger
	if margin < 0 {
		margin = -margin
	}
	if tf >= cpuSide {
		return BindOfFf, margin
	}
	switch {
	case tp >= tmem && tp >= tcomm:
		return BindOpFp, margin
	case tmem >= tcomm:
		return BindBd, margin
	default:
		return BindBn, margin
	}
}

// StripeBinding reports which parameter binds the LU trailing-update
// (opMM) phase at row split bf, per the Equation (4) balance the
// partition solver targets.
func (lp LUParams) StripeBinding(bf int) (Binding, float64) {
	tf, tp, tmem, tcomm := lp.StripeTimes(bf)
	return BindingFromTimes(tf, tp, tmem, tcomm)
}

// PhaseBinding reports which parameter binds one Floyd-Warshall phase
// at whole-task split (l1, l2), per the Equation (6) balance
// l1·Tp + Tcomm + l2·Tmem = l2·Tf.
func (fp FWParams) PhaseBinding(l1, l2 int) (Binding, float64) {
	tp, tf, tmem, tcomm := fp.BlockTimes()
	return BindingFromTimes(float64(l2)*tf, float64(l1)*tp, float64(l2)*tmem, tcomm)
}

// StripeBinding reports which parameter binds the hybrid matrix
// multiplication stripe at row split bf, per the Equation (1) balance
// Tf = Tp + Tmem (no network term).
func (mp MMParams) StripeBinding(bf int) (Binding, float64) {
	tf, tp, tmem := mp.StripeTimes(bf)
	return BindingFromTimes(tf, tp, tmem, 0)
}

// StripeBinding reports which parameter binds a hybrid SpMV apply at
// row split rf, per the same Equation (1) balance Tf = Tp + Tmem. For
// the resident arrangement Tmem is zero and the verdict falls between
// the two compute sides; for the streamed arrangement the
// nnz-proportional Tmem term is what drags sparse points to Bd.
func (sp SpMVParams) StripeBinding(rf int) (Binding, float64) {
	tf, tp, tmem := sp.StripeTimes(rf)
	return BindingFromTimes(tf, tp, tmem, 0)
}
