package model

import (
	"math"
	"testing"
	"testing/quick"
)

// xd1LU returns the LU model parameters of Section 6.1: p=6, b=3000,
// k=8, Ff=130 MHz, Bn=2 GB/s, Bd=1.04 GB/s, 8 MB of SRAM.
func xd1LU() LUParams {
	return LUParams{
		P: 6, B: 3000, K: 8,
		Ff:         130e6,
		StripeRate: 2.95e9,
		LURate:     2.0 / 3.0 * 3000 * 3000 * 3000 / 4.9,
		TrsmRate:   3000 * 3000 * 3000 / 7.1,
		Bd:         1.04e9, Bn: 2e9, Bw: 8,
		SRAMBytes: 8 << 20,
	}
}

// xd1FW returns the FW model parameters of Section 6.1: b=256, k=8,
// Ff=120 MHz, Bd=960 MB/s, 190 MFLOPS scalar kernel.
func xd1FW() FWParams {
	return FWParams{
		P: 6, B: 256, K: 8,
		Ff:     120e6,
		FWRate: 190e6,
		Bd:     960e6, Bn: 2e9, Bw: 8,
		SRAMBytes: 8 << 20,
	}
}

func TestLUPartitionMatchesPaper(t *testing.T) {
	// Section 6.1: "According to Equation 4, bp = 1720 and bf = 1280."
	bf, bp := xd1LU().SolvePartition()
	if bf != 1280 || bp != 1720 {
		t.Fatalf("SolvePartition = bf %d, bp %d; paper says 1280/1720", bf, bp)
	}
}

func TestLUPartitionIsMultipleOfK(t *testing.T) {
	lp := xd1LU()
	for _, b := range []int{1200, 2400, 3000, 4800} {
		lp.B = b
		bf, bp := lp.SolvePartition()
		if bf%lp.K != 0 {
			t.Fatalf("b=%d: bf=%d not a multiple of k", b, bf)
		}
		if bf+bp != b {
			t.Fatalf("b=%d: bf+bp=%d", b, bf+bp)
		}
	}
}

func TestLUPartitionRespectsSRAM(t *testing.T) {
	lp := xd1LU()
	lp.SRAMBytes = 1 << 20 // 1 MB only
	bf, _ := lp.SolvePartition()
	maxWords := float64(lp.SRAMBytes) / lp.Bw
	if float64(bf)*float64(lp.B)/float64(lp.P-1) > maxWords {
		t.Fatalf("bf=%d violates SRAM capacity", bf)
	}
}

func TestLUPartitionEquationBalance(t *testing.T) {
	// At the continuous solution, Tf ≈ Tcomm + Tmem + Tp (Equation 4).
	lp := xd1LU()
	bf, _ := lp.SolvePartition()
	tf, tp, tmem, tcomm := lp.StripeTimes(bf)
	lhs, rhs := tf, tcomm+tmem+tp
	if math.Abs(lhs-rhs)/rhs > 0.05 { // rounding bf to a multiple of k
		t.Fatalf("Eq4 imbalance: Tf=%g vs %g", lhs, rhs)
	}
}

func TestLUSolveLMatchesPaper(t *testing.T) {
	// Section 6.1: "According to Equation 5, we set l = 3."
	lp := xd1LU()
	if l := lp.SolveL(1280); l != 3 {
		t.Fatalf("SolveL = %d, paper says 3", l)
	}
}

func TestLUPanelTimesMatchTable1(t *testing.T) {
	tlu, ttrsm := xd1LU().PanelTimes()
	if math.Abs(tlu-4.9) > 1e-9 || math.Abs(ttrsm-7.1) > 1e-9 {
		t.Fatalf("panel times %g, %g; Table 1 says 4.9, 7.1", tlu, ttrsm)
	}
}

func TestLUPredictionNearPaper(t *testing.T) {
	// The paper's hybrid measures 20 GFLOPS at ~86% of prediction, so
	// the predicted value should be ~23 GFLOPS.
	lp := xd1LU()
	pred := lp.PredictLU(30000, 1280)
	if pred.GFLOPS < 21 || pred.GFLOPS > 27 {
		t.Fatalf("predicted LU GFLOPS = %.2f, want ~23", pred.GFLOPS)
	}
	if pred.Seconds != math.Max(pred.Ttp, pred.Ttf) {
		t.Fatal("prediction must be max(Ttp, Ttf)")
	}
}

func TestFWSplitMatchesPaperAt18432(t *testing.T) {
	// Section 6.1: n=18432 gives l1+l2 = 12 with l1=2, l2=10.
	fw := xd1FW()
	l1, l2 := fw.SolveSplit(18432)
	if l1 != 2 || l2 != 10 {
		t.Fatalf("SolveSplit(18432) = %d, %d; paper says 2, 10", l1, l2)
	}
}

func TestFWSplitRatioOneToFive(t *testing.T) {
	// Section 6.1: l1/l2 = 1/5.
	fw := xd1FW()
	l1, l2 := fw.SolveSplit(92160)
	ratio := float64(l1) / float64(l2)
	if math.Abs(ratio-0.2) > 0.04 {
		t.Fatalf("l1/l2 = %d/%d = %.3f, want ~0.2", l1, l2, ratio)
	}
}

func TestFWOpsPerPhase(t *testing.T) {
	fw := xd1FW()
	if got := fw.OpsPerPhase(18432); got != 12 {
		t.Fatalf("OpsPerPhase(18432) = %d, want 12", got)
	}
	if got := fw.OpsPerPhase(92160); got != 60 {
		t.Fatalf("OpsPerPhase(92160) = %d, want 60", got)
	}
}

func TestFWBlockTimes(t *testing.T) {
	tp, tf, tmem, tcomm := xd1FW().BlockTimes()
	// Tp = 2·256³/190e6 ≈ 0.1766 s, Tf = 2·256³/(8·120e6) ≈ 0.0350 s.
	if math.Abs(tp-0.17660) > 1e-3 {
		t.Fatalf("Tp = %g", tp)
	}
	if math.Abs(tf-0.034952) > 1e-4 {
		t.Fatalf("Tf = %g", tf)
	}
	if tmem <= 0 || tcomm <= 0 || tmem > tf || tcomm > tf {
		t.Fatalf("transfer times out of range: tmem=%g tcomm=%g", tmem, tcomm)
	}
}

func TestFWPredictionNearPaper(t *testing.T) {
	// The paper's 6.6 GFLOPS is ~96% of prediction: predicted ~6.9.
	fw := xd1FW()
	l1, l2 := fw.SolveSplit(92160)
	pred := fw.PredictFW(92160, l1, l2)
	if pred.GFLOPS < 6.2 || pred.GFLOPS > 7.6 {
		t.Fatalf("predicted FW GFLOPS = %.2f, want ~6.9", pred.GFLOPS)
	}
}

func TestFWValidateSRAM(t *testing.T) {
	fw := xd1FW()
	fw.B = 1024 // needs 2·1024²·8 = 16 MB > 8 MB
	if err := fw.Validate(); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestSplitEquation1(t *testing.T) {
	// With no transfer volume, the split is proportional to power.
	p := Params{P: 1, Of: 16, Ff: 125e6, OpFp: 2e9, Bd: 1e9, Bn: 1e9, Bw: 8}
	np, nf := p.Split(4e9, 0)
	// FPGA power 2e9 = CPU power: an even split.
	if math.Abs(np-nf) > 1e-3*nf {
		t.Fatalf("equal powers should split evenly: np=%g nf=%g", np, nf)
	}
	// With transfer overhead the CPU share shrinks.
	np2, _ := p.Split(4e9, 1<<30)
	if np2 >= np {
		t.Fatalf("transfer overhead must shift work to the FPGA: %g -> %g", np, np2)
	}
}

func TestSplitCommTimesBalance(t *testing.T) {
	p := Params{P: 4, Of: 16, Ff: 130e6, OpFp: 3.9e9, Bd: 1.04e9, Bn: 2e9, Bw: 8}
	n, df, dp := 1e10, 5e8, 2e8
	np, nf := p.SplitComm(n, df, dp)
	tp := np/p.OpFp + df/p.Bd + dp/p.Bn
	tf := nf / p.FPGAPower()
	if math.Abs(tp-tf)/tf > 1e-9 {
		t.Fatalf("Eq2 imbalance: Tp side %g vs Tf %g", tp, tf)
	}
}

func TestSplitClamps(t *testing.T) {
	p := Params{P: 1, Of: 16, Ff: 130e6, OpFp: 3.9e9, Bd: 1, Bn: 1, Bw: 8}
	// Overhead dwarfs the work: everything lands on the FPGA.
	np, nf := p.Split(10, 1e12)
	if np != 0 || nf != 10 {
		t.Fatalf("clamp failed: np=%g nf=%g", np, nf)
	}
}

func TestQuickSplitConservesWork(t *testing.T) {
	p := Params{P: 4, Of: 16, Ff: 130e6, OpFp: 3.9e9, Bd: 1.04e9, Bn: 2e9, Bw: 8}
	f := func(nRaw, dfRaw uint32) bool {
		n := float64(nRaw)
		df := float64(dfRaw % 1e6)
		np, nf := p.Split(n, df)
		return np >= 0 && nf >= 0 && math.Abs(np+nf-n) < 1e-6*(1+n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceWholeTasks(t *testing.T) {
	// Equal per-task cost: an even split.
	l1, l2 := BalanceWholeTasks(10, 1, 1, 0)
	if l1 != 5 || l2 != 5 {
		t.Fatalf("even split = %d,%d", l1, l2)
	}
	// FPGA 4x faster: it gets ~4/5 of tasks.
	l1, l2 = BalanceWholeTasks(10, 1, 0.25, 0)
	if l2 < 7 || l1+l2 != 10 {
		t.Fatalf("fast FPGA split = %d,%d", l1, l2)
	}
	// Degenerate cases.
	if l1, l2 = BalanceWholeTasks(0, 1, 1, 0); l1 != 0 || l2 != 0 {
		t.Fatal("zero tasks")
	}
	if l1, l2 = BalanceWholeTasks(5, 1, 0, 0); l2 != 5 {
		t.Fatal("free FPGA should take all")
	}
	if l1, l2 = BalanceWholeTasks(5, 0, 1, 0); l1 != 5 {
		t.Fatal("free CPU should take all")
	}
}

func TestLUCoordinationFrequency(t *testing.T) {
	// Section 5.1.3: 2(p-1)Ff/(bf·b) per second — a few hundred Hz on
	// XD1, negligible against task latency as the paper argues.
	hz := xd1LU().CoordinationHz(1280)
	if hz < 100 || hz > 1000 {
		t.Fatalf("coordination frequency %g Hz out of plausible range", hz)
	}
}

func TestFWCoordinationFrequency(t *testing.T) {
	hz := xd1FW().CoordinationHz(10)
	if hz <= 0 || hz > 100 {
		t.Fatalf("coordination frequency %g Hz out of plausible range", hz)
	}
}

func TestValidators(t *testing.T) {
	if err := xd1LU().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := xd1FW().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := xd1LU()
	bad.B = 3001 // not a multiple of k
	if err := bad.Validate(); err == nil {
		t.Fatal("non-multiple block accepted")
	}
	badP := Params{}
	if err := badP.Validate(); err == nil {
		t.Fatal("zero Params accepted")
	}
	good := Params{P: 2, Of: 2, Ff: 1e8, OpFp: 1e9, Bd: 1e9, Bn: 1e9, Bw: 8}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionStructConsistency(t *testing.T) {
	pr := predict(2, 3, 12e9)
	if pr.Seconds != 3 || math.Abs(pr.GFLOPS-4) > 1e-12 {
		t.Fatalf("predict = %+v", pr)
	}
}

func TestBruteForceAgreesWithSolver(t *testing.T) {
	// The closed-form Eq. (4) solution must match an exhaustive scan of
	// the per-stripe makespan (up to one K step of rounding), on the
	// XD1 and on perturbed machines.
	base := xd1LU()
	variants := []LUParams{base}
	v := base
	v.Bn *= 4
	variants = append(variants, v)
	v = base
	v.StripeRate /= 2
	variants = append(variants, v)
	v = base
	v.Ff *= 1.5
	variants = append(variants, v)
	for i, lp := range variants {
		lp.SRAMBytes = 0 // compare the unclamped optimum
		solved, _ := lp.SolvePartition()
		brute := lp.BruteForcePartition()
		if d := solved - brute; d < -lp.K || d > lp.K {
			t.Fatalf("variant %d: solver bf=%d vs brute force %d", i, solved, brute)
		}
	}
}

func TestStripeMakespanConvex(t *testing.T) {
	// The makespan must be decreasing below the optimum and increasing
	// above it (the U shape of Figure 5).
	lp := xd1LU()
	lp.SRAMBytes = 0
	opt := lp.BruteForcePartition()
	for bf := lp.K; bf <= opt; bf += lp.K {
		if lp.StripeMakespan(bf) > lp.StripeMakespan(bf-lp.K)+1e-15 {
			t.Fatalf("makespan not decreasing at bf=%d", bf)
		}
	}
	for bf := opt + lp.K; bf <= lp.B; bf += lp.K {
		if lp.StripeMakespan(bf) < lp.StripeMakespan(bf-lp.K)-1e-15 {
			t.Fatalf("makespan not increasing at bf=%d", bf)
		}
	}
}
