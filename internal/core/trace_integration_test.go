package core

import (
	"strings"
	"testing"

	"codesign/internal/trace"
)

// TestTraceOnFullRun wires the trace collector through a complete
// distributed LU simulation and checks that a coherent timeline comes
// out the other side.
func TestTraceOnFullRun(t *testing.T) {
	col := &trace.Collector{Limit: 500000}
	r, err := RunLU(LUConfig{N: 300, B: 60, PEs: 4, BF: -1, L: 2, Mode: Hybrid, Trace: col.Record})
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() == 0 {
		t.Fatal("no events collected")
	}
	spans := col.Spans()
	if len(spans) == 0 {
		t.Fatal("no busy spans derived")
	}
	// Every span must fit inside the simulated run.
	for _, s := range spans {
		if s.Start < 0 || s.End > r.Seconds+1e-9 {
			t.Fatalf("span %+v outside run [0, %g]", s, r.Seconds)
		}
	}
	// All six node processors must appear.
	procs := map[string]bool{}
	for _, s := range spans {
		procs[s.Proc] = true
	}
	for _, name := range []string{"node0.cpu", "node5.cpu"} {
		if !procs[name] {
			t.Fatalf("timeline missing %s (have %d procs)", name, len(procs))
		}
	}
	var csv strings.Builder
	if err := col.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "node0.cpu") {
		t.Fatal("CSV missing node events")
	}
	var tl strings.Builder
	if err := col.WriteTimeline(&tl, 60, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl.String(), "#") {
		t.Fatal("timeline has no busy marks")
	}
}

// TestTraceOnFW does the same through the Floyd-Warshall design.
func TestTraceOnFW(t *testing.T) {
	col := &trace.Collector{Limit: 500000}
	_, err := RunFW(FWConfig{N: 96, B: 8, PEs: 4, L1: 1, Mode: Hybrid, Trace: col.Record})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Spans()) == 0 {
		t.Fatal("no spans from FW run")
	}
}
