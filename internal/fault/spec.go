package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
)

// Kind names one fault mechanism.
type Kind string

// The supported fault kinds.
const (
	// ThrottleBd throttles a node's FPGA-DRAM streaming bandwidth to
	// Factor of nominal for the event window.
	ThrottleBd Kind = "throttle-bd"
	// ThrottleBn throttles a node's outbound network bandwidth to
	// Factor of nominal for the event window.
	ThrottleBn Kind = "throttle-bn"
	// CPUSlow slows a node's processor (a straggler) to Factor of
	// nominal for the event window.
	CPUSlow Kind = "cpu-slow"
	// FPGAStall stalls a node's FPGA completely for the event window —
	// a partial-reconfiguration outage. Factor is ignored (it is 0),
	// and Duration must be positive.
	FPGAStall Kind = "fpga-stall"
	// NodeKill removes a node permanently at Start. The node drains
	// the iteration it is in (fail-stop at the next iteration
	// boundary) and never rejoins; Factor and Duration are ignored.
	NodeKill Kind = "node-kill"
)

// class maps a kind to the machine subsystem it degrades.
func (k Kind) class() (Class, bool) {
	switch k {
	case ThrottleBd:
		return ClassDRAM, true
	case ThrottleBn:
		return ClassNet, true
	case CPUSlow:
		return ClassCPU, true
	case FPGAStall:
		return ClassFPGA, true
	}
	return 0, false
}

// Event is one scheduled fault.
type Event struct {
	// Kind selects the mechanism.
	Kind Kind `json:"kind"`
	// Node is the target node (0-based).
	Node int `json:"node"`
	// Start is the virtual time the fault begins, in seconds.
	Start float64 `json:"start"`
	// Duration is the window length in seconds; 0 means until the end
	// of the run (except for fpga-stall, which requires a positive
	// duration, and node-kill, which ignores it).
	Duration float64 `json:"duration,omitempty"`
	// Factor is the fraction of the nominal rate delivered during the
	// window, in (0, 1]. Ignored by fpga-stall (0) and node-kill.
	Factor float64 `json:"factor,omitempty"`
}

// Random describes a batch of probabilistic events, expanded
// deterministically from the spec seed when the injector is built.
type Random struct {
	// Kind selects the mechanism for every generated event.
	Kind Kind `json:"kind"`
	// Count is how many events to generate.
	Count int `json:"count"`
	// Node pins every generated event to one node; -1 (the default
	// for omitted) draws the node uniformly. Note the zero value pins
	// to node 0 — use -1 explicitly for "any node" in Go literals.
	Node int `json:"node"`
	// Horizon bounds the drawn start times to [0, Horizon) seconds.
	Horizon float64 `json:"horizon"`
	// MeanDuration is the center of the drawn window length; each
	// event's duration is uniform in [0.5, 1.5]×MeanDuration.
	MeanDuration float64 `json:"mean_duration,omitempty"`
	// MinFactor is the lower bound of the drawn rate factor.
	MinFactor float64 `json:"min_factor,omitempty"`
	// MaxFactor is the upper bound of the drawn rate factor.
	MaxFactor float64 `json:"max_factor,omitempty"`
}

// Spec is the JSON fault specification accepted by hybridsim -faults.
type Spec struct {
	// Seed drives the expansion of Random entries.
	Seed int64 `json:"seed"`
	// Threshold is the sustained-divergence detection threshold: a
	// repartition is considered once an observed rate factor deviates
	// from the currently applied one by more than this. 0 means the
	// default (0.05).
	Threshold float64 `json:"threshold,omitempty"`
	// Window is the minimum virtual time a divergence must persist
	// before the partitions are re-solved. 0 means the default (1 s).
	Window float64 `json:"window,omitempty"`
	// Oracle switches detection from observed telemetry to the
	// configured ground truth with zero lag — the "knew the fault in
	// advance" reference the resilience report compares against.
	Oracle bool `json:"oracle,omitempty"`
	// Events are scheduled faults.
	Events []Event `json:"events,omitempty"`
	// Random are probabilistic fault batches.
	Random []Random `json:"random,omitempty"`
}

// DefaultThreshold and DefaultWindow are the detection tuning used when
// the spec leaves Threshold/Window at zero.
const (
	DefaultThreshold = 0.05
	DefaultWindow    = 1.0
)

// Parse decodes a Spec from JSON, rejecting unknown fields so typos in
// hand-written specs fail loudly.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: parse spec: %w", err)
	}
	return &s, nil
}

// Load reads and parses a Spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return Parse(data)
}

// WithOracle returns a copy of the spec with Oracle detection enabled —
// the reference configuration for recovery-lag measurements.
func (s *Spec) WithOracle() *Spec {
	c := *s
	c.Oracle = true
	return &c
}

// validateEvent checks one (possibly generated) event against the node
// count.
func validateEvent(e Event, nodes int) error {
	if e.Node < 0 || e.Node >= nodes {
		return fmt.Errorf("fault: event %s: node %d out of range [0,%d)", e.Kind, e.Node, nodes)
	}
	if e.Start < 0 {
		return fmt.Errorf("fault: event %s on node %d: negative start %g", e.Kind, e.Node, e.Start)
	}
	if e.Duration < 0 {
		return fmt.Errorf("fault: event %s on node %d: negative duration %g", e.Kind, e.Node, e.Duration)
	}
	switch e.Kind {
	case ThrottleBd, ThrottleBn, CPUSlow:
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("fault: event %s on node %d: factor %g outside (0,1]", e.Kind, e.Node, e.Factor)
		}
	case FPGAStall:
		if e.Duration <= 0 {
			return fmt.Errorf("fault: fpga-stall on node %d needs a positive duration", e.Node)
		}
	case NodeKill:
		// Start alone matters.
	default:
		return fmt.Errorf("fault: unknown event kind %q", e.Kind)
	}
	return nil
}

// expand validates the spec against the node count and returns the full
// deterministic event list: scheduled events plus Random batches drawn
// from the seed, sorted by (start, node, kind).
func (s *Spec) expand(nodes int) ([]Event, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("fault: need at least one node, got %d", nodes)
	}
	if s.Threshold < 0 {
		return nil, fmt.Errorf("fault: negative detection threshold %g", s.Threshold)
	}
	if s.Window < 0 {
		return nil, fmt.Errorf("fault: negative detection window %g", s.Window)
	}
	events := make([]Event, 0, len(s.Events))
	for i, e := range s.Events {
		if err := validateEvent(e, nodes); err != nil {
			return nil, fmt.Errorf("events[%d]: %w", i, err)
		}
		events = append(events, e)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	for i, r := range s.Random {
		if r.Count < 0 {
			return nil, fmt.Errorf("fault: random[%d]: negative count %d", i, r.Count)
		}
		if r.Count > 0 && r.Horizon <= 0 {
			return nil, fmt.Errorf("fault: random[%d]: non-positive horizon %g", i, r.Horizon)
		}
		for j := 0; j < r.Count; j++ {
			e := Event{Kind: r.Kind, Node: r.Node, Start: rng.Float64() * r.Horizon}
			if e.Node < 0 {
				e.Node = rng.Intn(nodes)
			}
			if r.MeanDuration > 0 {
				e.Duration = r.MeanDuration * (0.5 + rng.Float64())
			}
			if r.MaxFactor > 0 {
				e.Factor = r.MinFactor + rng.Float64()*(r.MaxFactor-r.MinFactor)
			}
			if err := validateEvent(e, nodes); err != nil {
				return nil, fmt.Errorf("random[%d] event %d: %w", i, j, err)
			}
			events = append(events, e)
		}
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].Start != events[b].Start {
			return events[a].Start < events[b].Start
		}
		if events[a].Node != events[b].Node {
			return events[a].Node < events[b].Node
		}
		return events[a].Kind < events[b].Kind
	})
	return events, nil
}
