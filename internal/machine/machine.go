package machine

import (
	"fmt"

	"codesign/internal/cpu"
	"codesign/internal/fabric"
	"codesign/internal/fault"
	"codesign/internal/fpga"
	"codesign/internal/mem"
	"codesign/internal/mpi"
	"codesign/internal/sim"
)

// Config describes a system to build.
type Config struct {
	// Name identifies the preset.
	Name string
	// Nodes is the node count p.
	Nodes int
	// Processor builds the per-node processor model.
	Processor func() *cpu.Processor
	// Device is the per-node FPGA part.
	Device fpga.Device
	// RawFPGADRAMBandwidth is the physical FPGA<->DRAM path bandwidth
	// in bytes/s (2.8 GB/s through the XD1 RapidArray processors). The
	// effective Bd is the lesser of this and the design's consumption
	// rate of one word per cycle.
	RawFPGADRAMBandwidth float64
	// SRAMBanks and SRAMBankBytes give the per-node QDR-II geometry.
	SRAMBanks     int
	SRAMBankBytes int64
	// SRAMBandwidth is the aggregate FPGA<->SRAM bandwidth in bytes/s
	// (12.8 GB/s on XD1) — the path iterative designs stream resident
	// data over.
	SRAMBandwidth float64
	// Fabric is the interconnect model (LinkBandwidth is Bn).
	Fabric fabric.Config
}

// WordBytes is the double-precision word width (the model's bw).
const WordBytes = 8

// XD1 returns one Cray XD1 chassis: 6 blades, each a 2.2 GHz Opteron +
// XC2VP50 with four QDR-II banks, 2.8 GB/s RapidArray FPGA-DRAM path,
// and two 2 GB/s links into the non-blocking crossbar.
func XD1() Config {
	return Config{
		Name:                 "Cray XD1 (one chassis)",
		Nodes:                6,
		Processor:            cpu.Opteron22,
		Device:               fpga.XC2VP50(),
		RawFPGADRAMBandwidth: 2.8e9,
		SRAMBanks:            4,
		SRAMBankBytes:        4 << 20, // 16 MB total; designs allocate 8 MB
		SRAMBandwidth:        12.8e9,
		Fabric: fabric.Config{
			Nodes:         6,
			LinkBandwidth: 2e9,
			LinksPerNode:  2,
			Latency:       1.8e-6,
		},
	}
}

// XT3DRC returns a 6-node Cray XT3 partition with DRC Virtex-4 modules:
// a faster FPGA-DRAM path (6.4 GB/s HyperTransport) and SeaStar links.
func XT3DRC() Config {
	return Config{
		Name:                 "Cray XT3 + DRC (6 nodes)",
		Nodes:                6,
		Processor:            cpu.Opteron22,
		Device:               fpga.XC4VLX200(),
		RawFPGADRAMBandwidth: 6.4e9,
		SRAMBanks:            4,
		SRAMBankBytes:        16 << 20, // up to 64 MB per DRC module
		SRAMBandwidth:        9.6e9,
		Fabric: fabric.Config{
			Nodes:         6,
			LinkBandwidth: 4e9,
			LinksPerNode:  1,
			Latency:       5e-6,
		},
	}
}

// SRC6 returns a 4-node SRC-6 MAPstation cluster model.
func SRC6() Config {
	return Config{
		Name:                 "SRC-6 cluster (4 nodes)",
		Nodes:                4,
		Processor:            cpu.Opteron22,
		Device:               fpga.XC2VP50(),
		RawFPGADRAMBandwidth: 1.4e9, // SNAP port
		SRAMBanks:            6,
		SRAMBankBytes:        4 << 20,
		SRAMBandwidth:        9.6e9,
		Fabric: fabric.Config{
			Nodes:         4,
			LinkBandwidth: 1.4e9,
			LinksPerNode:  1,
			Latency:       3e-6,
		},
	}
}

// RASC returns a 4-blade SGI RASC RC100 model (Virtex-4 blades on
// NUMAlink to shared global memory).
func RASC() Config {
	return Config{
		Name:                 "SGI RASC RC100 (4 blades)",
		Nodes:                4,
		Processor:            cpu.Opteron22,
		Device:               fpga.XC4VLX160(),
		RawFPGADRAMBandwidth: 3.2e9,
		SRAMBanks:            4,
		SRAMBankBytes:        8 << 20,
		SRAMBandwidth:        12.8e9,
		Fabric: fabric.Config{
			Nodes:         4,
			LinkBandwidth: 3.2e9,
			LinksPerNode:  1,
			Latency:       1e-6,
		},
	}
}

// Validate checks the configuration is buildable, returning an error
// naming the offending field. It subsumes every panic the lower layers
// (mem SRAM geometry, fabric endpoints) would otherwise raise mid-build,
// so configurations from user input (machine JSON files, sweep grids)
// fail with an error instead of crashing deep in a run.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("machine: need at least one node")
	}
	if c.Processor == nil {
		return fmt.Errorf("machine: no processor model")
	}
	if c.RawFPGADRAMBandwidth <= 0 {
		return fmt.Errorf("machine: non-positive FPGA-DRAM bandwidth %g", c.RawFPGADRAMBandwidth)
	}
	if c.SRAMBanks < 1 {
		return fmt.Errorf("machine: need at least one SRAM bank, got %d", c.SRAMBanks)
	}
	if c.SRAMBankBytes < 1 {
		return fmt.Errorf("machine: non-positive SRAM bank size %d", c.SRAMBankBytes)
	}
	if c.SRAMBandwidth <= 0 {
		return fmt.Errorf("machine: non-positive SRAM bandwidth %g", c.SRAMBandwidth)
	}
	if c.Fabric.Nodes != c.Nodes {
		return fmt.Errorf("machine: fabric has %d endpoints for %d nodes", c.Fabric.Nodes, c.Nodes)
	}
	return c.Fabric.Validate()
}

// Node is one compute blade.
type Node struct {
	ID   int
	Proc *cpu.Processor
	// CPUBusy accounts processor busy time (one processor per node, as
	// in the paper's implementation).
	CPUBusy *sim.Resource
	SRAM    *mem.SRAM
	Device  fpga.Device
	Accel   *Accelerator
	sys     *System
	// dilate, when non-nil, maps a nominal processor charge to its
	// fault-degraded duration, keyed by the charge's span category so
	// DMA charges can degrade with Bd while compute degrades with the
	// CPU straggler factor.
	dilate func(cat sim.Category, start, dt float64) float64
}

// SetDilation installs a fault-injection hook on the node's processor
// charges. Nil removes it; the hot path is untouched when unset.
func (n *Node) SetDilation(f func(cat sim.Category, start, dt float64) float64) {
	n.dilate = f
}

// ComputeCPU charges the node processor with flops of the given routine
// class, holding the CPU busy for the modeled duration. The hold is
// emitted as a compute span on the node's CPU resource.
func (n *Node) ComputeCPU(p *sim.Proc, r cpu.Routine, flops float64) {
	n.ChargeCPU(p, sim.CatCompute, 0, n.Proc.Time(r, flops))
}

// ChargeCPU holds the node processor for dt seconds and emits a typed
// span — the instrumented analogue of CPUBusy.Use for pre-computed
// charges (unpack time, operand staging) where the category and moved
// bytes are known to the caller.
func (n *Node) ChargeCPU(p *sim.Proc, cat sim.Category, bytes int64, dt float64) {
	if n.dilate != nil {
		dt = n.dilate(cat, n.sys.Eng.Now(), dt)
	}
	n.CPUBusy.UseCat(p, cat, bytes, dt)
}

// ChargeCPUSeq charges a sequence of consecutive processor intervals —
// e.g. unpack, DMA staging, then a GEMM — exactly like calling
// ChargeCPU once per charge, but through the engine's fused path so
// the process parks once for the whole sequence (see sim.Resource.
// UseSeq). With a fault-dilation hook installed it falls back to the
// per-charge loop, because each charge's degraded duration depends on
// its own start time; faulted runs therefore stay byte-identical to
// releases that predate fusing.
func (n *Node) ChargeCPUSeq(p *sim.Proc, charges []sim.Charge) {
	if n.dilate != nil {
		for _, c := range charges {
			n.ChargeCPU(p, c.Cat, c.Bytes, c.Dt)
		}
		return
	}
	n.CPUBusy.UseSeq(p, charges)
}

// Accelerator is a placed design installed on a node's FPGA, with its
// effective DRAM streaming channel and coordination counters.
type Accelerator struct {
	Placed *fpga.Placed
	// DRAM is the streaming channel at the effective Bd =
	// min(raw path, one word per design cycle).
	DRAM *mem.DRAM
	// Array serializes use of the PE array.
	Array *sim.Resource
	// fillName is the precomputed Array.Name()+".fill" stage name:
	// WaitOperands runs once per FPGA job, so building the string
	// there showed up in sweep allocation profiles.
	fillName      string
	node          *Node
	coordinations int64
	jobs          int64
	// dilate, when non-nil, maps nominal array compute time to its
	// fault-degraded duration (an FPGA reconfiguration stall).
	dilate func(start, dt float64) float64
}

// SetDilation installs a fault-injection hook on the accelerator's
// array compute time. Nil removes it.
func (a *Accelerator) SetDilation(f func(start, dt float64) float64) { a.dilate = f }

// EffectiveBd returns the design-limited DRAM bandwidth.
func EffectiveBd(raw, freqHz float64) float64 {
	designRate := WordBytes * freqHz
	if designRate < raw {
		return designRate
	}
	return raw
}

// InstallDesign places d on every node's FPGA (charging configuration
// time is the caller's choice via ConfigTime). It fails if the design
// does not fit the device.
func (s *System) InstallDesign(d fpga.Design) error {
	for _, n := range s.Nodes {
		placed, err := fpga.Place(d, n.Device)
		if err != nil {
			return fmt.Errorf("node %d: %w", n.ID, err)
		}
		array := sim.NewResource(s.Eng, fmt.Sprintf("fpga%d", n.ID), 1)
		array.SetDevice(sim.DeviceFPGA)
		n.Accel = &Accelerator{
			Placed:   placed,
			DRAM:     mem.NewDRAM(s.Eng, EffectiveBd(s.Cfg.RawFPGADRAMBandwidth, placed.FreqHz)),
			Array:    array,
			fillName: array.Name() + ".fill",
			node:     n,
		}
	}
	return nil
}

// ConfigTime returns the bitstream configuration time for the node's
// device.
func (a *Accelerator) ConfigTime() float64 { return a.node.Device.ConfigSeconds }

// Launch starts an FPGA job (the processor writing the start register,
// Section 4.4) and returns a signal that fires when the job is done
// (the status register). run executes as its own process and should
// charge Array/DRAM time itself.
func (a *Accelerator) Launch(name string, run func(fp *sim.Proc)) *sim.Signal {
	a.coordinations++ // start-register write
	a.jobs++
	done := sim.NewSignal(a.node.sys.Eng, name+".done")
	a.node.sys.Eng.Go(name, func(fp *sim.Proc) {
		run(fp)
		done.Fire()
	})
	return done
}

// AwaitDone blocks the processor on the job's status register.
func (a *Accelerator) AwaitDone(p *sim.Proc, done *sim.Signal) {
	a.coordinations++ // status-register poll observing completion
	done.Wait(p)
}

// Run launches a job and immediately blocks until it completes.
func (a *Accelerator) Run(p *sim.Proc, name string, run func(fp *sim.Proc)) {
	a.AwaitDone(p, a.Launch(name, run))
}

// Compute charges the PE array with a cycle count at the placed clock.
// The hold is emitted as an FPGA compute span on the array resource.
// With a fault hook installed the nominal duration is dilated first, so
// a reconfiguration stall stretches the same span a healthy run emits.
func (a *Accelerator) Compute(fp *sim.Proc, cycles float64) {
	dt := a.Placed.CyclesToSeconds(cycles)
	if a.dilate != nil {
		dt = a.dilate(a.node.sys.Eng.Now(), dt)
	}
	a.Array.UseCat(fp, sim.CatCompute, 0, dt)
}

// WaitOperands charges the FPGA job dt seconds of operand staging —
// pipeline-fill lag while the processor streams the first operands in —
// emitted as a DMA span against the array's fill stage so overlap
// accounting attributes it to memory traffic, not FPGA compute. The lag
// rides the DRAM path, so it degrades with the same Bd faults as
// explicit streams.
func (a *Accelerator) WaitOperands(fp *sim.Proc, dt float64) {
	fp.WaitSpanOn(sim.CatDMA, sim.DeviceDRAM, a.fillName, 0, a.DRAM.Dilated(fp.Now(), dt))
}

// Stream charges a DRAM<->FPGA transfer of the given bytes.
func (a *Accelerator) Stream(fp *sim.Proc, bytes int) { a.DRAM.Stream(fp, bytes) }

// Coordinations returns processor<->FPGA register handshakes so far.
func (a *Accelerator) Coordinations() int64 { return a.coordinations }

// Jobs returns the number of launched FPGA jobs.
func (a *Accelerator) Jobs() int64 { return a.jobs }

// System is a built machine inside a simulation engine.
type System struct {
	Cfg   Config
	Eng   *sim.Engine
	Fab   *fabric.Fabric
	World *mpi.World
	Nodes []*Node
}

// New builds the system described by cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.New()
	fab, err := fabric.New(eng, cfg.Fabric)
	if err != nil {
		return nil, err
	}
	s := &System{Cfg: cfg, Eng: eng, Fab: fab, World: mpi.NewWorld(eng, fab)}
	for i := 0; i < cfg.Nodes; i++ {
		cpuBusy := sim.NewResource(eng, fmt.Sprintf("cpu%d", i), 1)
		cpuBusy.SetDevice(sim.DeviceCPU)
		s.Nodes = append(s.Nodes, &Node{
			ID:      i,
			Proc:    cfg.Processor(),
			CPUBusy: cpuBusy,
			SRAM:    mem.NewSRAM(cfg.SRAMBanks, cfg.SRAMBankBytes),
			Device:  cfg.Device,
			sys:     s,
		})
	}
	return s, nil
}

// InstallFaults wires a fault injector into every charging path of the
// built system: processor charges (CPU straggler / Bd-paced DMA /
// network unpack), FPGA-DRAM streams and operand fill (Bd throttle),
// outbound wire time (Bn throttle), array compute (reconfiguration
// stalls), and MPI rank liveness (node kills). Call it after
// InstallDesign so the per-node accelerators exist; a nil injector is a
// no-op. The hooks only dilate charge durations — no engine events are
// scheduled — so an injector with no configured faults leaves the
// simulation byte-identical.
func (s *System) InstallFaults(inj *fault.Injector) error {
	if inj == nil {
		return nil
	}
	if inj.Nodes() != s.Cfg.Nodes {
		return fmt.Errorf("machine: fault spec targets %d nodes, system has %d", inj.Nodes(), s.Cfg.Nodes)
	}
	for i, n := range s.Nodes {
		node := i
		n.SetDilation(func(cat sim.Category, start, dt float64) float64 {
			// DMA charges are paced by the FPGA-DRAM path; everything
			// else the processor does (compute, unpack) is CPU-bound.
			if cat == sim.CatDMA {
				return inj.Dilate(fault.ClassDRAM, node, start, dt)
			}
			return inj.Dilate(fault.ClassCPU, node, start, dt)
		})
		s.Fab.SetDilation(node, func(start, dt float64) float64 {
			return inj.Dilate(fault.ClassNet, node, start, dt)
		})
		if n.Accel != nil {
			n.Accel.DRAM.SetDilation(func(start, dt float64) float64 {
				return inj.Dilate(fault.ClassDRAM, node, start, dt)
			})
			n.Accel.SetDilation(func(start, dt float64) float64 {
				return inj.Dilate(fault.ClassFPGA, node, start, dt)
			})
		}
	}
	s.World.SetLiveness(inj.Alive)
	return nil
}

// Spawn runs body as node i's processor program, attached to MPI rank i.
func (s *System) Spawn(i int, body func(p *sim.Proc, r *mpi.Rank, n *Node)) {
	n := s.Nodes[i]
	s.Eng.Go(fmt.Sprintf("node%d.cpu", i), func(p *sim.Proc) {
		body(p, s.World.Attach(p, i), n)
	})
}

// SpawnAll runs body on every node.
func (s *System) SpawnAll(body func(p *sim.Proc, r *mpi.Rank, n *Node)) {
	for i := range s.Nodes {
		s.Spawn(i, body)
	}
}

// Run drives the simulation to completion and returns the final virtual
// time.
func (s *System) Run() (float64, error) {
	err := s.Eng.Run(0)
	return s.Eng.Now(), err
}
