// Command codesignd serves the co-design model as a service: an
// HTTP/JSON API over the paper's partition solver (Equations 1-6) and
// the design-space sweep engine, with a bounded LRU solve cache,
// request coalescing for duplicate queries, admission control that
// sheds overload with 429, and the full observability surface
// (/metrics, /statusz, pprof) on the same port.
//
// Usage:
//
//	codesignd                              # serve on 127.0.0.1:8080
//	codesignd -addr :9000 -cache 16384     # bigger solve cache
//	codesignd -max-inflight 8 -max-queue 16
//	codesignd -cache-file codesignd.cache  # warm restarts: seed on boot, save on drain
//	curl -s localhost:8080/v1/solve -d '{"app":"lu"}'
//	curl -s localhost:8080/metrics | grep codesignd_
//
// Endpoints: POST /v1/solve (one point, cached), POST /v1/design
// (synchronous best-design search), POST /v1/sweep + GET
// /v1/sweep/{id} (asynchronous sweep jobs). OPERATIONS.md documents
// the API, error codes, tuning flags and every exported metric
// family. SIGINT/SIGTERM drain gracefully: in-flight requests finish
// (up to -drain), background sweep jobs are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"codesign/internal/cli"
	"codesign/internal/obs"
	"codesign/internal/serve"
)

func main() {
	var o options
	flag.StringVar(&o.Addr, "addr", "127.0.0.1:8080", "listen `address` (host:port; :0 = ephemeral)")
	flag.IntVar(&o.CacheBound, "cache", 4096, "solve cache bound in entries (< 0 = unbounded)")
	flag.IntVar(&o.MemoBound, "memo", 65536, "evaluator memo cache bound per cache (< 0 = unbounded)")
	flag.IntVar(&o.MaxInFlight, "max-inflight", 32, "max concurrently evaluating compute requests")
	flag.IntVar(&o.MaxQueue, "max-queue", 256, "max requests queued for a slot before shedding with 429")
	flag.DurationVar(&o.RequestTimeout, "request-timeout", 30*time.Second, "per-request deadline (and ?timeout_ms= upper bound)")
	flag.IntVar(&o.MaxDesignPoints, "max-design-points", 10000, "largest grid /v1/design evaluates synchronously")
	flag.IntVar(&o.MaxSweepPoints, "max-sweep-points", 100000, "largest grid /v1/sweep accepts")
	flag.IntVar(&o.MaxRunningJobs, "max-running-jobs", 2, "max concurrently running sweep jobs")
	flag.IntVar(&o.MaxJobs, "max-jobs", 64, "max retained sweep job records")
	flag.IntVar(&o.SweepWorkers, "sweep-workers", 0, "worker pool per sweep job (0 = GOMAXPROCS)")
	flag.StringVar(&o.CacheFile, "cache-file", "", "persist the solve cache: seed from this JSON snapshot `file` on boot, save it on drain")
	flag.DurationVar(&o.Drain, "drain", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	flag.BoolVar(&o.Quiet, "q", false, "quiet: log errors only")
	flag.BoolVar(&o.Verbose, "v", false, "verbose: also log debug detail")
	flag.Parse()

	o.Log = cli.NewLogger("codesignd", os.Stderr)
	if err := run(o, os.Stdout); err != nil {
		o.Log.Errorf("%v", err)
		os.Exit(1)
	}
}

// options bundles every CLI knob run needs; tests construct it
// directly.
type options struct {
	Addr            string
	CacheBound      int
	MemoBound       int
	MaxInFlight     int
	MaxQueue        int
	RequestTimeout  time.Duration
	MaxDesignPoints int
	MaxSweepPoints  int
	MaxRunningJobs  int
	MaxJobs         int
	SweepWorkers    int
	// CacheFile, when set, persists the solve cache across restarts:
	// seeded on boot if the file exists, snapshotted on graceful
	// shutdown.
	CacheFile string
	Drain     time.Duration
	Quiet     bool
	Verbose   bool
	Log       *cli.Logger
	// ready, when non-nil, receives the bound listen address before
	// serving (tests use it with ":0").
	ready func(addr string)
	// stop, when non-nil, triggers shutdown like a signal would
	// (tests close it instead of sending SIGTERM).
	stop <-chan struct{}
}

// config converts the flag values to a serve.Config.
func (o options) config() serve.Config {
	return serve.Config{
		CacheBound:      o.CacheBound,
		MemoBound:       o.MemoBound,
		MaxInFlight:     o.MaxInFlight,
		MaxQueue:        o.MaxQueue,
		RequestTimeout:  o.RequestTimeout,
		MaxDesignPoints: o.MaxDesignPoints,
		MaxSweepPoints:  o.MaxSweepPoints,
		MaxRunningJobs:  o.MaxRunningJobs,
		MaxJobs:         o.MaxJobs,
		SweepWorkers:    o.SweepWorkers,
	}
}

func run(o options, stdout io.Writer) error {
	log := o.Log
	if log == nil {
		log = cli.NewLogger("codesignd", os.Stderr)
	}
	switch {
	case o.Quiet:
		log.SetLevel(slog.LevelError)
	case o.Verbose:
		log.SetLevel(slog.LevelDebug)
	}

	reg := obs.NewRegistry()
	srv := serve.New(o.config(), reg)
	defer srv.Close()

	if o.CacheFile != "" {
		n, err := loadCacheFile(srv.Service(), o.CacheFile)
		switch {
		case errors.Is(err, os.ErrNotExist):
			log.Infof("cache-file %s not found; starting cold", o.CacheFile)
		case err != nil:
			// A bad snapshot must not block serving: the cache is an
			// optimization, the daemon works (slower) without it.
			log.Errorf("cache-file %s: %v; starting cold", o.CacheFile, err)
		default:
			log.Infof("seeded solve cache with %d entries from %s", n, o.CacheFile)
		}
	}

	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Infof("serving co-design API on http://%s/v1/solve (metrics on /metrics)", ln.Addr())
	if o.ready != nil {
		o.ready(ln.Addr().String())
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	case <-stopChan(o.stop):
	}

	log.Infof("shutting down: draining in-flight requests (up to %v)", o.Drain)
	drainCtx, drainCancel := context.WithTimeout(context.Background(), o.Drain)
	defer drainCancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// Serve has returned http.ErrServerClosed by now; drain the channel
	// so the goroutine is done.
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if o.CacheFile != "" {
		n, err := saveCacheFile(srv.Service(), o.CacheFile)
		if err != nil {
			log.Errorf("cache-file %s: %v", o.CacheFile, err)
		} else {
			log.Infof("saved %d solve cache entries to %s", n, o.CacheFile)
		}
	}
	log.Infof("bye")
	return nil
}

// loadCacheFile seeds the service's solve cache from a snapshot file.
func loadCacheFile(svc *serve.Service, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return svc.LoadCache(f)
}

// saveCacheFile snapshots the solve cache via a temp file + rename, so
// a crash mid-write never truncates the previous snapshot.
func saveCacheFile(svc *serve.Service, path string) (int, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	n, err := svc.SaveCache(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, os.Rename(tmp, path)
}

// stopChan adapts the optional test stop channel: nil means "never".
func stopChan(ch <-chan struct{}) <-chan struct{} {
	if ch != nil {
		return ch
	}
	return make(chan struct{})
}
