package core

import (
	"bytes"
	"math"
	"testing"

	"codesign/internal/sim"
	"codesign/internal/trace"
)

// smallLU is a hybrid LU configuration small enough for tests but large
// enough to exercise panels, broadcasts, opMM jobs and scatter.
func smallLU() LUConfig {
	return LUConfig{N: 240, B: 40, PEs: 4, BF: -1, L: -1, Mode: Hybrid}
}

func TestLUTelemetryOverlapSums(t *testing.T) {
	cfg := smallLU()
	cfg.Telemetry = true
	r, err := RunLU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Telemetry
	if s == nil {
		t.Fatal("Telemetry=true produced no summary")
	}
	if s.Makespan != r.Seconds {
		t.Fatalf("makespan %v != run seconds %v", s.Makespan, r.Seconds)
	}
	if s.Spans == 0 || s.Events == 0 {
		t.Fatalf("empty telemetry: %d spans, %d events", s.Spans, s.Events)
	}
	// The exposed components partition the makespan exactly.
	if got := s.Overlap.Sum(); math.Abs(got-s.Makespan) > 1e-6*s.Makespan {
		t.Fatalf("overlap sum %v != makespan %v", got, s.Makespan)
	}
	// In this design every instant of the run is attributable to one of
	// the four model terms: the acceptance criterion of the telemetry
	// layer. Sync waits overlap busy spans on other processes and idle
	// only appears when no process does anything at all.
	four := s.Overlap.Tf + s.Overlap.Tp + s.Overlap.Tmem + s.Overlap.Tcomm
	if math.Abs(four-s.Makespan) > 1e-6*s.Makespan {
		t.Fatalf("Tf+Tp+Tmem+Tcomm = %v, want makespan %v (sync %v, idle %v)",
			four, s.Makespan, s.Overlap.Sync, s.Overlap.Idle)
	}
	if s.Overlap.Tf <= 0 || s.Overlap.Tp <= 0 {
		t.Fatalf("hybrid run should expose both compute terms: Tf=%v Tp=%v",
			s.Overlap.Tf, s.Overlap.Tp)
	}
	eff := s.Overlap.Efficiency()
	if eff < 0 || eff > 1 {
		t.Fatalf("overlap efficiency %v out of [0,1]", eff)
	}
}

func TestTelemetryBytesMatchIndependentCounters(t *testing.T) {
	cfg := smallLU()
	cfg.Telemetry = true
	r, err := RunLU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Network payload is attached only to fabric wire spans, so the
	// span-derived total must equal the fabric's own byte counter.
	if r.Telemetry.NetworkBytes != r.NetworkBytes {
		t.Fatalf("span network bytes %d != fabric bytes %d",
			r.Telemetry.NetworkBytes, r.NetworkBytes)
	}
	if r.Telemetry.DRAMBytes <= 0 {
		t.Fatalf("hybrid run streamed no DRAM bytes")
	}
}

func TestTelemetryAllApps(t *testing.T) {
	check := func(name string, res *Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := res.Telemetry
		if s == nil {
			t.Fatalf("%s: no telemetry", name)
		}
		if got := s.Overlap.Sum(); math.Abs(got-s.Makespan) > 1e-6*math.Max(s.Makespan, 1e-12) {
			t.Fatalf("%s: overlap sum %v != makespan %v", name, got, s.Makespan)
		}
		if s.Spans == 0 {
			t.Fatalf("%s: no spans", name)
		}
	}
	lu, err := RunLU(LUConfig{N: 120, B: 20, PEs: 4, BF: -1, L: -1, Mode: Hybrid, Telemetry: true})
	check("lu", &lu.Result, err)
	fw, err := RunFW(FWConfig{N: 96, B: 8, PEs: 4, L1: -1, Mode: Hybrid, Telemetry: true})
	check("fw", &fw.Result, err)
	mm, err := RunMM(MMConfig{N: 96, PEs: 4, BF: -1, Mode: Hybrid, Telemetry: true})
	check("mm", &mm.Result, err)
	ch, err := RunCholesky(CholConfig{N: 120, B: 20, PEs: 4, BF: -1, L: -1, Mode: Hybrid, Telemetry: true})
	check("chol", &ch.Result, err)
	qr, err := RunQR(QRConfig{N: 120, B: 20, PEs: 4, BF: -1, Mode: Hybrid, Telemetry: true})
	check("qr", &qr.Result, err)
	cg, err := RunCG(CGConfig{N: 64, Mode: Hybrid, Seed: 1, Telemetry: true})
	check("cg", &cg.Result, err)
}

func TestPerfettoExportDeterministic(t *testing.T) {
	export := func() []byte {
		rec := trace.NewRecorder()
		cfg := smallLU()
		cfg.Observer = rec
		if _, err := RunLU(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 {
		t.Fatal("empty perfetto export")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs exported different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// traceEvent is one legacy-hook record for the adapter comparison.
type traceEvent struct {
	t            float64
	proc, action string
}

func TestLegacyTraceHookMatchesObserverEvents(t *testing.T) {
	var legacy []traceEvent
	rec := trace.NewRecorder()
	rec.KeepEvents = true
	cfg := smallLU()
	cfg.Observer = rec
	cfg.Trace = func(tm float64, proc, action string) {
		legacy = append(legacy, traceEvent{tm, proc, action})
	}
	if _, err := RunLU(cfg); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(legacy) == 0 {
		t.Fatal("legacy hook saw no events")
	}
	if len(legacy) != len(events) {
		t.Fatalf("legacy hook saw %d events, observer %d", len(legacy), len(events))
	}
	for i := range legacy {
		if legacy[i].t != events[i].Time || legacy[i].proc != events[i].Proc ||
			legacy[i].action != events[i].Action {
			t.Fatalf("event %d differs: hook %+v, observer %+v", i, legacy[i], events[i])
		}
	}
}

func TestObserverOffByDefault(t *testing.T) {
	// Without Telemetry or an Observer the engine must not pay for span
	// construction and the result must carry no summary.
	r, err := RunLU(smallLU())
	if err != nil {
		t.Fatal(err)
	}
	if r.Telemetry != nil {
		t.Fatal("telemetry attached without opting in")
	}
}

func TestRecorderSpansCarryPhases(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := smallLU()
	cfg.Observer = rec
	if _, err := RunLU(cfg); err != nil {
		t.Fatal(err)
	}
	phases := map[string]bool{}
	bytesOnWire := false
	for _, s := range rec.Spans() {
		phases[s.Phase] = true
		if s.Category == sim.CatNetwork && s.Bytes > 0 {
			bytesOnWire = true
		}
	}
	for _, want := range []string{"panel", "broadcast", "opmm", "opms", "scatter"} {
		if !phases[want] {
			t.Errorf("no span carried phase %q", want)
		}
	}
	if !bytesOnWire {
		t.Error("no network span carried payload bytes")
	}
}
