package exper

import (
	"fmt"

	"codesign/internal/analysis"
	"codesign/internal/core"
	"codesign/internal/fault"
	"codesign/internal/trace"
)

// Headline runs the repository's benchmark-regression suite: every
// headline number of the evaluation — design latencies and throughput
// at the paper's problem sizes, solved partition parameters, overlap
// efficiency, prediction accuracy and critical-path shape — as a flat
// metric set. cmd/experiments serializes it with -bench-json and
// re-runs it under -check; because the simulator is deterministic, the
// same build must reproduce every metric bit-exactly, so any diff is a
// behavior change in the code, not noise.
func Headline() (*analysis.Baseline, error) { return headline(false) }

// HeadlineWithIdleFaultLayer is Headline with a no-fault injector
// installed into every LU and FW run. The fault layer's contract is
// zero cost when idle: this suite must be byte-identical to Headline's,
// which the repository-level baseline gate pins at zero tolerance.
func HeadlineWithIdleFaultLayer() (*analysis.Baseline, error) { return headline(true) }

func headline(idleFaults bool) (*analysis.Baseline, error) {
	b := analysis.NewBaseline()
	// Injectors are stateful (they accumulate observation telemetry),
	// so every run gets a fresh one.
	newInj := func() (*fault.Injector, error) {
		if !idleFaults {
			return nil, nil
		}
		return fault.New(&fault.Spec{}, 6)
	}

	// LU at the paper's size, all three designs. The hybrid run also
	// contributes its solved partition, telemetry and critical path.
	rec := trace.NewRecorder()
	inj, err := newInj()
	if err != nil {
		return nil, err
	}
	lu, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: -1, L: -1,
		Mode: core.Hybrid, Telemetry: true, Observer: rec, Faults: inj})
	if err != nil {
		return nil, err
	}
	b.Set("lu.hybrid.seconds", lu.Seconds)
	b.Set("lu.hybrid.gflops", lu.GFLOPS)
	b.Set("lu.hybrid.bf", float64(lu.BF))
	b.Set("lu.hybrid.l", float64(lu.L))
	b.Set("lu.hybrid.iter0_s", lu.IterationSeconds[0])
	b.Set("lu.hybrid.prediction_ratio", lu.GFLOPS/lu.Prediction.GFLOPS)
	b.Set("lu.hybrid.overlap_efficiency", lu.Telemetry.Overlap.Efficiency())
	luPath := analysis.ExtractCriticalPath(rec.Spans(), lu.Seconds)
	b.Set("lu.hybrid.critical_path_hops", float64(len(luPath)))
	b.Set("lu.hybrid.critical_path_s", analysis.PathTotal(luPath))

	for _, m := range []core.Mode{core.ProcessorOnly, core.FPGAOnly} {
		inj, err := newInj()
		if err != nil {
			return nil, err
		}
		r, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: m, Faults: inj})
		if err != nil {
			return nil, err
		}
		b.Set("lu."+m.String()+".seconds", r.Seconds)
		b.Set("lu."+m.String()+".gflops", r.GFLOPS)
	}

	// FW at the Section 6.2 throughput-equivalent size, all designs.
	rec = trace.NewRecorder()
	if inj, err = newInj(); err != nil {
		return nil, err
	}
	fw, err := core.RunFW(core.FWConfig{N: 18432, B: 256, L1: -1,
		Mode: core.Hybrid, Telemetry: true, Observer: rec, Faults: inj})
	if err != nil {
		return nil, err
	}
	b.Set("fw.hybrid.seconds", fw.Seconds)
	b.Set("fw.hybrid.gflops", fw.GFLOPS)
	b.Set("fw.hybrid.l1", float64(fw.L1))
	b.Set("fw.hybrid.l2", float64(fw.L2))
	b.Set("fw.hybrid.prediction_ratio", fw.GFLOPS/fw.Prediction.GFLOPS)
	b.Set("fw.hybrid.overlap_efficiency", fw.Telemetry.Overlap.Efficiency())
	fwPath := analysis.ExtractCriticalPath(rec.Spans(), fw.Seconds)
	b.Set("fw.hybrid.critical_path_hops", float64(len(fwPath)))
	b.Set("fw.hybrid.critical_path_s", analysis.PathTotal(fwPath))

	for _, m := range []core.Mode{core.ProcessorOnly, core.FPGAOnly} {
		inj, err := newInj()
		if err != nil {
			return nil, err
		}
		r, err := core.RunFW(core.FWConfig{N: 18432, B: 256, L1: -1, Mode: m, Faults: inj})
		if err != nil {
			return nil, err
		}
		b.Set("fw."+m.String()+".seconds", r.Seconds)
		b.Set("fw."+m.String()+".gflops", r.GFLOPS)
	}

	// Figure anchors: the optima the paper calls out.
	if inj, err = newInj(); err != nil {
		return nil, err
	}
	lu3, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: 1280, L: 3, Mode: core.Hybrid, Faults: inj})
	if err != nil {
		return nil, err
	}
	b.Set("lu.bf1280_l3.iter0_s", lu3.IterationSeconds[0])
	if inj, err = newInj(); err != nil {
		return nil, err
	}
	fw2, err := core.RunFW(core.FWConfig{N: 18432, B: 256, L1: 2, Mode: core.Hybrid, Faults: inj})
	if err != nil {
		return nil, err
	}
	b.Set("fw.l1_2.iter_s", fw2.Seconds/float64(len(fw2.IterationSeconds)))

	// Model extensions (Section 7 scope): one hybrid run per kernel.
	mm, err := core.RunMM(core.MMConfig{N: 6144, BF: -1, Mode: core.Hybrid})
	if err != nil {
		return nil, err
	}
	b.Set("mm.hybrid.seconds", mm.Seconds)
	b.Set("mm.hybrid.gflops", mm.GFLOPS)
	ch, err := core.RunCholesky(core.CholConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: core.Hybrid})
	if err != nil {
		return nil, err
	}
	b.Set("chol.hybrid.seconds", ch.Seconds)
	b.Set("chol.hybrid.gflops", ch.GFLOPS)
	qr, err := core.RunQR(core.QRConfig{N: 30000, B: 3000, BF: -1, Mode: core.Hybrid})
	if err != nil {
		return nil, err
	}
	b.Set("qr.hybrid.seconds", qr.Seconds)
	b.Set("qr.hybrid.gflops", qr.GFLOPS)
	cg, err := core.RunCG(core.CGConfig{N: 1024, RowsFPGA: -1, Mode: core.Hybrid, Seed: 1})
	if err != nil {
		return nil, err
	}
	b.Set("cg.hybrid.seconds", cg.Seconds)
	b.Set("cg.hybrid.gflops", cg.GFLOPS)

	// Panel-routine latencies of Table 1 (pure model, no simulation).
	t1, err := Table1()
	if err != nil {
		return nil, err
	}
	for _, row := range t1.Rows {
		var v float64
		if _, err := fmt.Sscanf(row[2], "%f", &v); err != nil {
			return nil, fmt.Errorf("exper: bad table1 latency %q: %w", row[2], err)
		}
		b.Set("table1."+row[1]+".latency_s", v)
	}
	return b, nil
}
