package model

import "fmt"

// Params are the raw system parameters of Section 4.1 for one kernel.
type Params struct {
	// P is the node count.
	P int
	// Of is the FPGA design's floating-point operations per cycle.
	Of float64
	// Ff is the FPGA design clock in Hz.
	Ff float64
	// OpFp is the processor's sustained FLOP/s for this kernel.
	OpFp float64
	// Bd is the FPGA<->DRAM streaming bandwidth in bytes/s.
	Bd float64
	// Bn is the inter-node network bandwidth in bytes/s.
	Bn float64
	// Bw is the word width in bytes (8 for double precision).
	Bw float64
}

// Validate checks that all parameters are physical.
func (p Params) Validate() error {
	switch {
	case p.P < 1:
		return fmt.Errorf("model: p = %d < 1", p.P)
	case p.Of <= 0 || p.Ff <= 0:
		return fmt.Errorf("model: FPGA power Of=%g Ff=%g not positive", p.Of, p.Ff)
	case p.OpFp <= 0:
		return fmt.Errorf("model: processor power OpFp=%g not positive", p.OpFp)
	case p.Bd <= 0 || p.Bn <= 0:
		return fmt.Errorf("model: bandwidth Bd=%g Bn=%g not positive", p.Bd, p.Bn)
	case p.Bw <= 0:
		return fmt.Errorf("model: word width %g not positive", p.Bw)
	}
	return nil
}

// FPGAPower returns Of·Ff in FLOP/s.
func (p Params) FPGAPower() float64 { return p.Of * p.Ff }

// Split solves Equation (1): divide n floating-point operations between
// the processor and the FPGA so that Tp + Df/Bd = Tf, where Df is the
// FPGA's input volume in bytes. It returns the operation counts
// (np, nf), clamped to [0, n] when the transfer overhead exceeds the
// whole budget.
func (p Params) Split(n, df float64) (np, nf float64) {
	return p.SplitComm(n, df, 0)
}

// SplitComm solves Equation (2): like Split but also charging Dp bytes
// of network communication to the processor (whose computation cannot
// overlap communication, Section 4.3):
//
//	Tp + Df/Bd + Dp/Bn = Tf
//	np/OpFp + df/Bd + dp/Bn = nf/(Of·Ff),  np + nf = n.
func (p Params) SplitComm(n, df, dp float64) (np, nf float64) {
	if n < 0 || df < 0 || dp < 0 {
		panic(fmt.Sprintf("model: negative workload n=%g df=%g dp=%g", n, df, dp))
	}
	overhead := df/p.Bd + dp/p.Bn
	f := p.FPGAPower()
	// np/OpFp + overhead = (n-np)/f  =>  np (1/OpFp + 1/f) = n/f - overhead.
	np = (n/f - overhead) / (1/p.OpFp + 1/f)
	if np < 0 {
		np = 0
	}
	if np > n {
		np = n
	}
	return np, n - np
}

// BalanceWholeTasks divides total whole tasks (each costing tp seconds
// on the processor and tf on the FPGA, with perOpOverhead seconds of
// unoverlappable processor-side transfer per FPGA task) so both finish
// together: l1·tp + overhead·l2 ≈ l2·tf. Tasks with heavy internal
// dependencies are assigned whole (Section 4.2, last paragraph).
func BalanceWholeTasks(total int, tp, tf, perOpOverhead float64) (l1, l2 int) {
	if total <= 0 {
		return 0, 0
	}
	if tf <= 0 {
		return 0, total // free FPGA takes everything
	}
	if tp <= 0 {
		return total, 0 // free CPU takes everything
	}
	// Continuous solution of l1·tp = l2·(tf - overhead).
	eff := tf - perOpOverhead
	if eff <= 0 {
		// The FPGA's own transfers dominate: give it everything only
		// if it is still faster than the CPU per task.
		if tf+perOpOverhead < tp {
			return 0, total
		}
		return total, 0
	}
	ratio := eff / (tp + eff) // fraction of tasks to the CPU
	l1 = int(ratio*float64(total) + 0.5)
	if l1 > total {
		l1 = total
	}
	return l1, total - l1
}

// Prediction is the output of the Section 4.5 performance predictor.
type Prediction struct {
	// Ttp is the total processor-side critical-path time.
	Ttp float64
	// Ttf is the total FPGA-side time.
	Ttf float64
	// Seconds is max(Ttp, Ttf), the predicted latency.
	Seconds float64
	// Flops is the application's useful floating-point work.
	Flops float64
	// GFLOPS is Flops / Seconds / 1e9.
	GFLOPS float64
}

func predict(ttp, ttf, flops float64) Prediction {
	s := ttp
	if ttf > s {
		s = ttf
	}
	return Prediction{Ttp: ttp, Ttf: ttf, Seconds: s, Flops: flops, GFLOPS: flops / s / 1e9}
}
