package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"
)

// NewMux builds the observability HTTP mux over the registry:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   stable-JSON snapshot (same series, same order)
//	/healthz        liveness probe ("ok")
//	/statusz        JSON process status (uptime, runtime, snapshot)
//	/debug/pprof/   the standard net/http/pprof profiling handlers
//
// This is the exact surface a long-running server (codesignd) mounts;
// cmd/sweep -obs serves it for the duration of a sweep.
func NewMux(r *Registry) *http.ServeMux {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Status{
			PID:           os.Getpid(),
			Go:            runtime.Version(),
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			NumGoroutine:  runtime.NumGoroutine(),
			UptimeSeconds: time.Since(start).Seconds(),
			Metrics:       r.Snapshot(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Status is the /statusz document: process identity, runtime state and
// the full metrics snapshot in one scrape.
type Status struct {
	// PID is the process id.
	PID int `json:"pid"`
	// Go is the runtime version the binary was built with.
	Go string `json:"go"`
	// GOMAXPROCS is the scheduler's processor limit.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumGoroutine is the live goroutine count at scrape time.
	NumGoroutine int `json:"goroutines"`
	// UptimeSeconds is time since the mux was built.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Metrics is the registry snapshot.
	Metrics []Sample `json:"metrics"`
}

// Server is a running observability HTTP server; Close shuts it down.
type Server struct {
	// Addr is the bound listen address (with the real port when the
	// caller asked for ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "localhost:9090", or "127.0.0.1:0" for an
// ephemeral port) and serves the observability mux in a background
// goroutine until Close. The returned Server's Addr carries the
// resolved address, so callers can print or scrape it.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(r)}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	return s.srv.Close()
}
