package cpu

import (
	"math"
	"testing"
)

func TestOpteronRates(t *testing.T) {
	p := Opteron22()
	if p.Rate(DGEMM) != 3.9e9 {
		t.Fatalf("dgemm rate = %g", p.Rate(DGEMM))
	}
	if p.Rate(FWKernel) != 190e6 {
		t.Fatalf("fw rate = %g", p.Rate(FWKernel))
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	// Paper Table 1 at b = 3000: dgetrf 4.9 s, dtrsm 7.1 s, dtrsm 7.1 s.
	rows := Table1(Opteron22(), 3000)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	wants := []struct {
		op, routine string
		lat         float64
	}{{"opLU", "dgetrf", 4.9}, {"opL", "dtrsm", 7.1}, {"opU", "dtrsm", 7.1}}
	for i, w := range wants {
		r := rows[i]
		if r.Operation != w.op || r.Routine != w.routine {
			t.Fatalf("row %d = %+v", i, r)
		}
		if math.Abs(r.LatencyS-w.lat)/w.lat > 1e-9 {
			t.Fatalf("row %d latency = %v, want %v", i, r.LatencyS, w.lat)
		}
	}
}

func TestTable1ScalesCubically(t *testing.T) {
	p := Opteron22()
	r1 := Table1(p, 1000)
	r2 := Table1(p, 2000)
	for i := range r1 {
		ratio := r2[i].LatencyS / r1[i].LatencyS
		if math.Abs(ratio-8) > 1e-9 {
			t.Fatalf("row %d latency ratio = %v, want 8", i, ratio)
		}
	}
}

func TestTimeLinearInFlops(t *testing.T) {
	p := Opteron22()
	if got := p.Time(DGEMM, 3.9e9); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Time = %v, want 1", got)
	}
	if got := p.Time(DGEMM, 7.8e9); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Time = %v, want 2", got)
	}
}

func TestUnknownRoutinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Opteron22().Rate(Routine("fft"))
}

func TestNegativeFlopsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Opteron22().Time(DGEMM, -1)
}

func TestFlopFormulas(t *testing.T) {
	if DgetrfFlops(3) != 18 {
		t.Fatalf("DgetrfFlops(3) = %v", DgetrfFlops(3))
	}
	if DtrsmFlops(3) != 27 {
		t.Fatalf("DtrsmFlops(3) = %v", DtrsmFlops(3))
	}
	if GemmFlops(2, 3, 4) != 48 {
		t.Fatalf("GemmFlops = %v", GemmFlops(2, 3, 4))
	}
	if FWBlockFlops(3) != 54 {
		t.Fatalf("FWBlockFlops = %v", FWBlockFlops(3))
	}
	if SubtractFlops(3) != 9 {
		t.Fatalf("SubtractFlops = %v", SubtractFlops(3))
	}
}

func TestPaperPartitionRatioFW(t *testing.T) {
	// Sanity check of Section 6.1: FPGA at k=8, 120 MHz does a block op
	// in 2b^3/(k*Ff); the CPU in 2b^3/190e6. Ratio ~ 5.05, the paper's
	// l1:l2 = 1:5.
	p := Opteron22()
	b := 256.0
	tf := 2 * b * b * b / (8 * 120e6)
	tp := p.Time(FWKernel, FWBlockFlops(256))
	ratio := tp / tf
	if ratio < 4.5 || ratio > 5.6 {
		t.Fatalf("Tp/Tf = %v, want ~5", ratio)
	}
}

func TestCalibrateGEMM(t *testing.T) {
	res := CalibrateGEMM(64)
	if res.Rate <= 0 || res.Seconds <= 0 {
		t.Fatalf("calibration = %+v", res)
	}
	if res.Flops != GemmFlops(64, 64, 64) {
		t.Fatalf("flops = %v", res.Flops)
	}
}

func TestCalibrateFW(t *testing.T) {
	res := CalibrateFW(32)
	if res.Rate <= 0 {
		t.Fatalf("calibration = %+v", res)
	}
}

func TestCalibratedProcessorComplete(t *testing.T) {
	p := Calibrated(48, 32)
	for _, r := range []Routine{DGEMM, DGETRF, DTRSM, FWKernel, Subtract} {
		if p.Rate(r) <= 0 {
			t.Fatalf("calibrated rate for %s missing", r)
		}
	}
}
