package mpi

import (
	"testing"

	"codesign/internal/sim"
)

func TestIsendOverlapsCompute(t *testing.T) {
	e, w := worldOf(t, 2, 100)
	var computeDone, allDone float64
	spawnRanks(e, w, func(r *Rank, p *sim.Proc) {
		if r.ID() == 0 {
			rq := r.Isend(1, 0, 200, "bulk") // 2 s of wire time
			p.Wait(1.5)                      // compute concurrently
			computeDone = p.Now()
			rq.Wait(p)
			allDone = p.Now()
		} else {
			r.Recv(0, 0)
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if computeDone != 1.5 {
		t.Fatalf("compute finished at %v, want 1.5 (overlapped)", computeDone)
	}
	if allDone != 2 {
		t.Fatalf("send completed at %v, want 2", allDone)
	}
}

func TestIrecvDeliversPayload(t *testing.T) {
	e, w := worldOf(t, 2, 1000)
	var got Message
	spawnRanks(e, w, func(r *Rank, p *sim.Proc) {
		if r.ID() == 0 {
			p.Wait(3)
			r.Send(1, 5, 100, "late")
		} else {
			rq := r.Irecv(0, 5)
			if rq.Test() {
				t.Error("Irecv completed before any send")
			}
			got = rq.Wait(p)
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if got.Payload != "late" || got.Src != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestRequestTest(t *testing.T) {
	e, w := worldOf(t, 2, 1e9)
	spawnRanks(e, w, func(r *Rank, p *sim.Proc) {
		if r.ID() == 0 {
			rq := r.Isend(1, 0, 8, 1)
			p.Wait(1)
			if !rq.Test() {
				t.Error("send should have completed after 1s")
			}
		} else {
			r.Recv(0, 0)
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAll(t *testing.T) {
	e, w := worldOf(t, 3, 100)
	spawnRanks(e, w, func(r *Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r1 := r.Isend(1, 0, 100, "a")
			r2 := r.Isend(2, 0, 100, "b")
			WaitAll(p, r1, r2)
			if p.Now() < 1 {
				t.Errorf("WaitAll returned at %v before wire time", p.Now())
			}
		default:
			r.Recv(0, 0)
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	const p = 4
	e, w := worldOf(t, p, 1e9)
	got := make([]any, p)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		var payloads []any
		if r.ID() == 2 {
			payloads = []any{"p0", "p1", "p2", "p3"}
		}
		got[r.ID()] = r.Scatter(2, 1, 8, payloads)
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != []any{"p0", "p1", "p2", "p3"}[i] {
			t.Fatalf("scatter got %v", got)
		}
	}
}

func TestScatterBadLenPanics(t *testing.T) {
	e, w := worldOf(t, 2, 1e9)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		if r.ID() == 0 {
			r.Scatter(0, 1, 8, []any{"only-one"})
		} else {
			r.Recv(0, 1)
		}
	})
	if err := e.Run(0); err == nil {
		t.Fatal("expected panic propagation")
	}
}

func TestAllgather(t *testing.T) {
	const p = 4
	e, w := worldOf(t, p, 1e9)
	results := make([][]any, p)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		results[r.ID()] = r.Allgather(2, 8, r.ID()*100)
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for rank, res := range results {
		for i, v := range res {
			if v != i*100 {
				t.Fatalf("rank %d allgather = %v", rank, res)
			}
		}
	}
}

func TestExScan(t *testing.T) {
	const p = 5
	e, w := worldOf(t, p, 1e9)
	got := make([]float64, p)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		got[r.ID()] = r.ExScan(3, float64(r.ID()+1)) // values 1..5
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3, 6, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("exscan = %v, want %v", got, want)
		}
	}
}

func TestAlltoall(t *testing.T) {
	const p = 4
	e, w := worldOf(t, p, 1e9)
	results := make([][]any, p)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		payloads := make([]any, p)
		for j := 0; j < p; j++ {
			payloads[j] = r.ID()*10 + j // "from i to j"
		}
		results[r.ID()] = r.Alltoall(4, 8, payloads)
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for j, res := range results {
		for i, v := range res {
			if v != i*10+j {
				t.Fatalf("rank %d alltoall[%d] = %v, want %d", j, i, v, i*10+j)
			}
		}
	}
}

func TestAlltoallBadLenPanics(t *testing.T) {
	e, w := worldOf(t, 3, 1e9)
	spawnRanks(e, w, func(r *Rank, pr *sim.Proc) {
		if r.ID() == 0 {
			r.Alltoall(4, 8, []any{1})
			return
		}
	})
	if err := e.Run(0); err == nil {
		t.Fatal("expected panic propagation")
	}
}
