// Package fpga models the FPGA accelerator of a node — the Of·Ff side
// of the Section 4.1 system parameters: the device's resource budget, a
// pseudo place-and-route step (Place) that decides how many processing
// elements fit and what clock frequency the placed design achieves, the
// two PE-array designs the paper instantiates (the matrix multiplier of
// Zhuo-Prasanna [21] and the Floyd-Warshall array of Bondhugula et al.
// [18]) with their published cycle-count models, bit-exact functional
// kernels built on internal/fpmath, and the control/status registers
// the processor uses for coordination (Section 4.4).
package fpga
