// All-pairs shortest paths on the simulated reconfigurable cluster:
// run the distributed blocked Floyd-Warshall design functionally on a
// random directed graph, check the distances against the sequential
// reference bit for bit, and compare the three design variants.
package main

import (
	"fmt"
	"log"

	"codesign"
)

func main() {
	// A 288-vertex graph in 48x48 blocks (one block column per node).
	fmt.Println("Distributed blocked Floyd-Warshall (n=288, b=48, 6 nodes):")
	for _, mode := range []codesign.Mode{codesign.Hybrid, codesign.ProcessorOnly, codesign.FPGAOnly} {
		res, err := codesign.RunFW(codesign.FWConfig{
			N: 288, B: 48, PEs: 4, L1: -1,
			Mode:       mode,
			Functional: true,
			Seed:       7,
			Density:    0.25,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "bit-exact"
		if res.MaxResidual != 0 {
			status = fmt.Sprintf("MISMATCH %.3g", res.MaxResidual)
		}
		fmt.Printf("  %-15s l1=%d l2=%d  simulated %7.3f s  result %s\n",
			mode, res.L1, res.L2, res.Seconds, status)
	}

	// Paper-scale timing: the whole-task split l1:l2 = 2:10 that
	// Equation (6) derives for the XD1.
	res, err := codesign.RunFW(codesign.FWConfig{
		N: 18432, B: 256, L1: -1, Mode: codesign.Hybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPaper scale (n=18432, b=256): l1=%d l2=%d, %.2f GFLOPS (paper: 6.6)\n",
		res.L1, res.L2, res.GFLOPS)
	fmt.Printf("achieved %.0f%% of the model's prediction (paper: ~96%%)\n",
		100*res.GFLOPS/res.Prediction.GFLOPS)
}
