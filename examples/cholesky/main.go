// The extension the paper's conclusion promises: apply the design model
// to a broader application — block Cholesky factorization, the third
// routine of the ScaLAPACK set the paper builds on. The trailing
// symmetric update partitions exactly like LU's opMM (Equation 4 gives
// the same bf=1280), the panel adds a square-root unit to the FPGA
// datapath (see internal/fpmath.Sqrt — bit-exact against the host), and
// the functional run factors a real SPD matrix.
package main

import (
	"fmt"
	"log"

	"codesign"
)

func main() {
	fmt.Println("Hybrid block Cholesky on a simulated Cray XD1 chassis")

	// Functional small run: factor a real SPD matrix and compare the
	// lower triangle against the sequential blocked reference.
	f, err := codesign.RunCholesky(codesign.CholConfig{
		N: 200, B: 40, PEs: 4, BF: -1, L: -1,
		Mode: codesign.Hybrid, Functional: true, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  functional n=200: residual vs reference %.3g\n", f.MaxResidual)

	// Paper-scale timing with the model-derived partition.
	for _, mode := range []codesign.Mode{codesign.Hybrid, codesign.ProcessorOnly, codesign.FPGAOnly} {
		r, err := codesign.RunCholesky(codesign.CholConfig{
			N: 30000, B: 3000, BF: -1, L: -1, Mode: mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s bf=%d l=%d  %8.1f s  %6.2f GFLOPS\n",
			mode, r.BF, r.L, r.Seconds, r.GFLOPS)
	}

	// Same machine, same block size: Cholesky's trailing update is the
	// same stripe computation as LU's opMM, so Equation (4) hands the
	// FPGA the same 1280 rows — one partition analysis serves both.
	lu, err := codesign.RunLU(codesign.LUConfig{
		N: 30000, B: 3000, BF: -1, L: -1, Mode: codesign.Hybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	ch, err := codesign.RunCholesky(codesign.CholConfig{
		N: 30000, B: 3000, BF: -1, L: -1, Mode: codesign.Hybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  LU bf=%d vs Cholesky bf=%d; Cholesky finishes in %.0f%% of LU's time (half the flops)\n",
		lu.BF, ch.BF, 100*ch.Seconds/lu.Seconds)
}
