package fault

import (
	"fmt"

	"codesign/internal/obs"
)

// metrics is the injector's optional observability sink. When nil (the
// default) Dilate performs only a nil check; when installed by Publish
// it keeps one live degradation gauge per scheduled (node, class) plus
// a dilation counter, all updated with atomic stores so concurrent
// /metrics scrapes never race the simulation.
type metrics struct {
	dilations   *obs.Counter
	degradation []*obs.Gauge // indexed like segs; nil where nothing is scheduled
}

// Publish registers the injector's fault_* metric family on r and
// turns on live updates from Dilate:
//
//	fault_events_total                          expanded schedule size
//	fault_node_kills                            scheduled kill events
//	fault_dilations_total                       charges routed through Dilate
//	fault_degradation_ratio{node="N",class="C"} nominal/dilated ratio of the
//	                                            most recent charge (1 = full speed)
//
// Ratio gauges exist only for (node, class) pairs with scheduled
// degradation, so an undisturbed subsystem never clutters /metrics.
// Call Publish once, before the run starts.
func (in *Injector) Publish(r *obs.Registry) {
	kills := 0
	for _, e := range in.events {
		if e.Kind == NodeKill {
			kills++
		}
	}
	r.Gauge("fault_events_total", "injected fault events in the expanded schedule").
		Set(float64(len(in.events)))
	r.Gauge("fault_node_kills", "scheduled node-kill events").Set(float64(kills))
	m := &metrics{
		dilations:   r.Counter("fault_dilations_total", "nominal charges routed through the injector"),
		degradation: make([]*obs.Gauge, len(in.segs)),
	}
	for node := 0; node < in.nodes; node++ {
		for c := Class(0); c < numClasses; c++ {
			k := node*int(numClasses) + int(c)
			if len(in.segs[k]) == 0 {
				continue
			}
			g := r.Gauge(
				fmt.Sprintf(`fault_degradation_ratio{node="%d",class="%s"}`, node, c),
				"nominal/dilated duration ratio of the latest charge (1 = nominal)")
			g.Set(1)
			m.degradation[k] = g
		}
	}
	in.m = m
}
