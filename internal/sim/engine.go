package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Engine owns the virtual clock and the event queue.
//
// Scheduling is cooperative and single-threaded in effect: although
// every process runs on its own goroutine (so its body can block in
// ordinary Go code), exactly one goroutine — the "baton holder" — is
// ever runnable. The holder pops events and either executes scheduler
// callbacks inline or hands the baton to the next process with a single
// buffered-channel send. A process that blocks and immediately becomes
// the next runnable process resumes itself without any goroutine
// switch at all. See DESIGN.md "Engine internals".
type Engine struct {
	now      float64
	seq      int64
	queue    eventQueue
	procs    []*Proc
	nblocked int
	failure  error
	running  bool
	until    float64
	horizon  bool
	aborting bool

	// done is signaled (buffered, exactly once per Run) by whichever
	// baton holder finds nothing left to run: queue empty, horizon
	// reached, or a process panic.
	done chan struct{}
	// abortAck serializes the teardown handshake of abortBlocked.
	abortAck chan struct{}

	// Trace, if non-nil, receives one call per interesting engine
	// action (process resume, wait, block). Useful for debugging and
	// for the timeline exporter. It remains the legacy adapter onto
	// the raw event stream; structured consumers register an Observer
	// via Observe instead. Both see identical events in the same
	// order.
	Trace func(t float64, proc, action string)

	observers []Observer

	// ctr, when non-nil, receives engine-loop event counts (see
	// Counters). Nil by default: every counting site is gated on a nil
	// check so an unobserved engine pays nothing.
	ctr *Counters

	// waitReasons caches the formatted "wait %.3gs" / "wait until
	// %.3g" block-reason strings by duration bits, so a traced run
	// pays one fmt.Sprintf per distinct duration instead of one per
	// event. Untraced runs never touch it. waitFront is a
	// direct-mapped cache in front of the map: simulated charges
	// repeat the same handful of durations (stripe times, DMA rates),
	// so most lookups hit here without hashing a map key.
	waitReasons map[waitKey]*parkReason
	waitFront   [waitFrontSize]waitFrontEntry
}

// waitFrontSize is the direct-mapped wait-reason cache size (a power
// of two so the hash reduces with a shift).
const waitFrontSize = 32

// waitFrontEntry is one slot of the direct-mapped wait-reason cache.
type waitFrontEntry struct {
	key waitKey
	why *parkReason
}

// New returns an empty engine with the clock at 0. The engine
// inherits the process-wide counter sink, if InstallCounters set one.
func New() *Engine {
	return &Engine{
		done:     make(chan struct{}, 1),
		abortAck: make(chan struct{}, 1),
		ctr:      defaultCounters.Load(),
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// event is one queue entry: a process resume (p != nil) or a
// scheduler-context callback (fn != nil). Events order by (t, seq);
// seq is unique per engine, so the order is a strict total order and
// any heap yields the identical pop sequence.
type event struct {
	t   float64
	seq int64
	p   *Proc
	fn  func()
}

// eventQueue is a binary min-heap of events ordered by (t, seq),
// implemented directly on a slice: pushes and pops stay free of the
// interface boxing container/heap would charge per operation, and
// popped slots are zeroed so the backing array cannot retain process
// pointers or callback closures (a real leak on long runs otherwise).
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

func (q *eventQueue) less(i, j int) bool {
	if q.ev[i].t != q.ev[j].t {
		return q.ev[i].t < q.ev[j].t
	}
	return q.ev[i].seq < q.ev[j].seq
}

func (q *eventQueue) push(ev event) {
	q.ev = append(q.ev, ev)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the minimum event, clearing the vacated slot.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{} // do not retain p / fn in the backing array
	q.ev = q.ev[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && q.less(r, l) {
			child = r
		}
		if !q.less(child, i) {
			break
		}
		q.ev[i], q.ev[child] = q.ev[child], q.ev[i]
		i = child
	}
	return top
}

// reset empties the queue, zeroing every slot so the backing array
// retains no references, and keeps the capacity for reuse.
func (q *eventQueue) reset() {
	for i := range q.ev {
		q.ev[i] = event{}
	}
	q.ev = q.ev[:0]
}

// queuePool recycles event-queue backing arrays across engines: a
// design-space sweep runs hundreds of short simulations, and the grown
// queue of a finished run seeds the next engine's.
var queuePool = sync.Pool{New: func() any { return make([]event, 0, 64) }}

func (e *Engine) schedule(t float64, p *Proc, fn func()) {
	if t < e.now {
		t = e.now
	}
	if e.queue.ev == nil {
		e.queue.ev = queuePool.Get().([]event)
	}
	e.seq++
	e.queue.push(event{t: t, seq: e.seq, p: p, fn: fn})
}

// scheduleProc enqueues a resume of p at time t without allocating.
func (e *Engine) scheduleProc(t float64, p *Proc) { e.schedule(t, p, nil) }

// At schedules fn to run at absolute virtual time t (or now, if t is in
// the past). fn runs in scheduler context and must not block.
func (e *Engine) At(t float64, fn func()) { e.schedule(t, nil, fn) }

// abortError unwinds a process goroutine when the engine shuts down.
type abortError struct{}

// Park-reason kinds; see Proc.park.
const (
	parkOn    = iota // parked on a primitive carrying its own reason
	parkWait         // Wait(dt): "wait %.3gs"
	parkUntil        // WaitUntil(t): "wait until %.3g"
)

// parkReason is a cached pair of block-reason strings: the bare reason
// (deadlock reports) and its "block: "-prefixed trace action. The
// primitives (Resource, Mailbox, Signal, Barrier) build one at
// construction; wait reasons are interned per duration in the engine's
// cache. Either way the hot path never formats strings.
type parkReason struct {
	reason string
	action string
}

func newParkReason(reason string) *parkReason {
	return &parkReason{reason: reason, action: "block: " + reason}
}

// waitKey interns one wait reason: the park kind plus the duration's
// bit pattern.
type waitKey struct {
	kind int
	bits uint64
}

// waitReasonCacheLimit bounds the interning cache; a simulation with
// more distinct wait durations than this falls back to formatting per
// event (correct, just slower).
const waitReasonCacheLimit = 1 << 14

// waitReason returns the cached (or newly formatted) reason pair for a
// timed wait. Only called on traced runs.
func (e *Engine) waitReason(kind int, d float64) *parkReason {
	key := waitKey{kind: kind, bits: math.Float64bits(d)}
	slot := &e.waitFront[(key.bits^uint64(kind))*0x9E3779B97F4A7C15>>59&(waitFrontSize-1)]
	if slot.why != nil && slot.key == key {
		return slot.why
	}
	r, ok := e.waitReasons[key]
	if !ok {
		r = newParkReason(formatWaitReason(kind, d))
		if e.waitReasons == nil {
			e.waitReasons = make(map[waitKey]*parkReason)
		}
		if len(e.waitReasons) < waitReasonCacheLimit {
			e.waitReasons[key] = r
		}
	}
	*slot = waitFrontEntry{key: key, why: r}
	return r
}

func formatWaitReason(kind int, d float64) string {
	if kind == parkUntil {
		return fmt.Sprintf("wait until %.3g", d)
	}
	return fmt.Sprintf("wait %.3gs", d)
}

// Proc is a simulated process. All Proc methods must be called from the
// process's own function body (they yield to the scheduler).
type Proc struct {
	eng     *Engine
	name    string
	resume  chan bool // buffered(1): true = run, false = abort
	done    bool
	aborted bool
	blocked bool
	pv      any    // recovered panic value, if any
	phase   string // telemetry phase annotation, see SetPhase

	// Why the process is parked, recorded without formatting:
	// parkKind selects the reason family, parkDur the wait duration,
	// parkWhy the primitive's preformatted reason (parkOn only).
	parkKind int
	parkDur  float64
	parkWhy  *parkReason

	// Fused charge-sequence state (see chain.go): while chainLive, the
	// process is parked once across several charges and the engine
	// advances the boundaries in scheduler context. The buffer is
	// inline so fusing allocates nothing.
	chainBuf       [chainCap]Charge
	chainLen       int
	chainIdx       int
	chainLive      bool
	chainAcquiring bool
	chainRes       *Resource
	chainDev       Device
	chainResName   string
	chainStart     float64
	chainSince     float64
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// reason formats why the process is blocked (deadlock reports only;
// the trace path uses the cached parkReason instead).
func (p *Proc) reason() string {
	if p.parkKind == parkOn {
		if p.parkWhy != nil {
			return p.parkWhy.reason
		}
		return "blocked"
	}
	return formatWaitReason(p.parkKind, p.parkDur)
}

// Go spawns a process that starts at the current virtual time. The
// function fn runs in its own goroutine but only while it holds the
// scheduler's baton; it advances time via p.Wait and friends.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.spawn(e.now, name, fn)
}

// GoAt spawns a process that starts at absolute virtual time t.
func (e *Engine) GoAt(t float64, name string, fn func(p *Proc)) *Proc {
	return e.spawn(t, name, fn)
}

func (e *Engine) spawn(t float64, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan bool, 1)}
	e.procs = append(e.procs, p)
	if e.ctr != nil {
		e.ctr.Spawns.Add(1)
	}
	go func() {
		run := <-p.resume
		defer func() {
			r := recover()
			if _, ok := r.(abortError); ok {
				r = nil
			}
			p.pv = r
			p.done = true
			e.procExit(p)
		}()
		if run {
			fn(p)
		}
	}()
	e.scheduleProc(t, p)
	return p
}

// procExit runs on a process goroutine as its final act: it either
// acknowledges an engine teardown, stops the run on a panic, or passes
// the baton onward.
func (e *Engine) procExit(p *Proc) {
	if e.aborting {
		e.abortAck <- struct{}{}
		return
	}
	if p.pv != nil {
		if e.failure == nil {
			e.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, p.pv)
		}
		e.done <- struct{}{}
		return
	}
	e.dispatch(nil)
}

// dispatch advances the event loop while holding the baton. It pops
// events, runs scheduler callbacks inline, and on reaching a process
// resume either reports it as self (the caller parks and resumes in
// one step, no goroutine switch) or wakes the target and gives the
// baton away. When nothing remains runnable — queue empty, horizon
// reached, or failure — it signals Run and returns false.
func (e *Engine) dispatch(self *Proc) (resumedSelf bool) {
	for {
		if e.queue.len() == 0 {
			e.done <- struct{}{}
			return false
		}
		if e.until > 0 && e.queue.ev[0].t > e.until {
			e.now = e.until
			e.horizon = true
			e.done <- struct{}{}
			return false
		}
		ev := e.queue.pop()
		e.now = ev.t
		if e.ctr != nil {
			e.ctr.EventsPopped.Add(1)
		}
		if ev.p == nil {
			if e.ctr != nil {
				e.ctr.Callbacks.Add(1)
			}
			ev.fn() // scheduler-context callback
			continue
		}
		p := ev.p
		if p.done {
			continue
		}
		if p.chainLive && e.chainStep(p) {
			continue // intermediate fused-sequence boundary, handled inline
		}
		if p.blocked {
			p.blocked = false
			e.nblocked--
		}
		e.emitEvent(e.now, p.name, "resume")
		if p == self {
			if e.ctr != nil {
				e.ctr.SelfResumes.Add(1)
			}
			return true
		}
		if e.ctr != nil {
			e.ctr.Handoffs.Add(1)
		}
		p.resume <- true
		return false
	}
}

// park yields the baton back to the scheduler; the caller must have
// already arranged for a future resume. The reason (recorded without
// formatting for deadlock reports, and as a cached string for traces)
// is given by kind/why/dur; see parkOn and friends.
func (p *Proc) park(kind int, why *parkReason, dur float64) {
	if p.aborted {
		panic(abortError{})
	}
	e := p.eng
	p.blocked = true
	e.nblocked++
	p.parkKind, p.parkWhy, p.parkDur = kind, why, dur
	if e.Trace != nil || len(e.observers) > 0 {
		if why == nil {
			why = e.waitReason(kind, dur)
		}
		e.emitEvent(e.now, p.name, why.action)
	}
	if e.dispatch(p) {
		return // next runnable process is this one: no switch needed
	}
	if run := <-p.resume; !run {
		p.aborted = true
		panic(abortError{})
	}
}

// Wait advances the process's local view of time by dt seconds (dt < 0
// is treated as 0).
func (p *Proc) Wait(dt float64) {
	if dt < 0 {
		dt = 0
	}
	e := p.eng
	e.scheduleProc(e.now+dt, p)
	p.park(parkWait, nil, dt)
}

// WaitUntil advances to absolute virtual time t (no-op if t <= now).
func (p *Proc) WaitUntil(t float64) {
	e := p.eng
	e.scheduleProc(t, p)
	p.park(parkUntil, nil, t)
}

// Deadlock describes processes blocked forever at the end of a run.
type Deadlock struct {
	// Time is the virtual time the simulation stalled at.
	Time float64
	// Stuck maps process names to the reason each was blocked. When
	// several blocked processes share a name, the reason of the most
	// recently spawned one wins, deterministically (processes are
	// scanned in spawn order).
	Stuck map[string]string
}

// Error renders the report with process names in sorted order, so the
// message is stable across runs for tests and CI diffs.
func (d *Deadlock) Error() string {
	names := make([]string, 0, len(d.Stuck))
	for n := range d.Stuck {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("sim: deadlock at t=%.6g: %d process(es) blocked:", d.Time, len(names))
	for _, n := range names {
		s += fmt.Sprintf("\n  %s: %s", n, d.Stuck[n])
	}
	return s
}

// Run drives the simulation until the event queue is empty, a process
// panics, or (if until > 0) virtual time reaches until. It returns a
// *Deadlock error if processes remain blocked with no pending events,
// or the first process panic. Run aborts and unwinds any still-blocked
// processes before returning, so goroutines do not leak.
func (e *Engine) Run(until float64) error {
	if e.running {
		return fmt.Errorf("sim: Run is not reentrant")
	}
	e.running = true
	defer func() { e.running = false }()

	e.until = until
	e.horizon = false
	e.dispatch(nil) // hold the baton until the first process resume
	<-e.done

	var err error
	if e.failure != nil {
		err = e.failure
	} else if !e.horizon && e.nblocked > 0 {
		d := &Deadlock{Time: e.now, Stuck: make(map[string]string, e.nblocked)}
		for _, p := range e.procs {
			if p.blocked {
				d.Stuck[p.name] = p.reason()
			}
		}
		err = d
	}
	e.abortBlocked()
	return err
}

// abortBlocked unwinds every live process — parked or never started —
// so its goroutine exits, then recycles the event queue's scratch.
func (e *Engine) abortBlocked() {
	e.aborting = true
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.blocked = false
		p.resume <- false
		<-e.abortAck
	}
	e.aborting = false
	e.nblocked = 0
	// Drop events referencing finished procs and return the cleared
	// backing array to the pool for the next engine.
	e.queue.reset()
	if ev := e.queue.ev; ev != nil {
		e.queue.ev = nil
		queuePool.Put(ev)
		if e.ctr != nil {
			e.ctr.QueueRecycles.Add(1)
		}
	}
}
