package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramLeSemantics(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	// A value exactly on a bound belongs to that bound's bucket (the
	// Prometheus "le" convention), values above every bound to +Inf.
	for _, v := range []float64{0.5, 1, 10, 99, 100, 1000} {
		h.Observe(v)
	}
	want := []int64{2, 1, 2, 1} // le=1: {0.5, 1}; le=10: {10}; le=100: {99, 100}; +Inf: {1000}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 0.5+1+10+99+100+1000 {
		t.Errorf("sum = %g", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	// One observation per bucket of 1..10: the rank interpolates
	// linearly, so quantiles land exactly on the bucket geometry.
	h := newHistogram(LinearBuckets(1, 1, 10))
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 0}, {0.1, 1}, {0.5, 5}, {0.95, 9.5}, {1, 10},
		{-3, 0}, {7, 10}, // clamped
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}

	// A rank interpolates within its bucket: 3 of 4 observations in
	// [0, 1], so p50 sits 2/3 of the way through that bucket.
	h2 := newHistogram([]float64{1, 2})
	for _, v := range []float64{0.1, 0.2, 0.3, 1.5} {
		h2.Observe(v)
	}
	if got := h2.Quantile(0.5); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("interpolated p50 = %g, want 2/3", got)
	}
	// Mass in the +Inf bucket cannot be resolved past the last finite
	// bound.
	h3 := newHistogram([]float64{1, 2})
	h3.Observe(100)
	if got := h3.Quantile(0.5); got != 2 {
		t.Errorf("+Inf-bucket p50 = %g, want last finite bound 2", got)
	}

	// Degenerate histograms report NaN rather than inventing a value.
	if got := newHistogram([]float64{1}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram p50 = %g, want NaN", got)
	}
	noBounds := newHistogram(nil)
	noBounds.Observe(3)
	if got := noBounds.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("boundless histogram p50 = %g, want NaN", got)
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	// Histograms with observations carry quantiles in the snapshot;
	// empty ones and scalar series omit them.
	r := NewRegistry()
	r.Histogram("empty_seconds", "", []float64{1})
	r.Counter("c_total", "").Inc()
	h := r.Histogram("busy_seconds", "", LinearBuckets(1, 1, 10))
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	for _, s := range r.Snapshot() {
		switch s.Name {
		case "busy_seconds":
			if s.Quantiles == nil {
				t.Fatal("busy_seconds snapshot missing quantiles")
			}
			if got := float64(s.Quantiles.P50); math.Abs(got-5) > 1e-12 {
				t.Errorf("snapshot p50 = %g, want 5", got)
			}
			if float64(s.Quantiles.P90) != 9 || float64(s.Quantiles.P99) != 9.9 {
				t.Errorf("snapshot p90/p99 = %v/%v, want 9/9.9", s.Quantiles.P90, s.Quantiles.P99)
			}
		default:
			if s.Quantiles != nil {
				t.Errorf("%s unexpectedly carries quantiles", s.Name)
			}
		}
	}
}

func TestBucketBoundaryDeterminism(t *testing.T) {
	// Boundaries are built by repeated multiplication/addition, so two
	// independent constructions must be bit-identical element-wise —
	// the property that keeps /metrics output stable across processes.
	a, b := ExpBuckets(1e-6, 10, 9), ExpBuckets(1e-6, 10, 9)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Errorf("ExpBuckets[%d]: %x != %x", i, a[i], b[i])
		}
	}
	l1, l2 := LinearBuckets(0.5, 0.25, 16), LinearBuckets(0.5, 0.25, 16)
	for i := range l1 {
		if math.Float64bits(l1[i]) != math.Float64bits(l2[i]) {
			t.Errorf("LinearBuckets[%d]: %x != %x", i, l1[i], l2[i])
		}
	}
	h1 := NewRegistry().Histogram("h", "", ExpBuckets(1e-3, 10, 5))
	h2 := NewRegistry().Histogram("h", "", ExpBuckets(1e-3, 10, 5))
	for i := range h1.Bounds() {
		if h1.Bounds()[i] != h2.Bounds()[i] {
			t.Errorf("histogram bounds differ at %d", i)
		}
	}
}

// golden builds the registry whose exposition the golden files pin.
func golden() *Registry {
	r := NewRegistry()
	r.Counter("sweep_points_done_total", "design points evaluated so far").Add(37)
	r.Gauge("sweep_eta_seconds", "estimated seconds to completion").Set(12.5)
	r.Gauge(`sweep_worker_busy_seconds{worker="0"}`, "per-worker evaluation time").Set(3.25)
	r.Gauge(`sweep_worker_busy_seconds{worker="1"}`, "per-worker evaluation time").Set(2.75)
	h := r.Histogram("sweep_point_seconds", "per-point evaluation latency", ExpBuckets(0.001, 10, 4))
	for _, v := range []float64{0.0004, 0.002, 0.03, 0.03, 7} {
		h.Observe(v)
	}
	r.Func("sim_handoffs_total", "baton handoffs between engine processes", func() float64 { return 123456 })
	return r
}

// checkGolden compares got against the named testdata file, rewriting
// it under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/obs -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := golden().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom", buf.Bytes())
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := golden().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", buf.Bytes())
}

func TestLabeledHistogramExposition(t *testing.T) {
	// Histograms registered with a label block keep those labels on
	// every derived _bucket/_sum/_count series, so several labeled
	// histograms of one family stay distinct in the text exposition
	// (codesignd's per-endpoint latency histograms rely on this).
	r := NewRegistry()
	r.Histogram(`req_seconds{endpoint="solve"}`, "latency", []float64{0.5}).Observe(0.25)
	r.Histogram(`req_seconds{endpoint="design"}`, "latency", []float64{0.5}).Observe(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP req_seconds latency
# TYPE req_seconds histogram
req_seconds_bucket{endpoint="design",le="0.5"} 0
req_seconds_bucket{endpoint="design",le="+Inf"} 1
req_seconds_sum{endpoint="design"} 2
req_seconds_count{endpoint="design"} 1
req_seconds_bucket{endpoint="solve",le="0.5"} 1
req_seconds_bucket{endpoint="solve",le="+Inf"} 1
req_seconds_sum{endpoint="solve"} 0.25
req_seconds_count{endpoint="solve"} 1
`
	if got := buf.String(); got != want {
		t.Errorf("labeled histogram exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotOrderIndependentOfRegistration(t *testing.T) {
	// Build the same logical registry in reverse registration order;
	// the serialized output must be byte-identical (stable sort, not
	// map iteration).
	r := NewRegistry()
	r.Func("sim_handoffs_total", "baton handoffs between engine processes", func() float64 { return 123456 })
	h := r.Histogram("sweep_point_seconds", "per-point evaluation latency", ExpBuckets(0.001, 10, 4))
	for _, v := range []float64{0.0004, 0.002, 0.03, 0.03, 7} {
		h.Observe(v)
	}
	r.Gauge(`sweep_worker_busy_seconds{worker="1"}`, "per-worker evaluation time").Set(2.75)
	r.Gauge(`sweep_worker_busy_seconds{worker="0"}`, "per-worker evaluation time").Set(3.25)
	r.Gauge("sweep_eta_seconds", "estimated seconds to completion").Set(12.5)
	r.Counter("sweep_points_done_total", "design points evaluated so far").Add(37)

	var a, b bytes.Buffer
	if err := golden().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("Prometheus output depends on registration order:\n%s\nvs\n%s", a.String(), b.String())
	}
	a.Reset()
	b.Reset()
	if err := golden().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("JSON output depends on registration order")
	}
}

func TestRegistryConcurrentHammer(t *testing.T) {
	// GOMAXPROCS goroutines race get-or-create and updates on one
	// registry; the race detector (CI's race job) checks safety and the
	// final counts check that no increment was lost.
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hammer_total", "shared counter").Inc()
				r.Gauge("hammer_gauge", "shared gauge").Set(float64(i))
				r.Histogram("hammer_seconds", "shared histogram", []float64{0.5}).Observe(0.25)
				if i%1000 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	want := int64(workers) * perWorker
	if got := r.Counter("hammer_total", "").Value(); got != want {
		t.Errorf("counter lost increments: %d, want %d", got, want)
	}
	if got := r.Histogram("hammer_seconds", "", nil).Count(); got != want {
		t.Errorf("histogram lost observations: %d, want %d", got, want)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "0bad", "has space", `{label="only"}`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid name %q accepted", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
}
