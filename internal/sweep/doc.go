// Package sweep is the parallel design-space exploration engine: the
// programmatic version of the search Section 4.5 of Zhuo & Prasanna's
// "Hardware/Software Co-Design for Matrix Computations on
// Reconfigurable Computing Systems" (IPDPS 2007) performs by hand when
// it picks the published (Of, Ff, b, l) design points.
//
// A Grid declares axes over machine presets, node counts, problem and
// block sizes, PE-array widths, partition overrides and design modes;
// its cross product is enumerated in a deterministic order and each
// Point is evaluated either with the closed-form design model
// (Equations 1-6 plus the Section 4.5 predictor, microseconds per
// point) or with the full discrete-event simulation in internal/core
// (MethodSim, which also reports the measured bottleneck from
// internal/analysis and the telemetry overlap efficiency).
//
// Run schedules the points on a bounded, context-cancellable worker
// pool sized by runtime.GOMAXPROCS. Shared sub-problems — the pseudo
// place-and-route of a PE array on a device, and the Equation 1/4/5/6
// partition solves — are memoized under a lock so each distinct
// sub-problem is computed exactly once per sweep. Outcomes land in a
// slice indexed by Point.Index, so the Result (and its JSON/CSV
// serializations) is byte-identical across worker counts and
// schedules.
//
// The reduction step marks the Pareto frontier (maximize GFLOPS,
// minimize FPGA slices and DRAM bandwidth demand) and builds
// per-axis sensitivity tables. cmd/sweep exposes the engine on the
// command line; internal/exper uses it to regenerate the paper's
// design-selection narrative.
package sweep
