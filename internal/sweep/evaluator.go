package sweep

import (
	"fmt"
	"strings"
)

// Evaluator is the memoized point-evaluation engine behind Run,
// exported so long-running callers — chiefly the codesignd serve
// layer — can keep one alive across many queries and sweeps, sharing
// its place-and-route and partition-solve caches. A nil *Evaluator is
// never valid; construct with NewEvaluator. All methods are safe for
// concurrent use.
type Evaluator struct {
	ev *evaluator
}

// NewEvaluator returns an evaluator whose two memo caches (pseudo
// place-and-route solutions and Eq. 1/4/5/6 partition solves) each
// hold at most bound entries, evicting least-recently-used entries
// beyond it (bound <= 0 = unbounded, the behavior of a plain sweep).
// Eviction never changes results — the solves are deterministic — it
// only costs a recompute.
func NewEvaluator(bound int) *Evaluator {
	return &Evaluator{ev: newEvaluator(bound)}
}

// Evaluate evaluates one fully-specified design point under the given
// method (MethodModel or MethodSim; "" = MethodModel). Unknown apps,
// modes or methods come back as infeasible Outcomes, and a panic from
// a degenerate coordinate is converted the same way safeEvaluate does
// for Run — a bad query must never take down a serving process.
func (e *Evaluator) Evaluate(pt Point, method string) Outcome {
	if method == "" {
		method = MethodModel
	}
	if method != MethodModel && method != MethodSim {
		return fail(fmt.Errorf("unknown method %q (want %q or %q)", method, MethodModel, MethodSim))
	}
	if !contains(knownApps, pt.App) {
		return fail(fmt.Errorf("unknown app %q (want one of %s)", pt.App, strings.Join(knownApps, ", ")))
	}
	if !contains(knownModes, pt.Mode) {
		return fail(fmt.Errorf("unknown mode %q (want one of hybrid, processor-only, fpga-only)", pt.Mode))
	}
	return safeEvaluate(func() Outcome { return e.ev.evaluate(pt, method) })
}

// Stats returns the evaluator's cumulative memo-cache traffic since
// construction. For the per-run view, Run reports the delta it
// observed in its Result.
func (e *Evaluator) Stats() Stats {
	return e.ev.statsDelta(Stats{})
}
