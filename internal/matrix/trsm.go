package matrix

import "fmt"

// Triangular solve routines. The block LU decomposition of Section 5.1
// needs two of them:
//
//   opU: U01 = inv(L00) * A01  — solve L*X = B with L lower triangular,
//        unit diagonal (TrsmLowerUnitLeft).
//   opL: L10 = A10 * inv(U00)  — solve X*U = B with U upper triangular
//        (TrsmUpperRight).
//
// The remaining variants round out the set so the package is usable as a
// small BLAS-3 substrate in its own right.

// TrsmLowerUnitLeft solves L*X = B in place, overwriting B with X.
// L is n×n lower triangular with an implied unit diagonal (its strict
// upper part and diagonal are not referenced); B is n×m.
func TrsmLowerUnitLeft(l, b *Dense) {
	n := checkSquare(l, "TrsmLowerUnitLeft")
	if b.rows != n {
		panic(fmt.Sprintf("matrix: TrsmLowerUnitLeft B %dx%d vs L %dx%d", b.rows, b.cols, n, n))
	}
	for i := 0; i < n; i++ {
		bi := b.Row(i)
		for k := 0; k < i; k++ {
			lik := l.At(i, k)
			if lik == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range bi {
				bi[j] -= lik * bk[j]
			}
		}
	}
}

// TrsmUpperLeft solves U*X = B in place, overwriting B with X.
// U is n×n upper triangular with a non-unit diagonal; B is n×m.
func TrsmUpperLeft(u, b *Dense) {
	n := checkSquare(u, "TrsmUpperLeft")
	if b.rows != n {
		panic(fmt.Sprintf("matrix: TrsmUpperLeft B %dx%d vs U %dx%d", b.rows, b.cols, n, n))
	}
	for i := n - 1; i >= 0; i-- {
		bi := b.Row(i)
		for k := i + 1; k < n; k++ {
			uik := u.At(i, k)
			if uik == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range bi {
				bi[j] -= uik * bk[j]
			}
		}
		d := u.At(i, i)
		for j := range bi {
			bi[j] /= d
		}
	}
}

// TrsmUpperRight solves X*U = B in place, overwriting B with X.
// U is n×n upper triangular with a non-unit diagonal; B is m×n.
func TrsmUpperRight(u, b *Dense) {
	n := checkSquare(u, "TrsmUpperRight")
	if b.cols != n {
		panic(fmt.Sprintf("matrix: TrsmUpperRight B %dx%d vs U %dx%d", b.rows, b.cols, n, n))
	}
	for i := 0; i < b.rows; i++ {
		bi := b.Row(i)
		for j := 0; j < n; j++ {
			s := bi[j]
			for k := 0; k < j; k++ {
				s -= bi[k] * u.At(k, j)
			}
			bi[j] = s / u.At(j, j)
		}
	}
}

// TrsmLowerUnitRight solves X*L = B in place, overwriting B with X.
// L is n×n lower triangular with an implied unit diagonal; B is m×n.
func TrsmLowerUnitRight(l, b *Dense) {
	n := checkSquare(l, "TrsmLowerUnitRight")
	if b.cols != n {
		panic(fmt.Sprintf("matrix: TrsmLowerUnitRight B %dx%d vs L %dx%d", b.rows, b.cols, n, n))
	}
	for i := 0; i < b.rows; i++ {
		bi := b.Row(i)
		for j := n - 1; j >= 0; j-- {
			s := bi[j]
			for k := j + 1; k < n; k++ {
				s -= bi[k] * l.At(k, j)
			}
			bi[j] = s
		}
	}
}

func checkSquare(m *Dense, op string) int {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: %s: triangular factor %dx%d is not square", op, m.rows, m.cols))
	}
	return m.rows
}
