package matrix

import "fmt"

// Shortest-path reconstruction for the all-pairs problem. The paper's
// FW design computes distances only; a usable APSP library also returns
// the paths, so the package provides a predecessor-tracking variant and
// a reconstruction helper, plus a Bellman-Ford single-source reference
// that serves as an independent oracle in the tests.

// NoPred marks an unreachable pair in a predecessor matrix.
const NoPred = -1

// FloydWarshallPaths runs the unblocked algorithm in place on d and
// returns the predecessor matrix: pred[i][j] is the vertex preceding j
// on a shortest i→j path (NoPred when j is unreachable from i or i==j).
func FloydWarshallPaths(d *Dense) [][]int32 {
	n := checkSquare(d, "FloydWarshallPaths")
	pred := make([][]int32, n)
	for i := 0; i < n; i++ {
		pred[i] = make([]int32, n)
		for j := 0; j < n; j++ {
			if i != j && d.At(i, j) < Inf {
				pred[i][j] = int32(i)
			} else {
				pred[i][j] = NoPred
			}
		}
	}
	for k := 0; k < n; k++ {
		dk := d.Row(k)
		pk := pred[k]
		for i := 0; i < n; i++ {
			di := d.Row(i)
			dik := di[k]
			if dik >= Inf {
				continue
			}
			pi := pred[i]
			for j := 0; j < n; j++ {
				if v := dik + dk[j]; v < di[j] {
					di[j] = v
					pi[j] = pk[j]
				}
			}
		}
	}
	return pred
}

// Path reconstructs the vertex sequence of a shortest i→j path from a
// predecessor matrix (inclusive of both endpoints). It returns nil when
// j is unreachable from i. It panics on a malformed predecessor matrix
// (cycles longer than n).
func Path(pred [][]int32, i, j int) []int {
	n := len(pred)
	if i < 0 || j < 0 || i >= n || j >= n {
		panic(fmt.Sprintf("matrix: path endpoints (%d,%d) out of range %d", i, j, n))
	}
	if i == j {
		return []int{i}
	}
	if pred[i][j] == NoPred {
		return nil
	}
	rev := []int{j}
	for at := j; at != i; {
		at = int(pred[i][at])
		rev = append(rev, at)
		if len(rev) > n {
			panic("matrix: predecessor matrix contains a cycle")
		}
	}
	// Reverse in place.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// PathLength sums the edge weights of a path over the original
// adjacency matrix adj; it returns Inf for nil or broken paths.
func PathLength(adj *Dense, path []int) float64 {
	if len(path) == 0 {
		return Inf
	}
	var s float64
	for i := 1; i < len(path); i++ {
		w := adj.At(path[i-1], path[i])
		if w >= Inf {
			return Inf
		}
		s += w
	}
	return s
}

// BellmanFord computes single-source shortest distances from src over
// the adjacency matrix adj (Inf = absent edge). It is an independent
// O(n³) oracle for the Floyd-Warshall implementations; it returns the
// distance vector.
func BellmanFord(adj *Dense, src int) []float64 {
	n := checkSquare(adj, "BellmanFord")
	distv := make([]float64, n)
	for i := range distv {
		distv[i] = Inf
	}
	distv[src] = 0
	for round := 0; round < n-1; round++ {
		changed := false
		for u := 0; u < n; u++ {
			du := distv[u]
			if du >= Inf {
				continue
			}
			row := adj.Row(u)
			for v := 0; v < n; v++ {
				if w := row[v]; w < Inf && du+w < distv[v] {
					distv[v] = du + w
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return distv
}
