package trace

import (
	"encoding/csv"
	"strings"
	"testing"
)

// The CSV exporter must quote, not rewrite, actions containing commas
// (the old implementation replaced "," with ";" and lost data).
func TestWriteCSVQuotesCommas(t *testing.T) {
	var c Collector
	c.Record(0.5, "p0", `block: wait, then some "quoted" detail`)
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v\n%s", err, b.String())
	}
	if got, want := rows[0], []string{"time_s", "process", "action"}; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("header = %v, want %v", got, want)
	}
	if got := rows[1][2]; got != `block: wait, then some "quoted" detail` {
		t.Fatalf("action round-trip lost data: %q", got)
	}
}

// A span ending exactly at the horizon must still mark the final
// column (the old column math indexed past the row before clamping).
func TestWriteTimelineSpanAtHorizon(t *testing.T) {
	var c Collector
	c.Record(9, "p0", "block: wait 1s")
	c.Record(10, "p0", "resume")
	// A second span entirely at the horizon boundary.
	c.Record(10, "p1", "block: wait 0s")
	c.Record(10, "p1", "resume")
	var b strings.Builder
	if err := c.WriteTimeline(&b, 10, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	p0 := lines[0]
	if !strings.HasSuffix(p0[:strings.LastIndex(p0, "|")], "#") {
		t.Fatalf("span ending at horizon missing from last column: %q", p0)
	}
}

// Events at t=0 only (horizon stays 0 after fallbacks) must not print
// "(no activity)".
func TestWriteTimelineZeroHorizonWithEvents(t *testing.T) {
	var c Collector
	c.Record(0, "p0", "block: wait 0s")
	c.Record(0, "p0", "resume")
	c.Record(0, "p1", "block: recv inbox")
	var b strings.Builder
	if err := c.WriteTimeline(&b, 20, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "no activity") {
		t.Fatalf("events present but timeline claims no activity:\n%s", b.String())
	}
}

// Timeline with only blocking (no wait spans) falls back to event
// times for the horizon instead of reporting no activity.
func TestWriteTimelineBlocksOnly(t *testing.T) {
	var c Collector
	c.Record(1, "p0", "block: recv inbox")
	c.Record(5, "p0", "resume")
	var b strings.Builder
	if err := c.WriteTimeline(&b, 20, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "no activity") {
		t.Fatalf("blocks-only trace should still render a frame:\n%s", b.String())
	}
}

// A second "block: wait" before the matching "resume" closes the open
// span at the new block time instead of discarding the interval.
func TestSpansNestedWait(t *testing.T) {
	var c Collector
	c.Record(1, "p0", "block: wait 1s")
	c.Record(3, "p0", "block: wait 2s") // malformed: no resume in between
	c.Record(6, "p0", "resume")
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans %v, want 2", len(spans), spans)
	}
	if spans[0].Start != 1 || spans[0].End != 3 {
		t.Fatalf("first span = %+v, want [1,3]", spans[0])
	}
	if spans[1].Start != 3 || spans[1].End != 6 {
		t.Fatalf("second span = %+v, want [3,6]", spans[1])
	}
}

// An unmatched trailing "block: wait" (no final resume) contributes no
// span — its end is unknown.
func TestSpansUnmatchedTrailingWait(t *testing.T) {
	var c Collector
	c.Record(1, "p0", "block: wait 1s")
	c.Record(2, "p0", "resume")
	c.Record(4, "p0", "block: wait 9s")
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans %v, want 1", len(spans), spans)
	}
}
