package sim

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestWaitAdvancesClock(t *testing.T) {
	e := New()
	var at float64
	e.Go("p", func(p *Proc) {
		p.Wait(2.5)
		at = p.Now()
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 2.5 {
		t.Fatalf("proc observed t=%v, want 2.5", at)
	}
	if e.Now() != 2.5 {
		t.Fatalf("engine t=%v, want 2.5", e.Now())
	}
}

func TestNegativeWaitIsZero(t *testing.T) {
	e := New()
	e.Go("p", func(p *Proc) {
		p.Wait(-5)
		if p.Now() != 0 {
			t.Errorf("negative wait advanced clock to %v", p.Now())
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() string {
		e := New()
		var log []string
		for i := 0; i < 3; i++ {
			i := i
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Wait(float64(i+1) * 0.5)
					log = append(log, fmt.Sprintf("%s@%.1f", p.Name(), p.Now()))
				}
			})
		}
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, " ")
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic schedule:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	e := New()
	var order []string
	e.Go("a", func(p *Proc) { p.Wait(1); order = append(order, "a") })
	e.Go("b", func(p *Proc) { p.Wait(1); order = append(order, "b") })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, "") != "ab" {
		t.Fatalf("tie broke as %v, want [a b]", order)
	}
}

func TestGoAt(t *testing.T) {
	e := New()
	var start float64 = -1
	e.GoAt(3, "late", func(p *Proc) { start = p.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if start != 3 {
		t.Fatalf("late proc started at %v, want 3", start)
	}
}

func TestAtCallback(t *testing.T) {
	e := New()
	fired := 0.0
	e.At(7, func() { fired = e.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 7 {
		t.Fatalf("At fired at %v", fired)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := New()
	reached := false
	e.Go("p", func(p *Proc) {
		p.Wait(100)
		reached = true
	})
	err := e.Run(10)
	if err != nil {
		t.Fatalf("Run(until) returned %v", err)
	}
	if reached {
		t.Fatal("process ran past the until horizon")
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New()
	mb := NewMailbox(e, "never")
	e.Go("stuck", func(p *Proc) { mb.Get(p) })
	err := e.Run(0)
	var d *Deadlock
	if !errors.As(err, &d) {
		t.Fatalf("err = %v, want Deadlock", err)
	}
	if _, ok := d.Stuck["stuck"]; !ok {
		t.Fatalf("deadlock report %v missing process", d.Stuck)
	}
	if !strings.Contains(d.Error(), "stuck") {
		t.Fatalf("error text %q", d.Error())
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := New()
	e.Go("boom", func(p *Proc) { panic("kaput") })
	err := e.Run(0)
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

func TestWaitUntil(t *testing.T) {
	e := New()
	e.Go("p", func(p *Proc) {
		p.WaitUntil(4)
		if p.Now() != 4 {
			t.Errorf("WaitUntil: now=%v", p.Now())
		}
		p.WaitUntil(2) // in the past: no-op
		if p.Now() != 4 {
			t.Errorf("WaitUntil past moved clock: now=%v", p.Now())
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := New()
	r := NewResource(e, "cpu", 1)
	var finishes []float64
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("job%d", i), func(p *Proc) {
			r.Use(p, 2)
			finishes = append(finishes, p.Now())
		})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6}
	for i, w := range want {
		if finishes[i] != w {
			t.Fatalf("finishes = %v, want %v", finishes, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := New()
	r := NewResource(e, "duo", 2)
	var finishes []float64
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("job%d", i), func(p *Proc) {
			r.Use(p, 3)
			finishes = append(finishes, p.Now())
		})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 3, 6, 6}
	for i, w := range want {
		if finishes[i] != w {
			t.Fatalf("finishes = %v, want %v", finishes, want)
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	e := New()
	r := NewResource(e, "lock", 1)
	var order []string
	// p0 grabs at t=0; p1 and p2 queue in spawn order.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("p%d", i)
		e.Go(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, p.Name())
			p.Wait(1)
			r.Release()
		})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "p0,p1,p2" {
		t.Fatalf("service order %v", order)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := New()
	r := NewResource(e, "dev", 1)
	e.Go("a", func(p *Proc) {
		r.Use(p, 3)
		p.Wait(1) // idle tail
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := r.BusySeconds(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("busy = %v, want 3", got)
	}
	if got := r.Utilization(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.75", got)
	}
}

func TestTryAcquire(t *testing.T) {
	e := New()
	r := NewResource(e, "dev", 1)
	e.Go("a", func(p *Proc) {
		if !r.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if r.TryAcquire() {
			t.Error("second TryAcquire succeeded on saturated resource")
		}
		r.Release()
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	e := New()
	r := NewResource(e, "dev", 1)
	e.Go("a", func(p *Proc) { r.Release() })
	if err := e.Run(0); err == nil {
		t.Fatal("expected panic propagation for idle release")
	}
}

func TestMailboxDelivers(t *testing.T) {
	e := New()
	mb := NewMailbox(e, "mb")
	var got []any
	e.Go("rx", func(p *Proc) {
		got = append(got, mb.Get(p), mb.Get(p))
	})
	e.Go("tx", func(p *Proc) {
		p.Wait(1)
		mb.Put("x")
		p.Wait(1)
		mb.Put("y")
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("got %v", got)
	}
	if e.Now() != 2 {
		t.Fatalf("clock %v, want 2", e.Now())
	}
}

func TestMailboxBuffersAheadOfReceiver(t *testing.T) {
	e := New()
	mb := NewMailbox(e, "mb")
	e.Go("tx", func(p *Proc) { mb.Put(1); mb.Put(2) })
	var got []any
	e.GoAt(5, "rx", func(p *Proc) { got = append(got, mb.Get(p), mb.Get(p)) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := New()
	mb := NewMailbox(e, "mb")
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox succeeded")
	}
	mb.Put(42)
	if v, ok := mb.TryGet(); !ok || v != 42 {
		t.Fatalf("TryGet = %v,%v", v, ok)
	}
	if mb.Len() != 0 {
		t.Fatal("mailbox not drained")
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := New()
	s := NewSignal(e, "done")
	var woke []float64
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Wait(2)
		s.Fire()
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d of 3", len(woke))
	}
	for _, w := range woke {
		if w != 2 {
			t.Fatalf("waiter woke at %v, want 2", w)
		}
	}
	// Already-fired signal: Wait returns immediately.
	e2 := New()
	s2 := NewSignal(e2, "pre")
	s2.Fire()
	e2.Go("late", func(p *Proc) {
		s2.Wait(p)
		if p.Now() != 0 {
			t.Errorf("pre-fired signal blocked")
		}
	})
	if err := e2.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestSignalReset(t *testing.T) {
	e := New()
	s := NewSignal(e, "s")
	s.Fire()
	s.Reset()
	if s.Fired() {
		t.Fatal("Reset did not clear Fired")
	}
}

func TestBarrier(t *testing.T) {
	e := New()
	b := NewBarrier(e, "b", 3)
	var times []float64
	for i := 0; i < 3; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Wait(float64(i)) // arrive at t=0,1,2
			b.Arrive(p)
			times = append(times, p.Now())
		})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, tt := range times {
		if tt != 2 {
			t.Fatalf("barrier released at %v, want 2 (times %v)", tt, times)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := New()
	b := NewBarrier(e, "b", 2)
	rounds := 0
	for i := 0; i < 2; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < 3; k++ {
				p.Wait(1)
				b.Arrive(p)
			}
			rounds++
		})
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if rounds != 2 || e.Now() != 3 {
		t.Fatalf("rounds=%d now=%v", rounds, e.Now())
	}
}

func TestTraceHook(t *testing.T) {
	e := New()
	var events []string
	e.Trace = func(tm float64, proc, action string) {
		events = append(events, fmt.Sprintf("%.0f/%s/%s", tm, proc, action))
	}
	e.Go("p", func(p *Proc) { p.Wait(1) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace hook never called")
	}
}

func TestNoGoroutineLeakAfterDeadlock(t *testing.T) {
	// A deadlocked run must still unwind all process goroutines; the
	// abort path is exercised by running many deadlocked engines.
	for i := 0; i < 50; i++ {
		e := New()
		mb := NewMailbox(e, "never")
		for j := 0; j < 4; j++ {
			e.Go(fmt.Sprintf("p%d", j), func(p *Proc) { mb.Get(p) })
		}
		if err := e.Run(0); err == nil {
			t.Fatal("expected deadlock")
		}
	}
}

func TestRunNotReentrant(t *testing.T) {
	e := New()
	e.Go("p", func(p *Proc) {
		if err := e.Run(0); err == nil {
			t.Error("nested Run must fail")
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}
