package fault

import (
	"math"
	"reflect"
	"testing"
)

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"seed": 1, "evnets": []}`)); err == nil {
		t.Fatal("typo field accepted")
	}
	s, err := Parse([]byte(`{"seed": 7, "events": [{"kind": "cpu-slow", "node": 1, "start": 0.5, "duration": 1, "factor": 0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || len(s.Events) != 1 || s.Events[0].Kind != CPUSlow {
		t.Fatalf("bad parse: %+v", s)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Events: []Event{{Kind: CPUSlow, Node: 9, Start: 0, Factor: 0.5}}},
		{Events: []Event{{Kind: CPUSlow, Node: 0, Start: -1, Factor: 0.5}}},
		{Events: []Event{{Kind: CPUSlow, Node: 0, Start: 0, Factor: 0}}},
		{Events: []Event{{Kind: ThrottleBd, Node: 0, Start: 0, Factor: 1.5}}},
		{Events: []Event{{Kind: FPGAStall, Node: 0, Start: 0}}},
		{Events: []Event{{Kind: "melted", Node: 0, Start: 0}}},
		{Random: []Random{{Kind: CPUSlow, Count: 2, Node: -1}}},
		{Threshold: -1},
		{Window: -0.5},
	}
	for i, s := range bad {
		s := s
		if _, err := New(&s, 4); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if _, err := New(nil, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(nil, 4); err != nil {
		t.Errorf("nil spec rejected: %v", err)
	}
}

func TestRandomExpansionDeterministic(t *testing.T) {
	spec := &Spec{
		Seed: 42,
		Random: []Random{{
			Kind: ThrottleBn, Count: 5, Node: -1, Horizon: 10,
			MeanDuration: 2, MinFactor: 0.2, MaxFactor: 0.8,
		}},
	}
	a, err := New(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("same seed diverged:\n%v\n%v", a.Events(), b.Events())
	}
	if len(a.Events()) != 5 {
		t.Fatalf("expected 5 events, got %d", len(a.Events()))
	}
	for _, e := range a.Events() {
		if e.Start < 0 || e.Start >= 10 || e.Factor < 0.2 || e.Factor > 0.8 {
			t.Errorf("event outside configured bounds: %+v", e)
		}
		if e.Duration < 1 || e.Duration > 3 {
			t.Errorf("duration outside [0.5,1.5]×mean: %+v", e)
		}
	}
	other, err := New(&Spec{Seed: 43, Random: spec.Random}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events(), other.Events()) {
		t.Fatal("different seeds produced identical events")
	}
}

func TestDilateIdentityOutsideWindows(t *testing.T) {
	in, err := New(&Spec{Events: []Event{
		{Kind: CPUSlow, Node: 0, Start: 10, Duration: 5, Factor: 0.5},
	}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ start, dt float64 }{
		{0, 1}, {0, 10}, {15, 3}, {9.999, 0.001}, {100, 7},
	}
	for _, c := range cases {
		if got := in.Dilate(ClassCPU, 0, c.start, c.dt); got != c.dt {
			t.Errorf("Dilate(%g,%g) = %g, want bit-identical %g", c.start, c.dt, got, c.dt)
		}
	}
	// Other node and other class untouched even inside the window.
	if got := in.Dilate(ClassCPU, 1, 11, 2); got != 2 {
		t.Errorf("wrong node dilated: %g", got)
	}
	if got := in.Dilate(ClassDRAM, 0, 11, 2); got != 2 {
		t.Errorf("wrong class dilated: %g", got)
	}
}

func TestDilatePiecewise(t *testing.T) {
	in, err := New(&Spec{Events: []Event{
		{Kind: CPUSlow, Node: 0, Start: 10, Duration: 5, Factor: 0.5},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Entirely inside the half-speed window: takes twice as long.
	if got := in.Dilate(ClassCPU, 0, 11, 1); math.Abs(got-2) > 1e-12 {
		t.Errorf("inside window: got %g, want 2", got)
	}
	// Straddling the start: 1s nominal work = 1s healthy + 2×1s slowed... but
	// only 2s of work requested: 1s before the window (1s of work) then 1s of
	// work at half speed = 2s wall. Total 3s.
	if got := in.Dilate(ClassCPU, 0, 9, 2); math.Abs(got-3) > 1e-12 {
		t.Errorf("straddling start: got %g, want 3", got)
	}
	// Straddling the end: start at 14 with 2s of work: 1s in-window delivers
	// 0.5s of work, the remaining 1.5s runs healthy. Total 2.5s.
	if got := in.Dilate(ClassCPU, 0, 14, 2); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("straddling end: got %g, want 2.5", got)
	}
}

func TestDilateStallWindow(t *testing.T) {
	in, err := New(&Spec{Events: []Event{
		{Kind: FPGAStall, Node: 0, Start: 5, Duration: 2},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Work starting mid-stall waits for the window to end.
	if got := in.Dilate(ClassFPGA, 0, 6, 1); math.Abs(got-2) > 1e-12 {
		t.Errorf("mid-stall start: got %g, want 2 (1s blocked + 1s work)", got)
	}
	// Work straddling the whole stall pays the full window.
	if got := in.Dilate(ClassFPGA, 0, 4, 3); math.Abs(got-5) > 1e-12 {
		t.Errorf("straddling stall: got %g, want 5", got)
	}
}

func TestDilateOverlappingWindowsMultiply(t *testing.T) {
	in, err := New(&Spec{Events: []Event{
		{Kind: ThrottleBd, Node: 0, Start: 0, Duration: 10, Factor: 0.5},
		{Kind: ThrottleBd, Node: 0, Start: 0, Duration: 10, Factor: 0.5},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Dilate(ClassDRAM, 0, 0, 1); math.Abs(got-4) > 1e-12 {
		t.Errorf("two half throttles: got %g, want 4 (quarter speed)", got)
	}
}

func TestOpenEndedWindow(t *testing.T) {
	in, err := New(&Spec{Events: []Event{
		{Kind: ThrottleBn, Node: 0, Start: 3, Factor: 0.25}, // until end of run
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Dilate(ClassNet, 0, 100, 1); math.Abs(got-4) > 1e-12 {
		t.Errorf("open-ended throttle: got %g, want 4", got)
	}
	if got := in.Dilate(ClassNet, 0, 0, 3); got != 3 {
		t.Errorf("before open-ended window: got %g, want 3", got)
	}
}

func TestLiveness(t *testing.T) {
	in, err := New(&Spec{Events: []Event{
		{Kind: NodeKill, Node: 2, Start: 1.5},
	}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !in.HasDeaths() {
		t.Fatal("HasDeaths false")
	}
	if !in.Alive(2, 1.0) || in.Alive(2, 1.5) || in.Alive(2, 2.0) {
		t.Fatal("kill time not respected")
	}
	if !in.Alive(0, 100) {
		t.Fatal("healthy node reported dead")
	}
	if got := in.DeadBy(2.0); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("DeadBy = %v, want [2]", got)
	}
	if got := in.DeadBy(1.0); got != nil {
		t.Fatalf("DeadBy before kill = %v, want none", got)
	}
}

func TestTakeObserved(t *testing.T) {
	in, err := New(&Spec{Events: []Event{
		{Kind: CPUSlow, Node: 1, Start: 0, Duration: 100, Factor: 0.5},
	}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy node 0 charges at nominal, slowed node 1 at half speed.
	in.Dilate(ClassCPU, 0, 0, 1)
	in.Dilate(ClassCPU, 1, 0, 1) // dilates to 2
	f := in.TakeObserved()
	if math.Abs(f.CPU-0.5) > 1e-12 {
		t.Errorf("observed CPU factor %g, want 0.5 (min across nodes)", f.CPU)
	}
	if f.DRAM != 0 || f.Net != 0 || f.FPGA != 0 {
		t.Errorf("unobserved classes should report 0: %+v", f)
	}
	// Accumulators reset, but each (node, class)'s last-known ratio
	// carries forward: a silent window is not evidence of recovery.
	f = in.TakeObserved()
	if math.Abs(f.CPU-0.5) > 1e-12 {
		t.Errorf("silent window dropped the carried CPU ratio: %+v", f)
	}
	if f.DRAM != 0 || f.Net != 0 || f.FPGA != 0 {
		t.Errorf("never-observed classes should stay 0: %+v", f)
	}
	// A fresh nominal charge on the slowed node updates the carried
	// ratio — recovery is observed, not assumed.
	in.Dilate(ClassCPU, 1, 200, 1) // past the fault window: no dilation
	if f := in.TakeObserved(); math.Abs(f.CPU-1) > 1e-12 {
		t.Errorf("recovered node still reads slow: %+v", f)
	}
}

func TestActiveFactorsAndOracle(t *testing.T) {
	spec := &Spec{Events: []Event{
		{Kind: ThrottleBd, Node: 3, Start: 2, Duration: 4, Factor: 0.3},
	}}
	in, err := New(spec.WithOracle(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Oracle() || in.Window() != 0 {
		t.Fatal("oracle tuning not applied")
	}
	if f := in.ActiveFactors(3); math.Abs(f.DRAM-0.3) > 1e-12 {
		t.Errorf("active DRAM factor %g, want 0.3", f.DRAM)
	}
	if f := in.ActiveFactors(7); f != Nominal() {
		t.Errorf("after window: %+v, want nominal", f)
	}
	if spec.Oracle {
		t.Fatal("WithOracle mutated the original spec")
	}
	if in2, _ := New(spec, 6); in2.Oracle() {
		t.Fatal("non-oracle spec built an oracle injector")
	}
}

func TestDefaultsApplied(t *testing.T) {
	in, err := New(&Spec{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.Threshold() != DefaultThreshold || in.Window() != DefaultWindow {
		t.Fatalf("defaults not applied: threshold=%g window=%g", in.Threshold(), in.Window())
	}
}
