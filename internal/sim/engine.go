package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now     float64
	seq     int64
	queue   eventHeap
	procs   []*Proc
	blocked map[*Proc]string
	failure error
	running bool
	// Trace, if non-nil, receives one call per interesting engine
	// action (process resume, wait, block). Useful for debugging and
	// for the timeline exporter. It remains the legacy adapter onto
	// the raw event stream; structured consumers register an Observer
	// via Observe instead. Both see identical events in the same
	// order.
	Trace func(t float64, proc, action string)

	observers []Observer
}

// New returns an empty engine with the clock at 0.
func New() *Engine {
	return &Engine{blocked: make(map[*Proc]string)}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (e *Engine) schedule(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{t: t, seq: e.seq, fn: fn})
}

// At schedules fn to run at absolute virtual time t (or now, if t is in
// the past). fn runs in scheduler context and must not block.
func (e *Engine) At(t float64, fn func()) { e.schedule(t, fn) }

// abortError unwinds a process goroutine when the engine shuts down.
type abortError struct{}

// Proc is a simulated process. All Proc methods must be called from the
// process's own function body (they yield to the scheduler).
type Proc struct {
	eng     *Engine
	name    string
	resume  chan bool // true = run, false = abort
	yield   chan struct{}
	done    bool
	aborted bool
	pv      any    // recovered panic value, if any
	phase   string // telemetry phase annotation, see SetPhase
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Go spawns a process that starts at the current virtual time. The
// function fn runs in its own goroutine but only while it holds the
// scheduler's baton; it advances time via p.Wait and friends.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan bool), yield: make(chan struct{})}
	e.procs = append(e.procs, p)
	go func() {
		run := <-p.resume
		defer func() {
			r := recover()
			if _, ok := r.(abortError); ok {
				r = nil
			}
			p.pv = r
			p.done = true
			p.yield <- struct{}{}
		}()
		if run {
			fn(p)
		}
	}()
	e.schedule(e.now, func() { e.runProc(p) })
	return p
}

// GoAt spawns a process that starts at absolute virtual time t.
func (e *Engine) GoAt(t float64, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan bool), yield: make(chan struct{})}
	e.procs = append(e.procs, p)
	go func() {
		run := <-p.resume
		defer func() {
			r := recover()
			if _, ok := r.(abortError); ok {
				r = nil
			}
			p.pv = r
			p.done = true
			p.yield <- struct{}{}
		}()
		if run {
			fn(p)
		}
	}()
	e.schedule(t, func() { e.runProc(p) })
	return p
}

// runProc hands the baton to p and waits for it to yield back.
func (e *Engine) runProc(p *Proc) {
	if p.done {
		return
	}
	delete(e.blocked, p)
	e.emitEvent(e.now, p.name, "resume")
	p.resume <- true
	<-p.yield
	if p.done && p.pv != nil && e.failure == nil {
		e.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, p.pv)
	}
}

// park yields the baton back to the scheduler; the caller must have
// already arranged for a future resume. reason is recorded for deadlock
// reports.
func (p *Proc) park(reason string) {
	if p.aborted {
		panic(abortError{})
	}
	p.eng.blocked[p] = reason
	p.eng.emitEvent(p.eng.now, p.name, "block: "+reason)
	p.yield <- struct{}{}
	if run := <-p.resume; !run {
		p.aborted = true
		panic(abortError{})
	}
}

// Wait advances the process's local view of time by dt seconds (dt < 0
// is treated as 0).
func (p *Proc) Wait(dt float64) {
	if dt < 0 {
		dt = 0
	}
	e := p.eng
	e.schedule(e.now+dt, func() { e.runProc(p) })
	p.park(fmt.Sprintf("wait %.3gs", dt))
}

// WaitUntil advances to absolute virtual time t (no-op if t <= now).
func (p *Proc) WaitUntil(t float64) {
	e := p.eng
	e.schedule(t, func() { e.runProc(p) })
	p.park(fmt.Sprintf("wait until %.3g", t))
}

// Deadlock describes processes blocked forever at the end of a run.
type Deadlock struct {
	Time float64
	// Stuck maps process names to the reason each was blocked.
	Stuck map[string]string
}

func (d *Deadlock) Error() string {
	names := make([]string, 0, len(d.Stuck))
	for n := range d.Stuck {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("sim: deadlock at t=%.6g: %d process(es) blocked:", d.Time, len(names))
	for _, n := range names {
		s += fmt.Sprintf("\n  %s: %s", n, d.Stuck[n])
	}
	return s
}

// Run drives the simulation until the event queue is empty, a process
// panics, or (if until > 0) virtual time reaches until. It returns a
// *Deadlock error if processes remain blocked with no pending events,
// or the first process panic. Run aborts and unwinds any still-blocked
// processes before returning, so goroutines do not leak.
func (e *Engine) Run(until float64) error {
	if e.running {
		return fmt.Errorf("sim: Run is not reentrant")
	}
	e.running = true
	defer func() { e.running = false }()

	horizon := false
	for len(e.queue) > 0 && e.failure == nil {
		ev := heap.Pop(&e.queue).(event)
		if until > 0 && ev.t > until {
			e.now = until
			horizon = true
			break
		}
		e.now = ev.t
		ev.fn()
	}

	var err error
	if e.failure != nil {
		err = e.failure
	} else if !horizon && len(e.blocked) > 0 {
		d := &Deadlock{Time: e.now, Stuck: make(map[string]string, len(e.blocked))}
		for p, reason := range e.blocked {
			d.Stuck[p.name] = reason
		}
		err = d
	}
	e.abortBlocked()
	return err
}

// abortBlocked unwinds every live process — parked or never started —
// so its goroutine exits.
func (e *Engine) abortBlocked() {
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.resume <- false
		<-p.yield
	}
	e.blocked = make(map[*Proc]string)
	// Drain events referencing aborted procs; runProc is a no-op for
	// done procs so simply clear the queue.
	e.queue = e.queue[:0]
}
