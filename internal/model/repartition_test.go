package model

import "testing"

func TestDegradationNormalized(t *testing.T) {
	d := Degradation{}.Normalized()
	if d != (Degradation{CPU: 1, FPGA: 1, Bd: 1, Bn: 1}) {
		t.Fatalf("zero degradation should normalize to nominal, got %+v", d)
	}
	if !(Degradation{}).Nominal() || !(Degradation{CPU: 1, FPGA: 1, Bd: 1, Bn: 1}).Nominal() {
		t.Fatal("nominal degradation not recognized")
	}
	if (Degradation{CPU: 0.5}).Nominal() {
		t.Fatal("degraded CPU reported nominal")
	}
	clamped := Degradation{CPU: 1e-9, FPGA: 2}.Normalized()
	if clamped.CPU != minFactor || clamped.FPGA != 1 {
		t.Fatalf("clamping failed: %+v", clamped)
	}
}

func TestRepartitionIdentityAtNominal(t *testing.T) {
	lp := xd1LU()
	bf0, bp0 := lp.SolvePartition()
	l0 := lp.SolveL(bf0)
	bf, bp, l := lp.Repartition(Degradation{})
	if bf != bf0 || bp != bp0 || l != l0 {
		t.Fatalf("nominal repartition moved the solution: (%d,%d,%d) vs (%d,%d,%d)", bf, bp, l, bf0, bp0, l0)
	}
}

func TestRepartitionShiftsTowardHealthyResource(t *testing.T) {
	lp := xd1LU()
	bf0, _ := lp.SolvePartition()

	// A slowed CPU should push rows onto the FPGA.
	bfSlowCPU, _, _ := lp.Repartition(Degradation{CPU: 0.3})
	if bfSlowCPU <= bf0 {
		t.Errorf("slow CPU: bf %d -> %d, want an increase", bf0, bfSlowCPU)
	}
	// A slowed FPGA clock should pull rows back to the processor.
	bfSlowFPGA, _, _ := lp.Repartition(Degradation{FPGA: 0.3})
	if bfSlowFPGA >= bf0 {
		t.Errorf("slow FPGA: bf %d -> %d, want a decrease", bf0, bfSlowFPGA)
	}
	// Degraded Bd raises Tmem, which Equation (4) charges to the
	// processor side (the CPU streams the FPGA's operands), so the
	// solver offloads more compute rows onto the FPGA.
	bfSlowBd, _, _ := lp.Repartition(Degradation{Bd: 0.2})
	if bfSlowBd <= bf0 {
		t.Errorf("slow Bd: bf %d -> %d, want an increase", bf0, bfSlowBd)
	}
	// All splits stay feasible.
	for _, bf := range []int{bfSlowCPU, bfSlowFPGA, bfSlowBd} {
		if bf < 0 || bf > lp.B || bf%lp.K != 0 {
			t.Errorf("infeasible bf %d", bf)
		}
	}
}

func TestFWRepartitionShiftsSplit(t *testing.T) {
	fp := xd1FW()
	const n = 18432
	l10, l20 := fp.SolveSplit(n)
	if l10+l20 != fp.OpsPerPhase(n) {
		t.Fatalf("split does not cover the phase: %d+%d != %d", l10, l20, fp.OpsPerPhase(n))
	}
	l1, l2 := fp.Repartition(n, Degradation{CPU: 0.25})
	if l1+l2 != fp.OpsPerPhase(n) {
		t.Fatalf("degraded split does not cover the phase: %d+%d", l1, l2)
	}
	if l1 >= l10 {
		t.Errorf("slow CPU: l1 %d -> %d, want fewer CPU tasks", l10, l1)
	}
	if l1b, _ := fp.Repartition(n, Degradation{FPGA: 0.1}); l1b <= l10 {
		t.Errorf("slow FPGA: l1 %d -> %d, want more CPU tasks", l10, l1b)
	}
}
