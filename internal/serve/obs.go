package serve

import (
	"fmt"
	"time"

	"codesign/internal/obs"
)

// Metric family help strings, shared with OPERATIONS.md's dictionary.
const (
	helpRequests = "API requests by endpoint and HTTP status code"
	helpLatency  = "API request latency in seconds by endpoint, including queueing"
)

// latencyBuckets spans 10us..84s exponentially — model solves sit in
// the lowest decades, sim solves and design sweeps in the highest.
func latencyBuckets() []float64 { return obs.ExpBuckets(1e-5, 2, 24) }

// metrics holds the serve layer's instrument handles. Families that
// mirror live state (cache size, hit rate, queue depth) register as
// obs.Func gauges reading the source of truth at scrape time, so
// nothing here needs updating on those paths.
type metrics struct {
	reg            *obs.Registry
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheCoalesced *obs.Counter
	shed           *obs.Counter
	deadline       *obs.Counter
	jobsSubmitted  *obs.Counter
	latency        map[string]*obs.Histogram
}

// newMetrics registers the service-level families on reg.
func newMetrics(reg *obs.Registry, s *Service) *metrics {
	m := &metrics{
		reg:            reg,
		cacheHits:      reg.Counter("codesignd_solve_cache_hits_total", "solve requests answered from the LRU cache"),
		cacheMisses:    reg.Counter("codesignd_solve_cache_misses_total", "solve requests that ran an evaluation"),
		cacheCoalesced: reg.Counter("codesignd_solve_cache_coalesced_total", "solve requests that shared a concurrent identical evaluation"),
		shed:           reg.Counter("codesignd_shed_total", "requests shed with 429 by admission control"),
		deadline:       reg.Counter("codesignd_deadline_total", "requests that exceeded their deadline (504)"),
		jobsSubmitted:  reg.Counter("codesignd_sweep_jobs_submitted_total", "sweep jobs accepted by POST /v1/sweep"),
		latency:        make(map[string]*obs.Histogram),
	}
	for _, ep := range []string{"solve", "design", "sweep", "sweep_status"} {
		m.latency[ep] = reg.Histogram(
			fmt.Sprintf("codesignd_request_seconds{endpoint=%q}", ep), helpLatency, latencyBuckets())
	}
	reg.Func("codesignd_solve_cache_entries", "solve cache resident entries",
		func() float64 { return float64(s.solves.Len()) })
	reg.Func("codesignd_solve_cache_evictions", "solve cache LRU evictions since start",
		func() float64 { return float64(s.solves.Stats().Evictions) })
	reg.Func("codesignd_solve_cache_hit_rate", "solve cache hits / lookups since start",
		func() float64 { return s.solves.Stats().HitRate() })
	reg.Func("codesignd_memo_place_hit_rate", "shared evaluator place-and-route memo hit rate",
		func() float64 { return memoRate(s.eval.Stats().PlaceLookups, s.eval.Stats().PlaceSolves) })
	reg.Func("codesignd_memo_partition_hit_rate", "shared evaluator partition-solve memo hit rate",
		func() float64 { return memoRate(s.eval.Stats().PartitionLookups, s.eval.Stats().PartitionSolves) })
	reg.Func("codesignd_sweep_jobs_running", "sweep jobs currently evaluating",
		func() float64 {
			s.jobs.mu.Lock()
			defer s.jobs.mu.Unlock()
			return float64(s.jobs.running)
		})
	return m
}

// memoRate turns (lookups, solves) memo counters into a hit rate.
func memoRate(lookups, solves int) float64 {
	if lookups == 0 {
		return 0
	}
	return float64(lookups-solves) / float64(lookups)
}

// request records one finished API request: the per-endpoint/status
// counter and the per-endpoint latency histogram.
func (m *metrics) request(endpoint string, code int, elapsed time.Duration) {
	m.reg.Counter(fmt.Sprintf("codesignd_requests_total{endpoint=%q,code=\"%d\"}", endpoint, code), helpRequests).Inc()
	if h, ok := m.latency[endpoint]; ok {
		h.Observe(elapsed.Seconds())
	}
}
