package exper

import (
	"context"
	"fmt"

	"codesign/internal/sweep"
)

// DesignSpace regenerates the paper's Section 4.5 design selection for
// LU on the XD1: a sweep over the PE-array width shows why the
// published design point — the largest array the XC2VP50 carries,
// k = 8 PEs (Of = 16 flops/cycle) at the ~130 MHz placed clock — is
// Pareto-optimal and highest-throughput, while larger arrays fail
// placement. The narrative is regenerated from the model each run, not
// asserted.
func DesignSpace() (*Table, error) {
	g := sweep.Grid{
		Apps:     []string{"lu"},
		Machines: []string{"xd1"},
		// PE counts that divide the paper's block size b=3000; 10 and
		// 12 exceed the device to show the feasibility edge.
		PEs: []int{1, 2, 3, 4, 5, 6, 8, 10, 12},
	}
	res, err := sweep.Run(context.Background(), g, sweep.Options{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "designspace",
		Title:  "LU design-space sweep on the XD1: PE-array width vs throughput (Sec. 4.5)",
		Header: []string{"k", "Of", "Ff_MHz", "slices", "bf", "l", "GFLOPS", "binding", "pareto"},
		Notes: []string{
			"Of = 2k flops per FPGA cycle; slices from the pseudo place-and-route on the XC2VP50 (23616 available)",
		},
	}
	for i, o := range res.Outcomes {
		pt := res.Points[i]
		if !o.OK {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(pt.PEs), fmt.Sprint(2 * pt.PEs), "-", "-", "-", "-", "-",
				"infeasible: " + o.Err, "no",
			})
			continue
		}
		pareto := "no"
		if o.Pareto {
			pareto = "yes"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(o.K), fmt.Sprint(o.Of), f2(o.FfMHz), fmt.Sprint(o.Slices),
			fmt.Sprint(o.BF), fmt.Sprint(o.L), f3(o.GFLOPS), o.Binding, pareto,
		})
	}
	if best := res.Best(); best >= 0 {
		o := res.Outcomes[best]
		t.Notes = append(t.Notes, fmt.Sprintf(
			"selected design: k=%d (Of=%d) at %.2f MHz — the paper's published XD1 matmul core",
			o.K, o.Of, o.FfMHz))
	}
	return t, nil
}
