package analysis

import (
	"fmt"
	"io"
)

// Resilience summarizes a faulted run against its references: the
// nominal (fault-free) run and, when available, the oracle run in which
// the detector repartitions against the configured ground truth
// immediately. The gap between faulted and oracle makespans is the cost
// of detection latency — what a perfect detector would claw back.
type Resilience struct {
	// BaselineSeconds is the fault-free makespan.
	BaselineSeconds float64
	// FaultedSeconds is the makespan with faults and observed-telemetry
	// detection.
	FaultedSeconds float64
	// OracleSeconds is the makespan with faults and oracle detection;
	// 0 when no oracle run was performed.
	OracleSeconds float64
	// RepartitionTimes are the virtual times the faulted run re-solved
	// its partition, in order.
	RepartitionTimes []float64
	// DeadNodes lists the ranks lost to kill faults.
	DeadNodes []int
	// FaultEvents is the number of expanded fault events injected.
	FaultEvents int
}

// Repartitions returns how many times the faulted run re-solved its
// partition.
func (r *Resilience) Repartitions() int { return len(r.RepartitionTimes) }

// MakespanInflation is the fractional slowdown of the faulted run over
// the fault-free baseline (0.25 = 25% slower). Zero when the baseline
// is missing or non-positive.
func (r *Resilience) MakespanInflation() float64 {
	if r.BaselineSeconds <= 0 {
		return 0
	}
	return r.FaultedSeconds/r.BaselineSeconds - 1
}

// OracleInflation is the fractional slowdown of the oracle run over the
// fault-free baseline — the unavoidable cost of the faults themselves,
// with detection latency removed. Zero when either reference is missing.
func (r *Resilience) OracleInflation() float64 {
	if r.BaselineSeconds <= 0 || r.OracleSeconds <= 0 {
		return 0
	}
	return r.OracleSeconds/r.BaselineSeconds - 1
}

// RecoveryLag is the makespan the observed-telemetry detector left on
// the table relative to the oracle, in seconds. Zero when no oracle run
// was performed.
func (r *Resilience) RecoveryLag() float64 {
	if r.OracleSeconds <= 0 {
		return 0
	}
	return r.FaultedSeconds - r.OracleSeconds
}

// WriteReport renders the resilience summary the -faults flag prints.
func (r *Resilience) WriteReport(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("resilience (%d fault events)\n", r.FaultEvents); err != nil {
		return err
	}
	if err := p("  %-22s %12.6g s\n", "nominal makespan", r.BaselineSeconds); err != nil {
		return err
	}
	if err := p("  %-22s %12.6g s  (+%.1f%%)\n", "faulted makespan",
		r.FaultedSeconds, 100*r.MakespanInflation()); err != nil {
		return err
	}
	if r.OracleSeconds > 0 {
		if err := p("  %-22s %12.6g s  (+%.1f%%)\n", "oracle makespan",
			r.OracleSeconds, 100*r.OracleInflation()); err != nil {
			return err
		}
		if err := p("  %-22s %12.6g s\n", "recovery lag", r.RecoveryLag()); err != nil {
			return err
		}
	}
	if err := p("  %-22s %12d\n", "repartitions", r.Repartitions()); err != nil {
		return err
	}
	for i, t := range r.RepartitionTimes {
		if err := p("    repartition %-8d %12.6g s\n", i+1, t); err != nil {
			return err
		}
	}
	if len(r.DeadNodes) > 0 {
		if err := p("  %-22s %v\n", "dead nodes", r.DeadNodes); err != nil {
			return err
		}
	}
	return nil
}
