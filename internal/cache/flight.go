package cache

import (
	"context"
	"sync"
)

// call is one in-flight load shared by a leader and any followers.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Flight deduplicates concurrent loads: while one goroutine (the
// leader) computes the value for a key, other goroutines asking for
// the same key (followers) wait for the leader's result instead of
// computing their own. The zero value is not usable; construct with
// NewFlight. Unlike golang.org/x/sync/singleflight, waiting is
// context-aware: a follower whose context expires stops waiting and
// returns the context error while the leader's compute continues for
// any remaining waiters.
type Flight[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]
}

// NewFlight returns an empty single-flight group.
func NewFlight[K comparable, V any]() *Flight[K, V] {
	return &Flight[K, V]{calls: make(map[K]*call[V])}
}

// Do returns the result of load for k, coalescing concurrent calls:
// exactly one load runs per key at a time, and every caller that
// stayed until it finished gets its result. The second result reports
// whether this caller was a follower (shared someone else's load).
// The leader always runs load to completion regardless of ctx — the
// loads cached here are not cancellable mid-solve — but followers
// honor ctx while waiting.
func (f *Flight[K, V]) Do(ctx context.Context, k K, load func() (V, error)) (V, bool, error) {
	f.mu.Lock()
	if c, ok := f.calls[k]; ok {
		f.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	f.calls[k] = c
	f.mu.Unlock()

	c.val, c.err = load()
	f.mu.Lock()
	delete(f.calls, k)
	f.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// Source says how a Loading lookup was satisfied.
type Source int

// The lookup sources, ordered from cheapest to most expensive.
const (
	// SourceHit means the value was already cached.
	SourceHit Source = iota
	// SourceShared means the caller coalesced onto another caller's
	// in-flight load.
	SourceShared
	// SourceComputed means this caller ran the load itself.
	SourceComputed
)

// String names the source ("cache", "coalesced", "computed").
func (s Source) String() string {
	switch s {
	case SourceHit:
		return "cache"
	case SourceShared:
		return "coalesced"
	default:
		return "computed"
	}
}

// Loading composes an LRU with a Flight: the read-through solve cache
// of the serve layer. Lookups hit the LRU first; misses coalesce onto
// a single load per key, and successful loads populate the cache.
// Distinct keys load in parallel (the LRU lock is never held during a
// load). Failed loads are not cached.
type Loading[K comparable, V any] struct {
	lru    *LRU[K, V]
	flight *Flight[K, V]
}

// NewLoading returns a read-through cache bounded to bound entries
// (bound <= 0 = unbounded).
func NewLoading[K comparable, V any](bound int) *Loading[K, V] {
	return &Loading[K, V]{lru: NewLRU[K, V](bound), flight: NewFlight[K, V]()}
}

// Do returns the value for k, loading it at most once across
// concurrent callers. The Source reports whether the value came from
// the cache, from a coalesced in-flight load, or from a load this
// caller ran. ctx bounds a follower's wait (the leader's load itself
// is not cancellable).
func (l *Loading[K, V]) Do(ctx context.Context, k K, load func() (V, error)) (V, Source, error) {
	if v, ok := l.lru.Get(k); ok {
		return v, SourceHit, nil
	}
	v, shared, err := l.flight.Do(ctx, k, func() (V, error) {
		v, err := load()
		if err == nil {
			l.lru.Put(k, v)
		}
		return v, err
	})
	if shared {
		return v, SourceShared, err
	}
	return v, SourceComputed, err
}

// Len returns the number of cached entries.
func (l *Loading[K, V]) Len() int { return l.lru.Len() }

// Dump snapshots the underlying LRU (most recently used first); see
// LRU.Dump.
func (l *Loading[K, V]) Dump() []Entry[K, V] { return l.lru.Dump() }

// Seed restores a Dump-format snapshot into the underlying LRU; see
// LRU.Seed. In-flight loads are unaffected.
func (l *Loading[K, V]) Seed(entries []Entry[K, V]) { l.lru.Seed(entries) }

// Stats returns the underlying LRU's counters. A SourceShared lookup
// counts as one miss (the initial Get) — the coalesced load is the
// flight's business, not the cache's.
func (l *Loading[K, V]) Stats() Stats { return l.lru.Stats() }
