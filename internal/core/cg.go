package core

import (
	"fmt"
	"math"
	"math/rand"

	"codesign/internal/cpu"
	"codesign/internal/fpga"
	"codesign/internal/machine"
	"codesign/internal/matrix"
	"codesign/internal/model"
	"codesign/internal/sim"
)

// CGConfig configures a hybrid conjugate-gradient solve — the related
// work the paper contrasts itself with (Morris et al. [9], an
// FPGA-augmented CG on an SRC reconfigurable computer) rebuilt with
// this repository's co-design model. The operator apply (matrix-vector
// product) is split row-wise between processor and FPGA per Equation
// (1); the matrix's FPGA share is loaded into on-board SRAM once and
// streamed from there every iteration, while the O(n) vector kernels
// stay on the processor. Single node, as in [9].
type CGConfig struct {
	// Machine is the system; zero value means one Cray XD1 chassis
	// (only node 0 is used).
	Machine machine.Config
	// N is the system size.
	N int
	// Density selects the operator: 0 means dense SPD; otherwise a
	// sparse SPD matrix with the given off-diagonal density.
	Density float64
	// Tol is the relative residual tolerance (default 1e-10).
	Tol float64
	// MaxIter caps the iteration count (default n).
	MaxIter int
	// PEs is the MV design size; 0 means the largest that fits.
	PEs int
	// RowsFPGA is the FPGA's row share; -1 solves the Equation (1)
	// balance (with the SRAM capacity clamp).
	RowsFPGA int
	// Mode selects hybrid or a baseline.
	Mode Mode
	// Seed drives input generation. CG is always functional: the
	// iteration count is a property of the data.
	Seed int64
	// Observer, when non-nil, receives the structured telemetry stream
	// (raw events and typed spans; see internal/trace.Recorder).
	Observer sim.Observer
	// Telemetry attaches a span digest — utilization, bytes moved, and
	// the Tp/Tf/Tmem/Tcomm overlap decomposition — to the result.
	Telemetry bool
}

// CGRunResult reports a hybrid CG solve.
type CGRunResult struct {
	Result
	RowsFPGA, RowsCPU, K int
	Iterations           int
	Converged            bool
	Residual             float64
	// LoadSeconds is the one-time cost of staging the FPGA's matrix
	// share into SRAM over the DRAM path.
	LoadSeconds float64
}

// RunCG builds the machine, solves the row split, runs the solve on the
// simulated node and verifies the iterates against the sequential
// reference.
func RunCG(cfg CGConfig) (*CGRunResult, error) {
	if cfg.Machine.Nodes == 0 {
		cfg.Machine = machine.XD1()
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("core: cg needs n > 0")
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-10
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = cfg.N
	}
	sys, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	rec := setupTelemetry(sys.Eng, cfg.Telemetry, cfg.Observer)
	k := cfg.PEs
	if k == 0 {
		k = fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewMV(k) }, cfg.Machine.Device)
	}
	design := fpga.NewMV(k)
	if err := sys.InstallDesign(design); err != nil {
		return nil, err
	}
	node := sys.Nodes[0]
	accel := node.Accel
	proc := node.Proc

	// Build the operator and the reference solve.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var op matrix.MulVec
	var rowWords func(lo, hi int) int // matrix words in rows [lo,hi)
	if cfg.Density > 0 {
		sp := matrix.RandomSparseSPD(cfg.N, cfg.Density, rng)
		op = sp
		// CSR streams value+column index per non-zero (~1.5 words,
		// rounded up so the SRAM clamp and DMA byte counts never
		// under-charge odd nonzero counts).
		rowWords = func(lo, hi int) int { return model.CSRStreamWords(sp.RangeNNZ(lo, hi)) }
	} else {
		a := matrix.RandomSPD(cfg.N, rng)
		op = matrix.DenseOp{A: a}
		rowWords = func(lo, hi int) int { return (hi - lo) * cfg.N }
	}
	b := make([]float64, cfg.N)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	ref := matrix.CG(op, b, cfg.Tol, cfg.MaxIter)

	// Row split per Equation (1), via the shared MV cost model in its
	// resident arrangement: the FPGA's matrix share is loaded into SRAM
	// once over Bd, so the per-apply balance has no Tmem term and the
	// FPGA word rate is the slower of the MAC array and the SRAM port.
	sramBW := cfg.Machine.SRAMBandwidth
	if sramBW <= 0 {
		sramBW = 9.6e9
	}
	totalWords := rowWords(0, cfg.N)
	mvRate := proc.Rate(cpu.DGEMV)
	if cfg.Density > 0 {
		mvRate = proc.Rate(cpu.SpMV)
	}
	mvp := model.SpMVParams{
		N: cfg.N, K: k, Words: totalWords,
		Ff:        accel.Placed.FreqHz,
		MVRate:    mvRate,
		VecTime:   proc.Time(cpu.VectorOp, 10*float64(cfg.N)),
		Bd:        machine.EffectiveBd(cfg.Machine.RawFPGADRAMBandwidth, accel.Placed.FreqHz),
		Bs:        sramBW,
		Bw:        machine.WordBytes,
		SRAMBytes: sys.Nodes[0].SRAM.TotalBytes(),
		Resident:  true,
		Applies:   cfg.MaxIter,
	}
	fpgaPerWord := mvp.FPGAPerWord()
	cpuPerWord := mvp.CPUPerWord()

	rf := cfg.RowsFPGA
	switch cfg.Mode {
	case ProcessorOnly:
		rf = 0
	case FPGAOnly:
		rf = cfg.N
	default:
		if rf < 0 {
			rf, _ = mvp.SolvePartition()
		}
	}
	if rf < 0 || rf > cfg.N {
		return nil, fmt.Errorf("core: rowsFPGA=%d out of [0,%d]", rf, cfg.N)
	}
	// SRAM capacity clamp on the resident share.
	capWords := int(float64(sys.Nodes[0].SRAM.TotalBytes()) / machine.WordBytes)
	if rf > 0 && rowWords(0, rf) > capWords {
		for rf > 0 && rowWords(0, rf) > capWords {
			rf--
		}
	}

	fpgaWords := rowWords(0, rf)
	fpgaApply := float64(fpgaWords) * fpgaPerWord
	cpuApply := float64(rowWords(rf, cfg.N)) * cpuPerWord

	// The solve, mirroring matrix.CG step for step with the operator
	// apply split across the two resources.
	x := make([]float64, cfg.N)
	r := make([]float64, cfg.N)
	copy(r, b)
	pv := make([]float64, cfg.N)
	copy(pv, r)
	q := make([]float64, cfg.N)
	bnorm := matrix.Norm2(b)
	rr := matrix.Dot(r, r)

	res := &CGRunResult{RowsFPGA: rf, RowsCPU: cfg.N - rf, K: k}
	var loadDone float64
	sys.Eng.Go("cg.cpu", func(pr *sim.Proc) {
		// One-time SRAM load of the FPGA's matrix share over Bd.
		if rf > 0 {
			pr.SetPhase("load")
			accel.Run(pr, "cg.load", func(fp *sim.Proc) {
				fp.SetPhase("load")
				accel.Stream(fp, fpgaWords*machine.WordBytes)
			})
			pr.SetPhase("")
		}
		loadDone = pr.Now()
		if bnorm == 0 {
			res.Converged = true
			return
		}
		for it := 0; it < cfg.MaxIter; it++ {
			// q = A·p, split by rows.
			var done *sim.Signal
			if rf > 0 {
				done = accel.Launch(fmt.Sprintf("cg.mv.%d", it), func(fp *sim.Proc) {
					fp.SetPhase("apply")
					accel.Compute(fp, fpgaApply*accel.Placed.FreqHz)
				})
			}
			if rf < cfg.N {
				pr.SetPhase("apply")
				node.ChargeCPU(pr, sim.CatCompute, 0, cpuApply)
				pr.SetPhase("")
			}
			applyOpSplit(op, pv, q, rf)
			if done != nil {
				accel.AwaitDone(pr, done)
			}
			// Vector kernels on the processor.
			node.ComputeCPU(pr, cpu.VectorOp, 10*float64(cfg.N))
			pq := matrix.Dot(pv, q)
			if pq <= 0 {
				// Breakdown on a non-positive curvature; matrix.CG stops
				// at the same point, keeping the runs in lockstep.
				break
			}
			alpha := rr / pq
			matrix.Axpy(alpha, pv, x)
			matrix.Axpy(-alpha, q, r)
			rrNew := matrix.Dot(r, r)
			res.Iterations = it + 1
			if math.Sqrt(rrNew) <= cfg.Tol*bnorm {
				res.Converged = true
				rr = rrNew
				break
			}
			beta := rrNew / rr
			for i := range pv {
				pv[i] = r[i] + beta*pv[i]
			}
			rr = rrNew
		}
		res.Residual = math.Sqrt(rr)
	})

	end, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("core: cg simulation: %w", err)
	}

	// Verify against the sequential reference: identical operations in
	// identical order, so the iterates are bit-identical.
	var maxDiff float64
	for i := range x {
		if d := math.Abs(x[i] - ref.X[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if res.Iterations != ref.Iterations || res.Converged != ref.Converged {
		return nil, fmt.Errorf("core: cg diverged from reference: %d/%v vs %d/%v",
			res.Iterations, res.Converged, ref.Iterations, ref.Converged)
	}

	applyFlops := 2 * float64(totalWords)
	if cfg.Density > 0 {
		applyFlops = 2 * float64(op.(*matrix.CSR).NNZ())
	}
	flops := float64(res.Iterations) * (applyFlops + 10*float64(cfg.N))
	res.Result = Result{
		App: "cg", Mode: cfg.Mode, N: cfg.N, B: 0,
		Seconds: end, Flops: flops, GFLOPS: flops / end / 1e9,
		NetworkBytes:  sys.Fab.Bytes(),
		Coordinations: collectCoordinations(sys),
		MaxResidual:   maxDiff,
		Checked:       true,
	}
	res.CPUBusy, res.FPGABusy = collectBusy(sys)
	res.LoadSeconds = loadDone
	summarizeTelemetry(rec, end, &res.Result)
	return res, nil
}

// applyOpSplit computes q = A·p with rows [0,rf) notionally on the FPGA
// and the rest on the processor — the arithmetic is identical, so one
// pass through the row-partitioned kernels suffices.
func applyOpSplit(op matrix.MulVec, p, q []float64, rf int) {
	switch o := op.(type) {
	case matrix.DenseOp:
		matrix.MatVecRange(o.A, p, q, 0, rf)
		matrix.MatVecRange(o.A, p, q, rf, len(q))
	case *matrix.CSR:
		o.ApplyRange(p, q, 0, rf)
		o.ApplyRange(p, q, rf, len(q))
	default:
		op.Apply(p, q)
	}
}
