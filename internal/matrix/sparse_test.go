package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewCSRValidates(t *testing.T) {
	cases := []struct {
		name   string
		rows   int
		cols   int
		rowPtr []int
		colIdx []int
		vals   []float64
	}{
		{"negative dims", -1, 3, []int{0}, nil, nil},
		{"short rowPtr", 2, 2, []int{0, 1}, []int{0}, []float64{1}},
		{"rowPtr not starting at 0", 1, 2, []int{1, 1}, nil, nil},
		{"decreasing rowPtr", 2, 2, []int{0, 2, 1}, []int{0, 1}, []float64{1, 2}},
		{"colIdx/vals mismatch", 1, 2, []int{0, 1}, []int{0, 1}, []float64{1}},
		{"rowPtr end mismatch", 1, 2, []int{0, 2}, []int{0}, []float64{1}},
		{"column out of range", 1, 2, []int{0, 1}, []int{2}, []float64{1}},
		{"negative column", 1, 2, []int{0, 1}, []int{-1}, []float64{1}},
	}
	for _, c := range cases {
		if _, err := NewCSR(c.rows, c.cols, c.rowPtr, c.colIdx, c.vals); err == nil {
			t.Errorf("%s: NewCSR accepted invalid input", c.name)
		}
	}
	s, err := NewCSR(2, 3, []int{0, 1, 3}, []int{2, 0, 1}, []float64{5, 1, 2})
	if err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	if s.NNZ() != 3 || s.RowNNZ(0) != 1 || s.RowNNZ(1) != 2 {
		t.Fatalf("valid CSR miscounts: nnz=%d", s.NNZ())
	}
}

func TestRowNNZBoundsPanics(t *testing.T) {
	s := RandomSparse(4, 0.5, rand.New(rand.NewSource(1)))
	for _, bad := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RowNNZ(%d) did not panic", bad)
				}
			}()
			s.RowNNZ(bad)
		}()
	}
}

func TestRangeNNZBoundsPanics(t *testing.T) {
	s := RandomSparse(4, 0.5, rand.New(rand.NewSource(1)))
	for _, bad := range [][2]int{{-1, 2}, {0, 5}, {3, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RangeNNZ(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			s.RangeNNZ(bad[0], bad[1])
		}()
	}
}

// TestRandomSparseApplyRangeProperty checks, across the density range
// including the empty and dense extremes, that RandomSparse builds the
// structure the cost model assumes (exactly round(density·(n-1))
// off-diagonals plus a dominant diagonal per row) and that a row-split
// apply reproduces the full apply bit for bit — the invariant RunSpMV's
// functional check rests on.
func TestRandomSparseApplyRangeProperty(t *testing.T) {
	const n = 37
	for _, density := range []float64{0, 0.05, 0.3, 1} {
		rng := rand.New(rand.NewSource(600))
		s := RandomSparse(n, density, rng)
		perRow := int(density*float64(n-1) + 0.5)
		if s.NNZ() != n*(perRow+1) {
			t.Fatalf("density %g: nnz = %d, want %d", density, s.NNZ(), n*(perRow+1))
		}
		d := s.ToDense()
		for i := 0; i < n; i++ {
			var off float64
			for j, v := range d.Row(i) {
				if j != i {
					off += math.Abs(v)
				}
			}
			if d.At(i, i) <= off {
				t.Fatalf("density %g: row %d not diagonally dominant", density, i)
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
		}
		full := make([]float64, n)
		s.Apply(x, full)
		for _, split := range []int{0, 1, n / 2, n - 1, n} {
			got := make([]float64, n)
			s.ApplyRange(x, got, 0, split)
			s.ApplyRange(x, got, split, n)
			for i := range full {
				if got[i] != full[i] {
					t.Fatalf("density %g split %d: row %d differs", density, split, i)
				}
			}
		}
	}
}

func TestRandomSparseDeterministic(t *testing.T) {
	a := RandomSparse(50, 0.1, rand.New(rand.NewSource(7)))
	b := RandomSparse(50, 0.1, rand.New(rand.NewSource(7)))
	if !a.ToDense().Equal(b.ToDense()) {
		t.Fatal("RandomSparse differs across identical seeds")
	}
	c := RandomSparse(50, 0.1, rand.New(rand.NewSource(8)))
	if a.ToDense().Equal(c.ToDense()) {
		t.Fatal("RandomSparse identical across different seeds")
	}
}

func TestRandomSparseSPDDeterministic(t *testing.T) {
	a := RandomSparseSPD(40, 0.15, rand.New(rand.NewSource(9)))
	b := RandomSparseSPD(40, 0.15, rand.New(rand.NewSource(9)))
	if !a.ToDense().Equal(b.ToDense()) {
		t.Fatal("RandomSparseSPD differs across identical seeds")
	}
}

// TestCGBreakdownStops pins the division-by-zero guard: on an
// indefinite operator the curvature p·Ap hits zero and CG must stop
// unconverged with finite iterates instead of polluting x with NaNs.
func TestCGBreakdownStops(t *testing.T) {
	d := New(2, 2)
	d.Set(0, 0, 1)
	d.Set(1, 1, -1)
	res := CG(DenseOp{A: d}, []float64{1, 1}, 1e-12, 10)
	if res.Converged {
		t.Fatalf("CG claimed convergence on an indefinite system: %+v", res)
	}
	if res.Iterations != 0 {
		t.Fatalf("breakdown at the first step should leave 0 iterations, got %d", res.Iterations)
	}
	for i, v := range res.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("x[%d] = %v not finite", i, v)
		}
	}
}
