package trace

import (
	"strings"
	"testing"

	"codesign/internal/sim"
)

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Counter("bytes").Add(100)
	m.Counter("bytes").Add(50)
	m.Counter("bytes").Add(-5) // ignored
	if got := m.Counter("bytes").Value(); got != 150 {
		t.Fatalf("counter = %v, want 150", got)
	}
	m.Gauge("util").Set(0.5)
	m.Gauge("util").Set(0.75)
	if got := m.Gauge("util").Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}
	h := m.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	_, counts := h.Buckets()
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("bucket counts = %v", counts)
	}
	// Re-registering with different bounds keeps the original.
	if h2 := m.Histogram("lat", []float64{99}); h2 != h {
		t.Fatal("histogram identity not stable across re-registration")
	}
}

func TestMetricsWriteToDeterministic(t *testing.T) {
	build := func() string {
		m := NewMetrics()
		m.Counter("z.last").Inc()
		m.Counter("a.first").Add(2)
		m.Gauge("mid").Set(3)
		m.Histogram("h", []float64{1}).Observe(0.5)
		var b strings.Builder
		if _, err := m.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("registry output not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "counter a.first 2\n") || !strings.Contains(a, "gauge mid 3\n") {
		t.Fatalf("unexpected output:\n%s", a)
	}
	if strings.Index(a, "a.first") > strings.Index(a, "z.last") {
		t.Fatalf("counters not sorted:\n%s", a)
	}
}

func TestComputeOverlapAttribution(t *testing.T) {
	spans := []sim.SpanEvent{
		// FPGA compute [0,4], CPU compute [2,6], DMA [0,8], network [5,9], sync [8,10].
		{Category: sim.CatCompute, Proc: "fpga", Resource: "fpga0", Start: 0, End: 4},
		{Category: sim.CatCompute, Proc: "cpu", Resource: "cpu0", Start: 2, End: 6},
		{Category: sim.CatDMA, Proc: "cpu", Resource: "dram-stream", Bytes: 800, Start: 0, End: 8},
		{Category: sim.CatNetwork, Proc: "net", Resource: "egress0", Bytes: 100, Start: 5, End: 9},
		{Category: sim.CatSync, Proc: "cpu", Resource: "cpu0", Start: 8, End: 10},
	}
	o := ComputeOverlap(spans, 12)
	// Priority F > P > M > C > S > idle:
	// [0,4] Tf, [4,6] Tp, [6,8] Tmem, [8,9] Tcomm, [9,10] sync, [10,12] idle.
	check := func(name string, got, want float64) {
		t.Helper()
		if got != want {
			t.Fatalf("%s = %v, want %v (overlap %+v)", name, got, want, o)
		}
	}
	check("Tf", o.Tf, 4)
	check("Tp", o.Tp, 2)
	check("Tmem", o.Tmem, 2)
	check("Tcomm", o.Tcomm, 1)
	check("Sync", o.Sync, 1)
	check("Idle", o.Idle, 2)
	check("BusyTf", o.BusyTf, 4)
	check("BusyTmem", o.BusyTmem, 8)
	check("components+sync+idle", o.Sum()+o.Sync+o.Idle, 12)
	// Exposed mem+comm = 3 of busy 12 => efficiency 0.75.
	check("Efficiency", o.Efficiency(), 0.75)
}

func TestSummarizeBytesAndStats(t *testing.T) {
	r := NewRecorder()
	r.Span(sim.SpanEvent{Category: sim.CatDMA, Proc: "cpu0", Resource: "dram-stream", Bytes: 1000, Start: 0, End: 1})
	r.Span(sim.SpanEvent{Category: sim.CatNetwork, Proc: "net", Resource: "egress0", Bytes: 300, Start: 0, End: 2})
	r.Span(sim.SpanEvent{Category: sim.CatSync, Proc: "cpu0", Resource: "dram-stream", Start: 1, End: 3})
	s := r.Summarize(4)
	if s.DRAMBytes != 1000 || s.NetworkBytes != 300 {
		t.Fatalf("bytes = dram %d net %d", s.DRAMBytes, s.NetworkBytes)
	}
	if len(s.Procs) != 2 || s.Procs[0].Name != "cpu0" {
		t.Fatalf("procs = %+v", s.Procs)
	}
	if s.Procs[0].Busy != 1 || s.Procs[0].Waiting != 2 {
		t.Fatalf("cpu0 stats = %+v", s.Procs[0])
	}
	var dram *ResourceStats
	for i := range s.Resources {
		if s.Resources[i].Name == "dram-stream" {
			dram = &s.Resources[i]
		}
	}
	if dram == nil || dram.Busy != 1 || dram.Contention != 2 {
		t.Fatalf("dram-stream stats = %+v", dram)
	}
	var b strings.Builder
	if err := s.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "overlap report") {
		t.Fatalf("report missing header:\n%s", b.String())
	}
	m := NewMetrics()
	s.Fill(m)
	if m.Counter("bytes.dram").Value() != 1000 {
		t.Fatal("Fill did not propagate bytes.dram")
	}
}

func TestWriteSpansCSV(t *testing.T) {
	r := NewRecorder()
	r.Span(sim.SpanEvent{Category: sim.CatCompute, Proc: "p,0", Resource: "cpu0", Phase: "panel", Start: 0, End: 0.5})
	var b strings.Builder
	if err := r.WriteSpansCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "start_s,end_s,category,device,process,resource,phase,bytes\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, `"p,0"`) {
		t.Fatalf("comma in process name not quoted:\n%s", out)
	}
}

func TestWritePerfettoShape(t *testing.T) {
	r := NewRecorder()
	r.Span(sim.SpanEvent{Category: sim.CatCompute, Proc: "cpu0", Resource: "cpu0", Start: 0, End: 1e-3})
	r.Span(sim.SpanEvent{Category: sim.CatDMA, Proc: "fpga0", Resource: "dram-stream", Bytes: 64, Start: 1e-3, End: 2e-3})
	var b strings.Builder
	if err := r.WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`{"traceEvents":[`,
		`"ph":"M"`, `"thread_name"`, // track names
		`"ph":"X"`, `"dur":1000`, // 1 ms = 1000 µs
		`"bytes":64`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("perfetto output missing %q:\n%s", want, out)
		}
	}
}
