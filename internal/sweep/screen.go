package sweep

import (
	"context"
	"fmt"
)

// DefaultRefineMargin is the dominance margin RunScreened uses when
// ScreenOptions.RefineMargin is zero: a screened point survives to the
// refinement pass unless some other point beats it by more than 10% in
// throughput while using no more FPGA area or DRAM bandwidth. The
// closed-form model's throughput error against full simulation stays
// well under half that on the calibration grids, so the band absorbs
// model error with room to spare.
const DefaultRefineMargin = 0.1

// ScreenOptions tunes a two-stage RunScreened sweep. The embedded
// Options applies to both passes; OnResult fires only for refined
// (final) outcomes, never for the provisional model screen.
type ScreenOptions struct {
	Options
	// RefineMargin is the relative throughput slack the screening pass
	// grants before pruning a point: point i is discarded only if some
	// point j uses no more slices and no more DRAM bandwidth and still
	// delivers at least (1+RefineMargin)x i's modeled GFLOPS. Zero
	// selects DefaultRefineMargin; negative is an error. Larger margins
	// refine more points (slower, safer against model error); margin
	// -> infinity degenerates to a full sweep.
	RefineMargin float64
}

// ScreenSummary reports what the screening pass of a RunScreened sweep
// kept and why, so a caller can judge how aggressive the pruning was.
type ScreenSummary struct {
	// Points is the full grid size the model screen evaluated.
	Points int `json:"points"`
	// Infeasible counts screened points that failed feasibility; they
	// can never join the frontier and are always pruned.
	Infeasible int `json:"infeasible"`
	// Frontier counts points on the screening pass's model-mode Pareto
	// frontier — always refined.
	Frontier int `json:"frontier"`
	// Band counts additional points kept by the dominance margin: not
	// on the model frontier, but within Margin of it in throughput at
	// no-worse cost.
	Band int `json:"band"`
	// Neighbors counts additional points kept because they sit one
	// grid step (along any single axis) from a frontier point —
	// insurance against the model misranking adjacent coordinates.
	Neighbors int `json:"neighbors"`
	// Candidates is the refined subset size: Frontier + Band +
	// Neighbors.
	Candidates int `json:"candidates"`
	// Margin echoes the effective RefineMargin.
	Margin float64 `json:"margin"`
}

// RunScreened evaluates the grid in two stages: a screening pass runs
// every point under the closed-form model (cheap, microseconds per
// point), then only the candidates that could plausibly reach the true
// Pareto frontier — the model frontier, a configurable dominance-margin
// band around it, and the frontier's single-step grid neighbors — are
// re-evaluated under the grid's own method. For sim-mode grids this
// typically cuts wall-clock time by an order of magnitude while
// reproducing the full-sweep frontier exactly whenever the model's
// ranking error stays inside the margin.
//
// The returned Result covers only the refined subset: Points keeps the
// original full-grid Index values, but ParetoIndices and Best index
// positions within the subset, and Sensitivity aggregates over the
// subset only. Result.Screen summarizes the pruning. Both passes share
// one evaluator, so placement and partition solves from the screen are
// reused during refinement; Stats reports the combined traffic.
//
// For model-mode grids the refinement re-runs the candidates under the
// same model — the result is then just the frontier neighborhood of a
// plain Run, at full-grid screening cost.
func RunScreened(ctx context.Context, g Grid, opts ScreenOptions) (*Result, error) {
	if opts.RefineMargin < 0 {
		return nil, fmt.Errorf("sweep: refine margin must be >= 0, got %g", opts.RefineMargin)
	}
	margin := opts.RefineMargin
	if margin == 0 {
		margin = DefaultRefineMargin
	}
	norm, err := g.normalized()
	if err != nil {
		return nil, err
	}
	points := norm.Points()
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	ev := newEvaluator(0)
	if opts.Evaluator != nil {
		ev = opts.Evaluator.ev
	}
	before := ev.statsDelta(Stats{})

	// Stage 1: screen the full grid under the closed-form model. The
	// provisional outcomes stay internal — OnResult only ever sees
	// final, refined evaluations.
	sopts := opts.Options
	sopts.OnResult = nil
	sopts.phase = "screen"
	screened, err := evaluatePoints(ctx, MethodModel, points, sopts, ev, before)
	if err != nil {
		return nil, err
	}
	markPareto(screened)
	cand, summary := selectCandidates(norm, screened, margin)

	// Stage 2: refine the candidates under the grid's own method. The
	// Pareto flags set on the refined outcomes replace the provisional
	// screening verdicts.
	sub := make([]Point, len(cand))
	for i, idx := range cand {
		sub[i] = points[idx]
	}
	ropts := opts.Options
	ropts.phase = "refine"
	refined, err := evaluatePoints(ctx, norm.Method, sub, ropts, ev, before)
	if err != nil {
		return nil, err
	}
	res := reduce(norm, sub, refined, ev.statsDelta(before))
	res.Screen = &summary
	return res, nil
}

// selectCandidates picks the screened indices worth refining: the model
// frontier, every feasible point within the dominance margin of it, and
// the frontier's single-step grid neighbors. Indices come back in ascending
// (enumeration) order, so the refined subset preserves determinism.
// markPareto must already have run on outcomes.
func selectCandidates(norm Grid, outcomes []Outcome, margin float64) ([]int, ScreenSummary) {
	sum := ScreenSummary{Points: len(outcomes), Margin: margin}
	keep := make([]bool, len(outcomes))
	var frontier []int
	for i := range outcomes {
		switch {
		case !outcomes[i].OK:
			sum.Infeasible++
		case outcomes[i].Pareto:
			keep[i] = true
			frontier = append(frontier, i)
			sum.Frontier++
		}
	}

	// Margin band. A point is pruned only when some frontier point
	// strongly dominates it: no more slices, no more bandwidth, and at
	// least (1+margin)x its throughput. Checking frontier points alone
	// is sufficient — any strong dominator is itself weakly dominated
	// by a frontier point, which then also strongly dominates.
	for i := range outcomes {
		if keep[i] || !outcomes[i].OK {
			continue
		}
		pruned := false
		for _, f := range frontier {
			if outcomes[f].Slices <= outcomes[i].Slices &&
				outcomes[f].BdGBps <= outcomes[i].BdGBps &&
				outcomes[f].GFLOPS >= outcomes[i].GFLOPS*(1+margin) {
				pruned = true
				break
			}
		}
		if !pruned {
			keep[i] = true
			sum.Band++
		}
	}

	// Single-step neighbors of every frontier point, along each axis of
	// the enumeration. Strides follow the Points() nesting order (apps
	// outermost ... l innermost), so index +/- stride moves exactly one
	// step along one axis. Band points get no neighbor expansion: a
	// band point's neighbor that the margin already pruned sits more
	// than Margin below the frontier in modeled throughput, so even
	// with full model error it cannot reach the true frontier.
	dims := []int{
		len(norm.Apps), len(norm.Machines), len(norm.Modes),
		len(norm.Nodes), len(norm.N), len(norm.Density), len(norm.B),
		len(norm.PEs), len(norm.BF), len(norm.L),
	}
	strides := make([]int, len(dims))
	s := 1
	for a := len(dims) - 1; a >= 0; a-- {
		strides[a] = s
		s *= dims[a]
	}
	for _, i := range frontier {
		for a := range dims {
			pos := (i / strides[a]) % dims[a]
			for _, nb := range [2]int{i - strides[a], i + strides[a]} {
				if nb < i && pos == 0 || nb > i && pos == dims[a]-1 {
					continue // would wrap around the axis edge
				}
				if !keep[nb] && outcomes[nb].OK {
					keep[nb] = true
					sum.Neighbors++
				}
			}
		}
	}

	cand := make([]int, 0, sum.Frontier+sum.Band+sum.Neighbors)
	for i := range keep {
		if keep[i] {
			cand = append(cand, i)
		}
	}
	sum.Candidates = len(cand)
	return cand, sum
}
