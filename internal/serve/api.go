package serve

import (
	"fmt"
	"net/http"

	"codesign/internal/sweep"
)

// Machine-readable error codes carried in the error envelope. Each
// maps to exactly one HTTP status so clients can switch on either.
const (
	// CodeBadRequest (400) marks a malformed or invalid request body,
	// unknown field, or out-of-range parameter.
	CodeBadRequest = "bad_request"
	// CodeNotFound (404) marks an unknown job id or API path.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed (405) marks the wrong HTTP method for a
	// known path; the Allow header names the right one.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeOverloaded (429) marks load shedding: the admission queue or
	// the running-jobs limit is full. The response carries a
	// Retry-After header.
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded (504) marks a request whose deadline
	// expired before its evaluation finished. The evaluation keeps
	// running and populates the cache, so a retry is usually a hit.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeInternal (500) marks an unexpected server-side failure.
	CodeInternal = "internal"
)

// Error is a typed serve-layer failure: the HTTP status it maps to, a
// machine-readable code, and a human-readable message. It is both the
// wire format (inside ErrorResponse) and the error value Service
// methods return for request-level failures.
type Error struct {
	// Status is the HTTP status the error maps to (not serialized; the
	// response status line already carries it).
	Status int `json:"-"`
	// Code is the machine-readable error code (one of the Code*
	// constants).
	Code string `json:"code"`
	// Message describes the failure for humans.
	Message string `json:"message"`
}

// Error formats the failure as "code: message".
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// ErrorResponse is the JSON envelope of every non-2xx API response:
// {"error": {"code": "...", "message": "..."}}.
type ErrorResponse struct {
	// Error carries the code and message.
	Error *Error `json:"error"`
}

// badRequest builds a 400 Error.
func badRequest(format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Code: CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

// SolveRequest is the body of POST /v1/solve: one design-space
// coordinate. Every field is optional; the zero request is the
// paper's headline configuration (hybrid LU on one XD1 chassis at
// n=30000, b=3000, solved partition). Zero in Nodes/N/B/PEs means
// "the preset or app default"; a null/absent BF or L means "solve the
// model equation" (the -1 sentinel of internal/sweep).
type SolveRequest struct {
	// App is the application: "lu" (default), "fw", "mm" or "spmv".
	App string `json:"app,omitempty"`
	// Machine is the machine preset: "xd1" (default), "xt3", "src6",
	// "rasc".
	Machine string `json:"machine,omitempty"`
	// Mode is the design variant: "hybrid" (default),
	// "processor-only", "fpga-only".
	Mode string `json:"mode,omitempty"`
	// Nodes overrides the preset node count p (0 = preset default).
	Nodes int `json:"nodes,omitempty"`
	// N is the problem size (0 = the app's paper size).
	N int `json:"n,omitempty"`
	// Density is the spmv operator nonzero density in [0,1] (0 = dense
	// operator; ignored by the dense apps).
	Density float64 `json:"density,omitempty"`
	// B is the block size (0 = the app's paper block size).
	B int `json:"b,omitempty"`
	// PEs is the FPGA PE-array size (0 = largest that fits).
	PEs int `json:"pes,omitempty"`
	// BF is the FPGA row share for LU/MM stripes; null or -1 solves
	// Equation 4 / Equation 1.
	BF *int `json:"bf,omitempty"`
	// L is the LU pipeline depth or FW per-phase processor share l1;
	// null or -1 solves Equation 5 / Equation 6.
	L *int `json:"l,omitempty"`
	// Method selects the evaluator: "model" (default, microseconds per
	// query) or "sim" (full discrete-event simulation, seconds —
	// budget the request deadline accordingly).
	Method string `json:"method,omitempty"`
}

// normalized returns the request with defaults applied (named fields
// filled, BF/L pointers resolved to concrete sentinel values) or a
// 400 Error for invalid values. The normalized form is what key(),
// point() and the response echo operate on.
func (q SolveRequest) normalized() (SolveRequest, *Error) {
	if q.App == "" {
		q.App = "lu"
	}
	if q.Machine == "" {
		q.Machine = "xd1"
	}
	if q.Mode == "" {
		q.Mode = "hybrid"
	}
	if q.Method == "" {
		q.Method = sweep.MethodModel
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"nodes", q.Nodes}, {"n", q.N}, {"b", q.B}, {"pes", q.PEs}} {
		if f.v < 0 {
			return q, badRequest("%s must be >= 0 (0 = default), got %d", f.name, f.v)
		}
	}
	bf, l := -1, -1
	if q.BF != nil {
		bf = *q.BF
	}
	if q.L != nil {
		l = *q.L
	}
	if bf < -1 {
		return q, badRequest("bf must be >= -1 (-1 or null = solve Eq. 4 / Eq. 1), got %d", bf)
	}
	if l < -1 {
		return q, badRequest("l must be >= -1 (-1 or null = solve Eq. 5 / Eq. 6), got %d", l)
	}
	q.BF, q.L = &bf, &l
	// One-value grid validation covers app, machine, mode and method
	// with internal/sweep's own error messages.
	g := sweep.Grid{Apps: []string{q.App}, Machines: []string{q.Machine}, Modes: []string{q.Mode},
		Density: []float64{q.Density}, Method: q.Method}
	if err := g.Validate(); err != nil {
		return q, badRequest("%v", err)
	}
	return q, nil
}

// key returns the canonical solve-cache key of a normalized request:
// every field in fixed order, sentinels preserved. Two requests that
// spell the same defaults differently (n=0 vs n absent) share a key;
// a sentinel and its resolved value (n=0 vs n=30000 for LU) do not —
// both are deterministic, the second solve just costs one more cache
// entry.
func (q SolveRequest) key() string {
	return fmt.Sprintf("%s|%s|%s|%s|%d|%d|%g|%d|%d|%d|%d",
		q.App, q.Machine, q.Mode, q.Method, q.Nodes, q.N, q.Density, q.B, q.PEs, *q.BF, *q.L)
}

// point converts a normalized request to the sweep coordinate it
// evaluates.
func (q SolveRequest) point() sweep.Point {
	return sweep.Point{
		App: q.App, Machine: q.Machine, Mode: q.Mode,
		Nodes: q.Nodes, N: q.N, Density: q.Density, B: q.B, PEs: q.PEs, BF: *q.BF, L: *q.L,
	}
}

// SolveResponse is the body of a successful POST /v1/solve: the
// evaluated coordinate (sentinels preserved; the outcome records the
// resolved partition), its outcome, and how the lookup was satisfied.
// An infeasible point is still a 200: outcome.ok is false and
// outcome.err says why — infeasibility is an answer, not a failure.
type SolveResponse struct {
	// Point echoes the normalized request as a sweep coordinate.
	Point sweep.Point `json:"point"`
	// Outcome is the evaluation (model prediction or simulation
	// measurement, resolved partition, resource usage, binding).
	Outcome sweep.Outcome `json:"outcome"`
	// Source says how the lookup was satisfied: "cache" (LRU hit),
	// "coalesced" (shared a concurrent identical request's
	// evaluation), or "computed" (this request ran the evaluation).
	Source string `json:"source"`
}

// DesignRequest is the body of POST /v1/design: a declarative grid to
// search synchronously for the best designs. Grids are capped at
// Config.MaxDesignPoints; larger searches belong on POST /v1/sweep.
type DesignRequest struct {
	// Grid is the design space to search (internal/sweep's declarative
	// grid; empty axes take paper defaults).
	Grid sweep.Grid `json:"grid"`
	// Top is how many best designs to return, ranked by GFLOPS
	// descending (default 1, capped at 100).
	Top int `json:"top,omitempty"`
	// Workers bounds the evaluation pool (0 = one per CPU).
	Workers int `json:"workers,omitempty"`
	// Screen enables the two-stage pipeline: model-screen the full
	// grid, then evaluate only Pareto candidates under the grid's
	// method. The ranking then covers the refined subset — the designs
	// top-k search cares about — at a fraction of a sim-mode grid's
	// cost.
	Screen bool `json:"screen,omitempty"`
	// RefineMargin is the screening dominance band (0 with Screen =
	// sweep.DefaultRefineMargin; invalid without Screen).
	RefineMargin float64 `json:"refine_margin,omitempty"`
}

// RankedPoint is one entry of a design search's ranking.
type RankedPoint struct {
	// Rank is the 1-based position (1 = highest GFLOPS; ties break
	// toward the lower grid index, so rankings are deterministic).
	Rank int `json:"rank"`
	// Point is the design-space coordinate.
	Point sweep.Point `json:"point"`
	// Outcome is its evaluation.
	Outcome sweep.Outcome `json:"outcome"`
}

// DesignResponse is the body of a successful POST /v1/design.
type DesignResponse struct {
	// Points is the grid size that was searched.
	Points int `json:"points"`
	// Feasible counts the points that evaluated OK.
	Feasible int `json:"feasible"`
	// Screen summarizes the screening pass of a Screen=true search
	// (nil otherwise); Points then counts the refined subset.
	Screen *sweep.ScreenSummary `json:"screen,omitempty"`
	// Best ranks the top feasible designs by GFLOPS descending; empty
	// when the whole grid is infeasible.
	Best []RankedPoint `json:"best"`
	// Stats reports the search's evaluator traffic (memo hits show up
	// as lookups exceeding solves).
	Stats sweep.Stats `json:"stats"`
}

// SweepRequest is the body of POST /v1/sweep: an asynchronous sweep
// job over a grid of up to Config.MaxSweepPoints points.
type SweepRequest struct {
	// Grid is the design space to sweep.
	Grid sweep.Grid `json:"grid"`
	// Workers bounds the evaluation pool (0 = one per CPU).
	Workers int `json:"workers,omitempty"`
	// Screen enables the two-stage pipeline (see
	// DesignRequest.Screen); the job's Result then covers the refined
	// subset and carries a ScreenSummary.
	Screen bool `json:"screen,omitempty"`
	// RefineMargin is the screening dominance band (0 with Screen =
	// sweep.DefaultRefineMargin; invalid without Screen).
	RefineMargin float64 `json:"refine_margin,omitempty"`
}

// Job status values reported by JobResponse.Status.
const (
	// JobRunning means the sweep is still evaluating.
	JobRunning = "running"
	// JobDone means the sweep finished; JobResponse.Result is set.
	JobDone = "done"
	// JobFailed means the sweep stopped early; JobResponse.Error says
	// why (typically server shutdown cancelling the job).
	JobFailed = "failed"
)

// JobResponse describes one sweep job: the 202 body of POST /v1/sweep
// and the 200 body of GET /v1/sweep/{id}.
type JobResponse struct {
	// Job is the job id ("j1", "j2", ... in submission order).
	Job string `json:"job"`
	// Status is JobRunning, JobDone or JobFailed.
	Status string `json:"status"`
	// Points is the grid size being swept.
	Points int `json:"points"`
	// Error says why a JobFailed job stopped.
	Error string `json:"error,omitempty"`
	// Result is the completed sweep (grid, records, Pareto frontier,
	// sensitivity, stats), present only when Status is JobDone.
	Result *sweep.Result `json:"result,omitempty"`
}
