package matrix

import (
	"fmt"
	"math"
)

// Cholesky factorization kernels. The paper's design model is
// demonstrated on LU; the ScaLAPACK reference it builds on [10] covers
// LU, QR and Cholesky, and the authors' earlier hybrid work [22]
// partitions block Cholesky the same way. These kernels back the
// extension application in internal/core.

// Cholesky factors the symmetric positive-definite matrix a in place:
// on return the lower triangle holds L with A = L·Lᵀ. The strict upper
// triangle is left untouched (callers treat the matrix as symmetric).
func Cholesky(a *Dense) error {
	n := checkSquare(a, "Cholesky")
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := a.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 {
			return fmt.Errorf("%w: non-positive pivot %g at %d", ErrSingular, d, j)
		}
		ljj := math.Sqrt(d)
		a.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			ai, aj := a.Row(i), a.Row(j)
			for k := 0; k < j; k++ {
				s -= ai[k] * aj[k]
			}
			a.Set(i, j, s/ljj)
		}
	}
	return nil
}

// Syrk performs the symmetric rank-k update C -= A·Aᵀ on the lower
// triangle of C (the opSYRK task of block Cholesky). A is n×k, C is
// n×n; only C's lower triangle (including the diagonal) is written.
func Syrk(a, c *Dense) {
	n, k := a.Dims()
	cr, cc := c.Dims()
	if cr != n || cc != n {
		panic(fmt.Sprintf("matrix: Syrk C %dx%d for A %dx%d", cr, cc, n, k))
	}
	for i := 0; i < n; i++ {
		ai := a.Row(i)
		ci := c.Row(i)
		for j := 0; j <= i; j++ {
			aj := a.Row(j)
			var s float64
			for l := 0; l < k; l++ {
				s += ai[l] * aj[l]
			}
			ci[j] -= s
		}
	}
}

// TrsmRightLowerT solves X·Lᵀ = B in place for the opTRSM task of block
// Cholesky: B ← B·L⁻ᵀ where L is n×n lower triangular (non-unit
// diagonal) and B is m×n.
func TrsmRightLowerT(l, b *Dense) {
	n := checkSquare(l, "TrsmRightLowerT")
	if b.cols != n {
		panic(fmt.Sprintf("matrix: TrsmRightLowerT B %dx%d vs L %dx%d", b.rows, b.cols, n, n))
	}
	// X·Lᵀ = B  ⇔  for each row x of B: solve Lᵀ from the left on xᵀ,
	// i.e. forward substitution in j with the transposed access.
	for i := 0; i < b.rows; i++ {
		bi := b.Row(i)
		for j := 0; j < n; j++ {
			s := bi[j]
			lj := l.Row(j)
			for k := 0; k < j; k++ {
				s -= bi[k] * lj[k]
			}
			bi[j] = s / lj[j]
		}
	}
}

// BlockCholesky performs a right-looking block Cholesky factorization
// in place with block size bs: factor the diagonal block (opPOTRF),
// solve the panel below it (opTRSM), update the trailing lower triangle
// (opSYRK on diagonal blocks, GEMM elsewhere). It is the sequential
// reference for the distributed hybrid design.
func BlockCholesky(a *Dense, bs int) error {
	n := checkSquare(a, "BlockCholesky")
	if bs <= 0 {
		panic("matrix: BlockCholesky block size must be positive")
	}
	for t := 0; t < n; t += bs {
		nb := min(bs, n-t)
		diag := a.View(t, t, nb, nb)
		if err := Cholesky(diag); err != nil {
			return fmt.Errorf("iteration %d: %w", t/bs, err)
		}
		if t+nb >= n {
			break
		}
		panel := a.View(t+nb, t, n-t-nb, nb)
		TrsmRightLowerT(diag, panel)
		// Trailing update: A22 -= panel · panelᵀ, lower triangle only.
		trail := a.View(t+nb, t+nb, n-t-nb, n-t-nb)
		Syrk(panel, trail)
	}
	return nil
}

// RandomSPD returns a random symmetric positive-definite n×n matrix
// (AᵀA + n·I of a random A).
func RandomSPD(n int, rng interface{ Float64() float64 }) *Dense {
	a := New(n, n)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] = 2*rng.Float64() - 1
		}
	}
	spd := Mul(a.Transpose(), a)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	return spd
}

// ExtractLower returns the lower triangle (with diagonal) of a as a new
// matrix, zeroing the strict upper part.
func ExtractLower(a *Dense) *Dense {
	n := checkSquare(a, "ExtractLower")
	out := New(n, n)
	for i := 0; i < n; i++ {
		copy(out.Row(i)[:i+1], a.Row(i)[:i+1])
	}
	return out
}
