package matrix

import (
	"math/rand"
	"testing"
)

// lowerUnit / upper extract well-conditioned triangular factors from a
// diagonally dominant random matrix.
func testFactors(n int, seed int64) (l, u *Dense) {
	rng := rand.New(rand.NewSource(seed))
	a := RandomDiagDominant(n, rng)
	if err := LU(a); err != nil {
		panic(err)
	}
	return ExtractLU(a)
}

func TestTrsmLowerUnitLeft(t *testing.T) {
	l, _ := testFactors(12, 20)
	rng := rand.New(rand.NewSource(21))
	b := Random(12, 7, rng)
	x := b.Clone()
	TrsmLowerUnitLeft(l, x)
	if got := Mul(l, x); !got.EqualApprox(b, 1e-10) {
		t.Fatalf("L*X != B, maxdiff %g", got.MaxDiff(b))
	}
}

func TestTrsmUpperLeft(t *testing.T) {
	_, u := testFactors(12, 22)
	rng := rand.New(rand.NewSource(23))
	b := Random(12, 5, rng)
	x := b.Clone()
	TrsmUpperLeft(u, x)
	if got := Mul(u, x); !got.EqualApprox(b, 1e-9) {
		t.Fatalf("U*X != B, maxdiff %g", got.MaxDiff(b))
	}
}

func TestTrsmUpperRight(t *testing.T) {
	_, u := testFactors(10, 24)
	rng := rand.New(rand.NewSource(25))
	b := Random(6, 10, rng)
	x := b.Clone()
	TrsmUpperRight(u, x)
	if got := Mul(x, u); !got.EqualApprox(b, 1e-9) {
		t.Fatalf("X*U != B, maxdiff %g", got.MaxDiff(b))
	}
}

func TestTrsmLowerUnitRight(t *testing.T) {
	l, _ := testFactors(10, 26)
	rng := rand.New(rand.NewSource(27))
	b := Random(4, 10, rng)
	x := b.Clone()
	TrsmLowerUnitRight(l, x)
	if got := Mul(x, l); !got.EqualApprox(b, 1e-10) {
		t.Fatalf("X*L != B, maxdiff %g", got.MaxDiff(b))
	}
}

func TestTrsmIgnoresUnitDiagonalStorage(t *testing.T) {
	// TrsmLowerUnitLeft must not reference the diagonal or upper part.
	l, _ := testFactors(8, 28)
	poisoned := l.Clone()
	for i := 0; i < 8; i++ {
		for j := i; j < 8; j++ {
			poisoned.Set(i, j, 1e300)
		}
	}
	rng := rand.New(rand.NewSource(29))
	b := Random(8, 3, rng)
	x1, x2 := b.Clone(), b.Clone()
	TrsmLowerUnitLeft(l, x1)
	TrsmLowerUnitLeft(poisoned, x2)
	if !x1.Equal(x2) {
		t.Fatal("TrsmLowerUnitLeft referenced diagonal/upper storage")
	}
}

func TestTrsmNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square factor")
		}
	}()
	TrsmUpperLeft(New(3, 4), New(3, 2))
}

func TestTrsmDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for RHS mismatch")
		}
	}()
	TrsmLowerUnitLeft(New(4, 4), New(3, 2))
}

func TestOpLOpURelation(t *testing.T) {
	// The paper's opL is L10 = A10 * inv(U00) and opU is
	// U01 = inv(L00) * A01. Verify both reconstruct their inputs.
	l00, u00 := testFactors(9, 30)
	rng := rand.New(rand.NewSource(31))
	a10 := Random(5, 9, rng)
	a01 := Random(9, 5, rng)

	l10 := a10.Clone()
	TrsmUpperRight(u00, l10) // opL
	if got := Mul(l10, u00); !got.EqualApprox(a10, 1e-9) {
		t.Fatal("opL: L10*U00 != A10")
	}

	u01 := a01.Clone()
	TrsmLowerUnitLeft(l00, u01) // opU
	if got := Mul(l00, u01); !got.EqualApprox(a01, 1e-10) {
		t.Fatal("opU: L00*U01 != A01")
	}
}
