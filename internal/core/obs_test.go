package core

import (
	"testing"

	"codesign/internal/fault"
	"codesign/internal/obs"
)

// A faulted LU run with a metrics registry attached must publish the
// repartition counters and fault gauges — and must not change the
// simulated result relative to the same run without metrics.
func TestLUFaultMetricsPublished(t *testing.T) {
	spec := &fault.Spec{
		Window: 50,
		Events: []fault.Event{
			{Kind: fault.ThrottleBd, Node: 1, Start: 100, Duration: 500, Factor: 0.25},
		},
	}
	cfg := LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid}

	plainCfg := cfg
	plainCfg.Faults = mustInjector(t, spec, 6)
	plain, err := RunLU(plainCfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	obsCfg := cfg
	obsCfg.Faults = mustInjector(t, spec, 6)
	obsCfg.Faults.Publish(reg)
	obsCfg.Metrics = reg
	res, err := RunLU(obsCfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.Seconds != plain.Seconds {
		t.Fatalf("metrics changed the run: %v != %v", res.Seconds, plain.Seconds)
	}
	if len(res.Repartitions) == 0 {
		t.Fatal("throttle triggered no repartition")
	}
	got := reg.Counter(`core_repartitions_total{reason="divergence"}`, "").Value()
	if got != int64(len(res.Repartitions)) {
		t.Errorf("core_repartitions_total{divergence} = %d, want %d", got, len(res.Repartitions))
	}
	if live := reg.Gauge("core_live_nodes", "").Value(); live != 6 {
		t.Errorf("core_live_nodes = %g, want 6", live)
	}
	if d := reg.Counter("fault_dilations_total", "").Value(); d == 0 {
		t.Error("no charges flowed through the published injector")
	}
	if r := reg.Gauge(`fault_degradation_ratio{node="1",class="bd"}`, "").Value(); r <= 0 || r > 1 {
		t.Errorf("fault_degradation_ratio out of range: %g", r)
	}
}

// A node-death repartition reports under its own reason label and drops
// the live-node gauge below the full complement.
func TestLUNodeKillMetrics(t *testing.T) {
	spec := &fault.Spec{
		Events: []fault.Event{{Kind: fault.NodeKill, Node: 2, Start: 200}},
	}
	reg := obs.NewRegistry()
	cfg := LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid,
		Faults: mustInjector(t, spec, 6), Metrics: reg}
	cfg.Faults.Publish(reg)
	res, err := RunLU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeadNodes) != 1 {
		t.Fatalf("DeadNodes = %v, want one loss", res.DeadNodes)
	}
	if got := reg.Counter(`core_repartitions_total{reason="node-death"}`, "").Value(); got == 0 {
		t.Error("node death published no repartition count")
	}
	if live := reg.Gauge("core_live_nodes", "").Value(); live != 5 {
		t.Errorf("core_live_nodes = %g, want 5", live)
	}
}
