// Command mkmachine inspects machine presets and solves the design
// model's workload partitions for them — the planning side of the
// co-design flow, without running a simulation.
//
// Usage:
//
//	mkmachine list                 # available presets
//	mkmachine show xd1             # parameters, PE capacity, clocks
//	mkmachine show mybox.json      # same, for a machine JSON file
//	mkmachine solve xd1            # Eq. 4/5/6 partitions at paper sizes
//	mkmachine solve xt3 -b 2400    # partitions for another block size
package main

import (
	"flag"
	"fmt"
	"os"

	"codesign/internal/cli"
	"codesign/internal/cpu"
	"codesign/internal/fpga"
	"codesign/internal/machine"
	"codesign/internal/model"
)

// log is the tool's shared leveled stderr logger.
var log = cli.NewLogger("mkmachine", os.Stderr)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, rest := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = list()
	case "show":
		err = withPreset(rest, show)
	case "solve":
		err = withPreset(rest, solve)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Errorf("%v", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mkmachine {list | show <machine> | solve <machine> [-b N] [-fwb N]}")
	fmt.Fprintln(os.Stderr, "  <machine> is a preset name (try 'list') or a machine JSON file")
}

func withPreset(args []string, f func(machine.Config, []string) error) error {
	if len(args) < 1 {
		return fmt.Errorf("machine name or JSON file required (try 'list')")
	}
	cfg, err := machine.Resolve(args[0])
	if err != nil {
		return err
	}
	return f(cfg, args[1:])
}

func list() error {
	for name, p := range map[string]func() machine.Config{"xd1": machine.XD1, "xt3": machine.XT3DRC, "src6": machine.SRC6, "rasc": machine.RASC} {
		cfg := p()
		fmt.Printf("  %-5s %s: %d nodes, %s FPGAs, %.1f GB/s links\n",
			name, cfg.Name, cfg.Nodes, cfg.Device.Name, cfg.Fabric.LinkBandwidth/1e9)
	}
	return nil
}

func show(cfg machine.Config, _ []string) error {
	fmt.Printf("%s\n", cfg.Name)
	fmt.Printf("  nodes:              %d\n", cfg.Nodes)
	fmt.Printf("  processor:          %s\n", cfg.Processor().Name)
	fmt.Printf("  FPGA:               %s (%d slices, %d BRAM, %d mult)\n",
		cfg.Device.Name, cfg.Device.Slices, cfg.Device.BlockRAMs, cfg.Device.Multipliers)
	fmt.Printf("  FPGA-DRAM path:     %.2f GB/s\n", cfg.RawFPGADRAMBandwidth/1e9)
	fmt.Printf("  SRAM:               %d banks x %d MB\n", cfg.SRAMBanks, cfg.SRAMBankBytes>>20)
	fmt.Printf("  network:            %.1f GB/s x %d links/node\n",
		cfg.Fabric.LinkBandwidth/1e9, cfg.Fabric.LinksPerNode)

	kMM := fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewMatMul(k) }, cfg.Device)
	kFW := fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewFW(k) }, cfg.Device)
	fmt.Printf("  matmul design:      up to %d PEs", kMM)
	if p, err := fpga.Place(fpga.NewMatMul(kMM), cfg.Device); err == nil {
		fmt.Printf(" at %.1f MHz (Of=%d, Bd=%.2f GB/s)",
			p.FreqHz/1e6, fpga.NewMatMul(kMM).OpsPerCycle(),
			machine.EffectiveBd(cfg.RawFPGADRAMBandwidth, p.FreqHz)/1e9)
	}
	fmt.Println()
	fmt.Printf("  fw design:          up to %d PEs", kFW)
	if p, err := fpga.Place(fpga.NewFW(kFW), cfg.Device); err == nil {
		fmt.Printf(" at %.1f MHz (Of=%d, Bd=%.2f GB/s)",
			p.FreqHz/1e6, fpga.NewFW(kFW).OpsPerCycle(),
			machine.EffectiveBd(cfg.RawFPGADRAMBandwidth, p.FreqHz)/1e9)
	}
	fmt.Println()
	return nil
}

func solve(cfg machine.Config, rest []string) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	b := fs.Int("b", 3000, "LU block size")
	fwb := fs.Int("fwb", 256, "FW block size")
	n := fs.Int("n", 0, "FW problem size (0 = 12 ops per phase)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	proc := cfg.Processor()

	kMM := fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewMatMul(k) }, cfg.Device)
	mm, err := fpga.Place(fpga.NewMatMul(kMM), cfg.Device)
	if err != nil {
		return err
	}
	lu := model.LUParams{
		P: cfg.Nodes, B: *b, K: kMM,
		Ff:         mm.FreqHz,
		StripeRate: proc.Rate(cpu.DGEMMStripe),
		LURate:     proc.Rate(cpu.DGETRF),
		TrsmRate:   proc.Rate(cpu.DTRSM),
		Bd:         machine.EffectiveBd(cfg.RawFPGADRAMBandwidth, mm.FreqHz),
		Bn:         cfg.Fabric.LinkBandwidth,
		Bw:         machine.WordBytes,
		SRAMBytes:  int64(cfg.SRAMBanks) * cfg.SRAMBankBytes / 2,
	}
	if err := lu.Validate(); err != nil {
		return fmt.Errorf("LU model: %w", err)
	}
	bf, bp := lu.SolvePartition()
	l := lu.SolveL(bf)
	tlu, ttrsm := lu.PanelTimes()
	fmt.Printf("LU decomposition on %s (b=%d, k=%d, Ff=%.1f MHz):\n", cfg.Name, *b, kMM, lu.Ff/1e6)
	fmt.Printf("  Eq.4 partition:   bf=%d rows to FPGA, bp=%d to processor\n", bf, bp)
	fmt.Printf("  Eq.5 pipeline:    l=%d opMM per panel op (opLU %.2fs, opL/opU %.2fs)\n", l, tlu, ttrsm)
	fmt.Printf("  coordination:     %.1f handshakes/s\n", lu.CoordinationHz(bf))

	kFW := fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewFW(k) }, cfg.Device)
	if *fwb%kFW != 0 {
		// Pick the largest PE count dividing the block size.
		for kFW > 1 && *fwb%kFW != 0 {
			kFW--
		}
	}
	fwP, err := fpga.Place(fpga.NewFW(kFW), cfg.Device)
	if err != nil {
		return err
	}
	fw := model.FWParams{
		P: cfg.Nodes, B: *fwb, K: kFW,
		Ff:     fwP.FreqHz,
		FWRate: proc.Rate(cpu.FWKernel),
		Bd:     machine.EffectiveBd(cfg.RawFPGADRAMBandwidth, fwP.FreqHz),
		Bn:     cfg.Fabric.LinkBandwidth,
		Bw:     machine.WordBytes,
	}
	if err := fw.Validate(); err != nil {
		return fmt.Errorf("FW model: %w", err)
	}
	nFW := *n
	if nFW == 0 {
		nFW = 12 * *fwb * cfg.Nodes // 12 ops per phase, as in the paper
	}
	l1, l2 := fw.SolveSplit(nFW)
	fmt.Printf("Floyd-Warshall on %s (b=%d, k=%d, Ff=%.1f MHz, n=%d):\n", cfg.Name, *fwb, kFW, fw.Ff/1e6, nFW)
	fmt.Printf("  Eq.6 split:       l1=%d ops to processor, l2=%d to FPGA per phase\n", l1, l2)
	fmt.Printf("  coordination:     %.2f handshakes/s\n", fw.CoordinationHz(max(l2, 1)))
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
