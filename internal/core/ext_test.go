package core

import (
	"math"
	"testing"

	"codesign/internal/machine"
)

// --- Hybrid matrix multiplication (Equation 1 application) ---

func TestMMHybridBeatsBaselines(t *testing.T) {
	hy, err := RunMM(MMConfig{N: 6144, BF: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	po, err := RunMM(MMConfig{N: 6144, BF: -1, Mode: ProcessorOnly})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := RunMM(MMConfig{N: 6144, BF: -1, Mode: FPGAOnly})
	if err != nil {
		t.Fatal(err)
	}
	if hy.Seconds >= po.Seconds || hy.Seconds >= fo.Seconds {
		t.Fatalf("hybrid %.2fs must beat cpu %.2fs and fpga %.2fs", hy.Seconds, po.Seconds, fo.Seconds)
	}
	// No network traffic: operands are node-resident (Eq. 1 case).
	if hy.NetworkBytes != 0 {
		t.Fatalf("mm should not touch the network, moved %d bytes", hy.NetworkBytes)
	}
}

func TestMMPartitionBalances(t *testing.T) {
	// N chosen so the Eq. (1) solution is not clamped by SRAM capacity
	// (at larger N the FPGA's result buffer fills and bf is capped,
	// deliberately unbalancing toward the processor).
	r, err := RunMM(MMConfig{N: 3072, BF: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if r.BF%r.K != 0 || r.BF <= 0 || r.BF >= r.N {
		t.Fatalf("bf = %d implausible", r.BF)
	}
	// At the solved split, per-stripe CPU and FPGA times balance.
	tf, tp, tmem := r.Model.StripeTimes(r.BF)
	if math.Abs(tf-(tp+tmem))/tf > 0.05 {
		t.Fatalf("Eq.1 imbalance: tf=%g vs tp+tmem=%g", tf, tp+tmem)
	}
}

func TestMMSRAMClampUnderloadsFPGA(t *testing.T) {
	// At large N the SRAM cap binds: the FPGA side must then be the
	// faster side (it got fewer rows than balance wants).
	r, err := RunMM(MMConfig{N: 6144, BF: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	maxBf := int(float64(r.Model.SRAMBytes) / r.Model.Bw / float64(r.Model.Width()))
	maxBf -= maxBf % r.K
	if r.BF != maxBf {
		t.Fatalf("bf = %d, want SRAM cap %d", r.BF, maxBf)
	}
	tf, tp, tmem := r.Model.StripeTimes(r.BF)
	if tf >= tp+tmem {
		t.Fatalf("clamped FPGA should be underloaded: tf=%g vs %g", tf, tp+tmem)
	}
}

func TestMMFunctionalMatchesReference(t *testing.T) {
	for _, mode := range []Mode{Hybrid, ProcessorOnly, FPGAOnly} {
		r, err := RunMM(MMConfig{N: 96, PEs: 4, BF: -1, Mode: mode, Functional: true, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !r.Checked || r.MaxResidual != 0 {
			t.Fatalf("%v: residual %g (checked=%v)", mode, r.MaxResidual, r.Checked)
		}
	}
}

func TestMMPredictionClose(t *testing.T) {
	// With no communication the stripes pipeline almost perfectly, so
	// the simulation should achieve nearly all of the prediction.
	r, err := RunMM(MMConfig{N: 6144, BF: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.GFLOPS / r.Prediction.GFLOPS
	if ratio < 0.9 || ratio > 1.02 {
		t.Fatalf("measured/predicted = %.3f, want ~1", ratio)
	}
}

func TestMMValidation(t *testing.T) {
	if _, err := RunMM(MMConfig{N: 100}); err == nil { // not multiple of k=8/p=6
		t.Fatal("bad n accepted")
	}
	if _, err := RunMM(MMConfig{N: 0}); err == nil {
		t.Fatal("zero n accepted")
	}
	if _, err := RunMM(MMConfig{N: 96, PEs: 4, BF: 200}); err == nil {
		t.Fatal("bf > n accepted")
	}
}

// --- Hybrid Cholesky (ScaLAPACK-trio extension) ---

func TestCholeskyHybridBeatsProcessorOnly(t *testing.T) {
	hy, err := RunCholesky(CholConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	po, err := RunCholesky(CholConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: ProcessorOnly})
	if err != nil {
		t.Fatal(err)
	}
	if hy.Seconds >= po.Seconds {
		t.Fatalf("hybrid %.1fs not faster than processor-only %.1fs", hy.Seconds, po.Seconds)
	}
	// Cholesky has half LU's flops; throughput should be in the same
	// regime as the LU hybrid (the same opMM-style engine drives it).
	if hy.GFLOPS < 10 || hy.GFLOPS > 25 {
		t.Fatalf("cholesky hybrid = %.2f GFLOPS, implausible", hy.GFLOPS)
	}
}

func TestCholeskyUsesSamePartition(t *testing.T) {
	r, err := RunCholesky(CholConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	// The trailing-update stripes are the same computation as LU's
	// opMM, so Equation (4) gives the same split.
	if r.BF != 1280 || r.BP != 1720 {
		t.Fatalf("partition bf=%d bp=%d, want 1280/1720", r.BF, r.BP)
	}
}

func TestCholeskyFunctionalMatchesReference(t *testing.T) {
	for _, mode := range []Mode{Hybrid, ProcessorOnly, FPGAOnly} {
		r, err := RunCholesky(CholConfig{N: 80, B: 20, PEs: 4, BF: -1, L: 2, Mode: mode, Functional: true, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !r.Checked {
			t.Fatalf("%v: not checked", mode)
		}
		if r.MaxResidual > 1e-9 {
			t.Fatalf("%v: residual %g", mode, r.MaxResidual)
		}
	}
}

func TestCholeskyFunctionalLarger(t *testing.T) {
	r, err := RunCholesky(CholConfig{N: 200, B: 40, PEs: 4, BF: -1, L: -1, Mode: Hybrid, Functional: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxResidual > 1e-8 {
		t.Fatalf("residual %g", r.MaxResidual)
	}
}

func TestCholeskySingleBlock(t *testing.T) {
	r, err := RunCholesky(CholConfig{N: 40, B: 40, PEs: 4, BF: -1, L: -1, Mode: Hybrid, Functional: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxResidual > 1e-10 {
		t.Fatalf("residual %g", r.MaxResidual)
	}
}

func TestCholeskyValidation(t *testing.T) {
	if _, err := RunCholesky(CholConfig{N: 100, B: 30}); err == nil {
		t.Fatal("non-dividing block accepted")
	}
	if _, err := RunCholesky(CholConfig{N: 90, B: 18, PEs: 4}); err == nil {
		t.Fatal("block not multiple of k accepted")
	}
}

func TestCholeskyFasterThanLU(t *testing.T) {
	// Same machine, same n: Cholesky does half the work and should
	// finish in well under LU's time.
	ch, err := RunCholesky(CholConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	lu, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Seconds >= lu.Seconds {
		t.Fatalf("cholesky %.1fs not faster than LU %.1fs", ch.Seconds, lu.Seconds)
	}
}

// --- Hybrid QR (second ScaLAPACK extension) ---

func TestQRHybridBeatsProcessorOnly(t *testing.T) {
	hy, err := RunQR(QRConfig{N: 30000, B: 3000, BF: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	po, err := RunQR(QRConfig{N: 30000, B: 3000, BF: -1, Mode: ProcessorOnly})
	if err != nil {
		t.Fatal(err)
	}
	if hy.Seconds >= po.Seconds {
		t.Fatalf("hybrid %.1fs not faster than processor-only %.1fs", hy.Seconds, po.Seconds)
	}
	if hy.GFLOPS < 8 || hy.GFLOPS > 30 {
		t.Fatalf("qr hybrid = %.2f GFLOPS, implausible", hy.GFLOPS)
	}
}

func TestQRUsesEq4Partition(t *testing.T) {
	r, err := RunQR(QRConfig{N: 30000, B: 3000, BF: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if r.BF != 1280 {
		t.Fatalf("bf = %d, want the Eq.4 solution 1280", r.BF)
	}
}

func TestQRFunctionalBitExact(t *testing.T) {
	for _, mode := range []Mode{Hybrid, ProcessorOnly, FPGAOnly} {
		r, err := RunQR(QRConfig{N: 120, B: 20, PEs: 4, BF: -1, Mode: mode, Functional: true, Seed: 31})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !r.Checked {
			t.Fatalf("%v: not checked", mode)
		}
		// Identical reflector operations in identical per-column order:
		// the distributed factored form matches the reference exactly.
		if r.MaxResidual != 0 {
			t.Fatalf("%v: residual %g", mode, r.MaxResidual)
		}
	}
}

func TestQRSingleBlockColumn(t *testing.T) {
	r, err := RunQR(QRConfig{N: 40, B: 40, PEs: 4, BF: -1, Mode: Hybrid, Functional: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxResidual != 0 {
		t.Fatalf("residual %g", r.MaxResidual)
	}
	if r.Coordinations != 0 {
		t.Fatalf("single panel should launch no FPGA jobs, got %d", r.Coordinations)
	}
}

func TestQRValidation(t *testing.T) {
	if _, err := RunQR(QRConfig{N: 100, B: 30}); err == nil {
		t.Fatal("non-dividing block accepted")
	}
	if _, err := RunQR(QRConfig{N: 90, B: 18, PEs: 4}); err == nil {
		t.Fatal("block not multiple of k accepted")
	}
	if _, err := RunQR(QRConfig{N: 120, B: 24, PEs: 4, BF: 30}); err == nil {
		t.Fatal("bf > b accepted")
	}
}

func TestQRPredictionSane(t *testing.T) {
	r, err := RunQR(QRConfig{N: 30000, B: 3000, BF: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.GFLOPS / r.Prediction.GFLOPS
	if ratio < 0.55 || ratio > 1.05 {
		t.Fatalf("measured/predicted = %.2f out of range", ratio)
	}
}

func TestQRDeterministic(t *testing.T) {
	r1, err := RunQR(QRConfig{N: 30000, B: 3000, BF: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunQR(QRConfig{N: 30000, B: 3000, BF: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seconds != r2.Seconds {
		t.Fatal("QR simulation not deterministic")
	}
}

// --- Hybrid conjugate gradient (related-work extension, after [9]) ---

func TestCGDenseHybridSolves(t *testing.T) {
	r, err := RunCG(CGConfig{N: 512, RowsFPGA: -1, Mode: Hybrid, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("did not converge: %+v", r)
	}
	// The hybrid iterates are bit-identical to the sequential CG.
	if r.MaxResidual != 0 {
		t.Fatalf("iterates deviate from reference by %g", r.MaxResidual)
	}
	if r.RowsFPGA <= 0 || r.RowsFPGA >= r.N {
		t.Fatalf("rows split %d/%d implausible", r.RowsFPGA, r.RowsCPU)
	}
}

func TestCGHybridBeatsBaselines(t *testing.T) {
	hy, err := RunCG(CGConfig{N: 768, RowsFPGA: -1, Mode: Hybrid, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	po, err := RunCG(CGConfig{N: 768, RowsFPGA: -1, Mode: ProcessorOnly, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if hy.Seconds >= po.Seconds {
		t.Fatalf("hybrid %.4fs not faster than processor-only %.4fs", hy.Seconds, po.Seconds)
	}
	// All variants take identical iteration counts (same arithmetic).
	if hy.Iterations != po.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", hy.Iterations, po.Iterations)
	}
}

func TestCGSparse(t *testing.T) {
	r, err := RunCG(CGConfig{N: 800, Density: 0.02, RowsFPGA: -1, Mode: Hybrid, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged || r.MaxResidual != 0 {
		t.Fatalf("sparse CG: %+v", r)
	}
}

func TestCGSRAMClamp(t *testing.T) {
	// A dense matrix too large for SRAM: the FPGA share gets clamped.
	mc := machineXD1Small()
	r, err := RunCG(CGConfig{Machine: mc, N: 1024, RowsFPGA: -1, Mode: Hybrid, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	capWords := int(mc.SRAMBankBytes) * mc.SRAMBanks / 8
	if r.RowsFPGA*r.N > capWords {
		t.Fatalf("FPGA share %d rows exceeds SRAM capacity", r.RowsFPGA)
	}
}

func TestCGCoordinationPerIteration(t *testing.T) {
	// One load handshake pair plus two handshakes per iteration.
	r, err := RunCG(CGConfig{N: 256, RowsFPGA: -1, Mode: Hybrid, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 + 2*r.Iterations)
	if r.Coordinations != want {
		t.Fatalf("coordinations = %d, want %d", r.Coordinations, want)
	}
	if r.LoadSeconds <= 0 {
		t.Fatal("SRAM load must take time")
	}
}

func TestCGValidation(t *testing.T) {
	if _, err := RunCG(CGConfig{N: 0}); err == nil {
		t.Fatal("zero n accepted")
	}
	if _, err := RunCG(CGConfig{N: 64, RowsFPGA: 100}); err == nil {
		t.Fatal("rows > n accepted")
	}
}

// machineXD1Small is an XD1 with tiny SRAM banks for clamp tests.
func machineXD1Small() machine.Config {
	mc := machine.XD1()
	mc.SRAMBankBytes = 1 << 20
	return mc
}
