package mpi

import (
	"errors"
	"math"
	"testing"

	"codesign/internal/sim"
)

func TestSendRetryDeliversWhenAlive(t *testing.T) {
	e, w := worldOf(t, 2, 100)
	w.SetLiveness(func(rank int, now float64) bool { return true })
	var got Message
	var sendErr error
	spawnRanks(e, w, func(r *Rank, p *sim.Proc) {
		if r.ID() == 0 {
			sendErr = r.SendRetry(1, 3, 200, "up", RetryPolicy{Attempts: 3, Timeout: 10})
		} else {
			got = r.Recv(0, 3)
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if sendErr != nil {
		t.Fatalf("SendRetry to live rank failed: %v", sendErr)
	}
	if got.Payload != "up" {
		t.Fatalf("payload %v", got.Payload)
	}
	if e.Now() != 2 { // no timeout charged on the fast path
		t.Fatalf("clock %v, want 2", e.Now())
	}
}

func TestSendRetryTimesOutOnDeadRank(t *testing.T) {
	e, w := worldOf(t, 2, 100)
	w.SetLiveness(func(rank int, now float64) bool { return rank != 1 })
	var sendErr error
	e.Go("rank0", func(p *sim.Proc) {
		r := w.Attach(p, 0)
		sendErr = r.SendRetry(1, 3, 200, "lost", RetryPolicy{Attempts: 3, Timeout: 0.5})
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sendErr, ErrDeadRank) {
		t.Fatalf("want ErrDeadRank, got %v", sendErr)
	}
	if math.Abs(e.Now()-1.5) > 1e-12 { // 3 attempts × 0.5 s timeout
		t.Fatalf("clock %v, want 1.5 (three timeouts charged)", e.Now())
	}
	if w.fab.Messages() != 0 {
		t.Fatalf("dead-rank send still hit the wire: %d messages", w.fab.Messages())
	}
}

func TestSendRetryRecoversMidRun(t *testing.T) {
	// Rank 1 is "down" until t=1, then reachable again — SendRetry's
	// second attempt succeeds after one timeout charge.
	e, w := worldOf(t, 2, 100)
	w.SetLiveness(func(rank int, now float64) bool { return rank != 1 || now >= 1 })
	var sendErr error
	var got Message
	spawnRanks(e, w, func(r *Rank, p *sim.Proc) {
		if r.ID() == 0 {
			sendErr = r.SendRetry(1, 9, 100, "back", RetryPolicy{Attempts: 2, Timeout: 1})
		} else {
			got = r.Recv(0, 9)
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if sendErr != nil || got.Payload != "back" {
		t.Fatalf("err=%v payload=%v", sendErr, got.Payload)
	}
}

func TestAliveDefaultsToTrue(t *testing.T) {
	_, w := worldOf(t, 2, 100)
	if !w.Alive(0, 0) || !w.Alive(1, 1e9) {
		t.Fatal("nil liveness oracle should report every rank alive")
	}
}
