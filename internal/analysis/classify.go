package analysis

import (
	"sort"

	"codesign/internal/model"
	"codesign/internal/sim"
	"codesign/internal/trace"
)

// PhaseStats aggregates one algorithm phase's activity across all
// processes and attributes it to the model parameter that bound it.
type PhaseStats struct {
	// Phase is the span phase label ("panel", "opmm", ...; spans with
	// no label aggregate under "").
	Phase string

	// Busy seconds per overlap class, summed over all spans in the
	// phase (concurrent activity double counts, as in Overlap's Busy*).
	BusyTf, BusyTp, BusyTmem, BusyTcomm, BusySync float64

	// Bytes is payload carried by the phase's data-movement spans.
	Bytes int64

	// Start and End bound the phase's spans in virtual time. Phases
	// that interleave (panel/opmm pipelining) overlap here.
	Start, End float64

	// Binding is the parameter the measured busy times say bound the
	// phase, with Margin the normalized imbalance (see
	// model.BindingFromTimes). A small margin means the phase was
	// balanced — the partitioning did its job — and the named side won
	// only narrowly.
	Binding model.Binding
	// Margin is the normalized imbalance behind Binding.
	Margin float64

	// Expected is the analytic model's predicted binding for the phase
	// (BindNone when the caller supplied no prediction), and Agree
	// whether measurement matched it.
	Expected model.Binding
	// Agree reports whether Binding matched Expected.
	Agree bool
}

// TotalBusy returns the phase's classified work: Tf+Tp+Tmem+Tcomm.
func (ps PhaseStats) TotalBusy() float64 {
	return ps.BusyTf + ps.BusyTp + ps.BusyTmem + ps.BusyTcomm
}

// ClassifyPhases groups spans by phase label, sums busy time per
// overlap class, and runs the Section 4 binding comparison on each
// phase's totals. expected maps phase label to the analytic model's
// predicted binding; phases absent from the map get Expected BindNone
// and Agree true (nothing to disagree with). Phases are returned in
// order of first appearance in virtual time.
func ClassifyPhases(spans []sim.SpanEvent, expected map[string]model.Binding) []PhaseStats {
	byPhase := make(map[string]*PhaseStats)
	var order []string
	var last *PhaseStats // consecutive spans usually share a phase
	for _, s := range spans {
		if s.End <= s.Start && s.Bytes == 0 {
			continue
		}
		ps := last
		if ps == nil || ps.Phase != s.Phase {
			ps = byPhase[s.Phase]
			if ps == nil {
				ps = &PhaseStats{Phase: s.Phase, Start: s.Start, End: s.End}
				byPhase[s.Phase] = ps
				order = append(order, s.Phase)
			}
			last = ps
		}
		if s.Start < ps.Start {
			ps.Start = s.Start
		}
		if s.End > ps.End {
			ps.End = s.End
		}
		ps.Bytes += s.Bytes
		d := s.End - s.Start
		switch trace.Classify(s) {
		case trace.ClassTf:
			ps.BusyTf += d
		case trace.ClassTp:
			ps.BusyTp += d
		case trace.ClassTmem:
			ps.BusyTmem += d
		case trace.ClassTcomm:
			ps.BusyTcomm += d
		default:
			ps.BusySync += d
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := byPhase[order[i]], byPhase[order[j]]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Phase < b.Phase
	})
	out := make([]PhaseStats, 0, len(order))
	for _, name := range order {
		ps := byPhase[name]
		ps.Binding, ps.Margin = model.BindingFromTimes(ps.BusyTf, ps.BusyTp, ps.BusyTmem, ps.BusyTcomm)
		ps.Expected = expected[name]
		ps.Agree = ps.Expected == model.BindNone || ps.Expected == ps.Binding
		out = append(out, *ps)
	}
	return out
}
