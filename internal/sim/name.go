package sim

import "strconv"

// Name builds a process, signal or resource name from a prefix and
// dot-separated integer parts, byte-identical to
// fmt.Sprintf(prefix+".%d.%d", parts...) for the matching arity.
// Hot spawn sites — the per-message MPI helper processes and per-job
// FPGA processes, created thousands of times per simulated run — build
// a name per operation, which made fmt.Sprintf a measurable slice of
// sweep profiles; this composes the same bytes without the fmt
// machinery.
func Name(prefix string, parts ...int) string {
	buf := make([]byte, 0, len(prefix)+len(parts)*8)
	buf = append(buf, prefix...)
	for _, v := range parts {
		buf = append(buf, '.')
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	return string(buf)
}
