package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func lint(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, file)
}

func TestFlagsUndocumentedExports(t *testing.T) {
	src := `package p

func Exported() {}

type T struct {
	Field int
	ok    bool
}

const Answer = 42

type I interface {
	Method()
}
`
	got := lint(t, src)
	want := []string{"function Exported", "type T", "field T.Field", "const Answer", "type I", "interface method I.Method"}
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if !strings.Contains(got[i], w) {
			t.Errorf("finding %d = %q, want mention of %q", i, got[i], w)
		}
	}
}

func TestAcceptsDocumentedAndUnexported(t *testing.T) {
	src := `package p

// Exported does things.
func Exported() {}

func private() {}

// T is a thing.
type T struct {
	// Field counts.
	Field int
	hidden bool
}

// Grouped constants share one doc.
const (
	A = 1
	B = 2
)

func (t *T) String() string { return "" } // method on exported type

// String renders t.
func (t T) Render() string { return "" }

type inner struct{ X int }

func (i inner) Exported() {}
`
	got := lint(t, src)
	// Only (*T).String lacks a doc; inner's method is skipped because
	// the receiver type is unexported.
	if len(got) != 1 || !strings.Contains(got[0], "method String") {
		t.Fatalf("got %v, want exactly one finding for method String", got)
	}
}

func TestCheckPathDirectorySkipsTests(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("doc.go", "// Package p is documented.\npackage p\n")
	write("a.go", "package p\n\nfunc Oops() {}\n")
	write("a_test.go", "package p\n\nfunc TestOops() {}\nfunc Undocumented() {}\n")
	got, err := checkPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got[0], "function Oops") {
		t.Fatalf("got %v, want one finding for Oops", got)
	}
}

func TestCheckPathRequiresPackageDoc(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := checkPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got[0], "no package-level doc") {
		t.Fatalf("got %v, want package-doc finding", got)
	}
}

// TestRepoSurfacesAreDocumented is the in-tree version of the CI lint:
// the public facade and the sweep engine must stay fully documented.
func TestRepoSurfacesAreDocumented(t *testing.T) {
	for _, path := range []string{"../../codesign.go", "../../internal/sweep"} {
		got, err := checkPath(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > 0 {
			t.Errorf("%s: %d undocumented identifiers:\n%s", path, len(got), strings.Join(got, "\n"))
		}
	}
}
