package core

import (
	"math"
	"testing"

	"codesign/internal/machine"
)

// paperFW runs the Section 6.1 Floyd-Warshall configuration (n=18432,
// b=256 — the size at which the paper derives l1=2, l2=10; throughput
// is essentially independent of n, as Section 6.2 observes).
func paperFW(t *testing.T, mode Mode) *FWResult {
	t.Helper()
	r, err := RunFW(FWConfig{N: 18432, B: 256, L1: -1, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFWHybridHeadline(t *testing.T) {
	// Paper Figure 9: 6.6 GFLOPS for the hybrid design.
	r := paperFW(t, Hybrid)
	if math.Abs(r.GFLOPS-6.6) > 0.4 {
		t.Fatalf("hybrid FW = %.2f GFLOPS, paper says 6.6", r.GFLOPS)
	}
	if r.L1 != 2 || r.L2 != 10 {
		t.Fatalf("split l1=%d l2=%d, paper says 2/10", r.L1, r.L2)
	}
}

func TestFWSpeedupOverProcessorOnly(t *testing.T) {
	// Paper: 5.8X over the processor-only baseline.
	hy := paperFW(t, Hybrid)
	po := paperFW(t, ProcessorOnly)
	speedup := po.Seconds / hy.Seconds
	if math.Abs(speedup-5.8) > 0.5 {
		t.Fatalf("speedup over processor-only = %.2f, paper says 5.8", speedup)
	}
	// Processor-only lands at p × 190 MFLOPS ≈ 1.14 GFLOPS.
	if math.Abs(po.GFLOPS-1.14) > 0.1 {
		t.Fatalf("processor-only = %.3f GFLOPS, want ~1.14", po.GFLOPS)
	}
}

func TestFWSpeedupOverFPGAOnly(t *testing.T) {
	// Paper: 1.15X over the FPGA-only baseline.
	hy := paperFW(t, Hybrid)
	fo := paperFW(t, FPGAOnly)
	speedup := fo.Seconds / hy.Seconds
	if math.Abs(speedup-1.15) > 0.1 {
		t.Fatalf("speedup over fpga-only = %.2f, paper says 1.15", speedup)
	}
}

func TestFWHybridNearSumOfBaselines(t *testing.T) {
	// Paper: more than 95% of the sum of the baselines.
	hy := paperFW(t, Hybrid)
	po := paperFW(t, ProcessorOnly)
	fo := paperFW(t, FPGAOnly)
	frac := hy.GFLOPS / (po.GFLOPS + fo.GFLOPS)
	if frac < 0.92 {
		t.Fatalf("hybrid/sum = %.3f, paper says > 0.95", frac)
	}
}

func TestFWPredictionRatio(t *testing.T) {
	// Paper: ~96% of the model's prediction.
	r := paperFW(t, Hybrid)
	ratio := r.GFLOPS / r.Prediction.GFLOPS
	if ratio < 0.92 || ratio > 1.0 {
		t.Fatalf("measured/predicted = %.3f, paper says ~0.96", ratio)
	}
}

func TestFWThroughputScaleInvariant(t *testing.T) {
	// Section 6.2: "the performance of the design for the
	// Floyd-Warshall algorithm almost remains the same when n
	// increases" — the CPU/FPGA load ratio is size-independent.
	small, err := RunFW(FWConfig{N: 9216, B: 256, L1: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	big := paperFW(t, Hybrid)
	if math.Abs(small.GFLOPS-big.GFLOPS)/big.GFLOPS > 0.06 {
		t.Fatalf("FW GFLOPS varies with n: %.3f at 9216 vs %.3f at 18432", small.GFLOPS, big.GFLOPS)
	}
}

func TestFWIterationLatencyVsL1(t *testing.T) {
	// Figure 7: latency falls as l1 decreases from 12 to 2, rises at
	// l1=1; the all-FPGA point (l1=0) beats several hybrid points but
	// not the optimum.
	lat := make(map[int]float64)
	for _, l1 := range []int{0, 1, 2, 3, 4, 6, 8, 10, 12} {
		r, err := RunFW(FWConfig{N: 18432, B: 256, L1: l1, Mode: Hybrid})
		if err != nil {
			t.Fatal(err)
		}
		lat[l1] = r.Seconds / float64(len(r.IterationSeconds))
	}
	if !(lat[2] < lat[1] && lat[2] < lat[3]) {
		t.Fatalf("minimum must be at l1=2: %v", lat)
	}
	for _, pair := range [][2]int{{3, 4}, {4, 6}, {6, 8}, {8, 10}, {10, 12}} {
		if lat[pair[0]] >= lat[pair[1]] {
			t.Fatalf("latency must increase with l1 above optimum: l1=%d %.2f vs l1=%d %.2f",
				pair[0], lat[pair[0]], pair[1], lat[pair[1]])
		}
	}
	// The paper's observation: FPGA-alone beats some shared points.
	if !(lat[0] < lat[3] && lat[0] > lat[2]) {
		t.Fatalf("l1=0 (%.2f) should beat l1=3 (%.2f) but not l1=2 (%.2f)", lat[0], lat[3], lat[2])
	}
}

func TestFWFunctionalMatchesReference(t *testing.T) {
	for _, mode := range []Mode{Hybrid, ProcessorOnly, FPGAOnly} {
		r, err := RunFW(FWConfig{N: 96, B: 8, PEs: 4, L1: -1, Mode: mode, Functional: true, Seed: 17})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !r.Checked {
			t.Fatalf("%v: functional result not checked", mode)
		}
		// The distributed schedule performs the identical block
		// operations in an order with the identical per-block history,
		// so the result is bit-exact.
		if r.MaxResidual != 0 {
			t.Fatalf("%v: distributed FW deviates from reference by %g", mode, r.MaxResidual)
		}
	}
}

func TestFWFunctionalSparseAndDense(t *testing.T) {
	for _, density := range []float64{0.05, 0.5, 0.95} {
		r, err := RunFW(FWConfig{N: 48, B: 8, PEs: 4, L1: 1, Mode: Hybrid, Functional: true, Seed: 23, Density: density})
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxResidual != 0 {
			t.Fatalf("density %g: residual %g", density, r.MaxResidual)
		}
	}
}

func TestFWExplicitSplitHonored(t *testing.T) {
	r, err := RunFW(FWConfig{N: 18432, B: 256, L1: 5, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if r.L1 != 5 || r.L2 != 7 {
		t.Fatalf("explicit split ignored: l1=%d l2=%d", r.L1, r.L2)
	}
}

func TestFWConfigValidation(t *testing.T) {
	cases := []FWConfig{
		{N: 100, B: 8},             // 100 not multiple of 8*6
		{N: 0, B: 8},               // bad n
		{N: 96, B: 8, PEs: 3},      // 8 % 3 != 0
		{N: 96, B: 8, PEs: 9},      // 9 PEs don't fit
		{N: 18432, B: 256, L1: 13}, // l1 > ops per phase
	}
	for i, cfg := range cases {
		if _, err := RunFW(cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestFWCoordinationCount(t *testing.T) {
	// Hybrid: every node launches one FPGA batch per phase (l2 > 0),
	// 2 handshakes each: nb iterations × nb phases × p nodes × 2,
	// minus the owner's short phases... at minimum it must be large
	// and exactly reproducible.
	r1 := paperFW(t, Hybrid)
	r2 := paperFW(t, Hybrid)
	if r1.Coordinations != r2.Coordinations {
		t.Fatal("coordination count not deterministic")
	}
	nb := int64(18432 / 256)
	if r1.Coordinations < nb*nb*6 || r1.Coordinations > nb*nb*6*2+nb*2 {
		t.Fatalf("coordinations = %d out of plausible range", r1.Coordinations)
	}
}

func TestFWUtilization(t *testing.T) {
	r := paperFW(t, Hybrid)
	if u := r.Utilization(r.FPGABusy); u < 0.5 {
		t.Fatalf("hybrid FW FPGA utilization %.2f too low", u)
	}
	po := paperFW(t, ProcessorOnly)
	if po.Utilization(po.FPGABusy) != 0 {
		t.Fatal("processor-only must not use the FPGA")
	}
	if u := po.Utilization(po.CPUBusy); u < 0.9 {
		t.Fatalf("processor-only CPU utilization %.2f should be ~1", u)
	}
}

func TestFWOnOtherMachines(t *testing.T) {
	for _, mc := range []machine.Config{machine.XT3DRC(), machine.RASC()} {
		// Larger Virtex-4 parts fit more FW PEs (e.g. 24 on the
		// LX160); pin k=8 so the 256-block geometry divides evenly.
		n := 256 * mc.Nodes * 4
		hy, err := RunFW(FWConfig{Machine: mc, N: n, B: 256, PEs: 8, L1: -1, Mode: Hybrid})
		if err != nil {
			t.Fatalf("%s: %v", mc.Name, err)
		}
		po, err := RunFW(FWConfig{Machine: mc, N: n, B: 256, PEs: 8, L1: -1, Mode: ProcessorOnly})
		if err != nil {
			t.Fatalf("%s: %v", mc.Name, err)
		}
		if hy.Seconds >= po.Seconds {
			t.Fatalf("%s: hybrid %.1fs not faster than processor-only %.1fs", mc.Name, hy.Seconds, po.Seconds)
		}
	}
}

func TestFWDeterministic(t *testing.T) {
	r1 := paperFW(t, Hybrid)
	r2 := paperFW(t, Hybrid)
	if r1.Seconds != r2.Seconds || r1.NetworkBytes != r2.NetworkBytes {
		t.Fatal("FW simulation not deterministic")
	}
}
