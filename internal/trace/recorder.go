package trace

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"codesign/internal/sim"
)

// Recorder implements sim.Observer: it captures the raw event stream
// and every typed span for post-run analysis. Register it with
// Engine.Observe (or pass it through an application config's Observer
// field). The recorder keeps everything in memory; simulated runs emit
// at most a few spans per block operation, so this is cheap at the
// paper's problem sizes.
type Recorder struct {
	spans   []sim.SpanEvent
	events  []Event
	nEvents int
	// KeepEvents controls whether raw (time, proc, action) events are
	// stored in addition to spans. Spans are always kept; events are
	// always counted.
	KeepEvents bool
}

// NewRecorder returns a recorder that stores spans only. Set
// KeepEvents before the run to also capture the raw event stream.
func NewRecorder() *Recorder { return &Recorder{} }

// Event stores one raw engine action (sim.Observer).
func (r *Recorder) Event(t float64, proc, action string) {
	r.nEvents++
	if r.KeepEvents {
		r.events = append(r.events, Event{Time: t, Proc: proc, Action: action})
	}
}

// EventCount returns the number of raw events seen (kept or not).
func (r *Recorder) EventCount() int { return r.nEvents }

// Span stores one completed typed span (sim.Observer).
func (r *Recorder) Span(s sim.SpanEvent) { r.spans = append(r.spans, s) }

// Spans returns the recorded spans in emission (end-time) order.
func (r *Recorder) Spans() []sim.SpanEvent {
	out := make([]sim.SpanEvent, len(r.spans))
	copy(out, r.spans)
	return out
}

// SpansView returns the recorded spans without copying. The slice
// aliases the recorder's buffer: it is valid until the next Span or
// Reset call, and callers must not modify or retain it. Hot paths
// (the design-space sweep digests a span stream per grid point) use it
// to avoid a per-run copy; everyone else should prefer Spans.
func (r *Recorder) SpansView() []sim.SpanEvent { return r.spans }

// Events returns the recorded raw events (empty unless KeepEvents).
func (r *Recorder) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset discards everything recorded so far.
func (r *Recorder) Reset() {
	r.spans = r.spans[:0]
	r.events = r.events[:0]
	r.nEvents = 0
}

// Summarize digests the recorded spans into a Summary: per-process
// busy/wait, per-resource busy/contention, bytes moved, and the
// overlap decomposition against the given makespan (pass the engine's
// final virtual time).
func (r *Recorder) Summarize(makespan float64) *Summary {
	s := &Summary{
		Makespan: makespan,
		Spans:    len(r.spans),
		Events:   r.nEvents,
	}
	procs := map[string]*ProcStats{}
	ress := map[string]*ResourceStats{}
	for _, sp := range r.spans {
		d := sp.End - sp.Start
		p := procs[sp.Proc]
		if p == nil {
			p = &ProcStats{Name: sp.Proc}
			procs[sp.Proc] = p
		}
		if sp.Category == sim.CatSync {
			p.Waiting += d
		} else {
			p.Busy += d
			p.Bytes += sp.Bytes
		}
		if sp.Resource != "" {
			res := ress[sp.Resource]
			if res == nil {
				res = &ResourceStats{Name: sp.Resource}
				ress[sp.Resource] = res
			}
			res.Spans++
			if sp.Category == sim.CatSync {
				res.Contention += d
			} else {
				res.Busy += d
				res.Bytes += sp.Bytes
			}
		}
		switch sp.Category {
		case sim.CatDMA:
			s.DRAMBytes += sp.Bytes
		case sim.CatNetwork:
			s.NetworkBytes += sp.Bytes
		}
	}
	for _, k := range sortedKeys(procs) {
		s.Procs = append(s.Procs, *procs[k])
	}
	for _, k := range sortedKeys(ress) {
		s.Resources = append(s.Resources, *ress[k])
	}
	s.Overlap = ComputeOverlap(r.spans, makespan)
	return s
}

// perfetto trace_event structures. Fields are structs (never maps) so
// JSON field order — and therefore the exported bytes — is fixed.
// The arg keys (except "name", which is thread metadata) are drawn
// from the span schema (SpanRecord); a test pins them to
// SpanFieldNames so the formats cannot drift.
type perfettoArgs struct {
	Name     string `json:"name,omitempty"`
	Device   string `json:"device,omitempty"`
	Resource string `json:"resource,omitempty"`
	Phase    string `json:"phase,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
}

type perfettoEvent struct {
	Name string        `json:"name"`
	Cat  string        `json:"cat,omitempty"`
	Ph   string        `json:"ph"`
	Ts   float64       `json:"ts"`
	Dur  float64       `json:"dur,omitempty"`
	Pid  int           `json:"pid"`
	Tid  int           `json:"tid"`
	Args *perfettoArgs `json:"args,omitempty"`
}

// WritePerfetto exports the spans as Chrome trace_event JSON loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Each process gets
// a thread track (tid assigned in first-span order) named via "M"
// metadata events; spans become "X" complete events with timestamps
// and durations in microseconds of virtual time. Output is
// deterministic: identical runs export identical bytes.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	tids := map[string]int{}
	var names []string
	for _, sp := range r.spans {
		if _, ok := tids[sp.Proc]; !ok {
			tids[sp.Proc] = len(names)
			names = append(names, sp.Proc)
		}
	}
	events := make([]perfettoEvent, 0, len(r.spans)+len(names))
	for i, n := range names {
		events = append(events, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: i,
			Args: &perfettoArgs{Name: n},
		})
	}
	const usec = 1e6
	for _, sp := range r.spans {
		ev := perfettoEvent{
			Name: sp.Category.String(),
			Cat:  sp.Category.String(),
			Ph:   "X",
			Ts:   sp.Start * usec,
			Dur:  (sp.End - sp.Start) * usec,
			Pid:  0,
			Tid:  tids[sp.Proc],
		}
		if sp.Resource != "" || sp.Phase != "" || sp.Bytes != 0 || sp.Device != sim.DeviceUnknown {
			ev.Args = &perfettoArgs{Resource: sp.Resource, Phase: sp.Phase, Bytes: sp.Bytes}
			if sp.Device != sim.DeviceUnknown {
				ev.Args.Device = sp.Device.String()
			}
		}
		events = append(events, ev)
	}
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// WriteSpansCSV exports the spans as RFC-4180 CSV. The header is the
// span schema's canonical field list (SpanFieldNames), currently
// "start_s,end_s,category,device,process,resource,phase,bytes"; the
// device column is empty for spans whose emitter declared no device.
// ReadSpansCSV reads this format back (and the older header without
// the device column).
func (r *Recorder) WriteSpansCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(SpanFieldNames()); err != nil {
		return err
	}
	for _, sp := range r.spans {
		rec := RecordOf(sp)
		row := []string{
			strconv.FormatFloat(rec.Start, 'f', 9, 64),
			strconv.FormatFloat(rec.End, 'f', 9, 64),
			rec.Category,
			rec.Device,
			rec.Proc,
			rec.Resource,
			rec.Phase,
			strconv.FormatInt(rec.Bytes, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ByCategory returns total span seconds per category, a quick
// aggregate for tests and ad-hoc inspection.
func (r *Recorder) ByCategory() map[sim.Category]float64 {
	out := map[sim.Category]float64{}
	for _, sp := range r.spans {
		out[sp.Category] += sp.End - sp.Start
	}
	return out
}

// sortSpans orders spans by (start, end, proc) — useful for tests that
// compare span sets irrespective of emission order.
func SortSpans(spans []sim.SpanEvent) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].End != spans[j].End {
			return spans[i].End < spans[j].End
		}
		return spans[i].Proc < spans[j].Proc
	})
}
