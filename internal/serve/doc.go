// Package serve implements co-design-as-a-service: an HTTP/JSON layer
// over the paper's design model (Equations 1-6) and the internal/sweep
// evaluator, served by cmd/codesignd.
//
// Three endpoints cover the query spectrum:
//
//	POST /v1/solve       one design point: resolve the partition
//	                     (Eq. 4/5 for LU, Eq. 6 for FW, Eq. 1 for MM)
//	                     and predict throughput, cached and coalesced
//	POST /v1/design      synchronous best-design search over a small
//	                     grid, ranked by predicted GFLOPS
//	POST /v1/sweep       asynchronous sweep job; poll
//	GET  /v1/sweep/{id}  for status and the full sweep result
//
// The layer is built for duplicate-heavy query mixes: solves go
// through a bounded LRU read-through cache (internal/cache.Loading)
// keyed on the canonicalized request, concurrent identical misses
// coalesce onto one evaluation, and all endpoints share one
// sweep.Evaluator so place-and-route and partition solves memoize
// across queries, designs and sweeps alike.
//
// Overload is handled by admission control, not queue collapse: at
// most Config.MaxInFlight compute requests run at once, at most
// Config.MaxQueue wait for a slot, and everything beyond that is shed
// immediately with 429 and a Retry-After header. Every request runs
// under a deadline (Config.RequestTimeout, tightened per-request with
// ?timeout_ms=); exceeding it returns 504 while any in-flight solve
// completes in the background and still populates the cache.
//
// All traffic is observable through internal/obs: the serve mux mounts
// the standard /metrics, /metrics.json, /healthz, /statusz and
// /debug/pprof/ surface next to the API, with codesignd_* families for
// per-endpoint request counts and latency histograms, cache hit/miss/
// coalesce counters, in-flight and queue depth gauges, and shed
// counts. OPERATIONS.md documents every family and endpoint.
package serve
