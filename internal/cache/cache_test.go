package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEvictionBoundAndOrder(t *testing.T) {
	c := NewLRU[int, string](3)
	for i := 1; i <= 3; i++ {
		c.Put(i, fmt.Sprint(i))
	}
	// Touch 1 so 2 becomes the LRU victim.
	if v, ok := c.Get(1); !ok || v != "1" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	c.Put(4, "4")
	if c.Len() != 3 {
		t.Fatalf("Len = %d after eviction, want 3", c.Len())
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted (least recently used)")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("key %d missing after eviction of 2", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
}

func TestLRUBoundNeverExceeded(t *testing.T) {
	const bound = 8
	c := NewLRU[int, int](bound)
	for i := 0; i < 1000; i++ {
		c.Put(i, i)
		if c.Len() > bound {
			t.Fatalf("Len = %d exceeds bound %d", c.Len(), bound)
		}
	}
	if c.Len() != bound {
		t.Fatalf("Len = %d, want %d", c.Len(), bound)
	}
	s := c.Stats()
	if s.Evictions != 1000-bound {
		t.Fatalf("Evictions = %d, want %d", s.Evictions, 1000-bound)
	}
}

func TestLRUUnbounded(t *testing.T) {
	c := NewLRU[int, int](0)
	for i := 0; i < 10000; i++ {
		c.Put(i, i)
	}
	if c.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000 (unbounded)", c.Len())
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Fatalf("Evictions = %d on unbounded cache", s.Evictions)
	}
}

func TestLRUPutReplaces(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1)
	c.Put("a", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replacing put, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("Get(a) = %d, want 2", v)
	}
}

// TestGetOrComputeExactlyOnce hammers one cache from many goroutines
// and asserts each distinct key's loader ran exactly once — the
// memoizer contract the sweep relies on. Run with -race.
func TestGetOrComputeExactlyOnce(t *testing.T) {
	const keys, workers, rounds = 17, 8, 200
	c := NewLRU[int, int](0)
	var loads [keys]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (i + w) % keys
				v, _ := c.GetOrCompute(k, func() int {
					loads[k].Add(1)
					return k * 10
				})
				if v != k*10 {
					t.Errorf("GetOrCompute(%d) = %d", k, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for k := range loads {
		if n := loads[k].Load(); n != 1 {
			t.Errorf("key %d loaded %d times, want exactly 1", k, n)
		}
	}
	s := c.Stats()
	if s.Misses != keys || s.Lookups != workers*rounds {
		t.Errorf("stats = %+v, want %d misses over %d lookups", s, keys, workers*rounds)
	}
	if got := s.HitRate(); got <= 0.9 {
		t.Errorf("HitRate = %.3f, want > 0.9 on a duplicate-heavy load", got)
	}
}

func TestFlightCoalescesConcurrentLoads(t *testing.T) {
	f := NewFlight[string, int]()
	release := make(chan struct{})
	var loads atomic.Int64

	const followers = 15
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	results := make([]int, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := f.Do(context.Background(), "k", func() (int, error) {
				loads.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Let everyone pile onto the call, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != followers {
		t.Fatalf("%d callers shared, want %d", n, followers)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
}

func TestFlightFollowerHonorsContext(t *testing.T) {
	f := NewFlight[string, int]()
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go f.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := f.Do(ctx, "k", func() (int, error) { return 2, nil })
	if !shared {
		t.Fatal("follower should report shared")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestLoadingSources(t *testing.T) {
	l := NewLoading[string, int](4)
	var loads atomic.Int64
	load := func() (int, error) { loads.Add(1); return 7, nil }

	v, src, err := l.Do(context.Background(), "k", load)
	if v != 7 || src != SourceComputed || err != nil {
		t.Fatalf("first Do = %d, %v, %v; want 7, computed, nil", v, src, err)
	}
	v, src, err = l.Do(context.Background(), "k", load)
	if v != 7 || src != SourceHit || err != nil {
		t.Fatalf("second Do = %d, %v, %v; want 7, cache, nil", v, src, err)
	}
	if loads.Load() != 1 {
		t.Fatalf("load ran %d times, want 1", loads.Load())
	}
	if got := src.String(); got != "cache" {
		t.Fatalf("SourceHit.String() = %q", got)
	}
}

func TestLoadingDoesNotCacheErrors(t *testing.T) {
	l := NewLoading[string, int](4)
	boom := errors.New("boom")
	calls := 0
	_, _, err := l.Do(context.Background(), "k", func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, src, err := l.Do(context.Background(), "k", func() (int, error) { calls++; return 9, nil })
	if v != 9 || src != SourceComputed || err != nil {
		t.Fatalf("retry = %d, %v, %v; want fresh compute", v, src, err)
	}
	if calls != 2 {
		t.Fatalf("load ran %d times, want 2 (errors not cached)", calls)
	}
}

// TestLoadingCoalescedHammer checks that under heavy duplicate load
// the number of loads stays bounded by the number of distinct keys
// (not callers), with every caller seeing the right value. Run with
// -race.
func TestLoadingCoalescedHammer(t *testing.T) {
	l := NewLoading[int, int](64)
	var loads atomic.Int64
	const workers, rounds, keys = 16, 100, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (w + i) % keys
				v, _, err := l.Do(context.Background(), k, func() (int, error) {
					loads.Add(1)
					time.Sleep(time.Millisecond) // widen the coalescing window
					return k + 100, nil
				})
				if err != nil || v != k+100 {
					t.Errorf("Do(%d) = %d, %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := loads.Load(); n != keys {
		t.Fatalf("loads = %d, want exactly %d (one per key: cache + coalescing)", n, keys)
	}
}

func TestStatsHitRateZeroSafe(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Fatalf("zero Stats HitRate = %v", r)
	}
	s := Stats{Lookups: 4, Hits: 3, Misses: 1}
	if r := s.HitRate(); r != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", r)
	}
}

func TestDumpSeedRoundtrip(t *testing.T) {
	c := NewLRU[string, int](0)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // recency now a, c, b

	dump := c.Dump()
	want := []Entry[string, int]{{"a", 1}, {"c", 3}, {"b", 2}}
	if len(dump) != len(want) {
		t.Fatalf("Dump = %v, want %v", dump, want)
	}
	for i := range want {
		if dump[i] != want[i] {
			t.Fatalf("Dump = %v, want %v (MRU first)", dump, want)
		}
	}

	// Restoring into a fresh cache reproduces contents and recency.
	restored := NewLRU[string, int](0)
	restored.Seed(dump)
	redump := restored.Dump()
	for i := range want {
		if redump[i] != want[i] {
			t.Fatalf("re-Dump = %v, want %v", redump, want)
		}
	}
	// Dump/Seed must not perturb lookup stats.
	if st := restored.Stats(); st.Lookups != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Seed touched lookup stats: %+v", st)
	}

	// A snapshot larger than the bound keeps the most recently used
	// entries.
	small := NewLRU[string, int](2)
	small.Seed(dump)
	if small.Len() != 2 {
		t.Fatalf("Len = %d, want 2", small.Len())
	}
	if _, ok := small.Get("a"); !ok {
		t.Error("MRU entry a evicted by bounded seed")
	}
	if _, ok := small.Get("c"); !ok {
		t.Error("entry c evicted by bounded seed")
	}
	if _, ok := small.Get("b"); ok {
		t.Error("LRU entry b survived bounded seed")
	}
}

func TestSeedOverwritesExisting(t *testing.T) {
	c := NewLRU[string, int](0)
	c.Put("a", 1)
	c.Seed([]Entry[string, int]{{"a", 42}, {"b", 2}})
	if v, _ := c.Get("a"); v != 42 {
		t.Fatalf("a = %d after seed, want 42", v)
	}
	// Seeded recency: a (first in snapshot) is most recent.
	if d := c.Dump(); d[0].Key != "a" {
		t.Fatalf("Dump head = %q, want a", d[0].Key)
	}
}

func TestLoadingDumpSeed(t *testing.T) {
	l := NewLoading[string, int](0)
	ctx := context.Background()
	l.Do(ctx, "x", func() (int, error) { return 7, nil })

	l2 := NewLoading[string, int](0)
	l2.Seed(l.Dump())
	calls := 0
	v, src, err := l2.Do(ctx, "x", func() (int, error) { calls++; return 0, nil })
	if err != nil || v != 7 || src != SourceHit || calls != 0 {
		t.Fatalf("seeded lookup: v=%d src=%v calls=%d err=%v, want 7/hit/0/nil", v, src, calls, err)
	}
}
