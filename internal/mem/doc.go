// Package mem models the node memory system seen by the co-design
// model: the DRAM the processor owns, the FPGA's streaming access to it
// over the processor interconnect (the Bd of Section 4.1 — 1.04 GB/s
// effective for the matrix multiplier reading one word per cycle at
// 130 MHz), the on-board SRAM the designs stage operands in, and the
// write-coordination rules of Section 4.4.
package mem
