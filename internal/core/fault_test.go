package core

import (
	"reflect"
	"testing"

	"codesign/internal/fault"
	"codesign/internal/trace"
)

func mustInjector(t *testing.T, spec *fault.Spec, nodes int) *fault.Injector {
	t.Helper()
	inj, err := fault.New(spec, nodes)
	if err != nil {
		t.Fatalf("fault.New: %v", err)
	}
	return inj
}

// An installed injector with no configured faults must leave the run
// byte-identical to one without the fault layer: same final time, same
// span stream. This pins the zero-cost-when-unused contract the
// BENCH_baseline gate relies on.
func TestLUEmptyInjectorByteIdentical(t *testing.T) {
	recA := trace.NewRecorder()
	base, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid, Observer: recA})
	if err != nil {
		t.Fatal(err)
	}
	recB := trace.NewRecorder()
	inj := mustInjector(t, &fault.Spec{}, 6)
	faulted, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid, Observer: recB, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if base.Seconds != faulted.Seconds {
		t.Fatalf("empty injector changed the run: %v != %v", faulted.Seconds, base.Seconds)
	}
	if len(faulted.Repartitions) != 0 || len(faulted.DeadNodes) != 0 {
		t.Fatalf("empty injector reported faults: %+v %v", faulted.Repartitions, faulted.DeadNodes)
	}
	if !reflect.DeepEqual(recA.Spans(), recB.Spans()) {
		t.Fatal("empty injector changed the span stream")
	}
}

func TestFWEmptyInjectorByteIdentical(t *testing.T) {
	recA := trace.NewRecorder()
	base, err := RunFW(FWConfig{N: 9216, B: 256, L1: -1, Mode: Hybrid, Observer: recA})
	if err != nil {
		t.Fatal(err)
	}
	recB := trace.NewRecorder()
	inj := mustInjector(t, &fault.Spec{}, 6)
	faulted, err := RunFW(FWConfig{N: 9216, B: 256, L1: -1, Mode: Hybrid, Observer: recB, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if base.Seconds != faulted.Seconds {
		t.Fatalf("empty injector changed the run: %v != %v", faulted.Seconds, base.Seconds)
	}
	if !reflect.DeepEqual(recA.Spans(), recB.Spans()) {
		t.Fatal("empty injector changed the span stream")
	}
}

// A sustained Bd throttle must be detected from observed span telemetry
// and answered with an Equation (4)/(5) re-solve, and the whole flow
// must be deterministic: the same spec and seed reproduce the same
// makespan and repartition history bit-exactly.
func TestLUThrottleBdRepartitionsDeterministically(t *testing.T) {
	base, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{
		Window: 50,
		Events: []fault.Event{
			{Kind: fault.ThrottleBd, Node: 1, Start: 100, Duration: 500, Factor: 0.25},
		},
	}
	run := func() *LUResult {
		r, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid,
			Faults: mustInjector(t, spec, 6)})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := run()
	if a.Seconds <= base.Seconds {
		t.Fatalf("throttled run finished in %v, no slower than the nominal %v", a.Seconds, base.Seconds)
	}
	if len(a.Repartitions) == 0 {
		t.Fatal("sustained Bd throttle triggered no repartition")
	}
	first := a.Repartitions[0]
	if first.Reason != "divergence" {
		t.Fatalf("reason %q, want divergence", first.Reason)
	}
	if first.Factors.Bd >= 1 {
		t.Fatalf("repartition saw nominal Bd: %+v", first.Factors)
	}
	if first.Live != 6 {
		t.Fatalf("live %d, want 6", first.Live)
	}
	b := run()
	if a.Seconds != b.Seconds {
		t.Fatalf("same spec, different makespans: %v != %v", a.Seconds, b.Seconds)
	}
	if !reflect.DeepEqual(a.Repartitions, b.Repartitions) {
		t.Fatalf("same spec, different repartition histories:\n%+v\n%+v", a.Repartitions, b.Repartitions)
	}
}

// A mid-run node kill must complete through degraded-mode
// repartitioning: the dead node leaves at an iteration boundary, the
// schedule shrinks to the survivors, and the result reports the loss.
func TestLUNodeKillCompletes(t *testing.T) {
	base, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{
		Events: []fault.Event{{Kind: fault.NodeKill, Node: 3, Start: 300}},
	}
	r, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid,
		Faults: mustInjector(t, spec, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds <= base.Seconds {
		t.Fatalf("five-node run finished in %v, no slower than the six-node %v", r.Seconds, base.Seconds)
	}
	if !reflect.DeepEqual(r.DeadNodes, []int{3}) {
		t.Fatalf("dead nodes %v, want [3]", r.DeadNodes)
	}
	var death *Repartition
	for i := range r.Repartitions {
		if r.Repartitions[i].Reason == "node-death" {
			death = &r.Repartitions[i]
			break
		}
	}
	if death == nil {
		t.Fatalf("no node-death repartition recorded: %+v", r.Repartitions)
	}
	if death.Live != 5 {
		t.Fatalf("node-death repartition reports %d live nodes, want 5", death.Live)
	}
	if death.Time < 300 {
		t.Fatalf("repartition at t=%v precedes the kill at t=300", death.Time)
	}
}

// Losing all but one node cannot be repartitioned around (LU needs a
// panel node plus at least one compute node) — the run must fail with
// an error, not hang or panic.
func TestLUTooFewSurvivorsErrors(t *testing.T) {
	spec := &fault.Spec{}
	for n := 1; n < 6; n++ {
		spec.Events = append(spec.Events, fault.Event{Kind: fault.NodeKill, Node: n, Start: 250})
	}
	_, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid,
		Faults: mustInjector(t, spec, 6)})
	if err == nil {
		t.Fatal("run with one survivor succeeded")
	}
}

// The oracle detector knows the configured ground truth and reacts at
// the first iteration boundary inside the fault — never later than the
// observed-telemetry detector it is the reference for.
func TestLUOracleReactsNoLaterThanObserved(t *testing.T) {
	spec := &fault.Spec{
		Window: 50,
		Events: []fault.Event{
			{Kind: fault.CPUSlow, Node: 2, Start: 150, Duration: 600, Factor: 0.4},
		},
	}
	observed, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid,
		Faults: mustInjector(t, spec, 6)})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := RunLU(LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: Hybrid,
		Faults: mustInjector(t, spec.WithOracle(), 6)})
	if err != nil {
		t.Fatal(err)
	}
	if len(observed.Repartitions) == 0 || len(oracle.Repartitions) == 0 {
		t.Fatalf("missing repartitions: observed %d, oracle %d",
			len(observed.Repartitions), len(oracle.Repartitions))
	}
	if oracle.Repartitions[0].Time > observed.Repartitions[0].Time {
		t.Fatalf("oracle repartitioned at %v, after the observed detector at %v",
			oracle.Repartitions[0].Time, observed.Repartitions[0].Time)
	}
}

// FW's whole-task split must shift toward the FPGA when the processor
// becomes a straggler.
func TestFWCPUSlowRepartitions(t *testing.T) {
	base, err := RunFW(FWConfig{N: 18432, B: 256, L1: -1, Mode: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{
		Events: []fault.Event{
			{Kind: fault.CPUSlow, Node: 0, Start: 100, Duration: 800, Factor: 0.3},
		},
	}
	r, err := RunFW(FWConfig{N: 18432, B: 256, L1: -1, Mode: Hybrid,
		Faults: mustInjector(t, spec, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Repartitions) == 0 {
		t.Fatal("sustained CPU straggler triggered no repartition")
	}
	first := r.Repartitions[0]
	if first.L1 > base.L1 {
		t.Fatalf("slower CPU raised the processor share: l1 %d -> %d", base.L1, first.L1)
	}
	if first.Factors.CPU >= 1 {
		t.Fatalf("repartition saw nominal CPU: %+v", first.Factors)
	}
}

// FW cannot shed a node: its contiguous block-column distribution has
// no surviving owner for a dead node's columns, so kill specs must be
// rejected up front.
func TestFWNodeKillRejected(t *testing.T) {
	spec := &fault.Spec{Events: []fault.Event{{Kind: fault.NodeKill, Node: 1, Start: 10}}}
	_, err := RunFW(FWConfig{N: 9216, B: 256, L1: -1, Mode: Hybrid,
		Faults: mustInjector(t, spec, 6)})
	if err == nil {
		t.Fatal("FW accepted a node-kill spec")
	}
}

// Functional checking carries real matrices; degraded mode reshapes the
// schedule underneath them, so the combination is rejected.
func TestFunctionalWithFaultsRejected(t *testing.T) {
	inj := mustInjector(t, &fault.Spec{}, 6)
	if _, err := RunLU(LUConfig{N: 300, B: 60, PEs: 4, BF: -1, L: -1, Mode: Hybrid,
		Functional: true, Seed: 1, Faults: inj}); err == nil {
		t.Fatal("LU accepted Functional together with Faults")
	}
	if _, err := RunFW(FWConfig{N: 96, B: 8, PEs: 4, L1: -1, Mode: Hybrid,
		Functional: true, Seed: 1, Faults: mustInjector(t, &fault.Spec{}, 6)}); err == nil {
		t.Fatal("FW accepted Functional together with Faults")
	}
}
