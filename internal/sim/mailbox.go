package sim

// Mailbox is an unbounded FIFO message queue between processes in
// virtual time: Put never blocks, Get blocks the receiver until a
// message is available. It is the primitive under the MPI layer and the
// FPGA status registers.
//
// Both the message queue and the waiter queue are head-indexed rings
// over a reusable backing array: popping advances the head (clearing
// the slot so payloads are not retained) and an emptied queue rewinds
// to the array's start, so steady-state Put/Get traffic allocates
// nothing.
type Mailbox struct {
	eng     *Engine
	name    string
	queue   []any
	qhead   int
	waiters []*Proc
	whead   int
	why     *parkReason
}

// NewMailbox creates an empty mailbox.
func NewMailbox(e *Engine, name string) *Mailbox {
	return &Mailbox{eng: e, name: name, why: newParkReason("recv " + name)}
}

// Len returns the number of queued messages.
func (m *Mailbox) Len() int { return len(m.queue) - m.qhead }

// popMsg removes and returns the oldest message. The caller must have
// checked Len() > 0.
func (m *Mailbox) popMsg() any {
	v := m.queue[m.qhead]
	m.queue[m.qhead] = nil
	m.qhead++
	if m.qhead == len(m.queue) {
		m.queue = m.queue[:0]
		m.qhead = 0
	}
	return v
}

// Put deposits v and wakes one waiting receiver. It may be called from
// process or scheduler context.
func (m *Mailbox) Put(v any) {
	if m.qhead > 0 && len(m.queue) == cap(m.queue) {
		// A persistent backlog never drains, so popMsg's rewind never
		// fires; compact the live window to the front instead of letting
		// append grow the array forever. Vacated slots are cleared so
		// payloads are not retained.
		n := copy(m.queue, m.queue[m.qhead:])
		for i := n; i < len(m.queue); i++ {
			m.queue[i] = nil
		}
		m.queue = m.queue[:n]
		m.qhead = 0
		if m.eng.ctr != nil {
			m.eng.ctr.Compactions.Add(1)
		}
	}
	m.queue = append(m.queue, v)
	if m.whead < len(m.waiters) {
		next := m.waiters[m.whead]
		m.waiters[m.whead] = nil
		m.whead++
		if m.whead == len(m.waiters) {
			m.waiters = m.waiters[:0]
			m.whead = 0
		}
		e := m.eng
		e.scheduleProc(e.now, next)
	}
}

// Get removes and returns the oldest message, blocking p until one
// arrives.
func (m *Mailbox) Get(p *Proc) any {
	for m.Len() == 0 {
		if m.whead > 0 && len(m.waiters) == cap(m.waiters) {
			// Same compaction as Put's message ring, for the receiver
			// queue: many parked receivers that are never all woken at
			// once would otherwise grow the array without bound.
			n := copy(m.waiters, m.waiters[m.whead:])
			for i := n; i < len(m.waiters); i++ {
				m.waiters[i] = nil
			}
			m.waiters = m.waiters[:n]
			m.whead = 0
			if m.eng.ctr != nil {
				m.eng.ctr.Compactions.Add(1)
			}
		}
		m.waiters = append(m.waiters, p)
		p.park(parkOn, m.why, 0)
	}
	return m.popMsg()
}

// TryGet removes and returns the oldest message without blocking; ok is
// false if the mailbox is empty.
func (m *Mailbox) TryGet() (v any, ok bool) {
	if m.Len() == 0 {
		return nil, false
	}
	return m.popMsg(), true
}

// Signal is a broadcast condition: processes Wait on it, and Fire
// releases all current waiters simultaneously (at the current virtual
// time). It models the FPGA "done" status register the processor polls.
type Signal struct {
	eng     *Engine
	name    string
	fired   bool
	waiters []*Proc
	why     *parkReason
}

// NewSignal creates an unfired signal.
func NewSignal(e *Engine, name string) *Signal {
	return &Signal{eng: e, name: name}
}

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all waiters. Subsequent Wait calls return immediately
// until Reset.
func (s *Signal) Fire() {
	s.fired = true
	e := s.eng
	for i, p := range s.waiters {
		s.waiters[i] = nil
		e.scheduleProc(e.now, p)
	}
	s.waiters = s.waiters[:0]
}

// Reset re-arms the signal.
func (s *Signal) Reset() { s.fired = false }

// Wait blocks p until the signal fires (returns immediately if already
// fired).
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	if s.why == nil {
		s.why = newParkReason("signal " + s.name)
	}
	s.waiters = append(s.waiters, p)
	p.park(parkOn, s.why, 0)
}

// Barrier synchronizes n processes: each calls Arrive, and all resume
// once the n-th arrives. It resets automatically for reuse.
type Barrier struct {
	eng     *Engine
	name    string
	n       int
	arrived int
	waiters []*Proc
	why     *parkReason
}

// NewBarrier creates a barrier for n processes.
func NewBarrier(e *Engine, name string, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier size must be >= 1")
	}
	return &Barrier{eng: e, name: name, n: n, why: newParkReason("barrier " + name)}
}

// Arrive blocks p until all n participants have arrived.
func (b *Barrier) Arrive(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		e := b.eng
		for i, w := range b.waiters {
			b.waiters[i] = nil
			e.scheduleProc(e.now, w)
		}
		b.waiters = b.waiters[:0]
		return
	}
	b.waiters = append(b.waiters, p)
	p.park(parkOn, b.why, 0)
}
