package exper

import (
	"fmt"

	"codesign/internal/core"
	"codesign/internal/fault"
)

// degradedScenario is one fault-injection configuration of the
// degraded-mode study.
type degradedScenario struct {
	app  string // "lu" or "fw"
	name string
	spec *fault.Spec
}

// degradedScenarios are the representative off-nominal conditions the
// Degraded table measures: one per fault class the injector models.
func degradedScenarios() []degradedScenario {
	return []degradedScenario{
		{"lu", "bd-throttle", &fault.Spec{
			Window: 50,
			Events: []fault.Event{{Kind: fault.ThrottleBd, Node: 1, Start: 100, Duration: 500, Factor: 0.25}},
		}},
		{"lu", "cpu-straggler", &fault.Spec{
			Window: 50,
			Events: []fault.Event{{Kind: fault.CPUSlow, Node: 2, Start: 150, Duration: 600, Factor: 0.4}},
		}},
		{"lu", "fpga-stall", &fault.Spec{
			Window: 50,
			Events: []fault.Event{{Kind: fault.FPGAStall, Node: 4, Start: 200, Duration: 120}},
		}},
		{"lu", "node-kill", &fault.Spec{
			Events: []fault.Event{{Kind: fault.NodeKill, Node: 3, Start: 300}},
		}},
		{"fw", "cpu-straggler", &fault.Spec{
			Events: []fault.Event{{Kind: fault.CPUSlow, Node: 0, Start: 100, Duration: 800, Factor: 0.3}},
		}},
		{"fw", "bn-throttle", &fault.Spec{
			Events: []fault.Event{{Kind: fault.ThrottleBn, Node: 2, Start: 200, Duration: 600, Factor: 0.5}},
		}},
	}
}

// Degraded runs the degraded-mode study: each fault scenario simulated
// with the observed-telemetry detector and with the oracle detector,
// reporting makespan inflation over the fault-free run, repartition
// counts and node losses. Every run is deterministic, so the table is
// reproducible bit-exactly.
func Degraded() (*Table, error) {
	t := &Table{
		ID:     "degraded",
		Title:  "Degraded-mode repartitioning under injected faults (XD1, 6 nodes)",
		Header: []string{"app", "scenario", "detector", "seconds", "inflation", "repart", "dead"},
		Notes: []string{
			"lu: n=30000, b=3000 hybrid; fw: n=18432, b=256 hybrid",
			"inflation = makespan over the fault-free run of the same app",
			"oracle rows repartition against the configured ground truth at the first iteration boundary",
		},
	}
	base := map[string]float64{}
	lu, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: core.Hybrid})
	if err != nil {
		return nil, err
	}
	base["lu"] = lu.Seconds
	fw, err := core.RunFW(core.FWConfig{N: 18432, B: 256, L1: -1, Mode: core.Hybrid})
	if err != nil {
		return nil, err
	}
	base["fw"] = fw.Seconds
	t.Rows = append(t.Rows,
		[]string{"lu", "nominal", "-", f2(lu.Seconds), "-", "0", "-"},
		[]string{"fw", "nominal", "-", f2(fw.Seconds), "-", "0", "-"})

	for _, sc := range degradedScenarios() {
		for _, det := range []string{"observed", "oracle"} {
			spec := sc.spec
			if det == "oracle" {
				spec = spec.WithOracle()
			}
			seconds, reparts, dead, err := runDegraded(sc.app, spec)
			if err != nil {
				return nil, fmt.Errorf("exper: degraded %s/%s/%s: %w", sc.app, sc.name, det, err)
			}
			deadCell := "-"
			if len(dead) > 0 {
				deadCell = fmt.Sprint(dead)
			}
			t.Rows = append(t.Rows, []string{sc.app, sc.name, det, f2(seconds),
				fmt.Sprintf("+%.1f%%", 100*(seconds/base[sc.app]-1)),
				fmt.Sprint(reparts), deadCell})
		}
	}
	return t, nil
}

// runDegraded simulates one app under one fault spec. Injectors are
// stateful, so a fresh one is built per run.
func runDegraded(app string, spec *fault.Spec) (seconds float64, reparts int, dead []int, err error) {
	inj, err := fault.New(spec, 6)
	if err != nil {
		return 0, 0, nil, err
	}
	switch app {
	case "lu":
		r, err := core.RunLU(core.LUConfig{N: 30000, B: 3000, BF: -1, L: -1,
			Mode: core.Hybrid, Faults: inj})
		if err != nil {
			return 0, 0, nil, err
		}
		return r.Seconds, len(r.Repartitions), r.DeadNodes, nil
	case "fw":
		r, err := core.RunFW(core.FWConfig{N: 18432, B: 256, L1: -1,
			Mode: core.Hybrid, Faults: inj})
		if err != nil {
			return 0, 0, nil, err
		}
		return r.Seconds, len(r.Repartitions), nil, nil
	}
	return 0, 0, nil, fmt.Errorf("exper: unknown degraded app %q", app)
}
