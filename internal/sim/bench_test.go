package sim_test

import (
	"testing"

	"codesign/internal/sim"
)

// Engine micro-benchmarks, run with -benchmem. These isolate the
// scheduler hot paths that the application-level benchmarks in the
// repository root (BenchmarkSimEngine, BenchmarkDesignSpaceSweep)
// exercise in aggregate: the event loop's timed-wait turnaround, the
// proc-to-proc baton handoff, resource contention queues, mailbox
// traffic, and the cost of an attached observer. CI compares their
// ns/op and allocs/op against BENCH_speed.json via cmd/perfcheck.

// BenchmarkEventLoopSelf measures the self-resume fast path: a single
// process doing timed waits never hands the baton to another goroutine,
// so this is the floor of the event loop (pop + clock advance).
func BenchmarkEventLoopSelf(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New()
		e.Go("p", func(p *sim.Proc) {
			for k := 0; k < 1000; k++ {
				p.Wait(1)
			}
		})
		if err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1000*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEventLoopHandoff measures the baton handoff under the two
// charging styles. "raw" issues 1000 independent timed waits per
// process across eight interleaved processes, forcing a goroutine
// switch on almost every event — the ~2.25 µs/event ceiling the
// ROADMAP measured. "fused" issues the same 1000 charges per process
// as 250 four-charge WaitSeq sequences: intermediate boundaries
// advance in scheduler context without waking the process, so only
// every fourth event pays a handoff. Identical event count, identical
// simulated time; the gap between the two variants is the engine's
// handoff-batching win, gated in BENCH_speed.json.
func BenchmarkEventLoopHandoff(b *testing.B) {
	loop := func(b *testing.B, body func(p *sim.Proc)) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.New()
			for j := 0; j < 8; j++ {
				e.Go("p", body)
			}
			if err := e.Run(0); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(8000*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	}
	b.Run("raw", func(b *testing.B) {
		loop(b, func(p *sim.Proc) {
			for k := 0; k < 1000; k++ {
				p.Wait(1)
			}
		})
	})
	b.Run("fused", func(b *testing.B) {
		charges := []sim.Charge{
			{Cat: sim.CatCompute, Dt: 1}, {Cat: sim.CatCompute, Dt: 1},
			{Cat: sim.CatCompute, Dt: 1}, {Cat: sim.CatCompute, Dt: 1},
		}
		loop(b, func(p *sim.Proc) {
			for k := 0; k < 250; k++ {
				p.WaitSeq(sim.DeviceCPU, "cpu", charges)
			}
		})
	})
}

// BenchmarkResourceContention queues eight processes on a capacity-1
// resource, exercising the waiter FIFO and direct handoff on Release.
func BenchmarkResourceContention(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New()
		r := sim.NewResource(e, "r", 1)
		for j := 0; j < 8; j++ {
			e.Go("p", func(p *sim.Proc) {
				for k := 0; k < 250; k++ {
					r.Use(p, 1)
				}
			})
		}
		if err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMailboxPingPong bounces a message between two processes,
// exercising the message ring and park/wake on an empty mailbox.
func BenchmarkMailboxPingPong(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New()
		ping := sim.NewMailbox(e, "ping")
		pong := sim.NewMailbox(e, "pong")
		e.Go("a", func(p *sim.Proc) {
			for k := 0; k < 500; k++ {
				ping.Put(k)
				pong.Get(p)
			}
		})
		e.Go("b", func(p *sim.Proc) {
			for k := 0; k < 500; k++ {
				ping.Get(p)
				pong.Put(k)
			}
		})
		if err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// countObserver counts events and spans without retaining them — the
// recorder's cheap configuration, isolating delivery overhead.
type countObserver struct {
	events, spans int
}

func (c *countObserver) Event(t float64, proc, action string) { c.events++ }
func (c *countObserver) Span(s sim.SpanEvent)                 { c.spans++ }

// BenchmarkObservedWaits is BenchmarkEventLoopSelf with an observer
// registered: the marginal cost of telemetry on the hot path (park
// reason interning plus Event/Span delivery).
func BenchmarkObservedWaits(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New()
		var obs countObserver
		e.Observe(&obs)
		e.Go("p", func(p *sim.Proc) {
			for k := 0; k < 1000; k++ {
				p.WaitSpan(sim.CatCompute, "r", 0, 1)
			}
		})
		if err := e.Run(0); err != nil {
			b.Fatal(err)
		}
		if obs.spans != 1000 {
			b.Fatalf("observer saw %d spans, want 1000", obs.spans)
		}
	}
}

// BenchmarkEngineCounters prices the engine-counter sink on the
// handoff-heavy loop of BenchmarkEventLoopHandoff: "off" is the
// default nil sink (the counting sites must cost only a nil check, so
// its numbers track BenchmarkEventLoopHandoff), "on" pays one atomic
// add per counted action. cmd/perfcheck gates both against
// BENCH_speed.json — in particular allocs/op, which must not move at
// all when counting is enabled.
func BenchmarkEngineCounters(b *testing.B) {
	loop := func(b *testing.B, ctr *sim.Counters) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.New()
			e.SetCounters(ctr)
			for j := 0; j < 8; j++ {
				e.Go("p", func(p *sim.Proc) {
					for k := 0; k < 1000; k++ {
						p.Wait(1)
					}
				})
			}
			if err := e.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { loop(b, nil) })
	b.Run("on", func(b *testing.B) {
		var ctr sim.Counters
		loop(b, &ctr)
		if ctr.EventsPopped.Load() == 0 {
			b.Fatal("counters recorded nothing")
		}
	})
}
