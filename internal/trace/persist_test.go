package trace

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"codesign/internal/sim"
)

func sampleSpans() []sim.SpanEvent {
	return []sim.SpanEvent{
		{Category: sim.CatCompute, Device: sim.DeviceFPGA, Proc: "fpga0", Resource: "fpga0-pe", Phase: "panel", Start: 0, End: 1.5},
		{Category: sim.CatDMA, Device: sim.DeviceDRAM, Proc: "fpga0", Resource: "dram0", Phase: "panel", Bytes: 4096, Start: 0.25, End: 0.75},
		{Category: sim.CatNetwork, Device: sim.DeviceLink, Proc: "cpu1", Resource: "link1", Phase: "broadcast", Bytes: 1 << 20, Start: 1.5, End: 2.25},
		{Category: sim.CatSync, Proc: "cpu2", Resource: "dram1", Start: 2, End: 2.5},
		{Category: sim.CatCompute, Device: sim.DeviceCPU, Proc: "cpu,2", Phase: "up,date", Start: 2.5, End: 3},
	}
}

// The span schema has one definition: SpanRecord's JSON tags. The CSV
// header must be exactly that list, and every Perfetto arg key except
// the "name" thread metadata must appear in it.
func TestSpanSchemaUnified(t *testing.T) {
	names := SpanFieldNames()
	want := []string{"start_s", "end_s", "category", "device", "process", "resource", "phase", "bytes"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("SpanFieldNames = %v, want %v", names, want)
	}

	r := NewRecorder()
	for _, sp := range sampleSpans() {
		r.Span(sp)
	}
	var csvOut strings.Builder
	if err := r.WriteSpansCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csvOut.String(), "\n", 2)[0]
	if header != strings.Join(names, ",") {
		t.Fatalf("CSV header %q does not match schema %v", header, names)
	}

	schema := map[string]bool{}
	for _, n := range names {
		schema[n] = true
	}
	at := reflect.TypeOf(perfettoArgs{})
	for i := 0; i < at.NumField(); i++ {
		key := strings.SplitN(at.Field(i).Tag.Get("json"), ",", 2)[0]
		if key == "name" {
			continue // thread-track metadata, not a span field
		}
		if !schema[key] {
			t.Errorf("perfetto arg key %q is not a span schema field", key)
		}
	}
}

func TestWriteReadSpansRoundTrip(t *testing.T) {
	spans := sampleSpans()
	meta := Meta{App: "lu", Machine: "xd1", Label: "nominal", Makespan: 3}

	var a, b bytes.Buffer
	if err := WriteSpans(&a, meta, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpans(&b, meta, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteSpans is not byte-deterministic")
	}

	gotMeta, gotSpans, err := ReadSpans(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantMeta := meta
	wantMeta.Schema = SpanSchemaVersion
	wantMeta.Spans = len(spans)
	if gotMeta != wantMeta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, wantMeta)
	}
	if !reflect.DeepEqual(gotSpans, spans) {
		t.Fatalf("spans round-trip mismatch:\ngot  %+v\nwant %+v", gotSpans, spans)
	}
}

func TestReadSpansFillsMakespan(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, Meta{}, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	meta, _, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Makespan != 3 {
		t.Fatalf("makespan = %v, want 3 (latest span end)", meta.Makespan)
	}
}

func TestReadSpansErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"future schema":    `{"schema":99,"makespan_s":1,"spans":0}` + "\n",
		"unknown field":    `{"schema":1,"makespan_s":1,"spans":0,"bogus":true}` + "\n",
		"truncated stream": `{"schema":1,"makespan_s":1,"spans":2}` + "\n" + `{"start_s":0,"end_s":1,"category":"compute","process":"p"}` + "\n",
		"bad category":     `{"schema":1,"makespan_s":1,"spans":1}` + "\n" + `{"start_s":0,"end_s":1,"category":"warp","process":"p"}` + "\n",
		"bad device":       `{"schema":1,"makespan_s":1,"spans":1}` + "\n" + `{"start_s":0,"end_s":1,"category":"compute","device":"tpu","process":"p"}` + "\n",
	}
	for name, in := range cases {
		if _, _, err := ReadSpans(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadSpans accepted malformed input", name)
		}
	}
}

func TestReadSpansCSVRoundTrip(t *testing.T) {
	spans := sampleSpans()
	r := NewRecorder()
	for _, sp := range spans {
		r.Span(sp)
	}
	var buf strings.Builder
	if err := r.WriteSpansCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpansCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spans) {
		t.Fatalf("CSV round-trip mismatch:\ngot  %+v\nwant %+v", got, spans)
	}
}

// Old -spans-out dumps predate the device column; they must still read
// back, with DeviceUnknown filled in (trace.Classify then falls back to
// its resource-name heuristic).
func TestReadSpansCSVLegacyHeader(t *testing.T) {
	legacy := "start_s,end_s,category,process,resource,phase,bytes\n" +
		"0.000000000,1.500000000,compute,fpga0,fpga0-pe,panel,0\n" +
		"0.250000000,0.750000000,dma,fpga0,dram0,panel,4096\n"
	spans, err := ReadSpansCSV(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if sp.Device != sim.DeviceUnknown {
			t.Fatalf("legacy CSV span has device %v, want DeviceUnknown", sp.Device)
		}
	}
	if spans[1].Bytes != 4096 || spans[1].Category != sim.CatDMA || spans[1].Phase != "panel" {
		t.Fatalf("legacy span fields wrong: %+v", spans[1])
	}
}

func TestReadSpansFileSniffsFormat(t *testing.T) {
	spans := sampleSpans()
	dir := t.TempDir()

	jsonl := dir + "/run.spans"
	f, err := os.Create(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSpans(f, Meta{App: "lu", Makespan: 3}, spans); err != nil {
		t.Fatal(err)
	}
	f.Close()

	csvPath := dir + "/run.csv"
	g, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder()
	for _, sp := range spans {
		r.Span(sp)
	}
	if err := r.WriteSpansCSV(g); err != nil {
		t.Fatal(err)
	}
	g.Close()

	for _, path := range []string{jsonl, csvPath} {
		meta, got, err := ReadSpansFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !reflect.DeepEqual(got, spans) {
			t.Fatalf("%s: spans mismatch", path)
		}
		if meta.Makespan != 3 {
			t.Fatalf("%s: makespan = %v, want 3", path, meta.Makespan)
		}
	}
}

func TestParseCategoryDeviceRoundTrip(t *testing.T) {
	for _, c := range []sim.Category{sim.CatCompute, sim.CatDMA, sim.CatNetwork, sim.CatSync, sim.CatIdle} {
		got, err := sim.ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCategory(%q) = %v, %v", c.String(), got, err)
		}
	}
	for _, d := range []sim.Device{sim.DeviceUnknown, sim.DeviceCPU, sim.DeviceFPGA, sim.DeviceDRAM, sim.DeviceLink} {
		got, err := sim.ParseDevice(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDevice(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := sim.ParseCategory("nope"); err == nil {
		t.Error("ParseCategory accepted garbage")
	}
	if _, err := sim.ParseDevice("nope"); err == nil {
		t.Error("ParseDevice accepted garbage")
	}
}
