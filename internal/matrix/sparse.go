package matrix

import (
	"fmt"
	"math/rand"
)

// CSR is a compressed sparse row matrix, the format the FPGA-augmented
// conjugate-gradient work [9] streams through the accelerator.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Dims returns the dimensions.
func (s *CSR) Dims() (r, c int) { return s.rows, s.cols }

// NNZ returns the stored non-zero count.
func (s *CSR) NNZ() int { return len(s.vals) }

// FromDense compresses a dense matrix, dropping exact zeros.
func FromDense(a *Dense) *CSR {
	m, n := a.Dims()
	s := &CSR{rows: m, cols: n, rowPtr: make([]int, m+1)}
	for i := 0; i < m; i++ {
		for j, v := range a.Row(i) {
			if v != 0 {
				s.colIdx = append(s.colIdx, j)
				s.vals = append(s.vals, v)
			}
		}
		s.rowPtr[i+1] = len(s.vals)
	}
	return s
}

// ToDense expands the matrix.
func (s *CSR) ToDense() *Dense {
	d := New(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		for idx := s.rowPtr[i]; idx < s.rowPtr[i+1]; idx++ {
			d.Set(i, s.colIdx[idx], s.vals[idx])
		}
	}
	return d
}

// Apply computes y = S·x (implements MulVec for square matrices).
func (s *CSR) Apply(x, y []float64) {
	if len(x) != s.cols || len(y) != s.rows {
		panic(fmt.Sprintf("matrix: spmv %dx%d with |x|=%d |y|=%d", s.rows, s.cols, len(x), len(y)))
	}
	for i := 0; i < s.rows; i++ {
		var acc float64
		for idx := s.rowPtr[i]; idx < s.rowPtr[i+1]; idx++ {
			acc += s.vals[idx] * x[s.colIdx[idx]]
		}
		y[i] = acc
	}
}

// Dim implements MulVec for square matrices.
func (s *CSR) Dim() int {
	if s.rows != s.cols {
		panic(fmt.Sprintf("matrix: Dim of non-square CSR %dx%d", s.rows, s.cols))
	}
	return s.rows
}

// ApplyRange computes y[lo:hi] = (S·x)[lo:hi].
func (s *CSR) ApplyRange(x, y []float64, lo, hi int) {
	if lo < 0 || hi > s.rows || lo > hi {
		panic(fmt.Sprintf("matrix: spmv range [%d,%d) of %d rows", lo, hi, s.rows))
	}
	for i := lo; i < hi; i++ {
		var acc float64
		for idx := s.rowPtr[i]; idx < s.rowPtr[i+1]; idx++ {
			acc += s.vals[idx] * x[s.colIdx[idx]]
		}
		y[i] = acc
	}
}

// RowNNZ returns the non-zero count of row i.
func (s *CSR) RowNNZ(i int) int { return s.rowPtr[i+1] - s.rowPtr[i] }

// RangeNNZ returns the non-zeros stored in rows [lo, hi).
func (s *CSR) RangeNNZ(lo, hi int) int { return s.rowPtr[hi] - s.rowPtr[lo] }

// RandomSparseSPD returns a sparse symmetric positive-definite matrix:
// a symmetric pattern of the given off-diagonal density with a
// dominance-boosted diagonal.
func RandomSparseSPD(n int, density float64, rng *rand.Rand) *CSR {
	d := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if rng.Float64() < density {
				v := 2*rng.Float64() - 1
				d.Set(i, j, v)
				d.Set(j, i, v)
			}
		}
	}
	for i := 0; i < n; i++ {
		var s float64
		for _, v := range d.Row(i) {
			if v < 0 {
				s -= v
			} else {
				s += v
			}
		}
		d.Set(i, i, s+1)
	}
	return FromDense(d)
}
