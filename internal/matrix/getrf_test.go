package matrix

import (
	"errors"
	"math/rand"
	"testing"
)

func TestLUReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17, 50} {
		rng := rand.New(rand.NewSource(int64(40 + n)))
		a := RandomDiagDominant(n, rng)
		orig := a.Clone()
		if err := LU(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l, u := ExtractLU(a)
		if got := Mul(l, u); !got.EqualApprox(orig, 1e-9) {
			t.Fatalf("n=%d: L*U != A, maxdiff %g", n, got.MaxDiff(orig))
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := New(3, 3) // all zeros: immediately singular
	if err := LU(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("LU(zero) err = %v, want ErrSingular", err)
	}
}

func TestLUPanelMatchesLU(t *testing.T) {
	// A square panel factorization must coincide with plain LU.
	rng := rand.New(rand.NewSource(41))
	a := RandomDiagDominant(12, rng)
	b := a.Clone()
	if err := LU(a); err != nil {
		t.Fatal(err)
	}
	if err := LUPanel(b); err != nil {
		t.Fatal(err)
	}
	if !a.EqualApprox(b, 1e-14) {
		t.Fatal("LUPanel on square input differs from LU")
	}
}

func TestLUPanelTall(t *testing.T) {
	// Factor a tall panel and check A = L*U where L is r×c unit lower
	// trapezoidal and U is c×c upper triangular.
	rng := rand.New(rand.NewSource(42))
	r, c := 14, 6
	a := Random(r, c, rng)
	// Make leading square block dominant to avoid tiny pivots.
	for i := 0; i < c; i++ {
		a.Set(i, i, 20+a.At(i, i))
	}
	orig := a.Clone()
	if err := LUPanel(a); err != nil {
		t.Fatal(err)
	}
	l := New(r, c)
	u := New(c, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			switch {
			case i == j:
				l.Set(i, j, 1)
				u.Set(i, j, a.At(i, j))
			case i > j:
				l.Set(i, j, a.At(i, j))
			default:
				if i < c {
					u.Set(i, j, a.At(i, j))
				}
			}
		}
	}
	if got := Mul(l, u); !got.EqualApprox(orig, 1e-10) {
		t.Fatalf("panel L*U != A, maxdiff %g", got.MaxDiff(orig))
	}
}

func TestLUPanelWideInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wide panel")
		}
	}()
	LUPanel(New(3, 5))
}

func TestBlockLUMatchesUnblocked(t *testing.T) {
	for _, tc := range []struct{ n, b int }{{8, 2}, {12, 3}, {16, 4}, {20, 5}, {24, 24}, {10, 4}} {
		rng := rand.New(rand.NewSource(int64(43 + tc.n)))
		a := RandomDiagDominant(tc.n, rng)
		want := a.Clone()
		if err := LU(want); err != nil {
			t.Fatal(err)
		}
		got := a.Clone()
		if err := BlockLU(got, tc.b); err != nil {
			t.Fatalf("n=%d b=%d: %v", tc.n, tc.b, err)
		}
		if !got.EqualApprox(want, 1e-9) {
			t.Fatalf("n=%d b=%d: blocked != unblocked, maxdiff %g", tc.n, tc.b, got.MaxDiff(want))
		}
	}
}

func TestBlockLUReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := RandomDiagDominant(32, rng)
	orig := a.Clone()
	if err := BlockLU(a, 8); err != nil {
		t.Fatal(err)
	}
	l, u := ExtractLU(a)
	if got := Mul(l, u); !got.EqualApprox(orig, 1e-9) {
		t.Fatalf("BlockLU L*U != A, maxdiff %g", got.MaxDiff(orig))
	}
}

func TestLUPartialPivot(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// General random matrix: needs pivoting with high probability.
	a := Random(20, 20, rng)
	orig := a.Clone()
	perm, err := LUPartialPivot(a)
	if err != nil {
		t.Fatal(err)
	}
	l, u := ExtractLU(a)
	pa := ApplyPerm(perm, orig)
	if got := Mul(l, u); !got.EqualApprox(pa, 1e-9) {
		t.Fatalf("P*A != L*U, maxdiff %g", got.MaxDiff(pa))
	}
}

func TestLUPartialPivotSwapsRows(t *testing.T) {
	// First pivot is zero; pivoting must rescue the factorization.
	a := NewFromSlice(2, 2, []float64{0, 1, 1, 0})
	perm, err := LUPartialPivot(a)
	if err != nil {
		t.Fatal(err)
	}
	if perm[0] != 1 || perm[1] != 0 {
		t.Fatalf("perm = %v, want [1 0]", perm)
	}
}

func TestLUPartialPivotSingular(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{0, 1, 0, 2}) // zero column
	if _, err := LUPartialPivot(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestExtractLUShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := RandomDiagDominant(6, rng)
	if err := LU(a); err != nil {
		t.Fatal(err)
	}
	l, u := ExtractLU(a)
	for i := 0; i < 6; i++ {
		if l.At(i, i) != 1 {
			t.Fatal("L diagonal must be unit")
		}
		for j := i + 1; j < 6; j++ {
			if l.At(i, j) != 0 {
				t.Fatal("L must be lower triangular")
			}
		}
		for j := 0; j < i; j++ {
			if u.At(i, j) != 0 {
				t.Fatal("U must be upper triangular")
			}
		}
	}
}
