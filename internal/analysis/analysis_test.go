package analysis_test

import (
	"bytes"
	"math"
	"testing"

	"codesign/internal/analysis"
	"codesign/internal/core"
	"codesign/internal/model"
	"codesign/internal/sim"
	"codesign/internal/trace"
)

func span(cat sim.Category, dev sim.Device, proc, res, phase string, start, end float64) sim.SpanEvent {
	return sim.SpanEvent{Category: cat, Device: dev, Proc: proc, Resource: res,
		Phase: phase, Start: start, End: end}
}

func TestCriticalPathChain(t *testing.T) {
	// wire -> cpu compute -> queue wait -> fpga compute, back to back.
	spans := []sim.SpanEvent{
		span(sim.CatNetwork, sim.DeviceLink, "node0", "egress0", "broadcast", 0, 2),
		span(sim.CatCompute, sim.DeviceCPU, "node1", "cpu1", "opmm", 2, 5),
		span(sim.CatSync, sim.DeviceFPGA, "node1", "fpga1", "opmm", 5, 6),
		span(sim.CatCompute, sim.DeviceFPGA, "node1", "fpga1", "opmm", 6, 8),
	}
	path := analysis.ExtractCriticalPath(spans, 8)
	if len(path) != 4 {
		t.Fatalf("want 4 hops, got %d: %+v", len(path), path)
	}
	wantRes := []string{"egress0", "cpu1", "fpga1", "fpga1"}
	for i, h := range path {
		if h.Resource != wantRes[i] {
			t.Errorf("hop %d on %q, want %q", i, h.Resource, wantRes[i])
		}
	}
	if got := analysis.PathTotal(path); got != 8 {
		t.Fatalf("path total %v != makespan 8", got)
	}
	// Hops are chronological and contiguous.
	prev := 0.0
	for i, h := range path {
		if h.Start != prev {
			t.Fatalf("hop %d starts at %v, want %v", i, h.Start, prev)
		}
		prev = h.End
	}
}

func TestCriticalPathIdleGaps(t *testing.T) {
	spans := []sim.SpanEvent{
		span(sim.CatCompute, sim.DeviceCPU, "p", "cpu", "", 1, 3),
	}
	path := analysis.ExtractCriticalPath(spans, 5)
	if len(path) != 3 {
		t.Fatalf("want idle/span/idle, got %+v", path)
	}
	if path[0].Category != sim.CatIdle || path[0].Start != 0 || path[0].End != 1 {
		t.Errorf("leading idle wrong: %+v", path[0])
	}
	if path[2].Category != sim.CatIdle || path[2].Start != 3 || path[2].End != 5 {
		t.Errorf("trailing idle wrong: %+v", path[2])
	}
	if got := analysis.PathTotal(path); got != 5 {
		t.Fatalf("path total %v != makespan 5", got)
	}
}

func TestCriticalPathCoalesces(t *testing.T) {
	spans := []sim.SpanEvent{
		span(sim.CatCompute, sim.DeviceFPGA, "p", "fpga", "opmm", 0, 2),
		span(sim.CatCompute, sim.DeviceFPGA, "p", "fpga", "opmm", 2, 4),
	}
	path := analysis.ExtractCriticalPath(spans, 4)
	if len(path) != 1 {
		t.Fatalf("want 1 coalesced hop, got %+v", path)
	}
	if path[0].Start != 0 || path[0].End != 4 {
		t.Fatalf("coalesced hop covers [%v,%v], want [0,4]", path[0].Start, path[0].End)
	}
}

func TestCriticalPathTieBreak(t *testing.T) {
	// Both end at 5: compute wins over network regardless of input order.
	a := span(sim.CatCompute, sim.DeviceCPU, "x", "cpu", "", 0, 5)
	b := span(sim.CatNetwork, sim.DeviceLink, "y", "egress", "", 3, 5)
	for _, spans := range [][]sim.SpanEvent{{a, b}, {b, a}} {
		path := analysis.ExtractCriticalPath(spans, 5)
		if len(path) != 1 || path[0].Category != sim.CatCompute {
			t.Fatalf("want single compute hop, got %+v", path)
		}
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	path := analysis.ExtractCriticalPath(nil, 3)
	if len(path) != 1 || path[0].Category != sim.CatIdle || analysis.PathTotal(path) != 3 {
		t.Fatalf("want one idle hop over [0,3], got %+v", path)
	}
	if got := analysis.ExtractCriticalPath(nil, 0); got != nil {
		t.Fatalf("zero makespan should yield nil path, got %+v", got)
	}
}

func TestClassifyPhasesBindings(t *testing.T) {
	spans := []sim.SpanEvent{
		// Phase "a": FPGA side dominates (tf=10 vs 3+2+1).
		span(sim.CatCompute, sim.DeviceFPGA, "p", "fpga", "a", 0, 10),
		span(sim.CatCompute, sim.DeviceCPU, "p", "cpu", "a", 0, 3),
		span(sim.CatDMA, sim.DeviceDRAM, "p", "dram", "a", 3, 5),
		span(sim.CatNetwork, sim.DeviceLink, "p", "egress", "a", 5, 6),
		// Phase "b": CPU compute dominates.
		span(sim.CatCompute, sim.DeviceCPU, "p", "cpu", "b", 10, 15),
		span(sim.CatCompute, sim.DeviceFPGA, "p", "fpga", "b", 10, 11),
	}
	phases := analysis.ClassifyPhases(spans, map[string]model.Binding{
		"a": model.BindOfFf,
		"b": model.BindBd, // deliberately wrong
	})
	if len(phases) != 2 {
		t.Fatalf("want 2 phases, got %+v", phases)
	}
	pa, pb := phases[0], phases[1]
	if pa.Phase != "a" || pb.Phase != "b" {
		t.Fatalf("phase order wrong: %q, %q", pa.Phase, pb.Phase)
	}
	if pa.Binding != model.BindOfFf || !pa.Agree {
		t.Errorf("phase a: binding %v agree %v, want Of*Ff/agree", pa.Binding, pa.Agree)
	}
	wantMargin := (10.0 - 6.0) / 10.0
	if math.Abs(pa.Margin-wantMargin) > 1e-12 {
		t.Errorf("phase a margin %v, want %v", pa.Margin, wantMargin)
	}
	if pb.Binding != model.BindOpFp || pb.Agree {
		t.Errorf("phase b: binding %v agree %v, want Op*Fp/disagree", pb.Binding, pb.Agree)
	}
	if pa.BusyTf != 10 || pa.BusyTp != 3 || pa.BusyTmem != 2 || pa.BusyTcomm != 1 {
		t.Errorf("phase a busy sums wrong: %+v", pa)
	}
}

func TestBuildTimelinesMergesOverlap(t *testing.T) {
	spans := []sim.SpanEvent{
		span(sim.CatCompute, sim.DeviceFPGA, "p", "fpga0", "", 0, 5),
		span(sim.CatCompute, sim.DeviceFPGA, "q", "fpga0", "", 2, 7),
		// Waiting must not count as the resource being busy.
		span(sim.CatSync, sim.DeviceFPGA, "r", "fpga0", "", 0, 10),
	}
	ts := analysis.BuildTimelines(spans, 10, 10)
	if len(ts) != 1 {
		t.Fatalf("want 1 timeline, got %+v", ts)
	}
	rt := ts[0]
	if rt.Name != "fpga0" || rt.Device != sim.DeviceFPGA {
		t.Fatalf("timeline identity wrong: %+v", rt)
	}
	if math.Abs(rt.Busy-7) > 1e-12 {
		t.Fatalf("union busy %v, want 7 (overlap must not double count)", rt.Busy)
	}
	if u := rt.Utilization(); math.Abs(u-0.7) > 1e-12 {
		t.Fatalf("utilization %v, want 0.7", u)
	}
	for i := 0; i < 7; i++ {
		if math.Abs(rt.Bins[i]-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, rt.Bins[i])
		}
	}
	for i := 7; i < 10; i++ {
		if rt.Bins[i] != 0 {
			t.Errorf("bin %d = %v, want 0", i, rt.Bins[i])
		}
	}
	if math.Abs(rt.Occupancy[9]-0.7) > 1e-12 || math.Abs(rt.Occupancy[0]-0.3) > 1e-12 {
		t.Errorf("occupancy deciles wrong: %+v", rt.Occupancy)
	}
}

func TestBaselineRoundTripAndDiff(t *testing.T) {
	b := analysis.NewBaseline()
	b.Set("lu.hybrid.seconds", 1005.5225)
	b.Set("lu.hybrid.gflops", 17.901)

	var buf1, buf2 bytes.Buffer
	if err := b.Write(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two writes of the same baseline differ")
	}

	got, err := analysis.ReadBaseline(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ds := analysis.Diff(b, got, 0); len(ds) != 0 {
		t.Fatalf("round trip diff not empty: %v", ds)
	}

	// A changed metric, a missing one and an extra one all surface.
	fresh := analysis.NewBaseline()
	fresh.Set("lu.hybrid.seconds", 1010.0)
	fresh.Set("fw.hybrid.seconds", 99.0)
	ds := analysis.Diff(b, fresh, 1e-6)
	if len(ds) != 3 {
		t.Fatalf("want 3 deltas, got %v", ds)
	}
	byName := map[string]analysis.Delta{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["lu.hybrid.seconds"]; d.Missing || d.Extra || d.Rel <= 0 {
		t.Errorf("changed metric delta wrong: %+v", d)
	}
	if d := byName["lu.hybrid.gflops"]; !d.Missing {
		t.Errorf("missing metric not flagged: %+v", d)
	}
	if d := byName["fw.hybrid.seconds"]; !d.Extra {
		t.Errorf("extra metric not flagged: %+v", d)
	}

	// Within tolerance: no diff.
	near := analysis.NewBaseline()
	near.Set("lu.hybrid.seconds", 1005.5225*(1+1e-9))
	near.Set("lu.hybrid.gflops", 17.901)
	if ds := analysis.Diff(b, near, 1e-6); len(ds) != 0 {
		t.Fatalf("tolerance not applied: %v", ds)
	}
}

func TestBaselineSchemaMismatch(t *testing.T) {
	if _, err := analysis.ReadBaseline(bytes.NewReader([]byte(`{"schema":99,"metrics":{}}`))); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

// TestAnalyzeLU runs the full pipeline on a small hybrid LU and checks
// the tentpole invariants: the critical path partitions the makespan,
// and the measured opMM bottleneck matches the Eq. (4) prediction.
func TestAnalyzeLU(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := core.LUConfig{N: 240, B: 40, PEs: 4, BF: -1, L: -1, Mode: core.Hybrid, Observer: rec}
	r, err := core.RunLU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expBind, _ := r.Model.StripeBinding(r.BF)
	rep := analysis.Analyze(rec.Spans(), r.Seconds, analysis.Options{
		Expected: map[string]model.Binding{"opmm": expBind},
	})

	if len(rep.CriticalPath) == 0 {
		t.Fatal("empty critical path")
	}
	if math.Abs(rep.CriticalPathTotal-r.Seconds) > 1e-9*r.Seconds {
		t.Fatalf("critical path total %v != makespan %v", rep.CriticalPathTotal, r.Seconds)
	}
	// Chronological, contiguous partition of [0, makespan].
	prev := 0.0
	for i, h := range rep.CriticalPath {
		if h.Start != prev {
			t.Fatalf("hop %d starts at %v, want %v", i, h.Start, prev)
		}
		if h.End < h.Start {
			t.Fatalf("hop %d runs backward: %+v", i, h)
		}
		prev = h.End
	}
	if prev != r.Seconds {
		t.Fatalf("path ends at %v, want makespan %v", prev, r.Seconds)
	}

	var opmm *analysis.PhaseStats
	for i := range rep.Phases {
		if rep.Phases[i].Phase == "opmm" {
			opmm = &rep.Phases[i]
		}
	}
	if opmm == nil {
		t.Fatal("no opmm phase in report")
	}
	// At this toy size the model's tmem and tcomm are within 2% of each
	// other and the simulated FPGA fill lag tips the measurement between
	// them, so only side-level agreement (FPGA vs processor side of
	// Eq. 4) is meaningful here; TestDefaultLUBindingAgreement checks
	// exact agreement at the paper's problem size.
	fpgaSide := func(b model.Binding) bool { return b == model.BindOfFf }
	if fpgaSide(opmm.Binding) != fpgaSide(expBind) {
		t.Fatalf("measured opmm binding %v on the wrong side of Eq. 4 vs model prediction %v (margin %.3f)",
			opmm.Binding, expBind, opmm.Margin)
	}

	if len(rep.Timelines) == 0 {
		t.Fatal("no resource timelines")
	}
	seenFPGA := false
	for _, rt := range rep.Timelines {
		if rt.Device == sim.DeviceFPGA && rt.Busy > 0 {
			seenFPGA = true
		}
		if u := rt.Utilization(); u < 0 || u > 1+1e-9 {
			t.Fatalf("resource %s utilization %v out of range", rt.Name, u)
		}
	}
	if !seenFPGA {
		t.Fatal("no busy FPGA timeline in a hybrid run")
	}

	// The report must render without error and mention the key tables.
	var buf bytes.Buffer
	if err := rep.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"critical path", "bottleneck attribution", "resource utilization", "opmm"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestDefaultLUBindingAgreement is the acceptance criterion at the
// paper's problem size: on the default XD1 LU run (n=30000, b=3000) the
// measured opMM bottleneck must name the same binding parameter as the
// analytic Eq. (4) comparison at the solved bf, and the critical path
// must account for the whole makespan.
func TestDefaultLUBindingAgreement(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := core.LUConfig{N: 30000, B: 3000, BF: -1, L: -1, Mode: core.Hybrid, Observer: rec}
	r, err := core.RunLU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expBind, _ := r.Model.StripeBinding(r.BF)
	rep := analysis.Analyze(rec.Spans(), r.Seconds, analysis.Options{
		Expected: map[string]model.Binding{"opmm": expBind},
	})
	if math.Abs(rep.CriticalPathTotal-r.Seconds) > 1e-9*r.Seconds {
		t.Fatalf("critical path total %v != makespan %v", rep.CriticalPathTotal, r.Seconds)
	}
	for _, ps := range rep.Phases {
		if ps.Phase != "opmm" {
			continue
		}
		if ps.Binding != expBind || !ps.Agree {
			t.Fatalf("measured opmm binding %v (margin %.4f), model predicts %v",
				ps.Binding, ps.Margin, expBind)
		}
		return
	}
	t.Fatal("no opmm phase in report")
}

// TestAnalyzeDeterministic re-runs the same configuration and demands
// identical reports — the property the -check regression gate rests on.
func TestAnalyzeDeterministic(t *testing.T) {
	render := func() string {
		rec := trace.NewRecorder()
		cfg := core.LUConfig{N: 240, B: 40, PEs: 4, BF: -1, L: -1, Mode: core.Hybrid, Observer: rec}
		r, err := core.RunLU(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := analysis.Analyze(rec.Spans(), r.Seconds, analysis.Options{})
		var buf bytes.Buffer
		if err := rep.WriteReport(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("identical runs produced different reports:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
