package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"codesign/internal/obs"
	"codesign/internal/serve"
)

// dryRun executes run with -dry-run into a buffer.
func dryRun(t *testing.T, o options) []byte {
	t.Helper()
	o.DryRun = true
	o.Quiet = true
	o.Out = "-"
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDryRunDeterministic pins the harness's core property: the same
// seed and workload flags produce a byte-identical report.
func TestDryRunDeterministic(t *testing.T) {
	o := options{Requests: 500, Concurrency: 8, Mode: "closed", Dup: 0.8,
		Seed: 42, Apps: "lu,fw,mm", Method: "model"}
	a := dryRun(t, o)
	b := dryRun(t, o)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different reports:\n%s\n%s", a, b)
	}

	o.Seed = 43
	c := dryRun(t, o)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports")
	}

	var rep Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Results != nil {
		t.Fatal("dry-run report must not contain measured results")
	}
	if rep.Workload.Requests != 500 || rep.Workload.DistinctKeys == 0 {
		t.Fatalf("workload = %+v", rep.Workload)
	}
	if rep.Workload.PlanDigest == "" {
		t.Fatal("missing plan digest")
	}
	// dup=0.8 over a 72-key universe: the plan must be duplicate-heavy.
	if rep.Workload.DupFractionActual < 0.5 {
		t.Fatalf("dup fraction actual = %v, want >= 0.5", rep.Workload.DupFractionActual)
	}
}

// TestUniverseIsFeasible asserts every query in the pool evaluates to
// a feasible outcome — a malformed pool would measure 400s, not the
// cache.
func TestUniverseIsFeasible(t *testing.T) {
	svc := serve.NewService(serve.Config{}, obs.NewRegistry())
	defer svc.Close()
	uni, err := universe([]string{"lu", "fw", "mm"}, "model")
	if err != nil {
		t.Fatal(err)
	}
	if len(uni) != 72 {
		t.Fatalf("universe has %d queries, want 72", len(uni))
	}
	for _, q := range uni {
		resp, err := svc.Solve(context.Background(), q)
		if err != nil {
			t.Fatalf("query %+v: %v", q, err)
		}
		if !resp.Outcome.OK {
			t.Fatalf("query %s infeasible: %s", canonicalKey(q), resp.Outcome.Err)
		}
	}
}

// TestClosedLoopAgainstServer runs a real duplicate-heavy burst
// against an in-process codesignd and checks the report's
// acceptance-style properties: all 200s, majority cache hits.
func TestClosedLoopAgainstServer(t *testing.T) {
	srv := serve.New(serve.Config{}, obs.NewRegistry())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	o := options{
		URL: ts.URL, Requests: 400, Concurrency: 8, Mode: "closed",
		Dup: 0.8, Seed: 1, Apps: "lu,fw,mm", Method: "model",
		Quiet: true, Out: "-",
	}
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	r := rep.Results
	if r == nil {
		t.Fatal("missing results")
	}
	if r.Sent != 400 || r.OK != 400 || r.TransportErrors != 0 {
		t.Fatalf("results = %+v, want 400 clean 200s", r)
	}
	if r.CacheHitRate <= 0.5 {
		t.Fatalf("cache hit rate = %v, want > 0.5 on a dup-heavy mix", r.CacheHitRate)
	}
	if r.Sources["cache"]+r.Sources["coalesced"]+r.Sources["computed"] != r.OK {
		t.Fatalf("sources %v don't add up to %d", r.Sources, r.OK)
	}
	if r.Latency.P99 < r.Latency.P50 || r.Latency.Max <= 0 {
		t.Fatalf("latency summary inconsistent: %+v", r.Latency)
	}
	if r.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", r.ThroughputRPS)
	}
}

// TestOpenLoop drives a short open-loop run.
func TestOpenLoop(t *testing.T) {
	srv := serve.New(serve.Config{}, obs.NewRegistry())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	o := options{
		URL: ts.URL, Requests: 50, Concurrency: 1, Mode: "open", Rate: 2000,
		Dup: 0.5, Seed: 3, Apps: "mm", Method: "model", Quiet: true, Out: "-",
	}
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Config.RateRPS != 2000 {
		t.Fatalf("config rate = %v", rep.Config.RateRPS)
	}
	if rep.Results == nil || rep.Results.OK != 50 {
		t.Fatalf("results = %+v", rep.Results)
	}
}

// TestFlagValidation covers the refusal paths.
func TestFlagValidation(t *testing.T) {
	cases := []options{
		{Requests: 0, Concurrency: 1, Mode: "closed", Apps: "lu"},
		{Requests: 1, Concurrency: 0, Mode: "closed", Apps: "lu"},
		{Requests: 1, Concurrency: 1, Mode: "closed", Dup: 1.5, Apps: "lu"},
		{Requests: 1, Concurrency: 1, Mode: "sideways", Apps: "lu"},
		{Requests: 1, Concurrency: 1, Mode: "open", Rate: 0, Apps: "lu"},
		{Requests: 1, Concurrency: 1, Mode: "closed", Apps: ""},
		{Requests: 1, Concurrency: 1, Mode: "closed", Apps: "cholesky"},
	}
	for i, o := range cases {
		o.DryRun = true
		o.Quiet = true
		var buf bytes.Buffer
		if err := run(o, &buf); err == nil {
			t.Errorf("case %d: expected an error", i)
		}
	}
}
