package sweep

import (
	"fmt"
	"os"
	"path/filepath"

	"codesign/internal/core"
	"codesign/internal/trace"
)

// ArchiveFrontierSpans re-simulates every Pareto-optimal point of a
// completed sweep with a span recorder attached and persists each span
// stream as JSONL (trace.WriteSpans) under dir, one
// "point-<index>.spans" file per frontier point. The files are
// tracediff inputs: any two frontier designs — or a frontier design
// and a later regression — can be diffed without re-running the sweep.
//
// Points are re-evaluated with the full simulation regardless of the
// sweep's method, so a model-method sweep still archives measured
// traces. Frontier points that fail to simulate (a model-feasible
// point the simulator rejects) are skipped with their error recorded;
// the returned paths list the files actually written, in Index order.
func ArchiveFrontierSpans(res *Result, dir string) ([]string, error) {
	if len(res.ParetoIndices) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ev := newEvaluator(0)
	var paths []string
	var firstErr error
	for _, idx := range res.ParetoIndices {
		pt := res.Points[idx]
		rec, makespan, err := ev.record(pt)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("point %d: %w", pt.Index, err)
			}
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("point-%04d.spans", pt.Index))
		meta := trace.Meta{
			App:      pt.App,
			Machine:  pt.Machine,
			Label:    pointLabel(pt),
			Makespan: makespan,
		}
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		if err := rec.WriteSpans(f, meta); err != nil {
			f.Close()
			return paths, err
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	if len(paths) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return paths, nil
}

// record re-simulates one grid point with a recorder attached,
// mirroring the MethodSim evaluation paths exactly (same sentinel
// resolution, same core.Run* configuration).
func (ev *evaluator) record(pt Point) (*trace.Recorder, float64, error) {
	r, err := ev.resolve(pt)
	if err != nil {
		return nil, 0, err
	}
	rec := trace.NewRecorder()
	switch pt.App {
	case "lu":
		res, err := core.RunLU(core.LUConfig{
			Machine: r.cfg, N: r.n, B: r.b, PEs: r.k, BF: pt.BF, L: pt.L,
			Mode: r.mode, Observer: rec,
		})
		if err != nil {
			return nil, 0, err
		}
		return rec, res.Seconds, nil
	case "fw":
		gridL1 := pt.L
		if r.mode != core.Hybrid {
			gridL1 = -1 // RunFW derives baseline splits itself
		}
		res, err := core.RunFW(core.FWConfig{
			Machine: r.cfg, N: r.n, B: r.b, PEs: r.k, L1: gridL1,
			Mode: r.mode, Observer: rec,
		})
		if err != nil {
			return nil, 0, err
		}
		return rec, res.Seconds, nil
	default:
		res, err := core.RunMM(core.MMConfig{
			Machine: r.cfg, N: r.n, PEs: r.k, BF: pt.BF,
			Mode: r.mode, Observer: rec,
		})
		if err != nil {
			return nil, 0, err
		}
		return rec, res.Seconds, nil
	}
}

// pointLabel names an archived point deterministically from its
// coordinate so diff reports identify both sides.
func pointLabel(pt Point) string {
	return fmt.Sprintf("point %d: %s %s n=%d b=%d pes=%d mode=%s",
		pt.Index, pt.App, pt.Machine, pt.N, pt.B, pt.PEs, pt.Mode)
}
