package sweep

import "fmt"

// dominates reports whether outcome a dominates b on the three sweep
// objectives: throughput up, FPGA area down, DRAM bandwidth demand
// down. Domination requires a to be no worse on every objective and
// strictly better on at least one, so duplicate points never eliminate
// each other.
func dominates(a, b Outcome) bool {
	if a.GFLOPS < b.GFLOPS || a.Slices > b.Slices || a.BdGBps > b.BdGBps {
		return false
	}
	return a.GFLOPS > b.GFLOPS || a.Slices < b.Slices || a.BdGBps < b.BdGBps
}

// markPareto sets Outcome.Pareto on every non-dominated feasible point
// and returns their indices in ascending order. Infeasible points
// never join the frontier. Quadratic in the feasible count, which is
// fine for the grid sizes MaxPoints admits in practice.
func markPareto(outcomes []Outcome) []int {
	var frontier []int
	for i := range outcomes {
		if !outcomes[i].OK {
			continue
		}
		dominated := false
		for j := range outcomes {
			if i == j || !outcomes[j].OK {
				continue
			}
			if dominates(outcomes[j], outcomes[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			outcomes[i].Pareto = true
			frontier = append(frontier, i)
		}
	}
	return frontier
}

// SensitivityTable summarizes how one grid axis moves the headline
// throughput: one row per distinct axis value, aggregated over every
// point sharing that value. Only axes with at least two distinct
// values get a table — a fixed axis has no sensitivity to report.
type SensitivityTable struct {
	// Param names the axis ("app", "machine", "mode", "nodes", "n",
	// "b", "pes", "bf", "l").
	Param string `json:"param"`
	// Rows holds one aggregate per distinct axis value, in first-seen
	// (enumeration) order.
	Rows []SensitivityRow `json:"rows"`
}

// SensitivityRow aggregates every grid point sharing one axis value.
type SensitivityRow struct {
	// Value is the axis value, formatted ("xd1", "8", "-1").
	Value string `json:"value"`
	// Count is the number of grid points with this value; OK the
	// feasible subset.
	Count int `json:"count"`
	// OK counts the feasible points.
	OK int `json:"ok"`
	// BestGFLOPS is the maximum throughput over the feasible points;
	// MeanGFLOPS their average. Zero when no point was feasible.
	BestGFLOPS float64 `json:"best_gflops"`
	// MeanGFLOPS is the average feasible throughput.
	MeanGFLOPS float64 `json:"mean_gflops"`
}

// axes lists the sensitivity dimensions and how to read them off a
// point.
var axes = []struct {
	name string
	key  func(Point) string
}{
	{"app", func(p Point) string { return p.App }},
	{"machine", func(p Point) string { return p.Machine }},
	{"mode", func(p Point) string { return p.Mode }},
	{"nodes", func(p Point) string { return fmt.Sprint(p.Nodes) }},
	{"n", func(p Point) string { return fmt.Sprint(p.N) }},
	{"density", func(p Point) string { return fmt.Sprint(p.Density) }},
	{"b", func(p Point) string { return fmt.Sprint(p.B) }},
	{"pes", func(p Point) string { return fmt.Sprint(p.PEs) }},
	{"bf", func(p Point) string { return fmt.Sprint(p.BF) }},
	{"l", func(p Point) string { return fmt.Sprint(p.L) }},
}

// sensitivity builds one table per axis that actually varies. Rows are
// emitted in the order values first appear in the (deterministic)
// point enumeration, so the output is stable across runs and worker
// counts.
func sensitivity(points []Point, outcomes []Outcome) []SensitivityTable {
	var tables []SensitivityTable
	for _, ax := range axes {
		order := make([]string, 0, 8)
		rows := make(map[string]*SensitivityRow)
		sums := make(map[string]float64)
		for i, pt := range points {
			v := ax.key(pt)
			row, ok := rows[v]
			if !ok {
				row = &SensitivityRow{Value: v}
				rows[v] = row
				order = append(order, v)
			}
			row.Count++
			if outcomes[i].OK {
				row.OK++
				sums[v] += outcomes[i].GFLOPS
				if outcomes[i].GFLOPS > row.BestGFLOPS {
					row.BestGFLOPS = outcomes[i].GFLOPS
				}
			}
		}
		if len(order) < 2 {
			continue
		}
		t := SensitivityTable{Param: ax.name}
		for _, v := range order {
			row := rows[v]
			if row.OK > 0 {
				row.MeanGFLOPS = sums[v] / float64(row.OK)
			}
			t.Rows = append(t.Rows, *row)
		}
		tables = append(tables, t)
	}
	return tables
}
