package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// CSR is a compressed sparse row matrix, the format the FPGA-augmented
// conjugate-gradient work [9] streams through the accelerator.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Dims returns the dimensions.
func (s *CSR) Dims() (r, c int) { return s.rows, s.cols }

// NNZ returns the stored non-zero count.
func (s *CSR) NNZ() int { return len(s.vals) }

// FromDense compresses a dense matrix, dropping exact zeros.
func FromDense(a *Dense) *CSR {
	m, n := a.Dims()
	s := &CSR{rows: m, cols: n, rowPtr: make([]int, m+1)}
	for i := 0; i < m; i++ {
		for j, v := range a.Row(i) {
			if v != 0 {
				s.colIdx = append(s.colIdx, j)
				s.vals = append(s.vals, v)
			}
		}
		s.rowPtr[i+1] = len(s.vals)
	}
	return s
}

// ToDense expands the matrix.
func (s *CSR) ToDense() *Dense {
	d := New(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		for idx := s.rowPtr[i]; idx < s.rowPtr[i+1]; idx++ {
			d.Set(i, s.colIdx[idx], s.vals[idx])
		}
	}
	return d
}

// Apply computes y = S·x (implements MulVec for square matrices).
func (s *CSR) Apply(x, y []float64) {
	if len(x) != s.cols || len(y) != s.rows {
		panic(fmt.Sprintf("matrix: spmv %dx%d with |x|=%d |y|=%d", s.rows, s.cols, len(x), len(y)))
	}
	for i := 0; i < s.rows; i++ {
		var acc float64
		for idx := s.rowPtr[i]; idx < s.rowPtr[i+1]; idx++ {
			acc += s.vals[idx] * x[s.colIdx[idx]]
		}
		y[i] = acc
	}
}

// Dim implements MulVec for square matrices.
func (s *CSR) Dim() int {
	if s.rows != s.cols {
		panic(fmt.Sprintf("matrix: Dim of non-square CSR %dx%d", s.rows, s.cols))
	}
	return s.rows
}

// ApplyRange computes y[lo:hi] = (S·x)[lo:hi].
func (s *CSR) ApplyRange(x, y []float64, lo, hi int) {
	if lo < 0 || hi > s.rows || lo > hi {
		panic(fmt.Sprintf("matrix: spmv range [%d,%d) of %d rows", lo, hi, s.rows))
	}
	for i := lo; i < hi; i++ {
		var acc float64
		for idx := s.rowPtr[i]; idx < s.rowPtr[i+1]; idx++ {
			acc += s.vals[idx] * x[s.colIdx[idx]]
		}
		y[i] = acc
	}
}

// RowNNZ returns the non-zero count of row i.
func (s *CSR) RowNNZ(i int) int {
	if i < 0 || i >= s.rows {
		panic(fmt.Sprintf("matrix: nnz of row %d of %d rows", i, s.rows))
	}
	return s.rowPtr[i+1] - s.rowPtr[i]
}

// RangeNNZ returns the non-zeros stored in rows [lo, hi).
func (s *CSR) RangeNNZ(lo, hi int) int {
	if lo < 0 || hi > s.rows || lo > hi {
		panic(fmt.Sprintf("matrix: nnz range [%d,%d) of %d rows", lo, hi, s.rows))
	}
	return s.rowPtr[hi] - s.rowPtr[lo]
}

// NewCSR builds a CSR matrix from raw arrays, validating the structure
// so downstream kernels can index without further checks: rowPtr must
// have rows+1 entries starting at 0, be non-decreasing, and end at the
// common length of colIdx and vals; every column index must lie in
// [0, cols). The slices are adopted, not copied.
func NewCSR(rows, cols int, rowPtr, colIdx []int, vals []float64) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("matrix: negative CSR dims %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("matrix: CSR rowPtr has %d entries, want %d", len(rowPtr), rows+1)
	}
	if rowPtr[0] != 0 {
		return nil, fmt.Errorf("matrix: CSR rowPtr must start at 0, got %d", rowPtr[0])
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			return nil, fmt.Errorf("matrix: CSR rowPtr decreases at row %d: %d -> %d", i, rowPtr[i], rowPtr[i+1])
		}
	}
	if len(colIdx) != len(vals) {
		return nil, fmt.Errorf("matrix: CSR has %d column indices but %d values", len(colIdx), len(vals))
	}
	if rowPtr[rows] != len(vals) {
		return nil, fmt.Errorf("matrix: CSR rowPtr ends at %d but %d values stored", rowPtr[rows], len(vals))
	}
	for k, j := range colIdx {
		if j < 0 || j >= cols {
			return nil, fmt.Errorf("matrix: CSR column index %d out of [0,%d) at entry %d", j, cols, k)
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}, nil
}

// RandomSparse returns an n×n CSR matrix with approximately the given
// off-diagonal density and a dominance-boosted diagonal, built row by
// row in O(nnz) memory — unlike RandomSparseSPD it never materializes a
// dense intermediate, so it scales to the operator sizes the sweep and
// hybridsim use. Each row holds the diagonal plus round(density·(n-1))
// distinct off-diagonal entries at rng-chosen columns; the result is
// deterministic for a given seed.
func RandomSparse(n int, density float64, rng *rand.Rand) *CSR {
	if n < 1 {
		panic(fmt.Sprintf("matrix: sparse operator needs n >= 1, got %d", n))
	}
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("matrix: density %g out of [0,1]", density))
	}
	perRow := int(density*float64(n-1) + 0.5)
	rowPtr := make([]int, n+1)
	colIdx := make([]int, 0, n*(perRow+1))
	vals := make([]float64, 0, n*(perRow+1))
	cols := make([]int, 0, perRow)
	taken := make([]bool, n)
	for i := 0; i < n; i++ {
		cols = cols[:0]
		taken[i] = true // reserve the diagonal
		for len(cols) < perRow {
			j := rng.Intn(n)
			if !taken[j] {
				taken[j] = true
				cols = append(cols, j)
			}
		}
		sort.Ints(cols)
		var dom float64
		k := len(vals)
		diagAt := -1
		for _, j := range cols {
			for diagAt < 0 && j > i {
				diagAt = len(vals)
				colIdx = append(colIdx, i)
				vals = append(vals, 0)
			}
			v := 2*rng.Float64() - 1
			dom += math.Abs(v)
			colIdx = append(colIdx, j)
			vals = append(vals, v)
		}
		if diagAt < 0 {
			diagAt = len(vals)
			colIdx = append(colIdx, i)
			vals = append(vals, 0)
		}
		vals[diagAt] = dom + 1
		rowPtr[i+1] = len(vals)
		taken[i] = false
		for _, j := range colIdx[k:] {
			taken[j] = false
		}
	}
	s, err := NewCSR(n, n, rowPtr, colIdx, vals)
	if err != nil {
		panic("matrix: internal RandomSparse construction: " + err.Error())
	}
	return s
}

// RandomSparseSPD returns a sparse symmetric positive-definite matrix:
// a symmetric pattern of the given off-diagonal density with a
// dominance-boosted diagonal.
func RandomSparseSPD(n int, density float64, rng *rand.Rand) *CSR {
	d := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if rng.Float64() < density {
				v := 2*rng.Float64() - 1
				d.Set(i, j, v)
				d.Set(j, i, v)
			}
		}
	}
	for i := 0; i < n; i++ {
		var s float64
		for _, v := range d.Row(i) {
			if v < 0 {
				s -= v
			} else {
				s += v
			}
		}
		d.Set(i, i, s+1)
	}
	return FromDense(d)
}
