package machine

import (
	"fmt"
	"strings"
)

// presets maps the short CLI/sweep names to the Section 3 system
// builders. Kept as a function table so each lookup returns a fresh
// Config that callers may mutate freely.
var presets = []struct {
	name  string
	build func() Config
}{
	{"xd1", XD1},
	{"xt3", XT3DRC},
	{"src6", SRC6},
	{"rasc", RASC},
}

// Preset returns a fresh copy of the named machine preset ("xd1",
// "xt3", "src6" or "rasc"). Names are case-insensitive.
func Preset(name string) (Config, error) {
	for _, p := range presets {
		if strings.EqualFold(name, p.name) {
			return p.build(), nil
		}
	}
	return Config{}, fmt.Errorf("machine: unknown preset %q (want one of %s)",
		name, strings.Join(PresetNames(), ", "))
}

// PresetNames lists the available preset names in stable order.
func PresetNames() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.name
	}
	return out
}

// WithNodes returns a copy of the config resized to p nodes (both the
// node list and the fabric endpoints). p <= 0 leaves the preset's node
// count unchanged — the convention sweep grids use for "default".
func (c Config) WithNodes(p int) Config {
	if p > 0 {
		c.Nodes = p
		c.Fabric.Nodes = p
	}
	return c
}
