package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genMatrix draws a small matrix with entries in [-1,1).
func genMatrix(r, c int, rng *rand.Rand) *Dense { return Random(r, c, rng) }

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func TestPropGemmDistributesOverAdd(t *testing.T) {
	// A*(B+C) == A*B + A*C (within tolerance).
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := genMatrix(m, k, rng)
		b := genMatrix(k, n, rng)
		c := genMatrix(k, n, rng)
		sum := b.Clone()
		sum.Add(c)
		lhs := Mul(a, sum)
		rhs := Mul(a, b)
		rhs.Add(Mul(a, c))
		return lhs.EqualApprox(rhs, 1e-10)
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Fatal(err)
	}
}

func TestPropGemmAssociative(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		m, k, l, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := genMatrix(m, k, rng)
		b := genMatrix(k, l, rng)
		c := genMatrix(l, n, rng)
		lhs := Mul(Mul(a, b), c)
		rhs := Mul(a, Mul(b, c))
		return lhs.EqualApprox(rhs, 1e-9)
	}
	if err := quick.Check(f, quickCfg(101)); err != nil {
		t.Fatal(err)
	}
}

func TestPropLURoundTrip(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		n := 1 + rng.Intn(20)
		a := RandomDiagDominant(n, rng)
		orig := a.Clone()
		if err := LU(a); err != nil {
			return false
		}
		l, u := ExtractLU(a)
		return Mul(l, u).EqualApprox(orig, 1e-8)
	}
	if err := quick.Check(f, quickCfg(102)); err != nil {
		t.Fatal(err)
	}
}

func TestPropBlockLUAgreesWithLU(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		n := 2 + rng.Intn(24)
		b := 1 + rng.Intn(n)
		a := RandomDiagDominant(n, rng)
		u1 := a.Clone()
		u2 := a.Clone()
		if err := LU(u1); err != nil {
			return false
		}
		if err := BlockLU(u2, b); err != nil {
			return false
		}
		return u1.EqualApprox(u2, 1e-8)
	}
	if err := quick.Check(f, quickCfg(103)); err != nil {
		t.Fatal(err)
	}
}

func TestPropTrsmInvertsMul(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		n := 1 + rng.Intn(15)
		m := 1 + rng.Intn(10)
		a := RandomDiagDominant(n, rng)
		if err := LU(a); err != nil {
			return false
		}
		l, u := ExtractLU(a)
		x := genMatrix(n, m, rng)
		// B = L*X, then solve must recover X.
		bm := Mul(l, x)
		TrsmLowerUnitLeft(l, bm)
		if !bm.EqualApprox(x, 1e-8) {
			return false
		}
		// B = U*X, then solve must recover X.
		bm = Mul(u, x)
		TrsmUpperLeft(u, bm)
		return bm.EqualApprox(x, 1e-7)
	}
	if err := quick.Check(f, quickCfg(104)); err != nil {
		t.Fatal(err)
	}
}

func TestPropBlockedFWEqualsUnblocked(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		// pick nb blocks of size b
		b := 1 + rng.Intn(6)
		nb := 1 + rng.Intn(5)
		n := b * nb
		d := RandomGraph(n, 0.1+0.8*rng.Float64(), rng)
		want := d.Clone()
		FloydWarshall(want)
		got := d.Clone()
		BlockedFloydWarshall(got, b)
		return got.EqualApprox(want, 1e-10)
	}
	if err := quick.Check(f, quickCfg(105)); err != nil {
		t.Fatal(err)
	}
}

func TestPropMinPlusMonotone(t *testing.T) {
	// MinPlusGemm never increases any entry of C.
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		n := 1 + rng.Intn(12)
		a := RandomGraph(n, 0.5, rng)
		b := RandomGraph(n, 0.5, rng)
		c := RandomGraph(n, 0.5, rng)
		before := c.Clone()
		MinPlusGemm(a, b, c)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if c.At(i, j) > before.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(106)); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeGemm(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		m, k, n := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := genMatrix(m, k, rng)
		b := genMatrix(k, n, rng)
		return Mul(a, b).Transpose().EqualApprox(Mul(b.Transpose(), a.Transpose()), 1e-10)
	}
	if err := quick.Check(f, quickCfg(107)); err != nil {
		t.Fatal(err)
	}
}
