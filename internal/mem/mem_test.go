package mem

import (
	"math"
	"testing"

	"codesign/internal/sim"
)

func TestStreamTime(t *testing.T) {
	e := sim.New()
	d := NewDRAM(e, 1000)
	if got := d.StreamTime(2500); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("StreamTime = %v, want 2.5", got)
	}
}

func TestStreamChargesTime(t *testing.T) {
	e := sim.New()
	d := NewDRAM(e, 100)
	e.Go("fpga", func(p *sim.Proc) {
		d.Stream(p, 300)
		if p.Now() != 3 {
			t.Errorf("stream finished at %v, want 3", p.Now())
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if d.BytesStreamed() != 300 {
		t.Fatalf("BytesStreamed = %d", d.BytesStreamed())
	}
	if math.Abs(d.BusySeconds()-3) > 1e-12 {
		t.Fatalf("BusySeconds = %v", d.BusySeconds())
	}
}

func TestStreamsSerialize(t *testing.T) {
	e := sim.New()
	d := NewDRAM(e, 100)
	var t1, t2 float64
	e.Go("a", func(p *sim.Proc) { d.Stream(p, 100); t1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { d.Stream(p, 100); t2 = p.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if t1 != 1 || t2 != 2 {
		t.Fatalf("stream finishes %v, %v; want 1, 2", t1, t2)
	}
}

func TestBadBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDRAM(sim.New(), 0)
}

func TestTrackerDisjointWritesOk(t *testing.T) {
	tr := NewTracker()
	tr.Write(CPU, 0, 100)
	tr.Write(FPGA, 100, 200)
	if !tr.Ok() {
		t.Fatalf("disjoint writes flagged: %v", tr.Violations())
	}
}

func TestTrackerWriteWriteConflict(t *testing.T) {
	tr := NewTracker()
	tr.Write(CPU, 0, 100)
	tr.Write(FPGA, 50, 150)
	v := tr.Violations()
	if len(v) != 1 || v[0].Kind != "write-write" {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Lo != 50 || v[0].Hi != 100 {
		t.Fatalf("overlap = [%d,%d)", v[0].Lo, v[0].Hi)
	}
}

func TestTrackerSameAgentOverlapOk(t *testing.T) {
	tr := NewTracker()
	tr.Write(CPU, 0, 100)
	tr.Write(CPU, 50, 150)
	if !tr.Ok() {
		t.Fatal("same-agent overlap must be fine")
	}
}

func TestTrackerReadAfterWriteHazard(t *testing.T) {
	tr := NewTracker()
	tr.Write(CPU, 0, 100)
	tr.Read(FPGA, 0, 10) // FPGA reads before permission
	v := tr.Violations()
	if len(v) != 1 || v[0].Kind != "read-after-write" {
		t.Fatalf("violations = %v", v)
	}
}

func TestTrackerWriteAfterReadHazard(t *testing.T) {
	tr := NewTracker()
	tr.Read(FPGA, 0, 100)
	tr.Write(CPU, 50, 60)
	if tr.Ok() {
		t.Fatal("write over a concurrent read must be flagged")
	}
}

func TestTrackerReadsDontConflict(t *testing.T) {
	tr := NewTracker()
	tr.Read(CPU, 0, 100)
	tr.Read(FPGA, 0, 100)
	if !tr.Ok() {
		t.Fatal("concurrent reads flagged")
	}
}

func TestTrackerSyncClearsEpoch(t *testing.T) {
	tr := NewTracker()
	tr.Write(CPU, 0, 100)
	tr.Sync() // coordination point: permission granted
	tr.Read(FPGA, 0, 100)
	if !tr.Ok() {
		t.Fatalf("post-sync read flagged: %v", tr.Violations())
	}
}

func TestTrackerAdjacentSpansOk(t *testing.T) {
	tr := NewTracker()
	tr.Write(CPU, 0, 100)
	tr.Write(FPGA, 100, 101) // touching, not overlapping
	if !tr.Ok() {
		t.Fatal("adjacent spans flagged")
	}
}

func TestSRAMAllocation(t *testing.T) {
	s := NewSRAM(4, 2<<20) // 4 banks x 2 MB
	if s.TotalBytes() != 8<<20 {
		t.Fatalf("total = %d", s.TotalBytes())
	}
	if err := s.Alloc("C-buffer", 6<<20); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeBytes(); got != 2<<20 {
		t.Fatalf("free = %d", got)
	}
	if err := s.Alloc("too-big", 3<<20); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if err := s.Alloc("C-buffer", 1); err == nil {
		t.Fatal("duplicate label accepted")
	}
	s.Free("C-buffer")
	if s.FreeBytes() != 8<<20 {
		t.Fatal("Free did not reclaim")
	}
}

func TestSRAMAllocationsSorted(t *testing.T) {
	s := NewSRAM(1, 1<<20)
	_ = s.Alloc("b", 1)
	_ = s.Alloc("a", 1)
	got := s.Allocations()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Allocations = %v", got)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "write-write", A: CPU, B: FPGA, Lo: 1, Hi: 2}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}
