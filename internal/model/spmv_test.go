package model

import (
	"math"
	"testing"
)

func TestCSRStreamWordsCeiling(t *testing.T) {
	cases := []struct{ nnz, want int }{
		{0, 0}, {1, 2}, {2, 3}, {3, 5}, {4, 6}, {100, 150},
	}
	for _, c := range cases {
		if got := CSRStreamWords(c.nnz); got != c.want {
			t.Errorf("CSRStreamWords(%d) = %d, want %d", c.nnz, got, c.want)
		}
	}
	// The ceiling never under-charges against the real per-nnz rate.
	for nnz := 0; nnz < 50; nnz++ {
		if float64(CSRStreamWords(nnz)) < CSRWordsPerNNZ*float64(nnz) {
			t.Fatalf("CSRStreamWords(%d) under-charges", nnz)
		}
	}
}

// xd1SpMV is a streamed SpMV coordinate with the XD1's effective rates:
// a 7-MAC array at 180 MHz, the Opteron's spmv rate, and the
// frequency-limited FPGA-DRAM bandwidth.
func xd1SpMV(n, words int, mvRate float64) SpMVParams {
	return SpMVParams{
		N: n, K: 7, Words: words,
		Ff: 180e6, MVRate: mvRate, VecTime: 0,
		Bd: 8 * 180e6, Bw: 8,
	}
}

// TestSolvePartitionRegimeFlip pins the tentpole behavior: a dense
// operator's stream cost exceeds the processor's per-word DGEMV cost,
// so Equation (1) sends every row to the processor; a CSR operator's
// gather-bound processor rate flips the same solve to an all-FPGA,
// Bd-bound split.
func TestSolvePartitionRegimeFlip(t *testing.T) {
	const n = 1024
	dense := xd1SpMV(n, n*n, 1.2e9) // DGEMV sustains ~1.2 GFLOPS
	if rf, rp := dense.SolvePartition(); rf != 0 || rp != n {
		t.Fatalf("dense solve = %d/%d, want 0/%d", rf, rp, n)
	}
	sparse := xd1SpMV(n, CSRStreamWords(n*21), 150e6) // spmv sustains ~150 MFLOPS
	rf, rp := sparse.SolvePartition()
	if rf != n || rp != 0 {
		t.Fatalf("sparse solve = %d/%d, want %d/0", rf, rp, n)
	}
	bind, _ := sparse.StripeBinding(rf)
	if bind != BindBd {
		t.Fatalf("sparse all-FPGA split binds %s, want %s", bind, BindBd)
	}
	if bindD, _ := dense.StripeBinding(0); bindD != BindOpFp {
		t.Fatalf("dense all-CPU split binds %s, want %s", bindD, BindOpFp)
	}
}

func TestSpMVStripeTimesPartition(t *testing.T) {
	sp := xd1SpMV(100, 1000, 150e6)
	tf, tp, tmem := sp.StripeTimes(40)
	w := sp.WordsPerRow()
	if got := 40 * w * sp.FPGAPerWord(); math.Abs(tf-got) > 1e-18 {
		t.Fatalf("tf = %g want %g", tf, got)
	}
	if got := 60*w*sp.CPUPerWord() + sp.VecTime; math.Abs(tp-got) > 1e-18 {
		t.Fatalf("tp = %g want %g", tp, got)
	}
	if got := 40 * w * sp.StreamPerWord(); math.Abs(tmem-got) > 1e-18 {
		t.Fatalf("tmem = %g want %g", tmem, got)
	}
}

// In the resident arrangement the stream term vanishes and the FPGA
// word rate is the slower of the MAC array and the SRAM port, so the
// solve lands in the interior instead of on a boundary.
func TestSpMVResidentArrangement(t *testing.T) {
	sp := xd1SpMV(1024, CSRStreamWords(1024*21), 150e6)
	sp.Resident = true
	sp.Bs = 9.6e9
	sp.SRAMBytes = 1 << 30
	sp.Applies = 32
	if sp.StreamPerWord() != 0 {
		t.Fatal("resident arrangement should not stream")
	}
	want := math.Max(1/(float64(sp.K)*sp.Ff), sp.Bw/sp.Bs)
	if sp.FPGAPerWord() != want {
		t.Fatalf("resident FPGAPerWord = %g want %g", sp.FPGAPerWord(), want)
	}
	rf, _ := sp.SolvePartition()
	if rf <= 0 || rf >= sp.N {
		t.Fatalf("resident solve should land interior, got rf=%d", rf)
	}
	if load := sp.LoadSeconds(rf); load <= 0 {
		t.Fatalf("resident share must pay a load, got %g", load)
	}
}

func TestSpMVValidate(t *testing.T) {
	good := xd1SpMV(10, 100, 1e9)
	good.Applies = 1
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []func(*SpMVParams){
		func(p *SpMVParams) { p.N = 0 },
		func(p *SpMVParams) { p.K = 0 },
		func(p *SpMVParams) { p.Words = 0 },
		func(p *SpMVParams) { p.Ff = 0 },
		func(p *SpMVParams) { p.MVRate = 0 },
		func(p *SpMVParams) { p.Bd = 0 },
		func(p *SpMVParams) { p.Bw = 0 },
		func(p *SpMVParams) { p.VecTime = -1 },
		func(p *SpMVParams) { p.Applies = 0 },
		func(p *SpMVParams) { p.Resident = true; p.Bs = 0 },
	}
	for i, mut := range bad {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestSpMVPredictMatchesStripeTimes(t *testing.T) {
	sp := xd1SpMV(256, CSRStreamWords(256*13), 150e6)
	sp.Applies = 1
	sp.Flops = 2 * 256 * 13
	rf, _ := sp.SolvePartition()
	pred := sp.PredictSpMV(rf)
	tf, tp, tmem := sp.StripeTimes(rf)
	want := math.Max(tf, tp+tmem)
	if math.Abs(pred.Seconds-want) > 1e-15*want {
		t.Fatalf("predicted %g s, stripe times give %g s", pred.Seconds, want)
	}
	if pred.GFLOPS <= 0 {
		t.Fatalf("prediction has no throughput: %+v", pred)
	}
}
