// Package matrix provides dense double-precision matrices and the
// computational kernels used by the co-designed applications of
// Section 5: general matrix multiplication (GEMM), triangular solves
// (TRSM), LU factorization (GETRF), and the tropical (min,+) kernels
// of the blocked Floyd-Warshall algorithm.
//
// The package is the functional substrate of the simulator: when a
// simulated processor or FPGA "computes", these kernels produce the
// actual numbers, so end-to-end correctness of the distributed designs
// is testable against sequential references.
package matrix
