// Package obs is the process-wide runtime observability layer: a
// dependency-free metrics subsystem (atomic counters, gauges and
// fixed-bucket histograms), a named registry with stable-sorted
// snapshots, Prometheus text-format and stable-JSON exposition, and an
// HTTP server mounting /metrics, /healthz, a JSON /statusz and
// net/http/pprof.
//
// Where internal/trace is post-hoc — typed spans digested after a run
// finishes — obs is live: a long design-space sweep or a future
// codesignd server publishes counters while it works, and an operator
// (or a scrape loop) reads them mid-flight. The package deliberately
// has no third-party dependencies and no background goroutines of its
// own besides the HTTP server the caller asks for, so importing it
// costs nothing.
//
// Concurrency: every metric is safe for concurrent use (atomic
// operations only, no locks on the hot path). Registration is
// get-or-create and idempotent, so independent subsystems can claim
// the same series without coordinating. Snapshots are stable: series
// sort by (family, series name), never by map iteration order, so two
// snapshots of identical state serialize byte-identically — the same
// discipline the repository's BENCH_baseline.json gate relies on.
//
// Metric naming follows the Prometheus exposition conventions: a bare
// family name ("sweep_points_done") or a family plus a fixed label set
// baked into the series name ("sweep_worker_busy_seconds{worker=\"3\"}").
// The registry treats the full string as the series identity and the
// part before '{' as the family for HELP/TYPE grouping.
package obs
