package analysis

import (
	"sort"

	"codesign/internal/sim"
)

// OccupancyDeciles is the number of buckets in a timeline's occupancy
// histogram: bucket i counts bins whose busy fraction fell in
// [i/10, (i+1)/10) (the last bucket is closed above).
const OccupancyDeciles = 10

// ResourceTimeline is one resource's activity over the run, binned over
// virtual time [0, makespan].
type ResourceTimeline struct {
	// Name is the resource's name as recorded in its spans.
	Name string
	// Device is the hardware side the resource belongs to.
	Device sim.Device

	// Busy is union busy time in seconds: instants where at least one
	// non-waiting span held the resource. Multi-capacity resources do
	// not double count.
	Busy float64

	// Bins is the busy fraction of each equal-width time bin, in [0,1].
	Bins []float64

	// Occupancy[i] is the fraction of bins whose busy fraction fell in
	// decile i — the shape of the resource's load over the run.
	Occupancy [OccupancyDeciles]float64
}

// Utilization returns Busy divided by the makespan the timeline was
// built over (reconstructed from the bins; 0 when there are none).
func (rt ResourceTimeline) Utilization() float64 {
	if len(rt.Bins) == 0 {
		return 0
	}
	var s float64
	for _, f := range rt.Bins {
		s += f
	}
	return s / float64(len(rt.Bins))
}

// BuildTimelines bins every resource's busy time over [0, makespan]
// into the given number of bins. Waiting (sync) spans do not count —
// a process queued on a resource is not that resource doing work.
// Resources are returned sorted by name.
func BuildTimelines(spans []sim.SpanEvent, makespan float64, bins int) []ResourceTimeline {
	if makespan <= 0 || bins < 1 {
		return nil
	}
	type acc struct {
		dev       sim.Device
		intervals [][2]float64
	}
	byRes := make(map[string]*acc)
	for _, s := range spans {
		if s.Category == sim.CatSync || s.Category == sim.CatIdle || s.End <= s.Start || s.Resource == "" {
			continue
		}
		a := byRes[s.Resource]
		if a == nil {
			a = &acc{}
			byRes[s.Resource] = a
		}
		if a.dev == sim.DeviceUnknown {
			a.dev = s.Device
		}
		a.intervals = append(a.intervals, [2]float64{s.Start, s.End})
	}

	names := make([]string, 0, len(byRes))
	for n := range byRes {
		names = append(names, n)
	}
	sort.Strings(names)

	binW := makespan / float64(bins)
	out := make([]ResourceTimeline, 0, len(names))
	for _, n := range names {
		a := byRes[n]
		// Merge overlapping intervals so concurrent holders of a
		// multi-capacity resource count each instant once.
		sort.Slice(a.intervals, func(i, j int) bool { return a.intervals[i][0] < a.intervals[j][0] })
		merged := a.intervals[:0]
		for _, iv := range a.intervals {
			if n := len(merged); n > 0 && iv[0] <= merged[n-1][1] {
				if iv[1] > merged[n-1][1] {
					merged[n-1][1] = iv[1]
				}
				continue
			}
			merged = append(merged, iv)
		}

		rt := ResourceTimeline{Name: n, Device: a.dev, Bins: make([]float64, bins)}
		for _, iv := range merged {
			lo, hi := iv[0], iv[1]
			if hi > makespan {
				hi = makespan
			}
			if lo < 0 {
				lo = 0
			}
			rt.Busy += hi - lo
			b0 := int(lo / binW)
			b1 := int(hi / binW)
			if b1 >= bins {
				b1 = bins - 1
			}
			for b := b0; b <= b1; b++ {
				bs, be := float64(b)*binW, float64(b+1)*binW
				s, e := lo, hi
				if s < bs {
					s = bs
				}
				if e > be {
					e = be
				}
				if e > s {
					rt.Bins[b] += (e - s) / binW
				}
			}
		}
		for i, f := range rt.Bins {
			if f > 1 {
				rt.Bins[i] = 1
				f = 1
			}
			d := int(f * OccupancyDeciles)
			if d >= OccupancyDeciles {
				d = OccupancyDeciles - 1
			}
			rt.Occupancy[d] += 1 / float64(bins)
		}
		out = append(out, rt)
	}
	return out
}
