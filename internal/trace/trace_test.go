package trace

import (
	"strings"
	"testing"

	"codesign/internal/sim"
)

func runTraced(t *testing.T, c *Collector) {
	t.Helper()
	e := sim.New()
	c.Attach(e)
	r := sim.NewResource(e, "dev", 1)
	e.Go("worker-a", func(p *sim.Proc) {
		r.Use(p, 2)
		p.Wait(1)
	})
	e.Go("worker-b", func(p *sim.Proc) {
		r.Use(p, 2)
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorRecords(t *testing.T) {
	var c Collector
	runTraced(t, &c)
	if c.Len() == 0 {
		t.Fatal("no events recorded")
	}
	evs := c.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("events out of order")
		}
	}
}

func TestCollectorFilter(t *testing.T) {
	c := Collector{Filter: func(e Event) bool { return e.Proc == "worker-a" }}
	runTraced(t, &c)
	for _, e := range c.Events() {
		if e.Proc != "worker-a" {
			t.Fatalf("filter leaked %+v", e)
		}
	}
}

func TestCollectorLimit(t *testing.T) {
	c := Collector{Limit: 2}
	runTraced(t, &c)
	if c.Len() != 2 {
		t.Fatalf("stored %d events, want 2", c.Len())
	}
	if c.Dropped() == 0 {
		t.Fatal("expected dropped events")
	}
}

func TestWriteCSV(t *testing.T) {
	var c Collector
	runTraced(t, &c)
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time_s,process,action\n") {
		t.Fatalf("missing header: %q", out[:30])
	}
	if !strings.Contains(out, "worker-a") {
		t.Fatal("missing process rows")
	}
}

func TestSpans(t *testing.T) {
	var c Collector
	runTraced(t, &c)
	spans := c.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans derived")
	}
	for _, s := range spans {
		if s.End <= s.Start {
			t.Fatalf("bad span %+v", s)
		}
	}
}

func TestWriteTimeline(t *testing.T) {
	var c Collector
	runTraced(t, &c)
	var b strings.Builder
	if err := c.WriteTimeline(&b, 40, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "worker-a") || !strings.Contains(out, "#") {
		t.Fatalf("timeline missing content:\n%s", out)
	}
}

func TestWriteTimelineEmpty(t *testing.T) {
	var c Collector
	var b strings.Builder
	if err := c.WriteTimeline(&b, 40, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no activity") {
		t.Fatal("empty timeline should say so")
	}
}
