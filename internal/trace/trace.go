// Package trace records simulation activity for inspection: a
// collector plugs into the engine's trace hook, accumulates per-process
// event records, and renders them as a text timeline or CSV for offline
// analysis of the hybrid designs' overlap behaviour.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"codesign/internal/sim"
)

// Event is one recorded engine action.
type Event struct {
	Time   float64
	Proc   string
	Action string
}

// Collector accumulates events from a simulation engine.
type Collector struct {
	events []Event
	// Filter, if non-nil, drops events for which it returns false.
	Filter func(e Event) bool
	// Limit caps the number of stored events (0 = unlimited). Once
	// reached, further events are counted but not stored.
	Limit   int
	dropped int64
}

// Attach registers the collector on the engine's trace hook.
func (c *Collector) Attach(e *sim.Engine) {
	e.Trace = c.Record
}

// Record stores one event, honoring Filter and Limit. It has the same
// signature as the engine trace hook, so it can be passed directly to
// config Trace fields.
func (c *Collector) Record(t float64, proc, action string) {
	ev := Event{Time: t, Proc: proc, Action: action}
	if c.Filter != nil && !c.Filter(ev) {
		return
	}
	if c.Limit > 0 && len(c.events) >= c.Limit {
		c.dropped++
		return
	}
	c.events = append(c.events, ev)
}

// Events returns the recorded events in order.
func (c *Collector) Events() []Event {
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Dropped returns how many events exceeded Limit.
func (c *Collector) Dropped() int64 { return c.dropped }

// Len returns the stored event count.
func (c *Collector) Len() int { return len(c.events) }

// WriteCSV renders the events as "time,proc,action" rows.
func (c *Collector) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,process,action"); err != nil {
		return err
	}
	for _, e := range c.events {
		action := strings.ReplaceAll(e.Action, ",", ";")
		if _, err := fmt.Fprintf(w, "%.9f,%s,%s\n", e.Time, e.Proc, action); err != nil {
			return err
		}
	}
	return nil
}

// Span is a contiguous busy interval of one process.
type Span struct {
	Proc       string
	Start, End float64
}

// Spans derives busy intervals per process. Computation is modeled as
// timed waits in the engine, so a "block: wait" opens a busy span that
// the process's next "resume" closes; blocking on resources, mailboxes
// or signals is idle time and produces no span.
func (c *Collector) Spans() []Span {
	open := map[string]float64{}
	var spans []Span
	for _, e := range c.events {
		switch {
		case strings.HasPrefix(e.Action, "block: wait"):
			open[e.Proc] = e.Time
		case e.Action == "resume":
			if s, ok := open[e.Proc]; ok {
				if e.Time > s {
					spans = append(spans, Span{Proc: e.Proc, Start: s, End: e.Time})
				}
				delete(open, e.Proc)
			}
		case strings.HasPrefix(e.Action, "block"):
			delete(open, e.Proc)
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Proc < spans[j].Proc
	})
	return spans
}

// WriteTimeline renders a coarse text Gantt chart: one row per process,
// width columns across [0, horizon] (horizon 0 = max event time).
func (c *Collector) WriteTimeline(w io.Writer, width int, horizon float64) error {
	if width <= 0 {
		width = 80
	}
	spans := c.Spans()
	if horizon <= 0 {
		for _, s := range spans {
			if s.End > horizon {
				horizon = s.End
			}
		}
	}
	if horizon <= 0 {
		_, err := fmt.Fprintln(w, "(no activity)")
		return err
	}
	byProc := map[string][]Span{}
	var procs []string
	for _, s := range spans {
		if _, ok := byProc[s.Proc]; !ok {
			procs = append(procs, s.Proc)
		}
		byProc[s.Proc] = append(byProc[s.Proc], s)
	}
	sort.Strings(procs)
	nameW := 0
	for _, p := range procs {
		if len(p) > nameW {
			nameW = len(p)
		}
	}
	for _, p := range procs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range byProc[p] {
			lo := int(s.Start / horizon * float64(width))
			hi := int(s.End / horizon * float64(width))
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i < width; i++ {
				row[i] = '#'
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", nameW, p, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%*s%.4gs\n", nameW, "", width-1, "", horizon)
	return err
}
