package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"codesign/internal/cache"
	"codesign/internal/obs"
	"codesign/internal/sweep"
)

// Config tunes the serve layer. The zero value takes the documented
// defaults; fields where "unlimited" is meaningful treat negative
// values as unbounded. withDefaults is idempotent, so a Config can be
// passed through New and NewService unchanged.
type Config struct {
	// CacheBound bounds the solve cache (entries; 0 = 4096, < 0 =
	// unbounded). Each entry is one canonicalized request's Outcome.
	CacheBound int
	// MemoBound bounds each of the shared evaluator's two memo caches
	// (place-and-route and partition solves; 0 = 65536, < 0 =
	// unbounded).
	MemoBound int
	// MaxInFlight bounds concurrently evaluating compute requests
	// (/v1/solve and /v1/design; 0 = 32).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond
	// it requests are shed with 429 (0 = 256, < 0 = no queue).
	MaxQueue int
	// RequestTimeout is the per-request deadline, also the upper bound
	// of the ?timeout_ms= override (0 = 30s).
	RequestTimeout time.Duration
	// MaxDesignPoints caps a synchronous /v1/design grid (0 = 10000).
	MaxDesignPoints int
	// MaxSweepPoints caps an asynchronous /v1/sweep grid (0 = 100000;
	// internal/sweep's own MaxPoints still applies).
	MaxSweepPoints int
	// MaxRunningJobs bounds concurrently running sweep jobs; further
	// submissions are shed with 429 (0 = 2).
	MaxRunningJobs int
	// MaxJobs bounds retained job records; the oldest finished jobs
	// are evicted beyond it (0 = 64; floored at MaxRunningJobs+1).
	MaxJobs int
	// SweepWorkers bounds each sweep job's worker pool (0 = one per
	// CPU).
	SweepWorkers int
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.CacheBound == 0 {
		c.CacheBound = 4096
	}
	if c.MemoBound == 0 {
		c.MemoBound = 65536
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxDesignPoints <= 0 {
		c.MaxDesignPoints = 10000
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 100000
	}
	if c.MaxRunningJobs <= 0 {
		c.MaxRunningJobs = 2
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.MaxJobs <= c.MaxRunningJobs {
		c.MaxJobs = c.MaxRunningJobs + 1
	}
	return c
}

// Service is the transport-independent core of codesignd: a shared
// memoized evaluator, the canonical-key solve cache with request
// coalescing, and the asynchronous sweep job store, all instrumented
// on one obs.Registry. Server puts HTTP in front of it; tests and
// embedders can call it directly. All methods are safe for concurrent
// use.
type Service struct {
	cfg    Config
	eval   *sweep.Evaluator
	solves *cache.Loading[string, sweep.Outcome]
	jobs   *jobStore
	m      *metrics

	// evalFn is the point evaluator and runSweep/runScreened the sweep
	// runners, all swappable by tests to simulate slow or blocking
	// work.
	evalFn      func(sweep.Point, string) sweep.Outcome
	runSweep    func(context.Context, sweep.Grid, sweep.Options) (*sweep.Result, error)
	runScreened func(context.Context, sweep.Grid, sweep.ScreenOptions) (*sweep.Result, error)

	// baseCtx outlives requests and parents background sweep jobs;
	// Close cancels it.
	baseCtx context.Context
	cancel  context.CancelFunc
}

// NewService builds a service with its metric families registered on
// reg (which must be non-nil; pass a fresh obs.NewRegistry() when not
// exporting).
func NewService(cfg Config, reg *obs.Registry) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:    cfg,
		eval:   sweep.NewEvaluator(cfg.MemoBound),
		solves: cache.NewLoading[string, sweep.Outcome](cfg.CacheBound),
		jobs:   newJobStore(cfg.MaxJobs, cfg.MaxRunningJobs),
	}
	s.evalFn = s.eval.Evaluate
	s.runSweep = sweep.Run
	s.runScreened = sweep.RunScreened
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.m = newMetrics(reg, s)
	return s
}

// Close cancels running sweep jobs (they finish as JobFailed). Solve
// and design calls already in progress complete normally.
func (s *Service) Close() { s.cancel() }

// Evaluator returns the shared memoized evaluator, for callers that
// want to run their own sweeps against the service's memo state.
func (s *Service) Evaluator() *sweep.Evaluator { return s.eval }

// CacheStats returns the solve cache's counters.
func (s *Service) CacheStats() cache.Stats { return s.solves.Stats() }

// cacheSnapshotVersion guards the SaveCache wire format; LoadCache
// rejects snapshots written by an incompatible future format instead
// of silently seeding garbage.
const cacheSnapshotVersion = 1

// cacheSnapshot is the JSON envelope SaveCache writes and LoadCache
// reads: a version plus the solve cache entries in recency order.
type cacheSnapshot struct {
	Version int                                  `json:"version"`
	Entries []cache.Entry[string, sweep.Outcome] `json:"entries"`
}

// SaveCache writes a JSON snapshot of the solve cache to w (most
// recently used entry first) and returns the entry count. Restoring
// it with LoadCache on the next boot makes a restarted daemon serve
// its working set from cache instead of re-solving it — the
// cold-restart latency cliff measured in the ROADMAP. Concurrent
// solves during the dump land in the snapshot or not depending on
// timing; either way the snapshot is consistent.
func (s *Service) SaveCache(w io.Writer) (int, error) {
	snap := cacheSnapshot{Version: cacheSnapshotVersion, Entries: s.solves.Dump()}
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		return 0, err
	}
	return len(snap.Entries), nil
}

// LoadCache seeds the solve cache from a SaveCache snapshot and
// returns the number of entries read. Recency order is preserved, so
// a snapshot larger than the cache bound keeps the most recently used
// entries. Entries whose keys are already cached are overwritten.
func (s *Service) LoadCache(r io.Reader) (int, error) {
	var snap cacheSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return 0, fmt.Errorf("decoding cache snapshot: %w", err)
	}
	if snap.Version != cacheSnapshotVersion {
		return 0, fmt.Errorf("unsupported cache snapshot version %d (want %d)", snap.Version, cacheSnapshotVersion)
	}
	s.solves.Seed(snap.Entries)
	return len(snap.Entries), nil
}

// Solve evaluates one design point through the solve cache: an LRU
// hit returns immediately, a miss coalesces with any concurrent
// identical request, and exactly one evaluation runs per canonical
// key. An expired ctx returns context.DeadlineExceeded while the
// evaluation (if this request started one) completes in the
// background and still populates the cache. Invalid requests return a
// *Error; infeasible points are successful responses with
// Outcome.OK == false.
func (s *Service) Solve(ctx context.Context, req SolveRequest) (*SolveResponse, error) {
	norm, aerr := req.normalized()
	if aerr != nil {
		return nil, aerr
	}
	type result struct {
		out sweep.Outcome
		src cache.Source
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, src, err := s.solves.Do(ctx, norm.key(), func() (sweep.Outcome, error) {
			return s.evalFn(norm.point(), norm.Method), nil
		})
		ch <- result{out, src, err}
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		switch res.src {
		case cache.SourceHit:
			s.m.cacheHits.Inc()
		case cache.SourceShared:
			s.m.cacheCoalesced.Inc()
		default:
			s.m.cacheMisses.Inc()
		}
		return &SolveResponse{Point: norm.point(), Outcome: res.out, Source: res.src.String()}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Design synchronously sweeps a small grid on the shared evaluator
// and ranks the feasible points by GFLOPS descending (ties break
// toward the lower grid index). ctx cancels the sweep between points;
// grids above Config.MaxDesignPoints are rejected with a 400 *Error.
func (s *Service) Design(ctx context.Context, req DesignRequest) (*DesignResponse, error) {
	if err := req.Grid.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	if n := req.Grid.NumPoints(); n > s.cfg.MaxDesignPoints {
		return nil, badRequest("grid has %d points, /v1/design allows %d; submit large grids to /v1/sweep",
			n, s.cfg.MaxDesignPoints)
	}
	if err := validateScreen(req.Screen, req.RefineMargin); err != nil {
		return nil, err
	}
	top := req.Top
	if top <= 0 {
		top = 1
	}
	if top > 100 {
		top = 100
	}
	opts := sweep.Options{Workers: req.Workers, Evaluator: s.eval}
	var res *sweep.Result
	var err error
	if req.Screen {
		res, err = s.runScreened(ctx, req.Grid, sweep.ScreenOptions{Options: opts, RefineMargin: req.RefineMargin})
	} else {
		res, err = sweep.Run(ctx, req.Grid, opts)
	}
	if err != nil {
		return nil, err
	}
	feasible := make([]int, 0, len(res.Outcomes))
	for i := range res.Outcomes {
		if res.Outcomes[i].OK {
			feasible = append(feasible, i)
		}
	}
	sort.SliceStable(feasible, func(a, b int) bool {
		oa, ob := res.Outcomes[feasible[a]], res.Outcomes[feasible[b]]
		if oa.GFLOPS != ob.GFLOPS {
			return oa.GFLOPS > ob.GFLOPS
		}
		return feasible[a] < feasible[b]
	})
	resp := &DesignResponse{Points: len(res.Points), Feasible: len(feasible), Screen: res.Screen, Stats: res.Stats}
	if top > len(feasible) {
		top = len(feasible)
	}
	resp.Best = make([]RankedPoint, top)
	for r := 0; r < top; r++ {
		i := feasible[r]
		resp.Best[r] = RankedPoint{Rank: r + 1, Point: res.Points[i], Outcome: res.Outcomes[i]}
	}
	return resp, nil
}

// SubmitSweep validates and enqueues an asynchronous sweep job,
// returning its initial JobRunning snapshot. The sweep runs in the
// background under the service's lifetime context (not the
// submitting request's), sharing the memoized evaluator. Submissions
// beyond Config.MaxRunningJobs are rejected with a 429 *Error.
func (s *Service) SubmitSweep(req SweepRequest) (*JobResponse, error) {
	if err := req.Grid.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	if err := validateScreen(req.Screen, req.RefineMargin); err != nil {
		return nil, err
	}
	if n := req.Grid.NumPoints(); n > s.cfg.MaxSweepPoints {
		return nil, badRequest("grid has %d points, /v1/sweep allows %d", n, s.cfg.MaxSweepPoints)
	}
	job, aerr := s.jobs.submit(req.Grid)
	if aerr != nil {
		return nil, aerr
	}
	s.m.jobsSubmitted.Inc()
	go func() {
		workers := req.Workers
		if workers <= 0 {
			workers = s.cfg.SweepWorkers
		}
		opts := sweep.Options{Workers: workers, Evaluator: s.eval}
		var res *sweep.Result
		var err error
		if req.Screen {
			res, err = s.runScreened(s.baseCtx, req.Grid, sweep.ScreenOptions{Options: opts, RefineMargin: req.RefineMargin})
		} else {
			res, err = s.runSweep(s.baseCtx, req.Grid, opts)
		}
		s.jobs.finish(job.Job, res, err)
	}()
	return job, nil
}

// validateScreen rejects screening parameters that cannot mean
// anything: a margin without screening, or a negative margin.
func validateScreen(screen bool, margin float64) *Error {
	if margin != 0 && !screen {
		return badRequest("refine_margin only applies with screen=true")
	}
	if margin < 0 {
		return badRequest("refine_margin must be >= 0, got %g", margin)
	}
	return nil
}

// Job returns a job's current snapshot, or a 404 *Error for an
// unknown id.
func (s *Service) Job(id string) (*JobResponse, error) {
	job, ok := s.jobs.get(id)
	if !ok {
		return nil, &Error{Status: http.StatusNotFound, Code: CodeNotFound, Message: "unknown job " + id}
	}
	return job, nil
}
