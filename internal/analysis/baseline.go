package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// BaselineSchema is the current baseline file schema version; bump it
// when metric names or semantics change incompatibly, so -check fails
// loudly on stale files instead of reporting spurious metric diffs.
const BaselineSchema = 1

// Baseline is a named set of headline numbers from one build, written
// as JSON. encoding/json sorts map keys and the simulator is
// deterministic, so the same build always serializes identical bytes —
// which is what lets -check demand a zero diff against a fresh rerun.
type Baseline struct {
	// Schema is the file's schema version (see BaselineSchema).
	Schema int `json:"schema"`
	// Metrics maps metric name to its recorded value.
	Metrics map[string]float64 `json:"metrics"`
}

// NewBaseline returns an empty baseline at the current schema.
func NewBaseline() *Baseline {
	return &Baseline{Schema: BaselineSchema, Metrics: make(map[string]float64)}
}

// Set records one metric.
func (b *Baseline) Set(name string, v float64) { b.Metrics[name] = v }

// Names returns the metric names in sorted order.
func (b *Baseline) Names() []string {
	names := make([]string, 0, len(b.Metrics))
	for n := range b.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Write serializes the baseline as indented JSON with a trailing
// newline. Output is byte-deterministic for equal contents.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteFile writes the baseline to path.
func (b *Baseline) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBaseline parses a baseline and validates its schema.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("baseline: schema %d, this build expects %d (regenerate the baseline)",
			b.Schema, BaselineSchema)
	}
	if b.Metrics == nil {
		b.Metrics = make(map[string]float64)
	}
	return &b, nil
}

// ReadBaselineFile reads a baseline from path.
func ReadBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBaseline(f)
}

// Delta is one metric's divergence between two baselines.
type Delta struct {
	// Name is the diverging metric's name.
	Name string
	// Old and New are the metric's values in the two baselines.
	Old, New float64
	// Rel is |New-Old| normalized by max(|Old|, |New|); 0 for an exact
	// match, meaningless when Missing or Extra is set.
	Rel float64
	// Missing: the metric is in the old baseline but not the new run.
	// Extra: the new run produced a metric the old baseline lacks.
	Missing, Extra bool
}

// String renders the delta as a one-line human diagnostic.
func (d Delta) String() string {
	switch {
	case d.Missing:
		return fmt.Sprintf("%s: missing from new run (baseline %.17g)", d.Name, d.Old)
	case d.Extra:
		return fmt.Sprintf("%s: not in baseline (new run %.17g)", d.Name, d.New)
	default:
		return fmt.Sprintf("%s: %.17g -> %.17g (rel %.3g)", d.Name, d.Old, d.New, d.Rel)
	}
}

// Diff compares a stored baseline against a fresh run and returns every
// metric whose relative divergence exceeds tol, plus metrics present on
// only one side (always reported, regardless of tol). tol 0 demands
// bit-exact equality. Deltas come back sorted by name.
func Diff(old, fresh *Baseline, tol float64) []Delta {
	var out []Delta
	for _, name := range old.Names() {
		ov := old.Metrics[name]
		nv, ok := fresh.Metrics[name]
		if !ok {
			out = append(out, Delta{Name: name, Old: ov, Missing: true})
			continue
		}
		rel := relDiff(ov, nv)
		if rel > tol {
			out = append(out, Delta{Name: name, Old: ov, New: nv, Rel: rel})
		}
	}
	for _, name := range fresh.Names() {
		if _, ok := old.Metrics[name]; !ok {
			out = append(out, Delta{Name: name, New: fresh.Metrics[name], Extra: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}
