package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloydWarshallPathsDistancesMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	adj := RandomGraph(25, 0.3, rng)
	want := adj.Clone()
	FloydWarshall(want)
	got := adj.Clone()
	FloydWarshallPaths(got)
	if !got.Equal(want) {
		t.Fatal("path-tracking FW distances differ from plain FW")
	}
}

func TestPathReconstructionValid(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	adj := RandomGraph(20, 0.3, rng)
	d := adj.Clone()
	pred := FloydWarshallPaths(d)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			path := Path(pred, i, j)
			if d.At(i, j) >= Inf {
				if i != j && path != nil {
					t.Fatalf("unreachable (%d,%d) produced path %v", i, j, path)
				}
				continue
			}
			if len(path) == 0 || path[0] != i || path[len(path)-1] != j {
				t.Fatalf("path (%d,%d) endpoints wrong: %v", i, j, path)
			}
			// The reconstructed path must realize the computed distance.
			if got, want := PathLength(adj, path), d.At(i, j); !approxEq(got, want, 1e-10) {
				t.Fatalf("path (%d,%d) length %v != distance %v", i, j, got, want)
			}
		}
	}
}

func TestPathSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	adj := RandomGraph(5, 0.5, rng)
	pred := FloydWarshallPaths(adj.Clone())
	p := Path(pred, 3, 3)
	if len(p) != 1 || p[0] != 3 {
		t.Fatalf("self path = %v", p)
	}
}

func TestBellmanFordOracle(t *testing.T) {
	// FW distances must equal Bellman-Ford from every source — a fully
	// independent algorithm over the same graph.
	rng := rand.New(rand.NewSource(303))
	adj := RandomGraph(30, 0.25, rng)
	d := adj.Clone()
	FloydWarshall(d)
	for src := 0; src < 30; src++ {
		bf := BellmanFord(adj, src)
		for v := 0; v < 30; v++ {
			if !approxEq(d.At(src, v), bf[v], 1e-10) {
				t.Fatalf("FW vs Bellman-Ford mismatch at (%d,%d): %v vs %v", src, v, d.At(src, v), bf[v])
			}
		}
	}
}

func TestQuickBlockedFWAgainstBellmanFord(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		b := 1 + rng.Intn(5)
		nb := 1 + rng.Intn(4)
		n := b * nb
		adj := RandomGraph(n, 0.2+0.6*rng.Float64(), rng)
		d := adj.Clone()
		BlockedFloydWarshall(d, b)
		src := rng.Intn(n)
		bf := BellmanFord(adj, src)
		for v := 0; v < n; v++ {
			if !approxEq(d.At(src, v), bf[v], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(304)); err != nil {
		t.Fatal(err)
	}
}

func TestPathLengthBrokenPath(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	adj := RandomGraph(4, 0.0, rng) // no edges
	if PathLength(adj, []int{0, 1}) < Inf {
		t.Fatal("broken path must be Inf")
	}
	if PathLength(adj, nil) < Inf {
		t.Fatal("nil path must be Inf")
	}
	if PathLength(adj, []int{2}) != 0 {
		t.Fatal("single-vertex path must be 0")
	}
}

func TestPathOutOfRangePanics(t *testing.T) {
	pred := [][]int32{{NoPred}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Path(pred, 0, 5)
}
