package sweep

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"
	"time"
)

// bigGrid is a >=100-point model-method LU grid used by the
// determinism tests: 21 bf values x 6 pipeline depths = 126 points.
func bigGrid() Grid {
	bf := []int{-1}
	for v := 0; v <= 3000; v += 150 {
		bf = append(bf, v)
	}
	return Grid{
		Apps: []string{"lu"},
		BF:   bf[:21],
		L:    []int{-1, 1, 2, 3, 4, 6},
	}
}

func runJSON(t *testing.T, g Grid, workers int) []byte {
	t.Helper()
	res, err := Run(context.Background(), g, Options{Workers: workers})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g := bigGrid()
	if n := g.NumPoints(); n < 100 {
		t.Fatalf("grid has %d points, want >= 100", n)
	}
	one := runJSON(t, g, 1)
	eight := runJSON(t, g, 8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("JSON output differs between -workers=1 (%d bytes) and -workers=8 (%d bytes)", len(one), len(eight))
	}
	// A third run with the default pool must also match.
	def := runJSON(t, g, 0)
	if !bytes.Equal(one, def) {
		t.Fatalf("JSON output differs between -workers=1 and default workers")
	}
}

func TestDeterministicCSV(t *testing.T) {
	g := bigGrid()
	runCSV := func(workers int) []byte {
		res, err := Run(context.Background(), g, Options{Workers: workers})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(runCSV(1), runCSV(8)) {
		t.Fatal("CSV output differs between worker counts")
	}
}

func TestCancellationNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	_, err := Run(ctx, bigGrid(), Options{
		Workers: 4,
		OnResult: func(Point, Outcome) {
			seen++
			if seen == 5 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("Run after cancel: err=%v, want context.Canceled", err)
	}
	// Workers exit once they observe cancellation; poll until the
	// goroutine count settles back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak after cancellation: %d before, %d after", before, runtime.NumGoroutine())
}

func TestMemoizationSharesSubProblems(t *testing.T) {
	res, err := Run(context.Background(), bigGrid(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	// All 126 points share one machine/device/PE combination: the
	// placement must be solved exactly once, and looked up once per
	// feasible point.
	if s.PlaceSolves != 1 {
		t.Errorf("PlaceSolves = %d, want 1", s.PlaceSolves)
	}
	if s.PlaceLookups != s.Points {
		t.Errorf("PlaceLookups = %d, want %d (one per point)", s.PlaceLookups, s.Points)
	}
	// The bf=-1 column all solves the same Equation 4 instance; the
	// l=-1 row solves Equation 5 once per distinct bf.
	if s.PartitionSolves >= s.PartitionLookups {
		t.Errorf("no partition memo hits: solves=%d lookups=%d", s.PartitionSolves, s.PartitionLookups)
	}
}

func TestParetoFrontier(t *testing.T) {
	// Sweep the PE axis: smaller arrays cost fewer slices but deliver
	// less throughput, so several points should be mutually
	// non-dominated, and every dominated point must be excluded.
	g := Grid{Apps: []string{"lu"}, PEs: []int{2, 4, 6, 8, 10, 12}}
	res, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ParetoIndices) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	for _, i := range res.ParetoIndices {
		if !res.Outcomes[i].OK {
			t.Errorf("infeasible point %d on frontier", i)
		}
		if !res.Outcomes[i].Pareto {
			t.Errorf("frontier point %d not marked Pareto", i)
		}
		for j := range res.Outcomes {
			if j != i && res.Outcomes[j].OK && dominates(res.Outcomes[j], res.Outcomes[i]) {
				t.Errorf("frontier point %d is dominated by %d", i, j)
			}
		}
	}
	// k=10 does not fit the XC2VP50: 29000 slices > 23616.
	for i, pt := range res.Points {
		if pt.PEs >= 10 && res.Outcomes[i].OK {
			t.Errorf("PEs=%d unexpectedly feasible on xd1", pt.PEs)
		}
		if pt.PEs == 8 && !res.Outcomes[i].OK {
			t.Errorf("PEs=8 unexpectedly infeasible: %s", res.Outcomes[i].Err)
		}
	}
}

func TestSensitivityTables(t *testing.T) {
	res, err := Run(context.Background(), bigGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"bf": 21, "l": 6}
	got := map[string]int{}
	for _, tab := range res.Sensitivity {
		got[tab.Param] = len(tab.Rows)
	}
	for param, rows := range want {
		if got[param] != rows {
			t.Errorf("sensitivity[%s]: %d rows, want %d", param, got[param], rows)
		}
	}
	if len(res.Sensitivity) != len(want) {
		t.Errorf("got %d sensitivity tables (%v), want %d", len(res.Sensitivity), got, len(want))
	}
}

func TestSimMethodSmallLU(t *testing.T) {
	g := Grid{
		Apps: []string{"lu"},
		N:    []int{120}, B: []int{40},
		Modes:  []string{"hybrid", "processor-only"},
		Method: MethodSim,
	}
	res, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if !o.OK {
			t.Fatalf("point %d infeasible: %s", i, o.Err)
		}
		if o.GFLOPS <= 0 || o.Seconds <= 0 {
			t.Errorf("point %d: GFLOPS=%v Seconds=%v", i, o.GFLOPS, o.Seconds)
		}
		if o.Binding == "" {
			t.Errorf("point %d: no measured binding", i)
		}
	}
	// The hybrid point uses the FPGA, so some stripe rows land on it.
	if res.Outcomes[0].BF <= 0 {
		t.Errorf("hybrid BF = %d, want > 0", res.Outcomes[0].BF)
	}
	if res.Outcomes[1].BF != 0 {
		t.Errorf("processor-only BF = %d, want 0", res.Outcomes[1].BF)
	}
}

func TestSimMethodSmallFWAndMM(t *testing.T) {
	g := Grid{
		Apps: []string{"fw", "mm"},
		N:    []int{96}, B: []int{16},
		Method: MethodSim,
	}
	res, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if !o.OK {
			t.Fatalf("point %d (%s) infeasible: %s", i, res.Points[i].App, o.Err)
		}
		if o.GFLOPS <= 0 {
			t.Errorf("point %d (%s): GFLOPS=%v", i, res.Points[i].App, o.GFLOPS)
		}
	}
}

func TestInfeasiblePointsReported(t *testing.T) {
	// b=3000 is not a multiple of p-1=7 on 8 nodes.
	g := Grid{Apps: []string{"lu"}, Nodes: []int{8}}
	res, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[0].OK {
		t.Fatal("expected infeasible outcome")
	}
	if res.Stats.Errors != 1 {
		t.Errorf("Stats.Errors = %d, want 1", res.Stats.Errors)
	}
	if res.Outcomes[0].Err == "" {
		t.Error("infeasible outcome missing Err")
	}
}

func TestGridValidation(t *testing.T) {
	cases := []struct {
		g    Grid
		want string
	}{
		{Grid{Apps: []string{"qr"}}, "unknown app"},
		{Grid{Machines: []string{"bluegene"}}, "unknown preset"},
		{Grid{Modes: []string{"quantum"}}, "unknown mode"},
		{Grid{Method: "guess"}, "unknown method"},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want %q", c.g, err, c.want)
		}
	}
	if err := (Grid{}).Validate(); err != nil {
		t.Errorf("zero grid invalid: %v", err)
	}
}

func TestReadGridRejectsUnknownFields(t *testing.T) {
	_, err := ReadGrid(strings.NewReader(`{"block_sizes": [100]}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	g, err := ReadGrid(strings.NewReader(`{"apps": ["mm"], "pes": [4, 8]}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPoints() != 2 {
		t.Errorf("NumPoints = %d, want 2", g.NumPoints())
	}
}

func TestPointsEnumerationOrder(t *testing.T) {
	g := Grid{Apps: []string{"lu", "mm"}, PEs: []int{4, 8}}
	pts := g.Points()
	if len(pts) != 4 {
		t.Fatalf("len(points) = %d, want 4", len(pts))
	}
	wantApps := []string{"lu", "lu", "mm", "mm"}
	wantPEs := []int{4, 8, 4, 8}
	for i, pt := range pts {
		if pt.Index != i || pt.App != wantApps[i] || pt.PEs != wantPEs[i] {
			t.Errorf("point %d = %+v, want app=%s pes=%d", i, pt, wantApps[i], wantPEs[i])
		}
	}
}

func TestPanickingPointRecordedInfeasible(t *testing.T) {
	// The worker pool's recover backstop: a panic while evaluating one
	// point becomes that point's infeasible outcome instead of killing
	// the process (and with it the whole sweep).
	out := safeEvaluate(func() Outcome { panic("bad cyclic geometry") })
	if out.OK {
		t.Fatal("panicking evaluation reported OK")
	}
	if !strings.Contains(out.Err, "panic: bad cyclic geometry") {
		t.Fatalf("err %q does not carry the panic reason", out.Err)
	}
	clean := safeEvaluate(func() Outcome { return Outcome{OK: true} })
	if !clean.OK || clean.Err != "" {
		t.Fatalf("clean evaluation altered: %+v", clean)
	}
}
