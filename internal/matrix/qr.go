package matrix

import (
	"fmt"
	"math"
)

// Householder QR factorization kernels — the third routine of the
// ScaLAPACK set the paper builds on [10]. The factored form follows
// LAPACK's geqrf convention: R occupies the upper triangle, the
// Householder vectors (unit first element implied) sit below the
// diagonal, and tau holds the reflector scales.

// QR factors the m×n matrix a (m >= n) in place and returns tau.
// Reflector k is H_k = I - tau[k]·v·vᵀ with v = [1, a[k+1:m, k]].
func QR(a *Dense) []float64 {
	m, n := a.Dims()
	if m < n {
		panic(fmt.Sprintf("matrix: QR needs m >= n, got %dx%d", m, n))
	}
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		tau[k] = HouseGen(a, k)
		HouseApply(a, k, tau[k], k+1, n)
	}
	return tau
}

// HouseGen builds the Householder reflector annihilating a[k+1:m, k]:
// it stores beta in a[k,k] and the reflector tail below (unit first
// element implied), and returns tau. Exported so distributed designs
// can drive panel factorizations step by step.
func HouseGen(a *Dense, k int) float64 {
	m := a.Rows()
	x0 := a.At(k, k)
	var sigma float64
	for i := k + 1; i < m; i++ {
		v := a.At(i, k)
		sigma += v * v
	}
	if sigma == 0 {
		// Already upper triangular in this column; H = I.
		return 0
	}
	mu := math.Sqrt(x0*x0 + sigma)
	beta := -mu
	if x0 < 0 {
		beta = mu
	}
	v0 := x0 - beta
	for i := k + 1; i < m; i++ {
		a.Set(i, k, a.At(i, k)/v0)
	}
	a.Set(k, k, beta)
	return (beta - x0) / beta
}

// HouseApply applies reflector k of a factored-in-place matrix to
// columns [cLo, cHi) of a.
func HouseApply(a *Dense, k int, tau float64, cLo, cHi int) {
	if tau == 0 {
		return
	}
	m := a.Rows()
	for j := cLo; j < cHi; j++ {
		// w = tau * v^T a[:, j] with v = [1, a[k+1:, k]].
		w := a.At(k, j)
		for i := k + 1; i < m; i++ {
			w += a.At(i, k) * a.At(i, j)
		}
		w *= tau
		a.Set(k, j, a.At(k, j)-w)
		for i := k + 1; i < m; i++ {
			a.Set(i, j, a.At(i, j)-a.At(i, k)*w)
		}
	}
}

// ApplyQT overwrites c with Qᵀ·c, where Q is the factored form in
// (qr, tau). c must have qr's row count.
func ApplyQT(qr *Dense, tau []float64, c *Dense) {
	m, n := qr.Dims()
	if c.Rows() != m {
		panic(fmt.Sprintf("matrix: ApplyQT C has %d rows for Q of %d", c.Rows(), m))
	}
	for k := 0; k < n; k++ {
		applyReflector(qr, k, tau[k], c)
	}
}

// ApplyQ overwrites c with Q·c.
func ApplyQ(qr *Dense, tau []float64, c *Dense) {
	m, n := qr.Dims()
	if c.Rows() != m {
		panic(fmt.Sprintf("matrix: ApplyQ C has %d rows for Q of %d", c.Rows(), m))
	}
	for k := n - 1; k >= 0; k-- {
		applyReflector(qr, k, tau[k], c)
	}
}

// applyReflector applies H_k (symmetric, so identical for Q and Qᵀ
// factors) to every column of c.
func applyReflector(qr *Dense, k int, tau float64, c *Dense) {
	if tau == 0 {
		return
	}
	m := qr.Rows()
	for j := 0; j < c.Cols(); j++ {
		w := c.At(k, j)
		for i := k + 1; i < m; i++ {
			w += qr.At(i, k) * c.At(i, j)
		}
		w *= tau
		c.Set(k, j, c.At(k, j)-w)
		for i := k + 1; i < m; i++ {
			c.Set(i, j, c.At(i, j)-qr.At(i, k)*w)
		}
	}
}

// QRExplicit returns explicit Q (m×n, thin) and R (n×n) from the
// factored form.
func QRExplicit(qr *Dense, tau []float64) (q, r *Dense) {
	m, n := qr.Dims()
	r = New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, qr.At(i, j))
		}
	}
	// Q = H_0 ... H_{n-1} applied to the first n columns of I.
	q = New(m, n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 1)
	}
	ApplyQ(qr, tau, q)
	return q, r
}

// BlockQR performs a blocked QR factorization in place with block size
// bs: factor each panel with the unblocked kernel, then apply its
// reflectors to the trailing columns (panel by panel — the structure
// the distributed hybrid design follows). Returns tau.
func BlockQR(a *Dense, bs int) []float64 {
	m, n := a.Dims()
	if m < n {
		panic(fmt.Sprintf("matrix: BlockQR needs m >= n, got %dx%d", m, n))
	}
	if bs <= 0 {
		panic("matrix: BlockQR block size must be positive")
	}
	tau := make([]float64, n)
	for t := 0; t < n; t += bs {
		hi := min(t+bs, n)
		// Panel factorization on columns [t, hi).
		for k := t; k < hi; k++ {
			tau[k] = HouseGen(a, k)
			HouseApply(a, k, tau[k], k+1, hi)
		}
		// Trailing update: apply the panel's reflectors, in order, to
		// the columns right of the panel.
		for k := t; k < hi; k++ {
			HouseApply(a, k, tau[k], hi, n)
		}
	}
	return tau
}

// QRFlopsPanel returns the approximate flop count of factoring an
// rows×b panel: 2·rows·b².
func QRFlopsPanel(rows, b int) float64 { return 2 * float64(rows) * float64(b) * float64(b) }

// QRFlopsUpdate returns the approximate flop count of applying a b-wide
// panel's reflectors to an rows×w trailing block: 4·rows·b·w.
func QRFlopsUpdate(rows, b, w int) float64 {
	return 4 * float64(rows) * float64(b) * float64(w)
}
