// Use the design model directly — no simulation — the way Section 4.5
// prescribes: characterize a system with its parameters, solve the
// partitions, predict performance; then run the simulator and measure
// how much of the prediction a real (simulated) schedule achieves.
package main

import (
	"fmt"
	"log"

	"codesign"
)

func main() {
	// The XD1 parameters of Section 6.1, written down by hand the way
	// the paper's Table of parameters does.
	lu := codesign.LUModel{
		P: 6, B: 3000, K: 8,
		Ff:         130e6, // placed matmul design clock
		StripeRate: 2.95e9,
		LURate:     2.0 / 3.0 * 3000 * 3000 * 3000 / 4.9, // Table 1
		TrsmRate:   3000 * 3000 * 3000 / 7.1,             // Table 1
		Bd:         1.04e9, Bn: 2e9, Bw: 8,
		SRAMBytes: 8 << 20,
	}
	bf, bp := lu.SolvePartition()
	l := lu.SolveL(bf)
	pred := lu.PredictLU(30000, bf)
	fmt.Println("LU on Cray XD1 per the design model:")
	fmt.Printf("  Eq.4: bf=%d, bp=%d (paper: 1280/1720)\n", bf, bp)
	fmt.Printf("  Eq.5: l=%d (paper: 3)\n", l)
	fmt.Printf("  Sec 4.5 prediction: %.2f GFLOPS (Ttp=%.0fs, Ttf=%.0fs)\n",
		pred.GFLOPS, pred.Ttp, pred.Ttf)

	fw := codesign.FWModel{
		P: 6, B: 256, K: 8,
		Ff:     120e6,
		FWRate: 190e6,
		Bd:     960e6, Bn: 2e9, Bw: 8,
	}
	l1, l2 := fw.SolveSplit(18432)
	fwPred := fw.PredictFW(18432, l1, l2)
	fmt.Println("Floyd-Warshall on Cray XD1 per the design model:")
	fmt.Printf("  Eq.6: l1=%d, l2=%d (paper: 2/10)\n", l1, l2)
	fmt.Printf("  Sec 4.5 prediction: %.2f GFLOPS\n", fwPred.GFLOPS)

	// Now measure: how much of the prediction does the full simulated
	// schedule achieve? (Paper: 86% for LU, 96% for FW.)
	luRes, err := codesign.RunLU(codesign.LUConfig{
		N: 30000, B: 3000, BF: bf, L: l, Mode: codesign.Hybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	fwRes, err := codesign.RunFW(codesign.FWConfig{
		N: 18432, B: 256, L1: l1, Mode: codesign.Hybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Measured against prediction:")
	fmt.Printf("  LU: %.2f / %.2f GFLOPS = %.0f%% (paper: 86%%)\n",
		luRes.GFLOPS, pred.GFLOPS, 100*luRes.GFLOPS/pred.GFLOPS)
	fmt.Printf("  FW: %.2f / %.2f GFLOPS = %.0f%% (paper: 96%%)\n",
		fwRes.GFLOPS, fwPred.GFLOPS, 100*fwRes.GFLOPS/fwPred.GFLOPS)

	// The generic Equation (1)/(2) splitter on raw parameters.
	params := codesign.ModelParams{
		P: 6, Of: 16, Ff: 130e6, OpFp: 3.9e9, Bd: 1.04e9, Bn: 2e9, Bw: 8,
	}
	np, nf := params.SplitComm(1e12, 5e9, 1e9)
	fmt.Printf("Generic Eq.2 split of 1e12 flops (5 GB DMA, 1 GB comm): "+
		"%.3g to CPU, %.3g to FPGA\n", np, nf)
}
