package matrix

import (
	"fmt"
	"runtime"
	"sync"
)

// Gemm computes C = alpha*A*B + beta*C using a cache-tiled kernel.
// Dimensions must satisfy A: m×k, B: k×n, C: m×n.
func Gemm(alpha float64, a, b *Dense, beta float64, c *Dense) {
	checkGemmDims(a, b, c)
	if beta != 1 {
		scaleOrZero(c, beta)
	}
	if alpha == 0 {
		return
	}
	gemmTiledRange(alpha, a, b, c, 0, c.rows)
}

// GemmNaive computes C = alpha*A*B + beta*C with the textbook triple
// loop. It is the oracle against which the tiled and parallel kernels
// are tested.
func GemmNaive(alpha float64, a, b *Dense, beta float64, c *Dense) {
	checkGemmDims(a, b, c)
	m, k := a.Dims()
	_, n := b.Dims()
	for i := 0; i < m; i++ {
		crow := c.Row(i)
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				s += a.At(i, l) * b.At(l, j)
			}
			crow[j] = alpha*s + beta*crow[j]
		}
	}
}

// GemmParallel computes C = alpha*A*B + beta*C, splitting rows of C
// across workers goroutines (<=0 means GOMAXPROCS).
func GemmParallel(alpha float64, a, b *Dense, beta float64, c *Dense, workers int) {
	checkGemmDims(a, b, c)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if beta != 1 {
		scaleOrZero(c, beta)
	}
	if alpha == 0 || c.rows == 0 || c.cols == 0 {
		return
	}
	if workers > c.rows {
		workers = c.rows
	}
	if workers <= 1 {
		gemmTiledRange(alpha, a, b, c, 0, c.rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (c.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > c.rows {
			hi = c.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmTiledRange(alpha, a, b, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

const gemmTile = 64

// gemmTiledRange accumulates alpha*A*B into rows [lo,hi) of C using an
// i-k-j loop order with square tiling; C must already be scaled by beta.
func gemmTiledRange(alpha float64, a, b *Dense, c *Dense, lo, hi int) {
	k := a.cols
	n := c.cols
	for ii := lo; ii < hi; ii += gemmTile {
		iMax := min(ii+gemmTile, hi)
		for kk := 0; kk < k; kk += gemmTile {
			kMax := min(kk+gemmTile, k)
			for jj := 0; jj < n; jj += gemmTile {
				jMax := min(jj+gemmTile, n)
				for i := ii; i < iMax; i++ {
					crow := c.data[i*c.stride : i*c.stride+n]
					arow := a.data[i*a.stride : i*a.stride+k]
					for l := kk; l < kMax; l++ {
						av := alpha * arow[l]
						if av == 0 {
							continue
						}
						brow := b.data[l*b.stride : l*b.stride+n]
						for j := jj; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

func scaleOrZero(c *Dense, beta float64) {
	if beta == 0 {
		c.Zero()
		return
	}
	c.Scale(beta)
}

func checkGemmDims(a, b, c *Dense) {
	if a.cols != b.rows || c.rows != a.rows || c.cols != b.cols {
		panic(fmt.Sprintf("matrix: gemm dimension mismatch A %dx%d, B %dx%d, C %dx%d",
			a.rows, a.cols, b.rows, b.cols, c.rows, c.cols))
	}
}

// Mul returns A*B as a fresh matrix.
func Mul(a, b *Dense) *Dense {
	c := New(a.rows, b.cols)
	Gemm(1, a, b, 0, c)
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
