package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Metrics is a per-run registry of counters, gauges and fixed-bucket
// histograms. Every value is derived from virtual time and simulated
// quantities — the registry never consults the wall clock — so two
// identical runs populate byte-identical registries. It is not safe
// for concurrent use; the simulation is single-threaded by design.
type Metrics struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonically non-decreasing sum.
type Counter struct {
	name string
	v    float64
}

// Add increases the counter by delta (negative deltas are ignored).
func (c *Counter) Add(delta float64) {
	if delta > 0 {
		c.v += delta
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Value returns the current sum.
func (c *Counter) Value() float64 { return c.v }

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Gauge is a point-in-time value that can move in either direction.
type Gauge struct {
	name string
	v    float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Name returns the gauge's registry name.
func (g *Gauge) Name() string { return g.name }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= bounds[i] (cumulative style is left to the
// reader; counts here are per-bucket), and one overflow bucket catches
// v > bounds[len-1]. Bounds are fixed at creation so merged or repeated
// runs stay comparable.
type Histogram struct {
	name   string
	bounds []float64
	counts []int64 // len(bounds)+1; last is overflow
	n      int64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.n++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Buckets returns copies of the bucket bounds and per-bucket counts;
// the final count is the overflow bucket (> last bound).
func (h *Histogram) Buckets() ([]float64, []int64) {
	b := make([]float64, len(h.bounds))
	copy(b, h.bounds)
	c := make([]int64, len(h.counts))
	copy(c, h.counts)
	return b, c
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	if c, ok := m.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	m.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	if g, ok := m.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	m.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (bounds must be sorted ascending). Later
// calls with different bounds return the original histogram unchanged.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	if h, ok := m.histograms[name]; ok {
		return h
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, bounds: b, counts: make([]int64, len(b)+1)}
	m.histograms[name] = h
	return h
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteTo renders the registry as sorted "name value" lines (and
// bucketed lines for histograms). Output order is deterministic.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	var written int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		written += int64(n)
		return err
	}
	for _, k := range sortedKeys(m.counters) {
		if err := emit("counter %s %s\n", k, formatVal(m.counters[k].v)); err != nil {
			return written, err
		}
	}
	for _, k := range sortedKeys(m.gauges) {
		if err := emit("gauge %s %s\n", k, formatVal(m.gauges[k].v)); err != nil {
			return written, err
		}
	}
	for _, k := range sortedKeys(m.histograms) {
		h := m.histograms[k]
		if err := emit("histogram %s count=%d sum=%s\n", k, h.n, formatVal(h.sum)); err != nil {
			return written, err
		}
		for i, b := range h.bounds {
			if err := emit("histogram %s le=%s %d\n", k, formatVal(b), h.counts[i]); err != nil {
				return written, err
			}
		}
		if err := emit("histogram %s le=+inf %d\n", k, h.counts[len(h.bounds)]); err != nil {
			return written, err
		}
	}
	return written, nil
}

// WriteCSV renders the registry as RFC-4180 CSV with a
// "kind,name,key,value" header. Counters and gauges emit one row each
// (empty key); histograms emit a count row, a sum row, and one row per
// bucket keyed "le=<bound>" ("le=+inf" for the overflow bucket). Rows
// are sorted by name, so identical registries export identical bytes.
func (m *Metrics) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "name", "key", "value"}); err != nil {
		return err
	}
	for _, k := range sortedKeys(m.counters) {
		if err := cw.Write([]string{"counter", k, "", formatVal(m.counters[k].v)}); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(m.gauges) {
		if err := cw.Write([]string{"gauge", k, "", formatVal(m.gauges[k].v)}); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(m.histograms) {
		h := m.histograms[k]
		rows := [][]string{
			{"histogram", k, "count", strconv.FormatInt(h.n, 10)},
			{"histogram", k, "sum", formatVal(h.sum)},
		}
		for i, b := range h.bounds {
			rows = append(rows, []string{"histogram", k, "le=" + formatVal(b), strconv.FormatInt(h.counts[i], 10)})
		}
		rows = append(rows, []string{"histogram", k, "le=+inf", strconv.FormatInt(h.counts[len(h.bounds)], 10)})
		for _, row := range rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatVal(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
