package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Dense is a row-major dense matrix of float64 values. A Dense may be a
// view into a larger matrix, in which case Stride exceeds Cols and
// mutations are visible through the parent.
type Dense struct {
	rows, cols int
	stride     int
	data       []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, stride: c, data: make([]float64, r*c)}
}

// NewFromSlice returns an r×c matrix that adopts data (len must be r*c).
// The matrix aliases data; it does not copy.
func NewFromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, stride: c, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Stride returns the row stride of the backing storage.
func (m *Dense) Stride() int { return m.stride }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.stride+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.stride+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.stride : i*m.stride+m.cols]
}

// View returns an r×c submatrix view starting at (i, j). The view shares
// storage with m: writes through the view are visible in m.
func (m *Dense) View(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.rows || j+c > m.cols {
		panic(fmt.Sprintf("matrix: view (%d,%d,%d,%d) out of range %dx%d", i, j, r, c, m.rows, m.cols))
	}
	return &Dense{rows: r, cols: c, stride: m.stride, data: m.data[i*m.stride+j:]}
}

// Clone returns a compact deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m; dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("matrix: copy %dx%d into %dx%d", src.rows, src.cols, m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() { m.Fill(0) }

// Transpose returns a new matrix that is the transpose of m.
func (m *Dense) Transpose() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*out.stride+i] = v
		}
	}
	return out
}

// Equal reports whether m and n have identical dimensions and elements.
// NaN elements are considered equal to NaN so that factorization tests
// can compare bit-for-bit reproducible failures.
func (m *Dense) Equal(n *Dense) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		a, b := m.Row(i), n.Row(i)
		for j := range a {
			if a[j] != b[j] && !(math.IsNaN(a[j]) && math.IsNaN(b[j])) {
				return false
			}
		}
	}
	return true
}

// EqualApprox reports whether m and n agree element-wise within tol,
// measured as |a-b| <= tol*(1+max(|a|,|b|)).
func (m *Dense) EqualApprox(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		a, b := m.Row(i), n.Row(i)
		for j := range a {
			if !approxEq(a[j], b[j], tol) {
				return false
			}
		}
	}
	return true
}

func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*(1+scale)
}

// MaxDiff returns the largest absolute element-wise difference between m
// and n. It panics on dimension mismatch.
func (m *Dense) MaxDiff(n *Dense) float64 {
	if m.rows != n.rows || m.cols != n.cols {
		panic("matrix: MaxDiff dimension mismatch")
	}
	var d float64
	for i := 0; i < m.rows; i++ {
		a, b := m.Row(i), n.Row(i)
		for j := range a {
			if v := math.Abs(a[j] - b[j]); v > d {
				d = v
			}
		}
	}
	return d
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for i := 0; i < m.rows; i++ {
		for _, v := range m.Row(i) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// Scale multiplies every element of m by a.
func (m *Dense) Scale(a float64) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= a
		}
	}
}

// Sub computes m -= n element-wise. This is the functional body of the
// opMS (matrix subtract) task of block LU decomposition.
func (m *Dense) Sub(n *Dense) {
	if m.rows != n.rows || m.cols != n.cols {
		panic(fmt.Sprintf("matrix: sub %dx%d from %dx%d", n.rows, n.cols, m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		a, b := m.Row(i), n.Row(i)
		for j := range a {
			a[j] -= b[j]
		}
	}
}

// Add computes m += n element-wise.
func (m *Dense) Add(n *Dense) {
	if m.rows != n.rows || m.cols != n.cols {
		panic(fmt.Sprintf("matrix: add %dx%d to %dx%d", n.rows, n.cols, m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		a, b := m.Row(i), n.Row(i)
		for j := range a {
			a[j] += b[j]
		}
	}
}

// Random returns an r×c matrix with entries drawn uniformly from
// [-1, 1) using rng.
func Random(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.data[:r*c] {
		m.data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandomDiagDominant returns an n×n matrix with random entries whose
// diagonal is boosted so the matrix is strictly diagonally dominant and
// therefore admits LU factorization without pivoting — the class of
// matrices the paper assumes ("A is a nonsingular matrix and no pivoting
// is needed").
func RandomDiagDominant(n int, rng *rand.Rand) *Dense {
	m := Random(n, n, rng)
	for i := 0; i < n; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		m.Set(i, i, s+1)
	}
	return m
}

// String renders small matrices for debugging; large matrices are
// summarized by shape.
func (m *Dense) String() string {
	if m.rows*m.cols > 256 {
		return fmt.Sprintf("Dense{%dx%d}", m.rows, m.cols)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Dense %dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% 10.4g ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
