package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Options tunes a sweep run. The zero value is a sensible default:
// one worker per CPU and no callbacks — Run then reports nothing until
// it returns the completed Result.
type Options struct {
	// Workers bounds the evaluation pool; <= 0 uses
	// runtime.GOMAXPROCS(0). Worker count never changes results, only
	// wall-clock time.
	Workers int
	// OnResult, when non-nil, is invoked once per evaluated point as
	// it completes. Calls are serialized but arrive in completion
	// order, not Index order; the final Result is always Index-ordered
	// regardless.
	OnResult func(Point, Outcome)
	// OnProgress, when non-nil, is invoked once per completed point
	// with a live snapshot of the whole run. Calls are serialized (and
	// serialized against OnResult, which for the same point always
	// precedes them) and arrive in completion order; unless the context
	// cancels the sweep early, the final call has Done == Total and
	// ETA == 0. The callback runs on a worker goroutine, so a slow
	// callback slows the sweep.
	OnProgress func(Progress)
	// Evaluator, when non-nil, supplies a shared memoization engine so
	// repeated sweeps (and the serve layer's point queries) reuse
	// place-and-route and partition solves across runs. Nil gives the
	// run a fresh unbounded evaluator, the classic per-sweep memo. The
	// run's Result.Stats always reports only this run's traffic, but
	// when concurrent runs share one evaluator a "solve" may be
	// attributed to whichever run reached the key first.
	Evaluator *Evaluator

	// phase labels Progress snapshots ("screen", "refine"); only
	// RunScreened sets it.
	phase string
}

// safeEvaluate runs one point's evaluation, converting a panic from a
// degenerate coordinate (reached deep in model or dist arithmetic the
// evaluator's own feasibility checks did not anticipate) into an
// infeasible Outcome. One bad point must cost one grid cell, never the
// whole sweep: a panic in a worker goroutine would kill the process.
func safeEvaluate(eval func() Outcome) (out Outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = Outcome{Err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	return eval()
}

// Result is a completed sweep: the normalized grid, its points in
// enumeration order, one Outcome per point, the Pareto-optimal subset,
// per-axis sensitivity tables and evaluator statistics. Identical
// grids produce byte-identical serialized Results regardless of
// worker count.
type Result struct {
	// Grid is the normalized grid that was swept.
	Grid Grid `json:"grid"`
	// Points and Outcomes are parallel slices in Index order.
	Points []Point `json:"-"`
	// Outcomes holds one evaluation per point.
	Outcomes []Outcome `json:"-"`
	// Records is the serialized view of Points/Outcomes.
	Records []Record `json:"results"`
	// ParetoIndices lists the indices of the non-dominated points
	// (maximize GFLOPS, minimize Slices and BdGBps), in Index order.
	ParetoIndices []int `json:"pareto"`
	// Sensitivity holds one table per grid axis with at least two
	// distinct values.
	Sensitivity []SensitivityTable `json:"sensitivity"`
	// Stats reports evaluation and memoization counts. For a screened
	// run it covers both phases (Points is the refined subset size;
	// the full screened grid size is Screen.Points).
	Stats Stats `json:"stats"`
	// Screen summarizes the screening pass of a RunScreened result
	// (nil for plain Run results).
	Screen *ScreenSummary `json:"screen,omitempty"`
}

// Record pairs a point with its outcome for serialization.
type Record struct {
	// Point is the design-space coordinate.
	Point Point `json:"point"`
	// Outcome is its evaluation.
	Outcome Outcome `json:"outcome"`
}

// Run evaluates every point of the grid on a bounded worker pool and
// reduces the outcomes to a Pareto frontier and sensitivity tables.
// The context cancels the sweep between points: Run then returns
// ctx.Err() after all in-flight evaluations drain (no goroutines are
// leaked). Results are deterministic: scheduling affects only the
// order OnResult observes, never the returned Result.
func Run(ctx context.Context, g Grid, opts Options) (*Result, error) {
	norm, err := g.normalized()
	if err != nil {
		return nil, err
	}
	points := norm.Points()
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	ev := newEvaluator(0)
	if opts.Evaluator != nil {
		ev = opts.Evaluator.ev
	}
	before := ev.statsDelta(Stats{})
	outcomes, err := evaluatePoints(ctx, norm.Method, points, opts, ev, before)
	if err != nil {
		return nil, err
	}
	return reduce(norm, points, outcomes, ev.statsDelta(before)), nil
}

// evaluatePoints runs the bounded worker pool over an arbitrary point
// subset under the given method. It is the engine under both Run (the
// full grid) and RunScreened (the model screen, then the refined
// candidate subset). before is the evaluator's stats snapshot at the
// run's start, so live Progress reports the run's own memo traffic
// even on a shared evaluator.
func evaluatePoints(ctx context.Context, method string, points []Point, opts Options, ev *evaluator, before Stats) ([]Outcome, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	outcomes := make([]Outcome, len(points))
	jobs := make(chan int, len(points))
	for i := range points {
		jobs <- i
	}
	close(jobs)

	var (
		wg       sync.WaitGroup
		notifyMu sync.Mutex
		tracker  *progressTracker
	)
	if opts.OnProgress != nil {
		tracker = newProgressTracker(len(points), workers)
		tracker.phase = opts.phase
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				start := time.Now()
				outcomes[i] = safeEvaluate(func() Outcome {
					return ev.evaluate(points[i], method)
				})
				elapsed := time.Since(start)
				if opts.OnResult != nil || tracker != nil {
					notifyMu.Lock()
					if opts.OnResult != nil {
						opts.OnResult(points[i], outcomes[i])
					}
					if tracker != nil {
						opts.OnProgress(tracker.completed(&outcomes[i], ev.statsDelta(before), worker, elapsed))
					}
					notifyMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	return outcomes, ctx.Err()
}

// reduce folds evaluated outcomes into a Result: error counts, the
// Pareto frontier, sensitivity tables and serialized records. points
// and outcomes are parallel; ParetoIndices index positions in them.
func reduce(norm Grid, points []Point, outcomes []Outcome, stats Stats) *Result {
	stats.Points = len(points)
	for i := range outcomes {
		if !outcomes[i].OK {
			stats.Errors++
		}
	}
	pareto := markPareto(outcomes)
	res := &Result{
		Grid:          norm,
		Points:        points,
		Outcomes:      outcomes,
		ParetoIndices: pareto,
		Sensitivity:   sensitivity(points, outcomes),
		Stats:         stats,
	}
	res.Records = make([]Record, len(points))
	for i := range points {
		res.Records[i] = Record{Point: points[i], Outcome: outcomes[i]}
	}
	return res
}

// Best returns the feasible point with the highest GFLOPS (ties break
// toward the lowest Index, so the result is deterministic), or -1 if
// every point was infeasible.
func (r *Result) Best() int {
	best := -1
	for i := range r.Outcomes {
		if !r.Outcomes[i].OK {
			continue
		}
		if best < 0 || r.Outcomes[i].GFLOPS > r.Outcomes[best].GFLOPS {
			best = i
		}
	}
	return best
}
