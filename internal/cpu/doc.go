// Package cpu models the general-purpose processor of a node as the
// design model sees it: a sustained floating-point rate per kernel
// class (the Op·Fp of Section 4.1), plus the latencies of the vendor
// library routines the software side calls — the ACML
// dgemm/dgetrf/dtrsm of Table 1 and the scalar Floyd-Warshall kernel.
//
// The model can be backed by measured constants (the paper's numbers
// for the 2.2 GHz Opteron) or calibrated against the host by timing
// the real Go kernels in internal/matrix, which exercises the same
// code path with live data.
package cpu
