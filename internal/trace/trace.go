package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"codesign/internal/sim"
)

// Event is one recorded engine action.
type Event struct {
	// Time is the virtual time of the action.
	Time float64
	// Proc names the process the action concerns.
	Proc string
	// Action is the engine's action string ("resume", "block: ...").
	Action string
}

// Collector accumulates events from a simulation engine.
type Collector struct {
	events []Event
	// Filter, if non-nil, drops events for which it returns false.
	Filter func(e Event) bool
	// Limit caps the number of stored events (0 = unlimited). Once
	// reached, further events are counted but not stored.
	Limit   int
	dropped int64
}

// Attach registers the collector on the engine's trace hook.
func (c *Collector) Attach(e *sim.Engine) {
	e.Trace = c.Record
}

// Record stores one event, honoring Filter and Limit. It has the same
// signature as the engine trace hook, so it can be passed directly to
// config Trace fields.
func (c *Collector) Record(t float64, proc, action string) {
	ev := Event{Time: t, Proc: proc, Action: action}
	if c.Filter != nil && !c.Filter(ev) {
		return
	}
	if c.Limit > 0 && len(c.events) >= c.Limit {
		c.dropped++
		return
	}
	c.events = append(c.events, ev)
}

// Events returns the recorded events in order.
func (c *Collector) Events() []Event {
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Dropped returns how many events exceeded Limit.
func (c *Collector) Dropped() int64 { return c.dropped }

// Len returns the stored event count.
func (c *Collector) Len() int { return len(c.events) }

// WriteCSV renders the events as RFC-4180 CSV with a
// "time_s,process,action" header. Fields containing commas, quotes or
// newlines are quoted, not rewritten.
func (c *Collector) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "process", "action"}); err != nil {
		return err
	}
	for _, e := range c.events {
		row := []string{strconv.FormatFloat(e.Time, 'f', 9, 64), e.Proc, e.Action}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Span is a contiguous busy interval of one process.
type Span struct {
	// Proc names the process.
	Proc string
	// Start and End bound the interval in virtual seconds.
	Start, End float64
}

// Spans derives busy intervals per process. Computation is modeled as
// timed waits in the engine, so a "block: wait" opens a busy span that
// the process's next "resume" closes; blocking on resources, mailboxes
// or signals is idle time and produces no span.
//
// Invariant: the engine emits strictly alternating block/resume pairs
// per process, so at most one span is open per process at a time. The
// derivation still defends against malformed streams (hand-built or
// filtered collectors): a second "block: wait" before the matching
// "resume" closes the open span at the new block time instead of
// silently discarding the earlier interval, and a trailing open span
// with no final "resume" is dropped because its end is unknown.
func (c *Collector) Spans() []Span {
	open := map[string]float64{}
	var spans []Span
	for _, e := range c.events {
		switch {
		case strings.HasPrefix(e.Action, "block: wait"):
			if s, ok := open[e.Proc]; ok && e.Time > s {
				spans = append(spans, Span{Proc: e.Proc, Start: s, End: e.Time})
			}
			open[e.Proc] = e.Time
		case e.Action == "resume":
			if s, ok := open[e.Proc]; ok {
				if e.Time > s {
					spans = append(spans, Span{Proc: e.Proc, Start: s, End: e.Time})
				}
				delete(open, e.Proc)
			}
		case strings.HasPrefix(e.Action, "block"):
			delete(open, e.Proc)
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Proc < spans[j].Proc
	})
	return spans
}

// WriteTimeline renders a coarse text Gantt chart: one row per process,
// width columns across [0, horizon] (horizon 0 = max recorded time).
func (c *Collector) WriteTimeline(w io.Writer, width int, horizon float64) error {
	if width <= 0 {
		width = 80
	}
	spans := c.Spans()
	if horizon <= 0 {
		for _, s := range spans {
			if s.End > horizon {
				horizon = s.End
			}
		}
	}
	if horizon <= 0 {
		// No busy span ends after 0; fall back to the raw events so a
		// trace that only blocks (or sits at t=0) still renders rows.
		for _, e := range c.events {
			if e.Time > horizon {
				horizon = e.Time
			}
		}
	}
	if horizon <= 0 {
		if len(c.events) == 0 {
			_, err := fmt.Fprintln(w, "(no activity)")
			return err
		}
		// Events exist but everything happened at t=0: use a nominal
		// horizon so the chart still shows each process row.
		horizon = 1
	}
	byProc := map[string][]Span{}
	var procs []string
	for _, s := range spans {
		if _, ok := byProc[s.Proc]; !ok {
			procs = append(procs, s.Proc)
		}
		byProc[s.Proc] = append(byProc[s.Proc], s)
	}
	sort.Strings(procs)
	nameW := 0
	for _, p := range procs {
		if len(p) > nameW {
			nameW = len(p)
		}
	}
	for _, p := range procs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range byProc[p] {
			lo := int(s.Start / horizon * float64(width))
			hi := int(s.End / horizon * float64(width))
			if lo >= width {
				lo = width - 1
			}
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i < width; i++ {
				row[i] = '#'
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", nameW, p, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%*s%.4gs\n", nameW, "", width-1, "", horizon)
	return err
}
