package sweep

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func TestOnProgressCoversEveryPoint(t *testing.T) {
	g := bigGrid()
	total := g.NumPoints()
	var snaps []Progress
	results := 0
	res, err := Run(context.Background(), g, Options{
		Workers:  4,
		OnResult: func(Point, Outcome) { results++ },
		OnProgress: func(p Progress) {
			// OnResult for the same point precedes OnProgress, and both
			// are serialized, so the result count always covers Done.
			if results < p.Done {
				t.Errorf("progress Done=%d saw only %d OnResult calls", p.Done, results)
			}
			snaps = append(snaps, p)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != total {
		t.Fatalf("got %d progress callbacks, want %d", len(snaps), total)
	}
	for i, p := range snaps {
		if p.Done != i+1 || p.Total != total {
			t.Fatalf("snapshot %d: Done=%d Total=%d, want Done=%d Total=%d", i, p.Done, p.Total, i+1, total)
		}
		if len(p.WorkerBusy) != 4 {
			t.Fatalf("snapshot %d: %d worker-busy entries, want 4", i, len(p.WorkerBusy))
		}
		if p.PointSeconds < 0 || p.Elapsed < 0 {
			t.Fatalf("snapshot %d: negative timing %+v", i, p)
		}
	}
	last := snaps[len(snaps)-1]
	if last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}
	if got := last.Percent(); got != 100 {
		t.Errorf("final Percent = %g, want 100", got)
	}
	if last.Infeasible+last.Errored != res.Stats.Errors {
		t.Errorf("Infeasible+Errored = %d+%d, want Stats.Errors = %d",
			last.Infeasible, last.Errored, res.Stats.Errors)
	}
	if last.Stats.PlaceLookups == 0 {
		t.Error("final snapshot carries no memoizer stats")
	}
	var busy time.Duration
	for _, d := range last.WorkerBusy {
		busy += d
	}
	if busy <= 0 {
		t.Error("no worker accumulated busy time")
	}
}

func TestOnProgressETABecomesFinite(t *testing.T) {
	sawEstimate := false
	_, err := Run(context.Background(), bigGrid(), Options{
		Workers: 2,
		OnProgress: func(p Progress) {
			if p.Done < p.Total && p.ETA >= 0 {
				sawEstimate = true
			}
			if p.Done < p.Total && p.Rate > 0 && p.ETA < 0 {
				t.Errorf("rate %g known but ETA withheld at Done=%d", p.Rate, p.Done)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawEstimate {
		t.Error("no mid-run snapshot carried an ETA estimate")
	}
}

func TestStatsHitRates(t *testing.T) {
	s := Stats{PlaceLookups: 100, PlaceSolves: 1, PartitionLookups: 50, PartitionSolves: 10}
	if got := s.PlaceHitRate(); got != 0.99 {
		t.Errorf("PlaceHitRate = %g, want 0.99", got)
	}
	if got := s.PartitionHitRate(); got != 0.8 {
		t.Errorf("PartitionHitRate = %g, want 0.8", got)
	}
	var zero Stats
	if zero.PlaceHitRate() != 0 || zero.PartitionHitRate() != 0 {
		t.Error("zero-traffic hit rates must be 0, not NaN")
	}
}

func TestProgressClassifiesPanicsAsErrored(t *testing.T) {
	pt := newProgressTracker(3, 1)
	snap := pt.completed(&Outcome{OK: true}, Stats{}, 0, time.Millisecond)
	if snap.Infeasible != 0 || snap.Errored != 0 {
		t.Errorf("OK outcome misclassified: %+v", snap)
	}
	snap = pt.completed(&Outcome{Err: "partition: b not divisible"}, Stats{}, 0, time.Millisecond)
	if snap.Infeasible != 1 || snap.Errored != 0 {
		t.Errorf("infeasible outcome misclassified: %+v", snap)
	}
	snap = pt.completed(&Outcome{Err: "panic: index out of range"}, Stats{}, 0, time.Millisecond)
	if snap.Infeasible != 1 || snap.Errored != 1 {
		t.Errorf("panicking outcome misclassified: %+v", snap)
	}
	if snap.Done != 3 || snap.ETA != 0 {
		t.Errorf("final tracker snapshot: %+v", snap)
	}
}

func TestProgressRateWindowWrap(t *testing.T) {
	// A fake clock completing one point per second makes the windowed
	// rate exactly 1 point/s at every step; the assertion holds through
	// the ring's wrap at rateWindowSize completions only if the oldest
	// retained timestamp is picked correctly on both sides of the seam.
	const total = rateWindowSize + 8
	pt := newProgressTracker(total, 1)
	base := time.Unix(1000, 0)
	pt.start = base
	step := 0
	pt.now = func() time.Time { return base.Add(time.Duration(step) * time.Second) }

	for i := 1; i <= total; i++ {
		step = i
		p := pt.completed(&Outcome{OK: true}, Stats{}, 0, time.Second)
		switch {
		case i == 1:
			// One completion is not a rate; the ETA must signal "no
			// estimate", not extrapolate from nothing.
			if p.Rate != 0 {
				t.Fatalf("first completion: rate %g, want 0", p.Rate)
			}
			if p.ETA >= 0 {
				t.Fatalf("first completion: ETA %v, want negative sentinel", p.ETA)
			}
		case i == total:
			if p.ETA != 0 {
				t.Fatalf("final completion: ETA %v, want 0", p.ETA)
			}
		default:
			if p.Rate != 1 {
				t.Fatalf("completion %d: rate %g, want exactly 1 across the ring seam", i, p.Rate)
			}
			if want := time.Duration(total-i) * time.Second; p.ETA != want {
				t.Fatalf("completion %d: ETA %v, want %v", i, p.ETA, want)
			}
			if p.Elapsed != time.Duration(i)*time.Second {
				t.Fatalf("completion %d: elapsed %v", i, p.Elapsed)
			}
		}
	}
}

func TestProgressETAWithoutRate(t *testing.T) {
	// A frozen clock never yields a positive rate: every mid-run
	// snapshot must keep the negative no-estimate sentinel, and only
	// the final snapshot may report 0.
	pt := newProgressTracker(3, 1)
	frozen := time.Unix(500, 0)
	pt.start = frozen
	pt.now = func() time.Time { return frozen }
	for i := 1; i <= 3; i++ {
		p := pt.completed(&Outcome{OK: true}, Stats{}, 0, 0)
		if i < 3 {
			if p.Rate != 0 {
				t.Errorf("completion %d: rate %g from a frozen clock", i, p.Rate)
			}
			if p.ETA >= 0 {
				t.Errorf("completion %d: ETA %v published without a rate", i, p.ETA)
			}
		} else if p.ETA != 0 {
			t.Errorf("final ETA %v, want 0 at completion", p.ETA)
		}
	}
}

func TestProgressDeterminismUnaffected(t *testing.T) {
	// Attaching OnProgress must not change the Result bytes.
	plain := runJSON(t, bigGrid(), 4)
	res, err := Run(context.Background(), bigGrid(), Options{
		Workers:    4,
		OnProgress: func(Progress) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if string(plain) != buf.String() {
		t.Error("OnProgress changed the serialized Result")
	}
}
