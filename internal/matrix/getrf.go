package matrix

import (
	"errors"
	"fmt"
)

// ErrSingular is returned when Gaussian elimination meets a zero (or,
// with pivoting, an all-zero column) pivot.
var ErrSingular = errors.New("matrix: singular matrix")

// LU performs an in-place LU factorization of the square matrix a
// without pivoting: on return the strict lower triangle of a holds L
// (unit diagonal implied) and the upper triangle holds U. This is the
// Gaussian-elimination kernel the paper uses for opLU; it assumes the
// input needs no pivoting (e.g. diagonally dominant).
func LU(a *Dense) error {
	n := checkSquare(a, "LU")
	for k := 0; k < n; k++ {
		akk := a.At(k, k)
		if akk == 0 {
			return fmt.Errorf("%w: zero pivot at %d", ErrSingular, k)
		}
		for i := k + 1; i < n; i++ {
			lik := a.At(i, k) / akk
			a.Set(i, k, lik)
			ai, ak := a.Row(i), a.Row(k)
			for j := k + 1; j < n; j++ {
				ai[j] -= lik * ak[j]
			}
		}
	}
	return nil
}

// LUPanel factors an r×c panel (r >= c) in place: a sequence of Gaussian
// eliminations on the tall matrix formed by A00 stacked on A10 (step 1 of
// the block algorithm). On return columns 0..c-1 hold L00/L10 below the
// diagonal and U00 on and above it.
func LUPanel(a *Dense) error {
	r, c := a.Dims()
	if r < c {
		panic(fmt.Sprintf("matrix: LUPanel %dx%d has more columns than rows", r, c))
	}
	for k := 0; k < c; k++ {
		akk := a.At(k, k)
		if akk == 0 {
			return fmt.Errorf("%w: zero pivot at %d", ErrSingular, k)
		}
		for i := k + 1; i < r; i++ {
			lik := a.At(i, k) / akk
			a.Set(i, k, lik)
			ai, ak := a.Row(i), a.Row(k)
			for j := k + 1; j < c; j++ {
				ai[j] -= lik * ak[j]
			}
		}
	}
	return nil
}

// LUPartialPivot performs in-place LU factorization with partial
// (row) pivoting: P*A = L*U. It returns the permutation as a slice p
// where row i of the factored matrix corresponds to row p[i] of the
// original. This extends the paper's no-pivot assumption so the library
// is safe on general nonsingular inputs.
func LUPartialPivot(a *Dense) ([]int, error) {
	n := checkSquare(a, "LUPartialPivot")
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Find the largest magnitude pivot in column k.
		pRow, pVal := k, abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := abs(a.At(i, k)); v > pVal {
				pRow, pVal = i, v
			}
		}
		if pVal == 0 {
			return perm, fmt.Errorf("%w: zero pivot column %d", ErrSingular, k)
		}
		if pRow != k {
			swapRows(a, k, pRow)
			perm[k], perm[pRow] = perm[pRow], perm[k]
		}
		akk := a.At(k, k)
		for i := k + 1; i < n; i++ {
			lik := a.At(i, k) / akk
			a.Set(i, k, lik)
			ai, ak := a.Row(i), a.Row(k)
			for j := k + 1; j < n; j++ {
				ai[j] -= lik * ak[j]
			}
		}
	}
	return perm, nil
}

// BlockLU performs the right-looking block LU factorization of Section
// 5.1.1 in place with block size b: for each iteration t it factors the
// panel (opLU + opL fused as LUPanel), solves for the U row block (opU),
// and updates the trailing submatrix (opMM + opMS). It is the sequential
// reference for the distributed hybrid design.
func BlockLU(a *Dense, b int) error {
	n := checkSquare(a, "BlockLU")
	if b <= 0 {
		panic("matrix: BlockLU block size must be positive")
	}
	for t := 0; t < n; t += b {
		nb := min(b, n-t)
		panel := a.View(t, t, n-t, nb)
		if err := LUPanel(panel); err != nil {
			return fmt.Errorf("iteration %d: %w", t/b, err)
		}
		if t+nb >= n {
			break
		}
		l00 := a.View(t, t, nb, nb)
		u01 := a.View(t, t+nb, nb, n-t-nb)
		TrsmLowerUnitLeft(l00, u01) // opU
		l10 := a.View(t+nb, t, n-t-nb, nb)
		a11 := a.View(t+nb, t+nb, n-t-nb, n-t-nb)
		Gemm(-1, l10, u01, 1, a11) // opMM + opMS fused
	}
	return nil
}

// ExtractLU splits an in-place factorization into explicit L (unit lower
// triangular) and U (upper triangular) matrices.
func ExtractLU(a *Dense) (l, u *Dense) {
	n := checkSquare(a, "ExtractLU")
	l, u = New(n, n), New(n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < i; j++ {
			l.Set(i, j, a.At(i, j))
		}
		for j := i; j < n; j++ {
			u.Set(i, j, a.At(i, j))
		}
	}
	return l, u
}

// ApplyPerm returns P*A for the row permutation produced by
// LUPartialPivot (row i of the result is row perm[i] of a).
func ApplyPerm(perm []int, a *Dense) *Dense {
	if len(perm) != a.rows {
		panic("matrix: permutation length mismatch")
	}
	out := New(a.rows, a.cols)
	for i, p := range perm {
		copy(out.Row(i), a.Row(p))
	}
	return out
}

func swapRows(a *Dense, i, j int) {
	ri, rj := a.Row(i), a.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
