package core

import (
	"fmt"
	"math/rand"

	"codesign/internal/cpu"
	"codesign/internal/fpga"
	"codesign/internal/machine"
	"codesign/internal/matrix"
	"codesign/internal/model"
	"codesign/internal/sim"
)

// CholConfig configures a distributed block Cholesky factorization —
// the extension application the paper's conclusion points at ("extend
// the proposed model to a broader range of applications") and the third
// routine of the ScaLAPACK set it builds on [10]. The design mirrors
// the LU co-design: the panel node factors the diagonal block (opPOTRF,
// with the square-root unit's datapath) and solves the panel (opTRSM);
// the trailing symmetric update is split row-wise between processor and
// FPGA on the other p-1 nodes, with only the lower triangle's blocks
// computed (opSYRK on the diagonal, opGEMM below it).
type CholConfig struct {
	// Machine is the system; zero value means one Cray XD1 chassis.
	Machine machine.Config
	// N is the matrix size, B the block size (multiple of PEs and p-1).
	N, B int
	// PEs is the matmul design size; 0 means the largest that fits.
	PEs int
	// BF is the FPGA row share per stripe; -1 solves Equation (4).
	BF int
	// L is the panel pipeline depth; -1 solves Equation (5).
	L int
	// Mode selects hybrid or a baseline.
	Mode Mode
	// Functional factors a real SPD matrix and checks L·Lᵀ = A.
	Functional bool
	// Seed drives functional input generation.
	Seed int64
	// Observer, when non-nil, receives the structured telemetry stream
	// (raw events and typed spans; see internal/trace.Recorder).
	Observer sim.Observer
	// Telemetry attaches a span digest — utilization, bytes moved, and
	// the Tp/Tf/Tmem/Tcomm overlap decomposition — to the result.
	Telemetry bool
}

// CholResult extends Result with the Cholesky-specific configuration.
type CholResult struct {
	Result
	BF, BP, L, K int
	Model        model.LUParams
	Prediction   model.Prediction
}

type cholJob struct {
	t, u, v int // v <= u: lower-triangle block (u, v)
	e       *matrix.Dense
	arrived int
}

type cholRun struct {
	cfg     CholConfig
	sys     *machine.System
	lp      model.LUParams
	nb      int
	bf      int
	l       int
	stripes int

	charge   jobCharge
	sendTime float64

	boxes []*sim.Mailbox
	iters []*luIter

	a *matrix.Dense
}

func (cr *cholRun) blk(u, v int) *matrix.Dense {
	b := cr.cfg.B
	return cr.a.View(u*b, v*b, b, b)
}

func (cr *cholRun) computeNodes(t int) []int {
	p := cr.sys.Cfg.Nodes
	out := make([]int, 0, p-1)
	for i := 0; i < p; i++ {
		if i != t%p {
			out = append(out, i)
		}
	}
	return out
}

// RunCholesky simulates the distributed factorization.
func RunCholesky(cfg CholConfig) (*CholResult, error) {
	if cfg.Machine.Nodes == 0 {
		cfg.Machine = machine.XD1()
	}
	p := cfg.Machine.Nodes
	if p < 2 {
		return nil, fmt.Errorf("core: cholesky design needs p >= 2, got %d", p)
	}
	if cfg.N <= 0 || cfg.B <= 0 || cfg.N%cfg.B != 0 || cfg.B%(p-1) != 0 {
		return nil, fmt.Errorf("core: bad geometry n=%d b=%d (b must divide n and be a multiple of p-1)", cfg.N, cfg.B)
	}
	sys, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	rec := setupTelemetry(sys.Eng, cfg.Telemetry, cfg.Observer)
	k := cfg.PEs
	if k == 0 {
		k = fpga.MaxPEs(func(k int) fpga.Design { return fpga.NewMatMul(k) }, cfg.Machine.Device)
	}
	if cfg.B%k != 0 {
		return nil, fmt.Errorf("core: block size %d must be a multiple of k=%d", cfg.B, k)
	}
	if err := sys.InstallDesign(fpga.NewMatMul(k)); err != nil {
		return nil, err
	}
	accel := sys.Nodes[0].Accel
	proc := sys.Nodes[0].Proc

	lp := model.LUParams{
		P: p, B: cfg.B, K: k,
		Ff:         accel.Placed.FreqHz,
		StripeRate: proc.Rate(cpu.DGEMMStripe),
		LURate:     proc.Rate(cpu.DGETRF),
		TrsmRate:   proc.Rate(cpu.DTRSM),
		Bd:         accel.DRAM.BandwidthBytes,
		Bn:         cfg.Machine.Fabric.LinkBandwidth,
		Bw:         machine.WordBytes,
		SRAMBytes:  sys.Nodes[0].SRAM.TotalBytes() / 2,
	}
	if err := lp.Validate(); err != nil {
		return nil, err
	}
	bf := cfg.BF
	switch cfg.Mode {
	case ProcessorOnly:
		bf = 0
	case FPGAOnly:
		bf = cfg.B
	default:
		if bf < 0 {
			bf, _ = lp.SolvePartition()
		}
	}
	if bf < 0 || bf > cfg.B {
		return nil, fmt.Errorf("core: bf=%d out of [0,%d]", bf, cfg.B)
	}
	l := cfg.L
	if l < 0 {
		l = lp.SolveL(bf)
	}

	cr := &cholRun{cfg: cfg, sys: sys, lp: lp, nb: cfg.N / cfg.B, bf: bf, l: l, stripes: cfg.B / k}
	// Per-job charges are the LU opMM charges; SYRK (diagonal) jobs
	// halve the compute terms at run time.
	lu := &luRun{cfg: LUConfig{Machine: cfg.Machine, N: cfg.N, B: cfg.B, Mode: cfg.Mode}, sys: sys, lp: lp, lpLive: lp, gemmRate: proc.Rate(cpu.DGEMM), bf: bf, stripes: cr.stripes}
	cr.charge = lu.chargeForBF(bf)
	_, _, _, tcomm := lp.StripeTimes(bf)
	cr.sendTime = float64(cr.stripes) * tcomm

	var ref *matrix.Dense
	if cfg.Functional {
		rng := rand.New(rand.NewSource(cfg.Seed))
		cr.a = matrix.RandomSPD(cfg.N, rng)
		ref = cr.a.Clone()
		if err := matrix.BlockCholesky(ref, cfg.B); err != nil {
			return nil, fmt.Errorf("core: reference factorization: %w", err)
		}
	}

	for i := 0; i < p; i++ {
		cr.boxes = append(cr.boxes, sim.NewMailbox(sys.Eng, fmt.Sprintf("chol.jobs%d", i)))
	}
	for t := 0; t < cr.nb; t++ {
		rem := cr.nb - 1 - t
		it := &luIter{
			pending: rem * (rem + 1) / 2, // lower-triangle jobs
			done:    sim.NewSignal(sys.Eng, fmt.Sprintf("chol.iter%d.done", t)),
			bar:     sim.NewBarrier(sys.Eng, fmt.Sprintf("chol.iter%d.bar", t), p),
		}
		if it.pending == 0 {
			it.done.Fire()
		}
		cr.iters = append(cr.iters, it)
	}

	for i := 0; i < p; i++ {
		node := sys.Nodes[i]
		me := i
		sys.Eng.Go(fmt.Sprintf("node%d.cpu", me), func(pr *sim.Proc) {
			for t := 0; t < cr.nb; t++ {
				if me == t%p {
					cr.runPanel(pr, node, t)
				} else {
					cr.runCompute(pr, node, me, t)
				}
				it := cr.iters[t]
				it.done.Wait(pr)
				it.bar.Arrive(pr)
			}
		})
	}

	end, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("core: cholesky simulation: %w", err)
	}
	n := float64(cfg.N)
	flops := n * n * n / 3
	cpuBusy, fpgaBusy := collectBusy(sys)
	res := &CholResult{
		Result: Result{
			App: "chol", Mode: cfg.Mode, N: cfg.N, B: cfg.B,
			Seconds: end, Flops: flops, GFLOPS: flops / end / 1e9,
			NetworkBytes:  sys.Fab.Bytes(),
			Coordinations: collectCoordinations(sys),
			CPUBusy:       cpuBusy, FPGABusy: fpgaBusy,
		},
		BF: bf, BP: cfg.B - bf, L: l, K: k,
		Model: lp,
		// Cholesky does half of LU's trailing work per iteration pair;
		// reuse the LU predictor scaled by the flop ratio.
		Prediction: scalePrediction(lp.PredictLU(cfg.N, bf), 0.5, flops),
	}
	summarizeTelemetry(rec, end, &res.Result)
	if cfg.Functional && ref != nil {
		res.Checked = true
		res.MaxResidual = matrix.ExtractLower(cr.a).MaxDiff(matrix.ExtractLower(ref))
	}
	return res, nil
}

// scalePrediction rescales a prediction's times by factor and recomputes
// throughput for the given useful flops.
func scalePrediction(p model.Prediction, factor, flops float64) model.Prediction {
	p.Ttp *= factor
	p.Ttf *= factor
	p.Seconds *= factor
	p.Flops = flops
	p.GFLOPS = flops / p.Seconds / 1e9
	return p
}

// runPanel is iteration t on the panel node: opPOTRF then the opTRSM
// sequence, releasing trailing-update jobs l at a time.
func (cr *cholRun) runPanel(pr *sim.Proc, node *machine.Node, t int) {
	b := cr.cfg.B
	nb := cr.nb
	pr.SetPhase("panel")
	defer pr.SetPhase("")

	// opPOTRF: (1/3)b³ flops at the factorization routine rate.
	node.ComputeCPU(pr, cpu.DGETRF, cpu.DgetrfFlops(b)/2)
	if cr.a != nil {
		if err := matrix.Cholesky(cr.blk(t, t)); err != nil {
			panic(fmt.Sprintf("opPOTRF iteration %d: %v", t, err))
		}
	}

	var ready []*cholJob
	send := func(limit int) {
		for limit != 0 && len(ready) > 0 {
			j := ready[0]
			ready = ready[1:]
			cr.sendJob(pr, node, t, j)
			if limit > 0 {
				limit--
			}
		}
	}

	for u := t + 1; u < nb; u++ {
		// opTRSM on panel block (u, t).
		node.ComputeCPU(pr, cpu.DTRSM, cpu.DtrsmFlops(b))
		if cr.a != nil {
			matrix.TrsmRightLowerT(cr.blk(t, t), cr.blk(u, t))
		}
		// Jobs (u, v) for v <= u are now ready.
		for v := t + 1; v <= u; v++ {
			j := &cholJob{t: t, u: u, v: v}
			if cr.a != nil && u != v {
				j.e = matrix.New(b, b)
			}
			ready = append(ready, j)
		}
		send(cr.l)
	}
	send(-1)
	for _, dst := range cr.computeNodes(t) {
		cr.boxes[dst].Put(luSentinel{t: t})
	}
}

func (cr *cholRun) sendJob(pr *sim.Proc, node *machine.Node, t int, j *cholJob) {
	bytes := 2 * cr.cfg.B * cr.cfg.B * machine.WordBytes
	if j.u == j.v {
		bytes /= 2 // SYRK needs only one panel block
	}
	dsts := cr.computeNodes(t)
	prevPhase := pr.Phase()
	pr.SetPhase("broadcast")
	cr.sys.Fab.Multicast(pr, node.ID, dsts, bytes)
	pr.SetPhase(prevPhase)
	for _, dst := range dsts {
		cr.boxes[dst].Put(j)
	}
}

// runCompute processes this node's share of the trailing update jobs.
func (cr *cholRun) runCompute(pr *sim.Proc, node *machine.Node, me, t int) {
	cn := cr.computeNodes(t)
	ci := 0
	for idx, n := range cn {
		if n == me {
			ci = idx
		}
	}
	w := cr.cfg.B / (cr.sys.Cfg.Nodes - 1)
	pr.SetPhase("opmm")
	defer pr.SetPhase("")
	for {
		msg := cr.boxes[me].Get(pr)
		if s, ok := msg.(luSentinel); ok {
			if s.t != t {
				panic(fmt.Sprintf("core: node %d got sentinel for iteration %d during %d", me, s.t, t))
			}
			return
		}
		j := msg.(*cholJob)
		ch := cr.charge
		if j.u == j.v {
			// Symmetric update: half the arithmetic, half the traffic.
			ch.cpuRecv /= 2
			ch.cpuDMA /= 2
			ch.cpuGemm /= 2
			ch.fpgaCycles /= 2
			ch.dmaBytes /= 2
		}

		var done *sim.Signal
		if ch.fpgaCycles > 0 {
			a := node.Accel
			done = a.Launch(sim.Name("chol.fpga", t, j.u, j.v, me), func(fp *sim.Proc) {
				fp.SetPhase("opmm")
				a.WaitOperands(fp, ch.fpgaLag)
				a.Compute(fp, ch.fpgaCycles)
			})
		}
		// The three CPU charges fuse into one engine park (ChargeCPUSeq).
		var seq [3]sim.Charge
		cs := seq[:0]
		if ch.cpuRecv > 0 {
			cs = append(cs, sim.Charge{Cat: sim.CatNetwork, Dt: ch.cpuRecv})
		}
		if ch.cpuDMA > 0 {
			cs = append(cs, sim.Charge{Cat: sim.CatDMA, Bytes: ch.dmaBytes, Dt: ch.cpuDMA})
		}
		if ch.cpuGemm > 0 {
			cs = append(cs, sim.Charge{Cat: sim.CatCompute, Dt: ch.cpuGemm})
		}
		node.ChargeCPUSeq(pr, cs)
		if j.e != nil {
			// Functional off-diagonal update slice:
			// E[:, cols] = L_u,t · (L_v,t)ᵀ[:, cols].
			eSlice := j.e.View(0, ci*w, cr.cfg.B, w)
			bT := cr.blk(j.v, j.t).Transpose()
			matrix.Gemm(1, cr.blk(j.u, j.t), bT.View(0, ci*w, cr.cfg.B, w), 0, eSlice)
		}
		if done != nil {
			node.Accel.AwaitDone(pr, done)
		}
		cr.forwardResult(pr, me, t, j)
	}
}

func (cr *cholRun) forwardResult(pr *sim.Proc, me, t int, j *cholJob) {
	p := cr.sys.Cfg.Nodes
	owner := j.u % p // block (u,v) lives in block-row u
	sliceBytes := cr.cfg.B * cr.cfg.B / (p - 1) * machine.WordBytes
	if j.u == j.v {
		sliceBytes /= 2
	}
	prevPhase := pr.Phase()
	pr.SetPhase("scatter")
	cr.sys.Fab.Transfer(pr, me, owner, sliceBytes)
	pr.SetPhase(prevPhase)
	j.arrived++
	if j.arrived < p-1 {
		return
	}
	ownerNode := cr.sys.Nodes[owner]
	it := cr.iters[t]
	b := cr.cfg.B
	cr.sys.Eng.Go(sim.Name("chol.opms", t, j.u, j.v), func(mp *sim.Proc) {
		mp.SetPhase("opms")
		unpack := float64(b*b*machine.WordBytes) / cr.lp.Bn
		sub := cpu.SubtractFlops(b)
		if j.u == j.v {
			unpack /= 2
			sub /= 2
		}
		ownerNode.ChargeCPUSeq(mp, []sim.Charge{
			{Cat: sim.CatNetwork, Dt: unpack},
			{Cat: sim.CatCompute, Dt: ownerNode.Proc.Time(cpu.Subtract, sub)},
		})
		if cr.a != nil {
			if j.u == j.v {
				// Diagonal: symmetric rank-b update, lower only.
				matrix.Syrk(cr.blk(j.u, j.t), cr.blk(j.u, j.u))
			} else {
				cr.blk(j.u, j.v).Sub(j.e)
			}
		}
		it.pending--
		if it.pending == 0 {
			it.done.Fire()
		}
	})
}
