package cache

import "sync"

// Stats counts a cache's traffic. All fields are cumulative since
// construction; read a consistent snapshot with LRU.Stats.
type Stats struct {
	// Lookups counts Get/GetOrCompute calls; Hits the subset served
	// from the cache.
	Lookups int64 `json:"lookups"`
	// Hits counts lookups served without running a loader.
	Hits int64 `json:"hits"`
	// Misses counts lookups that ran (or required) a fresh compute.
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to respect the size bound.
	Evictions int64 `json:"evictions"`
}

// HitRate returns Hits/Lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// node is one LRU entry on the intrusive recency list (head = most
// recently used).
type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next *node[K, V]
}

// LRU is a size-bounded least-recently-used cache. A bound of 0 means
// unbounded — a plain memo map with stats, the sweep memoizer's mode.
// All methods are safe for concurrent use.
type LRU[K comparable, V any] struct {
	mu         sync.Mutex
	bound      int
	m          map[K]*node[K, V]
	head, tail *node[K, V]
	stats      Stats
}

// NewLRU returns an empty cache holding at most bound entries
// (bound <= 0 = unbounded).
func NewLRU[K comparable, V any](bound int) *LRU[K, V] {
	if bound < 0 {
		bound = 0
	}
	return &LRU[K, V]{bound: bound, m: make(map[K]*node[K, V])}
}

// unlink removes n from the recency list.
func (c *LRU[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// pushFront makes n the most recently used entry.
func (c *LRU[K, V]) pushFront(n *node[K, V]) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// touch moves an existing entry to the front.
func (c *LRU[K, V]) touch(n *node[K, V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// insert adds a new entry at the front, evicting the least recently
// used entry if the bound is exceeded. Caller holds c.mu.
func (c *LRU[K, V]) insert(k K, v V) {
	n := &node[K, V]{key: k, val: v}
	c.m[k] = n
	c.pushFront(n)
	if c.bound > 0 && len(c.m) > c.bound {
		victim := c.tail
		c.unlink(victim)
		delete(c.m, victim.key)
		c.stats.Evictions++
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Lookups++
	n, ok := c.m[k]
	if !ok {
		c.stats.Misses++
		var zero V
		return zero, false
	}
	c.stats.Hits++
	c.touch(n)
	return n.val, true
}

// Put stores v under k (replacing any existing value), marking it most
// recently used.
func (c *LRU[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.m[k]; ok {
		n.val = v
		c.touch(n)
		return
	}
	c.insert(k, v)
}

// GetOrCompute returns the cached value for k, running load under the
// cache lock on a miss. Holding the lock during the load serializes
// distinct computes but guarantees each distinct key is computed
// exactly once however many goroutines race for it — the memoizer
// contract internal/sweep relies on for deterministic solve counts.
// For long computes where concurrent distinct keys must proceed in
// parallel, use Loading instead. The second result reports whether
// load ran.
func (c *LRU[K, V]) GetOrCompute(k K, load func() V) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Lookups++
	if n, ok := c.m[k]; ok {
		c.stats.Hits++
		c.touch(n)
		return n.val, false
	}
	c.stats.Misses++
	v := load()
	c.insert(k, v)
	return v, true
}

// Entry is one key/value pair of a cache snapshot.
type Entry[K comparable, V any] struct {
	// Key is the cache key.
	Key K `json:"key"`
	// Val is the cached value.
	Val V `json:"val"`
}

// Dump returns a snapshot of the cache contents in recency order, most
// recently used first. Dumping does not touch recency or stats. The
// snapshot is a copy; mutating it does not affect the cache.
func (c *LRU[K, V]) Dump() []Entry[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry[K, V], 0, len(c.m))
	for n := c.head; n != nil; n = n.next {
		out = append(out, Entry[K, V]{Key: n.key, Val: n.val})
	}
	return out
}

// Seed inserts a Dump-format snapshot, oldest entry first, so a dump
// restored into an equally-bounded cache reproduces the original
// recency order (and, when the snapshot exceeds the bound, keeps the
// most recently used entries). Existing keys are overwritten. Seeding
// counts toward Evictions when the bound trims it, but not toward
// lookup stats.
func (c *LRU[K, V]) Seed(entries []Entry[K, V]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if n, ok := c.m[e.Key]; ok {
			n.val = e.Val
			c.touch(n)
			continue
		}
		c.insert(e.Key, e.Val)
	}
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns a consistent snapshot of the cache's counters.
func (c *LRU[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
