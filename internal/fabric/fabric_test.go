package fabric

import (
	"math"
	"testing"

	"codesign/internal/sim"
)

func newTestFabric(t *testing.T, e *sim.Engine, cfg Config) *Fabric {
	t.Helper()
	f, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidation(t *testing.T) {
	e := sim.New()
	bad := []Config{
		{Nodes: 0, LinkBandwidth: 1, LinksPerNode: 1},
		{Nodes: 2, LinkBandwidth: 0, LinksPerNode: 1},
		{Nodes: 2, LinkBandwidth: 1, LinksPerNode: 0},
		{Nodes: 2, LinkBandwidth: 1, LinksPerNode: 1, Latency: -1},
	}
	for i, cfg := range bad {
		if _, err := New(e, cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTransferTime(t *testing.T) {
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 2, LinkBandwidth: 1000, LinksPerNode: 1, Latency: 0.5})
	if got := f.TransferTime(2000); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("TransferTime = %v, want 2.5", got)
	}
}

func TestSingleTransferLatency(t *testing.T) {
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 2, LinkBandwidth: 100, LinksPerNode: 1})
	var done float64
	e.Go("tx", func(p *sim.Proc) {
		f.Transfer(p, 0, 1, 250)
		done = p.Now()
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-2.5) > 1e-12 {
		t.Fatalf("transfer finished at %v, want 2.5", done)
	}
}

func TestLocalTransferFree(t *testing.T) {
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 2, LinkBandwidth: 1, LinksPerNode: 1})
	e.Go("tx", func(p *sim.Proc) {
		f.Transfer(p, 1, 1, 1<<30)
		if p.Now() != 0 {
			t.Errorf("local transfer took %v", p.Now())
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestEgressContentionSerializes(t *testing.T) {
	// Two simultaneous sends from node 0 over a single link serialize.
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 3, LinkBandwidth: 100, LinksPerNode: 1})
	var t1, t2 float64
	e.Go("a", func(p *sim.Proc) { f.Transfer(p, 0, 1, 100); t1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { f.Transfer(p, 0, 2, 100); t2 = p.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if t1 != 1 || t2 != 2 {
		t.Fatalf("serialized finishes = %v, %v; want 1, 2", t1, t2)
	}
}

func TestTwoLinksAllowParallelism(t *testing.T) {
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 3, LinkBandwidth: 100, LinksPerNode: 2})
	var t1, t2 float64
	e.Go("a", func(p *sim.Proc) { f.Transfer(p, 0, 1, 100); t1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { f.Transfer(p, 0, 2, 100); t2 = p.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if t1 != 1 || t2 != 1 {
		t.Fatalf("parallel finishes = %v, %v; want 1, 1", t1, t2)
	}
}

func TestCrossbarNonBlocking(t *testing.T) {
	// Disjoint pairs (0->1, 2->3) never contend.
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 4, LinkBandwidth: 100, LinksPerNode: 1})
	var t1, t2 float64
	e.Go("a", func(p *sim.Proc) { f.Transfer(p, 0, 1, 100); t1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { f.Transfer(p, 2, 3, 100); t2 = p.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if t1 != 1 || t2 != 1 {
		t.Fatalf("disjoint transfers = %v, %v; want 1, 1", t1, t2)
	}
}

func TestIngressContention(t *testing.T) {
	// Two senders targeting the same destination serialize at ingress.
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 3, LinkBandwidth: 100, LinksPerNode: 1})
	var t1, t2 float64
	e.Go("a", func(p *sim.Proc) { f.Transfer(p, 0, 2, 100); t1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { f.Transfer(p, 1, 2, 100); t2 = p.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if t1 != 1 || t2 != 2 {
		t.Fatalf("ingress-serialized finishes = %v, %v; want 1, 2", t1, t2)
	}
}

func TestStats(t *testing.T) {
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 2, LinkBandwidth: 100, LinksPerNode: 1})
	e.Go("a", func(p *sim.Proc) {
		f.Transfer(p, 0, 1, 100)
		f.Transfer(p, 0, 1, 50)
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if f.Messages() != 2 || f.Bytes() != 150 {
		t.Fatalf("stats: %d msgs %d bytes", f.Messages(), f.Bytes())
	}
	if got := f.EgressBusySeconds(0); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("egress busy %v, want 1.5", got)
	}
	if got := f.IngressBusySeconds(1); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("ingress busy %v, want 1.5", got)
	}
}

func TestBadNodePanics(t *testing.T) {
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 2, LinkBandwidth: 1, LinksPerNode: 1})
	e.Go("a", func(p *sim.Proc) { f.Transfer(p, 0, 5, 1) })
	if err := e.Run(0); err == nil {
		t.Fatal("expected panic for out-of-range node")
	}
}

func TestMulticastChargesSenderOnce(t *testing.T) {
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 4, LinkBandwidth: 100, LinksPerNode: 1})
	e.Go("tx", func(p *sim.Proc) {
		f.Multicast(p, 0, []int{1, 2, 3}, 100)
		if p.Now() != 1 { // one wire time, not three
			t.Errorf("multicast took %v, want 1", p.Now())
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	// Wire traffic counts per destination.
	if f.Bytes() != 300 {
		t.Fatalf("bytes = %d, want 300", f.Bytes())
	}
	if f.Messages() != 1 {
		t.Fatalf("messages = %d, want 1", f.Messages())
	}
}

func TestMulticastEmptyDsts(t *testing.T) {
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 2, LinkBandwidth: 1, LinksPerNode: 1})
	e.Go("tx", func(p *sim.Proc) {
		f.Multicast(p, 0, nil, 1<<20)
		if p.Now() != 0 {
			t.Errorf("empty multicast took %v", p.Now())
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if f.Messages() != 0 {
		t.Fatal("empty multicast counted")
	}
}

func TestMulticastContendsWithUnicast(t *testing.T) {
	// A multicast and a unicast from the same node share its one
	// egress link and serialize.
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 3, LinkBandwidth: 100, LinksPerNode: 1})
	var t1, t2 float64
	e.Go("a", func(p *sim.Proc) { f.Multicast(p, 0, []int{1, 2}, 100); t1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { f.Transfer(p, 0, 1, 100); t2 = p.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if t1 != 1 || t2 != 2 {
		t.Fatalf("serialization: multicast %v, transfer %v; want 1, 2", t1, t2)
	}
}

func TestMulticastNegativeBytesPanics(t *testing.T) {
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 2, LinkBandwidth: 1, LinksPerNode: 1})
	e.Go("a", func(p *sim.Proc) { f.Multicast(p, 0, []int{1}, -1) })
	if err := e.Run(0); err == nil {
		t.Fatal("expected panic propagation")
	}
}

func TestTransferNegativeBytesPanics(t *testing.T) {
	e := sim.New()
	f := newTestFabric(t, e, Config{Nodes: 2, LinkBandwidth: 1, LinksPerNode: 1})
	e.Go("a", func(p *sim.Proc) { f.Transfer(p, 0, 1, -5) })
	if err := e.Run(0); err == nil {
		t.Fatal("expected panic propagation")
	}
}

func TestConfigAccessors(t *testing.T) {
	e := sim.New()
	cfg := Config{Nodes: 3, LinkBandwidth: 42, LinksPerNode: 2, Latency: 0.1}
	f := newTestFabric(t, e, cfg)
	if f.Config() != cfg || f.Nodes() != 3 {
		t.Fatal("accessors")
	}
}
