package sweep

import (
	"context"
	"strings"
	"testing"
)

// TestDensityRegimeFlipModel pins the tentpole acceptance behavior: on
// the density axis the solved Equation (1) partition flips from all-CPU
// (dense, Op*Fp-bound) to all-FPGA (sparse, Bd-bound), under the
// closed-form model.
func TestDensityRegimeFlipModel(t *testing.T) {
	g := Grid{
		Apps:    []string{"spmv"},
		N:       []int{1024},
		Density: []float64{0, 0.05},
		Method:  MethodModel,
	}
	res, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense, sparse := res.Outcomes[0], res.Outcomes[1]
	if !dense.OK || !sparse.OK {
		t.Fatalf("infeasible points: %s / %s", dense.Err, sparse.Err)
	}
	if dense.BF != 0 || dense.Binding != "Op*Fp" {
		t.Fatalf("dense point: bf=%d binding=%s, want 0/Op*Fp", dense.BF, dense.Binding)
	}
	if sparse.BF != 1024 || sparse.Binding != "Bd" {
		t.Fatalf("sparse point: bf=%d binding=%s, want 1024/Bd", sparse.BF, sparse.Binding)
	}
	if sparse.GFLOPS >= dense.GFLOPS {
		t.Fatalf("sparse apply (%g GFLOPS) cannot outrun dense DGEMV (%g GFLOPS)",
			sparse.GFLOPS, dense.GFLOPS)
	}
}

// TestDensityRegimeFlipSim repeats the flip under the full simulation:
// the measured span classification must attribute the sparse point's
// busiest phase to the DRAM path (Bd) and the dense point to the
// processor.
func TestDensityRegimeFlipSim(t *testing.T) {
	g := Grid{
		Apps:    []string{"spmv"},
		N:       []int{512},
		Density: []float64{0, 0.1},
		Method:  MethodSim,
	}
	res, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense, sparse := res.Outcomes[0], res.Outcomes[1]
	if !dense.OK || !sparse.OK {
		t.Fatalf("infeasible points: %s / %s", dense.Err, sparse.Err)
	}
	if dense.BF != 0 || dense.Binding != "Op*Fp" {
		t.Fatalf("dense sim point: bf=%d binding=%s, want 0/Op*Fp", dense.BF, dense.Binding)
	}
	if sparse.BF != 512 || sparse.Binding != "Bd" {
		t.Fatalf("sparse sim point: bf=%d binding=%s, want 512/Bd", sparse.BF, sparse.Binding)
	}
	if sparse.Seconds <= 0 || sparse.GFLOPS <= 0 {
		t.Fatalf("sparse sim point not measured: %+v", sparse)
	}
}

func TestDensityAxisValidation(t *testing.T) {
	bad := Grid{Apps: []string{"spmv"}, Density: []float64{-0.1}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "density") {
		t.Fatalf("negative density accepted: %v", err)
	}
	bad = Grid{Apps: []string{"spmv"}, Density: []float64{1.5}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "density") {
		t.Fatalf("density > 1 accepted: %v", err)
	}
	g := Grid{Apps: []string{"lu", "spmv"}, Density: []float64{0, 0.02, 0.1}, N: []int{512}}
	if got := g.NumPoints(); got != 6 {
		t.Fatalf("NumPoints = %d, want 6 (2 apps x 3 densities)", got)
	}
}

// The density axis is part of the deterministic enumeration: identical
// grids must produce identical outcomes whatever the worker count.
func TestDensitySweepDeterministicAcrossWorkers(t *testing.T) {
	g := Grid{
		Apps:    []string{"spmv"},
		N:       []int{256},
		Density: []float64{0, 0.05, 0.2},
		Modes:   []string{"hybrid", "fpga-only"},
		Method:  MethodSim,
	}
	base, err := Run(context.Background(), g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(context.Background(), g, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Outcomes {
		if base.Outcomes[i] != wide.Outcomes[i] {
			t.Fatalf("point %d differs across worker counts:\n%+v\n%+v",
				i, base.Outcomes[i], wide.Outcomes[i])
		}
	}
}
