// Package exper regenerates every table and figure of the paper's
// evaluation (Section 6): each experiment returns a Table whose rows
// come from fresh simulations, side by side with the values the paper
// reports where it reports them — Table 1's routine latencies, Figures
// 5-8's partition and pipelining studies, Figure 9's hybrid-vs-baseline
// comparison, the Section 6.2 prediction-accuracy study, and the
// Section 4.5 design-space selection regenerated through
// internal/sweep (DesignSpace). cmd/experiments prints them; the
// repository-level benchmarks wrap them as testing.B targets and the
// Headline suite is the benchmark-regression baseline.
package exper
