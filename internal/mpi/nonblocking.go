package mpi

import (
	"fmt"

	"codesign/internal/sim"
)

// Nonblocking point-to-point operations. On the paper's systems only
// the processor drives the NIC, so a nonblocking send still consumes
// wire time — but it is charged to a background engine process instead
// of the caller, letting the processor compute while the transfer is in
// flight (the overlap the LU design's interruptible-routine ablation
// studies).

// Request is a handle for an in-flight nonblocking operation.
type Request struct {
	done *sim.Signal
	msg  *Message // set on completion of an Irecv
}

// Wait blocks p until the operation completes and returns the received
// message for an Irecv (zero Message for an Isend).
func (rq *Request) Wait(p *sim.Proc) Message {
	rq.done.Wait(p)
	if rq.msg != nil {
		return *rq.msg
	}
	return Message{}
}

// Test reports whether the operation has completed without blocking.
func (rq *Request) Test() bool { return rq.done.Fired() }

// Isend starts a nonblocking send: the wire time is charged to a
// background process and the returned request fires when the message
// has been delivered to the destination queue.
func (r *Rank) Isend(dst, tag, bytes int, payload any) *Request {
	w := r.world
	done := sim.NewSignal(w.eng, pairName("isend", r.id, "->", dst, tag))
	src := r.id
	w.eng.Go(sim.Name("mpi.isend", src, dst, tag), func(sp *sim.Proc) {
		w.fab.Transfer(sp, src, dst, bytes)
		w.box(dst, src, tag).Put(Message{Src: src, Tag: tag, Bytes: bytes, Payload: payload})
		done.Fire()
	})
	return &Request{done: done}
}

// Irecv starts a nonblocking receive for a message from src with tag.
func (r *Rank) Irecv(src, tag int) *Request {
	w := r.world
	done := sim.NewSignal(w.eng, pairName("irecv", r.id, "<-", src, tag))
	rq := &Request{done: done}
	me := r.id
	w.eng.Go(sim.Name("mpi.irecv", me, src, tag), func(sp *sim.Proc) {
		m := w.box(me, src, tag).Get(sp).(Message)
		rq.msg = &m
		done.Fire()
	})
	return rq
}

// WaitAll blocks p until every request completes.
func WaitAll(p *sim.Proc, reqs ...*Request) {
	for _, rq := range reqs {
		rq.done.Wait(p)
	}
}

// Scatter distributes payloads[i] from root to rank i (payloads indexed
// by rank, each of the given size); it returns this rank's element.
func (r *Rank) Scatter(root, tag, bytes int, payloads []any) any {
	if r.id == root {
		if len(payloads) != r.Size() {
			panic(fmt.Sprintf("mpi: scatter needs %d payloads, got %d", r.Size(), len(payloads)))
		}
		for dst := 0; dst < r.Size(); dst++ {
			if dst != root {
				r.Send(dst, tag, bytes, payloads[dst])
			}
		}
		return payloads[root]
	}
	return r.Recv(root, tag).Payload
}

// Allgather collects every rank's payload on every rank (gather to rank
// 0 followed by a broadcast of the slice).
func (r *Rank) Allgather(tag, bytes int, payload any) []any {
	all := r.Gather(0, tag, bytes, payload)
	out := r.Bcast(0, tag, bytes*r.Size(), all)
	return out.([]any)
}

// ExScan returns the exclusive prefix sum of the ranks' float64
// contributions: rank i receives the sum of values from ranks 0..i-1
// (0 on rank 0). Implemented as a linear chain.
func (r *Rank) ExScan(tag int, value float64) float64 {
	const scalarBytes = 8
	var acc float64
	if r.id > 0 {
		acc = r.Recv(r.id-1, tag).Payload.(float64)
	}
	if r.id < r.Size()-1 {
		r.Send(r.id+1, tag, scalarBytes, acc+value)
	}
	return acc
}

// Alltoall exchanges payloads[j] from every rank i to every rank j and
// returns the slice indexed by source rank. Ranks send in a rotated
// order to avoid endpoint hotspots.
func (r *Rank) Alltoall(tag, bytes int, payloads []any) []any {
	p := r.Size()
	if len(payloads) != p {
		panic(fmt.Sprintf("mpi: alltoall needs %d payloads, got %d", p, len(payloads)))
	}
	out := make([]any, p)
	out[r.id] = payloads[r.id]
	// Launch all sends nonblocking, then collect.
	var reqs []*Request
	for step := 1; step < p; step++ {
		dst := (r.id + step) % p
		reqs = append(reqs, r.Isend(dst, tag, bytes, payloads[dst]))
	}
	for step := 1; step < p; step++ {
		src := (r.id - step + p) % p
		out[src] = r.Recv(src, tag).Payload
	}
	// Drain send completions so wire time is fully accounted.
	for _, rq := range reqs {
		rq.done.Wait(mustProc(r))
	}
	return out
}

// mustProc returns the rank's bound process.
func mustProc(r *Rank) *sim.Proc {
	if r.proc == nil {
		panic("mpi: rank not attached to a process")
	}
	return r.proc
}
