// Package core implements the paper's hybrid designs (Section 5): the
// distributed block LU decomposition (Section 5.1, partitioned by
// Equations 4 and 5) and the distributed blocked Floyd-Warshall
// algorithm (Section 5.2, split by Equation 6), each in three
// variants — Hybrid (processor + FPGA per the co-design model),
// ProcessorOnly and FPGAOnly (the two baselines of Section 6.2) —
// executing on a simulated reconfigurable computing system built by
// internal/machine. The extension applications the paper's conclusion
// calls for ride on the same engine: hybrid matrix multiplication
// (the pure Equation 1 case), Cholesky, Householder QR and conjugate
// gradient.
//
// Every run is a discrete-event simulation of the full distributed
// schedule: panel factorizations, stripe broadcasts, DRAM streaming,
// FPGA jobs, result scatters and subtractions all occur as events whose
// durations come from the machine model. With Functional enabled the
// events also carry real matrices through the real kernels, so the
// distributed result can be checked against the sequential references
// in internal/matrix.
package core
