package analysis

import (
	"fmt"
	"io"
)

// Resilience summarizes a faulted run against its references: the
// nominal (fault-free) run and, when available, the oracle run in which
// the detector repartitions against the configured ground truth
// immediately. The gap between faulted and oracle makespans is the cost
// of detection latency — what a perfect detector would claw back.
type Resilience struct {
	// BaselineSeconds is the fault-free makespan.
	BaselineSeconds float64
	// FaultedSeconds is the makespan with faults and observed-telemetry
	// detection.
	FaultedSeconds float64
	// OracleSeconds is the makespan with faults and oracle detection;
	// 0 when no oracle run was performed.
	OracleSeconds float64
	// RepartitionTimes are the virtual times the faulted run re-solved
	// its partition, in order.
	RepartitionTimes []float64
	// DeadNodes lists the ranks lost to kill faults.
	DeadNodes []int
	// FaultEvents is the number of expanded fault events injected.
	FaultEvents int
	// Overheads attributes the fault-induced dilation to phases: which
	// parts of the algorithm absorbed the slowdown. Filled by
	// AttributeOverhead when both runs recorded spans; empty otherwise.
	Overheads []PhaseOverhead
}

// PhaseOverhead is one phase's share of the fault-induced dilation,
// from the same single-owner timeline attribution as Compare.
type PhaseOverhead struct {
	// Phase is the span phase label ("" for unlabeled activity and
	// idle slack).
	Phase string
	// NominalSeconds and FaultedSeconds are the phase's attributed
	// exposed time in each run.
	NominalSeconds float64
	// FaultedSeconds is the faulted run's attributed exposed time.
	FaultedSeconds float64
	// Overhead is the phase's contribution to the dilation
	// (FaultedSeconds - NominalSeconds in Compare's summation order);
	// over all phases the overheads sum to the makespan delta.
	Overhead float64
}

// AttributeOverhead fills Overheads by running the differential phase
// attribution (see Compare) over the nominal and faulted span streams.
// Phases with no attributed time on either side are dropped.
func (r *Resilience) AttributeOverhead(nominal, faulted Run) {
	cmp := Compare(nominal, faulted)
	r.Overheads = r.Overheads[:0]
	for _, pd := range cmp.Phases {
		o := PhaseOverhead{
			Phase:          pd.Phase,
			NominalSeconds: pd.Base.Total(),
			FaultedSeconds: pd.Cand.Total(),
			Overhead:       pd.Contribution,
		}
		if o.NominalSeconds == 0 && o.FaultedSeconds == 0 {
			continue
		}
		r.Overheads = append(r.Overheads, o)
	}
}

// Repartitions returns how many times the faulted run re-solved its
// partition.
func (r *Resilience) Repartitions() int { return len(r.RepartitionTimes) }

// MakespanInflation is the fractional slowdown of the faulted run over
// the fault-free baseline (0.25 = 25% slower). Zero when the baseline
// is missing or non-positive.
func (r *Resilience) MakespanInflation() float64 {
	if r.BaselineSeconds <= 0 {
		return 0
	}
	return r.FaultedSeconds/r.BaselineSeconds - 1
}

// OracleInflation is the fractional slowdown of the oracle run over the
// fault-free baseline — the unavoidable cost of the faults themselves,
// with detection latency removed. Zero when either reference is missing.
func (r *Resilience) OracleInflation() float64 {
	if r.BaselineSeconds <= 0 || r.OracleSeconds <= 0 {
		return 0
	}
	return r.OracleSeconds/r.BaselineSeconds - 1
}

// RecoveryLag is the makespan the observed-telemetry detector left on
// the table relative to the oracle, in seconds. Zero when no oracle run
// was performed.
func (r *Resilience) RecoveryLag() float64 {
	if r.OracleSeconds <= 0 {
		return 0
	}
	return r.FaultedSeconds - r.OracleSeconds
}

// WriteReport renders the resilience summary the -faults flag prints.
func (r *Resilience) WriteReport(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("resilience (%d fault events)\n", r.FaultEvents); err != nil {
		return err
	}
	if err := p("  %-22s %12.6g s\n", "nominal makespan", r.BaselineSeconds); err != nil {
		return err
	}
	if err := p("  %-22s %12.6g s  (+%.1f%%)\n", "faulted makespan",
		r.FaultedSeconds, 100*r.MakespanInflation()); err != nil {
		return err
	}
	if r.OracleSeconds > 0 {
		if err := p("  %-22s %12.6g s  (+%.1f%%)\n", "oracle makespan",
			r.OracleSeconds, 100*r.OracleInflation()); err != nil {
			return err
		}
		if err := p("  %-22s %12.6g s\n", "recovery lag", r.RecoveryLag()); err != nil {
			return err
		}
	}
	if err := p("  %-22s %12d\n", "repartitions", r.Repartitions()); err != nil {
		return err
	}
	for i, t := range r.RepartitionTimes {
		if err := p("    repartition %-8d %12.6g s\n", i+1, t); err != nil {
			return err
		}
	}
	if len(r.DeadNodes) > 0 {
		if err := p("  %-22s %v\n", "dead nodes", r.DeadNodes); err != nil {
			return err
		}
	}
	if len(r.Overheads) > 0 {
		if err := p("  fault overhead by phase (faulted - nominal)\n"); err != nil {
			return err
		}
		for _, o := range r.Overheads {
			if err := p("    %-20s %+12.6g s  (%.6g -> %.6g)\n",
				phaseLabel(o.Phase), o.Overhead, o.NominalSeconds, o.FaultedSeconds); err != nil {
				return err
			}
		}
	}
	return nil
}
