package fault

import (
	"math"
	"sort"
)

// Class identifies the machine subsystem a fault degrades.
type Class int

// The dilation classes, one per paper parameter family.
const (
	// ClassCPU covers processor charges (Op·Fp degradation).
	ClassCPU Class = iota
	// ClassFPGA covers FPGA array compute (Of·Ff degradation).
	ClassFPGA
	// ClassDRAM covers FPGA-DRAM streaming (Bd degradation).
	ClassDRAM
	// ClassNet covers outbound wire time (Bn degradation).
	ClassNet

	numClasses
)

// String names the class after the model parameter it degrades.
func (c Class) String() string {
	switch c {
	case ClassCPU:
		return "cpu"
	case ClassFPGA:
		return "fpga"
	case ClassDRAM:
		return "bd"
	case ClassNet:
		return "bn"
	}
	return "class?"
}

// Factors are effective rate multipliers per class, 1 = nominal. A zero
// field from TakeObserved means "no observation" for that class.
type Factors struct {
	// CPU scales the processor's sustained rates.
	CPU float64
	// FPGA scales the design clock Ff.
	FPGA float64
	// DRAM scales the streaming bandwidth Bd.
	DRAM float64
	// Net scales the network bandwidth Bn.
	Net float64
}

// Nominal returns all-ones Factors.
func Nominal() Factors { return Factors{CPU: 1, FPGA: 1, DRAM: 1, Net: 1} }

// get returns the factor for one class.
func (f Factors) get(c Class) float64 {
	switch c {
	case ClassCPU:
		return f.CPU
	case ClassFPGA:
		return f.FPGA
	case ClassDRAM:
		return f.DRAM
	}
	return f.Net
}

// set stores the factor for one class.
func (f *Factors) set(c Class, v float64) {
	switch c {
	case ClassCPU:
		f.CPU = v
	case ClassFPGA:
		f.FPGA = v
	case ClassDRAM:
		f.DRAM = v
	default:
		f.Net = v
	}
}

// segment is one disjoint window of degraded rate: during [start, end)
// the subsystem delivers factor of its nominal throughput (factor 0 =
// fully stalled).
type segment struct {
	start, end float64
	factor     float64
}

// accum tracks nominal vs. dilated seconds charged to one (node, class)
// since the last TakeObserved.
type accum struct {
	nominal, actual float64
}

// Injector holds the expanded fault schedule and the observation state
// of one run. An Injector is stateful (it accumulates telemetry) and
// must not be shared between runs — build one per simulation.
type Injector struct {
	nodes  int
	events []Event
	segs   [][]segment // indexed [node*numClasses + class]
	dead   []float64   // per node: earliest kill time, +Inf if none
	acc    []accum     // indexed like segs
	// last carries each (node, class)'s most recent observed ratio
	// across windows with no new charges (a throttled node that is the
	// panel node for an iteration performs no DMA — its silence must
	// not read as recovery). 0 = never observed.
	last      []float64
	threshold float64
	window    float64
	oracle    bool
	hasDeaths bool
	// m is the optional metrics sink Publish installs; nil keeps
	// Dilate's hot path free of observability work.
	m *metrics
}

// New validates spec against the node count, expands its probabilistic
// entries from the seed, and returns a ready-to-install injector. A nil
// spec yields a valid injector with no faults.
func New(spec *Spec, nodes int) (*Injector, error) {
	if spec == nil {
		spec = &Spec{}
	}
	events, err := spec.expand(nodes)
	if err != nil {
		return nil, err
	}
	in := &Injector{
		nodes:     nodes,
		events:    events,
		segs:      make([][]segment, nodes*int(numClasses)),
		dead:      make([]float64, nodes),
		acc:       make([]accum, nodes*int(numClasses)),
		last:      make([]float64, nodes*int(numClasses)),
		threshold: spec.Threshold,
		window:    spec.Window,
		oracle:    spec.Oracle,
	}
	if in.threshold == 0 {
		in.threshold = DefaultThreshold
	}
	if in.window == 0 {
		in.window = DefaultWindow
	}
	if in.oracle {
		// The oracle reacts to the configured ground truth immediately.
		in.threshold = 1e-9
		in.window = 0
	}
	for i := range in.dead {
		in.dead[i] = math.Inf(1)
	}
	// Group raw windows per (node, class), then flatten overlaps into
	// disjoint segments whose factors multiply.
	windows := make([][]segment, len(in.segs))
	for _, e := range events {
		if e.Kind == NodeKill {
			if e.Start < in.dead[e.Node] {
				in.dead[e.Node] = e.Start
			}
			in.hasDeaths = true
			continue
		}
		c, ok := e.Kind.class()
		if !ok {
			continue
		}
		end := math.Inf(1)
		if e.Duration > 0 {
			end = e.Start + e.Duration
		}
		factor := e.Factor
		if e.Kind == FPGAStall {
			factor = 0
		}
		k := e.Node*int(numClasses) + int(c)
		windows[k] = append(windows[k], segment{start: e.Start, end: end, factor: factor})
	}
	for k, ws := range windows {
		in.segs[k] = flatten(ws)
	}
	return in, nil
}

// flatten turns possibly-overlapping windows into sorted disjoint
// segments; where windows overlap their factors multiply (two
// half-speed throttles make a quarter-speed one). Identity stretches
// are dropped so the no-overlap fast path stays trivial.
func flatten(ws []segment) []segment {
	if len(ws) == 0 {
		return nil
	}
	bounds := make([]float64, 0, 2*len(ws))
	for _, w := range ws {
		bounds = append(bounds, w.start, w.end)
	}
	sort.Float64s(bounds)
	out := make([]segment, 0, len(bounds))
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo {
			continue
		}
		f := 1.0
		for _, w := range ws {
			if w.start <= lo && hi <= w.end {
				f *= w.factor
			}
		}
		if f == 1 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].end == lo && out[n-1].factor == f {
			out[n-1].end = hi // merge adjacent equal-factor stretches
			continue
		}
		out = append(out, segment{start: lo, end: hi, factor: f})
	}
	return out
}

// Nodes returns the node count the injector was built for.
func (in *Injector) Nodes() int { return in.nodes }

// Events returns the expanded, sorted event list (scheduled plus
// seed-drawn probabilistic events).
func (in *Injector) Events() []Event { return in.events }

// Oracle reports whether detection uses the configured ground truth.
func (in *Injector) Oracle() bool { return in.oracle }

// Threshold returns the effective divergence-detection threshold.
func (in *Injector) Threshold() float64 { return in.threshold }

// Window returns the effective sustained-divergence window in seconds.
func (in *Injector) Window() float64 { return in.window }

// HasDeaths reports whether any node-kill event is scheduled.
func (in *Injector) HasDeaths() bool { return in.hasDeaths }

// Alive reports whether the node is still up at virtual time now.
func (in *Injector) Alive(node int, now float64) bool {
	if node < 0 || node >= in.nodes {
		return false
	}
	return now < in.dead[node]
}

// DeadBy lists the nodes whose kill time is at or before now, in node
// order.
func (in *Injector) DeadBy(now float64) []int {
	var out []int
	for i, d := range in.dead {
		if d <= now {
			out = append(out, i)
		}
	}
	return out
}

// Dilate maps a nominal charge of dt seconds beginning at start on the
// given node and class to its degraded duration, integrating the
// configured rate factors over the interval. A charge overlapping no
// fault window is returned bit-identically. The nominal and dilated
// durations are accumulated for TakeObserved.
func (in *Injector) Dilate(c Class, node int, start, dt float64) float64 {
	if node < 0 || node >= in.nodes || dt <= 0 {
		return dt
	}
	k := node*int(numClasses) + int(c)
	out := dilate(in.segs[k], start, dt)
	in.acc[k].nominal += dt
	in.acc[k].actual += out
	if in.m != nil {
		in.m.dilations.Inc()
		if g := in.m.degradation[k]; g != nil {
			g.Set(dt / out)
		}
	}
	return out
}

// dilate integrates work through the disjoint degraded segments: the
// charge carries dt seconds of nominal-rate work, and each segment
// delivers factor seconds of work per wall second (0 = stalled).
func dilate(segs []segment, start, dt float64) float64 {
	if len(segs) == 0 {
		return dt
	}
	i := sort.Search(len(segs), func(i int) bool { return segs[i].end > start })
	if i == len(segs) || segs[i].start >= start+dt {
		return dt // no overlap: bit-identical nominal duration
	}
	remaining := dt
	t := start
	for ; i < len(segs); i++ {
		s := segs[i]
		if s.start > t {
			gap := s.start - t
			if gap >= remaining {
				t += remaining
				remaining = 0
				break
			}
			t = s.start
			remaining -= gap
		}
		if s.factor <= 0 {
			t = s.end // no progress during a stall window
			continue
		}
		capacity := (s.end - t) * s.factor
		if capacity >= remaining {
			t += remaining / s.factor
			remaining = 0
			break
		}
		remaining -= capacity
		t = s.end
	}
	return t + remaining - start
}

// ActiveFactors returns, per class, the lowest configured rate factor
// across all nodes at the instant now — the ground truth the oracle
// repartitions against.
func (in *Injector) ActiveFactors(now float64) Factors {
	f := Nominal()
	for node := 0; node < in.nodes; node++ {
		for c := Class(0); c < numClasses; c++ {
			segs := in.segs[node*int(numClasses)+int(c)]
			i := sort.Search(len(segs), func(i int) bool { return segs[i].end > now })
			if i < len(segs) && segs[i].start <= now && segs[i].factor < f.get(c) {
				f.set(c, segs[i].factor)
			}
		}
	}
	return f
}

// TakeObserved condenses the accumulated telemetry into effective rate
// factors — per class, the lowest nominal/dilated ratio across nodes —
// and resets the accumulators. A (node, class) that charged nothing
// since the last call keeps its previous ratio: a throttled node can
// fall silent for a whole window (the panel node does no DMA) and that
// silence must not read as recovery. A class no node has ever charged
// reports 0 (callers should keep their previous estimate).
func (in *Injector) TakeObserved() Factors {
	var f Factors
	for node := 0; node < in.nodes; node++ {
		for c := Class(0); c < numClasses; c++ {
			k := node*int(numClasses) + int(c)
			a := in.acc[k]
			in.acc[k] = accum{}
			if a.actual > 0 && a.nominal > 0 {
				in.last[k] = a.nominal / a.actual
			}
			r := in.last[k]
			if r == 0 {
				continue
			}
			if cur := f.get(c); cur == 0 || r < cur {
				f.set(c, r)
			}
		}
	}
	return f
}
