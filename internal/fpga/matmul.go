package fpga

import (
	"fmt"
	"math"

	"codesign/internal/fpmath"
	"codesign/internal/matrix"
)

// MatMulDesign is the linear-array floating-point matrix multiplier of
// Zhuo and Prasanna [21]: k PEs, each with one double-precision adder
// and one multiplier, performing two floating-point operations per
// cycle (Of = 2k). A k×k submatrix multiply has an effective latency of
// k² cycles.
type MatMulDesign struct {
	K int
}

// NewMatMul returns the design with k PEs.
func NewMatMul(k int) MatMulDesign {
	if k < 1 {
		panic(fmt.Sprintf("fpga: matmul design needs k >= 1, got %d", k))
	}
	return MatMulDesign{K: k}
}

// Name implements Design.
func (d MatMulDesign) Name() string { return "matmul-pe-array" }

// PEs implements Design.
func (d MatMulDesign) PEs() int { return d.K }

// perPE is the slice cost of one matmul PE: adder + multiplier +
// local control and operand registers.
const matmulPESlices = fpmathAdderSlices + fpmathMultSlices + 180

// base design overhead: DRAM streaming interface, SRAM controller,
// global control FSM.
const matmulBaseSlices = 1200

const (
	fpmathAdderSlices = 1050
	fpmathMultSlices  = 1550
)

// Resources implements Design.
func (d MatMulDesign) Resources() Usage {
	return Usage{
		Slices:      matmulBaseSlices + d.K*matmulPESlices,
		BlockRAMs:   16 + 2*d.K, // per-PE operand buffers + staging FIFOs
		Multipliers: d.K * fpmath.Multiplier64.Embedded18x18,
	}
}

// MinCoreFmaxHz implements Design: the multiplier is the slowest core.
func (d MatMulDesign) MinCoreFmaxHz() float64 { return fpmath.Multiplier64.MaxFreqHz }

// RoutingDerate implements Design: the linear array routes cleanly.
func (d MatMulDesign) RoutingDerate() float64 { return 1.0 }

// OpsPerCycle returns Of: floating-point operations per cycle (each PE
// does one multiply and one add).
func (d MatMulDesign) OpsPerCycle() int { return 2 * d.K }

// Cycles returns the cycle count for an (m×kk)·(kk×n) multiply on the
// array: the operands are tiled into k×k submatrices, each submatrix
// multiply taking an effective k² cycles [21], plus one pipeline fill.
func (d MatMulDesign) Cycles(m, kk, n int) float64 {
	if m <= 0 || kk <= 0 || n <= 0 {
		return 0
	}
	k := d.K
	tiles := math.Ceil(float64(m)/float64(k)) * math.Ceil(float64(kk)/float64(k)) * math.Ceil(float64(n)/float64(k))
	fill := float64(fpmath.Adder64.PipelineStages + fpmath.Multiplier64.PipelineStages)
	return tiles*float64(k*k) + fill
}

// SRAMWords returns the on-board memory the design needs to hold the
// intermediate C rows for a bf×w result (Section 5.1.3: bf·b/(p-1)
// words).
func (d MatMulDesign) SRAMWords(bf, w int) int64 { return int64(bf) * int64(w) }

// Multiply computes C += A·B functionally with host floating point, in
// the same accumulation order as the hardware array (ascending k for
// each output element).
func (d MatMulDesign) Multiply(a, b, c *matrix.Dense) {
	matrix.Gemm(1, a, b, 1, c)
}

// MultiplyBitExact computes C += A·B element by element through the
// bit-exact fpmath cores, mirroring the PE datapath: one multiply and
// one accumulate per cycle per element, ascending k. Because both the
// cores and the host are IEEE-754 round-to-nearest, the result is
// bit-identical to Multiply.
func (d MatMulDesign) MultiplyBitExact(a, b, c *matrix.Dense) {
	m, kk := a.Dims()
	_, n := b.Dims()
	cr, cc := c.Dims()
	if cr != m || cc != n {
		panic(fmt.Sprintf("fpga: result %dx%d for %dx%d * %dx%d", cr, cc, m, kk, kk, n))
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := c.At(i, j)
			for l := 0; l < kk; l++ {
				acc = fpmath.AddFloat(acc, fpmath.MulFloat(a.At(i, l), b.At(l, j)))
			}
			c.Set(i, j, acc)
		}
	}
}
