// Command perfcheck compares `go test -bench -benchmem` output against
// the committed wall-clock baseline BENCH_speed.json, so CI catches
// performance regressions in the simulator hot path the way the
// metrics baseline (BENCH_baseline.json) catches behavior drift.
//
// Times on shared CI runners are noisy, so the time gate is
// deliberately loose (-time-tol, default 3x) and exists to catch
// order-of-magnitude regressions like an accidental re-introduction of
// per-event allocation. Allocation counts are deterministic, so the
// allocs/op gate is tight (-tol, default 1.5x). Benchmarks present in
// the output but absent from the baseline are ignored; baseline
// entries missing from the output fail, so the gate cannot silently
// erode when benchmarks are renamed.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... | go run ./cmd/perfcheck
//	go run ./cmd/perfcheck -update bench.txt   # regenerate the baseline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed BENCH_speed.json document.
type Baseline struct {
	Schema int `json:"schema"`
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// Benchmarks maps "<package>.<BenchmarkName>" to its measurements.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's committed measurements.
type Entry struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
}

// parseBench extracts "<pkg>.<BenchmarkName>" -> Entry from `go test
// -bench` output. Benchmark names are normalized by stripping the
// -GOMAXPROCS suffix and any /subtest separator stays intact; "pkg:"
// lines qualify subsequent benchmarks.
func parseBench(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := Entry{}
		seen := false
		// Fields come in "<value> <unit>" pairs after the iteration count.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("perfcheck: bad value %q in %q", f[i], line)
			}
			switch f[i+1] {
			case "ns/op":
				e.NsOp = v
				seen = true
			case "allocs/op":
				e.AllocsOp = v
			}
		}
		if !seen {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		out[key] = e
	}
	return out, sc.Err()
}

// check compares measured entries against the baseline and returns the
// failures, one line each.
func check(base Baseline, got map[string]Entry, timeTol, allocTol float64) []string {
	var fails []string
	keys := make([]string, 0, len(base.Benchmarks))
	for k := range base.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		want := base.Benchmarks[k]
		have, ok := got[k]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing from benchmark output", k))
			continue
		}
		// Ratio gates are undefined against a zero baseline, so each
		// metric handles zero explicitly instead of multiplying into a
		// vacuous bound. A zero ns/op baseline carries no information
		// (benchmarks cannot take zero time) and is skipped; a zero
		// allocs/op baseline is a meaningful promise — the zero-allocation
		// hot path — and gates absolutely: any measured allocation is a
		// regression no tolerance can excuse.
		if want.NsOp > 0 && have.NsOp > want.NsOp*timeTol {
			fails = append(fails, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f ns/op x %.2g tolerance",
				k, have.NsOp, want.NsOp, timeTol))
		}
		if want.AllocsOp == 0 {
			if have.AllocsOp > 0 {
				fails = append(fails, fmt.Sprintf("%s: %.0f allocs/op regressed from a zero-alloc baseline",
					k, have.AllocsOp))
			}
		} else if have.AllocsOp > want.AllocsOp*allocTol {
			fails = append(fails, fmt.Sprintf("%s: %.0f allocs/op exceeds baseline %.0f allocs/op x %.2g tolerance",
				k, have.AllocsOp, want.AllocsOp, allocTol))
		}
	}
	return fails
}

func run() error {
	baseline := flag.String("baseline", "BENCH_speed.json", "baseline file to compare against (or rewrite with -update)")
	timeTol := flag.Float64("time-tol", 3.0, "allowed ns/op ratio over baseline (loose: CI timing is noisy)")
	allocTol := flag.Float64("tol", 1.5, "allowed allocs/op ratio over baseline")
	update := flag.Bool("update", false, "rewrite the baseline from the benchmark output instead of checking")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("perfcheck: no benchmark results in input")
	}

	if *update {
		doc := Baseline{
			Schema:     1,
			Note:       "Wall-clock perf baseline. Regenerate: go test -run '^$' -bench 'BenchmarkHeadline|BenchmarkSimEngine|BenchmarkLUFullSimulation|BenchmarkDesignSpaceSweep|BenchmarkSolveCached' -benchtime=10x -benchmem . > bench.txt && go test -run '^$' -bench 'BenchmarkScreenedSweep' -benchtime=1x -benchmem . >> bench.txt && go test -run '^$' -bench . -benchtime=100x -benchmem ./internal/sim/ >> bench.txt && go run ./cmd/perfcheck -update bench.txt",
			Benchmarks: got,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*baseline, append(b, '\n'), 0o644)
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("perfcheck: %s: %w", *baseline, err)
	}
	fails := check(base, got, *timeTol, *allocTol)
	for _, f := range fails {
		fmt.Fprintln(os.Stderr, "FAIL", f)
	}
	if len(fails) > 0 {
		return fmt.Errorf("perfcheck: %d benchmark(s) regressed past tolerance", len(fails))
	}
	fmt.Printf("perfcheck: %d baseline benchmark(s) within tolerance (time x%.2g, allocs x%.2g)\n",
		len(base.Benchmarks), *timeTol, *allocTol)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
