package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"codesign/internal/cli"
)

func TestRunInlineAxesDeterministic(t *testing.T) {
	dir := t.TempDir()
	outJSON := func(workers int, name string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		var buf bytes.Buffer
		err := run(options{
			Apps: "lu", Machines: "xd1", Modes: "hybrid",
			Nodes: "0", N: "0", B: "0", PEs: "2,4,6,8", BF: "-1", L: "-1",
			Method: "model", Workers: workers, JSONOut: path, Quiet: true,
		}, &buf)
		if err != nil {
			t.Fatalf("run(workers=%d): %v", workers, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one := outJSON(1, "w1.json")
	eight := outJSON(8, "w8.json")
	if !bytes.Equal(one, eight) {
		t.Fatal("JSON differs between -workers=1 and -workers=8")
	}
	if !bytes.Contains(one, []byte(`"pareto"`)) {
		t.Error("JSON output missing pareto field")
	}
}

func TestRunGridFileAndCSV(t *testing.T) {
	dir := t.TempDir()
	grid := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(grid, []byte(`{"apps":["mm"],"pes":[4,8]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "out.csv")
	var buf bytes.Buffer
	if err := run(options{GridFile: grid, CSVOut: csv}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "index,app,machine") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	if !strings.Contains(buf.String(), "pareto frontier") {
		t.Errorf("summary report missing frontier section:\n%s", buf.String())
	}
}

func TestRunArchiveSpans(t *testing.T) {
	dir := t.TempDir()
	spansDir := filepath.Join(dir, "frontier")
	var buf bytes.Buffer
	err := run(options{
		Apps: "lu", Machines: "xd1", Modes: "hybrid",
		Nodes: "0", N: "120", B: "40", PEs: "0", BF: "-1", L: "-1",
		Method: "sim", ArchiveSpans: spansDir, Quiet: true,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(spansDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no frontier span files archived")
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "point-") || !strings.HasSuffix(e.Name(), ".spans") {
			t.Fatalf("unexpected archive file %q", e.Name())
		}
	}
}

func TestRunObsServesMetricsDuringSweep(t *testing.T) {
	var buf bytes.Buffer
	fetched := make(chan string, 1)
	err := run(options{
		Apps: "lu", Machines: "xd1", Modes: "hybrid",
		Nodes: "0", N: "0", B: "0", PEs: "2,4,6,8", BF: "-1", L: "-1",
		Method: "sim", Workers: 2, Quiet: true,
		Obs: "127.0.0.1:0",
		obsReady: func(addr string) {
			// Poll /metrics while the sweep runs; keep the last body so
			// the final fetch reflects completed work.
			go func() {
				var last string
				for i := 0; i < 200; i++ {
					resp, err := http.Get("http://" + addr + "/metrics")
					if err != nil {
						break // server closed: sweep finished
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					last = string(body)
					time.Sleep(2 * time.Millisecond)
				}
				fetched <- last
			}()
		},
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	body := <-fetched
	for _, want := range []string{
		"sweep_points_total 4",
		"sweep_points_done",
		"sweep_place_hit_rate",
		"sweep_partition_hit_rate",
		"sweep_point_seconds_bucket",
		`sweep_worker_busy_seconds{worker="0"}`,
		"sim_handoffs_total",
		"sim_self_resumes_total",
		"sim_events_popped_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// A sim-method sweep runs real engines, so the process-wide counter
	// sink must have seen events by the last scrape.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "sim_events_popped_total ") {
			if strings.TrimPrefix(line, "sim_events_popped_total ") == "0" {
				t.Errorf("sim counters never incremented: %s", line)
			}
		}
	}
}

func TestRunProgressTicker(t *testing.T) {
	var stderr bytes.Buffer
	log := cli.NewLogger("sweep", &stderr)
	err := run(options{
		Apps: "lu", Machines: "xd1", Modes: "hybrid",
		Nodes: "0", N: "0", B: "0", PEs: "2,4,6,8", BF: "-1", L: "-1",
		Method: "model", Workers: 2, Quiet: false, Progress: true, Log: log,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The ticker always reports the final point even on a fast sweep.
	if !strings.Contains(stderr.String(), "sweep: 4/4 (100.0%)") {
		t.Errorf("no final progress line in stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "eta=0s") {
		t.Errorf("final progress line missing settled ETA:\n%s", stderr.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(options{Apps: "lu", PEs: "four"}, &bytes.Buffer{}); err == nil {
		t.Error("bad -pes accepted")
	}
	if err := run(options{Apps: "qr", PEs: "0", Method: "model"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	err := run(options{Apps: "lu", PEs: "2", Method: "model", Workers: -1, Quiet: true}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("negative -workers: err=%v, want a -workers error", err)
	}
}

func TestRunRejectsMarginWithoutScreen(t *testing.T) {
	err := run(options{Apps: "lu", PEs: "2", Method: "model", RefineMargin: 0.2, Quiet: true}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-screen") {
		t.Fatalf("-refine-margin without -screen: err=%v, want a -screen error", err)
	}
}

func TestRunScreenedSummaryOutput(t *testing.T) {
	var stdout bytes.Buffer
	err := run(options{
		Apps: "lu", Machines: "xd1", Modes: "hybrid",
		Nodes: "0", N: "0", B: "0", PEs: "2,4,6,8,10,12", BF: "-1", L: "-1,2,4",
		Method: "model", Screen: true,
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "screened 18 points") {
		t.Errorf("summary missing screening line:\n%s", out)
	}
	if !strings.Contains(out, "candidates") {
		t.Errorf("summary missing candidate count:\n%s", out)
	}
}

func TestRunSummaryInfeasibleByAxis(t *testing.T) {
	var stdout bytes.Buffer
	err := run(options{
		Apps: "lu", Machines: "xd1", Modes: "hybrid",
		Nodes: "0", N: "0", B: "0", PEs: "2,4,10,12", BF: "-1", L: "-1",
		Method: "model",
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	// PEs 10 and 12 exceed the XC2VP50: the per-axis infeasibility
	// breakdown must surface them in text, not only in JSON.
	if !strings.Contains(stdout.String(), "infeasible by pes: 10=1 12=1") {
		t.Errorf("summary missing per-axis infeasibility:\n%s", stdout.String())
	}
}

func TestScreenedMatchesFullFrontierJSON(t *testing.T) {
	dir := t.TempDir()
	base := options{
		Apps: "lu", Machines: "xd1", Modes: "hybrid",
		Nodes: "0", N: "120", B: "40", PEs: "2,4,6,8", BF: "-1", L: "-1,2,4",
		Method: "sim", Quiet: true,
	}
	full := base
	full.JSONOut = filepath.Join(dir, "full.json")
	if err := run(full, io.Discard); err != nil {
		t.Fatal(err)
	}
	scr := base
	scr.Screen = true
	scr.JSONOut = filepath.Join(dir, "screened.json")
	if err := run(scr, io.Discard); err != nil {
		t.Fatal(err)
	}
	frontier := func(path string) map[int]bool {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var res struct {
			Results []struct {
				Point struct {
					Index int `json:"index"`
				} `json:"point"`
				Outcome struct {
					Pareto bool `json:"pareto"`
				} `json:"outcome"`
			} `json:"results"`
		}
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		set := map[int]bool{}
		for _, r := range res.Results {
			if r.Outcome.Pareto {
				set[r.Point.Index] = true
			}
		}
		return set
	}
	want, got := frontier(full.JSONOut), frontier(scr.JSONOut)
	if len(want) == 0 {
		t.Fatal("full sweep frontier empty")
	}
	if len(want) != len(got) {
		t.Fatalf("frontier sizes differ: full=%v screened=%v", want, got)
	}
	for idx := range want {
		if !got[idx] {
			t.Errorf("frontier index %d missing from screened output", idx)
		}
	}
}
