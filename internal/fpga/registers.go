package fpga

import "codesign/internal/sim"

// Registers model the control/status registers of Section 4.4: the
// processor writes a command to start the FPGA and polls a status
// register for completion. Register access latency is negligible
// against task latency (per the paper) and is charged as zero; the
// number of coordinations is counted so designs can report their
// coordination frequency.
type Registers struct {
	start *sim.Mailbox
	done  *sim.Mailbox
	// coordinations counts start+done handshakes (2 per task batch).
	coordinations int64
}

// NewRegisters creates the register file inside engine e.
func NewRegisters(e *sim.Engine, name string) *Registers {
	return &Registers{
		start: sim.NewMailbox(e, name+".start"),
		done:  sim.NewMailbox(e, name+".done"),
	}
}

// Start is called by the processor: it writes the command register,
// launching the FPGA on cmd.
func (r *Registers) Start(cmd any) {
	r.coordinations++
	r.start.Put(cmd)
}

// AwaitStart is called by the FPGA controller process: it blocks until
// the processor writes the command register.
func (r *Registers) AwaitStart(p *sim.Proc) any { return r.start.Get(p) }

// Done is called by the FPGA controller when the command completes,
// setting the status register.
func (r *Registers) Done(result any) { r.done.Put(result) }

// AwaitDone is called by the processor: it blocks until the status
// register shows completion.
func (r *Registers) AwaitDone(p *sim.Proc) any {
	r.coordinations++
	return r.done.Get(p)
}

// Coordinations returns the number of register handshakes so far.
func (r *Registers) Coordinations() int64 { return r.coordinations }
