package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"codesign/internal/cpu"
	"codesign/internal/fabric"
	"codesign/internal/fpga"
)

// fileConfig is the JSON schema for user-supplied machine files: flat
// scalar fields plus processor and device names resolved against the
// built-in component tables. Bandwidths are bytes/s, latency seconds.
type fileConfig struct {
	Name              string  `json:"name"`
	Nodes             int     `json:"nodes"`
	Processor         string  `json:"processor"`
	Device            string  `json:"device"`
	FPGADRAMBandwidth float64 `json:"fpga_dram_bandwidth"`
	SRAMBanks         int     `json:"sram_banks"`
	SRAMBankBytes     int64   `json:"sram_bank_bytes"`
	SRAMBandwidth     float64 `json:"sram_bandwidth"`
	LinkBandwidth     float64 `json:"link_bandwidth"`
	LinksPerNode      int     `json:"links_per_node"`
	LatencySeconds    float64 `json:"latency_seconds"`
}

// processors maps JSON processor names to their builders.
var processors = map[string]func() *cpu.Processor{
	"opteron22": cpu.Opteron22,
}

// devices maps JSON device names to the FPGA part table.
var devices = map[string]func() fpga.Device{
	"xc2vp50":   fpga.XC2VP50,
	"xc4vlx160": fpga.XC4VLX160,
	"xc4vlx200": fpga.XC4VLX200,
}

// names returns a map's keys, sorted lexically, for error messages.
func names[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseJSON builds a Config from a machine JSON document. Unknown
// fields are rejected (catching typos), and every parameter a run would
// otherwise only trip over deep inside mem or fabric is validated here
// with an error naming the offending JSON field.
func ParseJSON(data []byte) (Config, error) {
	var fc fileConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return Config{}, fmt.Errorf("machine: %w", err)
	}
	// Each check names the JSON field so a bad file is fixable without
	// reading this source.
	checks := []struct {
		bad   bool
		field string
		got   any
	}{
		{fc.Nodes < 1, "nodes", fc.Nodes},
		{fc.FPGADRAMBandwidth <= 0, "fpga_dram_bandwidth", fc.FPGADRAMBandwidth},
		{fc.SRAMBanks < 1, "sram_banks", fc.SRAMBanks},
		{fc.SRAMBankBytes < 1, "sram_bank_bytes", fc.SRAMBankBytes},
		{fc.SRAMBandwidth <= 0, "sram_bandwidth", fc.SRAMBandwidth},
		{fc.LinkBandwidth <= 0, "link_bandwidth", fc.LinkBandwidth},
		{fc.LinksPerNode < 1, "links_per_node", fc.LinksPerNode},
	}
	for _, c := range checks {
		if c.bad {
			return Config{}, fmt.Errorf("machine: field %q must be positive, got %v", c.field, c.got)
		}
	}
	if fc.LatencySeconds < 0 {
		return Config{}, fmt.Errorf("machine: field %q must be non-negative, got %v",
			"latency_seconds", fc.LatencySeconds)
	}
	proc, ok := processors[strings.ToLower(fc.Processor)]
	if !ok {
		return Config{}, fmt.Errorf("machine: field %q: unknown processor %q (want one of %s)",
			"processor", fc.Processor, strings.Join(names(processors), ", "))
	}
	dev, ok := devices[strings.ToLower(fc.Device)]
	if !ok {
		return Config{}, fmt.Errorf("machine: field %q: unknown device %q (want one of %s)",
			"device", fc.Device, strings.Join(names(devices), ", "))
	}
	name := fc.Name
	if name == "" {
		name = fmt.Sprintf("custom (%d nodes)", fc.Nodes)
	}
	c := Config{
		Name:                 name,
		Nodes:                fc.Nodes,
		Processor:            proc,
		Device:               dev(),
		RawFPGADRAMBandwidth: fc.FPGADRAMBandwidth,
		SRAMBanks:            fc.SRAMBanks,
		SRAMBankBytes:        fc.SRAMBankBytes,
		SRAMBandwidth:        fc.SRAMBandwidth,
		Fabric: fabric.Config{
			Nodes:         fc.Nodes,
			LinkBandwidth: fc.LinkBandwidth,
			LinksPerNode:  fc.LinksPerNode,
			Latency:       fc.LatencySeconds,
		},
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// LoadFile reads and parses a machine JSON file.
func LoadFile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	c, err := ParseJSON(data)
	if err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Resolve maps a CLI machine argument to a Config: a preset name
// ("xd1", "xt3", ...) or, when the argument looks like a path or an
// existing file, a machine JSON file.
func Resolve(nameOrPath string) (Config, error) {
	if c, err := Preset(nameOrPath); err == nil {
		return c, nil
	}
	if strings.ContainsAny(nameOrPath, "/\\.") {
		return LoadFile(nameOrPath)
	}
	if _, err := os.Stat(nameOrPath); err == nil {
		return LoadFile(nameOrPath)
	}
	return Config{}, fmt.Errorf("machine: %q is neither a preset (%s) nor a readable JSON file",
		nameOrPath, strings.Join(PresetNames(), ", "))
}
